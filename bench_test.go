package repro

// One benchmark per table and figure of the paper's evaluation (§5), plus
// the ablations DESIGN.md calls out. Each benchmark runs the relevant
// experiment end to end and reports the reproduced quantities through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the paper's
// numbers in one sweep:
//
//	Table 1  → BenchmarkTable1_D1 .. _D5      (register/cap/buffer savings)
//	Fig. 3   → BenchmarkFig3_WorkedExample    (worked-example ILP objective)
//	Fig. 5   → BenchmarkFig5_BitWidths        (8-bit share before/after)
//	Fig. 6   → BenchmarkFig6_ILPvsHeuristic   (ILP gain over the heuristic)
//	§3 bound → BenchmarkAblationPartitionBound
//	§3.2     → BenchmarkAblationWeights
//	§3 inc.  → BenchmarkAblationIncompleteMBR
//	runtime  → BenchmarkComposeOnly_D1        (the new steps' cost)
//
// benchScale divides the paper's design sizes; at the default the full
// suite runs in well under a minute.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/compatgraph"
	"repro/internal/core"
	"repro/internal/cts"
	"repro/internal/flow"
	"repro/internal/geom"
	"repro/internal/ilp"
	"repro/internal/netlist"
	"repro/internal/paperex"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sta"
)

const benchScale = 40

func profileByName(name string) bench.Spec {
	o := bench.ProfileOpts{Scale: benchScale}
	switch name {
	case "D1":
		return bench.D1(o)
	case "D2":
		return bench.D2(o)
	case "D3":
		return bench.D3(o)
	case "D4":
		return bench.D4(o)
	case "D5":
		return bench.D5(o)
	}
	panic("unknown profile " + name)
}

func runFlowOnce(b *testing.B, spec bench.Spec, mutate func(*flow.Config)) *flow.Report {
	b.Helper()
	gen, err := bench.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := flow.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := flow.Run(gen.Design, gen.Plan, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func pctDrop(base, ours int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-ours) / float64(base)
}

// benchTable1 runs the full Fig. 4 flow on one design profile and reports
// the Table 1 savings.
func benchTable1(b *testing.B, name string) {
	spec := profileByName(name)
	var rep *flow.Report
	for i := 0; i < b.N; i++ {
		rep = runFlowOnce(b, spec, nil)
	}
	b.ReportMetric(pctDrop(rep.Base.TotalRegs, rep.Ours.TotalRegs), "regsave_%")
	b.ReportMetric(pctDrop(rep.Base.CompRegs, rep.Ours.CompRegs), "compsave_%")
	b.ReportMetric(100*(rep.Base.ClkCapPF-rep.Ours.ClkCapPF)/rep.Base.ClkCapPF, "clkcapsave_%")
	b.ReportMetric(pctDrop(rep.Base.ClkBufs, rep.Ours.ClkBufs), "bufsave_%")
	b.ReportMetric(float64(rep.Ours.FailingEndpoints-rep.Base.FailingEndpoints), "failEP_delta")
	b.ReportMetric(float64(rep.Ours.OverflowEdges-rep.Base.OverflowEdges), "ovfl_delta")
	b.ReportMetric(100*(rep.Base.WLClkMM+rep.Base.WLSigMM-rep.Ours.WLClkMM-rep.Ours.WLSigMM)/
		(rep.Base.WLClkMM+rep.Base.WLSigMM), "wlsave_%")
}

func BenchmarkTable1_D1(b *testing.B) { benchTable1(b, "D1") }
func BenchmarkTable1_D2(b *testing.B) { benchTable1(b, "D2") }
func BenchmarkTable1_D3(b *testing.B) { benchTable1(b, "D3") }
func BenchmarkTable1_D4(b *testing.B) { benchTable1(b, "D4") }
func BenchmarkTable1_D5(b *testing.B) { benchTable1(b, "D5") }

// BenchmarkFig3_WorkedExample reruns the Fig. 1-3 example and reports the
// ILP objective with and without incomplete MBRs (5/3 and 31/30 under the
// §3.2 weight formula).
func BenchmarkFig3_WorkedExample(b *testing.B) {
	var objComplete, objIncomplete float64
	for i := 0; i < b.N; i++ {
		for _, incomplete := range []bool{false, true} {
			d, regs, err := paperex.Design(incomplete)
			if err != nil {
				b.Fatal(err)
			}
			g := paperex.Graph(d, regs)
			opts := core.DefaultOptions()
			opts.AllowIncomplete = incomplete
			res, err := core.Compose(d, g, nil, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.RegsAfter != 3 {
				b.Fatalf("worked example must end at 3 registers, got %d", res.RegsAfter)
			}
			if incomplete {
				objIncomplete = res.ObjectiveSum
			} else {
				objComplete = res.ObjectiveSum
			}
		}
	}
	b.ReportMetric(objComplete, "obj_complete")
	b.ReportMetric(objIncomplete, "obj_incomplete")
}

// BenchmarkFig5_BitWidths reports the 8-bit MBR share before and after
// composition (the paper's "more 8-bit MBRs are used" observation) on D1.
func BenchmarkFig5_BitWidths(b *testing.B) {
	spec := profileByName("D1")
	var before8, after8 float64
	for i := 0; i < b.N; i++ {
		gen, err := bench.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		hb := core.BitWidthHistogram(gen.Design)
		if _, err := flow.Run(gen.Design, gen.Plan, flow.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
		ha := core.BitWidthHistogram(gen.Design)
		before8 = share(hb, 8)
		after8 = share(ha, 8)
	}
	b.ReportMetric(before8, "8bit_before_%")
	b.ReportMetric(after8, "8bit_after_%")
}

func share(h map[int]int, bits int) float64 {
	total := 0
	for _, n := range h {
		total += n
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(h[bits]) / float64(total)
}

// BenchmarkFig6_ILPvsHeuristic reports the ILP's average register-count
// gain over the greedy mapping heuristic across all five designs.
func BenchmarkFig6_ILPvsHeuristic(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = 0
		for _, name := range []string{"D1", "D2", "D3", "D4", "D5"} {
			spec := profileByName(name)
			ilp := runFlowOnce(b, spec, nil)
			greedy := runFlowOnce(b, spec, func(cfg *flow.Config) {
				cfg.Compose.Method = core.MethodGreedy
			})
			gain += 100 * float64(greedy.Ours.TotalRegs-ilp.Ours.TotalRegs) /
				float64(greedy.Ours.TotalRegs)
		}
		gain /= 5
	}
	b.ReportMetric(gain, "ilp_gain_%")
}

// BenchmarkAblationPartitionBound sweeps the §3 subgraph bound and reports
// the QoR (registers after) at each setting as sub-benchmarks.
func BenchmarkAblationPartitionBound(b *testing.B) {
	spec := profileByName("D1")
	for _, bound := range []int{10, 20, 30, 50} {
		b.Run(benchName("bound", bound), func(b *testing.B) {
			var rep *flow.Report
			for i := 0; i < b.N; i++ {
				rep = runFlowOnce(b, spec, func(cfg *flow.Config) {
					cfg.Compose.MaxSubgraphNodes = bound
				})
			}
			b.ReportMetric(float64(rep.Ours.TotalRegs), "regs_after")
			b.ReportMetric(float64(rep.Compose.Candidates), "candidates")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationWeights compares the §3.2 weights against unit weights:
// the register counts are close, but the unweighted ILP pays in overflow
// edges and legalization disturbance.
func BenchmarkAblationWeights(b *testing.B) {
	spec := profileByName("D2")
	for _, weights := range []bool{true, false} {
		name := "weighted"
		if !weights {
			name = "unit"
		}
		b.Run(name, func(b *testing.B) {
			var rep *flow.Report
			for i := 0; i < b.N; i++ {
				rep = runFlowOnce(b, spec, func(cfg *flow.Config) {
					cfg.Compose.UseWeights = weights
				})
			}
			b.ReportMetric(float64(rep.Ours.TotalRegs), "regs_after")
			b.ReportMetric(float64(rep.Ours.OverflowEdges-rep.Base.OverflowEdges), "ovfl_delta")
			b.ReportMetric(float64(rep.Compose.LegalizationMoved), "legal_moved")
		})
	}
}

// BenchmarkAblationIncompleteMBR sweeps the incomplete-MBR admission rule.
func BenchmarkAblationIncompleteMBR(b *testing.B) {
	spec := profileByName("D2")
	type mode struct {
		name     string
		allow    bool
		overhead float64
	}
	for _, m := range []mode{
		{"off", false, 0},
		{"cap5pct", true, 0.05},
		{"cap30pct", true, 0.30},
	} {
		b.Run(m.name, func(b *testing.B) {
			var rep *flow.Report
			for i := 0; i < b.N; i++ {
				rep = runFlowOnce(b, spec, func(cfg *flow.Config) {
					cfg.Compose.AllowIncomplete = m.allow
					cfg.Compose.IncompleteAreaOverhead = m.overhead
				})
			}
			b.ReportMetric(float64(rep.Ours.TotalRegs), "regs_after")
			b.ReportMetric(float64(rep.Compose.IncompleteMBRs), "incomplete_mbrs")
			b.ReportMetric(rep.Ours.AreaUM2, "area_um2")
		})
	}
}

// BenchmarkAblationDecompose evaluates the paper's future-work idea (§5):
// decomposing the initial 8-bit MBRs before recomposition, on the 8-bit-
// rich D4 profile where the paper predicts it helps most.
func BenchmarkAblationDecompose(b *testing.B) {
	spec := profileByName("D4")
	for _, decompose := range []bool{false, true} {
		name := "skip8bit"
		if decompose {
			name = "decompose"
		}
		b.Run(name, func(b *testing.B) {
			var rep *flow.Report
			for i := 0; i < b.N; i++ {
				rep = runFlowOnce(b, spec, func(cfg *flow.Config) {
					cfg.DecomposeExisting = decompose
				})
			}
			b.ReportMetric(float64(rep.Ours.TotalRegs), "regs_after")
			b.ReportMetric(rep.Ours.ClkCapPF, "clkcap_pF")
			b.ReportMetric(float64(rep.DecomposedMBRs), "decomposed")
		})
	}
}

// BenchmarkComposeOnly_D1 isolates the cost of the new steps (candidate
// enumeration + weighting + ILP + mapping + placement LP), the quantity
// behind the paper's "Exec. Time" column. Sub-benchmarks sweep the worker
// count of the parallel per-subgraph pipeline: workers=1 is the sequential
// legacy path, workers=N is full fan-out; on a multi-core host the speedup
// between them is the headline of the parallel execution layer (results are
// byte-identical either way, so only time differs).
// wiggleRegs applies small random moves to n movable registers — the ≤1%
// parametric edit pattern of the flow's skew/sizing hot loop.
func wiggleRegs(d *netlist.Design, regs []*netlist.Inst, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		r := regs[rng.Intn(len(regs))]
		if r.Fixed {
			continue
		}
		d.MoveInst(r, geom.Point{
			X: r.Pos.X + int64(rng.Intn(2001)) - 1000,
			Y: r.Pos.Y + int64(rng.Intn(2001)) - 1000,
		})
	}
}

// BenchmarkSTA_FullVsIncremental measures the tentpole win of the retained
// STA engine: after a ≤1% register wiggle (the flow's per-iteration edit
// volume), "full" forces a from-scratch graph rebuild and sweep while
// "incremental" re-propagates only the edit cone. The ratio of the two
// times is the headline incremental speedup; cone_pins reports how few
// pins the incremental path actually re-evaluated.
func BenchmarkSTA_FullVsIncremental(b *testing.B) {
	gen, err := bench.Generate(profileByName("D1"))
	if err != nil {
		b.Fatal(err)
	}
	d := gen.Design
	regs := d.Registers()
	nEdit := len(regs) / 100
	if nEdit < 1 {
		nEdit = 1
	}
	for _, mode := range []string{"full", "incremental"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			eng := sta.New(d)
			eng.SetIdealClocks(true)
			if _, err := eng.Run(); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				wiggleRegs(d, regs, rng, nEdit)
				if mode == "full" {
					eng.Invalidate()
				}
				b.StartTimer()
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mode == "incremental" {
				s := eng.Stats()
				if s.IncrementalRuns == 0 {
					b.Fatal("incremental path never engaged")
				}
				b.ReportMetric(float64(s.LastConePins), "cone_pins")
			}
			b.ReportMetric(float64(d.PinSpace()), "pins")
		})
	}
}

// BenchmarkCompatGraph_FullVsDelta measures the retained compatibility-graph
// engine against a from-scratch compat.Build after a ≤1% register wiggle —
// the edit volume of one skew/sizing iteration. "full" rebuilds the whole
// pairwise edge phase each round; "delta" re-tests only pairs owned by
// changed nodes (both produce identical graphs; the oracle tests in
// internal/compatgraph pin the equality). pairs_tested / edges_retested
// report how little work the delta path actually did.
func BenchmarkCompatGraph_FullVsDelta(b *testing.B) {
	gen, err := bench.Generate(bench.D1(bench.ProfileOpts{Scale: 10}))
	if err != nil {
		b.Fatal(err)
	}
	d := gen.Design
	regs := d.Registers()
	nEdit := len(regs) / 100
	if nEdit < 1 {
		nEdit = 1
	}
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	for _, mode := range []string{"full", "delta"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			cg := compatgraph.New(d, gen.Plan, compatgraph.Options{Compat: compat.DefaultOptions()})
			res, err := eng.Run()
			if err != nil {
				b.Fatal(err)
			}
			var g *compat.Graph = cg.Update(res) // prime the retained state
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				wiggleRegs(d, regs, rng, nEdit)
				if res, err = eng.Run(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if mode == "full" {
					g = compat.Build(d, res, gen.Plan, compat.DefaultOptions())
				} else {
					g = cg.Update(res)
				}
			}
			b.StopTimer()
			st := g.Stats()
			b.ReportMetric(float64(st.Edges), "edges")
			if mode == "delta" {
				cs := cg.Stats()
				if cs.Deltas == 0 {
					b.Fatal("delta path never engaged")
				}
				b.ReportMetric(float64(cs.LastPairsTested), "pairs_tested")
				b.ReportMetric(float64(cs.LastEdgesRetested), "edges_retested")
			}
		})
	}
}

// BenchmarkSTA_FullRun_D1 sweeps the worker count of the levelized
// arrival/required sweeps on a full from-scratch run. Results are
// byte-identical at every setting, so only time differs; on a multi-core
// host the workers=N line is the parallel-sweep speedup.
func BenchmarkSTA_FullRun_D1(b *testing.B) {
	gen, err := bench.Generate(profileByName("D1"))
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		if n > 2 {
			counts = append(counts, 2)
		}
		counts = append(counts, n)
	}
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := sta.New(gen.Design)
			eng.SetIdealClocks(true)
			eng.SetWorkers(workers)
			for i := 0; i < b.N; i++ {
				eng.Invalidate()
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComposeOnly_D1(b *testing.B) {
	spec := profileByName("D1")
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		if n > 2 {
			counts = append(counts, 2)
		}
		counts = append(counts, n)
	}
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gen, err := bench.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
				eng := sta.New(gen.Design)
				eng.SetIdealClocks(true)
				res, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				g := compat.Build(gen.Design, res, gen.Plan, compat.DefaultOptions())
				opts := core.DefaultOptions()
				opts.Workers = workers
				b.StartTimer()
				if _, err := core.Compose(gen.Design, g, gen.Plan, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCTS_FullVsDelta compares the two ways of bringing the clock
// trees back in sync after a small placement ECO (~1% of the registers
// move): a batch rebuild (per-root cts.Build + global legalization, the
// pre-retained flow) against the retained engine's delta Update. Twin
// designs receive identical edits; the oracle tests in internal/cts prove
// the two paths produce identical trees, so this measures cost only.
func BenchmarkCTS_FullVsDelta(b *testing.B) {
	spec := bench.D2(bench.ProfileOpts{Scale: 6 * benchScale})
	genA, err := bench.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	genB, err := bench.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	dA, dB := genA.Design, genB.Design

	eng := cts.NewEngine(dA, cts.DefaultOptions())
	if err := eng.Attach(); err != nil {
		b.Fatal(err)
	}

	buildFull := func(d *netlist.Design) []*cts.Tree {
		var roots []*netlist.Net
		d.Nets(func(n *netlist.Net) {
			if n.IsClock && len(n.Sinks) > 0 {
				roots = append(roots, n)
			}
		})
		var trees []*cts.Tree
		var bufs []*netlist.Inst
		for _, n := range roots {
			t, err := cts.Build(d, n, cts.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			trees = append(trees, t)
			bufs = append(bufs, t.Buffers...)
		}
		place.LegalizeIncremental(d, bufs)
		return trees
	}

	rng := rand.New(rand.NewSource(7))
	var tDelta, tFull time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regsA, regsB := dA.Registers(), dB.Registers()
		edits := len(regsA)/100 + 1 // ≤1% of the registers move
		for k := 0; k < edits; k++ {
			j := rng.Intn(len(regsA))
			dx := int64(rng.Intn(40001) - 20000)
			dy := int64(rng.Intn(40001) - 20000)
			p := regsA[j].Pos
			p.X += dx
			p.Y += dy
			dA.MoveInst(regsA[j], p)
			dB.MoveInst(regsB[j], p)
		}

		t0 := time.Now()
		if err := eng.Update(); err != nil {
			b.Fatal(err)
		}
		tDelta += time.Since(t0)

		t0 = time.Now()
		trees := buildFull(dB)
		tFull += time.Since(t0)
		for j := len(trees) - 1; j >= 0; j-- {
			trees[j].Remove()
		}
	}
	b.StopTimer()
	st := eng.Stats()
	if st.Deltas != b.N {
		b.Fatalf("delta path not exercised: %+v", st)
	}
	n := float64(b.N)
	b.ReportMetric(float64(tDelta.Nanoseconds())/n, "delta_ns/update")
	b.ReportMetric(float64(tFull.Nanoseconds())/n, "full_ns/update")
	b.ReportMetric(float64(tFull)/float64(tDelta), "speedup_x")
}

// BenchmarkCompatNodePhase_FullVsDelta isolates the compat engine's node
// phase: "full" recomputes every register's eligibility/info/signature by
// the linear sweep (no timing feed attached), "delta" consumes the STA
// engine's changed-slack feed and visits only the dirty candidates. Edits
// move ≤1% of the registers per update; everything else (edge phase, edit
// volume, designs) is identical, so node_ns/update is the tentpole's
// speedup.
func BenchmarkCompatNodePhase_FullVsDelta(b *testing.B) {
	gen, err := bench.Generate(bench.D1(bench.ProfileOpts{Scale: 10}))
	if err != nil {
		b.Fatal(err)
	}
	d := gen.Design
	regs := d.Registers()
	nEdit := len(regs)/100 + 1
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	for _, mode := range []string{"full", "delta"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			cg := compatgraph.New(d, gen.Plan, compatgraph.Options{Compat: compat.DefaultOptions()})
			if mode == "delta" {
				cg.SetTimingFeed(eng)
			}
			res, err := eng.Run()
			if err != nil {
				b.Fatal(err)
			}
			cg.Update(res) // prime the retained state (linear by definition)
			base := cg.Stats()
			rng := rand.New(rand.NewSource(11))
			var visited int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				wiggleRegs(d, regs, rng, nEdit)
				if res, err = eng.Run(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				cg.Update(res)
				visited += cg.Stats().LastNodesVisited
			}
			b.StopTimer()
			cs := cg.Stats()
			deltas := cs.NodeDeltas - base.NodeDeltas
			// An occasional update may legitimately fall back to the linear
			// sweep (a large re-propagated cone overflows the changed-slack
			// feed); the amortized numbers below include those, but the
			// delta path must carry the bulk of the updates.
			if mode == "delta" && deltas < (b.N+1)/2 {
				b.Fatalf("delta node phase took only %d of %d updates: %+v", deltas, b.N, cs)
			}
			n := float64(b.N)
			if mode == "delta" {
				b.ReportMetric(float64(deltas)/n, "node_deltas/update")
			}
			b.ReportMetric(float64(cs.NodePhaseNS-base.NodePhaseNS)/n, "node_ns/update")
			b.ReportMetric(float64(visited)/n, "nodes_visited/update")
		})
	}
}

// BenchmarkCTSMeasure_FullVsCached compares the batch clock-network walk
// (cts.Measure) with the engine's retained per-tree metrics after delta
// updates folding ≤1% register moves. Both values are asserted equal
// bit-for-bit every iteration; speedup_x is the measurement-point speedup
// the retained metrics layer buys.
func BenchmarkCTSMeasure_FullVsCached(b *testing.B) {
	gen, err := bench.Generate(bench.D2(bench.ProfileOpts{Scale: 10}))
	if err != nil {
		b.Fatal(err)
	}
	d := gen.Design
	eng := cts.NewEngine(d, cts.DefaultOptions())
	if err := eng.Attach(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var tFull, tCached time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		regs := d.Registers()
		wiggleRegs(d, regs, rng, len(regs)/100+1)
		if err := eng.Update(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		t0 := time.Now()
		cached := eng.Metrics()
		tCached += time.Since(t0)
		t0 = time.Now()
		full := cts.Measure(d)
		tFull += time.Since(t0)
		if cached != full {
			b.Fatalf("cached metrics %+v != Measure %+v", cached, full)
		}
	}
	b.StopTimer()
	if st := eng.Stats(); st.MetricsFallbacks != 0 {
		b.Fatalf("cached path fell back %d times", st.MetricsFallbacks)
	}
	n := float64(b.N)
	b.ReportMetric(float64(tCached.Nanoseconds())/n, "cached_ns/measure")
	b.ReportMetric(float64(tFull.Nanoseconds())/n, "full_ns/measure")
	b.ReportMetric(float64(tFull)/float64(tCached), "speedup_x")
}

// BenchmarkRoute_FullVsDelta compares the two ways of refreshing the
// congestion map after the flow's per-iteration edit volume (≤1% of the
// registers move): a from-scratch route.Estimate over every net against
// the retained engine's delta update, which re-contributes only the moved
// registers' nets. The oracle suite in internal/route proves both paths
// produce bit-identical maps; the overflow counts are still cross-checked
// here every iteration, so speedup_x measures cost alone.
func BenchmarkRoute_FullVsDelta(b *testing.B) {
	for _, profile := range []string{"D1", "D2"} {
		b.Run(profile, func(b *testing.B) {
			gen, err := bench.Generate(profileByName(profile))
			if err != nil {
				b.Fatal(err)
			}
			d := gen.Design
			opts := route.DefaultOptions()
			rt := route.NewEngine(d, opts)
			rt.Update() // baseline map, so iterations measure only the edits

			rng := rand.New(rand.NewSource(11))
			var tDelta, tFull time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				regs := d.Registers()
				wiggleRegs(d, regs, rng, len(regs)/100+1)
				b.StartTimer()

				t0 := time.Now()
				delta := rt.OverflowEdges()
				tDelta += time.Since(t0)

				t0 = time.Now()
				full := route.Estimate(d, opts).OverflowEdges()
				tFull += time.Since(t0)

				if delta != full {
					b.Fatalf("delta overflow %d != batch %d", delta, full)
				}
			}
			b.StopTimer()
			if st := rt.Stats(); st.Deltas == 0 {
				b.Fatalf("delta path not exercised: %+v", st)
			}
			n := float64(b.N)
			b.ReportMetric(float64(tDelta.Nanoseconds())/n, "delta_ns/update")
			b.ReportMetric(float64(tFull.Nanoseconds())/n, "full_ns/update")
			b.ReportMetric(float64(tFull)/float64(tDelta), "speedup_x")
		})
	}
}

// BenchmarkCompose_MemoVsFresh compares the retained compose engine (memo =
// signature-keyed subgraph solve reuse + ILP warm starts) against the
// memo-free ComposeWith on twin designs composed to convergence first. Two
// regimes:
//
//   - settled: no edits between rounds — the multi-pass flow's tail (pass ≥
//     3 recomposes an unchanged design to confirm convergence). The engine
//     replays every subgraph; the memo-free path re-enumerates and re-solves
//     all of them, so speedup_x here is the pure memo win.
//   - wiggle1pct: each round moves ≤1% of the registers identically on both
//     twins — the skew/sizing hot loop. Both paths must re-solve the dirty
//     subgraphs and commit the resulting merges, so the memo saves only the
//     clean share of the round.
//
// The oracle tests in internal/core prove the two paths select identically;
// the observable result is still cross-checked every iteration, so
// speedup_x measures cost alone. reused/update and solved/update report how
// much of each round the memo replayed versus re-solved.
func BenchmarkCompose_MemoVsFresh(b *testing.B) {
	for _, mode := range []string{"settled", "wiggle1pct"} {
		b.Run(mode, func(b *testing.B) {
			benchComposeMemoVsFresh(b, mode == "wiggle1pct")
		})
	}
}

func benchComposeMemoVsFresh(b *testing.B, wiggle bool) {
	spec := profileByName("D1")
	genA, err := bench.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	genB, err := bench.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	dA, dB := genA.Design, genB.Design
	ce := core.NewEngine(dA)

	// The surrounding pipeline is the flow's retained one on BOTH twins —
	// incremental STA plus the compatgraph engine's subgraph feed — and it
	// runs outside the timers: the timed region is the compose phase alone,
	// memoized versus memo-free, over the exact same subgraphs.
	stA, stB := sta.New(dA), sta.New(dB)
	stA.SetIdealClocks(true)
	stB.SetIdealClocks(true)
	cgOpts := compatgraph.Options{Compat: compat.DefaultOptions()}
	cgA := compatgraph.New(dA, genA.Plan, cgOpts)
	cgB := compatgraph.New(dB, genB.Plan, cgOpts)
	maxNodes := core.DefaultOptions().MaxSubgraphNodes

	graphOf := func(st *sta.Engine, cg *compatgraph.Engine) (*compat.Graph, [][]int, []bool) {
		res, err := st.Run()
		if err != nil {
			b.Fatal(err)
		}
		g := cg.Update(res)
		subs, clean := cg.SubgraphsHinted(maxNodes)
		return g, subs, clean
	}

	// compose runs one round on both twins and cross-checks the results.
	// Commit-phase MBR names must be unique per round (as the flow's
	// per-pass prefixes guarantee), and identical across the twins so the
	// designs stay in lockstep.
	pass := 0
	compose := func() (*core.Result, time.Duration, time.Duration) {
		pass++
		opts := core.DefaultOptions()
		opts.NamePrefix = fmt.Sprintf("mvf%d", pass)
		gA, subsA, hintsA := graphOf(stA, cgA)
		gB, subsB, _ := graphOf(stB, cgB)
		t0 := time.Now()
		resA, err := ce.Compose(gA, genA.Plan, subsA, hintsA, opts)
		dMemo := time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}
		t0 = time.Now()
		resB, err := core.ComposeWith(dB, gB, genB.Plan, subsB, opts)
		dFresh := time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}
		if resA.RegsAfter != resB.RegsAfter || len(resA.MBRs) != len(resB.MBRs) ||
			math.Abs(resA.ObjectiveSum-resB.ObjectiveSum) > 1e-9 {
			b.Fatalf("engine diverged from fresh compose: regs %d/%d, MBRs %d/%d, obj %g/%g",
				resA.RegsAfter, resB.RegsAfter, len(resA.MBRs), len(resB.MBRs),
				resA.ObjectiveSum, resB.ObjectiveSum)
		}
		return resA, dMemo, dFresh
	}

	// Converge the twins so the timed iterations measure the steady state
	// (composition already applied, small parametric edits trickling in).
	for {
		res, _, _ := compose()
		if len(res.MBRs) == 0 {
			break
		}
		if pass > 24 {
			b.Fatal("twins did not converge")
		}
	}

	rng := rand.New(rand.NewSource(17))
	var tMemo, tFresh time.Duration
	before := ce.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if wiggle {
			regsA, regsB := dA.Registers(), dB.Registers()
			nEdit := len(regsA)/100 + 1 // ≤1% of the registers move
			for k := 0; k < nEdit; k++ {
				j := rng.Intn(len(regsA))
				if regsA[j].Fixed {
					continue
				}
				p := regsA[j].Pos
				p.X += int64(rng.Intn(4001)) - 2000
				p.Y += int64(rng.Intn(4001)) - 2000
				dA.MoveInst(regsA[j], p)
				dB.MoveInst(regsB[j], p)
			}
		}
		_, dMemo, dFresh := compose()
		tMemo += dMemo
		tFresh += dFresh
	}
	b.StopTimer()
	st := ce.Stats()
	if st.SubgraphsReused == before.SubgraphsReused {
		b.Fatalf("memo never replayed a subgraph: %+v", st)
	}
	n := float64(b.N)
	b.ReportMetric(float64(st.SubgraphsReused-before.SubgraphsReused)/n, "reused/update")
	b.ReportMetric(float64(st.SubgraphsSolved-before.SubgraphsSolved)/n, "solved/update")
	b.ReportMetric(float64(tMemo.Nanoseconds())/n, "memo_ns/update")
	b.ReportMetric(float64(tFresh.Nanoseconds())/n, "full_ns/update")
	b.ReportMetric(float64(tFresh)/float64(tMemo), "speedup_x")
}

// BenchmarkILP_WarmVsCold measures the warm start's branch & bound cost on
// cover instances re-solved after a weight drift — the retained engine's
// regime when a dirty subgraph reappears slightly changed. Each pooled
// instance was solved once up front; multi-member columns outside that
// optimum then got cheaper, and every iteration re-solves the perturbed
// instance cold and warm-started from the stale selection. Two sub-regimes
// are reported separately because the warm contract prices them oppositely:
//
//   - improved: the drift made a strictly better cover available. The warm
//     incumbent bounds the search from node one and is simply improved on —
//     no retry, fewer nodes than cold.
//   - unchanged: the old selection is still optimal. The seeded probe proves
//     no improvement exists, then the canonical greedy-seeded retry runs for
//     selection neutrality — the warm solve pays for the proof.
//
// The selections are asserted identical to cold every iteration (the warm
// contract); nodes_cold vs nodes_warm is the search-tree delta.
func BenchmarkILP_WarmVsCold(b *testing.B) {
	type warmCase struct {
		inst ilp.CoverInstance
		warm []int
	}
	rng := rand.New(rand.NewSource(23))
	var improved, unchanged []warmCase
	for attempts := 0; (len(improved) < 16 || len(unchanged) < 16) && attempts < 4096; attempts++ {
		// Greedy-adversarial blocks (the warm_test trap shape, with noise):
		// per 6-element block one column is simultaneously the largest, the
		// cheapest, and the best weight-per-member, so every greedy ordering
		// grabs it and strands two elements. The previous optimum (the two
		// triples) prices well below greedy — exactly the regime where a
		// stale-but-good warm cover has information the bound does not.
		const blocks = 3
		inst := ilp.CoverInstance{NumElems: 6 * blocks}
		for bl := 0; bl < blocks; bl++ {
			o := 6 * bl
			for e := 0; e < 6; e++ {
				inst.Sets = append(inst.Sets, ilp.CoverSet{Members: []int{o + e}, Weight: 1})
			}
			inst.Sets = append(inst.Sets,
				ilp.CoverSet{Members: []int{o + 1, o + 2, o + 3, o + 4}, Weight: 0.2 + rng.Float64()*0.05},
				ilp.CoverSet{Members: []int{o, o + 1, o + 2}, Weight: 0.6 + rng.Float64()*0.05},
				ilp.CoverSet{Members: []int{o + 3, o + 4, o + 5}, Weight: 0.6 + rng.Float64()*0.05},
				ilp.CoverSet{Members: []int{o, o + 1}, Weight: 0.55 + rng.Float64()*0.1},
				ilp.CoverSet{Members: []int{o + 2, o + 3}, Weight: 0.55 + rng.Float64()*0.1},
				ilp.CoverSet{Members: []int{o + 4, o + 5}, Weight: 0.55 + rng.Float64()*0.1},
			)
		}
		// Cross-block columns entangle the blocks so the LP relaxation goes
		// fractional and branch & bound actually branches.
		for i := 0; i < 18; i++ {
			var ms []int
			for e := 0; e < inst.NumElems; e++ {
				if rng.Intn(5) == 0 {
					ms = append(ms, e)
				}
			}
			if len(ms) < 2 {
				continue
			}
			inst.Sets = append(inst.Sets, ilp.CoverSet{
				Members: ms,
				Weight:  0.3 + 0.25*float64(len(ms)) + rng.Float64()*0.3,
			})
		}
		prev, err := ilp.SolveCover(inst)
		if err != nil {
			continue
		}
		chosen := make(map[int]bool, len(prev.Chosen))
		for _, c := range prev.Chosen {
			chosen[c] = true
		}
		for i := range inst.Sets {
			if len(inst.Sets[i].Members) > 1 && !chosen[i] && rng.Intn(2) == 0 {
				inst.Sets[i].Weight *= 0.6
			}
		}
		wc := warmCase{inst, append([]int(nil), prev.Chosen...)}
		// Chosen columns kept their weights, so the warm cover still prices
		// at prev.Objective; a cheaper cold optimum means the drift opened a
		// strict improvement.
		post, err := ilp.SolveCover(inst)
		if err != nil {
			continue
		}
		if post.Objective < prev.Objective-1e-9 {
			improved = append(improved, wc)
		} else {
			unchanged = append(unchanged, wc)
		}
	}
	if len(improved) == 0 || len(unchanged) == 0 {
		b.Fatalf("case pool degenerate: %d improved, %d unchanged", len(improved), len(unchanged))
	}

	run := func(b *testing.B, cases []warmCase) {
		var nodesCold, nodesWarm int
		var tCold, tWarm time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := cases[i%len(cases)]
			cold := c.inst
			cold.Warm = nil
			t0 := time.Now()
			rc, err := ilp.SolveCover(cold)
			tCold += time.Since(t0)
			if err != nil {
				b.Fatal(err)
			}
			warm := c.inst
			warm.Warm = c.warm
			t0 = time.Now()
			rw, err := ilp.SolveCover(warm)
			tWarm += time.Since(t0)
			if err != nil {
				b.Fatal(err)
			}
			if math.Abs(rw.Objective-rc.Objective) > 1e-9 || len(rw.Chosen) != len(rc.Chosen) {
				b.Fatalf("warm solve diverged: obj %g/%g, %d/%d columns",
					rw.Objective, rc.Objective, len(rw.Chosen), len(rc.Chosen))
			}
			nodesCold += rc.Nodes
			nodesWarm += rw.Nodes
		}
		b.StopTimer()
		n := float64(b.N)
		b.ReportMetric(float64(nodesCold)/n, "nodes_cold")
		b.ReportMetric(float64(nodesWarm)/n, "nodes_warm")
		b.ReportMetric(float64(tCold.Nanoseconds())/n, "cold_ns/solve")
		b.ReportMetric(float64(tWarm.Nanoseconds())/n, "warm_ns/solve")
		if tWarm > 0 {
			b.ReportMetric(float64(tCold)/float64(tWarm), "speedup_x")
		}
	}
	b.Run("improved", func(b *testing.B) { run(b, improved) })
	b.Run("unchanged", func(b *testing.B) { run(b, unchanged) })
}

// BenchmarkBankDebankLoop closes the bank/debank ECO loop on the
// 8-bit-rich D4 profile: a compose-only baseline versus rounds of
// slack-driven decompose (violating MBRs debanked under a budget, the
// slack relief measured in the debanked state), restore (stranded bits
// re-banked to their original widths) and recomposition. Each round's
// debanked measurement records how much WNS the violating cones recover
// when their MBRs are split; the restore+recompose closes the round so
// the loop converges instead of fragmenting 8-bit groups permanently.
// The loop must end with WNS no worse and the register count no higher
// than the compose-only baseline. The WNS/register trajectory of the
// last run is written to BENCH_eco.json.
func BenchmarkBankDebankLoop(b *testing.B) {
	spec := profileByName("D4")
	const rounds = 3
	dcfg := flow.DecomposeConfig{Budget: 8, SlackThresholdPS: 0}

	type point struct {
		Step  string  `json:"step"`
		WNSPS float64 `json:"wnsPS"`
		Regs  int     `json:"regs"`
	}
	type trajectory struct {
		Profile    string  `json:"profile"`
		Scale      int     `json:"scale"`
		Rounds     int     `json:"rounds"`
		Budget     int     `json:"budget"`
		BaseWNSPS  float64 `json:"baselineWNSPS"`
		BaseRegs   int     `json:"baselineRegs"`
		FinalWNSPS float64 `json:"finalWNSPS"`
		FinalRegs  int     `json:"finalRegs"`
		Restored   int     `json:"restored"`
		Steps      []point `json:"steps"`
	}

	newSession := func() *flow.Session {
		gen, err := bench.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		s, err := flow.NewSession(gen.Design, gen.Plan, flow.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	measure := func(s *flow.Session) flow.Metrics {
		m, err := s.Measure()
		if err != nil {
			b.Fatal(err)
		}
		return m
	}

	var last trajectory
	for i := 0; i < b.N; i++ {
		// Compose-only baseline.
		base := newSession()
		if _, err := base.ComposePass(); err != nil {
			b.Fatal(err)
		}
		bm := measure(base)
		base.Close()

		// The ECO loop: decompose → measure debanked → restore → recompose.
		tr := trajectory{Profile: spec.Name, Scale: benchScale, Rounds: rounds,
			Budget: dcfg.Budget, BaseWNSPS: bm.WNSPS, BaseRegs: bm.TotalRegs}
		eco := newSession()
		if _, err := eco.ComposePass(); err != nil {
			b.Fatal(err)
		}
		m := measure(eco)
		tr.Steps = append(tr.Steps, point{"compose", m.WNSPS, m.TotalRegs})
		restored := 0
		for r := 0; r < rounds; r++ {
			dres, err := eco.DecomposePassWith(dcfg)
			if err != nil {
				b.Fatal(err)
			}
			m = measure(eco)
			tr.Steps = append(tr.Steps, point{
				fmt.Sprintf("decompose[%d victims]", len(dres.Victims)), m.WNSPS, m.TotalRegs})
			n, err := eco.RestorePass()
			if err != nil {
				b.Fatal(err)
			}
			restored += n
			if _, err := eco.ComposePass(); err != nil {
				b.Fatal(err)
			}
			m = measure(eco)
			tr.Steps = append(tr.Steps, point{"restore+recompose", m.WNSPS, m.TotalRegs})
		}
		tr.Restored = restored
		tr.FinalWNSPS, tr.FinalRegs = m.WNSPS, m.TotalRegs
		eco.Close()

		if tr.FinalWNSPS < tr.BaseWNSPS {
			b.Fatalf("bank/debank loop worsened WNS: %.3f ps, baseline %.3f ps",
				tr.FinalWNSPS, tr.BaseWNSPS)
		}
		if tr.FinalRegs > tr.BaseRegs {
			b.Fatalf("bank/debank loop grew registers: %d, baseline %d",
				tr.FinalRegs, tr.BaseRegs)
		}
		last = tr
	}

	b.ReportMetric(last.BaseWNSPS, "base_wns_ps")
	b.ReportMetric(last.FinalWNSPS, "final_wns_ps")
	b.ReportMetric(float64(last.BaseRegs), "base_regs")
	b.ReportMetric(float64(last.FinalRegs), "final_regs")
	b.ReportMetric(float64(last.Restored), "restored")

	enc, err := json.MarshalIndent(last, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_eco.json", append(enc, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
