package repro

// Equivalence oracle for the incremental STA engine: on every bench
// profile, a retained engine re-run after random register edits must be
// byte-identical — exact float equality, no tolerance — to a fresh
// from-scratch analysis of the same design state, at every worker count.
// Parametric rounds (moves, resizes, skews) exercise the cone
// re-propagation path; merge rounds exercise the structural-rebuild
// fallback.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func sameSTAResults(t *testing.T, ctx string, got, want *sta.Results) {
	t.Helper()
	if len(got.Arrival) != len(want.Arrival) {
		t.Fatalf("%s: pin space differs: %d vs %d", ctx, len(got.Arrival), len(want.Arrival))
	}
	for i := range got.Arrival {
		if got.Arrival[i] != want.Arrival[i] {
			t.Fatalf("%s: arrival[%d] = %v want %v", ctx, i, got.Arrival[i], want.Arrival[i])
		}
		if got.Required[i] != want.Required[i] {
			t.Fatalf("%s: required[%d] = %v want %v", ctx, i, got.Required[i], want.Required[i])
		}
		if got.Slack[i] != want.Slack[i] {
			t.Fatalf("%s: slack[%d] = %v want %v", ctx, i, got.Slack[i], want.Slack[i])
		}
	}
	if got.WNS != want.WNS || got.TNS != want.TNS ||
		got.FailingEndpoints != want.FailingEndpoints ||
		got.TotalEndpoints != want.TotalEndpoints {
		t.Fatalf("%s: summary differs: got WNS=%v TNS=%v fail=%d/%d, want WNS=%v TNS=%v fail=%d/%d",
			ctx, got.WNS, got.TNS, got.FailingEndpoints, got.TotalEndpoints,
			want.WNS, want.TNS, want.FailingEndpoints, want.TotalEndpoints)
	}
	if len(got.ClockArrival) != len(want.ClockArrival) {
		t.Fatalf("%s: clock arrival count differs: %d vs %d",
			ctx, len(got.ClockArrival), len(want.ClockArrival))
	}
	for id, v := range want.ClockArrival {
		if got.ClockArrival[id] != v {
			t.Fatalf("%s: clock arrival[%d] = %v want %v", ctx, id, got.ClockArrival[id], v)
		}
	}
}

func TestSTAIncrementalEquivalence(t *testing.T) {
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, 2)
		if n > 2 {
			workerCounts = append(workerCounts, n)
		}
	}
	for _, name := range []string{"D1", "D2", "D3", "D4", "D5"} {
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				gen, err := bench.Generate(profileByName(name))
				if err != nil {
					t.Fatal(err)
				}
				d := gen.Design
				eng := sta.New(d)
				eng.SetWorkers(workers)
				if _, err := eng.Run(); err != nil {
					t.Fatal(err)
				}

				rng := rand.New(rand.NewSource(int64(len(name)*1000 + workers)))
				skews := map[netlist.InstID]float64{}
				for round := 0; round < 3; round++ {
					regs := d.Registers()
					if len(regs) == 0 {
						t.Fatal("no registers")
					}
					nEdit := len(regs) / 100
					if nEdit < 1 {
						nEdit = 1
					}
					for i := 0; i < nEdit; i++ {
						r := regs[rng.Intn(len(regs))]
						if r.Fixed || r.SizeOnly {
							continue
						}
						op := rng.Intn(3)
						if round == 2 {
							op = rng.Intn(4) // final round adds structural merges
						}
						switch op {
						case 0:
							d.MoveInst(r, geom.Point{
								X: r.Pos.X + int64(rng.Intn(4001)) - 2000,
								Y: r.Pos.Y + int64(rng.Intn(4001)) - 2000,
							})
						case 1:
							cs := d.Lib.CellsOfWidth(r.RegCell.Class, r.RegCell.Bits)
							if len(cs) > 1 {
								if err := d.ResizeRegister(r, cs[rng.Intn(len(cs))]); err != nil {
									t.Fatal(err)
								}
							}
						case 2:
							s := float64(rng.Intn(41) - 20)
							eng.SetSkew(r.ID, s)
							if s == 0 {
								delete(skews, r.ID)
							} else {
								skews[r.ID] = s
							}
						case 3:
							o := regs[rng.Intn(len(regs))]
							if o == r || o.Fixed || o.SizeOnly ||
								o.RegCell.Class != r.RegCell.Class {
								continue
							}
							cs := d.Lib.CellsOfWidth(r.RegCell.Class, r.Bits()+o.Bits())
							if len(cs) == 0 {
								continue
							}
							mergeName := fmt.Sprintf("eqm_%s_%d_%d_%d", name, workers, round, i)
							// Structural compatibility (shared control nets)
							// often fails for random pairs; that is fine — a
							// failed merge edits nothing.
							if _, err := d.MergeRegisters([]*netlist.Inst{r, o}, cs[0], mergeName, r.Pos); err == nil {
								regs = d.Registers()
							}
						}
					}

					got, err := eng.Run()
					if err != nil {
						t.Fatal(err)
					}
					oracle := sta.New(d)
					oracle.SetWorkers(workers)
					for id, s := range skews {
						oracle.SetSkew(id, s)
					}
					want, err := oracle.Run()
					if err != nil {
						t.Fatal(err)
					}
					sameSTAResults(t, fmt.Sprintf("round %d", round), got, want)
				}
				if s := eng.Stats(); s.IncrementalRuns == 0 {
					t.Fatalf("incremental path never engaged: %+v", s)
				}
			})
		}
	}
}
