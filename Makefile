# Tier-1 verification plus the race/benchmark targets CI runs.
#
#   make            # build + test (tier-1)
#   make race       # vet + race-detector test sweep (the CI gate)
#   make lint       # gofmt + vet static checks (the CI lint gate)
#   make bench      # paper-reproduction benchmark suite
#   make bench-smoke # one-iteration benchmark pass (CI: catches bit-rot)
#   make serve-smoke # composition-server load harness (determinism + zero rebuilds)
#   make eco-smoke  # ECO-replay load harness (bank/debank rounds) under -race
#   make scale-smoke # Scale:5 end-to-end sweep of all profiles with a peak-RSS bound
#   make golden     # regenerate flow golden files after an intended change

GO ?= go

.PHONY: all build test race lint bench bench-smoke serve-smoke eco-smoke scale-smoke golden fuzz

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Stdlib-only static analysis: the toolchain ships gofmt and vet, so the
# gate needs no network or third-party installs. gofmt -l prints offending
# files; the grep inverts that into a failing exit code with the list shown.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# A reduced run of the composition server's concurrent load harness
# (cmd/mbrserved -selftest): deterministic edit streams over HTTP, every
# stream checked byte-for-byte against a local replay oracle, zero
# retained-engine rebuilds allowed in the steady-state window.
serve-smoke:
	$(GO) run ./cmd/mbrserved -selftest -sessions 2 -batches 20

# The ECO-replay profile of the same harness: logic edits interleaved with
# bank (merge edits), debank (split edits), compose and slack-driven
# decompose rounds. The same guarantees must hold with structural ops in
# the stream — byte-identical oracle replay and zero steady-state
# rebuilds — and -race exercises the session locking around the passes.
eco-smoke:
	$(GO) run -race ./cmd/mbrserved -selftest -eco

# End-to-end scale sweep: generate, STA, compat and streamed composition on
# all five profiles at Scale 5 (a fifth of the paper's cell counts), with the
# process peak RSS asserted under 4 GB. Catches both wall-time blowups (CI's
# job timeout) and memory regressions in the streaming pipeline.
scale-smoke:
	$(GO) run ./cmd/scalebench -profiles D1,D2,D3,D4,D5 -scales 5 -maxrss-mb 4096 -out /dev/null

golden:
	$(GO) test ./internal/flow -run TestGolden -update

fuzz:
	$(GO) test ./internal/clique -fuzz FuzzEnumerateSubCliques -fuzztime 30s
	$(GO) test ./internal/clique -fuzz FuzzParallelSubCliqueMerge -fuzztime 30s
	$(GO) test ./internal/route -fuzz FuzzEstimateDeltaEquivalence -fuzztime 30s
	$(GO) test ./internal/ilp -fuzz FuzzSolveCoverWarmStart -fuzztime 30s
