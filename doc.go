// Package repro is a from-scratch Go reproduction of "Timing Driven
// Incremental Multi-Bit Register Composition Using a Placement-Aware ILP
// Formulation" (DAC 2017).
//
// The implementation lives under internal/ (core is the paper's
// contribution; the other packages are the substrates it needs), the
// executables under cmd/, and runnable examples under examples/. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package repro
