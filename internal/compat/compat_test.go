package compat

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sta"
)

var testLib = lib.MustGenerateDefault()

func ffClass() lib.FuncClass {
	return lib.FuncClass{Kind: lib.FlipFlop, Reset: lib.AsyncReset}
}

// fixture builds a design with n registers of ffClass on one clock/reset,
// each fed from its own input port and feeding its own output port, placed
// close together so placement compatibility holds.
type fixture struct {
	d    *netlist.Design
	regs []*netlist.Inst
	clk  *netlist.Net
	rst  *netlist.Net
}

func newFixture(t testing.TB, n int) *fixture {
	t.Helper()
	d := netlist.NewDesign("c", geom.RectWH(0, 0, 400000, 400000), testLib)
	d.Timing = netlist.TimingSpec{
		ClockPeriod:     2000,
		WireCapPerDBU:   0.0002,
		WireDelayPerDBU: 0.004,
		InputDelay:      100,
		OutputDelay:     100,
	}
	f := &fixture{d: d}
	f.clk = d.AddNet("clk", true)
	f.rst = d.AddNet("rst", false)
	cell := testLib.CellsOfWidth(ffClass(), 1)[0]
	for i := 0; i < n; i++ {
		r, err := d.AddRegister(fmt.Sprintf("r%d", i), cell,
			geom.Point{X: 100000 + int64(i)*2000, Y: 100800})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.ClockPin(r), f.clk)
		d.Connect(d.FindPin(r, netlist.PinReset, 0), f.rst)
		ip, _ := d.AddPort(fmt.Sprintf("in%d", i), true, geom.Point{X: 95000, Y: 100800 + int64(i)*100})
		op, _ := d.AddPort(fmt.Sprintf("out%d", i), false, geom.Point{X: 110000, Y: 100800 + int64(i)*100})
		dn := d.AddNet(fmt.Sprintf("d%d", i), false)
		qn := d.AddNet(fmt.Sprintf("q%d", i), false)
		d.Connect(d.OutPin(ip), dn)
		d.Connect(d.DPin(r, 0), dn)
		d.Connect(d.QPin(r, 0), qn)
		d.Connect(d.FindPin(op, netlist.PinData, 0), qn)
		f.regs = append(f.regs, r)
	}
	return f
}

func (f *fixture) build(t testing.TB, plan *scan.Plan) *Graph {
	t.Helper()
	res, err := sta.New(f.d).Run()
	if err != nil {
		t.Fatal(err)
	}
	return Build(f.d, res, plan, DefaultOptions())
}

func TestAllCompatibleClique(t *testing.T) {
	f := newFixture(t, 4)
	g := f.build(t, nil)
	if len(g.Regs) != 4 {
		t.Fatalf("nodes = %d want 4", len(g.Regs))
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d want 6 (K4)", g.NumEdges())
	}
}

func TestFixedExcluded(t *testing.T) {
	f := newFixture(t, 3)
	f.regs[0].Fixed = true
	f.regs[1].SizeOnly = true
	g := f.build(t, nil)
	if len(g.Regs) != 1 {
		t.Fatalf("nodes = %d want 1", len(g.Regs))
	}
	if g.Excluded[f.regs[0].ID] != ReasonFixed || g.Excluded[f.regs[1].ID] != ReasonFixed {
		t.Fatalf("exclusion reasons: %v", g.Excluded)
	}
	st := g.Stats()
	if st.TotalRegs != 3 || st.ComposableRegs != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLargestWidthExcluded(t *testing.T) {
	f := newFixture(t, 1)
	// Add an 8-bit register (max width in the library).
	cell8 := testLib.CellsOfWidth(ffClass(), 8)[0]
	r8, err := f.d.AddRegister("big", cell8, geom.Point{X: 100000, Y: 102000})
	if err != nil {
		t.Fatal(err)
	}
	f.d.Connect(f.d.ClockPin(r8), f.clk)
	f.d.Connect(f.d.FindPin(r8, netlist.PinReset, 0), f.rst)
	g := f.build(t, nil)
	if g.Excluded[r8.ID] != ReasonLargestWidth {
		t.Fatalf("8-bit register exclusion: %v", g.Excluded[r8.ID])
	}
}

func TestDifferentClassNoEdge(t *testing.T) {
	f := newFixture(t, 2)
	// Register of a different functional class (no reset).
	cellNR := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	r, err := f.d.AddRegister("noreset", cellNR, geom.Point{X: 100000, Y: 103200})
	if err != nil {
		t.Fatal(err)
	}
	f.d.Connect(f.d.ClockPin(r), f.clk)
	g := f.build(t, nil)
	n := g.NodeOf(r.ID)
	if n == -1 {
		t.Fatal("no-reset register should still be a node")
	}
	if len(g.Adj[n]) != 0 {
		t.Fatal("different class must have no edges")
	}
}

func TestDifferentControlNetNoEdge(t *testing.T) {
	f := newFixture(t, 2)
	rst2 := f.d.AddNet("rst2", false)
	f.d.Connect(f.d.FindPin(f.regs[1], netlist.PinReset, 0), rst2)
	g := f.build(t, nil)
	if g.NumEdges() != 0 {
		t.Fatal("different reset nets must break the edge")
	}
}

func TestDifferentClockNoEdge(t *testing.T) {
	f := newFixture(t, 2)
	clk2 := f.d.AddNet("clk2", true)
	f.d.Connect(f.d.ClockPin(f.regs[1]), clk2)
	g := f.build(t, nil)
	if g.NumEdges() != 0 {
		t.Fatal("different clocks must break the edge")
	}
}

func TestGateGroupNoEdge(t *testing.T) {
	f := newFixture(t, 2)
	f.regs[0].GateGroup = 1
	f.regs[1].GateGroup = 2
	g := f.build(t, nil)
	if g.NumEdges() != 0 {
		t.Fatal("different gating groups must break the edge")
	}
}

func TestPlacementIncompatibleWhenFar(t *testing.T) {
	f := newFixture(t, 2)
	// Move the second register and its ports to a distant spot and shrink
	// the period so the slack-derived move radius is far smaller than the
	// separation: the feasible regions then cannot overlap.
	f.d.MoveInst(f.regs[1], geom.Point{X: 300000, Y: 300000})
	f.d.MoveInst(f.d.InstByName("in1"), geom.Point{X: 295000, Y: 300000})
	f.d.MoveInst(f.d.InstByName("out1"), geom.Point{X: 310000, Y: 300000})
	f.d.Timing.ClockPeriod = 400
	g := f.build(t, nil)
	if len(g.Regs) != 2 {
		t.Fatalf("nodes = %d want 2", len(g.Regs))
	}
	if g.NumEdges() != 0 {
		r0, r1 := g.Regs[0], g.Regs[1]
		t.Fatalf("distant registers must be placement incompatible (regions %v, %v)",
			r0.Region, r1.Region)
	}
}

func TestScanCompatibilityRespected(t *testing.T) {
	f := newFixture(t, 3)
	plan := scan.NewPlan()
	plan.AddChain(0, false, []netlist.InstID{f.regs[0].ID, f.regs[1].ID})
	plan.AddChain(1, false, []netlist.InstID{f.regs[2].ID})
	g := f.build(t, plan)
	n0, n1, n2 := g.NodeOf(f.regs[0].ID), g.NodeOf(f.regs[1].ID), g.NodeOf(f.regs[2].ID)
	if !hasEdge(g, n0, n1) {
		t.Fatal("same partition must keep edge")
	}
	if hasEdge(g, n0, n2) || hasEdge(g, n1, n2) {
		t.Fatal("different partition must drop edge")
	}
}

func hasEdge(g *Graph, a, b int) bool {
	for _, v := range g.Adj[a] {
		if v == b {
			return true
		}
	}
	return false
}

func TestTimingSlackDifferenceBreaksEdge(t *testing.T) {
	f := newFixture(t, 2)
	g := f.build(t, nil)
	if g.NumEdges() != 1 {
		t.Fatalf("baseline edge missing")
	}
	// Recompute with an artificially tiny slack-difference tolerance after
	// skewing one register's input arrival: lengthen its input wire by
	// moving its input port far away.
	ip := f.d.InstByName("in1")
	f.d.MoveInst(ip, geom.Point{X: 0, Y: 0})
	res, err := sta.New(f.d).Run()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxSlackDiff = 50
	g2 := Build(f.d, res, nil, opts)
	if g2.NumEdges() != 0 {
		t.Fatal("large D-slack difference must break the edge")
	}
}

func TestOpposedSlackSigns(t *testing.T) {
	cases := []struct {
		ad, aq, bd, bq float64
		want           bool
	}{
		{100, -50, -100, 50, true},
		{-100, 50, 100, -50, true},
		{100, 50, 100, 50, false},
		{-100, -50, -100, -50, false},
		{100, -50, 100, -50, false}, // same orientation
		{0, -50, -100, 50, false},   // zero D is not "positive"
	}
	for i, c := range cases {
		if got := opposed(c.ad, c.aq, c.bd, c.bq); got != c.want {
			t.Errorf("case %d: opposed = %v want %v", i, got, c.want)
		}
	}
}

func TestGroupRegionAndStats(t *testing.T) {
	f := newFixture(t, 3)
	g := f.build(t, nil)
	nodes := []int{0, 1, 2}
	if _, ok := g.GroupRegion(nodes); !ok {
		t.Fatal("near registers should share a region")
	}
	st := g.Stats()
	if st.ComposableRegs != 3 || st.TotalRegs != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGroupScanCompatible(t *testing.T) {
	f := newFixture(t, 4)
	plan := scan.NewPlan()
	plan.AddChain(0, true, []netlist.InstID{f.regs[0].ID, f.regs[1].ID, f.regs[2].ID, f.regs[3].ID})
	g := f.build(t, plan)
	n := func(i int) int { return g.NodeOf(f.regs[i].ID) }
	if !g.GroupScanCompatible([]int{n(0), n(1), n(2)}) {
		t.Fatal("contiguous ordered run must pass")
	}
	if g.GroupScanCompatible([]int{n(0), n(2)}) {
		t.Fatal("gapped ordered run must fail")
	}
}

func TestSlackClampEqualizesUnconstrained(t *testing.T) {
	// Two registers with unconstrained Q slacks (no fanout): after
	// clamping, both Q slacks equal SlackClamp → timing compatible.
	f := newFixture(t, 2)
	for i := 0; i < 2; i++ {
		q := f.d.QPin(f.regs[i], 0)
		f.d.Disconnect(q)
	}
	g := f.build(t, nil)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d want 1", g.NumEdges())
	}
	for _, ri := range g.Regs {
		if ri.QSlack != f.d.Timing.ClockPeriod {
			t.Fatalf("QSlack = %g want clamp %g", ri.QSlack, f.d.Timing.ClockPeriod)
		}
	}
}

func TestStatsCountsEdgesOnce(t *testing.T) {
	f := newFixture(t, 3)
	g := f.build(t, nil)
	st := g.Stats()
	if st.Edges != 3 {
		t.Fatalf("K3 edges = %d want 3", st.Edges)
	}
}

func TestNodeOf(t *testing.T) {
	f := newFixture(t, 2)
	g := f.build(t, nil)
	if g.NodeOf(f.regs[0].ID) == -1 || g.NodeOf(f.regs[1].ID) == -1 {
		t.Fatal("NodeOf must find composable registers")
	}
	if g.NodeOf(99999) != -1 {
		t.Fatal("NodeOf must return -1 for unknown")
	}
}
