// Package compat builds the register compatibility graph of §2: nodes are
// the composable registers of the design, edges connect register pairs that
// are functionally, scan-, placement- and timing-compatible. Candidate MBRs
// are then cliques of this graph (package clique), selected by the ILP
// (package core).
package compat

import (
	"math"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sta"
)

// Options tunes the compatibility rules.
type Options struct {
	// MaxSlackDiff is the largest allowed difference between the D-pin
	// slacks (and, separately, Q-pin slacks) of two compatible registers,
	// in ps (§2: similar magnitude, to avoid upsizing for one critical bit
	// and to keep one shared useful skew workable).
	MaxSlackDiff float64
	// SlackClamp bounds slacks before comparison; unconstrained (+Inf)
	// slacks are clamped here. Defaults to the clock period when zero.
	SlackClamp float64
}

// DefaultOptions returns the rules used by the benchmarks.
func DefaultOptions() Options {
	return Options{MaxSlackDiff: 150}
}

// TestMask identifies the four §2 pairwise compatibility tests. A set bit
// means the test passed (or, in per-edge bookkeeping, that the test is known
// to pass for the pair).
type TestMask uint8

// The four tests, in evaluation order.
const (
	TestFunctional TestMask = 1 << iota
	TestScan
	TestPlacement
	TestTiming

	// TestAll is the mask of a compatible pair: all four tests pass.
	TestAll = TestFunctional | TestScan | TestPlacement | TestTiming
	// TestStatic covers the tests whose inputs are captured by StaticSig.
	TestStatic = TestFunctional | TestScan
)

// NotComposableReason explains why a register was excluded from the graph.
type NotComposableReason string

// Exclusion reasons (Table 1 separates total registers from composable
// ones; these are the paper's cases (a)–(c) plus structural guards).
const (
	ReasonFixed        NotComposableReason = "fixed-or-size-only"
	ReasonNoMBRClass   NotComposableReason = "no-equivalent-mbr-in-library"
	ReasonLargestWidth NotComposableReason = "already-largest-mbr"
	ReasonNoClock      NotComposableReason = "no-clock"
)

// RegInfo is the per-register data the composition engine needs.
type RegInfo struct {
	Inst   *netlist.Inst
	DSlack float64
	QSlack float64
	// Region is the timing-feasible placement region of the cell corner.
	Region geom.Rect
	// ClockPos is the current clock pin position (drives partitioning).
	ClockPos geom.Point
}

// StaticSig captures the structural inputs of the functional and scan
// pairwise tests for one register: two registers pass both tests iff the
// relevant fields agree (see PairTest). The signature only changes when the
// instance itself is edited — connectivity edits note the instance in the
// design's touched log, and a scan plan never reassigns chain identity,
// partition or ordering of a surviving register — so cached signatures of
// untouched registers stay exact across flow passes. Clock is the
// root-resolved clock net (Design.ClockRootNet): two sinks of the same
// distribution root stay clock-compatible even while a retained clock tree
// parents them under different leaf buffers.
type StaticSig struct {
	Class     lib.FuncClass
	GateGroup int
	Clock     netlist.NetID
	Reset     netlist.NetID
	Enable    netlist.NetID
	ScanEn    netlist.NetID
	Scanned   bool
	Chain     int
	Partition int
	Ordered   bool
}

// SigOf computes the static signature of a register under a scan plan (plan
// may be nil for unscanned designs).
func SigOf(d *netlist.Design, plan *scan.Plan, in *netlist.Inst) StaticSig {
	s := StaticSig{
		Class:     in.RegCell.Class,
		GateGroup: in.GateGroup,
		Clock:     d.ClockRootNet(d.ClockNet(in)),
		Reset:     d.ControlNet(in, netlist.PinReset),
		Enable:    d.ControlNet(in, netlist.PinEnable),
		ScanEn:    d.ControlNet(in, netlist.PinScanEnable),
	}
	if plan != nil {
		if c, _, ok := plan.ChainOf(in.ID); ok {
			s.Scanned = true
			s.Chain = c.ID
			s.Partition = c.Partition
			s.Ordered = c.Ordered
		}
	}
	return s
}

// Graph is the compatibility graph over composable registers.
type Graph struct {
	// Regs are the nodes; index = node id.
	Regs []*RegInfo
	// Adj are adjacency lists over node ids.
	Adj [][]int
	// Excluded maps non-composable register instances to the reason.
	Excluded map[netlist.InstID]NotComposableReason
	// Plan is the scan plan used for group-level checks (may be nil).
	Plan *scan.Plan

	opts Options
	d    *netlist.Design
}

// NumEdges returns the edge count of the graph.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n / 2
}

// NodeOf returns the node id of a register instance, or -1.
func (g *Graph) NodeOf(id netlist.InstID) int {
	for i, r := range g.Regs {
		if r.Inst.ID == id {
			return i
		}
	}
	return -1
}

// Build constructs the compatibility graph for the design's current state.
// res must be a fresh timing analysis of d; plan may be nil for unscanned
// designs.
func Build(d *netlist.Design, res *sta.Results, plan *scan.Plan, opts Options) *Graph {
	if opts.SlackClamp == 0 {
		opts.SlackClamp = d.Timing.ClockPeriod
	}
	g := &Graph{
		Excluded: map[netlist.InstID]NotComposableReason{},
		Plan:     plan,
		opts:     opts,
		d:        d,
	}
	var sigs []StaticSig
	for _, in := range d.Registers() {
		if reason, bad := Exclusion(d, in); bad {
			g.Excluded[in.ID] = reason
			continue
		}
		g.Regs = append(g.Regs, NewRegInfo(d, res, in, opts))
		sigs = append(sigs, SigOf(d, plan, in))
	}
	allowCross := plan == nil || plan.AllowCrossChain
	g.Adj = make([][]int, len(g.Regs))
	for i := 0; i < len(g.Regs); i++ {
		for j := i + 1; j < len(g.Regs); j++ {
			if _, ok := PairTest(g.opts, g.Regs[i], g.Regs[j], sigs[i], sigs[j], allowCross); ok {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], i)
			}
		}
	}
	return g
}

// FromParts assembles a Graph from externally maintained pieces (the
// incremental engine in internal/compatgraph). regs must be in ascending
// instance-ID order with ascending-sorted adjacency rows — the same layout
// Build produces — so downstream consumers see byte-identical graphs.
func FromParts(d *netlist.Design, plan *scan.Plan, opts Options, regs []*RegInfo, adj [][]int, excludedIDs map[netlist.InstID]NotComposableReason) *Graph {
	if opts.SlackClamp == 0 {
		opts.SlackClamp = d.Timing.ClockPeriod
	}
	return &Graph{
		Regs:     regs,
		Adj:      adj,
		Excluded: excludedIDs,
		Plan:     plan,
		opts:     opts,
		d:        d,
	}
}

// NewRegInfo computes the cached per-register data for one eligible
// register. opts.SlackClamp must already be resolved (Build and the
// incremental engine default it to the clock period).
func NewRegInfo(d *netlist.Design, res *sta.Results, in *netlist.Inst, opts Options) *RegInfo {
	info := &RegInfo{
		Inst:   in,
		DSlack: clampSlack(sta.RegDSlack(d, res, in), opts.SlackClamp),
		QSlack: clampSlack(sta.RegQSlack(d, res, in), opts.SlackClamp),
		Region: sta.FeasibleRegion(d, res, in),
	}
	if cp := d.ClockPin(in); cp != nil {
		info.ClockPos = d.PinPos(cp)
	} else {
		info.ClockPos = in.Center()
	}
	return info
}

// Exclusion applies the node-eligibility rules (the paper's reasons a–c for
// registers that cannot be composed at all).
func Exclusion(d *netlist.Design, in *netlist.Inst) (NotComposableReason, bool) {
	if in.Fixed || in.SizeOnly {
		return ReasonFixed, true
	}
	if cp := d.ClockPin(in); cp == nil || cp.Net == netlist.NoID {
		return ReasonNoClock, true
	}
	class := in.RegCell.Class
	if !d.Lib.HasClass(class) {
		return ReasonNoMBRClass, true
	}
	if d.Lib.MaxWidth(class) <= in.RegCell.Bits {
		return ReasonLargestWidth, true
	}
	return "", false
}

func clampSlack(s, clamp float64) float64 {
	if math.IsInf(s, 1) || s > clamp {
		return clamp
	}
	if s < -clamp {
		return -clamp
	}
	return s
}

// compatible implements the pairwise edge rule: functional, scan, placement
// and timing compatibility.
func (g *Graph) compatible(a, b *RegInfo) bool {
	allowCross := g.Plan == nil || g.Plan.AllowCrossChain
	_, ok := PairTest(g.opts, a, b,
		SigOf(g.d, g.Plan, a.Inst), SigOf(g.d, g.Plan, b.Inst), allowCross)
	return ok
}

// PairTest runs the four §2 pairwise tests in evaluation order (functional,
// scan, placement, timing) and returns the mask of tests that passed; ok
// reports full compatibility (mask == TestAll). allowCross is the scan
// plan's AllowCrossChain flag (true for a nil plan).
func PairTest(opts Options, a, b *RegInfo, sa, sb StaticSig, allowCross bool) (TestMask, bool) {
	var m TestMask
	if !functionalCompatibleSig(sa, sb) {
		return m, false
	}
	m |= TestFunctional
	if !scanCompatibleSig(sa, sb, allowCross) {
		return m, false
	}
	m |= TestScan
	dm, ok := PairTestDynamic(opts, a, b)
	return m | dm, ok
}

// PairTestDynamic runs only the placement and timing tests. It is valid for
// pairs whose functional/scan statics are already known to pass (an
// existing edge whose endpoints had only parametric edits).
func PairTestDynamic(opts Options, a, b *RegInfo) (TestMask, bool) {
	var m TestMask
	if !placementCompatible(a, b) {
		return m, false
	}
	m |= TestPlacement
	if !timingCompatible(opts, a, b) {
		return m, false
	}
	return m | TestTiming, true
}

// functionalCompatibleSig: same functional class, same clock net, same
// clock-gating group, and identical control nets (reset, enable, scan
// enable) so the MBR's shared control pins can connect legally.
func functionalCompatibleSig(a, b StaticSig) bool {
	return a.Class == b.Class &&
		a.GateGroup == b.GateGroup &&
		a.Clock == b.Clock &&
		a.Reset == b.Reset &&
		a.Enable == b.Enable &&
		a.ScanEn == b.ScanEn
}

// scanCompatibleSig mirrors scan.Plan.PairCompatible over cached statics.
func scanCompatibleSig(a, b StaticSig, allowCross bool) bool {
	if a.Scanned != b.Scanned {
		return false
	}
	if !a.Scanned {
		return true // both unscanned
	}
	if a.Partition != b.Partition {
		return false
	}
	if a.Ordered || b.Ordered || !allowCross {
		return a.Chain == b.Chain
	}
	return true
}

// placementCompatible: the timing-feasible regions must overlap, providing
// a shared region where the MBR can be placed (§2). A violating register's
// degenerate region still counts — other registers can move to it.
func placementCompatible(a, b *RegInfo) bool {
	return a.Region.Overlaps(b.Region)
}

// timingCompatible: no opposite D/Q slack signs (they would pull the MBR's
// useful skew in opposite directions), and similar slack magnitudes on both
// the D side and the Q side.
func timingCompatible(opts Options, a, b *RegInfo) bool {
	if opposed(a.DSlack, a.QSlack, b.DSlack, b.QSlack) {
		return false
	}
	return math.Abs(a.DSlack-b.DSlack) <= opts.MaxSlackDiff &&
		math.Abs(a.QSlack-b.QSlack) <= opts.MaxSlackDiff
}

// opposed reports the forbidden combination: one register with positive D /
// negative Q slack and the other with negative D / positive Q slack.
func opposed(ad, aq, bd, bq float64) bool {
	aPosNeg := ad > 0 && aq < 0
	aNegPos := ad < 0 && aq > 0
	bPosNeg := bd > 0 && bq < 0
	bNegPos := bd < 0 && bq > 0
	return (aPosNeg && bNegPos) || (aNegPos && bPosNeg)
}

// GroupRegion returns the common timing-feasible region of a node group
// (the MBR's legal corner positions) and whether it is non-empty.
func (g *Graph) GroupRegion(nodes []int) (geom.Rect, bool) {
	rs := make([]geom.Rect, len(nodes))
	for i, n := range nodes {
		rs[i] = g.Regs[n].Region
	}
	return geom.IntersectAll(rs)
}

// GroupScanCompatible applies the group-level scan rule to a node set.
func (g *Graph) GroupScanCompatible(nodes []int) bool {
	if g.Plan == nil {
		return true
	}
	ids := make([]netlist.InstID, len(nodes))
	for i, n := range nodes {
		ids[i] = g.Regs[n].Inst.ID
	}
	return g.Plan.GroupCompatible(ids)
}

// Stats summarizes the graph for reporting.
type Stats struct {
	TotalRegs      int
	ComposableRegs int
	Edges          int
	ExcludedByWhy  map[NotComposableReason]int
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{
		TotalRegs:      len(g.Regs) + len(g.Excluded),
		ComposableRegs: len(g.Regs),
		Edges:          g.NumEdges(),
		ExcludedByWhy:  map[NotComposableReason]int{},
	}
	for _, why := range g.Excluded {
		s.ExcludedByWhy[why]++
	}
	return s
}
