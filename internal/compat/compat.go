// Package compat builds the register compatibility graph of §2: nodes are
// the composable registers of the design, edges connect register pairs that
// are functionally, scan-, placement- and timing-compatible. Candidate MBRs
// are then cliques of this graph (package clique), selected by the ILP
// (package core).
package compat

import (
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sta"
)

// Options tunes the compatibility rules.
type Options struct {
	// MaxSlackDiff is the largest allowed difference between the D-pin
	// slacks (and, separately, Q-pin slacks) of two compatible registers,
	// in ps (§2: similar magnitude, to avoid upsizing for one critical bit
	// and to keep one shared useful skew workable).
	MaxSlackDiff float64
	// SlackClamp bounds slacks before comparison; unconstrained (+Inf)
	// slacks are clamped here. Defaults to the clock period when zero.
	SlackClamp float64
}

// DefaultOptions returns the rules used by the benchmarks.
func DefaultOptions() Options {
	return Options{MaxSlackDiff: 150}
}

// NotComposableReason explains why a register was excluded from the graph.
type NotComposableReason string

// Exclusion reasons (Table 1 separates total registers from composable
// ones; these are the paper's cases (a)–(c) plus structural guards).
const (
	ReasonFixed        NotComposableReason = "fixed-or-size-only"
	ReasonNoMBRClass   NotComposableReason = "no-equivalent-mbr-in-library"
	ReasonLargestWidth NotComposableReason = "already-largest-mbr"
	ReasonNoClock      NotComposableReason = "no-clock"
)

// RegInfo is the per-register data the composition engine needs.
type RegInfo struct {
	Inst   *netlist.Inst
	DSlack float64
	QSlack float64
	// Region is the timing-feasible placement region of the cell corner.
	Region geom.Rect
	// ClockPos is the current clock pin position (drives partitioning).
	ClockPos geom.Point
}

// Graph is the compatibility graph over composable registers.
type Graph struct {
	// Regs are the nodes; index = node id.
	Regs []*RegInfo
	// Adj are adjacency lists over node ids.
	Adj [][]int
	// Excluded maps non-composable register instances to the reason.
	Excluded map[netlist.InstID]NotComposableReason
	// Plan is the scan plan used for group-level checks (may be nil).
	Plan *scan.Plan

	opts Options
	d    *netlist.Design
}

// NumEdges returns the edge count of the graph.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n / 2
}

// NodeOf returns the node id of a register instance, or -1.
func (g *Graph) NodeOf(id netlist.InstID) int {
	for i, r := range g.Regs {
		if r.Inst.ID == id {
			return i
		}
	}
	return -1
}

// Build constructs the compatibility graph for the design's current state.
// res must be a fresh timing analysis of d; plan may be nil for unscanned
// designs.
func Build(d *netlist.Design, res *sta.Results, plan *scan.Plan, opts Options) *Graph {
	if opts.SlackClamp == 0 {
		opts.SlackClamp = d.Timing.ClockPeriod
	}
	g := &Graph{
		Excluded: map[netlist.InstID]NotComposableReason{},
		Plan:     plan,
		opts:     opts,
		d:        d,
	}
	for _, in := range d.Registers() {
		if reason, bad := excluded(d, in); bad {
			g.Excluded[in.ID] = reason
			continue
		}
		info := &RegInfo{
			Inst:   in,
			DSlack: clampSlack(sta.RegDSlack(d, res, in), opts.SlackClamp),
			QSlack: clampSlack(sta.RegQSlack(d, res, in), opts.SlackClamp),
			Region: sta.FeasibleRegion(d, res, in),
		}
		if cp := d.ClockPin(in); cp != nil {
			info.ClockPos = d.PinPos(cp)
		} else {
			info.ClockPos = in.Center()
		}
		g.Regs = append(g.Regs, info)
	}
	g.Adj = make([][]int, len(g.Regs))
	for i := 0; i < len(g.Regs); i++ {
		for j := i + 1; j < len(g.Regs); j++ {
			if g.compatible(g.Regs[i], g.Regs[j]) {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], i)
			}
		}
	}
	return g
}

// excluded applies the node-eligibility rules (the paper's reasons a–c for
// registers that cannot be composed at all).
func excluded(d *netlist.Design, in *netlist.Inst) (NotComposableReason, bool) {
	if in.Fixed || in.SizeOnly {
		return ReasonFixed, true
	}
	if cp := d.ClockPin(in); cp == nil || cp.Net == netlist.NoID {
		return ReasonNoClock, true
	}
	class := in.RegCell.Class
	if !d.Lib.HasClass(class) {
		return ReasonNoMBRClass, true
	}
	if d.Lib.MaxWidth(class) <= in.RegCell.Bits {
		return ReasonLargestWidth, true
	}
	return "", false
}

func clampSlack(s, clamp float64) float64 {
	if math.IsInf(s, 1) || s > clamp {
		return clamp
	}
	if s < -clamp {
		return -clamp
	}
	return s
}

// compatible implements the pairwise edge rule: functional, scan, placement
// and timing compatibility.
func (g *Graph) compatible(a, b *RegInfo) bool {
	return g.functionalCompatible(a.Inst, b.Inst) &&
		g.scanCompatible(a.Inst, b.Inst) &&
		placementCompatible(a, b) &&
		g.timingCompatible(a, b)
}

// functionalCompatible: same functional class, same clock net, same
// clock-gating group, and identical control nets (reset, enable, scan
// enable) so the MBR's shared control pins can connect legally.
func (g *Graph) functionalCompatible(a, b *netlist.Inst) bool {
	if a.RegCell.Class != b.RegCell.Class {
		return false
	}
	if a.GateGroup != b.GateGroup {
		return false
	}
	d := g.d
	if d.ClockNet(a) != d.ClockNet(b) {
		return false
	}
	for _, kind := range []netlist.PinKind{netlist.PinReset, netlist.PinEnable, netlist.PinScanEnable} {
		if d.ControlNet(a, kind) != d.ControlNet(b, kind) {
			return false
		}
	}
	return true
}

func (g *Graph) scanCompatible(a, b *netlist.Inst) bool {
	if g.Plan == nil {
		return true
	}
	return g.Plan.PairCompatible(a.ID, b.ID)
}

// placementCompatible: the timing-feasible regions must overlap, providing
// a shared region where the MBR can be placed (§2). A violating register's
// degenerate region still counts — other registers can move to it.
func placementCompatible(a, b *RegInfo) bool {
	return a.Region.Overlaps(b.Region)
}

// timingCompatible: no opposite D/Q slack signs (they would pull the MBR's
// useful skew in opposite directions), and similar slack magnitudes on both
// the D side and the Q side.
func (g *Graph) timingCompatible(a, b *RegInfo) bool {
	if opposed(a.DSlack, a.QSlack, b.DSlack, b.QSlack) {
		return false
	}
	return math.Abs(a.DSlack-b.DSlack) <= g.opts.MaxSlackDiff &&
		math.Abs(a.QSlack-b.QSlack) <= g.opts.MaxSlackDiff
}

// opposed reports the forbidden combination: one register with positive D /
// negative Q slack and the other with negative D / positive Q slack.
func opposed(ad, aq, bd, bq float64) bool {
	aPosNeg := ad > 0 && aq < 0
	aNegPos := ad < 0 && aq > 0
	bPosNeg := bd > 0 && bq < 0
	bNegPos := bd < 0 && bq > 0
	return (aPosNeg && bNegPos) || (aNegPos && bPosNeg)
}

// GroupRegion returns the common timing-feasible region of a node group
// (the MBR's legal corner positions) and whether it is non-empty.
func (g *Graph) GroupRegion(nodes []int) (geom.Rect, bool) {
	rs := make([]geom.Rect, len(nodes))
	for i, n := range nodes {
		rs[i] = g.Regs[n].Region
	}
	return geom.IntersectAll(rs)
}

// GroupScanCompatible applies the group-level scan rule to a node set.
func (g *Graph) GroupScanCompatible(nodes []int) bool {
	if g.Plan == nil {
		return true
	}
	ids := make([]netlist.InstID, len(nodes))
	for i, n := range nodes {
		ids[i] = g.Regs[n].Inst.ID
	}
	return g.Plan.GroupCompatible(ids)
}

// Stats summarizes the graph for reporting.
type Stats struct {
	TotalRegs      int
	ComposableRegs int
	Edges          int
	ExcludedByWhy  map[NotComposableReason]int
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{
		TotalRegs:      len(g.Regs) + len(g.Excluded),
		ComposableRegs: len(g.Regs),
		Edges:          g.NumEdges(),
		ExcludedByWhy:  map[NotComposableReason]int{},
	}
	for _, why := range g.Excluded {
		s.ExcludedByWhy[why]++
	}
	return s
}
