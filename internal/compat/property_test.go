package compat

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/sta"
)

// Property tests over randomized bench designs: the compatibility graph
// must be a simple undirected graph whose edges all satisfy the §2 rules,
// with the composable/excluded split partitioning the register set.

func buildGraphFor(t testing.TB, spec bench.Spec) (*Graph, int) {
	t.Helper()
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng := sta.New(b.Design)
	eng.SetIdealClocks(true)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return Build(b.Design, res, b.Plan, DefaultOptions()), len(b.Design.Registers())
}

func propertySpec(seed int64) bench.Spec {
	return bench.Spec{
		Name: "prop", Seed: seed,
		NumRegs:           150 + int(seed%4)*40,
		CombPerReg:        3,
		WidthMix:          map[int]float64{1: 0.5, 2: 0.2, 4: 0.2, 8: 0.1},
		NonComposableFrac: 0.25,
		ClusterSize:       8,
		GateGroups:        int(seed % 5),
		ScanChains:        2 + int(seed%3),
		OrderedChainFrac:  float64(seed%4) * 0.2,
		TargetUtil:        0.5,
		ClockPeriodPS:     1400,
	}
}

func TestGraphIsSimpleAndSymmetric(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, _ := buildGraphFor(t, propertySpec(seed))
			for i, adj := range g.Adj {
				seen := map[int]bool{}
				for _, j := range adj {
					if j == i {
						t.Fatalf("self-loop on node %d", i)
					}
					if j < 0 || j >= len(g.Regs) {
						t.Fatalf("node %d has out-of-range neighbour %d", i, j)
					}
					if seen[j] {
						t.Fatalf("duplicate edge %d-%d", i, j)
					}
					seen[j] = true
					back := false
					for _, k := range g.Adj[j] {
						if k == i {
							back = true
							break
						}
					}
					if !back {
						t.Fatalf("asymmetric edge: %d->%d present, %d->%d missing", i, j, j, i)
					}
				}
			}
		})
	}
}

func TestEdgesSatisfyCompatibilityRules(t *testing.T) {
	for _, seed := range []int64{6, 7, 8} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, _ := buildGraphFor(t, propertySpec(seed))
			opts := g.opts
			for i, adj := range g.Adj {
				a := g.Regs[i]
				for _, j := range adj {
					if j <= i {
						continue
					}
					b := g.Regs[j]
					// The predicate itself must agree with the edge and be
					// symmetric in its arguments.
					if !g.compatible(a, b) || !g.compatible(b, a) {
						t.Fatalf("edge %d-%d fails the compatibility predicate", i, j)
					}
					if a.Inst.RegCell.Class != b.Inst.RegCell.Class {
						t.Fatalf("edge %d-%d crosses functional classes", i, j)
					}
					if !a.Region.Overlaps(b.Region) {
						t.Fatalf("edge %d-%d has disjoint feasible regions", i, j)
					}
					if math.Abs(a.DSlack-b.DSlack) > opts.MaxSlackDiff ||
						math.Abs(a.QSlack-b.QSlack) > opts.MaxSlackDiff {
						t.Fatalf("edge %d-%d exceeds slack-difference bound", i, j)
					}
					if g.Plan != nil && !g.Plan.PairCompatible(a.Inst.ID, b.Inst.ID) {
						t.Fatalf("edge %d-%d is scan incompatible", i, j)
					}
				}
			}
		})
	}
}

func TestComposableExcludedPartition(t *testing.T) {
	for _, seed := range []int64{9, 10} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, total := buildGraphFor(t, propertySpec(seed))
			if len(g.Regs)+len(g.Excluded) != total {
				t.Fatalf("nodes (%d) + excluded (%d) != registers (%d)",
					len(g.Regs), len(g.Excluded), total)
			}
			for _, r := range g.Regs {
				if why, bad := g.Excluded[r.Inst.ID]; bad {
					t.Fatalf("register %d both composable and excluded (%s)", r.Inst.ID, why)
				}
			}
		})
	}
}
