// Package compatgraph retains the register compatibility graph (§2) across
// flow passes and maintains it by delta instead of rebuild. The engine keeps
// the current node set (live composable registers with their cached RegInfo
// and static signatures), the adjacency with a per-edge test mask, and
// per-node reason bitmasks recording which of the four compatibility tests
// rejected candidate pairs at that node. After each pass it consumes the
// netlist epoch log plus the fresh STA results to remove merged/deleted
// nodes, insert new MBR nodes, and re-test only pairs with at least one
// changed endpoint — candidate pairs come from a geometric grid over the
// move regions, not an all-pairs scan. On structural overflow (or when too
// much of the design changed for a delta to pay off) it falls back to the
// full pairwise sweep, which is also the package's correctness oracle
// (compat.Build).
//
// Exactness strategy: a node's cached data (slacks, feasible region, clock
// position, signature) is a pure function of that register's own pins'
// slacks, its own geometry and attributes, and the positions and electrical
// parameters of the other instances on its D/Q data nets. With a timing
// feed attached (SetTimingFeed), the node phase recomputes only the
// registers named dirty by those dependencies — the STA engine's
// changed-slack ring for the timing inputs, the netlist touched ring plus a
// one-hop data-net closure for the geometric ones — and value-compares
// against the cache, so the maintained node set is exactly what a linear
// recompute would produce. Without a feed (or when either ring overflowed)
// the node phase falls back to the PR-3 linear sweep over every register,
// which remains the oracle. The edge phase is unchanged: pairs are
// re-tested only when an endpoint's data differs from the cache, with the
// full pairwise sweep as the overflow fallback, so the maintained graph is
// exactly the graph Build would produce at every step.
package compatgraph

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/compat"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/scan"
	"repro/internal/sta"
)

// TimingFeed is the dirty-node feed the node phase consumes: the STA
// engine's changed-slack register ring (sta.Engine satisfies it). The
// Results passed to Update must come from the feed's most recent Run;
// RegsWithChangedSlack must report every register whose D/Q pin slacks
// changed in runs after the cursor, or incomplete.
type TimingFeed interface {
	SlackSeq() uint64
	RegsWithChangedSlack(cursor uint64) ([]netlist.InstID, bool)
}

// Options tunes the engine.
type Options struct {
	// Compat are the edge rules, shared with compat.Build. SlackClamp
	// defaults to the design's clock period, as in Build.
	Compat compat.Options
	// Workers bounds the fan-out of pairwise re-tests (0 = GOMAXPROCS,
	// 1 = sequential). The result is byte-identical at any worker count.
	Workers int
	// MaxDeltaFrac is the changed-node fraction above which Update falls
	// back to the full pairwise sweep (default 0.25: past that point the
	// neighborhood queries cost more than the dense row sweep saves).
	MaxDeltaFrac float64
}

// UpdateKind names the decision an Update took, for stats and the CLI.
type UpdateKind string

const (
	// KindInitial: first Update after New or Invalidate — full sweep.
	KindInitial UpdateKind = "initial"
	// KindOverflow: the bounded touched-log overflowed (bulk structural
	// churn, e.g. a CTS rebuild) — full sweep.
	KindOverflow UpdateKind = "touched-overflow"
	// KindTimingChanged: the design's TimingSpec changed, invalidating
	// every clamped slack and region — full sweep.
	KindTimingChanged UpdateKind = "timing-changed"
	// KindDirtyOverflow: more than MaxDeltaFrac of the nodes changed —
	// full sweep.
	KindDirtyOverflow UpdateKind = "dirty-overflow"
	// KindDelta: neighborhood-limited re-test of changed nodes only.
	KindDelta UpdateKind = "delta"
)

// Stats describes the engine's work; Last* fields cover the latest Update.
type Stats struct {
	Updates  int
	Rebuilds int // full pairwise sweeps (any non-delta kind)
	Deltas   int
	// TouchedOverflows counts the rebuilds forced by an overflowed
	// touched ring (KindOverflow) — the failure mode edit-class scoping
	// exists to prevent; bulk edits in other classes (clock-tree
	// maintenance) must never show up here.
	TouchedOverflows int

	// NodeDeltas counts updates whose node phase recomputed only the
	// dirty-candidate registers (vs the linear sweep over all of them).
	NodeDeltas int

	LastKind          UpdateKind
	LastNodes         int
	LastEdges         int
	LastNodesAdded    int
	LastNodesRemoved  int
	LastNodesDirty    int // changed nodes re-tested by the last delta
	LastPairsTested   int // pair tests evaluated by the last Update
	LastEdgesRetested int // previously existing edges among them
	// LastRejectsByTest counts pairs rejected by each test (functional,
	// scan, placement, timing) in the last Update's evaluations.
	LastRejectsByTest [4]int
	// LastNodePhase is "delta" or "linear" for the last Update's node
	// phase; LastNodesVisited counts the registers whose eligibility,
	// info and signature it actually recomputed.
	LastNodePhase    string
	LastNodesVisited int

	// Per-phase wall time, accumulated and for the last Update. Excluded
	// from determinism comparisons (wall time is not reproducible).
	NodePhaseNS, EdgePhaseNS         int64
	LastNodePhaseNS, LastEdgePhaseNS int64

	// LastComponents / LastComponentsReused describe the most recent
	// Subgraphs call: connected components seen and how many reused a
	// cached geometric split (clean components).
	LastComponents       int
	LastComponentsReused int
}

// node is the retained per-register state.
type node struct {
	inst *netlist.Inst
	info *compat.RegInfo
	sig  compat.StaticSig
	// nbr maps neighbor instance → the mask of tests evaluated when the
	// edge was last confirmed (TestAll when fully tested; the static bits
	// are carried from cache when only dynamics were re-run).
	nbr map[netlist.InstID]compat.TestMask
	// bound accumulates which tests rejected candidate pairs at this node
	// (the per-node reason bitmask).
	bound compat.TestMask
}

// Engine is the retained incremental compatibility graph. Not safe for
// concurrent use; an Update must not run while the design is being edited.
type Engine struct {
	d    *netlist.Design
	plan *scan.Plan
	opts Options

	valid      bool
	cursor     uint64
	timingSnap netlist.TimingSpec
	allowCross bool

	// Dirty-node feed for the delta node phase (nil = always linear).
	feed       TimingFeed
	feedCursor uint64

	nodes    map[netlist.InstID]*node
	excluded map[netlist.InstID]compat.NotComposableReason

	part  *partition.Cache
	graph *compat.Graph // last materialized graph
	// order is the node set in ascending instance-ID order (the Build
	// order); infosArr/sigsArr/ordOf are kept aligned with it so the delta
	// node phase can patch dirty slots instead of re-deriving every node.
	order    []netlist.InstID
	infosArr []*compat.RegInfo
	sigsArr  []compat.StaticSig
	ordOf    map[netlist.InstID]int
	stats    Stats
	// lastDirty names the registers whose node data (info or signature)
	// changed in the last Update — the dirty-subgraph feed SubgraphsHinted
	// folds into its per-subgraph clean hints.
	lastDirty map[netlist.InstID]bool
}

// New creates an engine over a design and scan plan (plan may be nil). The
// first Update performs a full sweep.
func New(d *netlist.Design, plan *scan.Plan, opts Options) *Engine {
	if opts.MaxDeltaFrac <= 0 {
		opts.MaxDeltaFrac = 0.25
	}
	return &Engine{d: d, plan: plan, opts: opts, part: partition.NewCache()}
}

// Invalidate forces the next Update to take the full-sweep path.
func (e *Engine) Invalidate() { e.valid = false }

// SetTimingFeed attaches the dirty-node feed that lets the node phase run
// by delta. After this call, every Update's res argument must be the
// snapshot of the feed engine's most recent Run; with no feed (the
// default) the node phase is recomputed linearly every Update.
func (e *Engine) SetTimingFeed(f TimingFeed) {
	e.feed = f
	if f != nil {
		// Anything before this point was never observed through the feed.
		e.feedCursor = 0
		e.valid = false
	}
}

// SetWorkers bounds the fan-out of pairwise re-tests (engine.Retained
// convention: results identical for any value, 1 forces sequential).
func (e *Engine) SetWorkers(n int) { e.opts.Workers = n }

// Stats returns the accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// Summary reports the unified retained-engine counters (engine.Retained).
func (e *Engine) Summary() engine.Summary {
	return engine.Summary{
		Updates:  e.stats.Updates,
		Deltas:   e.stats.Deltas,
		Rebuilds: e.stats.Rebuilds,
		LastKind: string(e.stats.LastKind),
	}
}

var _ engine.Retained = (*Engine)(nil)

// Graph returns the graph materialized by the last Update (nil before the
// first one).
func (e *Engine) Graph() *compat.Graph { return e.graph }

func (e *Engine) workers() int {
	w := e.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

func (e *Engine) compatOpts() compat.Options {
	o := e.opts.Compat
	if o.SlackClamp == 0 {
		o.SlackClamp = e.d.Timing.ClockPeriod
	}
	return o
}

// nodeState is the node phase's product: the current node set with its
// data, diffed against the retained cache.
type nodeState struct {
	order []netlist.InstID
	infos []*compat.RegInfo
	sigs  []compat.StaticSig

	isDirty, sDirty []bool
	dirtyOrd        []int
	added           int
	removedIDs      []netlist.InstID

	// excluded is the full fresh exclusion map on the linear path; nil on
	// the delta path, which patches e.excluded in place.
	excluded map[netlist.InstID]compat.NotComposableReason
	visited  int // registers whose eligibility/info/sig were recomputed
}

// Update brings the retained graph up to date with the design and the given
// fresh STA results, and materializes it. The returned graph is exactly the
// graph compat.Build would produce on the same inputs, independent of the
// worker count and of whether the delta or the full path ran.
func (e *Engine) Update(res *sta.Results) *compat.Graph {
	d := e.d
	opts := e.compatOpts()
	allowCross := e.plan == nil || e.plan.AllowCrossChain

	touched, complete := d.TouchedSince(e.cursor)
	kind := KindDelta
	switch {
	case !e.valid:
		kind = KindInitial
	case !complete:
		kind = KindOverflow
	case d.Timing != e.timingSnap || allowCross != e.allowCross:
		kind = KindTimingChanged
	}

	// Node phase: by delta over the dirty candidates when the feeds allow
	// it, else the linear sweep over every register (fallback and oracle).
	nodeStart := time.Now()
	nodePhase := "linear"
	var ns nodeState
	if kind == KindDelta && e.feed != nil {
		if slackRegs, ok := e.feed.RegsWithChangedSlack(e.feedCursor); ok {
			nodePhase = "delta"
			ns = e.nodePhaseDelta(res, opts, touched, slackRegs)
		}
	}
	if nodePhase == "linear" {
		ns = e.nodePhaseLinear(res, opts)
	}
	nodeNS := time.Since(nodeStart).Nanoseconds()

	removed := len(ns.removedIDs)
	if kind == KindDelta &&
		float64(len(ns.dirtyOrd)+removed) > e.opts.MaxDeltaFrac*float64(len(ns.order)) {
		kind = KindDirtyOverflow
	}

	st := &e.stats
	st.Updates++
	st.LastKind = kind
	if kind == KindOverflow {
		st.TouchedOverflows++
	}
	if nodePhase == "delta" {
		st.NodeDeltas++
	}
	st.LastNodePhase = nodePhase
	st.LastNodesVisited = ns.visited
	st.LastNodesAdded = ns.added
	st.LastNodesRemoved = removed
	st.LastNodesDirty = len(ns.dirtyOrd)
	st.LastPairsTested = 0
	st.LastEdgesRetested = 0
	st.LastRejectsByTest = [4]int{}

	edgeStart := time.Now()
	if kind == KindDelta {
		st.Deltas++
		e.applyDelta(opts, allowCross, &ns)
	} else {
		st.Rebuilds++
		e.fullSweep(opts, allowCross, ns.order, ns.infos, ns.sigs)
	}
	edgeNS := time.Since(edgeStart).Nanoseconds()

	if ns.excluded != nil {
		e.excluded = ns.excluded
	}
	e.lastDirty = make(map[netlist.InstID]bool, len(ns.dirtyOrd))
	for _, i := range ns.dirtyOrd {
		e.lastDirty[ns.order[i]] = true
	}
	e.setOrder(ns.order, ns.infos, ns.sigs)
	e.valid = true
	e.cursor = d.Epoch()
	e.timingSnap = d.Timing
	e.allowCross = allowCross
	if e.feed != nil {
		e.feedCursor = e.feed.SlackSeq()
	}
	e.graph = e.materialize(opts)
	st.LastNodes = len(ns.order)
	st.LastEdges = e.graph.NumEdges()
	st.LastNodePhaseNS, st.LastEdgePhaseNS = nodeNS, edgeNS
	st.NodePhaseNS += nodeNS
	st.EdgePhaseNS += edgeNS
	return e.graph
}

// setOrder installs the node ordering and its aligned data arrays,
// rebuilding the ordinal index only when the ordering actually changed.
func (e *Engine) setOrder(order []netlist.InstID, infos []*compat.RegInfo, sigs []compat.StaticSig) {
	same := e.ordOf != nil && len(order) == len(e.order)
	if same {
		for i, id := range order {
			if e.order[i] != id {
				same = false
				break
			}
		}
	}
	e.order, e.infosArr, e.sigsArr = order, infos, sigs
	if same {
		return
	}
	e.ordOf = make(map[netlist.InstID]int, len(order))
	for i, id := range order {
		e.ordOf[id] = i
	}
}

// nodePhaseLinear recomputes every live register's eligibility, info and
// signature and diffs them against the retained cache — the PR-3 exactness
// anchor, now the fallback path and the delta node phase's oracle.
func (e *Engine) nodePhaseLinear(res *sta.Results, opts compat.Options) nodeState {
	d := e.d
	regs := d.Registers()
	ns := nodeState{
		order:    make([]netlist.InstID, 0, len(regs)),
		infos:    make([]*compat.RegInfo, 0, len(regs)),
		sigs:     make([]compat.StaticSig, 0, len(regs)),
		excluded: make(map[netlist.InstID]compat.NotComposableReason),
		visited:  len(regs),
	}
	for _, in := range regs {
		if reason, bad := compat.Exclusion(d, in); bad {
			ns.excluded[in.ID] = reason
			continue
		}
		ns.order = append(ns.order, in.ID)
		ns.infos = append(ns.infos, compat.NewRegInfo(d, res, in, opts))
		ns.sigs = append(ns.sigs, compat.SigOf(d, e.plan, in))
	}

	ns.isDirty = make([]bool, len(ns.order))
	ns.sDirty = make([]bool, len(ns.order))
	seen := make(map[netlist.InstID]bool, len(ns.order))
	for i, id := range ns.order {
		seen[id] = true
		old, ok := e.nodes[id]
		if ok && old.sig == ns.sigs[i] && *old.info == *ns.infos[i] {
			continue // clean: every test input unchanged
		}
		if !ok {
			ns.added++
		}
		ns.isDirty[i] = true
		ns.sDirty[i] = !ok || old.sig != ns.sigs[i]
		ns.dirtyOrd = append(ns.dirtyOrd, i)
	}
	for id := range e.nodes {
		if !seen[id] {
			ns.removedIDs = append(ns.removedIDs, id)
		}
	}
	return ns
}

// nodePhaseDelta recomputes only the dirty-candidate registers: those whose
// slacks the STA feed re-propagated, plus the touched instances and their
// one-hop data-net closure (a register's region is bounded by the positions
// and drive strengths of the other instances on its D/Q nets; membership
// changes are force-touched by the netlist itself — see noteNetMembers).
// Every other node's cached data is proven unchanged by that dependency
// argument, so the result equals nodePhaseLinear's.
func (e *Engine) nodePhaseDelta(res *sta.Results, opts compat.Options,
	touched, slackRegs []netlist.InstID) nodeState {

	d := e.d
	cand := make(map[netlist.InstID]bool, len(touched)+len(slackRegs))
	for _, id := range slackRegs {
		cand[id] = true
	}
	// A register's RegInfo reads only the nets of its own D/Q pins
	// (FeasibleRegion), so a touched instance X dirties exactly the
	// registers attached via a PinData/PinOut pin to one of X's nets —
	// the same filter noteNetMembers applies. Registers on X's nets via
	// scan/reset/enable pins are unaffected: broadcast control nets would
	// otherwise pull the whole design into the candidate set.
	addMember := func(pid netlist.PinID) {
		p := d.Pin(pid)
		if p.Kind != netlist.PinData && p.Kind != netlist.PinOut {
			return
		}
		if in := d.Inst(p.Inst); in != nil && in.Kind == netlist.KindReg {
			cand[p.Inst] = true
		}
	}
	for _, id := range touched {
		cand[id] = true
		in := d.Inst(id)
		if in == nil {
			continue // removed; its former neighbors were force-touched
		}
		for _, pid := range in.Pins {
			p := d.Pin(pid)
			if p.Net == netlist.NoID {
				continue
			}
			nt := d.Net(p.Net)
			if nt == nil || nt.IsClock {
				continue // clock topology never feeds node data (root-resolved)
			}
			if nt.Driver != netlist.NoID {
				addMember(nt.Driver)
			}
			for _, s := range nt.Sinks {
				addMember(s)
			}
		}
	}

	// Classify each candidate against the cache. e.excluded is patched in
	// place; membership changes are collected for the splice below.
	type fresh struct {
		info *compat.RegInfo
		sig  compat.StaticSig
	}
	news := make(map[netlist.InstID]fresh)
	var ns nodeState
	removedSet := make(map[netlist.InstID]bool)
	var addedIDs []netlist.InstID
	dirtySet := make(map[netlist.InstID]bool)
	for id := range cand {
		in := d.Inst(id)
		_, wasNode := e.nodes[id]
		if in == nil || in.Kind != netlist.KindReg {
			if wasNode {
				removedSet[id] = true
				ns.removedIDs = append(ns.removedIDs, id)
			}
			delete(e.excluded, id)
			continue
		}
		ns.visited++
		if reason, bad := compat.Exclusion(d, in); bad {
			if wasNode {
				removedSet[id] = true
				ns.removedIDs = append(ns.removedIDs, id)
			}
			e.excluded[id] = reason
			continue
		}
		delete(e.excluded, id)
		info := compat.NewRegInfo(d, res, in, opts)
		sig := compat.SigOf(d, e.plan, in)
		if !wasNode {
			ns.added++
			addedIDs = append(addedIDs, id)
			news[id] = fresh{info, sig}
			dirtySet[id] = true
			continue
		}
		old := e.nodes[id]
		if old.sig == sig && *old.info == *info {
			continue // clean: every test input unchanged
		}
		news[id] = fresh{info, sig}
		dirtySet[id] = true
	}

	// Assemble the new ordering and aligned arrays, tracking the dirty
	// ordinals as we go. With unchanged membership the retained arrays are
	// patched in place — O(dirty) via the retained ordinal index — and
	// otherwise the surviving slots and the (sorted) additions are
	// merge-spliced in one linear pass.
	if len(removedSet) == 0 && len(addedIDs) == 0 {
		ns.order = e.order
		ns.infos = e.infosArr
		ns.sigs = e.sigsArr
		for id := range dirtySet {
			ns.dirtyOrd = append(ns.dirtyOrd, e.ordOf[id])
		}
	} else {
		sort.Slice(addedIDs, func(a, b int) bool { return addedIDs[a] < addedIDs[b] })
		n := len(e.order) - len(removedSet) + len(addedIDs)
		ns.order = make([]netlist.InstID, 0, n)
		ns.infos = make([]*compat.RegInfo, 0, n)
		ns.sigs = make([]compat.StaticSig, 0, n)
		ai := 0
		appendOne := func(id netlist.InstID, info *compat.RegInfo, sig compat.StaticSig) {
			if dirtySet[id] {
				ns.dirtyOrd = append(ns.dirtyOrd, len(ns.order))
			}
			ns.order = append(ns.order, id)
			ns.infos = append(ns.infos, info)
			ns.sigs = append(ns.sigs, sig)
		}
		appendAdded := func(limit netlist.InstID, all bool) {
			for ai < len(addedIDs) && (all || addedIDs[ai] < limit) {
				id := addedIDs[ai]
				f := news[id]
				appendOne(id, f.info, f.sig)
				ai++
			}
		}
		for i, id := range e.order {
			if removedSet[id] {
				continue
			}
			appendAdded(id, false)
			appendOne(id, e.infosArr[i], e.sigsArr[i])
		}
		appendAdded(0, true)
	}
	sort.Ints(ns.dirtyOrd)

	// Patch dirty slots and derive the ordinal-indexed dirty views.
	ns.isDirty = make([]bool, len(ns.order))
	ns.sDirty = make([]bool, len(ns.order))
	for _, i := range ns.dirtyOrd {
		id := ns.order[i]
		f := news[id]
		old, wasNode := e.nodes[id]
		ns.infos[i] = f.info
		ns.sigs[i] = f.sig
		ns.isDirty[i] = true
		ns.sDirty[i] = !wasNode || old.sig != f.sig
	}
	return ns
}

// Subgraphs decomposes the current graph exactly like partition.Decompose
// (connected components, then geometric splits of oversized ones) but
// reuses cached splits for components untouched since the previous call.
func (e *Engine) Subgraphs(maxNodes int) [][]int {
	g := e.graph
	out := e.part.Decompose(len(g.Regs), g.Adj,
		func(i int) geom.Point { return g.Regs[i].ClockPos },
		maxNodes,
		func(i int) int64 { return int64(g.Regs[i].Inst.ID) })
	ps := e.part.Stats()
	e.stats.LastComponents = ps.Components
	e.stats.LastComponentsReused = ps.Reused
	return out
}

// SubgraphsHinted is Subgraphs plus a per-subgraph clean hint: true when
// the subgraph's component replayed from the partition cache (members,
// order and clock positions unchanged) and none of its members' node data
// changed in the last Update. The hints are advisory — the retained
// compose engine validates every subgraph by exact signature and only uses
// them for accounting — because a member's blocker environment or scan
// context can change without its own node data changing.
func (e *Engine) SubgraphsHinted(maxNodes int) ([][]int, []bool) {
	out := e.Subgraphs(maxNodes)
	reused := e.part.LastPartsReused()
	clean := make([]bool, len(out))
	for i, part := range out {
		if i >= len(reused) || !reused[i] {
			continue
		}
		ok := true
		for _, n := range part {
			if e.lastDirty[e.graph.Regs[n].Inst.ID] {
				ok = false
				break
			}
		}
		clean[i] = ok
	}
	return out, clean
}

// fullSweep rebuilds the whole adjacency with the same double loop as
// compat.Build, row-parallel across workers.
func (e *Engine) fullSweep(opts compat.Options, allowCross bool,
	order []netlist.InstID, infos []*compat.RegInfo, sigs []compat.StaticSig) {

	n := len(order)
	rows := make([][]int32, n)   // per-row: ordinals j>i that passed
	bound := make([]int32, n)    // per-row first-failing accumulation mask
	rejects := make([][4]int, n) // per-row reject counts
	pairs := make([]int, n)
	workers := e.workers()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stride over rows: row i costs n-i tests, striding balances.
			for i := w; i < n; i += workers {
				var row []int32
				for j := i + 1; j < n; j++ {
					mask, ok := compat.PairTest(opts, infos[i], infos[j], sigs[i], sigs[j], allowCross)
					pairs[i]++
					if ok {
						row = append(row, int32(j))
					} else {
						ff := firstFailing(mask)
						bound[i] |= int32(ff)
						rejects[i][testIndex(ff)]++
					}
				}
				rows[i] = row
			}
		}(w)
	}
	wg.Wait()

	nodes := make(map[netlist.InstID]*node, n)
	for i, id := range order {
		nodes[id] = &node{
			inst: infos[i].Inst,
			info: infos[i],
			sig:  sigs[i],
			nbr:  map[netlist.InstID]compat.TestMask{},
		}
	}
	st := &e.stats
	for i := range rows {
		st.LastPairsTested += pairs[i]
		for t := 0; t < 4; t++ {
			st.LastRejectsByTest[t] += rejects[i][t]
		}
		a := nodes[order[i]]
		a.bound = compat.TestMask(bound[i])
		for _, j := range rows[i] {
			b := nodes[order[j]]
			a.nbr[order[j]] = compat.TestAll
			b.nbr[order[i]] = compat.TestAll
		}
	}
	e.nodes = nodes
}

// deltaResult is one worker's verdicts for one dirty node's candidates.
type deltaResult struct {
	cand  []int32 // candidate ordinals, ascending
	mask  []compat.TestMask
	ok    []bool
	retst []bool // pair was a previously confirmed edge
	bound compat.TestMask
}

// applyDelta re-tests only pairs with a changed endpoint, finding candidate
// partners through a geometric grid over the move regions.
func (e *Engine) applyDelta(opts compat.Options, allowCross bool, ns *nodeState) {
	order, infos, sigs := ns.order, ns.infos, ns.sigs
	isDirty, sDirty, dirtyOrd := ns.isDirty, ns.sDirty, ns.dirtyOrd
	if len(dirtyOrd) == 0 && len(ns.removedIDs) == 0 {
		return // nothing changed: the retained adjacency is already exact
	}

	n := len(order)
	// Neighborhood index: every node's region, bucketed over the core.
	// Cell size tracks the average region: a finer grid would file every
	// slack-generous region into hundreds of cells and make queries visit
	// them all, degrading far below a plain O(n) candidate scan. With
	// near-core-sized regions the dims collapse to 1x1, which IS that scan.
	var sumW, sumH int64
	for _, info := range infos {
		sumW += info.Region.Hi.X - info.Region.Lo.X
		sumH += info.Region.Hi.Y - info.Region.Lo.Y
	}
	dimCap := int(math.Ceil(math.Sqrt(float64(n))))
	if dimCap > 64 {
		dimCap = 64
	}
	grid := geom.NewGrid(e.d.Core,
		boundedDim(e.d.Core.Hi.X-e.d.Core.Lo.X, sumW, n, dimCap),
		boundedDim(e.d.Core.Hi.Y-e.d.Core.Lo.Y, sumH, n, dimCap))
	for i, info := range infos {
		grid.InsertRect(int32(i), info.Region)
	}

	// Compute phase (read-only on the retained maps): each dirty node
	// gathers overlap candidates and tests the pairs it owns — (dirty,
	// clean) always, (dirty, dirty) only from the lower ordinal.
	results := make([]deltaResult, len(dirtyOrd))
	workers := e.workers()
	if workers > len(dirtyOrd) {
		workers = len(dirtyOrd)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stamp := make([]int32, n)
			for k := range stamp {
				stamp[k] = -1
			}
			for di := w; di < len(dirtyOrd); di += workers {
				i := dirtyOrd[di]
				r := &results[di]
				grid.QueryRect(infos[i].Region, func(j int32) {
					if int(j) == i || stamp[j] == int32(di) {
						return
					}
					stamp[j] = int32(di)
					if isDirty[j] && int(j) < i {
						return // owned by the lower dirty ordinal
					}
					r.cand = append(r.cand, j)
				})
				sort.Slice(r.cand, func(a, b int) bool { return r.cand[a] < r.cand[b] })
				oldA := e.nodes[order[i]]
				for _, j := range r.cand {
					var hadEdge bool
					if oldA != nil {
						_, hadEdge = oldA.nbr[order[j]]
					}
					var mask compat.TestMask
					var ok bool
					if hadEdge && !sDirty[i] && !sDirty[j] {
						// Statics passed when the edge was confirmed and
						// neither signature changed: re-run dynamics only.
						mask, ok = compat.PairTestDynamic(opts, infos[i], infos[int(j)])
						mask |= compat.TestStatic
					} else {
						mask, ok = compat.PairTest(opts, infos[i], infos[int(j)], sigs[i], sigs[int(j)], allowCross)
					}
					r.mask = append(r.mask, mask)
					r.ok = append(r.ok, ok)
					r.retst = append(r.retst, hadEdge)
					if !ok {
						r.bound |= firstFailing(mask)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Merge phase (sequential): drop edges of removed and dirty nodes,
	// refresh the dirty payloads (clean nodes already hold value-identical
	// data), then add the confirmed pairs.
	for _, id := range ns.removedIDs {
		nd, ok := e.nodes[id]
		if !ok {
			continue
		}
		for v := range nd.nbr {
			delete(e.nodes[v].nbr, id)
		}
		delete(e.nodes, id)
	}
	for _, i := range dirtyOrd {
		id := order[i]
		if nd, ok := e.nodes[id]; ok {
			for v := range nd.nbr {
				delete(e.nodes[v].nbr, id)
			}
			nd.nbr = map[netlist.InstID]compat.TestMask{}
		} else {
			e.nodes[id] = &node{nbr: map[netlist.InstID]compat.TestMask{}}
		}
		nd := e.nodes[id]
		nd.inst = infos[i].Inst
		nd.info = infos[i]
		nd.sig = sigs[i]
	}
	st := &e.stats
	for di, r := range results {
		i := dirtyOrd[di]
		a := e.nodes[order[i]]
		a.bound = r.bound
		st.LastPairsTested += len(r.cand)
		for k, j := range r.cand {
			if r.retst[k] {
				st.LastEdgesRetested++
			}
			if !r.ok[k] {
				st.LastRejectsByTest[testIndex(firstFailing(r.mask[k]))]++
				continue
			}
			b := e.nodes[order[j]]
			a.nbr[order[j]] = r.mask[k]
			b.nbr[order[i]] = r.mask[k]
		}
	}
}

// materialize produces the compat.Graph view: nodes in ascending instance-ID
// order (the Build order) with CSR-backed, ascending-sorted adjacency rows.
func (e *Engine) materialize(opts compat.Options) *compat.Graph {
	n := len(e.order)
	ordOf := e.ordOf
	regs := make([]*compat.RegInfo, n)
	copy(regs, e.infosArr)
	total := 0
	for _, id := range e.order {
		total += len(e.nodes[id].nbr)
	}
	backing := make([]int, 0, total)
	adj := make([][]int, n)
	for i, id := range e.order {
		nd := e.nodes[id]
		start := len(backing)
		for v := range nd.nbr {
			backing = append(backing, ordOf[v])
		}
		row := backing[start:len(backing):len(backing)]
		sort.Ints(row)
		adj[i] = row
	}
	exc := make(map[netlist.InstID]compat.NotComposableReason, len(e.excluded))
	for id, why := range e.excluded {
		exc[id] = why
	}
	return compat.FromParts(e.d, e.plan, opts, regs, adj, exc)
}

// firstFailing extracts the first test not passed, in evaluation order.
func firstFailing(passed compat.TestMask) compat.TestMask {
	for _, t := range [4]compat.TestMask{compat.TestFunctional, compat.TestScan, compat.TestPlacement, compat.TestTiming} {
		if passed&t == 0 {
			return t
		}
	}
	return 0
}

func testIndex(t compat.TestMask) int {
	switch t {
	case compat.TestFunctional:
		return 0
	case compat.TestScan:
		return 1
	case compat.TestPlacement:
		return 2
	default:
		return 3
	}
}

// BoundMask returns the per-node reason bitmask of a register: which tests
// rejected candidate pairs at that node the last time it was re-tested.
func (e *Engine) BoundMask(id netlist.InstID) compat.TestMask {
	if nd, ok := e.nodes[id]; ok {
		return nd.bound
	}
	return 0
}

// boundedDim picks a grid dimension whose cell size is no smaller than the
// average region extent along that axis, capped at dimCap: regions then
// cover O(1) cells each, keeping insert and query linear in n.
func boundedDim(core, sumExtent int64, n, dimCap int) int {
	if n == 0 || core <= 0 {
		return 1
	}
	avg := sumExtent / int64(n)
	if avg <= 0 {
		return dimCap
	}
	dim := int(core / avg)
	if dim < 1 {
		dim = 1
	}
	if dim > dimCap {
		dim = dimCap
	}
	return dim
}
