package compatgraph_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/compatgraph"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/sta"
)

// oracleScale keeps the five profiles small enough for many edit rounds.
const oracleScale = 300

func genProfile(t testing.TB, name string) *bench.Result {
	t.Helper()
	o := bench.ProfileOpts{Scale: oracleScale}
	var spec bench.Spec
	switch name {
	case "D1":
		spec = bench.D1(o)
	case "D2":
		spec = bench.D2(o)
	case "D3":
		spec = bench.D3(o)
	case "D4":
		spec = bench.D4(o)
	case "D5":
		spec = bench.D5(o)
	default:
		t.Fatalf("unknown profile %s", name)
	}
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return b
}

// requireGraphsEqual asserts exact equality with the compat.Build oracle:
// node set and order, every RegInfo field, adjacency, and exclusions.
func requireGraphsEqual(t *testing.T, ctx string, got, want *compat.Graph) {
	t.Helper()
	if len(got.Regs) != len(want.Regs) {
		t.Fatalf("%s: node count %d != oracle %d", ctx, len(got.Regs), len(want.Regs))
	}
	for i := range want.Regs {
		g, w := got.Regs[i], want.Regs[i]
		if g.Inst.ID != w.Inst.ID {
			t.Fatalf("%s: node %d is inst %d, oracle has %d", ctx, i, g.Inst.ID, w.Inst.ID)
		}
		if g.DSlack != w.DSlack || g.QSlack != w.QSlack ||
			g.Region != w.Region || g.ClockPos != w.ClockPos {
			t.Fatalf("%s: node %d (inst %d) RegInfo diverged:\n got %+v\nwant %+v",
				ctx, i, g.Inst.ID, *g, *w)
		}
	}
	for i := range want.Adj {
		g, w := got.Adj[i], want.Adj[i]
		if len(g) != len(w) {
			t.Fatalf("%s: node %d degree %d != oracle %d (got %v want %v)",
				ctx, i, len(g), len(w), g, w)
		}
		for k := range w {
			if g[k] != w[k] {
				t.Fatalf("%s: node %d adjacency diverged: got %v want %v", ctx, i, g, w)
			}
		}
	}
	if len(got.Excluded) != len(want.Excluded) {
		t.Fatalf("%s: excluded count %d != oracle %d", ctx, len(got.Excluded), len(want.Excluded))
	}
	for id, why := range want.Excluded {
		if got.Excluded[id] != why {
			t.Fatalf("%s: excluded[%d] = %q, oracle %q", ctx, id, got.Excluded[id], why)
		}
	}
}

// mutate applies one randomized edit round: moves, resizes, skews, and a
// composition pass (which merges registers and rewrites the scan plan).
func mutate(t *testing.T, b *bench.Result, eng *sta.Engine, rng *rand.Rand, round int) {
	t.Helper()
	d := b.Design
	regs := d.Registers()
	if len(regs) == 0 {
		return
	}
	// Parametric edits: a few moves and resizes.
	for k := 0; k < 1+rng.Intn(5); k++ {
		r := regs[rng.Intn(len(regs))]
		if r.Fixed {
			continue
		}
		d.MoveInst(r, geom.Point{
			X: r.Pos.X + int64(rng.Intn(4001)) - 2000,
			Y: r.Pos.Y + int64(rng.Intn(4001)) - 2000,
		})
	}
	for k := 0; k < rng.Intn(3); k++ {
		r := regs[rng.Intn(len(regs))]
		if r.Fixed || r.SizeOnly {
			continue
		}
		cands := d.Lib.CellsOfWidth(r.RegCell.Class, r.RegCell.Bits)
		if len(cands) > 1 {
			if err := d.ResizeRegister(r, cands[rng.Intn(len(cands))]); err != nil {
				t.Fatalf("resize: %v", err)
			}
		}
	}
	// Skew edits change slacks without touching the netlist at all.
	for k := 0; k < rng.Intn(4); k++ {
		r := regs[rng.Intn(len(regs))]
		eng.SetSkew(r.ID, float64(rng.Intn(201)-100))
	}
	// Every third round, run a real composition pass: merges remove
	// members, create MBR nodes, and update the scan plan.
	if round%3 == 2 {
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("sta for compose: %v", err)
		}
		g := compat.Build(d, res, b.Plan, compat.DefaultOptions())
		opts := core.DefaultOptions()
		opts.NamePrefix = fmt.Sprintf("orc%d", round)
		if _, err := core.Compose(d, g, b.Plan, opts); err != nil {
			t.Fatalf("compose: %v", err)
		}
	}
}

// TestDeltaEqualsBuildOracle is the equivalence oracle of the ISSUE: after
// randomized rounds of merge/move/resize/skew edits on all five profiles,
// the delta-maintained graph must equal a fresh compat.Build exactly, at
// several worker counts.
func TestDeltaEqualsBuildOracle(t *testing.T) {
	for _, profile := range []string{"D1", "D2", "D3", "D4", "D5"} {
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			t.Run(fmt.Sprintf("%s/w%d", profile, workers), func(t *testing.T) {
				b := genProfile(t, profile)
				d := b.Design
				eng := sta.New(d)
				eng.SetIdealClocks(true)
				cg := compatgraph.New(d, b.Plan, compatgraph.Options{Compat: compat.DefaultOptions(), Workers: workers})
				cg.SetTimingFeed(eng)
				rng := rand.New(rand.NewSource(int64(len(profile)*1000 + workers)))

				for round := 0; round < 8; round++ {
					res, err := eng.Run()
					if err != nil {
						t.Fatalf("round %d: sta: %v", round, err)
					}
					got := cg.Update(res)
					want := compat.Build(d, res, b.Plan, compat.DefaultOptions())
					ctx := fmt.Sprintf("%s w%d round %d (%s/%s)",
						profile, workers, round, cg.Stats().LastKind, cg.Stats().LastNodePhase)
					requireGraphsEqual(t, ctx, got, want)
					mutate(t, b, eng, rng, round)
				}
				st := cg.Stats()
				if st.Deltas == 0 {
					t.Fatalf("no update took the delta path: %+v", st)
				}
				if st.NodeDeltas == 0 {
					t.Fatalf("no update took the delta node phase: %+v", st)
				}
			})
		}
	}
}

// TestEngineDeterministicAcrossWorkers materializes the same edit sequence
// at several worker counts and requires identical graphs.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	type snap struct {
		g  *compat.Graph
		st compatgraph.Stats
	}
	run := func(workers int) []snap {
		b := genProfile(t, "D2")
		d := b.Design
		eng := sta.New(d)
		eng.SetIdealClocks(true)
		cg := compatgraph.New(d, b.Plan, compatgraph.Options{Compat: compat.DefaultOptions(), Workers: workers})
		cg.SetTimingFeed(eng)
		rng := rand.New(rand.NewSource(99))
		var out []snap
		for round := 0; round < 6; round++ {
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("sta: %v", err)
			}
			out = append(out, snap{cg.Update(res), cg.Stats()})
			mutate(t, b, eng, rng, round)
		}
		return out
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		other := run(w)
		for i := range base {
			requireGraphsEqual(t, fmt.Sprintf("w%d round %d", w, i), other[i].g, base[i].g)
			// Decision stats must also be scheduling-independent.
			bs, os := base[i].st, other[i].st
			bs.LastComponents, os.LastComponents = 0, 0
			bs.LastComponentsReused, os.LastComponentsReused = 0, 0
			// Wall time is not reproducible across runs.
			bs.NodePhaseNS, os.NodePhaseNS = 0, 0
			bs.EdgePhaseNS, os.EdgePhaseNS = 0, 0
			bs.LastNodePhaseNS, os.LastNodePhaseNS = 0, 0
			bs.LastEdgePhaseNS, os.LastEdgePhaseNS = 0, 0
			if bs != os {
				t.Fatalf("w%d round %d stats diverged:\n base %+v\nother %+v", w, i, bs, os)
			}
		}
	}
}

// TestSubgraphsMatchDecompose checks the cached decomposition against the
// partition package on the materialized graph.
func TestSubgraphsMatchDecompose(t *testing.T) {
	b := genProfile(t, "D3")
	d := b.Design
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	cg := compatgraph.New(d, b.Plan, compatgraph.Options{Compat: compat.DefaultOptions()})
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 5; round++ {
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("sta: %v", err)
		}
		g := cg.Update(res)
		got := cg.Subgraphs(30)
		want := corePartitionOracle(g, 30)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d subgraphs != oracle %d", round, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("round %d: subgraph %d size mismatch", round, i)
			}
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					t.Fatalf("round %d: subgraph %d diverged: got %v want %v",
						round, i, got[i], want[i])
				}
			}
		}
		mutate(t, b, eng, rng, round)
	}
	if st := cg.Stats(); st.LastComponents == 0 {
		t.Fatal("no components reported")
	}
}

// TestNodePhaseDeltaVisitsOnlyDirty pins the O(touched) claim: after a
// single-register edit, the delta node phase must engage and must examine
// far fewer candidates than the design has registers, while still matching
// the oracle exactly.
func TestNodePhaseDeltaVisitsOnlyDirty(t *testing.T) {
	b := genProfile(t, "D2")
	d := b.Design
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	cg := compatgraph.New(d, b.Plan, compatgraph.Options{Compat: compat.DefaultOptions()})
	cg.SetTimingFeed(eng)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	cg.Update(res)

	regs := d.Registers()
	nRegs := len(regs)
	var r *netlist.Inst
	for _, c := range regs {
		if !c.Fixed {
			r = c
			break
		}
	}
	if r == nil {
		t.Skip("no movable register")
	}
	d.MoveInst(r, geom.Point{X: r.Pos.X + 500, Y: r.Pos.Y + 500})
	res, err = eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := cg.Update(res)
	st := cg.Stats()
	if st.LastNodePhase != "delta" {
		t.Fatalf("expected delta node phase, got %q (kind %s)", st.LastNodePhase, st.LastKind)
	}
	// One move dirties the register, its data-net neighbours, and the
	// registers whose slack the STA cone sweep changed — a local set. Half
	// the register count is a generous ceiling that still rules out any
	// full sweep.
	if st.LastNodesVisited >= nRegs/2 {
		t.Fatalf("delta node phase visited %d of %d registers — not O(touched)",
			st.LastNodesVisited, nRegs)
	}
	requireGraphsEqual(t, "single-move delta", got,
		compat.Build(d, res, b.Plan, compat.DefaultOptions()))
}

// TestOverflowFallsBackToRebuild floods the touched ring with edits and
// checks the engine takes the full-sweep path and still matches the oracle.
func TestOverflowFallsBackToRebuild(t *testing.T) {
	b := genProfile(t, "D1")
	d := b.Design
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	cg := compatgraph.New(d, b.Plan, compatgraph.Options{Compat: compat.DefaultOptions()})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	cg.Update(res)

	// Far more edits than the touched ring holds (count actual moves:
	// fixed registers are skipped without bumping the epoch).
	rng := rand.New(rand.NewSource(1))
	regs := d.Registers()
	for moved := 0; moved < 5000; {
		r := regs[rng.Intn(len(regs))]
		if r.Fixed {
			continue
		}
		d.MoveInst(r, geom.Point{X: r.Pos.X + 1, Y: r.Pos.Y})
		moved++
	}
	res, err = eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := cg.Update(res)
	if k := cg.Stats().LastKind; k != compatgraph.KindOverflow {
		t.Fatalf("expected touched-overflow fallback, got %q", k)
	}
	requireGraphsEqual(t, "overflow", got, compat.Build(d, res, b.Plan, compat.DefaultOptions()))
}

// corePartitionOracle mirrors what core.Compose does with a plain graph.
func corePartitionOracle(g *compat.Graph, maxNodes int) [][]int {
	return partition.Decompose(len(g.Regs), g.Adj,
		func(i int) geom.Point { return g.Regs[i].ClockPos }, maxNodes)
}
