package lib

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func defaultFFClass() FuncClass {
	return FuncClass{Kind: FlipFlop, Edge: RisingEdge, Reset: AsyncReset, Scan: InternalScan}
}

func TestFuncClassKey(t *testing.T) {
	a := defaultFFClass()
	b := a
	if a.Key() != b.Key() {
		t.Fatal("equal classes must have equal keys")
	}
	b.HasEnable = true
	if a.Key() == b.Key() {
		t.Fatal("distinct classes must have distinct keys")
	}
	if !strings.Contains(a.Key(), "arst") || !strings.Contains(a.Key(), "iscan") {
		t.Fatalf("key %q should encode reset and scan", a.Key())
	}
}

func TestGenerateDefault(t *testing.T) {
	l := MustGenerateDefault()
	spec := DefaultGenSpec()
	wantCells := len(spec.Classes) * len(spec.Widths) * len(spec.Drives)
	if got := len(l.Cells()); got != wantCells {
		t.Fatalf("cell count = %d want %d", got, wantCells)
	}
	for _, class := range spec.Classes {
		ws := l.Widths(class)
		if len(ws) != len(spec.Widths) {
			t.Fatalf("class %s widths = %v", class.Key(), ws)
		}
		if l.MaxWidth(class) != 8 {
			t.Fatalf("class %s max width = %d", class.Key(), l.MaxWidth(class))
		}
	}
}

func TestPerBitEconomies(t *testing.T) {
	l := MustGenerateDefault()
	class := defaultFFClass()
	var prevArea, prevCap float64 = 1e18, 1e18
	for _, bits := range []int{1, 2, 4, 8} {
		cells := l.CellsOfWidth(class, bits)
		if len(cells) == 0 {
			t.Fatalf("no %d-bit cells", bits)
		}
		c := cells[0] // drive 1
		if pa := c.PerBitArea(); pa >= prevArea {
			t.Errorf("per-bit area must shrink with width: %d-bit %.1f ≥ previous %.1f", bits, pa, prevArea)
		} else {
			prevArea = pa
		}
		if pc := c.PerBitClkCap(); pc >= prevCap {
			t.Errorf("per-bit clk cap must shrink with width: %d-bit %.3f ≥ previous %.3f", bits, pc, prevCap)
		} else {
			prevCap = pc
		}
	}
}

func TestDriveStrengthEffects(t *testing.T) {
	l := MustGenerateDefault()
	class := defaultFFClass()
	cells := l.CellsOfWidth(class, 4)
	if len(cells) != 3 {
		t.Fatalf("want 3 drives, got %d", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if cells[i].DriveRes >= cells[i-1].DriveRes {
			t.Error("stronger drive must have lower resistance")
		}
		if cells[i].Area <= cells[i-1].Area {
			t.Error("stronger drive must have larger area")
		}
		if cells[i].ClkCap <= cells[i-1].ClkCap {
			t.Error("stronger drive must have larger clock cap")
		}
	}
}

func TestSelectCellDrivePolicy(t *testing.T) {
	l := MustGenerateDefault()
	class := defaultFFClass()
	// Replaced registers' strongest (minimum) drive resistance: the X2 cell.
	x2 := l.CellsOfWidth(class, 1)[1]
	got := l.SelectCell(class, 4, x2.DriveRes)
	if got == nil {
		t.Fatal("no cell selected")
	}
	if got.Drive != 2 {
		t.Fatalf("selected drive %d, want 2 (least over-design at ≥ strength)", got.Drive)
	}
	// A resistance stronger than anything in the library → strongest cell.
	got = l.SelectCell(class, 4, 0.001)
	if got.Drive != 4 {
		t.Fatalf("selected drive %d, want strongest (4)", got.Drive)
	}
	// Very weak requirement → weakest (drive 1) wins on clk cap.
	got = l.SelectCell(class, 4, 1e9)
	if got.Drive != 1 {
		t.Fatalf("selected drive %d, want 1", got.Drive)
	}
	// Absent width.
	if l.SelectCell(class, 5, 1) != nil {
		t.Fatal("5-bit cell should not exist")
	}
}

func TestSmallestWidthAtLeast(t *testing.T) {
	l := MustGenerateDefault()
	class := defaultFFClass()
	cases := []struct {
		bits, want int
		ok         bool
	}{
		{1, 1, true}, {2, 2, true}, {3, 4, true}, {4, 4, true},
		{5, 8, true}, {6, 8, true}, {7, 8, true}, {8, 8, true},
		{9, 0, false},
	}
	for _, c := range cases {
		got, ok := l.SmallestWidthAtLeast(class, c.bits)
		if got != c.want || ok != c.ok {
			t.Errorf("SmallestWidthAtLeast(%d) = %d,%v want %d,%v", c.bits, got, ok, c.want, c.ok)
		}
	}
}

func TestAddValidation(t *testing.T) {
	l := NewLibrary("t")
	good := MustGenerateDefault().Cells()[0]
	if err := l.Add(good); err != nil {
		t.Fatalf("Add(good): %v", err)
	}
	if err := l.Add(good); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
	bad := *good
	bad.Name = "bad-bits"
	bad.Bits = 0
	if err := l.Add(&bad); err == nil {
		t.Fatal("zero bits must be rejected")
	}
	bad = *good
	bad.Name = "bad-pins"
	bad.DPins = nil
	if err := l.Add(&bad); err == nil {
		t.Fatal("mismatched pin count must be rejected")
	}
	bad = *good
	bad.Name = "bad-area"
	bad.Area = 0
	if err := l.Add(&bad); err == nil {
		t.Fatal("zero area must be rejected")
	}
	bad = *good
	bad.Name = "bad-res"
	bad.DriveRes = 0
	if err := l.Add(&bad); err == nil {
		t.Fatal("zero drive resistance must be rejected")
	}
}

func TestCellByNameAndClassCells(t *testing.T) {
	l := MustGenerateDefault()
	c := l.Cells()[0]
	if l.CellByName(c.Name) != c {
		t.Fatal("CellByName round trip failed")
	}
	if l.CellByName("nope") != nil {
		t.Fatal("unknown name should return nil")
	}
	cc := l.ClassCells(c.Class)
	for i := 1; i < len(cc); i++ {
		a, b := cc[i-1], cc[i]
		if a.Bits > b.Bits || (a.Bits == b.Bits && a.Drive > b.Drive) {
			t.Fatal("ClassCells must be sorted by (bits, drive)")
		}
	}
}

func TestGenerateRejectsMissingWidth1(t *testing.T) {
	spec := DefaultGenSpec()
	spec.Widths = []int{2, 4}
	if _, err := Generate(spec); err == nil {
		t.Fatal("widths without 1 must be rejected")
	}
}

func TestPinOffsetsInsideCell(t *testing.T) {
	l := MustGenerateDefault()
	for _, c := range l.Cells() {
		check := func(p PinOffset, what string) {
			if p.DX < 0 || p.DX > c.Width || p.DY < 0 || p.DY > c.Height {
				t.Errorf("cell %s %s pin offset %v outside footprint %dx%d",
					c.Name, what, p, c.Width, c.Height)
			}
		}
		for _, p := range c.DPins {
			check(p, "D")
		}
		for _, p := range c.QPins {
			check(p, "Q")
		}
		check(c.ClkPin, "CLK")
	}
}

// Property: an N-bit cell always beats N 1-bit cells of the same class and
// drive on both total area and total clock capacitance — the premise of MBR
// composition.
func TestMBRAlwaysBeatsDiscreteRegisters(t *testing.T) {
	l := MustGenerateDefault()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := DefaultGenSpec().Classes
		class := classes[rng.Intn(len(classes))]
		widths := []int{2, 4, 8}
		bits := widths[rng.Intn(len(widths))]
		drives := []int{1, 2, 4}
		drive := drives[rng.Intn(len(drives))]
		var mbr, single *Cell
		for _, c := range l.CellsOfWidth(class, bits) {
			if c.Drive == drive {
				mbr = c
			}
		}
		for _, c := range l.CellsOfWidth(class, 1) {
			if c.Drive == drive {
				single = c
			}
		}
		if mbr == nil || single == nil {
			return false
		}
		n := float64(bits)
		return float64(mbr.Area) < n*float64(single.Area) &&
			mbr.ClkCap < n*single.ClkCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
