// Package lib models the standard-cell register library that MBR
// composition draws from: register functional classes, multi-bit register
// (MBR) families in several bit widths and drive strengths, and the
// electrical quantities the composition flow reasons with — area, clock-pin
// capacitance, data-pin capacitance, drive resistance and intrinsic delay.
//
// The paper uses accurate CCS models from a 28nm production library; here a
// linear delay abstraction (delay = intrinsic + driveResistance × load, §4.1
// of the paper describes exactly this abstraction) over a parametric cell
// generator stands in. What matters for the algorithm is the *relative*
// structure across widths: per-bit area and per-bit clock capacitance shrink
// as width grows, larger drives have lower resistance but higher pin
// capacitance and area.
package lib

import (
	"fmt"
	"sort"
)

// RegKind distinguishes level-sensitive latches from edge-triggered
// flip-flops. Registers of different kinds are never merge-compatible.
type RegKind int

// Register kinds.
const (
	FlipFlop RegKind = iota
	Latch
)

func (k RegKind) String() string {
	if k == Latch {
		return "latch"
	}
	return "ff"
}

// ResetKind is the reset/preset behaviour of a register class.
type ResetKind int

// Reset behaviours.
const (
	NoReset ResetKind = iota
	AsyncReset
	SyncReset
	AsyncSet
)

func (r ResetKind) String() string {
	switch r {
	case AsyncReset:
		return "arst"
	case SyncReset:
		return "srst"
	case AsyncSet:
		return "aset"
	}
	return "norst"
}

// ScanKind is the scan style of a register cell.
type ScanKind int

// Scan styles.
const (
	// NoScan cells have no scan circuitry.
	NoScan ScanKind = iota
	// InternalScan MBRs chain their bits internally: one SI pin on the first
	// bit, one SO pin on the last; the internal scan order is fixed.
	InternalScan
	// ExternalScan MBRs expose an SI/SO pin pair per bit so independent
	// chains can cross the cell; costs external routing (§4.1 penalizes it).
	ExternalScan
)

func (s ScanKind) String() string {
	switch s {
	case InternalScan:
		return "iscan"
	case ExternalScan:
		return "escan"
	}
	return "noscan"
}

// ClockEdge is the active clock edge of a flip-flop class (ignored for
// latches, where it encodes the transparent phase).
type ClockEdge int

// Clock edges.
const (
	RisingEdge ClockEdge = iota
	FallingEdge
)

func (e ClockEdge) String() string {
	if e == FallingEdge {
		return "neg"
	}
	return "pos"
}

// FuncClass identifies a register functional-equivalence family. Two
// registers can only ever merge when their classes are equal (and, beyond
// the library, their control nets match — that part lives in the netlist).
type FuncClass struct {
	Kind      RegKind
	Edge      ClockEdge
	Reset     ResetKind
	HasEnable bool
	Scan      ScanKind
}

// Key returns a stable string identity for the class, usable as a map key
// in serialized form.
func (f FuncClass) Key() string {
	en := "noen"
	if f.HasEnable {
		en = "en"
	}
	return fmt.Sprintf("%s_%s_%s_%s_%s", f.Kind, f.Edge, f.Reset, en, f.Scan)
}

// PinOffset is a pin's placement offset from the cell's lower-left corner,
// in database units. The MBR placement LP (§4.2) references pin coordinates
// as cell corner + offset.
type PinOffset struct {
	DX, DY int64
}

// Cell is one register cell of the library: a specific width and drive of a
// functional class.
type Cell struct {
	Name  string
	Class FuncClass
	// Bits is the number of D/Q pairs (1 for a single-bit register).
	Bits int
	// Drive is the drive strength multiplier (1, 2, 4 ...) of the output
	// stages.
	Drive int
	// Area in square database units.
	Area int64
	// Width and Height of the cell footprint in database units.
	Width, Height int64
	// ClkCap is the total clock-pin input capacitance, in femtofarads.
	ClkCap float64
	// DPinCap is the input capacitance of each D pin, in femtofarads.
	DPinCap float64
	// DriveRes is the linear-model drive resistance of each Q output, in
	// kΩ. Delay ≈ Intrinsic + DriveRes × load.
	DriveRes float64
	// Intrinsic is the fixed clock-to-Q delay component, in picoseconds.
	Intrinsic float64
	// Setup is the D-pin setup time, in picoseconds.
	Setup float64
	// Leakage is the cell leakage power, in nanowatts.
	Leakage float64
	// DPins and QPins are per-bit pin offsets, index = bit.
	DPins, QPins []PinOffset
	// ClkPin is the clock pin offset.
	ClkPin PinOffset
}

// PerBitArea returns Area / Bits as a float.
func (c *Cell) PerBitArea() float64 { return float64(c.Area) / float64(c.Bits) }

// PerBitClkCap returns ClkCap / Bits.
func (c *Cell) PerBitClkCap() float64 { return c.ClkCap / float64(c.Bits) }

// Library is an immutable collection of register cells indexed by
// functional class.
type Library struct {
	Name  string
	cells map[string][]*Cell // class key → cells sorted by (Bits, Drive)
	all   []*Cell
}

// NewLibrary returns an empty library with the given name.
func NewLibrary(name string) *Library {
	return &Library{Name: name, cells: map[string][]*Cell{}}
}

// Add inserts a cell. It returns an error when a cell of the same name
// already exists or the cell is malformed.
func (l *Library) Add(c *Cell) error {
	if c.Bits <= 0 {
		return fmt.Errorf("lib: cell %q has non-positive bits %d", c.Name, c.Bits)
	}
	if len(c.DPins) != c.Bits || len(c.QPins) != c.Bits {
		return fmt.Errorf("lib: cell %q pin offsets (%d D, %d Q) do not match %d bits",
			c.Name, len(c.DPins), len(c.QPins), c.Bits)
	}
	if c.Area <= 0 || c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("lib: cell %q has non-positive geometry", c.Name)
	}
	if c.DriveRes <= 0 || c.ClkCap <= 0 {
		return fmt.Errorf("lib: cell %q has non-positive electricals", c.Name)
	}
	for _, ex := range l.all {
		if ex.Name == c.Name {
			return fmt.Errorf("lib: duplicate cell name %q", c.Name)
		}
	}
	key := c.Class.Key()
	l.cells[key] = append(l.cells[key], c)
	sort.Slice(l.cells[key], func(i, j int) bool {
		a, b := l.cells[key][i], l.cells[key][j]
		if a.Bits != b.Bits {
			return a.Bits < b.Bits
		}
		return a.Drive < b.Drive
	})
	l.all = append(l.all, c)
	return nil
}

// MustAdd is Add that panics on error; for use by builders with
// programmatically correct cells.
func (l *Library) MustAdd(c *Cell) {
	if err := l.Add(c); err != nil {
		panic(err)
	}
}

// Cells returns every cell of the library in insertion order.
func (l *Library) Cells() []*Cell { return l.all }

// CellByName returns the named cell, or nil.
func (l *Library) CellByName(name string) *Cell {
	for _, c := range l.all {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ClassCells returns the cells of a functional class sorted by (Bits,
// Drive), or nil when the class is absent.
func (l *Library) ClassCells(f FuncClass) []*Cell { return l.cells[f.Key()] }

// HasClass reports whether any cell of the class exists.
func (l *Library) HasClass(f FuncClass) bool { return len(l.cells[f.Key()]) > 0 }

// Widths returns the sorted distinct bit widths available for a class.
func (l *Library) Widths(f FuncClass) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range l.cells[f.Key()] {
		if !seen[c.Bits] {
			seen[c.Bits] = true
			out = append(out, c.Bits)
		}
	}
	sort.Ints(out)
	return out
}

// MaxWidth returns the largest bit width available for a class (0 when the
// class is absent).
func (l *Library) MaxWidth(f FuncClass) int {
	ws := l.Widths(f)
	if len(ws) == 0 {
		return 0
	}
	return ws[len(ws)-1]
}

// CellsOfWidth returns the cells of a class with exactly the given width,
// sorted by drive.
func (l *Library) CellsOfWidth(f FuncClass, bits int) []*Cell {
	var out []*Cell
	for _, c := range l.cells[f.Key()] {
		if c.Bits == bits {
			out = append(out, c)
		}
	}
	return out
}

// SmallestWidthAtLeast returns the smallest library width ≥ bits for the
// class, and whether one exists. It is the incomplete-MBR lookup: a
// candidate of 6 bits maps to an 8-bit cell when no 6-bit cell exists.
func (l *Library) SmallestWidthAtLeast(f FuncClass, bits int) (int, bool) {
	for _, w := range l.Widths(f) {
		if w >= bits {
			return w, true
		}
	}
	return 0, false
}

// SelectCell implements the paper's §4.1 mapping policy: among the cells of
// a class with the requested width, pick the one whose drive resistance is
// the largest that does not exceed maxDriveRes (so the MBR drives at least
// as strongly as the strongest replaced register — "the drive resistance of
// the selected MBR should match the minimum drive resistance of the
// registers that will be replaced"), breaking ties by lowest clock-pin
// capacitance. When no cell is strong enough, the strongest available is
// returned. Returns nil when the class/width combination is absent.
func (l *Library) SelectCell(f FuncClass, bits int, maxDriveRes float64) *Cell {
	cands := l.CellsOfWidth(f, bits)
	if len(cands) == 0 {
		return nil
	}
	var best *Cell
	for _, c := range cands {
		if c.DriveRes > maxDriveRes+1e-12 {
			continue // too weak
		}
		if best == nil ||
			c.DriveRes > best.DriveRes+1e-12 || // least over-design
			(absf(c.DriveRes-best.DriveRes) <= 1e-12 && c.ClkCap < best.ClkCap) {
			best = c
		}
	}
	if best == nil {
		// Nothing strong enough: take the strongest (lowest resistance).
		best = cands[0]
		for _, c := range cands[1:] {
			if c.DriveRes < best.DriveRes ||
				(c.DriveRes == best.DriveRes && c.ClkCap < best.ClkCap) {
				best = c
			}
		}
	}
	return best
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
