package lib

import "fmt"

// GenSpec parameterizes the reference library generator. The defaults in
// DefaultGenSpec approximate published 28nm multi-bit flip-flop data: per-bit
// area and per-bit clock capacitance shrink as bit width grows, stronger
// drives have lower resistance but more area and pin capacitance.
type GenSpec struct {
	// Widths are the MBR bit widths to generate (must include 1).
	Widths []int
	// Drives are the drive strength multipliers to generate (e.g. 1,2,4).
	Drives []int
	// SiteHeight is the standard-cell row height in DBU.
	SiteHeight int64
	// BitWidthDBU is the footprint width contributed per bit at drive 1.
	BitWidthDBU int64
	// BaseClkCap is the 1-bit drive-1 clock pin capacitance (fF).
	BaseClkCap float64
	// BaseDPinCap is the D-pin capacitance (fF) at drive 1.
	BaseDPinCap float64
	// BaseDriveRes is the drive-1 output resistance (kΩ).
	BaseDriveRes float64
	// BaseIntrinsic is the clock-to-Q intrinsic delay (ps).
	BaseIntrinsic float64
	// BaseSetup is the setup time (ps).
	BaseSetup float64
	// BaseLeakage is the 1-bit drive-1 leakage (nW).
	BaseLeakage float64
	// Classes lists the functional classes to emit cells for.
	Classes []FuncClass
}

// DefaultClasses returns the functional classes the reference library
// covers: rising-edge DFFs with/without async reset and enable, in
// non-scan, internal-scan and external-scan styles, plus a transparent
// latch family.
func DefaultClasses() []FuncClass {
	var out []FuncClass
	for _, scan := range []ScanKind{NoScan, InternalScan, ExternalScan} {
		for _, rst := range []ResetKind{NoReset, AsyncReset} {
			for _, en := range []bool{false, true} {
				out = append(out, FuncClass{
					Kind: FlipFlop, Edge: RisingEdge, Reset: rst,
					HasEnable: en, Scan: scan,
				})
			}
		}
	}
	out = append(out, FuncClass{Kind: Latch, Edge: RisingEdge, Reset: NoReset})
	return out
}

// DefaultGenSpec returns the 28nm-like generation parameters used by the
// benchmarks. Widths follow typical production MBFF libraries
// ({1, 2, 4, 8}) — the bit-width granularity gap that §3's incomplete MBRs
// exist to bridge. (The paper's running example adds a 3-bit cell; the
// tests for that example build their own library.)
func DefaultGenSpec() GenSpec {
	return GenSpec{
		Widths:        []int{1, 2, 4, 8},
		Drives:        []int{1, 2, 4},
		SiteHeight:    1200, // 1.2 µm row in DBU (1 DBU = 1 nm)
		BitWidthDBU:   1000,
		BaseClkCap:    1.0,  // fF
		BaseDPinCap:   0.6,  // fF
		BaseDriveRes:  6.0,  // kΩ
		BaseIntrinsic: 55.0, // ps
		BaseSetup:     35.0, // ps
		BaseLeakage:   3.0,  // nW
		Classes:       DefaultClasses(),
	}
}

// perBitAreaFactor reproduces the per-bit area shrink of MBFF families:
// sharing the clock inverter pair and well/tap overhead makes an N-bit cell
// smaller than N 1-bit cells.
func perBitAreaFactor(bits int) float64 {
	switch {
	case bits <= 1:
		return 1.00
	case bits == 2:
		return 0.93
	case bits == 3:
		return 0.91
	case bits <= 4:
		return 0.88
	default:
		return 0.84
	}
}

// clkCapFactor returns the total clock-pin capacitance of an N-bit cell
// relative to a 1-bit cell. The shared internal clock buffering makes this
// strongly sub-linear — the core driver of clock-power savings.
func clkCapFactor(bits int) float64 {
	return 0.6 + 0.4*float64(bits)
}

// Generate builds a library from the spec. Cell names follow
// DFF<class>_B<bits>_X<drive>.
func Generate(spec GenSpec) (*Library, error) {
	if len(spec.Widths) == 0 || spec.Widths[0] != 1 {
		// Width 1 must exist: original registers must remain mappable.
		has1 := false
		for _, w := range spec.Widths {
			if w == 1 {
				has1 = true
			}
		}
		if !has1 {
			return nil, fmt.Errorf("lib: GenSpec.Widths must include 1 (got %v)", spec.Widths)
		}
	}
	l := NewLibrary("gen28-like")
	for _, class := range spec.Classes {
		for _, bits := range spec.Widths {
			for _, drive := range spec.Drives {
				c := makeCell(spec, class, bits, drive)
				if err := l.Add(c); err != nil {
					return nil, err
				}
			}
		}
	}
	return l, nil
}

// MustGenerateDefault returns the default reference library; it panics on
// generator bugs only.
func MustGenerateDefault() *Library {
	l, err := Generate(DefaultGenSpec())
	if err != nil {
		panic(err)
	}
	return l
}

func makeCell(spec GenSpec, class FuncClass, bits, drive int) *Cell {
	driveF := float64(drive)
	// Footprint: bits scale the width; stronger drive widens output stages;
	// reset/enable/scan each add a little width.
	extra := 0.0
	if class.Reset != NoReset {
		extra += 0.15
	}
	if class.HasEnable {
		extra += 0.15
	}
	switch class.Scan {
	case InternalScan:
		extra += 0.20
	case ExternalScan:
		extra += 0.30 // per-bit scan muxes and pins cost more
	}
	wPerBit := float64(spec.BitWidthDBU) * (1 + 0.12*(driveF-1)) * (1 + extra)
	width := int64(wPerBit * float64(bits) * perBitAreaFactor(bits))
	if width < spec.BitWidthDBU/2 {
		width = spec.BitWidthDBU / 2
	}
	height := spec.SiteHeight
	area := width * height

	name := fmt.Sprintf("DFF_%s_B%d_X%d", class.Key(), bits, drive)
	dPins := make([]PinOffset, bits)
	qPins := make([]PinOffset, bits)
	for b := 0; b < bits; b++ {
		// D pins along the bottom edge, Q pins along the top, evenly spaced.
		x := width * int64(2*b+1) / int64(2*bits)
		dPins[b] = PinOffset{DX: x, DY: height / 4}
		qPins[b] = PinOffset{DX: x, DY: 3 * height / 4}
	}
	return &Cell{
		Name:      name,
		Class:     class,
		Bits:      bits,
		Drive:     drive,
		Area:      area,
		Width:     width,
		Height:    height,
		ClkCap:    spec.BaseClkCap * clkCapFactor(bits) * (1 + 0.10*(driveF-1)),
		DPinCap:   spec.BaseDPinCap * (1 + 0.05*(driveF-1)),
		DriveRes:  spec.BaseDriveRes / driveF,
		Intrinsic: spec.BaseIntrinsic * (1 + 0.02*float64(bits-1)),
		Setup:     spec.BaseSetup,
		Leakage:   spec.BaseLeakage * float64(bits) * perBitAreaFactor(bits) * (1 + 0.3*(driveF-1)),
		DPins:     dPins,
		QPins:     qPins,
		ClkPin:    PinOffset{DX: width / 2, DY: height / 2},
	}
}
