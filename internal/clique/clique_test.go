package clique

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperGraph builds the Fig. 1 compatibility graph:
// nodes A=0(1b) B=1(1b) C=2(1b) D=3(1b) E=4(4b) F=5(2b);
// edges: A-B, A-C, A-D, A-E, B-C, B-D, B-F, C-D, C-E, C-F.
func paperGraph() (*Graph, []int) {
	g := NewGraph(6)
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 5}, {2, 3}, {2, 4}, {2, 5}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g, []int{1, 1, 1, 1, 4, 2}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 0) // ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge must be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("degree wrong")
	}
	if g.HasEdge(0, 0) {
		t.Fatal("self loop must be ignored")
	}
}

func TestIsClique(t *testing.T) {
	g, _ := paperGraph()
	if !g.IsClique(MaskOf([]int{0, 1, 2, 3})) { // ABCD
		t.Fatal("ABCD is a clique")
	}
	if g.IsClique(MaskOf([]int{0, 1, 5})) { // ABF: A-F missing
		t.Fatal("ABF is not a clique")
	}
	if !g.IsClique(MaskOf([]int{2})) || !g.IsClique(0) {
		t.Fatal("trivial cliques")
	}
}

func TestMaximalCliquesPaperGraph(t *testing.T) {
	g, _ := paperGraph()
	mc := MaximalCliques(g)
	want := map[uint64]bool{
		MaskOf([]int{0, 1, 2, 3}): true, // ABCD
		MaskOf([]int{0, 2, 4}):    true, // ACE
		MaskOf([]int{1, 2, 5}):    true, // BCF
	}
	if len(mc) != len(want) {
		t.Fatalf("got %d maximal cliques, want %d", len(mc), len(want))
	}
	for _, m := range mc {
		if !want[m] {
			t.Fatalf("unexpected maximal clique %v", Members(m))
		}
	}
}

func TestMaximalCliquesTriangleFree(t *testing.T) {
	// A 4-cycle: maximal cliques are its 4 edges.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	mc := MaximalCliques(g)
	if len(mc) != 4 {
		t.Fatalf("4-cycle has 4 maximal cliques, got %d", len(mc))
	}
	for _, m := range mc {
		if bits.OnesCount64(m) != 2 {
			t.Fatalf("clique %v should be an edge", Members(m))
		}
	}
}

func TestMaximalCliquesEmptyAndComplete(t *testing.T) {
	g := NewGraph(5) // no edges: 5 singleton maximal cliques
	mc := MaximalCliques(g)
	if len(mc) != 5 {
		t.Fatalf("edgeless graph: got %d cliques", len(mc))
	}
	k := NewGraph(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			k.AddEdge(i, j)
		}
	}
	mc = MaximalCliques(k)
	if len(mc) != 1 || bits.OnesCount64(mc[0]) != 5 {
		t.Fatalf("K5 must have a single maximal clique")
	}
}

func TestEnumerateSubCliquesPaperExample(t *testing.T) {
	g, bitsPer := paperGraph()
	// Library widths 1,2,3,4,8 — the paper's example library.
	res, err := EnumerateSubCliques(g, SubCliqueSpec{
		Bits: bitsPer, Widths: []int{1, 2, 3, 4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]int{}
	for i, c := range res.Cliques {
		got[c] = res.TotalBits[i]
	}
	// Without incomplete MBRs, Fig. 3 lists: 6 singletons, 7 pairs (AB, AC,
	// AD, BC, BD, CD, BF, CF... AE is 5 bits → invalid), wait: pairs from
	// edges: AB AC AD AE BC BD BF CD CE CF. AE = 1+4 = 5 bits → invalid.
	// CE = 5 bits → invalid. BF = 3 bits valid. CF = 3 valid.
	// Triples: ABC ABD ACD BCD (from ABCD), ACE = 6 → invalid, BCF = 4 valid.
	// Quad: ABCD = 4 valid.
	mustHave := [][]int{
		{0}, {1}, {2}, {3}, {4}, {5},
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {1, 5}, {2, 5},
		{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}, {1, 2, 5},
		{0, 1, 2, 3},
	}
	mustNotHave := [][]int{
		{0, 4},    // AE: 5 bits, no 5-bit cell
		{2, 4},    // CE
		{0, 2, 4}, // ACE: 6 bits
	}
	if len(res.Cliques) != len(mustHave) {
		t.Fatalf("got %d cliques want %d", len(res.Cliques), len(mustHave))
	}
	for _, m := range mustHave {
		if _, ok := got[MaskOf(m)]; !ok {
			t.Errorf("missing valid clique %v", m)
		}
	}
	for _, m := range mustNotHave {
		if _, ok := got[MaskOf(m)]; ok {
			t.Errorf("invalid clique %v enumerated", m)
		}
	}
}

func TestEnumerateSubCliquesIncomplete(t *testing.T) {
	g, bitsPer := paperGraph()
	res, err := EnumerateSubCliques(g, SubCliqueSpec{
		Bits: bitsPer, Widths: []int{1, 2, 3, 4, 8}, AllowIncomplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]int{}
	for i, c := range res.Cliques {
		got[c] = res.TotalBits[i]
	}
	// Now AE (5 bits → incomplete 8), CE (5), ACE (6), BCF already valid.
	for _, m := range [][]int{{0, 4}, {2, 4}, {0, 2, 4}} {
		if _, ok := got[MaskOf(m)]; !ok {
			t.Errorf("incomplete-valid clique %v missing", m)
		}
	}
	if tb := got[MaskOf([]int{0, 2, 4})]; tb != 6 {
		t.Errorf("ACE total bits = %d want 6", tb)
	}
}

func TestEnumerateSubCliquesPruning(t *testing.T) {
	// A K4 of 4-bit registers with widths {1,4,8}: only singles (4b) and
	// pairs (8b) are valid; triples (12b) exceed the largest width.
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	res, err := EnumerateSubCliques(g, SubCliqueSpec{
		Bits: []int{4, 4, 4, 4}, Widths: []int{1, 4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cliques) != 4+6 {
		t.Fatalf("got %d cliques want 10", len(res.Cliques))
	}
}

func TestEnumerateSubCliquesTruncation(t *testing.T) {
	g := NewGraph(16)
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			g.AddEdge(i, j)
		}
	}
	bits16 := make([]int, 16)
	for i := range bits16 {
		bits16[i] = 1
	}
	res, err := EnumerateSubCliques(g, SubCliqueSpec{
		Bits: bits16, Widths: []int{1, 2, 4, 8}, MaxCandidates: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Cliques) != 100 {
		t.Fatalf("truncated=%v n=%d", res.Truncated, len(res.Cliques))
	}
}

func TestEnumerateSubCliquesValidation(t *testing.T) {
	g := NewGraph(2)
	if _, err := EnumerateSubCliques(g, SubCliqueSpec{Bits: []int{1}, Widths: []int{1}}); err == nil {
		t.Fatal("bits length mismatch must fail")
	}
	if _, err := EnumerateSubCliques(g, SubCliqueSpec{Bits: []int{1, 1}}); err == nil {
		t.Fatal("empty widths must fail")
	}
	if _, err := EnumerateSubCliques(g, SubCliqueSpec{Bits: []int{0, 1}, Widths: []int{1}}); err == nil {
		t.Fatal("zero bits must fail")
	}
	if _, err := EnumerateSubCliques(g, SubCliqueSpec{Bits: []int{1, 1}, Widths: []int{0}}); err == nil {
		t.Fatal("zero width must fail")
	}
}

// Property: every enumerated sub-clique is a clique, bit totals are
// correct, there are no duplicates, and every maximal clique of the graph
// appears when its bit total is valid.
func TestEnumerateSubCliquesSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		bitsPer := make([]int, n)
		for i := range bitsPer {
			bitsPer[i] = 1 + rng.Intn(4)
		}
		res, err := EnumerateSubCliques(g, SubCliqueSpec{
			Bits: bitsPer, Widths: []int{1, 2, 3, 4, 8},
		})
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		for i, c := range res.Cliques {
			if seen[c] {
				return false // duplicate
			}
			seen[c] = true
			if !g.IsClique(c) {
				return false
			}
			total := 0
			for _, m := range Members(c) {
				total += bitsPer[m]
			}
			if total != res.TotalBits[i] {
				return false
			}
			switch total {
			case 1, 2, 3, 4, 8:
			default:
				return false // invalid width admitted
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bron–Kerbosch output is exactly the set of maximal cliques
// (cross-checked by brute force on small graphs).
func TestMaximalCliquesMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) > 0 {
					g.AddEdge(i, j)
				}
			}
		}
		want := map[uint64]bool{}
		for set := uint64(1); set < 1<<uint(n); set++ {
			if !g.IsClique(set) {
				continue
			}
			maximal := true
			for v := 0; v < n; v++ {
				if set&(1<<uint(v)) != 0 {
					continue
				}
				if g.IsClique(set | 1<<uint(v)) {
					maximal = false
					break
				}
			}
			if maximal {
				want[set] = true
			}
		}
		got := MaximalCliques(g)
		if len(got) != len(want) {
			return false
		}
		for _, m := range got {
			if !want[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
