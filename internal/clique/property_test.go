package clique

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"testing"
)

// Property tests against brute force: Bron–Kerbosch must return exactly the
// maximal cliques, and the sub-clique enumeration must return exactly the
// width-valid cliques, on random graphs.

func randomPropGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// bruteMaximalCliques enumerates maximal cliques by subset scan (n ≤ ~16).
func bruteMaximalCliques(g *Graph) []uint64 {
	var out []uint64
	total := uint64(1) << uint(g.N)
	for set := uint64(1); set < total; set++ {
		if !g.IsClique(set) {
			continue
		}
		maximal := true
		for v := 0; v < g.N; v++ {
			if set&(1<<uint(v)) != 0 {
				continue
			}
			if g.IsClique(set | 1<<uint(v)) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, set)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestMaximalCliquesExactOrderedSet strengthens the quick-check in
// clique_test.go: the output must be the exact maximal-clique set in sorted
// (deterministic) order, across a density sweep.
func TestMaximalCliquesExactOrderedSet(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		p := []float64{0.15, 0.4, 0.7, 0.95}[trial%4]
		g := randomPropGraph(rng, n, p)
		got := MaximalCliques(g)
		want := bruteMaximalCliques(g)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d p=%.2f): %d maximal cliques, want %d",
				trial, n, p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: clique list mismatch at %d: %b vs %b",
					trial, i, got[i], want[i])
			}
		}
		// Every reported clique is a clique and maximal.
		for _, c := range got {
			if !g.IsClique(c) {
				t.Fatalf("trial %d: %b is not a clique", trial, c)
			}
		}
	}
}

// bruteSubCliques enumerates every width-valid clique by subset scan.
func bruteSubCliques(g *Graph, spec SubCliqueSpec) map[uint64]int {
	widths := append([]int(nil), spec.Widths...)
	sort.Ints(widths)
	maxW := widths[len(widths)-1]
	exact := map[int]bool{}
	for _, w := range widths {
		exact[w] = true
	}
	out := map[uint64]int{}
	total := uint64(1) << uint(g.N)
	for set := uint64(1); set < total; set++ {
		if !g.IsClique(set) {
			continue
		}
		sum := 0
		for s := set; s != 0; {
			v := bits.TrailingZeros64(s)
			s &^= 1 << uint(v)
			sum += spec.Bits[v]
		}
		if sum > maxW {
			continue
		}
		if exact[sum] || spec.AllowIncomplete {
			out[set] = sum
		}
	}
	return out
}

func TestEnumerateSubCliquesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(11)
		g := randomPropGraph(rng, n, 0.3+0.5*rng.Float64())
		bitsOf := make([]int, n)
		for i := range bitsOf {
			bitsOf[i] = 1 + rng.Intn(4)
		}
		spec := SubCliqueSpec{
			Bits:            bitsOf,
			Widths:          []int{1, 2, 4, 8},
			AllowIncomplete: trial%2 == 0,
		}
		res, err := EnumerateSubCliques(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteSubCliques(g, spec)
		if len(res.Cliques) != len(want) {
			t.Fatalf("trial %d (n=%d incomplete=%v): %d cliques, want %d",
				trial, n, spec.AllowIncomplete, len(res.Cliques), len(want))
		}
		seen := map[uint64]bool{}
		prevMembers := 0
		for i, c := range res.Cliques {
			if seen[c] {
				t.Fatalf("trial %d: duplicate clique %b", trial, c)
			}
			seen[c] = true
			wantBits, ok := want[c]
			if !ok {
				t.Fatalf("trial %d: unexpected clique %b", trial, c)
			}
			if res.TotalBits[i] != wantBits {
				t.Fatalf("trial %d: clique %b bit total %d, want %d",
					trial, c, res.TotalBits[i], wantBits)
			}
			// Layered order: member counts never decrease.
			m := bits.OnesCount64(c)
			if m < prevMembers {
				t.Fatalf("trial %d: layering violated (%d members after %d)",
					trial, m, prevMembers)
			}
			prevMembers = m
		}
		if res.Truncated {
			t.Fatalf("trial %d: truncated without a cap", trial)
		}
	}
}

// TestEnumerateSubCliquesTruncationRandom checks the cap semantics on random
// graphs: never more than MaxCandidates results, and an un-truncated result
// is complete.
func TestEnumerateSubCliquesTruncationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(8)
		g := randomPropGraph(rng, n, 0.8)
		bitsOf := make([]int, n)
		for i := range bitsOf {
			bitsOf[i] = 1
		}
		spec := SubCliqueSpec{Bits: bitsOf, Widths: []int{1, 2, 4, 8}, MaxCandidates: 10}
		res, err := EnumerateSubCliques(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cliques) > spec.MaxCandidates {
			t.Fatalf("trial %d: cap ignored: %d > %d", trial, len(res.Cliques), spec.MaxCandidates)
		}
		full := bruteSubCliques(g, spec)
		if !res.Truncated && len(res.Cliques) != len(full) {
			t.Fatalf("trial %d: not marked truncated but incomplete (%d of %d)",
				trial, len(res.Cliques), len(full))
		}
	}
}

// FuzzEnumerateSubCliques decodes a byte string into a graph + bit widths
// and checks the enumeration invariants (clique-ness, valid totals, no
// duplicates) hold for arbitrary inputs. `go test` runs the seed corpus;
// `go test -fuzz=FuzzEnumerateSubCliques ./internal/clique` explores.
func FuzzEnumerateSubCliques(f *testing.F) {
	f.Add([]byte{5, 0xff, 0x0f, 1, 2, 3, 4, 1})
	f.Add([]byte{8, 0xaa, 0x55, 0x11, 0x99, 1, 1, 1, 1, 2, 2, 4, 8})
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]) % 13
		g := NewGraph(n)
		pos := 1
		nextByte := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		var bucket byte
		var have int
		nextBit := func() bool {
			if have == 0 {
				bucket = nextByte()
				have = 8
			}
			b := bucket&1 != 0
			bucket >>= 1
			have--
			return b
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if nextBit() {
					g.AddEdge(i, j)
				}
			}
		}
		bitsOf := make([]int, n)
		for i := range bitsOf {
			bitsOf[i] = 1 + int(nextByte())%8
		}
		spec := SubCliqueSpec{
			Bits:            bitsOf,
			Widths:          []int{1, 2, 4, 8},
			AllowIncomplete: nextBit(),
			MaxCandidates:   200,
		}
		res, err := EnumerateSubCliques(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		for i, c := range res.Cliques {
			if c == 0 || !g.IsClique(c) {
				t.Fatalf("invalid clique %b", c)
			}
			if seen[c] {
				t.Fatalf("duplicate clique %b", c)
			}
			seen[c] = true
			sum := 0
			for _, v := range Members(c) {
				sum += bitsOf[v]
			}
			if sum != res.TotalBits[i] {
				t.Fatalf("clique %b: reported bits %d, actual %d", c, res.TotalBits[i], sum)
			}
			if sum > 8 {
				t.Fatalf("clique %b: bit total %d exceeds max width", c, sum)
			}
			if !spec.AllowIncomplete && sum != 1 && sum != 2 && sum != 4 && sum != 8 {
				t.Fatalf("clique %b: invalid bit total %d", c, sum)
			}
		}
	})
}

func TestMembersMaskRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var nodes []int
		for v := 0; v < 64; v++ {
			if rng.Float64() < 0.2 {
				nodes = append(nodes, v)
			}
		}
		mask := MaskOf(nodes)
		got := Members(mask)
		if fmt.Sprint(got) != fmt.Sprint(nodes) {
			t.Fatalf("round trip failed: %v -> %b -> %v", nodes, mask, got)
		}
	}
}
