package clique

import (
	"math/rand"
	"testing"
)

func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// BenchmarkBronKerbosch30 measures maximal-clique enumeration at the
// paper's subgraph bound.
func BenchmarkBronKerbosch30(b *testing.B) {
	g := randomGraph(30, 0.5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalCliques(g)
	}
}

// BenchmarkSubCliques30 measures valid sub-clique enumeration against the
// {1,2,4,8} library on a 30-node subgraph of 1-bit registers.
func BenchmarkSubCliques30(b *testing.B) {
	g := randomGraph(30, 0.4, 4)
	bits := make([]int, 30)
	for i := range bits {
		bits[i] = 1
	}
	spec := SubCliqueSpec{Bits: bits, Widths: []int{1, 2, 4, 8}, MaxCandidates: 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EnumerateSubCliques(g, spec); err != nil {
			b.Fatal(err)
		}
	}
}
