package clique

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestMaximalCliquesParallelMatchesSequential sweeps random graphs across
// densities and worker counts: the parallel pivot-branch split must return
// exactly the sequential output.
func TestMaximalCliquesParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(24)
		p := []float64{0.1, 0.3, 0.6, 0.9}[trial%4]
		g := randomPropGraph(rng, n, p)
		want := MaximalCliques(g)
		for _, workers := range []int{1, 2, 3, 8} {
			got := MaximalCliquesParallel(g, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d p=%.1f workers=%d: parallel %v != sequential %v",
					n, p, workers, got, want)
			}
		}
	}
}

// subCliqueEqual compares two enumeration results field by field.
func subCliqueEqual(a, b *SubCliqueResult) bool {
	return reflect.DeepEqual(a.Cliques, b.Cliques) &&
		reflect.DeepEqual(a.TotalBits, b.TotalBits) &&
		a.Truncated == b.Truncated
}

// TestEnumerateSubCliquesParallelMatchesSequential is the core determinism
// property of the layered parallel enumeration: identical clique list, bit
// totals and Truncated flag at any worker count — with special attention to
// caps that cut mid-layer, where the per-branch budget + ordered merge must
// reproduce the sequential emission prefix exactly.
func TestEnumerateSubCliquesParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	widthSets := [][]int{{1, 2, 4, 8}, {2, 4}, {1, 3, 8}, {4}}
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(20)
		p := []float64{0.2, 0.5, 0.8, 1.0}[trial%4]
		g := randomPropGraph(rng, n, p)
		bits := make([]int, n)
		for i := range bits {
			bits[i] = 1 + rng.Intn(4)
		}
		spec := SubCliqueSpec{
			Bits:            bits,
			Widths:          widthSets[trial%len(widthSets)],
			AllowIncomplete: trial%2 == 0,
		}
		// Sweep caps including ones that truncate mid-layer; 0 = unlimited.
		for _, maxCands := range []int{0, 1, 3, 17, 100} {
			spec.MaxCandidates = maxCands
			want, wantErr := EnumerateSubCliques(g, spec)
			for _, workers := range []int{2, 5, 16} {
				got, gotErr := EnumerateSubCliquesParallel(g, spec, workers)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("trial=%d cap=%d workers=%d: err %v vs %v",
						trial, maxCands, workers, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if !subCliqueEqual(got, want) {
					t.Fatalf("trial=%d n=%d p=%.1f cap=%d workers=%d diverged:\npar: %v %v trunc=%v\nseq: %v %v trunc=%v",
						trial, n, p, maxCands, workers,
						got.Cliques, got.TotalBits, got.Truncated,
						want.Cliques, want.TotalBits, want.Truncated)
				}
			}
		}
	}
}

// TestEnumerateSubCliquesParallelErrors pins that invalid specs fail the
// same way on both paths.
func TestEnumerateSubCliquesParallelErrors(t *testing.T) {
	g := randomPropGraph(rand.New(rand.NewSource(1)), 6, 0.5)
	bad := []SubCliqueSpec{
		{Bits: []int{1, 1}, Widths: []int{2}},                 // length mismatch
		{Bits: []int{1, 1, 1, 1, 1, 1}, Widths: nil},          // no widths
		{Bits: []int{1, 1, 1, 1, 1, 0}, Widths: []int{2}},     // zero bits
		{Bits: []int{1, 1, 1, 1, 1, 1}, Widths: []int{0, 2}},  // zero width
		{Bits: []int{1, 1, 1, 1, 1, -2}, Widths: []int{2}},    // negative bits
		{Bits: []int{1, 1, 1, 1, 1, 1}, Widths: []int{-1, 4}}, // negative width
		{Bits: []int{1, 2, 3, 4, 5, 6, 7}, Widths: []int{4}},  // length mismatch
	}
	for i, spec := range bad {
		_, seqErr := EnumerateSubCliques(g, spec)
		_, parErr := EnumerateSubCliquesParallel(g, spec, 4)
		if seqErr == nil {
			t.Fatalf("case %d: expected sequential error", i)
		}
		if parErr == nil || parErr.Error() != seqErr.Error() {
			t.Fatalf("case %d: parallel error %v != sequential %v", i, parErr, seqErr)
		}
	}
}

// FuzzParallelSubCliqueMerge decodes a byte string into a graph, bit widths
// and a candidate cap, then requires the parallel branch merge to reproduce
// the sequential enumeration exactly — the corpus `make fuzz` explores for
// merge/truncation boundary bugs.
func FuzzParallelSubCliqueMerge(f *testing.F) {
	f.Add([]byte{6, 0xff, 0x0f, 1, 2, 1, 2, 1, 2, 5})
	f.Add([]byte{4, 0x3c, 1, 1, 1, 1, 0})
	f.Add([]byte{12, 0xaa, 0x55, 0xff, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		n := int(data[0]) % 18
		if n == 0 {
			t.Skip()
		}
		data = data[1:]
		// Adjacency from the next ceil(n*(n-1)/2 / 8) bytes (bit per pair).
		g := NewGraph(n)
		pair := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				byteIdx, bitIdx := pair/8, uint(pair%8)
				if byteIdx < len(data) && data[byteIdx]&(1<<bitIdx) != 0 {
					g.AddEdge(i, j)
				}
				pair++
			}
		}
		rest := (pair + 7) / 8
		if rest > len(data) {
			rest = len(data)
		}
		data = data[rest:]
		bits := make([]int, n)
		for i := range bits {
			bits[i] = 1
			if i < len(data) {
				bits[i] = 1 + int(data[i])%8
			}
		}
		maxCands := 0
		if n < len(data) {
			maxCands = int(data[n]) % 64
		}
		spec := SubCliqueSpec{
			Bits:            bits,
			Widths:          []int{1, 2, 4, 8},
			AllowIncomplete: n%2 == 0,
			MaxCandidates:   maxCands,
		}
		want, wantErr := EnumerateSubCliques(g, spec)
		for _, workers := range []int{2, 7} {
			got, gotErr := EnumerateSubCliquesParallel(g, spec, workers)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("workers=%d: err %v vs %v", workers, gotErr, wantErr)
			}
			if wantErr != nil {
				return
			}
			if !subCliqueEqual(got, want) {
				t.Fatalf("workers=%d: parallel diverged from sequential\npar: %v trunc=%v\nseq: %v trunc=%v",
					workers, got.Cliques, got.Truncated, want.Cliques, want.Truncated)
			}
		}
	})
}

// BenchmarkEnumerateSubCliquesParallel measures the top-branch split on a
// dense 30-node subgraph — the single-biggest-component critical path the
// shard scheduler cannot shorten alone.
func BenchmarkEnumerateSubCliquesParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomPropGraph(rng, 30, 0.85)
	bits := make([]int, 30)
	for i := range bits {
		bits[i] = 1 + rng.Intn(2)
	}
	spec := SubCliqueSpec{Bits: bits, Widths: []int{1, 2, 4, 8}, AllowIncomplete: true, MaxCandidates: 6000}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EnumerateSubCliquesParallel(g, spec, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
