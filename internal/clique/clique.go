// Package clique provides clique enumeration over small dense graphs (≤ 64
// nodes, bitmask adjacency): Bron–Kerbosch maximal-clique enumeration with
// pivoting, and the valid sub-clique enumeration of §3 — every clique whose
// total register bit count matches (or, with incomplete MBRs allowed, fits
// under) an available MBR library width.
//
// Subgraphs reach this package only after partitioning (§3 caps them at 30
// nodes), so the 64-node bitmask limit is never the binding constraint.
package clique

import (
	"fmt"
	"math/bits"
	"sort"
)

// MaxNodes is the largest graph this package accepts.
const MaxNodes = 64

// Graph is an undirected graph over nodes 0..N-1 with bitmask adjacency.
type Graph struct {
	N   int
	adj []uint64
}

// NewGraph returns an empty graph on n nodes. It panics when n exceeds
// MaxNodes.
func NewGraph(n int) *Graph {
	if n < 0 || n > MaxNodes {
		panic(fmt.Sprintf("clique: graph size %d out of range [0,%d]", n, MaxNodes))
	}
	return &Graph{N: n, adj: make([]uint64, n)}
}

// AddEdge inserts the undirected edge (u, v). Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u] |= 1 << uint(v)
	g.adj[v] |= 1 << uint(u)
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u]&(1<<uint(v)) != 0 }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return bits.OnesCount64(g.adj[u]) }

// Neighbors returns the adjacency bitmask of u.
func (g *Graph) Neighbors(u int) uint64 { return g.adj[u] }

// IsClique reports whether the node set (bitmask) is a clique.
func (g *Graph) IsClique(set uint64) bool {
	for s := set; s != 0; {
		u := bits.TrailingZeros64(s)
		s &^= 1 << uint(u)
		rest := set &^ (1 << uint(u))
		if rest&^g.adj[u] != 0 {
			return false
		}
	}
	return true
}

// Members expands a bitmask into a sorted node slice.
func Members(set uint64) []int {
	out := make([]int, 0, bits.OnesCount64(set))
	for s := set; s != 0; {
		u := bits.TrailingZeros64(s)
		s &^= 1 << uint(u)
		out = append(out, u)
	}
	return out
}

// MaskOf builds a bitmask from node indices.
func MaskOf(nodes []int) uint64 {
	var m uint64
	for _, n := range nodes {
		m |= 1 << uint(n)
	}
	return m
}

// MaximalCliques enumerates all maximal cliques using Bron–Kerbosch with
// Tomita pivoting, returned as bitmasks in deterministic order.
func MaximalCliques(g *Graph) []uint64 {
	var out []uint64
	all := uint64(0)
	if g.N > 0 {
		all = ^uint64(0) >> uint(64-g.N)
	}
	var bk func(r, p, x uint64)
	bk = func(r, p, x uint64) {
		if p == 0 && x == 0 {
			out = append(out, r)
			return
		}
		// Pivot: vertex of p∪x with most neighbours in p.
		pivot, best := -1, -1
		for s := p | x; s != 0; {
			u := bits.TrailingZeros64(s)
			s &^= 1 << uint(u)
			cnt := bits.OnesCount64(p & g.adj[u])
			if cnt > best {
				best, pivot = cnt, u
			}
		}
		cand := p &^ g.adj[pivot]
		for s := cand; s != 0; {
			v := bits.TrailingZeros64(s)
			s &^= 1 << uint(v)
			vb := uint64(1) << uint(v)
			bk(r|vb, p&g.adj[v], x&g.adj[v])
			p &^= vb
			x |= vb
		}
	}
	bk(0, all, 0)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubCliqueSpec configures valid sub-clique enumeration.
type SubCliqueSpec struct {
	// Bits[i] is the register bit count of node i (≥ 1).
	Bits []int
	// Widths are the MBR bit widths available in the library, ascending.
	Widths []int
	// AllowIncomplete admits cliques whose bit total is below some library
	// width (they map to the smallest width ≥ total, leaving D/Q pairs
	// unconnected).
	AllowIncomplete bool
	// MaxCandidates caps the enumeration (0 = unlimited). When hit, the
	// enumeration stops and Truncated is set on the result.
	MaxCandidates int
}

// SubCliqueResult is the output of EnumerateSubCliques.
type SubCliqueResult struct {
	// Cliques are the valid sub-cliques as bitmasks (singletons included),
	// in deterministic DFS order.
	Cliques []uint64
	// TotalBits[i] is the register bit total of Cliques[i].
	TotalBits []int
	// Truncated reports whether MaxCandidates stopped the enumeration.
	Truncated bool
}

// EnumerateSubCliques lists every clique of g (not just maximal ones) whose
// bit total is valid for the spec: exactly equal to a library width, or —
// with AllowIncomplete — bounded by the largest width. Cliques are produced
// in layers of increasing member count (all singletons, then all pairs,
// then triples, ...), each exactly once via ordered DFS extension — the
// dynamic-programming style enumeration of §3. The layering matters under
// MaxCandidates truncation: a lexicographic DFS would exhaust the budget
// inside the first nodes' subtrees and leave later registers with no merge
// candidates at all, whereas layered truncation degrades by losing only the
// largest groupings.
func EnumerateSubCliques(g *Graph, spec SubCliqueSpec) (*SubCliqueResult, error) {
	if len(spec.Bits) != g.N {
		return nil, fmt.Errorf("clique: Bits length %d != graph size %d", len(spec.Bits), g.N)
	}
	if len(spec.Widths) == 0 {
		return nil, fmt.Errorf("clique: no library widths")
	}
	widths := append([]int(nil), spec.Widths...)
	sort.Ints(widths)
	maxW := widths[len(widths)-1]
	widthOK := make([]bool, maxW+1)
	for _, w := range widths {
		if w <= 0 {
			return nil, fmt.Errorf("clique: non-positive width %d", w)
		}
		widthOK[w] = true
	}
	for i, b := range spec.Bits {
		if b <= 0 {
			return nil, fmt.Errorf("clique: node %d has non-positive bits %d", i, b)
		}
	}

	res := &SubCliqueResult{}
	valid := func(total int) bool {
		if total > maxW {
			return false
		}
		if widthOK[total] {
			return true
		}
		return spec.AllowIncomplete // some width ≥ total exists since total ≤ maxW
	}
	emit := func(set uint64, total int) bool {
		res.Cliques = append(res.Cliques, set)
		res.TotalBits = append(res.TotalBits, total)
		if spec.MaxCandidates > 0 && len(res.Cliques) >= spec.MaxCandidates {
			res.Truncated = true
			return false
		}
		return true
	}

	all := uint64(0)
	if g.N > 0 {
		all = ^uint64(0) >> uint(64-g.N)
	}
	// dfs enumerates cliques of exactly `want` members extending set.
	var dfs func(set uint64, size, total int, cand uint64, want int) bool
	dfs = func(set uint64, size, total int, cand uint64, want int) bool {
		for s := cand; s != 0; {
			v := bits.TrailingZeros64(s)
			s &^= 1 << uint(v)
			nb := total + spec.Bits[v]
			if nb > maxW {
				continue // this vertex is too wide here; another may fit
			}
			nset := set | 1<<uint(v)
			if size+1 == want {
				if valid(nb) && !emit(nset, nb) {
					return false
				}
				continue
			}
			higher := ^uint64(0) << uint(v+1)
			if !dfs(nset, size+1, nb, cand&g.adj[v]&higher, want) {
				return false
			}
		}
		return true
	}
	// Layer by member count; every member has ≥ 1 bit, so no clique can
	// have more members than maxW bits.
	for want := 1; want <= maxW && want <= g.N; want++ {
		if !dfs(0, 0, 0, all, want) {
			break
		}
	}
	return res, nil
}
