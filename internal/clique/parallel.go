package clique

import (
	"math/bits"
	"sort"
	"sync"
)

// Parallel clique enumeration. Both entry points split the *top-level*
// branches of their search trees across a worker pool and merge the branch
// outputs deterministically, so the result is byte-identical to the
// sequential enumeration at any worker count:
//
//   - MaximalCliquesParallel splits the pivot branches of the outermost
//     Bron–Kerbosch call. The branch (r,p,x) tuples are precomputed
//     sequentially (they depend on the processing order of earlier
//     branches), each branch recurses independently, and the merge is
//     append + the same final sort the sequential path applies.
//
//   - EnumerateSubCliquesParallel splits each layer's root vertices. The
//     layered DFS roots every clique at its smallest vertex and emits
//     branches in ascending root order, so concatenating per-branch outputs
//     in root order reproduces the sequential emission order exactly —
//     including where a MaxCandidates truncation cuts it.
//
// Subgraphs reaching these functions are small (the §3 partition bound caps
// them at ~30 nodes), but dense ones hide exponential work behind that
// bound; splitting the top level is what stops the single biggest subgraph
// from serializing a composition pass's tail.

// MaximalCliquesParallel is MaximalCliques with the top-level pivot
// branches fanned out across up to `workers` goroutines. The returned
// slice is identical to MaximalCliques(g) for any worker count.
func MaximalCliquesParallel(g *Graph, workers int) []uint64 {
	all := uint64(0)
	if g.N > 0 {
		all = ^uint64(0) >> uint(64-g.N)
	}
	branches := topLevelBranches(g, all)
	if workers <= 1 || len(branches) < 2 {
		return MaximalCliques(g)
	}
	if workers > len(branches) {
		workers = len(branches)
	}
	outs := make([][]uint64, len(branches))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range next {
				b := branches[bi]
				outs[bi] = bkCollect(g, b.r, b.p, b.x)
			}
		}()
	}
	for i := range branches {
		next <- i
	}
	close(next)
	wg.Wait()
	var out []uint64
	for _, o := range outs {
		out = append(out, o...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bkBranch is one top-level Bron–Kerbosch recursion, with the candidate and
// exclusion sets as the sequential loop would have them when reaching it.
type bkBranch struct{ r, p, x uint64 }

// topLevelBranches replays the outermost loop of the pivoted Bron–Kerbosch
// without recursing: it picks the same pivot and walks the same candidate
// vertices, recording each recursion's (r,p,x) arguments.
func topLevelBranches(g *Graph, all uint64) []bkBranch {
	if all == 0 {
		return nil
	}
	p, x := all, uint64(0)
	pivot, best := -1, -1
	for s := p; s != 0; {
		u := bits.TrailingZeros64(s)
		s &^= 1 << uint(u)
		cnt := bits.OnesCount64(p & g.adj[u])
		if cnt > best {
			best, pivot = cnt, u
		}
	}
	var out []bkBranch
	for s := p &^ g.adj[pivot]; s != 0; {
		v := bits.TrailingZeros64(s)
		s &^= 1 << uint(v)
		vb := uint64(1) << uint(v)
		out = append(out, bkBranch{r: vb, p: p & g.adj[v], x: x & g.adj[v]})
		p &^= vb
		x |= vb
	}
	return out
}

// bkCollect runs the sequential pivoted Bron–Kerbosch below one branch.
func bkCollect(g *Graph, r, p, x uint64) []uint64 {
	var out []uint64
	var bk func(r, p, x uint64)
	bk = func(r, p, x uint64) {
		if p == 0 && x == 0 {
			out = append(out, r)
			return
		}
		pivot, best := -1, -1
		for s := p | x; s != 0; {
			u := bits.TrailingZeros64(s)
			s &^= 1 << uint(u)
			cnt := bits.OnesCount64(p & g.adj[u])
			if cnt > best {
				best, pivot = cnt, u
			}
		}
		cand := p &^ g.adj[pivot]
		for s := cand; s != 0; {
			v := bits.TrailingZeros64(s)
			s &^= 1 << uint(v)
			vb := uint64(1) << uint(v)
			bk(r|vb, p&g.adj[v], x&g.adj[v])
			p &^= vb
			x |= vb
		}
	}
	bk(r, p, x)
	return out
}

// branchOut is one root vertex's share of a layer: the cliques of the
// target member count whose smallest vertex is that root, in DFS order.
type branchOut struct {
	cliques []uint64
	totals  []int
}

// EnumerateSubCliquesParallel is EnumerateSubCliques with each layer's root
// branches fanned out across up to `workers` goroutines. The result —
// clique list, bit totals and the Truncated flag — is byte-identical to the
// sequential enumeration for any worker count.
//
// Determinism under truncation: the sequential enumeration stops at the
// MaxCandidates-th emission, which cuts a prefix of the (layer, root,
// DFS-within-branch) emission order. Each parallel branch enumerates at
// most the layer's remaining budget (no sequential prefix can contain more
// than that from a single branch), the merge concatenates branches in root
// order, and the concatenation is cut at the same budget — reproducing the
// sequential prefix exactly. The bounded over-enumeration (≤ roots ×
// remaining emissions on the layer that hits the cap) is the price of
// keeping branches independent.
func EnumerateSubCliquesParallel(g *Graph, spec SubCliqueSpec, workers int) (*SubCliqueResult, error) {
	if workers <= 1 || g.N < 2 {
		return EnumerateSubCliques(g, spec)
	}
	// Re-validate exactly like the sequential path, so error behavior and
	// width handling stay shared.
	if len(spec.Bits) != g.N {
		return EnumerateSubCliques(g, spec) // surfaces the same error
	}
	for _, b := range spec.Bits {
		if b <= 0 {
			return EnumerateSubCliques(g, spec)
		}
	}
	if len(spec.Widths) == 0 {
		return EnumerateSubCliques(g, spec)
	}
	widths := append([]int(nil), spec.Widths...)
	sort.Ints(widths)
	maxW := widths[len(widths)-1]
	widthOK := make([]bool, maxW+1)
	for _, w := range widths {
		if w <= 0 {
			return EnumerateSubCliques(g, spec)
		}
		widthOK[w] = true
	}
	valid := func(total int) bool {
		if total > maxW {
			return false
		}
		if widthOK[total] {
			return true
		}
		return spec.AllowIncomplete
	}

	res := &SubCliqueResult{}
	capN := spec.MaxCandidates
	remaining := func() int {
		if capN <= 0 {
			return -1 // unlimited
		}
		return capN - len(res.Cliques)
	}

	all := uint64(0)
	if g.N > 0 {
		all = ^uint64(0) >> uint(64-g.N)
	}
	for want := 1; want <= maxW && want <= g.N; want++ {
		budget := remaining()
		if budget == 0 {
			break
		}
		outs := make([]branchOut, g.N)
		if want == 1 || g.N < 4 {
			// Tiny layers: enumerate the branches on the caller's goroutine.
			for v := 0; v < g.N; v++ {
				outs[v] = enumBranch(g, spec.Bits, valid, maxW, all, v, want, budget)
			}
		} else {
			w := workers
			if w > g.N {
				w = g.N
			}
			var wg sync.WaitGroup
			next := make(chan int)
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for v := range next {
						outs[v] = enumBranch(g, spec.Bits, valid, maxW, all, v, want, budget)
					}
				}()
			}
			for v := 0; v < g.N; v++ {
				next <- v
			}
			close(next)
			wg.Wait()
		}
		// Deterministic merge: branch outputs in root order, cut at the
		// layer budget — the sequential emission prefix.
		truncated := false
		for _, o := range outs {
			for i := range o.cliques {
				if capN > 0 && len(res.Cliques) >= capN {
					truncated = true
					break
				}
				res.Cliques = append(res.Cliques, o.cliques[i])
				res.TotalBits = append(res.TotalBits, o.totals[i])
				if capN > 0 && len(res.Cliques) >= capN {
					truncated = true
				}
			}
			if truncated {
				break
			}
		}
		if truncated {
			res.Truncated = true
			break
		}
	}
	return res, nil
}

// enumBranch enumerates the cliques of exactly `want` members rooted at
// vertex v (v is the smallest member), in the sequential DFS order, capped
// at `budget` emissions (budget < 0 = unlimited).
func enumBranch(
	g *Graph,
	bitsOf []int,
	valid func(int) bool,
	maxW int,
	all uint64,
	v, want, budget int,
) branchOut {
	var out branchOut
	nb := bitsOf[v]
	if nb > maxW {
		return out
	}
	vb := uint64(1) << uint(v)
	if want == 1 {
		if valid(nb) {
			out.cliques = append(out.cliques, vb)
			out.totals = append(out.totals, nb)
		}
		return out
	}
	emit := func(set uint64, total int) bool {
		out.cliques = append(out.cliques, set)
		out.totals = append(out.totals, total)
		return budget < 0 || len(out.cliques) < budget
	}
	higher := ^uint64(0) << uint(v+1)
	var dfs func(set uint64, size, total int, cand uint64) bool
	dfs = func(set uint64, size, total int, cand uint64) bool {
		for s := cand; s != 0; {
			u := bits.TrailingZeros64(s)
			s &^= 1 << uint(u)
			nt := total + bitsOf[u]
			if nt > maxW {
				continue
			}
			nset := set | 1<<uint(u)
			if size+1 == want {
				if valid(nt) && !emit(nset, nt) {
					return false
				}
				continue
			}
			uh := ^uint64(0) << uint(u+1)
			if !dfs(nset, size+1, nt, cand&g.adj[u]&uh) {
				return false
			}
		}
		return true
	}
	dfs(vb, 1, nb, all&g.adj[v]&higher)
	return out
}
