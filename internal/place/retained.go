package place

import (
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Legalizer retains the obstacle occupancy between incremental
// legalization rounds. LegalizeIncremental rebuilds its row occupancy from
// every instance in the design on every call — an O(design) scan that
// dwarfs the actual placement work when the moving set is small and
// recurring, as in the retained clock-tree engine's per-update
// re-legalization. A Legalizer pays that scan once, then keeps the
// occupancy in sync from the edit log (Sync) and answers each round in
// time proportional to the edits and the moving set.
//
// Exactness: the occupancy is the set union of the obstacle rects, which
// is order-independent, and Legalize funnels through the same
// legalizeInto as the batch path — so for the same design state,
// Legalize(insts) and LegalizeIncremental(d, insts) move every instance
// to the same site. The cts oracle tests exercise this equivalence under
// churn.
type Legalizer struct {
	d  *netlist.Design
	rs *rowSpace
	// blocked records the rect each obstacle currently occupies in rs, so
	// Sync can give back exactly what an edited instance contributed.
	blocked map[netlist.InstID]geom.Rect
}

// NewLegalizer builds the occupancy from the design's current state.
func NewLegalizer(d *netlist.Design) *Legalizer {
	l := &Legalizer{d: d}
	l.Rebuild()
	return l
}

// obstacle mirrors LegalizeIncremental's obstacle predicate: zero-area
// instances (ports) never block, and clock buffers yield to logic (see
// LegalizeIncremental).
func obstacle(in *netlist.Inst) bool {
	return in != nil && in.Area() > 0 && in.Kind != netlist.KindClockBuf
}

// Rebuild rebuilds the occupancy from scratch — the fallback when the
// edit record since the last Sync is incomplete.
func (l *Legalizer) Rebuild() {
	rs := newRowSpace(l.d)
	rs.raw = true
	l.rs = rs
	l.blocked = make(map[netlist.InstID]geom.Rect, len(l.blocked))
	l.d.Insts(func(in *netlist.Inst) {
		if obstacle(in) {
			b := in.Bounds()
			rs.block(b)
			l.blocked[in.ID] = b
		}
	})
}

// Sync folds the given edited instances (moved, resized, added or
// removed) into the occupancy. Callers obtain the list from the design's
// touched record since their last Sync; an incomplete record requires
// Rebuild instead.
func (l *Legalizer) Sync(touched []netlist.InstID) {
	for _, id := range touched {
		if b, ok := l.blocked[id]; ok {
			l.rs.unblock(b)
			delete(l.blocked, id)
		}
		if in := l.d.Inst(id); obstacle(in) {
			b := in.Bounds()
			l.rs.block(b)
			l.blocked[in.ID] = b
		}
	}
}

// Legalize places the given instances exactly as LegalizeIncremental
// would on the current design state. The instances' spans are withdrawn
// for the round and settled afterwards, so movers never block themselves
// and obstacle-eligible movers re-enter the occupancy at their final
// sites.
func (l *Legalizer) Legalize(insts []*netlist.Inst) *Result {
	for _, in := range insts {
		if b, ok := l.blocked[in.ID]; ok {
			l.rs.unblock(b)
			delete(l.blocked, in.ID)
		}
	}
	res := legalizeInto(l.d, l.rs, insts)
	failed := make(map[netlist.InstID]bool, len(res.Failed))
	for _, in := range res.Failed {
		failed[in.ID] = true
	}
	// placeOne blocked each placed mover so later movers saw it; withdraw
	// those temporary spans, then settle the obstacle-eligible movers.
	for _, in := range insts {
		if !failed[in.ID] {
			l.rs.unblock(in.Bounds())
		}
	}
	for _, in := range insts {
		if obstacle(l.d.Inst(in.ID)) {
			b := in.Bounds()
			l.rs.block(b)
			l.blocked[in.ID] = b
		}
	}
	return res
}
