// Package place provides row-based placement legalization and density
// analysis: a Tetris-style greedy legalizer (full and incremental), legality
// checking, and displacement metrics. MBR composition calls the incremental
// legalizer after each LP-placed MBR to resolve overlaps with the
// surrounding cells — the paper's weights (§3.2) are designed to make
// exactly this step cheap.
package place

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Violation describes one legality problem.
type Violation struct {
	Inst *netlist.Inst
	Kind string // "overlap", "off-row", "off-site", "outside-core"
	With *netlist.Inst
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s: %s", v.Kind, v.Inst.Name)
	if v.With != nil {
		s += " with " + v.With.Name
	}
	return s
}

// movable reports whether legalization may reposition the instance. Ports
// and fixed cells stay; zero-area instances are ignored entirely.
func movable(in *netlist.Inst) bool {
	return !in.Fixed && in.Kind != netlist.KindPort && in.Area() > 0
}

// CheckLegal returns all legality violations of the current placement:
// cells outside the core, corners off the row/site grid, and pairwise
// overlaps. Zero-area instances (ports) are ignored.
func CheckLegal(d *netlist.Design) []Violation {
	var out []Violation
	var cells []*netlist.Inst
	d.Insts(func(in *netlist.Inst) {
		if in.Area() == 0 {
			return
		}
		cells = append(cells, in)
		b := in.Bounds()
		if !d.Core.ContainsRect(b) {
			out = append(out, Violation{Inst: in, Kind: "outside-core"})
		}
		if (in.Pos.Y-d.Core.Lo.Y)%d.RowH != 0 {
			out = append(out, Violation{Inst: in, Kind: "off-row"})
		}
		if (in.Pos.X-d.Core.Lo.X)%d.SiteW != 0 {
			out = append(out, Violation{Inst: in, Kind: "off-site"})
		}
	})
	// Sweep in (y, x) order: for a cell i, only cells whose Lo.Y is below
	// i's Hi.Y can overlap it, so the inner scan stops there. Within a row,
	// the x sort keeps the scan short.
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Pos.Y != cells[j].Pos.Y {
			return cells[i].Pos.Y < cells[j].Pos.Y
		}
		return cells[i].Pos.X < cells[j].Pos.X
	})
	for i := 0; i < len(cells); i++ {
		bi := cells[i].Bounds()
		for j := i + 1; j < len(cells); j++ {
			bj := cells[j].Bounds()
			if bj.Lo.Y >= bi.Hi.Y {
				break
			}
			if bj.Lo.Y == bi.Lo.Y && bj.Lo.X >= bi.Hi.X {
				continue
			}
			if bi.OverlapsStrict(bj) {
				out = append(out, Violation{Inst: cells[i], Kind: "overlap", With: cells[j]})
			}
		}
	}
	return out
}

// rowSpace tracks free intervals per row.
type rowSpace struct {
	core  geom.Rect
	rowH  int64
	siteW int64
	// occ[r] is a sorted list of occupied [lo,hi) x-intervals in row r.
	occ [][]span
	// raw keeps every blocked span individually (sorted by lo, overlaps
	// allowed) so unblock can remove one contributor exactly; merged mode
	// coalesces neighbours and cannot give a span back. Free-gap queries
	// see the same union either way — bestInRow's scan tolerates overlaps
	// — so the two modes place identically.
	raw bool
}

type span struct{ lo, hi int64 }

func newRowSpace(d *netlist.Design) *rowSpace {
	nRows := int((d.Core.H()) / d.RowH)
	if nRows < 1 {
		nRows = 1
	}
	return &rowSpace{core: d.Core, rowH: d.RowH, siteW: d.SiteW, occ: make([][]span, nRows)}
}

func (rs *rowSpace) rowOf(y int64) int {
	return int((y - rs.core.Lo.Y) / rs.rowH)
}

func (rs *rowSpace) rowY(r int) int64 { return rs.core.Lo.Y + int64(r)*rs.rowH }

// block marks [lo,hi) occupied in every row the rect touches.
func (rs *rowSpace) block(b geom.Rect) {
	r0 := rs.rowOf(b.Lo.Y)
	r1 := rs.rowOf(b.Hi.Y - 1)
	for r := r0; r <= r1; r++ {
		if r < 0 || r >= len(rs.occ) {
			continue
		}
		if rs.raw {
			rs.occ[r] = insertRaw(rs.occ[r], span{b.Lo.X, b.Hi.X})
		} else {
			rs.occ[r] = insertSpan(rs.occ[r], span{b.Lo.X, b.Hi.X})
		}
	}
}

// unblock removes one exact copy of the rect's span from every row it
// touches. Raw mode only.
func (rs *rowSpace) unblock(b geom.Rect) {
	if !rs.raw {
		panic("place: unblock on a merged rowSpace")
	}
	r0 := rs.rowOf(b.Lo.Y)
	r1 := rs.rowOf(b.Hi.Y - 1)
	for r := r0; r <= r1; r++ {
		if r < 0 || r >= len(rs.occ) {
			continue
		}
		rs.occ[r] = removeRaw(rs.occ[r], span{b.Lo.X, b.Hi.X})
	}
}

func insertRaw(spans []span, s span) []span {
	idx := sort.Search(len(spans), func(i int) bool { return spans[i].lo >= s.lo })
	spans = append(spans, span{})
	copy(spans[idx+1:], spans[idx:])
	spans[idx] = s
	return spans
}

func removeRaw(spans []span, s span) []span {
	idx := sort.Search(len(spans), func(i int) bool { return spans[i].lo >= s.lo })
	for i := idx; i < len(spans) && spans[i].lo == s.lo; i++ {
		if spans[i].hi == s.hi {
			return append(spans[:i], spans[i+1:]...)
		}
	}
	// The caller's bookkeeping pairs every unblock with an earlier block;
	// a miss means the retained occupancy has drifted from the design.
	panic("place: unblock of a span that was never blocked")
}

func insertSpan(spans []span, s span) []span {
	idx := sort.Search(len(spans), func(i int) bool { return spans[i].lo >= s.lo })
	spans = append(spans, span{})
	copy(spans[idx+1:], spans[idx:])
	spans[idx] = s
	// Merge overlapping neighbours.
	out := spans[:0]
	for _, sp := range spans {
		if n := len(out); n > 0 && sp.lo <= out[n-1].hi {
			if sp.hi > out[n-1].hi {
				out[n-1].hi = sp.hi
			}
		} else {
			out = append(out, sp)
		}
	}
	return out
}

// bestInRow finds the x for a width-w cell in row r closest to targetX.
// Returns ok=false when the row has no gap wide enough.
func (rs *rowSpace) bestInRow(r int, targetX, w int64) (int64, bool) {
	if r < 0 || r >= len(rs.occ) {
		return 0, false
	}
	lo, hi := rs.core.Lo.X, rs.core.Hi.X
	best, found := int64(0), false
	tryGap := func(glo, ghi int64) {
		if ghi-glo < w {
			return
		}
		x := clamp(targetX, glo, ghi-w)
		x = snap(x, rs.core.Lo.X, rs.siteW)
		if x < glo {
			x += rs.siteW
		}
		if x+w > ghi {
			return
		}
		if !found || abs64(x-targetX) < abs64(best-targetX) {
			best, found = x, true
		}
	}
	prev := lo
	for _, sp := range rs.occ[r] {
		if sp.lo > prev {
			tryGap(prev, sp.lo)
		}
		if sp.hi > prev {
			prev = sp.hi
		}
	}
	if hi > prev {
		tryGap(prev, hi)
	}
	return best, found
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func snap(x, origin, pitch int64) int64 {
	return origin + ((x-origin)/pitch)*pitch
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Result summarizes a legalization run.
type Result struct {
	Moved             int
	TotalDisplacement int64
	MaxDisplacement   int64
	Failed            []*netlist.Inst
}

// Legalize snaps every movable instance to a legal, non-overlapping
// row/site position near its current location (Tetris-style: cells are
// processed in x order; each takes the nearest free slot). Fixed cells and
// ports are obstacles. Returns displacement statistics; instances that
// could not be placed (core full) are listed in Failed.
func Legalize(d *netlist.Design) *Result {
	var fixed, mov []*netlist.Inst
	d.Insts(func(in *netlist.Inst) {
		if in.Area() == 0 {
			return
		}
		if movable(in) {
			mov = append(mov, in)
		} else {
			fixed = append(fixed, in)
		}
	})
	rs := newRowSpace(d)
	for _, in := range fixed {
		rs.block(in.Bounds())
	}
	// Registers go first — they are larger and have higher placement
	// priority (§3.2 makes the same observation); combinational cells fill
	// in around them.
	sort.Slice(mov, func(i, j int) bool {
		ri, rj := mov[i].Kind == netlist.KindReg, mov[j].Kind == netlist.KindReg
		if ri != rj {
			return ri
		}
		if mov[i].Pos.X != mov[j].Pos.X {
			return mov[i].Pos.X < mov[j].Pos.X
		}
		return mov[i].Pos.Y < mov[j].Pos.Y
	})
	res := &Result{}
	for _, in := range mov {
		placeOne(d, rs, in, res)
	}
	return res
}

// LegalizeIncremental places only the given instances, treating every other
// placed instance as an obstacle. This is the post-composition step: the
// freshly created MBRs take the space freed by their constituent registers.
//
// Clock buffers are never obstacles (unless they are in the moving set
// themselves): the retained CTS engine re-legalizes the whole buffer set
// after every design change, with data cells as obstacles — buffers yield
// to logic, exactly as in a build-tree-last batch flow. Treating a
// soon-to-move buffer as a blockage here would doubly constrain the data
// cells for no benefit.
func LegalizeIncremental(d *netlist.Design, insts []*netlist.Inst) *Result {
	if len(insts) == 0 {
		// Nothing to place: skip the O(design) occupancy build. A converged
		// composition pass commits no MBRs and must cost no legalization.
		return &Result{}
	}
	moving := map[netlist.InstID]bool{}
	for _, in := range insts {
		moving[in.ID] = true
	}
	rs := newRowSpace(d)
	d.Insts(func(in *netlist.Inst) {
		if in.Area() == 0 || moving[in.ID] || in.Kind == netlist.KindClockBuf {
			return
		}
		rs.block(in.Bounds())
	})
	return legalizeInto(d, rs, insts)
}

// legalizeInto places insts into the prepared occupancy in area-descending
// order. Both the batch path and the retained Legalizer funnel through it
// — same input sequence, same sort, same probes — so their outcomes are
// identical for the same occupancy content.
func legalizeInto(d *netlist.Design, rs *rowSpace, insts []*netlist.Inst) *Result {
	res := &Result{}
	ordered := append([]*netlist.Inst(nil), insts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Area() > ordered[j].Area() })
	for _, in := range ordered {
		placeOne(d, rs, in, res)
	}
	return res
}

func placeOne(d *netlist.Design, rs *rowSpace, in *netlist.Inst, res *Result) {
	w := in.Width()
	target := in.Pos
	homeRow := rs.rowOf(clamp(target.Y, rs.core.Lo.Y, rs.core.Hi.Y-rs.rowH))
	bestCost := int64(-1)
	var bestPos geom.Point
	for dr := 0; dr < len(rs.occ); dr++ {
		for _, r := range []int{homeRow - dr, homeRow + dr} {
			if r < 0 || r >= len(rs.occ) || (dr == 0 && r != homeRow) {
				continue
			}
			rowCost := abs64(rs.rowY(r) - target.Y)
			if bestCost >= 0 && rowCost > bestCost {
				continue
			}
			if x, ok := rs.bestInRow(r, target.X, w); ok {
				cost := rowCost + abs64(x-target.X)
				if bestCost < 0 || cost < bestCost {
					bestCost = cost
					bestPos = geom.Point{X: x, Y: rs.rowY(r)}
				}
			}
			if dr == 0 {
				break
			}
		}
		// Early exit: if we already found a slot and the next row band is
		// farther than the best total cost, stop.
		if bestCost >= 0 && int64(dr+1)*rs.rowH > bestCost {
			break
		}
	}
	if bestCost < 0 {
		res.Failed = append(res.Failed, in)
		return
	}
	disp := abs64(bestPos.X-in.Pos.X) + abs64(bestPos.Y-in.Pos.Y)
	if disp > 0 {
		res.Moved++
	}
	res.TotalDisplacement += disp
	if disp > res.MaxDisplacement {
		res.MaxDisplacement = disp
	}
	d.MoveInst(in, bestPos)
	rs.block(in.Bounds())
}

// DensityMap divides the core into a bins×bins grid and returns the cell
// area utilization of each bin (row-major).
func DensityMap(d *netlist.Design, bins int) []float64 {
	out := make([]float64, bins*bins)
	bw := float64(d.Core.W()) / float64(bins)
	bh := float64(d.Core.H()) / float64(bins)
	if bw <= 0 || bh <= 0 {
		return out
	}
	d.Insts(func(in *netlist.Inst) {
		if in.Area() == 0 {
			return
		}
		b := in.Bounds()
		x0 := int(float64(b.Lo.X-d.Core.Lo.X) / bw)
		x1 := int(float64(b.Hi.X-d.Core.Lo.X-1) / bw)
		y0 := int(float64(b.Lo.Y-d.Core.Lo.Y) / bh)
		y1 := int(float64(b.Hi.Y-d.Core.Lo.Y-1) / bh)
		for y := max(0, y0); y <= min(bins-1, y1); y++ {
			for x := max(0, x0); x <= min(bins-1, x1); x++ {
				binRect := geom.Rect{
					Lo: geom.Point{X: d.Core.Lo.X + int64(float64(x)*bw), Y: d.Core.Lo.Y + int64(float64(y)*bh)},
					Hi: geom.Point{X: d.Core.Lo.X + int64(float64(x+1)*bw), Y: d.Core.Lo.Y + int64(float64(y+1)*bh)},
				}
				if ov, ok := b.Intersect(binRect); ok {
					out[y*bins+x] += float64(ov.Area()) / (bw * bh)
				}
			}
		}
	})
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
