package place

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

var testLib = lib.MustGenerateDefault()

func ffClass() lib.FuncClass {
	return lib.FuncClass{Kind: lib.FlipFlop}
}

func newDesign(w, h int64) *netlist.Design {
	d := netlist.NewDesign("p", geom.RectWH(0, 0, w, h), testLib)
	d.SiteW = 100
	d.RowH = 1200
	return d
}

func addReg(t testing.TB, d *netlist.Design, name string, bits int, x, y int64) *netlist.Inst {
	t.Helper()
	cs := testLib.CellsOfWidth(ffClass(), bits)
	in, err := d.AddRegister(name, cs[0], geom.Point{X: x, Y: y})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCheckLegalDetectsProblems(t *testing.T) {
	d := newDesign(100000, 24000)
	// Two overlapping registers on an off-grid position.
	a := addReg(t, d, "a", 1, 150, 600)
	b := addReg(t, d, "b", 1, 200, 600)
	_ = a
	_ = b
	v := CheckLegal(d)
	kinds := map[string]int{}
	for _, x := range v {
		kinds[x.Kind]++
	}
	if kinds["overlap"] == 0 {
		t.Error("overlap not detected")
	}
	if kinds["off-row"] == 0 {
		t.Error("off-row not detected")
	}
	if kinds["off-site"] == 0 {
		t.Error("off-site not detected")
	}
}

func TestCheckLegalOutsideCore(t *testing.T) {
	d := newDesign(10000, 12000)
	addReg(t, d, "a", 8, 9000, 0) // 8-bit cell wider than remaining space
	v := CheckLegal(d)
	found := false
	for _, x := range v {
		if x.Kind == "outside-core" {
			found = true
		}
	}
	if !found {
		t.Fatal("outside-core not detected")
	}
}

func TestLegalizeResolvesOverlaps(t *testing.T) {
	d := newDesign(200000, 48000)
	// Pile 40 registers on the same spot.
	for i := 0; i < 40; i++ {
		addReg(t, d, fmt.Sprintf("r%d", i), []int{1, 2, 4, 8}[i%4], 50000, 12000)
	}
	res := Legalize(d)
	if len(res.Failed) != 0 {
		t.Fatalf("failed to place %d cells", len(res.Failed))
	}
	if v := CheckLegal(d); len(v) != 0 {
		t.Fatalf("violations after legalize: %v", v[0])
	}
	if res.Moved == 0 {
		t.Fatal("expected cells to move")
	}
}

func TestLegalizeKeepsLegalCellsStill(t *testing.T) {
	d := newDesign(200000, 48000)
	// Already-legal cells spread out.
	for i := 0; i < 10; i++ {
		addReg(t, d, fmt.Sprintf("r%d", i), 1, int64(i)*5000, 12000)
	}
	res := Legalize(d)
	if res.TotalDisplacement != 0 {
		t.Fatalf("legal placement should not move, displacement=%d", res.TotalDisplacement)
	}
}

func TestLegalizeRespectsFixed(t *testing.T) {
	d := newDesign(200000, 24000)
	f := addReg(t, d, "fixed", 8, 50000, 0)
	f.Fixed = true
	// A movable register right on top of it.
	m := addReg(t, d, "m", 1, 50000, 0)
	res := Legalize(d)
	if len(res.Failed) != 0 {
		t.Fatal("placement failed")
	}
	if f.Pos != (geom.Point{X: 50000, Y: 0}) {
		t.Fatal("fixed cell moved")
	}
	if m.Bounds().OverlapsStrict(f.Bounds()) {
		t.Fatal("overlap with fixed cell remains")
	}
}

func TestLegalizeIncremental(t *testing.T) {
	d := newDesign(200000, 48000)
	var others []*netlist.Inst
	for i := 0; i < 20; i++ {
		others = append(others, addReg(t, d, fmt.Sprintf("r%d", i), 2, int64(i%5)*10000, int64(i/5)*1200))
	}
	Legalize(d)
	before := map[string]geom.Point{}
	for _, in := range others {
		before[in.Name] = in.Pos
	}
	// Drop a new MBR in the middle of the others.
	mbr := addReg(t, d, "mbr", 8, 10000, 1200)
	res := LegalizeIncremental(d, []*netlist.Inst{mbr})
	if len(res.Failed) != 0 {
		t.Fatal("incremental placement failed")
	}
	for _, in := range others {
		if in.Pos != before[in.Name] {
			t.Fatalf("incremental legalization moved unrelated cell %s", in.Name)
		}
	}
	if v := CheckLegal(d); len(v) != 0 {
		t.Fatalf("violations after incremental: %v", v[0])
	}
}

func TestLegalizeFullCore(t *testing.T) {
	// A core with room for exactly one row of a few cells; overflow must be
	// reported, not silently dropped.
	d := newDesign(3000, 1200)
	for i := 0; i < 10; i++ {
		addReg(t, d, fmt.Sprintf("r%d", i), 8, 0, 0)
	}
	res := Legalize(d)
	if len(res.Failed) == 0 {
		t.Fatal("expected placement failures in a too-small core")
	}
}

func TestDensityMap(t *testing.T) {
	d := newDesign(40000, 24000)
	// Fill the lower-left quadrant.
	for i := 0; i < 5; i++ {
		addReg(t, d, fmt.Sprintf("r%d", i), 4, int64(i)*3000, 0)
	}
	dm := DensityMap(d, 4)
	if len(dm) != 16 {
		t.Fatalf("bins = %d", len(dm))
	}
	if dm[0] <= 0 {
		t.Fatal("lower-left bin should have density")
	}
	if dm[15] != 0 {
		t.Fatal("upper-right bin should be empty")
	}
	var sum float64
	for _, v := range dm {
		sum += v
	}
	want := float64(d.TotalArea()) / float64(d.Core.Area()) * 16
	if sum < want*0.99 || sum > want*1.01 {
		t.Fatalf("density mass %g want %g", sum, want)
	}
}

// Property: legalization always produces a violation-free placement (when
// it does not fail) and never moves fixed cells, for random register soups.
func TestLegalizeAlwaysLegal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := newDesign(300000, 60000)
		n := 10 + rng.Intn(60)
		var fixedPos []geom.Point
		for i := 0; i < n; i++ {
			bits := []int{1, 2, 4, 8}[rng.Intn(4)]
			in := addReg(t, d, fmt.Sprintf("r%d", i), bits,
				int64(rng.Intn(250000)), int64(rng.Intn(55000)))
			if rng.Intn(10) == 0 {
				// Fixed cells must start legal to be meaningful obstacles.
				in.Pos = geom.Point{
					X: (in.Pos.X / d.SiteW) * d.SiteW,
					Y: (in.Pos.Y / d.RowH) * d.RowH,
				}
				in.Fixed = true
				fixedPos = append(fixedPos, in.Pos)
			}
		}
		res := Legalize(d)
		if len(res.Failed) > 0 {
			return true // allowed outcome; nothing else to check
		}
		// Fixed cells unmoved?
		idx := 0
		ok := true
		d.Insts(func(in *netlist.Inst) {
			if in.Fixed && in.Area() > 0 {
				if in.Pos != fixedPos[idx] {
					ok = false
				}
				idx++
			}
		})
		if !ok {
			return false
		}
		// Overlap-free among movable cells (fixed may overlap each other by
		// construction).
		for _, v := range CheckLegal(d) {
			if v.Kind == "overlap" {
				if v.Inst.Fixed && v.With != nil && v.With.Fixed {
					continue
				}
				return false
			}
			if v.Kind != "overlap" && !v.Inst.Fixed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
