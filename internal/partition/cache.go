package partition

import (
	"encoding/binary"

	"repro/internal/geom"
)

// CacheStats counts per-call reuse of the decomposition cache.
type CacheStats struct {
	// Components is the number of connected components in the last call.
	Components int
	// Reused is how many of them hit the memo (identical members and
	// positions as a previously split component).
	Reused int
	// Computed is how many were split fresh (dirty components).
	Computed int
}

// Cache memoizes GeometricSplit results per connected component across
// repeated decompositions of an evolving graph. Node indexes shift as nodes
// come and go, so components are keyed by a stable per-node key (the
// compatibility engine uses instance IDs) plus the exact positions and node
// bound; a hit replays the previous split remapped to the current indexes.
// The output is identical to Decompose on the same inputs — GeometricSplit
// is a pure function of the member order and positions, both captured by
// the key — only the work for unchanged components is skipped.
type Cache struct {
	memo       map[string][][]int // ordinal-encoded split per component key
	stats      CacheStats
	lastReused []bool // per output part of the last Decompose: memo hit?
}

// NewCache returns an empty decomposition cache.
func NewCache() *Cache {
	return &Cache{memo: map[string][][]int{}}
}

// Stats reports reuse counters for the most recent Decompose call.
func (c *Cache) Stats() CacheStats { return c.stats }

// LastPartsReused reports, aligned with the last Decompose output, whether
// each returned part came from a memo hit (its component's key — members
// and positions — was unchanged). The slice is owned by the cache and valid
// until the next Decompose.
func (c *Cache) LastPartsReused() []bool { return c.lastReused }

// Decompose is equivalent to the package-level Decompose but reuses cached
// splits for components whose stable keys and positions are unchanged.
// key(node) must be stable across calls (node indexes are not) and must
// preserve the relative order of surviving nodes, which instance IDs do.
func (c *Cache) Decompose(n int, adj [][]int, pos func(int) geom.Point, maxNodes int, key func(int) int64) [][]int {
	comps := ConnectedComponents(n, adj)
	next := make(map[string][][]int, len(comps))
	c.stats = CacheStats{Components: len(comps)}
	c.lastReused = c.lastReused[:0]
	var out [][]int
	for _, comp := range comps {
		ck := componentKey(comp, pos, maxNodes, key)
		ordinals, ok := c.memo[ck]
		if !ok {
			ordinals, ok = next[ck]
		}
		if ok {
			c.stats.Reused++
		} else {
			split := GeometricSplit(comp, pos, maxNodes)
			ordinals = toOrdinals(comp, split)
			c.stats.Computed++
		}
		next[ck] = ordinals
		for _, part := range ordinals {
			nodes := make([]int, len(part))
			for i, o := range part {
				nodes[i] = comp[o]
			}
			out = append(out, nodes)
			c.lastReused = append(c.lastReused, ok)
		}
	}
	// Entries not touched this round are stale (their component changed or
	// vanished); dropping them bounds the memo by the live component count.
	c.memo = next
	return out
}

// componentKey encodes everything GeometricSplit depends on: the node
// bound, and per member (in component order) its stable key and position.
// Full encoding, not a hash — equal keys imply equal split inputs.
func componentKey(comp []int, pos func(int) geom.Point, maxNodes int, key func(int) int64) string {
	buf := make([]byte, 0, 8+24*len(comp))
	var w [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		buf = append(buf, w[:]...)
	}
	put(int64(maxNodes))
	for _, nd := range comp {
		p := pos(nd)
		put(key(nd))
		put(p.X)
		put(p.Y)
	}
	return string(buf)
}

// toOrdinals rewrites a split over node indexes as positions within the
// component member list, the index-independent form stored in the memo.
func toOrdinals(comp []int, split [][]int) [][]int {
	ord := make(map[int]int, len(comp))
	for i, nd := range comp {
		ord[nd] = i
	}
	out := make([][]int, len(split))
	for i, part := range split {
		out[i] = make([]int, len(part))
		for j, nd := range part {
			out[i][j] = ord[nd]
		}
	}
	return out
}
