package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// randGraph builds a random undirected graph with positions.
func randGraph(rng *rand.Rand, n int) ([][]int, []geom.Point) {
	adj := make([][]int, n)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: int64(rng.Intn(10000)), Y: int64(rng.Intn(10000))}
	}
	// Sparse (avg degree < 1) so the graph has many small components —
	// the regime where per-component caching pays off.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3*n) == 0 {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj, pts
}

// TestCacheMatchesDecompose mutates a graph over rounds and checks the
// cached decomposition equals the from-scratch one every time, with reuse
// kicking in for untouched components.
func TestCacheMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		adj, pts := randGraph(rng, n)
		// Stable keys distinct from indexes (simulate instance IDs).
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(1000 + i*3)
		}
		pos := func(i int) geom.Point { return pts[i] }
		key := func(i int) int64 { return keys[i] }
		maxNodes := 1 + rng.Intn(12)

		c := NewCache()
		reusedEver := false
		for round := 0; round < 6; round++ {
			want := Decompose(n, adj, pos, maxNodes)
			got := c.Decompose(n, adj, pos, maxNodes, key)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d round %d: cache split diverged\n got %v\nwant %v",
					trial, round, got, want)
			}
			st := c.Stats()
			if st.Reused+st.Computed != st.Components {
				t.Fatalf("stats don't add up: %+v", st)
			}
			if round > 0 && st.Reused > 0 {
				reusedEver = true
			}
			// Mutate: move a few nodes (dirties their components only).
			for k := 0; k < 3; k++ {
				pts[rng.Intn(n)] = geom.Point{X: int64(rng.Intn(10000)), Y: int64(rng.Intn(10000))}
			}
		}
		if n > 30 && !reusedEver {
			t.Fatalf("trial %d: cache never reused a component across rounds", trial)
		}
	}
}

// TestCacheSurvivesIndexShift re-labels nodes (as the compat engine does
// when registers are added/removed) and verifies stable keys still hit.
func TestCacheSurvivesIndexShift(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 1000, Y: 1000}}
	adj := [][]int{{1}, {0}, {}}
	keys := []int64{100, 200, 300}
	c := NewCache()
	c.Decompose(3, adj, func(i int) geom.Point { return pts[i] }, 8,
		func(i int) int64 { return keys[i] })

	// Node 0 disappears; survivors shift down one index.
	pts2 := pts[1:]
	adj2 := [][]int{{}, {}}
	keys2 := keys[1:]
	got := c.Decompose(2, adj2, func(i int) geom.Point { return pts2[i] }, 8,
		func(i int) int64 { return keys2[i] })
	want := Decompose(2, adj2, func(i int) geom.Point { return pts2[i] }, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shifted decompose diverged: got %v want %v", got, want)
	}
	// Key 300's singleton component is unchanged and must hit despite the
	// index shift; key 200 was previously inside a two-node component.
	if st := c.Stats(); st.Reused != 1 || st.Computed != 1 {
		t.Fatalf("expected exactly the unchanged singleton to hit: %+v", st)
	}
}
