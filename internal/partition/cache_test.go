package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// randGraph builds a random undirected graph with positions.
func randGraph(rng *rand.Rand, n int) ([][]int, []geom.Point) {
	adj := make([][]int, n)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: int64(rng.Intn(10000)), Y: int64(rng.Intn(10000))}
	}
	// Sparse (avg degree < 1) so the graph has many small components —
	// the regime where per-component caching pays off.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3*n) == 0 {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj, pts
}

// TestCacheMatchesDecompose mutates a graph over rounds and checks the
// cached decomposition equals the from-scratch one every time, with reuse
// kicking in for untouched components.
func TestCacheMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		adj, pts := randGraph(rng, n)
		// Stable keys distinct from indexes (simulate instance IDs).
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(1000 + i*3)
		}
		pos := func(i int) geom.Point { return pts[i] }
		key := func(i int) int64 { return keys[i] }
		maxNodes := 1 + rng.Intn(12)

		c := NewCache()
		reusedEver := false
		for round := 0; round < 6; round++ {
			want := Decompose(n, adj, pos, maxNodes)
			got := c.Decompose(n, adj, pos, maxNodes, key)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d round %d: cache split diverged\n got %v\nwant %v",
					trial, round, got, want)
			}
			st := c.Stats()
			if st.Reused+st.Computed != st.Components {
				t.Fatalf("stats don't add up: %+v", st)
			}
			if round > 0 && st.Reused > 0 {
				reusedEver = true
			}
			// Mutate: move a few nodes (dirties their components only).
			for k := 0; k < 3; k++ {
				pts[rng.Intn(n)] = geom.Point{X: int64(rng.Intn(10000)), Y: int64(rng.Intn(10000))}
			}
		}
		if n > 30 && !reusedEver {
			t.Fatalf("trial %d: cache never reused a component across rounds", trial)
		}
	}
}

// TestCacheSurvivesIndexShift re-labels nodes (as the compat engine does
// when registers are added/removed) and verifies stable keys still hit.
func TestCacheSurvivesIndexShift(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 1000, Y: 1000}}
	adj := [][]int{{1}, {0}, {}}
	keys := []int64{100, 200, 300}
	c := NewCache()
	c.Decompose(3, adj, func(i int) geom.Point { return pts[i] }, 8,
		func(i int) int64 { return keys[i] })

	// Node 0 disappears; survivors shift down one index.
	pts2 := pts[1:]
	adj2 := [][]int{{}, {}}
	keys2 := keys[1:]
	got := c.Decompose(2, adj2, func(i int) geom.Point { return pts2[i] }, 8,
		func(i int) int64 { return keys2[i] })
	want := Decompose(2, adj2, func(i int) geom.Point { return pts2[i] }, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shifted decompose diverged: got %v want %v", got, want)
	}
	// Key 300's singleton component is unchanged and must hit despite the
	// index shift; key 200 was previously inside a two-node component.
	if st := c.Stats(); st.Reused != 1 || st.Computed != 1 {
		t.Fatalf("expected exactly the unchanged singleton to hit: %+v", st)
	}
}

// TestCacheVanishReappearRecomputes pins the rotation semantics: entries
// not touched in a round are evicted, so a component that vanishes for one
// round and then reappears identically is split fresh — the memo is bounded
// by the live component count, never by history.
func TestCacheVanishReappearRecomputes(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 1000, Y: 1000}}
	adj := [][]int{{1}, {0}, {}}
	keys := []int64{100, 200, 300}
	pos := func(i int) geom.Point { return pts[i] }
	key := func(i int) int64 { return keys[i] }

	c := NewCache()
	c.Decompose(3, adj, pos, 8, key)
	if st := c.Stats(); st.Computed != 2 {
		t.Fatalf("first round: %+v", st)
	}

	// The {100,200} component vanishes; only the singleton remains.
	onlyC := func(i int) geom.Point { return pts[2] }
	onlyK := func(i int) int64 { return keys[2] }
	c.Decompose(1, [][]int{{}}, onlyC, 8, onlyK)
	if st := c.Stats(); st.Reused != 1 || st.Computed != 0 {
		t.Fatalf("survivor round: %+v", st)
	}

	// It reappears bit-identically: eviction means a fresh split, and the
	// output still matches the uncached decomposition.
	got := c.Decompose(3, adj, pos, 8, key)
	want := Decompose(3, adj, pos, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reappeared decompose diverged: got %v want %v", got, want)
	}
	if st := c.Stats(); st.Reused != 1 || st.Computed != 1 {
		t.Fatalf("reappearance must recompute the evicted component: %+v", st)
	}
}

// TestCacheTwinComponentsShareEntry covers same-round sharing: two
// components with identical keys and positions (possible only under a
// synthetic key function — real instance IDs are unique) hit one memo
// entry, with the second replaying the first's split within the round.
func TestCacheTwinComponentsShareEntry(t *testing.T) {
	// Components {0,1} and {2,3} are bit-identical twins: same stable keys,
	// same positions, same shape.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 0}, {X: 50, Y: 0}}
	adj := [][]int{{1}, {0}, {3}, {2}}
	keys := []int64{7, 8, 7, 8}
	pos := func(i int) geom.Point { return pts[i] }
	key := func(i int) int64 { return keys[i] }

	c := NewCache()
	got := c.Decompose(4, adj, pos, 8, key)
	want := Decompose(4, adj, pos, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("twin decompose diverged: got %v want %v", got, want)
	}
	st := c.Stats()
	if st.Components != 2 || st.Computed != 1 || st.Reused != 1 {
		t.Fatalf("twins must share one entry within the round: %+v", st)
	}
	reused := c.LastPartsReused()
	if len(reused) != len(got) {
		t.Fatalf("LastPartsReused has %d entries for %d parts", len(reused), len(got))
	}
	if reused[0] || !reused[1] {
		t.Fatalf("first twin computed, second replayed: %v", reused)
	}
}

// TestCacheLastPartsReusedAlignment checks the per-part reuse flags across
// a mutation: parts of a moved component read false, untouched ones true,
// and the slice stays aligned with the returned parts.
func TestCacheLastPartsReusedAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	adj, pts := randGraph(rng, n)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(500 + i)
	}
	pos := func(i int) geom.Point { return pts[i] }
	key := func(i int) int64 { return keys[i] }

	c := NewCache()
	c.Decompose(n, adj, pos, 6, key)

	// Move node 0: exactly its component's parts lose their reuse flag.
	pts[0] = geom.Point{X: pts[0].X + 12345, Y: pts[0].Y}
	comps := ConnectedComponents(n, adj)
	dirty := map[int]bool{}
	for _, comp := range comps {
		hit := false
		for _, nd := range comp {
			if nd == 0 {
				hit = true
			}
		}
		if hit {
			for _, nd := range comp {
				dirty[nd] = true
			}
		}
	}
	parts := c.Decompose(n, adj, pos, 6, key)
	reused := c.LastPartsReused()
	if len(reused) != len(parts) {
		t.Fatalf("LastPartsReused has %d entries for %d parts", len(reused), len(parts))
	}
	for i, part := range parts {
		wantReused := !dirty[part[0]]
		if reused[i] != wantReused {
			t.Fatalf("part %d (%v): reused=%v, want %v", i, part, reused[i], wantReused)
		}
	}
}
