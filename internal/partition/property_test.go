package partition

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomAdj builds a random undirected adjacency-list graph.
func randomAdj(rng *rand.Rand, n int, p float64) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

// bruteComponentOf computes each node's component id by transitive closure.
func bruteComponentOf(n int, adj [][]int) []int {
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		reach[i][i] = true
		for _, j := range adj[i] {
			reach[i][j] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if comp[i] != -1 {
			continue
		}
		for j := 0; j < n; j++ {
			if reach[i][j] {
				comp[j] = next
			}
		}
		next++
	}
	return comp
}

// TestConnectedComponentsMatchReachability cross-checks the DFS component
// finder against a Floyd–Warshall style transitive closure: two nodes share
// a returned component iff they are mutually reachable, the components are
// sorted by smallest node with ascending members, and they cover every node.
func TestConnectedComponentsMatchReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(40)
		adj := randomAdj(rng, n, []float64{0.02, 0.08, 0.3}[trial%3])
		comps := ConnectedComponents(n, adj)
		want := bruteComponentOf(n, adj)

		id := make([]int, n)
		for i := range id {
			id[i] = -1
		}
		prevFirst := -1
		for ci, members := range comps {
			if len(members) == 0 {
				t.Fatalf("trial %d: empty component %d", trial, ci)
			}
			if members[0] <= prevFirst {
				t.Fatalf("trial %d: components not sorted by smallest node", trial)
			}
			prevFirst = members[0]
			for k, v := range members {
				if k > 0 && members[k-1] >= v {
					t.Fatalf("trial %d: component %d members not ascending: %v", trial, ci, members)
				}
				if id[v] != -1 {
					t.Fatalf("trial %d: node %d in two components", trial, v)
				}
				id[v] = ci
			}
		}
		for i := 0; i < n; i++ {
			if id[i] == -1 {
				t.Fatalf("trial %d: node %d not covered", trial, i)
			}
			for j := 0; j < n; j++ {
				sameGot := id[i] == id[j]
				sameWant := want[i] == want[j]
				if sameGot != sameWant {
					t.Fatalf("trial %d: nodes %d,%d same-component=%v, reachability says %v",
						trial, i, j, sameGot, sameWant)
				}
			}
		}
	}
}

// TestDecomposeNeverMixesComponents: geometric splitting only ever subdivides
// a component, so no returned subgraph may span two components — merging
// across a part is then always backed by real compatibility edges.
func TestDecomposeNeverMixesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(70)
		adj := randomAdj(rng, n, 0.05)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: int64(rng.Intn(2000)), Y: int64(rng.Intn(2000))}
		}
		comp := bruteComponentOf(n, adj)
		bound := 1 + rng.Intn(29)
		parts := Decompose(n, adj, func(i int) geom.Point { return pts[i] }, bound)
		for _, p := range parts {
			if len(p) > bound {
				t.Fatalf("trial %d: part of %d nodes exceeds bound %d", trial, len(p), bound)
			}
			for _, x := range p[1:] {
				if comp[x] != comp[p[0]] {
					t.Fatalf("trial %d: part %v spans components %d and %d",
						trial, p, comp[p[0]], comp[x])
				}
			}
		}
	}
}
