// Package partition decomposes the register compatibility graph before
// clique enumeration (§3): connected components first, then K-partitioning
// of oversized components driven by the position of the register clock
// pins, so that each resulting subgraph stays below the node bound (the
// paper uses 30; below 20 QoR drops, above 30 runtime is wasted).
package partition

import (
	"sort"

	"repro/internal/geom"
)

// ConnectedComponents returns the connected components of an undirected
// graph on n nodes given as adjacency lists. Components are sorted by their
// smallest node, members ascending.
func ConnectedComponents(n int, adj [][]int) [][]int {
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(out)
		stack := []int{s}
		comp[s] = id
		var members []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, v := range adj[u] {
				if comp[v] == -1 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// GeometricSplit recursively bisects the node set along the longer axis of
// its position bounding box (median split) until every part has at most
// maxNodes nodes. Splitting by clock-pin position keeps geometrically close
// registers — the ones whose merge shortens clock wiring most — in the same
// subproblem.
//
// The result is deterministic; parts preserve relative position order and
// are returned left/bottom first.
func GeometricSplit(nodes []int, pos func(int) geom.Point, maxNodes int) [][]int {
	if maxNodes < 1 {
		maxNodes = 1
	}
	if len(nodes) == 0 {
		return nil
	}
	if len(nodes) <= maxNodes {
		return [][]int{append([]int(nil), nodes...)}
	}
	pts := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = pos(n)
	}
	bb := geom.BoundingBox(pts)
	byX := bb.W() >= bb.H()
	sorted := append([]int(nil), nodes...)
	sort.SliceStable(sorted, func(i, j int) bool {
		pi, pj := pos(sorted[i]), pos(sorted[j])
		if byX {
			if pi.X != pj.X {
				return pi.X < pj.X
			}
			return pi.Y < pj.Y
		}
		if pi.Y != pj.Y {
			return pi.Y < pj.Y
		}
		return pi.X < pj.X
	})
	mid := len(sorted) / 2
	left := GeometricSplit(sorted[:mid], pos, maxNodes)
	right := GeometricSplit(sorted[mid:], pos, maxNodes)
	return append(left, right...)
}

// Decompose combines both steps: connected components of (n, adj), then
// geometric splitting of any component larger than maxNodes. Every returned
// subgraph has between 1 and maxNodes nodes.
func Decompose(n int, adj [][]int, pos func(int) geom.Point, maxNodes int) [][]int {
	var out [][]int
	for _, comp := range ConnectedComponents(n, adj) {
		out = append(out, GeometricSplit(comp, pos, maxNodes)...)
	}
	return out
}
