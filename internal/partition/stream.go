package partition

import (
	"sort"

	"repro/internal/geom"
)

// Stream is Decompose without the materialized result: it discovers
// connected components lazily (in the same smallest-node discovery order),
// geometric-splits each oversized component, and hands every subgraph to
// yield as it is produced, with the index it would have in the Decompose
// slice. yield returning false stops the walk.
//
// At any moment only the current component (plus its split parts) is live,
// so the caller can pipeline subgraphs through enumeration and solving while
// keeping peak memory proportional to live work instead of the whole
// decomposition. The (index, nodes) sequence is exactly
// `for i, sg := range Decompose(n, adj, pos, maxNodes)`.
func Stream(n int, adj [][]int, pos func(int) geom.Point, maxNodes int, yield func(idx int, nodes []int) bool) {
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	idx := 0
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		stack := []int{s}
		comp[s] = s
		var members []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, v := range adj[u] {
				if comp[v] == -1 {
					comp[v] = s
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(members)
		for _, part := range GeometricSplit(members, pos, maxNodes) {
			if !yield(idx, part) {
				return
			}
			idx++
		}
	}
}
