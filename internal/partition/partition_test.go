package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestConnectedComponents(t *testing.T) {
	// 0-1-2, 3-4, 5 alone.
	adj := [][]int{{1}, {0, 2}, {1}, {4}, {3}, {}}
	comps := ConnectedComponents(6, adj)
	if len(comps) != 3 {
		t.Fatalf("components = %d want 3", len(comps))
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	if got := ConnectedComponents(0, nil); len(got) != 0 {
		t.Fatalf("empty graph → %v", got)
	}
}

func TestGeometricSplitRespectsBound(t *testing.T) {
	nodes := make([]int, 100)
	pts := make([]geom.Point, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range nodes {
		nodes[i] = i
		pts[i] = geom.Point{X: int64(rng.Intn(10000)), Y: int64(rng.Intn(10000))}
	}
	parts := GeometricSplit(nodes, func(i int) geom.Point { return pts[i] }, 30)
	total := 0
	seen := map[int]bool{}
	for _, p := range parts {
		if len(p) > 30 || len(p) == 0 {
			t.Fatalf("part size %d out of bounds", len(p))
		}
		total += len(p)
		for _, n := range p {
			if seen[n] {
				t.Fatalf("node %d in two parts", n)
			}
			seen[n] = true
		}
	}
	if total != 100 {
		t.Fatalf("nodes lost: %d", total)
	}
}

func TestGeometricSplitKeepsNeighborsTogether(t *testing.T) {
	// Two far-apart clusters of 10: a split with bound 10 must cut between
	// the clusters, not through them.
	var nodes []int
	var pts []geom.Point
	for i := 0; i < 10; i++ {
		nodes = append(nodes, i)
		pts = append(pts, geom.Point{X: int64(i * 10), Y: 0})
	}
	for i := 0; i < 10; i++ {
		nodes = append(nodes, 10+i)
		pts = append(pts, geom.Point{X: int64(1000000 + i*10), Y: 0})
	}
	parts := GeometricSplit(nodes, func(i int) geom.Point { return pts[i] }, 10)
	if len(parts) != 2 {
		t.Fatalf("parts = %d want 2", len(parts))
	}
	for _, p := range parts {
		left, right := 0, 0
		for _, n := range p {
			if n < 10 {
				left++
			} else {
				right++
			}
		}
		if left != 0 && right != 0 {
			t.Fatalf("split cut through a cluster: %v", p)
		}
	}
}

func TestGeometricSplitSmallInput(t *testing.T) {
	parts := GeometricSplit([]int{7}, func(int) geom.Point { return geom.Point{} }, 30)
	if len(parts) != 1 || len(parts[0]) != 1 || parts[0][0] != 7 {
		t.Fatalf("singleton split = %v", parts)
	}
	if GeometricSplit(nil, nil, 30) != nil {
		t.Fatal("empty split should be nil")
	}
}

func TestDecompose(t *testing.T) {
	// A 50-node path (one component) plus 5 isolated nodes.
	n := 55
	adj := make([][]int, n)
	for i := 0; i+1 < 50; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	pos := func(i int) geom.Point { return geom.Point{X: int64(i * 100), Y: 0} }
	parts := Decompose(n, adj, pos, 30)
	seen := map[int]bool{}
	for _, p := range parts {
		if len(p) > 30 {
			t.Fatalf("oversized part: %d", len(p))
		}
		for _, x := range p {
			if seen[x] {
				t.Fatalf("duplicate node %d", x)
			}
			seen[x] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("nodes covered = %d want %d", len(seen), n)
	}
	// The path must be split into ≥ 2 parts, isolated nodes are singletons.
	if len(parts) < 2+5 {
		t.Fatalf("parts = %d", len(parts))
	}
}

// Property: Decompose partitions the node set exactly (no loss, no dup) and
// respects the bound for arbitrary graphs.
func TestDecomposeIsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(10) == 0 {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: int64(rng.Intn(1000)), Y: int64(rng.Intn(1000))}
		}
		bound := 1 + rng.Intn(40)
		parts := Decompose(n, adj, func(i int) geom.Point { return pts[i] }, bound)
		seen := map[int]bool{}
		for _, p := range parts {
			if len(p) == 0 || len(p) > bound {
				return false
			}
			for _, x := range p {
				if seen[x] {
					return false
				}
				seen[x] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
