package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// TestStreamMatchesDecompose pins the streaming contract: the (index, nodes)
// sequence Stream yields is exactly ranging over Decompose's result, across
// random graphs, densities and node bounds.
func TestStreamMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(120)
		p := []float64{0.0, 0.02, 0.1, 0.5}[trial%4]
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: int64(rng.Intn(10000)), Y: int64(rng.Intn(10000))}
		}
		pos := func(i int) geom.Point { return pts[i] }
		maxNodes := 1 + rng.Intn(40)

		want := Decompose(n, adj, pos, maxNodes)
		var got [][]int
		Stream(n, adj, pos, maxNodes, func(idx int, nodes []int) bool {
			if idx != len(got) {
				t.Fatalf("trial %d: yield index %d, expected %d", trial, idx, len(got))
			}
			got = append(got, append([]int(nil), nodes...))
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d p=%.2f max=%d): stream %v != decompose %v",
				trial, n, p, maxNodes, got, want)
		}
	}
}

// TestStreamEarlyStop checks that yield returning false halts the walk.
func TestStreamEarlyStop(t *testing.T) {
	adj := [][]int{{}, {}, {}, {}}
	pos := func(int) geom.Point { return geom.Point{} }
	calls := 0
	Stream(4, adj, pos, 30, func(idx int, nodes []int) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Fatalf("yield called %d times, want 2", calls)
	}
}
