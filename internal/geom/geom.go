// Package geom provides the planar geometry primitives used throughout the
// MBR composition flow: points, rectangles, Manhattan metrics, convex hulls
// and point-in-polygon tests.
//
// All coordinates are in database units (DBU). One micron is typically 1000
// DBU; the package itself is unit-agnostic.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Point is a location in the placement plane, in database units.
type Point struct {
	X, Y int64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return absInt64(p.X-q.X) + absInt64(p.Y-q.Y)
}

// EuclideanDist returns the L2 distance between p and q.
func (p Point) EuclideanDist(q Point) float64 {
	dx, dy := float64(p.X-q.X), float64(p.Y-q.Y)
	return math.Hypot(dx, dy)
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Rect is an axis-aligned rectangle. Lo is the lower-left corner, Hi the
// upper-right. A Rect is valid when Lo.X <= Hi.X and Lo.Y <= Hi.Y; a
// degenerate rectangle (zero width and/or height) is valid and represents a
// point or segment.
type Rect struct {
	Lo, Hi Point
}

// RectFromCorners returns the rectangle spanning two arbitrary corners.
func RectFromCorners(a, b Point) Rect {
	return Rect{
		Lo: Point{min64(a.X, b.X), min64(a.Y, b.Y)},
		Hi: Point{max64(a.X, b.X), max64(a.Y, b.Y)},
	}
}

// RectWH returns a rectangle with lower-left at (x, y) and the given size.
func RectWH(x, y, w, h int64) Rect {
	return Rect{Lo: Point{x, y}, Hi: Point{x + w, y + h}}
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("[%v %v]", r.Lo, r.Hi) }

// Valid reports whether r's corners are ordered.
func (r Rect) Valid() bool { return r.Lo.X <= r.Hi.X && r.Lo.Y <= r.Hi.Y }

// W returns the width of r.
func (r Rect) W() int64 { return r.Hi.X - r.Lo.X }

// H returns the height of r.
func (r Rect) H() int64 { return r.Hi.Y - r.Lo.Y }

// Area returns the area of r.
func (r Rect) Area() int64 { return r.W() * r.H() }

// HalfPerimeter returns W+H, the half-perimeter wirelength of r seen as a
// net bounding box.
func (r Rect) HalfPerimeter() int64 { return r.W() + r.H() }

// Center returns the center of r, rounded toward Lo.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r, boundary inclusive.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Lo) && r.Contains(s.Hi)
}

// Overlaps reports whether r and s share any point (boundary touch counts).
func (r Rect) Overlaps(s Rect) bool {
	return r.Lo.X <= s.Hi.X && s.Lo.X <= r.Hi.X && r.Lo.Y <= s.Hi.Y && s.Lo.Y <= r.Hi.Y
}

// OverlapsStrict reports whether r and s share interior area.
func (r Rect) OverlapsStrict(s Rect) bool {
	return r.Lo.X < s.Hi.X && s.Lo.X < r.Hi.X && r.Lo.Y < s.Hi.Y && s.Lo.Y < r.Hi.Y
}

// Intersect returns the intersection of r and s. The second result is false
// when they do not overlap at all; the returned rectangle is then invalid.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		Lo: Point{max64(r.Lo.X, s.Lo.X), max64(r.Lo.Y, s.Lo.Y)},
		Hi: Point{min64(r.Hi.X, s.Hi.X), min64(r.Hi.Y, s.Hi.Y)},
	}
	return out, out.Valid()
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Lo: Point{min64(r.Lo.X, s.Lo.X), min64(r.Lo.Y, s.Lo.Y)},
		Hi: Point{max64(r.Hi.X, s.Hi.X), max64(r.Hi.Y, s.Hi.Y)},
	}
}

// Expand returns r grown by d on every side. A negative d shrinks r; the
// result may become invalid if d is too negative.
func (r Rect) Expand(d int64) Rect {
	return Rect{
		Lo: Point{r.Lo.X - d, r.Lo.Y - d},
		Hi: Point{r.Hi.X + d, r.Hi.Y + d},
	}
}

// Translate returns r shifted by p.
func (r Rect) Translate(p Point) Rect {
	return Rect{Lo: r.Lo.Add(p), Hi: r.Hi.Add(p)}
}

// Corners returns the four corners of r in counter-clockwise order starting
// at the lower-left.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Lo,
		{r.Hi.X, r.Lo.Y},
		r.Hi,
		{r.Lo.X, r.Hi.Y},
	}
}

// ClampPoint returns the point of r closest (in L1 and L∞) to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{clamp64(p.X, r.Lo.X, r.Hi.X), clamp64(p.Y, r.Lo.Y, r.Hi.Y)}
}

// BoundingBox returns the smallest rectangle containing all pts. It panics
// when pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	r := Rect{Lo: pts[0], Hi: pts[0]}
	for _, p := range pts[1:] {
		r.Lo.X = min64(r.Lo.X, p.X)
		r.Lo.Y = min64(r.Lo.Y, p.Y)
		r.Hi.X = max64(r.Hi.X, p.X)
		r.Hi.Y = max64(r.Hi.Y, p.Y)
	}
	return r
}

// IntersectAll intersects all rectangles. The second result is false when
// the common intersection is empty or rs is empty.
func IntersectAll(rs []Rect) (Rect, bool) {
	if len(rs) == 0 {
		return Rect{}, false
	}
	acc := rs[0]
	for _, r := range rs[1:] {
		var ok bool
		acc, ok = acc.Intersect(r)
		if !ok {
			return Rect{}, false
		}
	}
	return acc, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// cross returns the z-component of (b-a) × (c-a). Positive when a→b→c turns
// counter-clockwise.
func cross(a, b, c Point) int64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// ConvexHull returns the convex hull of pts in counter-clockwise order using
// Andrew's monotone chain. Collinear points on hull edges are dropped.
// Degenerate inputs are handled: the hull of coincident points is a single
// point, of collinear points a two-point segment.
func ConvexHull(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Dedup.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) == 1 {
		return []Point{ps[0]}
	}
	var lower, upper []Point
	for _, p := range ps {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) == 0 { // all collinear: lower holds the full chain
		hull = []Point{ps[0], ps[len(ps)-1]}
	}
	return hull
}

// PolygonContains reports whether p lies inside or on the boundary of the
// convex polygon poly (vertices in CCW order, as returned by ConvexHull).
// A 1-point polygon contains only that point; a 2-point polygon contains the
// points of the segment.
func PolygonContains(poly []Point, p Point) bool {
	switch len(poly) {
	case 0:
		return false
	case 1:
		return poly[0] == p
	case 2:
		return onSegment(poly[0], poly[1], p)
	}
	for i := range poly {
		a, b := poly[i], poly[(i+1)%len(poly)]
		if cross(a, b, p) < 0 {
			return false
		}
	}
	return true
}

// onSegment reports whether p lies on the closed segment ab.
func onSegment(a, b, p Point) bool {
	if cross(a, b, p) != 0 {
		return false
	}
	return p.X >= min64(a.X, b.X) && p.X <= max64(a.X, b.X) &&
		p.Y >= min64(a.Y, b.Y) && p.Y <= max64(a.Y, b.Y)
}

// PolygonArea2 returns twice the signed area of polygon poly (positive for
// CCW orientation). Using twice the area keeps the result integral.
func PolygonArea2(poly []Point) int64 {
	var a int64
	for i := range poly {
		p, q := poly[i], poly[(i+1)%len(poly)]
		a += p.X*q.Y - q.X*p.Y
	}
	return a
}
