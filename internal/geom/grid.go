package geom

// Grid is a uniform spatial hash over a bounding rectangle: rectangles are
// inserted into every cell they overlap, and QueryRect visits the ids of
// every inserted rectangle whose cell range overlaps the query range. It
// exists so neighborhood-limited searches (the incremental compatibility
// engine) avoid all-pairs scans. Visits may repeat an id (a rectangle can
// span several cells); callers dedup, typically with a stamp slice.
//
// A Grid is immutable after the insert phase as far as queries are
// concerned: concurrent QueryRect calls are safe once InsertRect is done.
type Grid struct {
	bounds Rect
	nx, ny int
	cw, ch int64
	cells  [][]int32
}

// NewGrid creates an nx×ny grid over bounds. Dimensions are clamped to at
// least 1; a degenerate bounds rectangle collapses to a single cell.
func NewGrid(bounds Rect, nx, ny int) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if bounds.W() <= 0 {
		nx = 1
	}
	if bounds.H() <= 0 {
		ny = 1
	}
	g := &Grid{bounds: bounds, nx: nx, ny: ny}
	// Ceiling division so nx*cw covers the full width.
	g.cw = (bounds.W() + int64(nx) - 1) / int64(nx)
	if g.cw <= 0 {
		g.cw = 1
	}
	g.ch = (bounds.H() + int64(ny) - 1) / int64(ny)
	if g.ch <= 0 {
		g.ch = 1
	}
	g.cells = make([][]int32, nx*ny)
	return g
}

// cellRange maps a rectangle to the inclusive cell index range it overlaps.
// Coordinates outside bounds clamp to the boundary cells, so out-of-bounds
// rectangles are still indexed (conservatively) rather than lost.
func (g *Grid) cellRange(r Rect) (x0, y0, x1, y1 int) {
	x0 = g.clampX(r.Lo.X - g.bounds.Lo.X)
	x1 = g.clampX(r.Hi.X - g.bounds.Lo.X)
	y0 = g.clampY(r.Lo.Y - g.bounds.Lo.Y)
	y1 = g.clampY(r.Hi.Y - g.bounds.Lo.Y)
	return
}

func (g *Grid) clampX(dx int64) int {
	i := int(dx / g.cw)
	if i < 0 {
		return 0
	}
	if i >= g.nx {
		return g.nx - 1
	}
	return i
}

func (g *Grid) clampY(dy int64) int {
	i := int(dy / g.ch)
	if i < 0 {
		return 0
	}
	if i >= g.ny {
		return g.ny - 1
	}
	return i
}

// InsertRect records id in every cell r overlaps.
func (g *Grid) InsertRect(id int32, r Rect) {
	x0, y0, x1, y1 := g.cellRange(r)
	for y := y0; y <= y1; y++ {
		row := y * g.nx
		for x := x0; x <= x1; x++ {
			g.cells[row+x] = append(g.cells[row+x], id)
		}
	}
}

// QueryRect visits every id inserted into a cell that r overlaps, in
// deterministic (cell-major, insertion) order. Ids spanning several cells
// are visited once per cell — dedup at the caller.
func (g *Grid) QueryRect(r Rect, visit func(id int32)) {
	x0, y0, x1, y1 := g.cellRange(r)
	for y := y0; y <= y1; y++ {
		row := y * g.nx
		for x := x0; x <= x1; x++ {
			for _, id := range g.cells[row+x] {
				visit(id)
			}
		}
	}
}
