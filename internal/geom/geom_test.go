package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPointManhattanDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want int64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{-2, 5}, Point{2, -5}, 14},
		{Point{10, 10}, Point{10, 11}, 1},
	}
	for _, c := range cases {
		if got := c.p.ManhattanDist(c.q); got != c.want {
			t.Errorf("ManhattanDist(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := c.q.ManhattanDist(c.p); got != c.want {
			t.Errorf("symmetry: ManhattanDist(%v,%v) = %d, want %d", c.q, c.p, got, c.want)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(10, 20, 30, 40)
	if r.W() != 30 || r.H() != 40 {
		t.Fatalf("W,H = %d,%d want 30,40", r.W(), r.H())
	}
	if r.Area() != 1200 {
		t.Fatalf("Area = %d want 1200", r.Area())
	}
	if r.HalfPerimeter() != 70 {
		t.Fatalf("HalfPerimeter = %d want 70", r.HalfPerimeter())
	}
	if got := r.Center(); got != (Point{25, 40}) {
		t.Fatalf("Center = %v want (25,40)", got)
	}
	if !r.Contains(Point{10, 20}) || !r.Contains(Point{40, 60}) {
		t.Fatal("boundary points must be contained")
	}
	if r.Contains(Point{9, 20}) || r.Contains(Point{10, 61}) {
		t.Fatal("exterior points must not be contained")
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Point{5, 7}, Point{1, 2})
	if r.Lo != (Point{1, 2}) || r.Hi != (Point{5, 7}) {
		t.Fatalf("RectFromCorners normalized wrong: %v", r)
	}
	if !r.Valid() {
		t.Fatal("normalized rect must be valid")
	}
}

func TestRectIntersect(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(5, 5, 10, 10)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	want := Rect{Point{5, 5}, Point{10, 10}}
	if got != want {
		t.Fatalf("Intersect = %v want %v", got, want)
	}

	c := RectWH(20, 20, 5, 5)
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint rects must not intersect")
	}

	// Boundary touch: overlap true, strict overlap false, intersection is a
	// degenerate (zero-area) rect.
	d := RectWH(10, 0, 5, 10)
	if !a.Overlaps(d) {
		t.Fatal("touching rects overlap (inclusive)")
	}
	if a.OverlapsStrict(d) {
		t.Fatal("touching rects do not overlap strictly")
	}
	e, ok := a.Intersect(d)
	if !ok || e.Area() != 0 {
		t.Fatalf("touching intersection should be degenerate, got %v ok=%v", e, ok)
	}
}

func TestRectUnionExpandTranslate(t *testing.T) {
	a := RectWH(0, 0, 2, 2)
	b := RectWH(5, 5, 1, 1)
	u := a.Union(b)
	if u != (Rect{Point{0, 0}, Point{6, 6}}) {
		t.Fatalf("Union = %v", u)
	}
	ex := a.Expand(3)
	if ex != (Rect{Point{-3, -3}, Point{5, 5}}) {
		t.Fatalf("Expand = %v", ex)
	}
	tr := a.Translate(Point{10, -4})
	if tr != (Rect{Point{10, -4}, Point{12, -2}}) {
		t.Fatalf("Translate = %v", tr)
	}
}

func TestRectClampPoint(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	cases := []struct{ in, want Point }{
		{Point{5, 5}, Point{5, 5}},
		{Point{-3, 5}, Point{0, 5}},
		{Point{15, 20}, Point{10, 10}},
		{Point{4, -9}, Point{4, 0}},
	}
	for _, c := range cases {
		if got := r.ClampPoint(c.in); got != c.want {
			t.Errorf("ClampPoint(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{3, 7}, {-1, 2}, {5, 5}, {0, 9}}
	bb := BoundingBox(pts)
	if bb != (Rect{Point{-1, 2}, Point{5, 9}}) {
		t.Fatalf("BoundingBox = %v", bb)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BoundingBox(nil) should panic")
		}
	}()
	BoundingBox(nil)
}

func TestIntersectAll(t *testing.T) {
	rs := []Rect{RectWH(0, 0, 10, 10), RectWH(2, 2, 10, 10), RectWH(4, 0, 10, 10)}
	got, ok := IntersectAll(rs)
	if !ok {
		t.Fatal("expected nonempty intersection")
	}
	if got != (Rect{Point{4, 2}, Point{10, 10}}) {
		t.Fatalf("IntersectAll = %v", got)
	}
	if _, ok := IntersectAll(nil); ok {
		t.Fatal("empty set has no intersection")
	}
	rs = append(rs, RectWH(100, 100, 1, 1))
	if _, ok := IntersectAll(rs); ok {
		t.Fatal("disjoint member should empty the intersection")
	}
}

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, 5}, {3, 2}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d want 4 (%v)", len(hull), hull)
	}
	want := map[Point]bool{{0, 0}: true, {10, 0}: true, {10, 10}: true, {0, 10}: true}
	for _, p := range hull {
		if !want[p] {
			t.Fatalf("unexpected hull vertex %v", p)
		}
	}
	if PolygonArea2(hull) != 200 {
		t.Fatalf("hull area2 = %d want 200", PolygonArea2(hull))
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Fatalf("hull of empty = %v", h)
	}
	h := ConvexHull([]Point{{3, 3}, {3, 3}})
	if len(h) != 1 || h[0] != (Point{3, 3}) {
		t.Fatalf("hull of coincident points = %v", h)
	}
	h = ConvexHull([]Point{{0, 0}, {5, 5}, {2, 2}, {9, 9}})
	if len(h) != 2 {
		t.Fatalf("collinear hull = %v, want 2 endpoints", h)
	}
	bb := BoundingBox(h)
	if bb != (Rect{Point{0, 0}, Point{9, 9}}) {
		t.Fatalf("collinear hull endpoints wrong: %v", h)
	}
}

func TestPolygonContains(t *testing.T) {
	hull := ConvexHull([]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	in := []Point{{5, 5}, {0, 0}, {10, 10}, {0, 5}, {10, 5}, {1, 9}}
	out := []Point{{-1, 5}, {11, 5}, {5, -1}, {5, 11}, {11, 11}}
	for _, p := range in {
		if !PolygonContains(hull, p) {
			t.Errorf("point %v should be inside", p)
		}
	}
	for _, p := range out {
		if PolygonContains(hull, p) {
			t.Errorf("point %v should be outside", p)
		}
	}
	// Degenerate polygons.
	if !PolygonContains([]Point{{2, 2}}, Point{2, 2}) || PolygonContains([]Point{{2, 2}}, Point{2, 3}) {
		t.Error("1-point polygon containment wrong")
	}
	seg := []Point{{0, 0}, {4, 4}}
	if !PolygonContains(seg, Point{2, 2}) || PolygonContains(seg, Point{2, 3}) || PolygonContains(seg, Point{5, 5}) {
		t.Error("segment containment wrong")
	}
	if PolygonContains(nil, Point{0, 0}) {
		t.Error("empty polygon contains nothing")
	}
}

func TestPolygonContainsTriangle(t *testing.T) {
	hull := ConvexHull([]Point{{0, 0}, {10, 0}, {5, 10}})
	if !PolygonContains(hull, Point{5, 3}) {
		t.Error("interior point of triangle")
	}
	if PolygonContains(hull, Point{1, 9}) {
		t.Error("exterior point of triangle")
	}
	if !PolygonContains(hull, Point{5, 10}) {
		t.Error("apex vertex")
	}
}

// Property: every input point is inside the hull polygon.
func TestConvexHullContainsAllInputs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{int64(rng.Intn(200) - 100), int64(rng.Intn(200) - 100)}
		}
		hull := ConvexHull(pts)
		for _, p := range pts {
			if !PolygonContains(hull, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the hull is convex — every cross product of consecutive edge
// pairs is non-negative (CCW) — and hull vertices are a subset of the input.
func TestConvexHullIsConvexCCW(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		set := map[Point]bool{}
		for i := range pts {
			pts[i] = Point{int64(rng.Intn(100)), int64(rng.Intn(100))}
			set[pts[i]] = true
		}
		hull := ConvexHull(pts)
		for _, v := range hull {
			if !set[v] {
				return false // hull vertex not from input
			}
		}
		if len(hull) < 3 {
			return true // degenerate is fine
		}
		for i := range hull {
			a := hull[i]
			b := hull[(i+1)%len(hull)]
			c := hull[(i+2)%len(hull)]
			if cross(a, b, c) <= 0 {
				return false // not strictly convex CCW
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hull is invariant under input permutation.
func TestConvexHullPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{int64(rng.Intn(50)), int64(rng.Intn(50))}
		}
		h1 := ConvexHull(pts)
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		h2 := ConvexHull(pts)
		return samePointSet(h1, h2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func samePointSet(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p Point) [2]int64 { return [2]int64{p.X, p.Y} }
	ka := make([][2]int64, len(a))
	kb := make([][2]int64, len(b))
	for i := range a {
		ka[i], kb[i] = key(a[i]), key(b[i])
	}
	less := func(s [][2]int64) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i][0] != s[j][0] {
				return s[i][0] < s[j][0]
			}
			return s[i][1] < s[j][1]
		}
	}
	sort.Slice(ka, less(ka))
	sort.Slice(kb, less(kb))
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// Property: bounding box of hull equals bounding box of input.
func TestConvexHullPreservesBoundingBox(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{int64(rng.Intn(1000)), int64(rng.Intn(1000))}
		}
		return BoundingBox(ConvexHull(pts)) == BoundingBox(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRectCorners(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	c := r.Corners()
	want := [4]Point{{1, 2}, {4, 2}, {4, 6}, {1, 6}}
	if c != want {
		t.Fatalf("Corners = %v want %v", c, want)
	}
}
