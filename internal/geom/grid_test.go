package geom

import (
	"math/rand"
	"testing"
)

// queryDedup collects the distinct ids QueryRect visits.
func queryDedup(g *Grid, r Rect, n int) map[int32]bool {
	seen := map[int32]bool{}
	g.QueryRect(r, func(id int32) { seen[id] = true })
	return seen
}

// TestGridFindsAllOverlaps cross-checks grid queries against a brute-force
// overlap scan: every rectangle overlapping the query must be visited
// (the grid may over-approximate via shared cells, never miss).
func TestGridFindsAllOverlaps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := Rect{Lo: Point{X: -500, Y: -500}, Hi: Point{X: 9500, Y: 9500}}
	for trial := 0; trial < 50; trial++ {
		nx := 1 + rng.Intn(12)
		ny := 1 + rng.Intn(12)
		g := NewGrid(bounds, nx, ny)
		n := 1 + rng.Intn(80)
		rects := make([]Rect, n)
		for i := range rects {
			// Include out-of-bounds and degenerate rectangles.
			lo := Point{X: int64(rng.Intn(12000) - 1500), Y: int64(rng.Intn(12000) - 1500)}
			rects[i] = Rect{Lo: lo, Hi: Point{X: lo.X + int64(rng.Intn(2000)), Y: lo.Y + int64(rng.Intn(2000))}}
			g.InsertRect(int32(i), rects[i])
		}
		for q := 0; q < 20; q++ {
			lo := Point{X: int64(rng.Intn(12000) - 1500), Y: int64(rng.Intn(12000) - 1500)}
			query := Rect{Lo: lo, Hi: Point{X: lo.X + int64(rng.Intn(3000)), Y: lo.Y + int64(rng.Intn(3000))}}
			seen := queryDedup(g, query, n)
			for i, r := range rects {
				if r.Overlaps(query) && !seen[int32(i)] {
					t.Fatalf("grid %dx%d missed rect %v for query %v", nx, ny, r, query)
				}
			}
		}
	}
}

func TestGridDegenerateBounds(t *testing.T) {
	g := NewGrid(Rect{Lo: Point{X: 5, Y: 5}, Hi: Point{X: 5, Y: 5}}, 8, 8)
	g.InsertRect(1, Rect{Lo: Point{X: 0, Y: 0}, Hi: Point{X: 10, Y: 10}})
	if got := queryDedup(g, Rect{Lo: Point{X: 4, Y: 4}, Hi: Point{X: 6, Y: 6}}, 1); !got[1] {
		t.Fatal("degenerate-bounds grid lost the inserted rect")
	}
}
