package paperex

import (
	"testing"

	"repro/internal/geom"
)

func TestDesignShape(t *testing.T) {
	d, regs, err := Design(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(regs) != 6 {
		t.Fatalf("registers = %d want 6", len(regs))
	}
	wantBits := map[string]int{"A": 1, "B": 1, "C": 1, "D": 1, "E": 4, "F": 2}
	for name, bits := range wantBits {
		r := regs[name]
		if r == nil || r.Bits() != bits {
			t.Fatalf("%s bits = %v want %d", name, r, bits)
		}
	}
}

func TestLibraryWidths(t *testing.T) {
	l := Library(false)
	cells := l.Cells()
	if len(cells) != 5 {
		t.Fatalf("cells = %d want 5", len(cells))
	}
	// small8 shrinks only the 8-bit cell.
	s := Library(true)
	var a8, s8 int64
	for _, c := range l.Cells() {
		if c.Bits == 8 {
			a8 = c.Area
		}
	}
	for _, c := range s.Cells() {
		if c.Bits == 8 {
			s8 = c.Area
		}
	}
	if s8 >= a8 {
		t.Fatalf("small8 cell area %d not smaller than %d", s8, a8)
	}
}

func TestGraphMatchesFig1(t *testing.T) {
	d, regs, err := Design(false)
	if err != nil {
		t.Fatal(err)
	}
	g := Graph(d, regs)
	if len(g.Regs) != 6 {
		t.Fatalf("nodes = %d", len(g.Regs))
	}
	edges := 0
	for _, a := range g.Adj {
		edges += len(a)
	}
	if edges/2 != len(Edges) {
		t.Fatalf("edges = %d want %d", edges/2, len(Edges))
	}
	// Regions cover the whole core (the example doesn't constrain them).
	for i, ri := range g.Regs {
		if ri.Region != d.Core {
			t.Fatalf("node %d region = %v", i, ri.Region)
		}
		if ri.ClockPos == (geom.Point{}) {
			t.Fatalf("node %d missing clock position", i)
		}
	}
}

// TestFig2BlockageGeometry pins the placement facts the Fig. 3 weights
// depend on: D's center lies inside the B∪C and B∪C∪F corner hulls but not
// inside A∪B or C∪F.
func TestFig2BlockageGeometry(t *testing.T) {
	d, regs, err := Design(false)
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	hullOf := func(names ...string) []geom.Point {
		var pts []geom.Point
		for _, n := range names {
			c := regs[n].Bounds().Corners()
			pts = append(pts, c[:]...)
		}
		return geom.ConvexHull(pts)
	}
	dCenter := regs["D"].Center()
	if !geom.PolygonContains(hullOf("B", "C"), dCenter) {
		t.Error("D must block the BC polygon")
	}
	if !geom.PolygonContains(hullOf("B", "C", "F"), dCenter) {
		t.Error("D must block the BCF polygon")
	}
	if geom.PolygonContains(hullOf("A", "B"), dCenter) {
		t.Error("D must not block the AB polygon")
	}
	if geom.PolygonContains(hullOf("C", "F"), dCenter) {
		t.Error("D must not block the CF polygon")
	}
	if geom.PolygonContains(hullOf("A", "C", "E"), dCenter) {
		t.Error("D must not block the ACE polygon")
	}
}
