// Package paperex builds the paper's running example — the six registers
// A..F of Fig. 1/Fig. 2 with the {1,2,3,4,8}-bit example library — for use
// by tests and the paperrepro tool. The placement is chosen so that exactly
// the blockage relations of Fig. 3 hold: register D blocks the BC, ABC and
// BCF polygons, and every other candidate polygon is clean.
package paperex

import (
	"fmt"

	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

// Names of the example registers in node order.
var Names = []string{"A", "B", "C", "D", "E", "F"}

// Edges of the Fig. 1 compatibility graph.
var Edges = [][2]string{
	{"A", "B"}, {"A", "C"}, {"A", "D"}, {"A", "E"},
	{"B", "C"}, {"B", "D"}, {"B", "F"},
	{"C", "D"}, {"C", "E"}, {"C", "F"},
}

// Library builds the example's {1,2,3,4,8}-bit register library. When
// small8 is true the 8-bit cell is shrunk so incomplete MBRs pass the §3
// area-per-bit rule (as Fig. 3 assumes); with false, realistic proportions
// make the area rule reject them (the paper's closing remark about AE).
func Library(small8 bool) *lib.Library {
	class := lib.FuncClass{Kind: lib.FlipFlop}
	l := lib.NewLibrary("paper-example")
	for _, bits := range []int{1, 2, 3, 4, 8} {
		w := int64(bits) * 1000
		if small8 && bits == 8 {
			w = 4500
		}
		dp := make([]lib.PinOffset, bits)
		qp := make([]lib.PinOffset, bits)
		for b := 0; b < bits; b++ {
			x := w * int64(2*b+1) / int64(2*bits)
			dp[b] = lib.PinOffset{DX: x, DY: 250}
			qp[b] = lib.PinOffset{DX: x, DY: 750}
		}
		l.MustAdd(&lib.Cell{
			Name:  fmt.Sprintf("R%d", bits),
			Class: class, Bits: bits, Drive: 1,
			Area: w * 1000, Width: w, Height: 1000,
			ClkCap: 1, DPinCap: 0.5, DriveRes: 6, Intrinsic: 50, Setup: 30,
			DPins: dp, QPins: qp, ClkPin: lib.PinOffset{DX: w / 2, DY: 500},
		})
	}
	return l
}

// Design places A..D (1-bit), E (4-bit) and F (2-bit) per Fig. 2.
func Design(small8 bool) (*netlist.Design, map[string]*netlist.Inst, error) {
	l := Library(small8)
	d := netlist.NewDesign("paper-example", geom.RectWH(0, 0, 40000, 20000), l)
	d.SiteW = 100
	d.RowH = 1000
	d.Timing.ClockPeriod = 1000
	clk := d.AddNet("clk", true)
	class := lib.FuncClass{Kind: lib.FlipFlop}
	regs := map[string]*netlist.Inst{}
	add := func(name string, bits int, x, y int64) error {
		r, err := d.AddRegister(name, l.CellsOfWidth(class, bits)[0], geom.Point{X: x, Y: y})
		if err != nil {
			return err
		}
		d.Connect(d.ClockPin(r), clk)
		regs[name] = r
		return nil
	}
	type reg struct {
		name string
		bits int
		x, y int64
	}
	for _, r := range []reg{
		{"A", 1, 10000, 3000},
		{"B", 1, 13000, 3000},
		{"C", 1, 13000, 0},
		{"D", 1, 13200, 1500},
		{"E", 4, 5000, 1000},
		{"F", 2, 15000, 2000},
	} {
		if err := add(r.name, r.bits, r.x, r.y); err != nil {
			return nil, nil, err
		}
	}
	return d, regs, nil
}

// Graph wires the Fig. 1 compatibility graph by hand. Regions are the whole
// core — the example exercises weighting and selection, not region
// derivation.
func Graph(d *netlist.Design, regs map[string]*netlist.Inst) *compat.Graph {
	g := &compat.Graph{Excluded: map[netlist.InstID]compat.NotComposableReason{}}
	idx := map[string]int{}
	for i, n := range Names {
		in := regs[n]
		g.Regs = append(g.Regs, &compat.RegInfo{
			Inst: in, Region: d.Core, ClockPos: in.Center(),
		})
		idx[n] = i
	}
	g.Adj = make([][]int, len(Names))
	for _, e := range Edges {
		u, v := idx[e[0]], idx[e[1]]
		g.Adj[u] = append(g.Adj[u], v)
		g.Adj[v] = append(g.Adj[v], u)
	}
	return g
}
