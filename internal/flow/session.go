package flow

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// Session is a long-lived flow instance: the design, its scan plan and the
// six retained engines, held together so edits can stream in and
// measurements stream out with O(touched) incremental cost per request.
// It is the in-memory state of one composition-server tenant; Run is a
// thin one-shot wrapper that creates a Session, drives the paper's flow
// and closes it, so every batch oracle pinning Run also pins the Session.
//
// A Session is NOT safe for concurrent use. Callers that share one across
// goroutines (internal/serve) must serialize mutating calls (Apply,
// Measure, ComposePass) and may only run read-only calls (Engines,
// DumpState, Design) concurrently with each other.
type Session struct {
	d    *netlist.Design
	plan *scan.Plan
	cfg  Config
	engs *engines

	// passSeq numbers ComposePass invocations so MBR names stay unique
	// across a session's lifetime (the same scheme Run uses across
	// Config.Passes).
	passSeq int

	// splitGroups accumulates what DecomposePass split so RestorePass can
	// re-merge the leftovers; restoredGroups offsets restore-merge names
	// across repeated bank/debank rounds.
	splitGroups    []splitGroup
	restoredGroups int
	// slackCursor/slackSeen track the session's read position in the STA
	// engine's changed-slack feed (victim selection for DecomposePass).
	slackCursor uint64
	slackSeen   bool

	prevCap int
	capSet  bool
	closed  bool
}

// NewSession validates the config, resets the design's touched rings,
// builds the retained engines and attaches the clock trees. The design
// must be placed and legal (bench.Generate output qualifies). Close the
// session when done to restore the design's touched-ring capacity.
func NewSession(d *netlist.Design, plan *scan.Plan, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Session{d: d, plan: plan, cfg: cfg}
	if cfg.TouchedLogCap > 0 {
		s.prevCap = d.TouchedLogCap()
		s.capSet = true
		d.SetTouchedLogCap(cfg.TouchedLogCap)
	}
	// The engines all start invalid (their first looks are full rebuilds),
	// so whatever the rings recorded before this point — design
	// construction, most commonly — only wastes their capacity. Start the
	// session with the full ring budget.
	d.ResetTouchedLog()
	s.engs = newEngines(d, plan, cfg)
	if err := s.engs.cts.Attach(); err != nil {
		s.Close()
		return nil, fmt.Errorf("flow: base CTS: %w", err)
	}
	return s, nil
}

// Design returns the session's design.
func (s *Session) Design() *netlist.Design { return s.d }

// Plan returns the session's scan plan (may be nil).
func (s *Session) Plan() *scan.Plan { return s.plan }

// Config returns the config the session was created with.
func (s *Session) Config() Config { return s.cfg }

// Engines returns the uniform engine.Retained contract view of the
// retained engines, keyed "sta", "compat", "cts", "metrics", "route",
// "compose".
func (s *Session) Engines() map[string]engine.Summary {
	return s.engs.summaries()
}

// Epoch returns the design's current edit epoch.
func (s *Session) Epoch() uint64 { return s.d.Epoch() }

// Measure folds pending edits into the retained clock trees and snapshots
// the Table 1 metrics of the design's current state. After k edits it
// costs O(k), not O(design): every value is served by a retained engine's
// delta path. Note the measurement itself advances retained state (the
// tree update mutates the clock network), so a stream of edits and
// measures is deterministic as a *sequence* — replaying the same ops in
// the same order reproduces the same bytes.
func (s *Session) Measure() (Metrics, error) {
	if s.closed {
		return Metrics{}, fmt.Errorf("flow: session closed")
	}
	if err := s.engs.cts.Update(); err != nil {
		return Metrics{}, fmt.Errorf("flow: CTS update: %w", err)
	}
	return measure(s.d, s.engs, s.cfg)
}

// MeasureCanonical is Measure after canonicalizing the clock trees: the
// trees are left exactly as a batch build of the current design would
// leave them, so the metrics are byte-comparable with a one-shot batch
// flow regardless of the session's edit history. It pays for a tree
// rebuild; in-loop measurement uses the cheap Measure.
func (s *Session) MeasureCanonical() (Metrics, error) {
	if s.closed {
		return Metrics{}, fmt.Errorf("flow: session closed")
	}
	if err := s.engs.cts.Canonicalize(); err != nil {
		return Metrics{}, fmt.Errorf("flow: CTS canonicalize: %w", err)
	}
	return measure(s.d, s.engs, s.cfg)
}

// ComposePass runs one incremental MBR composition pass over the retained
// compatibility graph (timing under ideal clocks, as post-place
// composition is analyzed before tree synthesis) and folds the merges
// into the retained clock trees. MBR names are unique across a session's
// passes, following Run's naming scheme.
func (s *Session) ComposePass() (*core.Result, error) {
	if s.closed {
		return nil, fmt.Errorf("flow: session closed")
	}
	opts := s.composeOpts()
	if s.passSeq > 0 {
		prefix := opts.NamePrefix
		if prefix == "" {
			prefix = "mbrc"
		}
		opts.NamePrefix = fmt.Sprintf("%s_p%d", prefix, s.passSeq+1)
	}
	s.engs.sta.SetIdealClocks(true)
	defer s.engs.sta.SetIdealClocks(false)
	cres, err := s.composePass(opts)
	if err != nil {
		return nil, fmt.Errorf("flow: compose: %w", err)
	}
	s.passSeq++
	if len(cres.MBRs) > 0 {
		if err := s.engs.cts.Update(); err != nil {
			return nil, fmt.Errorf("flow: CTS update after compose: %w", err)
		}
	}
	return cres, nil
}

// composeOpts resolves the session's composition options: the global
// worker override and the clock-release hook the retained trees require
// before a merge.
func (s *Session) composeOpts() core.Options {
	opts := s.cfg.Compose
	if s.cfg.Workers != 0 {
		opts.Workers = s.cfg.Workers
	}
	// Merging registers that sit under different tree leaves would fail the
	// merge's control-net agreement check; the engine releases each group's
	// clock pins back to the domain root just before the merge, and the
	// next tree update re-parents the MBR under a leaf.
	opts.ReleaseClocks = s.engs.cts.ReleaseClocks
	return opts
}

// composePass runs one composition pass with the given options against
// the retained engines. It does not touch the STA clock mode or the clock
// trees — Run and ComposePass own that sequencing.
func (s *Session) composePass(opts core.Options) (*core.Result, error) {
	res, err := s.engs.sta.Run()
	if err != nil {
		return nil, err
	}
	g := s.engs.cg.Update(res)
	maxNodes := opts.MaxSubgraphNodes
	if maxNodes <= 0 {
		maxNodes = 30
	}
	subs, hints := s.engs.cg.SubgraphsHinted(maxNodes)
	return s.engs.comp.Compose(g, s.plan, subs, hints, opts)
}

// DumpState writes the session's observable state as deterministic bytes:
// the design JSON, the scan plan JSON and the useful-skew assignments in
// instance-ID order. Two sessions whose DumpState bytes match are
// observationally identical — every subsequent identical op sequence
// produces identical reports. It is the byte-identity key of the
// snapshot/restore oracle (internal/serve).
func (s *Session) DumpState(w io.Writer) error {
	if err := s.d.WriteJSON(w); err != nil {
		return err
	}
	if s.plan != nil {
		if err := s.plan.WriteJSON(w, s.d); err != nil {
			return err
		}
	}
	var skewed []*netlist.Inst
	s.d.Insts(func(in *netlist.Inst) {
		if s.engs.sta.Skew(in.ID) != 0 {
			skewed = append(skewed, in)
		}
	})
	sort.Slice(skewed, func(i, j int) bool { return skewed[i].ID < skewed[j].ID })
	for _, in := range skewed {
		if _, err := fmt.Fprintf(w, "skew %s %s\n", in.Name,
			strconv.FormatFloat(s.engs.sta.Skew(in.ID), 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// Invalidate drops every retained engine's cached state (engine.Retained
// contract). The session stays usable — the next Measure pays for full
// rebuilds. Eviction paths call this so a dropped session releases its
// derived state deterministically.
func (s *Session) Invalidate() {
	if s.closed {
		return
	}
	s.engs.sta.Invalidate()
	s.engs.cg.Invalidate()
	s.engs.met.Invalidate()
	s.engs.rt.Invalidate()
	s.engs.comp.Invalidate()
	// The clock-tree engine's Invalidate tears the realized trees out of
	// the design (reattaching sinks to their roots) — the pre-CTS state a
	// fresh session would attach from.
	s.engs.cts.Invalidate()
}

// Close restores the design's touched-ring capacity and marks the session
// closed. It does not tear down the clock trees: the design keeps the
// realized state, exactly as Run leaves it.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.capSet {
		s.d.SetTouchedLogCap(s.prevCap)
	}
}
