package flow

import (
	"testing"

	"repro/internal/bench"
)

// runMultiPass runs a Passes=3 flow at the given worker count and returns
// the report.
func runMultiPass(t *testing.T, workers int) *Report {
	t.Helper()
	b, err := bench.Generate(bench.D2(bench.ProfileOpts{Scale: 250}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.Passes = 3
	rep, err := Run(b.Design, b.Plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Design.Validate(); err != nil {
		t.Fatalf("multi-pass flow left design invalid: %v", err)
	}
	return rep
}

// TestMultiPassFlow exercises Config.Passes: the retained engine serves
// every pass, later passes never increase the register count, and the
// canonical report stays byte-identical across worker counts.
func TestMultiPassFlow(t *testing.T) {
	base := runMultiPass(t, 1)
	if base.Compose == nil {
		t.Fatal("first pass composed nothing")
	}
	st := base.CompatStats
	if st.Updates < 3 {
		t.Fatalf("engine should have served every pass and measure: %+v", st)
	}
	if st.Deltas == 0 {
		t.Fatalf("multi-pass flow never took the delta path: %+v", st)
	}
	prev := base.Compose.RegsAfter
	for i, c := range base.ExtraPasses {
		if c.RegsBefore != prev {
			t.Fatalf("pass %d starts from %d regs, previous ended at %d", i+2, c.RegsBefore, prev)
		}
		if c.RegsAfter > c.RegsBefore {
			t.Fatalf("pass %d increased register count %d -> %d", i+2, c.RegsBefore, c.RegsAfter)
		}
		prev = c.RegsAfter
	}

	want := base.Canonical()
	for _, workers := range []int{2, 4} {
		got := runMultiPass(t, workers).Canonical()
		if got != want {
			t.Fatalf("multi-pass report with Workers=%d differs from Workers=1:\n%s",
				workers, firstDiff(want, got))
		}
	}
}

// TestSinglePassMatchesLegacyDefault pins that Passes=0 and Passes=1 are
// the same flow (the golden files pin the actual bytes).
func TestSinglePassMatchesLegacyDefault(t *testing.T) {
	spec := bench.D3(bench.ProfileOpts{Scale: 300})
	runWith := func(passes int) string {
		b, err := bench.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Passes = passes
		rep, err := Run(b.Design, b.Plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Canonical()
	}
	if a, b := runWith(0), runWith(1); a != b {
		t.Fatalf("Passes=0 and Passes=1 reports differ:\n%s", firstDiff(a, b))
	}
}

// TestReportCarriesCompatStats sanity-checks the stats surfaced on the
// report for the default single-pass flow.
func TestReportCarriesCompatStats(t *testing.T) {
	b := genSmall(t, 4)
	cfg := DefaultConfig()
	rep, err := Run(b.Design, b.Plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.CompatStats
	// Base measure, compose, final measure: at least three updates.
	if st.Updates < 3 {
		t.Fatalf("expected ≥3 engine updates, got %+v", st)
	}
	if st.Rebuilds == 0 {
		t.Fatalf("CTS churn must force at least one full sweep: %+v", st)
	}
	if st.LastKind == "" {
		t.Fatal("missing LastKind")
	}
}
