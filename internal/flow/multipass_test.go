package flow

import (
	"testing"

	"repro/internal/bench"
)

// runMultiPass runs a Passes=3 flow at the given worker count and returns
// the report.
func runMultiPass(t *testing.T, workers int) *Report {
	t.Helper()
	b, err := bench.Generate(bench.D2(bench.ProfileOpts{Scale: 250}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.Passes = 3
	rep, err := Run(b.Design, b.Plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Design.Validate(); err != nil {
		t.Fatalf("multi-pass flow left design invalid: %v", err)
	}
	return rep
}

// TestMultiPassFlow exercises Config.Passes: the retained engine serves
// every pass, later passes never increase the register count, and the
// canonical report stays byte-identical across worker counts.
func TestMultiPassFlow(t *testing.T) {
	base := runMultiPass(t, 1)
	if base.Compose == nil {
		t.Fatal("first pass composed nothing")
	}
	st := base.CompatStats
	if st.Updates < 3 {
		t.Fatalf("engine should have served every pass and measure: %+v", st)
	}
	if st.Deltas == 0 {
		t.Fatalf("multi-pass flow never took the delta path: %+v", st)
	}
	prev := base.Compose.RegsAfter
	for i, c := range base.ExtraPasses {
		if c.RegsBefore != prev {
			t.Fatalf("pass %d starts from %d regs, previous ended at %d", i+2, c.RegsBefore, prev)
		}
		if c.RegsAfter > c.RegsBefore {
			t.Fatalf("pass %d increased register count %d -> %d", i+2, c.RegsBefore, c.RegsAfter)
		}
		prev = c.RegsAfter
	}

	want := base.Canonical()
	for _, workers := range []int{2, 4} {
		got := runMultiPass(t, workers).Canonical()
		if got != want {
			t.Fatalf("multi-pass report with Workers=%d differs from Workers=1:\n%s",
				workers, firstDiff(want, got))
		}
	}
}

// TestSinglePassMatchesLegacyDefault pins that Passes=0 and Passes=1 are
// the same flow (the golden files pin the actual bytes).
func TestSinglePassMatchesLegacyDefault(t *testing.T) {
	spec := bench.D3(bench.ProfileOpts{Scale: 300})
	runWith := func(passes int) string {
		b, err := bench.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Passes = passes
		rep, err := Run(b.Design, b.Plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Canonical()
	}
	if a, b := runWith(0), runWith(1); a != b {
		t.Fatalf("Passes=0 and Passes=1 reports differ:\n%s", firstDiff(a, b))
	}
}

// TestReportCarriesEngineStats sanity-checks the retained-engine stats
// surfaced on the report for the default single-pass flow.
func TestReportCarriesEngineStats(t *testing.T) {
	b := genSmall(t, 4)
	cfg := DefaultConfig()
	rep, err := Run(b.Design, b.Plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.CompatStats
	// Base measure, compose, final measure: at least three updates.
	if st.Updates < 3 {
		t.Fatalf("expected ≥3 engine updates, got %+v", st)
	}
	// Clock-tree maintenance runs in its own edit class now; its churn
	// must never evict the flow-class touched log.
	if st.TouchedOverflows != 0 {
		t.Fatalf("CTS churn overflowed the flow touched ring: %+v", st)
	}
	if st.LastKind == "" {
		t.Fatal("missing LastKind")
	}
	ct := rep.CTSStats
	if ct.Attaches == 0 {
		t.Fatalf("retained clock-tree engine never attached: %+v", ct)
	}
	if rep.Compose != nil && len(rep.Compose.MBRs) > 0 && ct.Deltas == 0 {
		t.Fatalf("composition happened but no CTS delta update ran: %+v", ct)
	}
	if len(rep.Engines) != 6 {
		t.Fatalf("expected summaries for sta/compat/cts/metrics/route/compose, got %v", rep.Engines)
	}
	for name, s := range rep.Engines {
		if s.Updates == 0 || s.LastKind == "" {
			t.Fatalf("engine %q reported no activity: %+v", name, s)
		}
	}
}

// TestFlowRingNeverOverflows is the edit-class-scoping regression test: a
// two-pass flow — base CTS attach, two composition passes each followed by
// a delta tree update, and a final canonicalizing rebuild — must never
// overflow the flow-class touched ring at the default capacity. Before
// scoping, the clock-tree churn alone blew through the ring every pass.
// Shrinking the ring via Config.TouchedLogCap must degrade the engines to
// their full paths (overflows observed) without changing a byte of the
// report.
func TestFlowRingNeverOverflows(t *testing.T) {
	run := func(cap int) *Report {
		b, err := bench.Generate(bench.D2(bench.ProfileOpts{Scale: 250}))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Passes = 2
		cfg.TouchedLogCap = cap
		before := b.Design.TouchedLogCap()
		rep, err := Run(b.Design, b.Plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Design.TouchedLogCap(); got != before {
			t.Fatalf("flow must restore the design's ring capacity: %d -> %d", before, got)
		}
		return rep
	}
	def := run(0)
	if def.CompatStats.TouchedOverflows != 0 {
		t.Fatalf("default-capacity flow overflowed the flow ring: %+v", def.CompatStats)
	}
	if def.CTSStats.Deltas == 0 {
		t.Fatalf("two-pass flow never delta-maintained the trees: %+v", def.CTSStats)
	}
	tiny := run(16)
	if tiny.CompatStats.TouchedOverflows == 0 {
		t.Fatalf("16-entry ring should overflow under composition edits: %+v", tiny.CompatStats)
	}
	if a, b := def.Canonical(), tiny.Canonical(); a != b {
		t.Fatalf("ring capacity changed the report:\n%s", firstDiff(a, b))
	}
}
