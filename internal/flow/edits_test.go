package flow

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestEditV1DecodeEveryOp pins the compatibility contract: every v1 flat
// record (the retired {"op": ...} wire form old serve journals and
// snapshots carry) decodes to the equivalent v2 envelope.
func TestEditV1DecodeEveryOp(t *testing.T) {
	cases := []struct {
		name string
		v1   string
		want Edit
	}{
		{
			"move",
			`{"op":"move","inst":"r1","x":100,"y":0}`,
			MoveTo("r1", 100, 0),
		},
		{
			"resize",
			`{"op":"resize","inst":"r1","cell":"DFF_X2"}`,
			Resize("r1", "DFF_X2"),
		},
		{
			"skew",
			`{"op":"skew","inst":"r1","skewPS":-12.5}`,
			Skew("r1", -12.5),
		},
		{
			"skew zero (omitted operand)",
			`{"op":"skew","inst":"r1"}`,
			Skew("r1", 0),
		},
		{
			"merge",
			`{"op":"merge","group":["a","b"],"name":"m","cell":"DFF2","x":5,"y":7}`,
			Edit{Merge: &MergeEdit{Group: []string{"a", "b"}, Name: "m", Cell: "DFF2", X: Coord(5), Y: Coord(7)}},
		},
		{
			"merge defaults",
			`{"op":"merge","group":["a","b"],"name":"m"}`,
			MergeGroup("m", "a", "b"),
		},
		{
			"split",
			`{"op":"split","inst":"m","cell":"DFF1"}`,
			Edit{Split: &SplitEdit{Inst: "m", Cell: "DFF1"}},
		},
		{
			"split defaults",
			`{"op":"split","inst":"m"}`,
			SplitInst("m"),
		},
		{
			"connect",
			`{"op":"connect","inst":"r1","pin":"D","bit":2,"net":"n1"}`,
			Edit{Connect: &ConnectEdit{Inst: "r1", Pin: "D", Bit: 2, Net: "n1"}},
		},
		{
			"disconnect",
			`{"op":"disconnect","inst":"r1","pin":"Q"}`,
			Edit{Disconnect: &DisconnectEdit{Inst: "r1", Pin: "Q"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got Edit
			if err := json.Unmarshal([]byte(tc.v1), &got); err != nil {
				t.Fatalf("decode v1: %v", err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("decoded %+v, want %+v", got, tc.want)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("upgraded edit does not validate: %v", err)
			}
		})
	}
}

// TestEditV1DecodeRejectsUnknownOp pins rejection at decode time: a v1
// record with an op the upgrade table does not know could never have been
// journaled, so it is a decode error, not a deferred apply error.
func TestEditV1DecodeRejectsUnknownOp(t *testing.T) {
	for _, raw := range []string{
		`{"op":"frobnicate","inst":"r1"}`,
		`{"op":"","inst":"r1"}`,
	} {
		var e Edit
		err := json.Unmarshal([]byte(raw), &e)
		if err == nil || !strings.Contains(err.Error(), "unknown op") {
			t.Fatalf("decode %s: err = %v, want unknown-op rejection", raw, err)
		}
	}
}

// TestEditV2RoundTrip pins the v2 wire form: marshal emits the tagged
// envelope (never the v1 flat form) and decoding it reproduces the value.
func TestEditV2RoundTrip(t *testing.T) {
	edits := []Edit{
		MoveTo("r1", -3, 9),
		Resize("r1", "DFF_X4"),
		Skew("r2", 17),
		Edit{Merge: &MergeEdit{Group: []string{"a", "b", "c"}, Name: "m", X: Coord(0), Y: Coord(0)}},
		Edit{Split: &SplitEdit{Inst: "m", Cell: "DFF1"}},
		Edit{Connect: &ConnectEdit{Inst: "r1", Pin: "D", Net: "n"}},
		Edit{Disconnect: &DisconnectEdit{Inst: "r1", Pin: "D", Bit: 1}},
	}
	for _, e := range edits {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if strings.Contains(string(data), `"op"`) {
			t.Fatalf("marshal emitted a v1 record: %s", data)
		}
		if !strings.Contains(string(data), `"`+e.Op()+`"`) {
			t.Fatalf("marshal of %s edit lacks its tag: %s", e.Op(), data)
		}
		var got Edit
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("decode v2 %s: %v", data, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip %s: got %+v, want %+v", data, got, e)
		}
	}
}

// TestEditValidateMatrix pins every payload's wire-level shape checks plus
// the envelope rules (exactly one op).
func TestEditValidateMatrix(t *testing.T) {
	bad := []struct {
		name string
		e    Edit
	}{
		{"empty envelope", Edit{}},
		{"two ops", Edit{Skew: &SkewEdit{Inst: "r"}, Resize: &ResizeEdit{Inst: "r", Cell: "c"}}},
		{"move no inst", Edit{Move: &MoveEdit{X: Coord(1), Y: Coord(1)}}},
		{"move no x", Edit{Move: &MoveEdit{Inst: "r", Y: Coord(1)}}},
		{"move no y", Edit{Move: &MoveEdit{Inst: "r", X: Coord(1)}}},
		{"resize no inst", Edit{Resize: &ResizeEdit{Cell: "c"}}},
		{"resize no cell", Edit{Resize: &ResizeEdit{Inst: "r"}}},
		{"skew no inst", Edit{Skew: &SkewEdit{SkewPS: 1}}},
		{"merge short group", Edit{Merge: &MergeEdit{Group: []string{"a"}, Name: "m"}}},
		{"merge no name", Edit{Merge: &MergeEdit{Group: []string{"a", "b"}}}},
		{"merge lone x", Edit{Merge: &MergeEdit{Group: []string{"a", "b"}, Name: "m", X: Coord(1)}}},
		{"merge lone y", Edit{Merge: &MergeEdit{Group: []string{"a", "b"}, Name: "m", Y: Coord(1)}}},
		{"split no inst", Edit{Split: &SplitEdit{Cell: "c"}}},
		{"connect no inst", Edit{Connect: &ConnectEdit{Pin: "D", Net: "n"}}},
		{"connect no pin", Edit{Connect: &ConnectEdit{Inst: "r", Net: "n"}}},
		{"connect no net", Edit{Connect: &ConnectEdit{Inst: "r", Pin: "D"}}},
		{"connect negative bit", Edit{Connect: &ConnectEdit{Inst: "r", Pin: "D", Bit: -1, Net: "n"}}},
		{"disconnect no inst", Edit{Disconnect: &DisconnectEdit{Pin: "D"}}},
		{"disconnect no pin", Edit{Disconnect: &DisconnectEdit{Inst: "r"}}},
		{"disconnect negative bit", Edit{Disconnect: &DisconnectEdit{Inst: "r", Pin: "D", Bit: -1}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if tc.e.Validate() == nil {
				t.Fatalf("Validate accepted %+v", tc.e)
			}
		})
	}
	good := []Edit{
		MoveTo("r", 0, 0),
		Resize("r", "c"),
		Skew("r", 0),
		MergeGroup("m", "a", "b"),
		SplitInst("m"),
		Edit{Connect: &ConnectEdit{Inst: "r", Pin: "D", Net: "n"}},
		Edit{Disconnect: &DisconnectEdit{Inst: "r", Pin: "D"}},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Fatalf("Validate rejected %s edit: %v", e.Op(), err)
		}
	}
}

// TestEditCloneDoesNotAlias pins the journal-safety contract: mutating a
// clone's payloads must not reach the original.
func TestEditCloneDoesNotAlias(t *testing.T) {
	orig := Edit{Merge: &MergeEdit{Group: []string{"a", "b"}, Name: "m", X: Coord(1), Y: Coord(2)}}
	cl := orig.Clone()
	cl.Merge.Group[0] = "zz"
	cl.Merge.Name = "changed"
	*cl.Merge.X = 99
	if orig.Merge.Group[0] != "a" || orig.Merge.Name != "m" || *orig.Merge.X != 1 {
		t.Fatalf("clone aliases the original: %+v", orig.Merge)
	}

	mv := MoveTo("r", 5, 6)
	mc := mv.Clone()
	*mc.Move.X = -1
	if *mv.Move.X != 5 {
		t.Fatal("move clone aliases coordinates")
	}

	sp := SplitInst("m")
	sc := sp.Clone()
	sc.Split.Inst = "other"
	if sp.Split.Inst != "m" {
		t.Fatal("split clone aliases the payload")
	}
}

// TestEditOpTag pins the tag names — they are wire contract (the serve
// error envelope and the apply error text name ops by these strings).
func TestEditOpTag(t *testing.T) {
	cases := map[string]Edit{
		"move":       MoveTo("r", 0, 0),
		"resize":     Resize("r", "c"),
		"skew":       Skew("r", 0),
		"merge":      MergeGroup("m", "a", "b"),
		"split":      SplitInst("m"),
		"connect":    {Connect: &ConnectEdit{Inst: "r", Pin: "D", Net: "n"}},
		"disconnect": {Disconnect: &DisconnectEdit{Inst: "r", Pin: "D"}},
	}
	for want, e := range cases {
		if got := e.Op(); got != want {
			t.Fatalf("Op() = %q, want %q", got, want)
		}
	}
	if got := (Edit{}).Op(); got != "" {
		t.Fatalf("empty envelope Op() = %q, want empty", got)
	}
}
