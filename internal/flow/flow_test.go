package flow

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/place"
)

func genSmall(t testing.TB, seed int64) *bench.Result {
	t.Helper()
	spec := bench.Spec{
		Name: "F", Seed: seed,
		NumRegs:           300,
		CombPerReg:        4,
		WidthMix:          map[int]float64{1: 0.5, 2: 0.25, 4: 0.15, 8: 0.1},
		NonComposableFrac: 0.3,
		ClusterSize:       10,
		GateGroups:        3,
		ScanChains:        4,
		OrderedChainFrac:  0.25,
		TargetUtil:        0.5,
		ClockPeriodPS:     1500,
	}
	res, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFullFlowShapes(t *testing.T) {
	b := genSmall(t, 11)
	rep, err := Run(b.Design, b.Plan, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Headline claims of Table 1, as shapes:
	if rep.Ours.TotalRegs >= rep.Base.TotalRegs {
		t.Fatalf("register count must drop: %d → %d", rep.Base.TotalRegs, rep.Ours.TotalRegs)
	}
	drop := 1 - float64(rep.Ours.TotalRegs)/float64(rep.Base.TotalRegs)
	if drop < 0.05 {
		t.Fatalf("register drop %.1f%% too small", drop*100)
	}
	if rep.Ours.ClkCapPF >= rep.Base.ClkCapPF {
		t.Fatalf("clock cap must drop: %.1f → %.1f pF", rep.Base.ClkCapPF, rep.Ours.ClkCapPF)
	}
	if rep.Ours.ClkBufs > rep.Base.ClkBufs {
		t.Fatalf("clock buffers must not grow: %d → %d", rep.Base.ClkBufs, rep.Ours.ClkBufs)
	}
	// "without adding any timing violations": failing endpoints and TNS not
	// meaningfully degraded. Our unbalanced toy CTS adds per-rebuild
	// insertion-delay noise the paper's production CTS doesn't have, so a
	// few endpoints of tolerance are allowed.
	tol := rep.Base.FailingEndpoints/10 + 3
	if rep.Ours.FailingEndpoints > rep.Base.FailingEndpoints+tol {
		t.Fatalf("failing endpoints grew: %d → %d",
			rep.Base.FailingEndpoints, rep.Ours.FailingEndpoints)
	}
	if rep.Ours.TNSNS > rep.Base.TNSNS*1.10+0.01 {
		t.Fatalf("TNS degraded: %.3f → %.3f ns", rep.Base.TNSNS, rep.Ours.TNSNS)
	}
	// Area must not grow meaningfully (MBRs are smaller than their parts).
	if rep.Ours.AreaUM2 > rep.Base.AreaUM2*1.01 {
		t.Fatalf("area grew: %.0f → %.0f µm²", rep.Base.AreaUM2, rep.Ours.AreaUM2)
	}
	if rep.Compose == nil || len(rep.Compose.MBRs) == 0 {
		t.Fatal("expected composed MBRs")
	}
}

func TestFlowLeavesDesignValid(t *testing.T) {
	b := genSmall(t, 12)
	d := b.Design
	if _, err := Run(d, b.Plan, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Plan.Validate(d); err != nil {
		t.Fatal(err)
	}
	// Placement legality: the whole design, CTS buffers included, must be
	// legal after the flow.
	if v := place.CheckLegal(d); len(v) != 0 {
		t.Fatalf("placement violations after flow: %d (first: %v)", len(v), v[0])
	}
}

func TestFlowBaseMetricsSane(t *testing.T) {
	b := genSmall(t, 13)
	rep, err := Run(b.Design, b.Plan, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Base
	if m.TotalRegs != 300 {
		t.Fatalf("TotalRegs = %d", m.TotalRegs)
	}
	if m.CompRegs <= 0 || m.CompRegs >= m.TotalRegs {
		t.Fatalf("CompRegs = %d of %d", m.CompRegs, m.TotalRegs)
	}
	if m.ClkBufs <= 0 {
		t.Fatal("base must have clock buffers")
	}
	if m.ClkCapPF <= 0 || m.AreaUM2 <= 0 || m.WLSigMM <= 0 || m.WLClkMM <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.TotalEndpoints == 0 {
		t.Fatal("no endpoints measured")
	}
}

func TestFlowGreedyVsILP(t *testing.T) {
	runWith := func(m core.Method) *Report {
		b := genSmall(t, 14)
		cfg := DefaultConfig()
		cfg.Compose.Method = m
		rep, err := Run(b.Design, b.Plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ilp := runWith(core.MethodILP)
	greedy := runWith(core.MethodGreedy)
	if ilp.Ours.TotalRegs > greedy.Ours.TotalRegs {
		t.Fatalf("ILP (%d regs) lost to greedy (%d regs)",
			ilp.Ours.TotalRegs, greedy.Ours.TotalRegs)
	}
}

func TestFlowDecomposeExisting(t *testing.T) {
	// A D4-like width mix (8-bit rich): decomposition must unlock extra
	// reductions relative to skipping the 8-bit MBRs.
	spec := bench.Spec{
		Name: "D4ish", Seed: 21,
		NumRegs:           300,
		CombPerReg:        4,
		WidthMix:          map[int]float64{1: 0.15, 2: 0.15, 4: 0.25, 8: 0.45},
		NonComposableFrac: 0.3,
		ClusterSize:       10,
		GateGroups:        3,
		ScanChains:        4,
		OrderedChainFrac:  0.25,
		TargetUtil:        0.5,
		ClockPeriodPS:     1500,
	}
	runWith := func(decompose bool) *Report {
		b, err := bench.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.DecomposeExisting = decompose
		rep, err := Run(b.Design, b.Plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Design.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := b.Plan.Validate(b.Design); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := runWith(false)
	decomp := runWith(true)
	if decomp.DecomposedMBRs == 0 {
		t.Fatal("expected 8-bit MBRs to be decomposed")
	}
	if decomp.RestoredMBRs == 0 {
		t.Fatal("expected leftover bits to be restored")
	}
	// The paper proposes decomposition as future work without evaluating
	// it. Our finding (recorded in EXPERIMENTS.md): with the restore pass,
	// decompose-and-recompose lands within a few percent of not
	// decomposing — the bits freed from 8-bit MBRs rarely find better
	// external partners than the MBR they came from, and partially
	// consumed groups leave stranded singles. The test pins structural
	// guarantees (validity above) and the documented damage bounds.
	if decomp.Ours.ClkCapPF > plain.Ours.ClkCapPF*1.25 {
		t.Fatalf("decomposition clock-cap damage beyond documented bound: %.2f vs %.2f pF",
			decomp.Ours.ClkCapPF, plain.Ours.ClkCapPF)
	}
	if decomp.Ours.TotalRegs > plain.Base.TotalRegs+plain.Base.TotalRegs/20 {
		t.Fatalf("decomposition register damage beyond documented bound: %d vs base %d",
			decomp.Ours.TotalRegs, plain.Base.TotalRegs)
	}
}

func TestFlowNoSkewNoSizing(t *testing.T) {
	b := genSmall(t, 15)
	cfg := DefaultConfig()
	cfg.UsefulSkew = false
	cfg.Sizing = false
	rep, err := Run(b.Design, b.Plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkewedMBRs != 0 || rep.ResizedMBRs != 0 {
		t.Fatalf("optimizations ran despite being disabled: %+v", rep)
	}
	if rep.Ours.TotalRegs >= rep.Base.TotalRegs {
		t.Fatal("composition alone must still reduce registers")
	}
}
