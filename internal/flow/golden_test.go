package flow

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

// Golden-file regression tests: the canonical report of the default flow on
// three small benchmark profiles is pinned byte-for-byte under testdata/.
// Any drift in a metric, a selected MBR, a weight or a placement decision
// fails the test — the behavioural anchor the parallel refactor (and every
// future one) is verified against.
//
// Regenerate after an intentional behaviour change with:
//
//	go test ./internal/flow -run TestGolden -update
//
// and review the diff like any other code change.

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenScale shrinks the profiles so the three flows run in well under a
// second each while still exercising partitioning, the ILP, scan bookkeeping
// and both optimization passes.
const goldenScale = 200

func goldenSpecs() []bench.Spec {
	o := bench.ProfileOpts{Scale: goldenScale}
	return []bench.Spec{bench.D1(o), bench.D2(o), bench.D3(o)}
}

func TestGoldenReports(t *testing.T) {
	for _, spec := range goldenSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			got := runCanonical(t, spec, 0)
			path := filepath.Join("testdata", "report_"+spec.Name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("report drifted from %s:\n%s\n(rerun with -update only if the change is intentional)",
					path, firstDiff(string(want), got))
			}
		})
	}
}
