// Slack-driven MBR decomposition: the inverse pass that closes the
// bank/debank loop. Where composition merges compatible registers into
// MBRs, decomposition selects merged registers whose slack a later stage
// degraded — victims come from the retained STA engine's changed-slack
// feed, worst cones first — and splits them back into single-bit
// registers so the next composition pass can regroup their bits with
// better neighbours. The legacy Config.DecomposeExisting debank-all
// behavior (split every max-width MBR before the first compose) is the
// All preset of the same pass.
package flow

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/scan"
	"repro/internal/sta"
)

// DecomposeConfig selects the decomposition pass's victims.
type DecomposeConfig struct {
	// Budget bounds how many MBRs one pass may split. 0 with All unset
	// disables the pass.
	Budget int `json:"budget,omitempty"`
	// SlackThresholdPS admits only registers whose worst D/Q pin slack is
	// below this value (0 = only violating registers, the WNS cones).
	SlackThresholdPS float64 `json:"slackThresholdPS,omitempty"`
	// All ignores Budget and the slack rule and splits every movable
	// register at its class's maximum library width — the legacy
	// debank-all preset (Config.DecomposeExisting), most useful before a
	// first compose on designs already rich in max-width MBRs.
	All bool `json:"all,omitempty"`
}

// enabled reports whether the pass would do anything.
func (c DecomposeConfig) enabled() bool { return c.All || c.Budget > 0 }

// DecomposeResult reports one decomposition pass.
type DecomposeResult struct {
	// Victims names the decomposed registers, worst slack first.
	Victims []string
	// Parts counts the single-bit registers created.
	Parts int
	// RegsBefore/RegsAfter is the register count around the pass.
	RegsBefore int
	RegsAfter  int
	// FromSlackFeed reports whether victim selection ran on the STA
	// engine's changed-slack feed (false: full register scan — first pass,
	// feed overflow, or the All preset).
	FromSlackFeed bool
}

// splitGroup remembers one decomposed MBR so leftover bits can be
// restored after recomposition.
type splitGroup struct {
	class    lib.FuncClass
	driveRes float64
	parts    []netlist.InstID
}

// DecomposePass runs one slack-driven decomposition pass with the
// session's configured budget (Config.Decompose). Victims are selected
// from the retained STA engine's changed-slack feed under ideal clocks
// (the composition stage's timing view), worst slack first; each is split
// into single-bit registers that stay on the MBR's footprint so the next
// composition pass sees them as the tight clean group they are. Leftover
// bits a later composition does not re-merge are restored by RestorePass.
func (s *Session) DecomposePass() (*DecomposeResult, error) {
	return s.DecomposePassWith(s.cfg.Decompose)
}

// DecomposePassWith is DecomposePass with an explicit config, the form the
// composition server journals (replay must reproduce the exact pass).
func (s *Session) DecomposePassWith(dcfg DecomposeConfig) (*DecomposeResult, error) {
	if s.closed {
		return nil, fmt.Errorf("flow: session closed")
	}
	if !dcfg.enabled() {
		return nil, fmt.Errorf("flow: decompose: config selects no victims (zero budget)")
	}
	s.engs.sta.SetIdealClocks(true)
	defer s.engs.sta.SetIdealClocks(false)
	return s.decomposePass(dcfg)
}

// decomposePass selects victims and splits them. The caller owns the STA
// clock mode (Run and the public wrappers set ideal clocks, matching the
// composition stage's timing view).
func (s *Session) decomposePass(dcfg DecomposeConfig) (*DecomposeResult, error) {
	d, plan := s.d, s.plan
	res := &DecomposeResult{RegsBefore: len(d.Registers())}

	var victims []*netlist.Inst
	if dcfg.All {
		victims = maxWidthVictims(d)
	} else {
		tres, err := s.engs.sta.Run()
		if err != nil {
			return nil, err
		}
		victims, res.FromSlackFeed = s.slackVictims(dcfg, tres)
	}
	s.slackCursor = s.engs.sta.SlackSeq()

	for _, r := range victims {
		cell := d.Lib.SelectCell(r.RegCell.Class, 1, r.RegCell.DriveRes)
		origID, origName := r.ID, r.Name
		class, drive := r.RegCell.Class, r.RegCell.DriveRes
		parts, err := d.SplitRegister(r, cell)
		if err != nil {
			return nil, err
		}
		ids := make([]netlist.InstID, len(parts))
		for i, p := range parts {
			ids[i] = p.ID
		}
		if plan != nil {
			if err := plan.ApplySplit(origID, ids); err != nil {
				return nil, err
			}
		}
		s.splitGroups = append(s.splitGroups, splitGroup{class: class, driveRes: drive, parts: ids})
		res.Victims = append(res.Victims, origName)
		res.Parts += len(parts)
	}
	// Deliberately NOT legalized here: the split bits sit on (and slightly
	// past) the old MBR footprint, so candidate enumeration sees them as
	// the tight clean groups they are. Scattering them first would strand
	// bits behind blocked polygons. RestorePass legalizes whatever
	// survives after recomposition.
	res.RegsAfter = len(d.Registers())
	return res, nil
}

// slackVictims picks the decompose victims: movable multi-bit registers
// with a 1-bit cell available whose worst D/Q pin slack is below the
// threshold, worst first, up to the budget. Candidates come from the STA
// engine's changed-slack feed when it covers the interval since the last
// decompose pass; a cold or overflowed feed falls back to scanning every
// register (exactly what the feed's incomplete flag prescribes).
func (s *Session) slackVictims(dcfg DecomposeConfig, tres *sta.Results) ([]*netlist.Inst, bool) {
	d := s.d
	var cands []*netlist.Inst
	changed, complete := s.engs.sta.RegsWithChangedSlack(s.slackCursor)
	fromFeed := complete && s.slackSeen
	if fromFeed {
		seen := make(map[netlist.InstID]bool, len(changed))
		for _, id := range changed {
			if seen[id] {
				continue
			}
			seen[id] = true
			if in := d.Inst(id); in != nil {
				cands = append(cands, in)
			}
		}
	} else {
		cands = d.Registers()
	}
	s.slackSeen = true

	type scored struct {
		in    *netlist.Inst
		slack float64
	}
	var pool []scored
	for _, in := range cands {
		if in.Kind != netlist.KindReg || in.Fixed || in.SizeOnly || in.Bits() < 2 {
			continue
		}
		if d.Lib.SelectCell(in.RegCell.Class, 1, in.RegCell.DriveRes) == nil {
			continue
		}
		worst := math.Min(sta.RegDSlack(d, tres, in), sta.RegQSlack(d, tres, in))
		if worst >= dcfg.SlackThresholdPS {
			continue
		}
		pool = append(pool, scored{in, worst})
	}
	// Worst slack first; instance ID breaks ties so the pass is
	// deterministic regardless of feed order.
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].slack != pool[j].slack {
			return pool[i].slack < pool[j].slack
		}
		return pool[i].in.ID < pool[j].in.ID
	})
	if dcfg.Budget > 0 && len(pool) > dcfg.Budget {
		pool = pool[:dcfg.Budget]
	}
	out := make([]*netlist.Inst, len(pool))
	for i, sc := range pool {
		out[i] = sc.in
	}
	return out, fromFeed
}

// maxWidthVictims is the All preset's selection: every movable register
// sitting at its class's maximum library width with a 1-bit cell
// available (the legacy DecomposeExisting semantics).
func maxWidthVictims(d *netlist.Design) []*netlist.Inst {
	var victims []*netlist.Inst
	for _, r := range d.Registers() {
		if r.Fixed || r.SizeOnly || r.Bits() < 2 {
			continue
		}
		class := r.RegCell.Class
		if r.Bits() != d.Lib.MaxWidth(class) {
			continue
		}
		if len(d.Lib.CellsOfWidth(class, 1)) == 0 {
			continue
		}
		victims = append(victims, r)
	}
	return victims
}

// RestorePass re-merges the decomposed bits that recomposition left as
// single-bit registers, so decomposition can never end worse than keeping
// the original MBRs: survivors of one original MBR are grouped into
// scan-compatible runs and merged into the smallest fitting width, then
// everything the decomposition stranded is legalized. It consumes the
// session's accumulated split groups; returns the number of restore
// merges.
func (s *Session) RestorePass() (int, error) {
	if s.closed {
		return 0, fmt.Errorf("flow: session closed")
	}
	groups := s.splitGroups
	s.splitGroups = nil
	// Restore-merge names carry the group index offset by how many groups
	// earlier RestorePass calls consumed, so repeated bank/debank rounds in
	// one session never collide on a surviving restored_* name.
	base := s.restoredGroups
	s.restoredGroups += len(groups)
	return restoreSplitLeftovers(s.d, s.plan, groups, s.engs.cts.ReleaseClocks, base)
}

// restoreSplitLeftovers implements RestorePass on explicit state (runFlow
// drives it directly with the groups its decompose stage produced and
// nameBase 0, preserving the legacy restored_<group>_<n> names).
func restoreSplitLeftovers(d *netlist.Design, plan *scan.Plan, groups []splitGroup, release func([]*netlist.Inst), nameBase int) (int, error) {
	restored := 0
	var created []*netlist.Inst
	for gi, g := range groups {
		var survivors []*netlist.Inst
		for _, id := range g.parts {
			if in := d.Inst(id); in != nil && in.Bits() == 1 {
				survivors = append(survivors, in)
			}
		}
		// Chunk survivors into scan-compatible runs of at most maxWidth.
		maxW := d.Lib.MaxWidth(g.class)
		for len(survivors) >= 2 {
			run := []*netlist.Inst{survivors[0]}
			rest := survivors[1:]
			for len(rest) > 0 && len(run) < maxW {
				cand := append(run, rest[0])
				if plan != nil {
					ids := make([]netlist.InstID, len(cand))
					for i, in := range cand {
						ids[i] = in.ID
					}
					if !plan.GroupCompatible(ids) {
						break
					}
				}
				run = cand
				rest = rest[1:]
			}
			survivors = rest
			if len(run) < 2 {
				continue
			}
			width, ok := d.Lib.SmallestWidthAtLeast(g.class, len(run))
			if !ok {
				continue
			}
			cell := d.Lib.SelectCell(g.class, width, g.driveRes)
			var sx, sy int64
			for _, in := range run {
				sx += in.Pos.X
				sy += in.Pos.Y
			}
			pos := geomSnap(d, sx/int64(len(run)), sy/int64(len(run)))
			ids := make([]netlist.InstID, len(run))
			for i, in := range run {
				ids[i] = in.ID
			}
			if release != nil {
				release(run)
			}
			mr, err := d.MergeRegisters(run, cell, fmt.Sprintf("restored_%d_%d", nameBase+gi, restored), pos)
			if err != nil {
				return restored, err
			}
			if plan != nil {
				if err := plan.ApplyMerge(ids, mr.MBR.ID); err != nil {
					return restored, err
				}
			}
			created = append(created, mr.MBR)
			restored++
		}
	}
	// Legalize everything the decomposition left behind: the restore
	// merges and any stranded single bits (which were never given legal
	// sites after the split).
	for _, g := range groups {
		for _, id := range g.parts {
			if in := d.Inst(id); in != nil {
				created = append(created, in)
			}
		}
	}
	place.LegalizeIncremental(d, created)
	return restored, nil
}
