package flow

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
)

// runCanonical generates the spec's design fresh (bench generation is
// seeded, so identical specs give identical designs), runs the full flow
// with the given worker count and returns the canonical report bytes.
func runCanonical(t *testing.T, spec bench.Spec, workers int) string {
	t.Helper()
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = workers
	rep, err := Run(b.Design, b.Plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Canonical()
}

// TestParallelDeterminism pins the contract of the parallel composition
// pipeline: the report is byte-identical for every worker count. The D1
// profile drives it (the paper's headline design); short mode shrinks the
// design so `go test -short ./...` stays fast.
func TestParallelDeterminism(t *testing.T) {
	scale := 100
	if testing.Short() {
		scale = 300
	}
	spec := bench.D1(bench.ProfileOpts{Scale: scale})
	want := runCanonical(t, spec, 1)
	if want == "" {
		t.Fatal("empty canonical report")
	}
	for _, workers := range []int{2, 8, runtime.GOMAXPROCS(0)} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := runCanonical(t, spec, workers)
			if got != want {
				t.Fatalf("report with Workers=%d differs from Workers=1:\n%s",
					workers, firstDiff(want, got))
			}
		})
	}
}

// TestParallelDeterminismAllProfiles extends the byte-identity check to all
// five benchmark profiles (acceptance: Workers=8 ≡ Workers=1 everywhere).
func TestParallelDeterminismAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestParallelDeterminism in short mode")
	}
	for _, spec := range bench.All(bench.ProfileOpts{Scale: 150}) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			seq := runCanonical(t, spec, 1)
			par := runCanonical(t, spec, 8)
			if seq != par {
				t.Fatalf("%s: Workers=8 report differs from Workers=1:\n%s",
					spec.Name, firstDiff(seq, par))
			}
		})
	}
}

// TestShardedComposeDeterminismAllProfiles is the scheduler's acceptance
// oracle: on all five benchmark profiles, the work-stealing shard scheduler
// plus parallel Bron–Kerbosch (forced onto every multi-node subgraph via
// ParallelCliqueThreshold=2) produce a report byte-identical to the serial
// path at worker counts {2, NumCPU}. Runs under the -race CI gate.
func TestShardedComposeDeterminismAllProfiles(t *testing.T) {
	scale := 150
	if testing.Short() {
		scale = 400
	}
	run := func(spec bench.Spec, workers int) string {
		t.Helper()
		b, err := bench.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Compose.ParallelCliqueThreshold = 2
		rep, err := Run(b.Design, b.Plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Canonical()
	}
	for _, spec := range bench.All(bench.ProfileOpts{Scale: scale}) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want := run(spec, 1)
			if want == "" {
				t.Fatal("empty canonical report")
			}
			for _, workers := range []int{2, runtime.NumCPU()} {
				if got := run(spec, workers); got != want {
					t.Fatalf("%s: Workers=%d report differs from Workers=1:\n%s",
						spec.Name, workers, firstDiff(want, got))
				}
			}
		})
	}
}

// firstDiff renders the first differing line of two canonical reports.
func firstDiff(a, b string) string {
	if a == b {
		return "(identical)"
	}
	la, lb := splitLines(a), splitLines(b)
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  seq: %s\n  par: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(la), len(lb))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
