package flow

import (
	"fmt"
	"strconv"
	"strings"
)

// Canonical renders the report as a deterministic, byte-comparable string:
// every metric and composition outcome, excluding wall-clock times and the
// worker count (the two quantities that legitimately vary between runs of
// the same flow). Floats are formatted with strconv's shortest round-trip
// representation, so two canonical strings are equal exactly when every
// number is bit-identical.
//
// It is the comparison key of the parallel-determinism harness (a Workers=8
// run must produce the same bytes as Workers=1) and the serialization the
// golden-file regression tests pin.
func (r *Report) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s\n", r.Design)
	writeMetrics(&b, "base", r.Base)
	writeMetrics(&b, "ours", r.Ours)
	fmt.Fprintf(&b, "skewed %d resized %d decomposed %d restored %d\n",
		r.SkewedMBRs, r.ResizedMBRs, r.DecomposedMBRs, r.RestoredMBRs)
	if c := r.Compose; c != nil {
		fmt.Fprintf(&b, "compose regs %d->%d composable %d subgraphs %d candidates %d truncated %d\n",
			c.RegsBefore, c.RegsAfter, c.ComposableRegs, c.Subgraphs, c.Candidates, c.TruncatedSubgraphs)
		fmt.Fprintf(&b, "compose ilpnodes %d objective %s incomplete %d legalized moved %d failed %d\n",
			c.ILPNodes, ftoa(c.ObjectiveSum), c.IncompleteMBRs, c.LegalizationMoved, c.LegalizationFailed)
		for _, m := range c.MBRs {
			members := make([]string, len(m.Members))
			for i, id := range m.Members {
				members[i] = strconv.Itoa(int(id))
			}
			fmt.Fprintf(&b, "mbr %s cell %s bits %d incomplete %v pos %d,%d w %s members %s\n",
				m.Inst.Name, m.Cell.Name, m.Bits, m.Incomplete,
				m.Pos.X, m.Pos.Y, ftoa(m.Weight), strings.Join(members, ","))
		}
	}
	// Multi-pass runs (Config.Passes > 1) append one section per extra
	// pass; single-pass canonical output is unchanged so the pinned golden
	// files stay valid.
	for i, c := range r.ExtraPasses {
		p := i + 2
		fmt.Fprintf(&b, "pass%d regs %d->%d composable %d subgraphs %d candidates %d objective %s\n",
			p, c.RegsBefore, c.RegsAfter, c.ComposableRegs, c.Subgraphs,
			c.Candidates, ftoa(c.ObjectiveSum))
		for _, m := range c.MBRs {
			members := make([]string, len(m.Members))
			for j, id := range m.Members {
				members[j] = strconv.Itoa(int(id))
			}
			fmt.Fprintf(&b, "pass%d mbr %s cell %s bits %d incomplete %v pos %d,%d w %s members %s\n",
				p, m.Inst.Name, m.Cell.Name, m.Bits, m.Incomplete,
				m.Pos.X, m.Pos.Y, ftoa(m.Weight), strings.Join(members, ","))
		}
	}
	return b.String()
}

// Canonical renders one metrics snapshot with the same deterministic,
// byte-comparable formatting Report.Canonical uses. It is the comparison
// key of the serving determinism harness: a measurement served by
// cmd/mbrserved must produce the same bytes as a single-threaded Session
// replay of the same edit stream.
func (m Metrics) Canonical() string {
	var b strings.Builder
	writeMetrics(&b, "m", m)
	return b.String()
}

func writeMetrics(b *strings.Builder, label string, m Metrics) {
	// Field order is fixed by this function, not by reflection, so the
	// serialization never shifts under struct reordering.
	type field struct {
		name string
		val  string
	}
	fields := []field{
		{"area_um2", ftoa(m.AreaUM2)},
		{"cells", strconv.Itoa(m.Cells)},
		{"total_regs", strconv.Itoa(m.TotalRegs)},
		{"comp_regs", strconv.Itoa(m.CompRegs)},
		{"clk_bufs", strconv.Itoa(m.ClkBufs)},
		{"clk_cap_pf", ftoa(m.ClkCapPF)},
		{"tns_ns", ftoa(m.TNSNS)},
		{"wns_ps", ftoa(m.WNSPS)},
		{"failing_ep", strconv.Itoa(m.FailingEndpoints)},
		{"total_ep", strconv.Itoa(m.TotalEndpoints)},
		{"overflow_edges", strconv.Itoa(m.OverflowEdges)},
		{"wl_clk_mm", ftoa(m.WLClkMM)},
		{"wl_sig_mm", ftoa(m.WLSigMM)},
	}
	for _, f := range fields {
		fmt.Fprintf(b, "%s %s %s\n", label, f.name, f.val)
	}
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
