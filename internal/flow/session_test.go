package flow

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
)

// sessionBench generates a small D1 design and opens a session on it.
func sessionBench(t *testing.T, cfg Config) (*Session, *bench.Result) {
	t.Helper()
	res, err := bench.Generate(bench.D1(bench.ProfileOpts{Scale: 200}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(res.Design, res.Plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, res
}

func TestConfigValidateRejectsEachField(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"Workers", func(c *Config) { c.Workers = -1 }},
		{"Passes", func(c *Config) { c.Passes = -2 }},
		{"TouchedLogCap", func(c *Config) { c.TouchedLogCap = -1 }},
		{"STA.Workers", func(c *Config) { c.STA.Workers = -1 }},
		{"Compat.Workers", func(c *Config) { c.Compat.Workers = -3 }},
		{"CTS.Workers", func(c *Config) { c.CTS.Workers = -1 }},
		{"Route.Workers", func(c *Config) { c.Route.Workers = -1 }},
		{"Compose.Workers", func(c *Config) { c.Compose.Workers = -5 }},
		{"UsefulSkewWindowPS", func(c *Config) {
			c.UsefulSkew = true
			c.UsefulSkewWindowPS = -1
		}},
		{"Compat.MaxDeltaFrac", func(c *Config) { c.Compat.MaxDeltaFrac = -0.1 }},
		{"CTS.Tree.RecenterThresholdDBU", func(c *Config) { c.CTS.Tree.RecenterThresholdDBU = -100 }},
		{"Decompose.Budget", func(c *Config) { c.Decompose.Budget = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted bad %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Fatalf("error does not name the field %s: %v", tc.name, err)
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
}

func TestApplyEditOps(t *testing.T) {
	s, _ := sessionBench(t, DefaultConfig())
	var r1, r2 *netlist.Inst
	s.Design().Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindReg || in.Fixed {
			return
		}
		if r1 == nil {
			r1 = in
		} else if r2 == nil && in.RegCell.Class == r1.RegCell.Class {
			r2 = in
		}
	})
	if r1 == nil || r2 == nil {
		t.Fatal("no two movable registers")
	}

	res, err := s.Apply([]Edit{
		MoveTo(r1.Name, r1.Pos.X+500, r1.Pos.Y),
		Skew(r2.Name, 12),
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if res.Applied != 2 {
		t.Fatalf("applied %d, want 2", res.Applied)
	}
	if got := s.Design().InstByName(r1.Name).Pos.Y; got != r1.Pos.Y {
		t.Fatalf("move changed Y: %d", got)
	}

	// Resize to a same-class same-width alternate.
	alts := s.Design().Lib.CellsOfWidth(r1.RegCell.Class, r1.RegCell.Bits)
	if len(alts) > 1 {
		alt := alts[0]
		if alt.Name == r1.RegCell.Name {
			alt = alts[1]
		}
		if _, err := s.Apply([]Edit{Resize(r1.Name, alt.Name)}); err != nil {
			t.Fatalf("resize: %v", err)
		}
		if got := s.Design().InstByName(r1.Name).RegCell.Name; got != alt.Name {
			t.Fatalf("resize left cell %s, want %s", got, alt.Name)
		}
	}
}

func TestApplyStopsAtFirstFailure(t *testing.T) {
	s, _ := sessionBench(t, DefaultConfig())
	var r1 *netlist.Inst
	s.Design().Insts(func(in *netlist.Inst) {
		if r1 == nil && in.Kind == netlist.KindReg && !in.Fixed {
			r1 = in
		}
	})
	epoch0 := s.Epoch()
	res, err := s.Apply([]Edit{
		MoveTo(r1.Name, r1.Pos.X+200, r1.Pos.Y),
		MoveTo("no_such_instance", 1, 1),
		Skew(r1.Name, 9),
	})
	if err == nil {
		t.Fatal("expected error for unknown instance")
	}
	if res.Applied != 1 {
		t.Fatalf("applied %d, want the 1-edit prefix", res.Applied)
	}
	if s.Epoch() == epoch0 {
		t.Fatal("prefix edit should have advanced the epoch")
	}

	// An empty envelope (the decoded form of a v1 record with an op the
	// decoder knows but no payload match, or a hand-built zero Edit) is
	// rejected at validation.
	if _, err := s.Apply([]Edit{{}}); err == nil ||
		!strings.Contains(err.Error(), "no operation") {
		t.Fatalf("empty envelope error = %v", err)
	}
	// An ambiguous envelope (two payloads set) is rejected, too.
	twoOps := Skew(r1.Name, 1)
	twoOps.Move = &MoveEdit{Inst: r1.Name, X: Coord(0), Y: Coord(0)}
	if _, err := s.Apply([]Edit{twoOps}); err == nil ||
		!strings.Contains(err.Error(), "exactly 1") {
		t.Fatalf("ambiguous envelope error = %v", err)
	}
	if _, err := s.Apply([]Edit{MergeGroup("m", r1.Name)}); err == nil {
		t.Fatal("merge with 1 member must fail")
	}
}

// TestRejectedMergeEditIsSideEffectFree pins the validate-then-commit
// contract of the merge edit: a rejected merge must not mutate the design
// at all (the serve journal skips failed edits, so any surviving mutation
// would break snapshot replay). The epoch is the strongest witness — it
// advances on every tracked mutation.
func TestRejectedMergeEditIsSideEffectFree(t *testing.T) {
	s, _ := sessionBench(t, DefaultConfig())
	var regs []*netlist.Inst
	s.Design().Insts(func(in *netlist.Inst) {
		if in.Kind == netlist.KindReg && !in.Fixed && len(regs) < 3 {
			regs = append(regs, in)
		}
	})
	if len(regs) < 3 {
		t.Fatal("need three movable registers")
	}
	epoch0 := s.Epoch()

	cases := []Edit{
		// MBR name collides with a live non-member instance.
		MergeGroup(regs[2].Name, regs[0].Name, regs[1].Name),
		// A group member listed twice.
		MergeGroup("mbr_dup", regs[0].Name, regs[0].Name),
		// Explicit position with only one coordinate.
		{Merge: &MergeEdit{Group: []string{regs[0].Name, regs[1].Name}, Name: "mbr_pos", X: Coord(0)}},
	}
	for _, e := range cases {
		if _, err := s.Apply([]Edit{e}); err == nil {
			t.Fatalf("merge %+v should have been rejected", e)
		}
	}
	for _, r := range regs[:2] {
		if s.Design().InstByName(r.Name) == nil {
			t.Fatalf("rejected merge destroyed %q", r.Name)
		}
	}
	if got := s.Epoch(); got != epoch0 {
		t.Fatalf("rejected merges mutated the design: epoch %d -> %d", epoch0, got)
	}

	// A move without both coordinates is rejected before mutating, too.
	if _, err := s.Apply([]Edit{{Move: &MoveEdit{Inst: regs[0].Name, X: Coord(1)}}}); err == nil {
		t.Fatal("move without y must fail")
	}
	if got := s.Epoch(); got != epoch0 {
		t.Fatal("rejected move mutated the design")
	}
}

// TestSessionMeasureMatchesRunBase pins the wrapper contract: flow.Run's
// Base row is exactly what a fresh session's first Measure reports.
func TestSessionMeasureMatchesRunBase(t *testing.T) {
	gen := func() *bench.Result {
		res, err := bench.Generate(bench.D1(bench.ProfileOpts{Scale: 200}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := gen()
	rep, err := Run(r1.Design, r1.Plan, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2 := gen()
	s, err := NewSession(r2.Design, r2.Plan, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	met, err := s.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := met.Canonical(), rep.Base.Canonical(); got != want {
		t.Fatalf("session Measure differs from Run base:\nsession:\n%srun:\n%s", got, want)
	}
}

// mergePair merges the first scan-compatible single-bit pair into an MBR
// named name, probing candidates through the edit API (a rejected merge is
// side-effect free, so failed probes leave no trace). Returns the members.
func mergePair(t *testing.T, s *Session, name string) (string, string) {
	t.Helper()
	var regs []*netlist.Inst
	s.Design().Insts(func(in *netlist.Inst) {
		if in.Kind == netlist.KindReg && !in.Fixed && in.Bits() == 1 && len(regs) < 40 {
			regs = append(regs, in)
		}
	})
	for i := range regs {
		for j := i + 1; j < len(regs); j++ {
			if regs[i].RegCell.Class != regs[j].RegCell.Class {
				continue
			}
			if _, err := s.Apply([]Edit{MergeGroup(name, regs[i].Name, regs[j].Name)}); err == nil {
				return regs[i].Name, regs[j].Name
			}
		}
	}
	t.Fatal("no mergeable single-bit pair found")
	return "", ""
}

// TestApplySplitEdit pins the split edit end to end: merge two registers
// through the edit API, split the MBR back, and check the per-bit parts
// exist, the plan stays valid and the result names the victim.
func TestApplySplitEdit(t *testing.T) {
	s, _ := sessionBench(t, DefaultConfig())
	mergePair(t, s, "split_me")

	sres, err := s.Apply([]Edit{SplitInst("split_me")})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(sres.Split) != 1 || sres.Split[0] != "split_me" {
		t.Fatalf("split = %v, want [split_me]", sres.Split)
	}
	if s.Design().InstByName("split_me") != nil {
		t.Fatal("split left the MBR alive")
	}
	for _, part := range []string{"split_me_b0", "split_me_b1"} {
		in := s.Design().InstByName(part)
		if in == nil {
			t.Fatalf("split part %s missing", part)
		}
		if in.Bits() != 1 {
			t.Fatalf("split part %s has %d bits", part, in.Bits())
		}
	}
	if err := s.Design().Validate(); err != nil {
		t.Fatalf("design invalid after merge+split: %v", err)
	}
}

// TestRejectedSplitEditIsSideEffectFree mirrors the merge contract for the
// inverse op: a rejected split edit must leave the design untouched (epoch
// witness), since the serve journal only persists applied edits.
func TestRejectedSplitEditIsSideEffectFree(t *testing.T) {
	s, _ := sessionBench(t, DefaultConfig())
	a, b := mergePair(t, s, "mbr_sf")
	var other *netlist.Inst
	s.Design().Insts(func(in *netlist.Inst) {
		if other == nil && in.Kind == netlist.KindReg && !in.Fixed &&
			in.Bits() == 1 && in.Name != a && in.Name != b {
			other = in
		}
	})
	if other == nil {
		t.Fatal("need a third movable single-bit register")
	}
	epoch0 := s.Epoch()

	cases := []Edit{
		SplitInst("no_such_mbr"), // unknown instance
		SplitInst(other.Name),    // single-bit: nothing to split
		{Split: &SplitEdit{Inst: "mbr_sf", Cell: "no_such_cell"}}, // unknown cell
		{Split: &SplitEdit{}}, // missing instance name
	}
	for _, e := range cases {
		if _, err := s.Apply([]Edit{e}); err == nil {
			t.Fatalf("split %+v should have been rejected", e)
		}
	}
	if got := s.Epoch(); got != epoch0 {
		t.Fatalf("rejected splits mutated the design: epoch %d -> %d", epoch0, got)
	}
	if s.Design().InstByName("mbr_sf") == nil {
		t.Fatal("rejected split destroyed the MBR")
	}
}
