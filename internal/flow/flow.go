// Package flow drives the paper's implementation flow (Fig. 4) on a placed
// design: measure the Base state (CTS built, timing, congestion,
// wirelength), then incrementally run MBR composition → useful skew → MBR
// sizing → CTS update, and measure again. Its Report holds one Table 1
// row pair (Base / Ours).
//
// The retained engines carry state across the whole run behind the shared
// engine.Retained contract: the incremental STA engine, the
// compatibility-graph engine, the clock-tree engine, the design-aggregate
// tracker and the congestion engine. The clock tree is
// attached once for the Base measurement and then delta-maintained — never
// torn down and rebuilt between measurements. Its edits are scoped to the
// netlist's CTS edit class, so tree churn cannot evict the flow-class
// touched log that the STA and compatibility deltas depend on.
package flow

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/compat"
	"repro/internal/compatgraph"
	"repro/internal/core"
	"repro/internal/cts"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/scan"
	"repro/internal/sta"
)

// Metrics is one Table 1 row: the design-state snapshot the paper reports.
type Metrics struct {
	AreaUM2          float64
	Cells            int
	TotalRegs        int
	CompRegs         int
	ClkBufs          int
	ClkCapPF         float64
	TNSNS            float64 // total negative slack, reported positive, ns
	WNSPS            float64 // worst slack, ps (negative = violation)
	FailingEndpoints int
	TotalEndpoints   int
	OverflowEdges    int
	WLClkMM          float64
	WLSigMM          float64
}

// STAConfig groups the retained timing engine's options.
type STAConfig struct {
	// Workers bounds the levelized arrival/required sweep pool
	// (0 = inherit Config.Workers).
	Workers int
}

// CompatConfig groups the retained compatibility-graph engine's options.
type CompatConfig struct {
	// Rules are the pairwise compatibility tests' options (§3.1 rules,
	// slack thresholds, region slack).
	Rules compat.Options
	// Workers bounds the pairwise re-test fan-out (0 = inherit
	// Config.Workers).
	Workers int
	// MaxDeltaFrac is the changed-node fraction above which the retained
	// engine's Update abandons the delta path for a full edge re-test
	// (0 = the engine default, 0.25). Interactive sessions that prize
	// latency consistency over per-update cost can raise it to stay on the
	// delta path through larger ripples.
	MaxDeltaFrac float64
}

// CTSConfig groups the retained clock-tree engine's options.
type CTSConfig struct {
	// Tree holds the clustering limits and buffer model the trees are
	// built with.
	Tree cts.Options
	// Workers bounds the clustering-plan fan-out (0 = inherit
	// Config.Workers).
	Workers int
}

// RouteConfig groups the retained congestion engine's options.
type RouteConfig struct {
	// Est holds the G-cell pitch, edge capacities and clock-net inclusion
	// the congestion map is estimated with.
	Est route.Options
	// Workers bounds the rebuild-path net-walk fan-out (0 = inherit
	// Config.Workers).
	Workers int
}

// Config selects the flow options.
type Config struct {
	Compose core.Options
	// STA, Compat, CTS and Route configure the retained engines. Each
	// group's Workers overrides the global Config.Workers for that engine
	// only.
	STA    STAConfig
	Compat CompatConfig
	CTS    CTSConfig
	Route  RouteConfig
	// UsefulSkew applies per-MBR useful clock skew after composition
	// (Fig. 4).
	UsefulSkew bool
	// UsefulSkewWindowPS bounds the skew magnitude.
	UsefulSkewWindowPS float64
	// Sizing downsizes composed MBRs whose slack allows it (Fig. 4 "MBR
	// sizing"), recovering clock-pin capacitance and area.
	Sizing bool
	// SizingMarginPS is the slack that must remain after a downsize.
	SizingMarginPS float64
	// Decompose configures the slack-driven decomposition pass (the
	// bank/debank loop's debank direction): victims picked from the STA
	// changed-slack feed, worst cones first, bounded by Decompose.Budget.
	// In Run's one-shot flow an enabled config decomposes before the first
	// compose and restores leftovers after the last; sessions drive
	// DecomposePass/RestorePass directly.
	Decompose DecomposeConfig
	// DecomposeExisting is the legacy debank-all flag, kept as an alias
	// for Decompose.All (the paper's §5 future-work preset: split every
	// max-width MBR before the first compose). Most useful on designs
	// already rich in 8-bit MBRs (the D4 situation).
	DecomposeExisting bool
	// Workers bounds the worker pools the parallel stages fan out across:
	// the per-partition composition stages (clique enumeration, candidate
	// scoring, subgraph ILP solves) and the STA engine's levelized
	// arrival/required sweeps. 0 = one worker per available CPU
	// (runtime.GOMAXPROCS(0)), 1 = the legacy sequential path. Reports are
	// byte-identical for any setting; it overrides Compose.Workers when
	// non-zero.
	Workers int
	// Passes runs the composition stage this many times (≤1 = once, the
	// paper's flow). Later passes re-time the design and recompose over the
	// incrementally maintained compatibility graph — the retained engine
	// makes the extra graph updates cheap — picking up merges the first
	// pass's subgraph bound or legalization moves made possible.
	Passes int
	// TouchedLogCap overrides the netlist's per-edit-class touched-ring
	// capacity for the duration of the run (0 = leave the design's current
	// capacity). Larger rings keep the engines on their delta paths across
	// bigger edit bursts at a little memory cost.
	TouchedLogCap int
}

// Validate rejects configs whose knobs are out of range, with an error
// naming the offending field. Every count-like knob treats 0 as "use the
// default"; negative values were previously accepted silently and clamped
// (or worse, threaded into worker pools), so they are now explicit errors.
func (c Config) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"Workers", c.Workers},
		{"Passes", c.Passes},
		{"TouchedLogCap", c.TouchedLogCap},
		{"STA.Workers", c.STA.Workers},
		{"Compat.Workers", c.Compat.Workers},
		{"CTS.Workers", c.CTS.Workers},
		{"Route.Workers", c.Route.Workers},
		{"Compose.Workers", c.Compose.Workers},
	}
	for _, ck := range checks {
		if ck.v < 0 {
			return fmt.Errorf("flow: Config.%s = %d: must be >= 0 (0 selects the default)", ck.name, ck.v)
		}
	}
	if c.UsefulSkew && c.UsefulSkewWindowPS < 0 {
		return fmt.Errorf("flow: Config.UsefulSkewWindowPS = %v: must be >= 0 (0 selects the default window)", c.UsefulSkewWindowPS)
	}
	if c.Compat.MaxDeltaFrac < 0 {
		return fmt.Errorf("flow: Config.Compat.MaxDeltaFrac = %v: must be >= 0 (0 selects the engine default)", c.Compat.MaxDeltaFrac)
	}
	if c.CTS.Tree.RecenterThresholdDBU < 0 {
		return fmt.Errorf("flow: Config.CTS.Tree.RecenterThresholdDBU = %d: must be >= 0 (0 disables hysteresis)", c.CTS.Tree.RecenterThresholdDBU)
	}
	if c.Decompose.Budget < 0 {
		return fmt.Errorf("flow: Config.Decompose.Budget = %d: must be >= 0 (0 disables the pass)", c.Decompose.Budget)
	}
	return nil
}

// normalizedDecompose folds the legacy DecomposeExisting alias into the
// decompose config: the old flag is exactly the All preset.
func (c Config) normalizedDecompose() DecomposeConfig {
	dc := c.Decompose
	if c.DecomposeExisting {
		dc.All = true
	}
	return dc
}

// DefaultConfig returns the paper-default flow.
func DefaultConfig() Config {
	return Config{
		Compose:            core.DefaultOptions(),
		Compat:             CompatConfig{Rules: compat.DefaultOptions()},
		CTS:                CTSConfig{Tree: cts.DefaultOptions()},
		Route:              RouteConfig{Est: route.DefaultOptions()},
		UsefulSkew:         true,
		UsefulSkewWindowPS: 150,
		Sizing:             true,
		SizingMarginPS:     20,
	}
}

// Report is the outcome of one flow run.
type Report struct {
	Design string
	Base   Metrics
	Ours   Metrics
	// Compose is the composition result of the first pass (nil when
	// composition found nothing).
	Compose *core.Result
	// ExtraPasses holds the results of composition passes beyond the first
	// (Config.Passes > 1).
	ExtraPasses []*core.Result
	// CompatStats reports what the retained compatibility-graph engine did
	// across the whole flow (delta vs rebuild decisions, re-tested edges).
	CompatStats compatgraph.Stats
	// STAStats and CTSStats are the same accounting for the retained
	// timing and clock-tree engines.
	STAStats sta.RunStats
	CTSStats cts.Stats
	// MetricsStats accounts for the retained design-aggregate tracker the
	// measurement points read instead of walking the whole design.
	MetricsStats metrics.Stats
	// RouteStats accounts for the retained congestion engine (delta vs
	// rebuild decisions, re-contributed nets, touched grid edges).
	RouteStats route.Stats
	// ComposeStats accounts for the retained compose engine (subgraph memo
	// replays vs fresh solves, ILP nodes saved, warm-start outcomes).
	ComposeStats core.EngineStats
	// Engines is the uniform engine.Retained contract view of the retained
	// engines, keyed "sta", "compat", "cts", "metrics", "route", "compose".
	Engines map[string]engine.Summary
	// SkewedMBRs and ResizedMBRs count the post-composition optimizations.
	SkewedMBRs  int
	ResizedMBRs int
	// DecomposedMBRs counts the MBRs the decompose pass split before
	// composition (Config.Decompose, or the legacy DecomposeExisting
	// alias); RestoredMBRs counts the merges that re-grouped leftover
	// split bits afterwards. Both come from the one decompose/restore code
	// path the session passes share.
	DecomposedMBRs int
	RestoredMBRs   int
	// ComposeTime is the MBR composition + optimization wall time (the
	// paper's "Exec. Time" column measures these new steps).
	ComposeTime time.Duration
	// TotalTime is the whole flow, both measurements included.
	TotalTime time.Duration
}

// engines bundles the flow's retained engines. Each satisfies the
// engine.Retained contract; the flow drives them through this one struct so
// every stage sees the same instances and their stats survive to the
// Report.
type engines struct {
	sta *sta.Engine
	cg  *compatgraph.Engine
	cts *cts.Engine
	// met retains the design-level report aggregates (cells, registers,
	// area, signal wirelength) so measure never walks the whole design.
	met *metrics.Tracker
	// rt retains the G-cell congestion map so measure's overflow-edge count
	// is served by per-net demand deltas, not a full re-estimate.
	rt *route.Engine
	// comp retains the per-subgraph compose solve memo, so a pass re-solves
	// only the subgraphs something actually changed under.
	comp *core.Engine
}

// pickWorkers resolves a per-engine worker override against the global
// setting (group wins when non-zero).
func pickWorkers(group, global int) int {
	if group != 0 {
		return group
	}
	return global
}

func newEngines(d *netlist.Design, plan *scan.Plan, cfg Config) *engines {
	e := &engines{
		sta: sta.New(d),
		cg: compatgraph.New(d, plan, compatgraph.Options{
			Compat:       cfg.Compat.Rules,
			Workers:      pickWorkers(cfg.Compat.Workers, cfg.Workers),
			MaxDeltaFrac: cfg.Compat.MaxDeltaFrac,
		}),
		cts:  cts.NewEngine(d, cfg.CTS.Tree),
		met:  metrics.New(d),
		rt:   route.NewEngine(d, cfg.Route.Est),
		comp: core.NewEngine(d),
	}
	e.sta.SetWorkers(pickWorkers(cfg.STA.Workers, cfg.Workers))
	e.rt.SetWorkers(pickWorkers(cfg.Route.Workers, cfg.Workers))
	e.comp.SetWorkers(pickWorkers(cfg.Compose.Workers, cfg.Workers))
	// The compat node phase consumes the STA engine's changed-slack feed;
	// every cg.Update in the flow passes that engine's latest snapshot.
	e.cg.SetTimingFeed(e.sta)
	cw := pickWorkers(cfg.CTS.Workers, cfg.Workers)
	if cw == 0 {
		cw = runtime.GOMAXPROCS(0)
	}
	e.cts.SetWorkers(cw)
	return e
}

// summaries is the uniform contract view of the retained engines.
func (e *engines) summaries() map[string]engine.Summary {
	return map[string]engine.Summary{
		"sta":     e.sta.Summary(),
		"compat":  e.cg.Summary(),
		"cts":     e.cts.Summary(),
		"metrics": e.met.Summary(),
		"route":   e.rt.Summary(),
		"compose": e.comp.Summary(),
	}
}

// Run executes the flow on the design in place. The design must be placed
// and legal (bench.Generate output qualifies). It is a thin one-shot
// wrapper over Session: create, drive the paper's flow, close.
func Run(d *netlist.Design, plan *scan.Plan, cfg Config) (*Report, error) {
	t0 := time.Now()
	s, err := NewSession(d, plan, cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	rep, err := s.runFlow()
	if err != nil {
		return nil, err
	}
	rep.TotalTime = time.Since(t0)
	return rep, nil
}

// runFlow drives the paper's implementation flow (Fig. 4) on the
// session's freshly attached engines: base measurement, composition
// passes, useful skew, sizing, final canonical measurement.
func (s *Session) runFlow() (*Report, error) {
	d, plan, cfg, engs := s.d, s.plan, s.cfg, s.engs
	rep := &Report{Design: d.Name}
	eng, cg := engs.sta, engs.cg

	// ---- Base measurement: the trees were attached by NewSession and
	// stay attached for the rest of the run; composition edits are folded
	// in by delta updates. ----
	base, err := measure(d, engs, cfg)
	if err != nil {
		return nil, err
	}
	rep.Base = base

	// ---- Optional bank/debank step: decompose MBRs (every max-width one
	// under the All preset, else the worst-slack cones up to the budget) so
	// their bits can recompose with neighbours; leftovers are restored
	// after composition. One code path serves this, the session's
	// DecomposePass and the ablations — the report counts always agree.
	dcfg := cfg.normalizedDecompose()
	if dcfg.enabled() {
		eng.SetIdealClocks(true)
		dres, err := s.decomposePass(dcfg)
		eng.SetIdealClocks(false)
		if err != nil {
			return nil, fmt.Errorf("flow: decompose: %w", err)
		}
		rep.DecomposedMBRs = len(dres.Victims)
	}

	// ---- Incremental MBR composition (ideal clocks, as post-place timing
	// is analyzed before a tree exists). ----
	eng.SetIdealClocks(true)
	tc0 := time.Now()
	composeOpts := s.composeOpts()
	namePrefix := composeOpts.NamePrefix
	if namePrefix == "" {
		namePrefix = "mbrc"
	}
	passes := cfg.Passes
	if passes < 1 {
		passes = 1
	}
	var newMBRs []*netlist.Inst
	for p := 0; p < passes; p++ {
		if p > 0 {
			// Keep MBR names unique across passes.
			composeOpts.NamePrefix = fmt.Sprintf("%s_p%d", namePrefix, p+1)
		}
		cres, err := s.composePass(composeOpts)
		if err != nil {
			return nil, fmt.Errorf("flow: compose pass %d: %w", p+1, err)
		}
		if p == 0 {
			rep.Compose = cres
		} else {
			rep.ExtraPasses = append(rep.ExtraPasses, cres)
		}
		for _, m := range cres.MBRs {
			newMBRs = append(newMBRs, m.Inst)
		}
		if len(cres.MBRs) == 0 {
			break // converged: nothing left to merge
		}
		// Fold this pass's merges into the retained trees by delta, so the
		// next pass (and the optimization stages) see a maintained tree.
		if err := engs.cts.Update(); err != nil {
			return nil, fmt.Errorf("flow: CTS update pass %d: %w", p+1, err)
		}
	}
	// A later pass can merge an earlier pass's MBRs away; the skew and
	// sizing stages only want the survivors.
	live := newMBRs[:0]
	for _, in := range newMBRs {
		if d.Inst(in.ID) != nil {
			live = append(live, in)
		}
	}
	newMBRs = live

	if dcfg.enabled() {
		groups := s.splitGroups
		s.splitGroups = nil
		n, err := restoreSplitLeftovers(d, plan, groups, engs.cts.ReleaseClocks, 0)
		if err != nil {
			return nil, fmt.Errorf("flow: restore: %w", err)
		}
		rep.RestoredMBRs = n
	}

	// ---- Useful skew on the new MBRs (Fig. 4). ----
	if cfg.UsefulSkew && len(newMBRs) > 0 {
		res2, err := eng.Run()
		if err != nil {
			return nil, err
		}
		window := cfg.UsefulSkewWindowPS
		if window <= 0 {
			window = 150
		}
		rep.SkewedMBRs = eng.AssignUsefulSkew(newMBRs, res2, window)
	}

	// ---- MBR sizing. ----
	if cfg.Sizing && len(newMBRs) > 0 {
		n, err := resizeMBRs(d, eng, newMBRs, cfg.SizingMarginPS)
		if err != nil {
			return nil, err
		}
		rep.ResizedMBRs = n
	}
	rep.ComposeTime = time.Since(tc0)
	eng.SetIdealClocks(false)

	// ---- Sync the retained trees and measure "Ours". Measurement folds
	// floats over nets in ID order, so the trees are canonicalized — left
	// exactly as a batch build of the final design would leave them — to
	// keep reports byte-comparable with the batch flow. ----
	if err := engs.cts.Canonicalize(); err != nil {
		return nil, fmt.Errorf("flow: final CTS: %w", err)
	}
	rep.Ours, err = measure(d, engs, cfg)
	if err != nil {
		return nil, err
	}
	rep.CompatStats = cg.Stats()
	rep.STAStats = eng.Stats()
	rep.CTSStats = engs.cts.Stats()
	rep.MetricsStats = engs.met.Stats()
	rep.RouteStats = engs.rt.Stats()
	rep.ComposeStats = engs.comp.Stats()
	rep.Engines = engs.summaries()
	return rep, nil
}

// measure snapshots the Table 1 metrics of the design's current state. It
// reads only retained layers — the STA engine, the compat engine, the CTS
// engine's cached tree metrics, the design-aggregate tracker and the
// congestion engine's maintained overflow count — so a measurement after k
// edits costs O(k), not O(design): no stage walks the full design on the
// delta path. Every retained value equals its batch oracle bit-for-bit
// (cts.Metrics vs cts.Measure, metrics.Tracker vs the netlist walks,
// route.Engine vs route.Estimate), which keeps reports byte-identical with
// the former batch measurement.
func measure(d *netlist.Design, engs *engines, cfg Config) (Metrics, error) {
	res, err := engs.sta.Run()
	if err != nil {
		return Metrics{}, err
	}
	g := engs.cg.Update(res)
	cm := engs.cts.Metrics()
	overflow := engs.rt.OverflowEdges()
	dm := engs.met.Aggregates()

	return Metrics{
		AreaUM2:          float64(dm.AreaDBU2) / 1e6, // 1 DBU = 1 nm
		Cells:            dm.Cells,
		TotalRegs:        dm.Regs,
		CompRegs:         len(g.Regs),
		ClkBufs:          cm.Buffers,
		ClkCapPF:         cm.TotalCapFF / 1000,
		TNSNS:            -res.TNS / 1000,
		WNSPS:            res.WNS,
		FailingEndpoints: res.FailingEndpoints,
		TotalEndpoints:   res.TotalEndpoints,
		OverflowEdges:    overflow,
		WLClkMM:          float64(cm.WirelengthDBU) / 1e6,
		WLSigMM:          float64(dm.SignalWLDBU) / 1e6,
	}, nil
}

// resizeMBRs downsizes composed MBRs whose timing headroom allows a weaker
// (lower clock-cap, lower leakage) drive, then verifies with a full STA and
// rolls every swap back if TNS degraded.
func resizeMBRs(d *netlist.Design, eng *sta.Engine, mbrs []*netlist.Inst, marginPS float64) (int, error) {
	res, err := eng.Run()
	if err != nil {
		return 0, err
	}
	var swaps []swapRecord
	for _, in := range mbrs {
		cur := in.RegCell
		cands := d.Lib.CellsOfWidth(cur.Class, cur.Bits)
		qs := sta.RegQSlack(d, res, in)
		ds := sta.RegDSlack(d, res, in)
		// Try the weakest candidate that keeps estimated slack positive.
		var best *swapTarget
		for _, c := range cands {
			if c.DriveRes <= cur.DriveRes {
				continue // not a downsize
			}
			var load float64
			for b := 0; b < in.Bits(); b++ {
				if q := d.QPin(in, b); q != nil && q.Net != netlist.NoID {
					if l := d.NetLoadCap(d.Net(q.Net)); l > load {
						load = l
					}
				}
			}
			extra := (c.DriveRes-cur.DriveRes)*load + (c.Intrinsic - cur.Intrinsic)
			if qs-extra > marginPS && ds > marginPS {
				if best == nil || c.DriveRes > best.cell.DriveRes {
					best = &swapTarget{cell: c}
				}
			}
		}
		if best != nil {
			old := in.RegCell
			if err := d.ResizeRegister(in, best.cell); err != nil {
				return 0, err
			}
			swaps = append(swaps, swapRecord{in, old})
		}
	}
	if len(swaps) == 0 {
		return 0, nil
	}
	after, err := eng.Run()
	if err != nil {
		return 0, err
	}
	if after.TNS < res.TNS-1e-9 {
		// Sizing hurt: revert everything.
		for _, s := range swaps {
			if err := d.ResizeRegister(s.inst, s.old); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	return len(swaps), nil
}

type swapRecord struct {
	inst *netlist.Inst
	old  *lib.Cell
}

type swapTarget struct {
	cell *lib.Cell
}

func geomSnap(d *netlist.Design, x, y int64) (p geom.Point) {
	p.X = d.Core.Lo.X + ((x-d.Core.Lo.X)/d.SiteW)*d.SiteW
	p.Y = d.Core.Lo.Y + ((y-d.Core.Lo.Y)/d.RowH)*d.RowH
	return p
}
