// Streamed edit application: the Session's write API. Edits arrive as
// small JSON-serializable records (the wire format of cmd/mbrserved's edit
// batches) and are applied through the netlist's tracked mutation methods,
// so every retained engine picks the change up on its delta path. Edits
// reference instances, nets and cells by name — names are stable across
// serialize/reload round trips, instance IDs are not.
package flow

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
)

// Edit is one streamed design edit. Op selects the operation; the other
// fields are operands (unused ones stay zero).
//
//	move     Inst, X, Y          reposition an instance
//	resize   Inst, Cell          swap a register's cell (same class/width)
//	skew     Inst, SkewPS        assign useful clock skew to a register
//	merge    Group, Name[, Cell, X, Y]  merge registers into one MBR
//	connect  Inst, Pin, Bit, Net attach a pin to a net
//	disconnect Inst, Pin, Bit    detach a pin from its net
//
// X and Y are pointers so absent and zero are distinct on the wire: a
// merge without coordinates takes the group centroid, while an explicit
// {"x":0,"y":0} places the MBR at the origin.
type Edit struct {
	Op     string   `json:"op"`
	Inst   string   `json:"inst,omitempty"`
	X      *int64   `json:"x,omitempty"`
	Y      *int64   `json:"y,omitempty"`
	Cell   string   `json:"cell,omitempty"`
	SkewPS float64  `json:"skewPS,omitempty"`
	Group  []string `json:"group,omitempty"`
	Name   string   `json:"name,omitempty"`
	Net    string   `json:"net,omitempty"`
	Pin    string   `json:"pin,omitempty"`
	Bit    int      `json:"bit,omitempty"`
}

// Coord wraps a coordinate value for Edit's optional X/Y pointer fields.
func Coord(v int64) *int64 { return &v }

// ApplyResult reports what an edit batch did.
type ApplyResult struct {
	// Applied counts the edits applied, which on error is the index of the
	// edit that failed: everything before it took effect (batches are not
	// transactional), everything from it on did not.
	Applied int `json:"applied"`
	// Merged names the MBR instances merge edits created, in batch order.
	Merged []string `json:"merged,omitempty"`
	// Epoch is the design's edit epoch after the batch.
	Epoch uint64 `json:"epoch"`
}

// pinKinds maps the wire names of pin kinds (the PinKind String forms) to
// their values.
var pinKinds = map[string]netlist.PinKind{
	"D": netlist.PinData, "Q": netlist.PinOut, "CK": netlist.PinClock,
	"RST": netlist.PinReset, "EN": netlist.PinEnable,
	"SI": netlist.PinScanIn, "SO": netlist.PinScanOut, "SE": netlist.PinScanEnable,
}

// Apply applies an edit batch in order through the netlist's tracked
// mutation methods. On the first failing edit it stops and returns the
// error with the already-applied prefix recorded in the result; the
// journal-keeping caller (internal/serve) persists exactly that prefix so
// a replay reproduces the design state bit-for-bit.
func (s *Session) Apply(edits []Edit) (*ApplyResult, error) {
	res := &ApplyResult{}
	if s.closed {
		return res, fmt.Errorf("flow: session closed")
	}
	for i, e := range edits {
		if err := s.applyEdit(e, res); err != nil {
			res.Applied = i
			res.Epoch = s.d.Epoch()
			return res, fmt.Errorf("flow: edit %d (%s): %w", i, e.Op, err)
		}
	}
	res.Applied = len(edits)
	res.Epoch = s.d.Epoch()
	return res, nil
}

func (s *Session) applyEdit(e Edit, res *ApplyResult) error {
	switch e.Op {
	case "move":
		in, err := s.liveInst(e.Inst)
		if err != nil {
			return err
		}
		if in.Fixed {
			return fmt.Errorf("instance %q is fixed", e.Inst)
		}
		if e.X == nil || e.Y == nil {
			return fmt.Errorf("move needs both x and y")
		}
		s.d.MoveInst(in, geom.Point{X: *e.X, Y: *e.Y})
		return nil

	case "resize":
		in, err := s.liveInst(e.Inst)
		if err != nil {
			return err
		}
		cell := s.d.Lib.CellByName(e.Cell)
		if cell == nil {
			return fmt.Errorf("unknown cell %q", e.Cell)
		}
		return s.d.ResizeRegister(in, cell)

	case "skew":
		in, err := s.liveInst(e.Inst)
		if err != nil {
			return err
		}
		if in.Kind != netlist.KindReg {
			return fmt.Errorf("instance %q is not a register", e.Inst)
		}
		// Skew feeds the retained timing engine directly, not the netlist;
		// the engine's incremental run diffs per-register skews itself, so
		// no touched-ring entry is needed.
		s.engs.sta.SetSkew(in.ID, e.SkewPS)
		return nil

	case "merge":
		return s.applyMerge(e, res)

	case "connect":
		p, err := s.findPin(e)
		if err != nil {
			return err
		}
		var net *netlist.Net
		s.d.Nets(func(n *netlist.Net) {
			if n.Name == e.Net {
				net = n
			}
		})
		if net == nil {
			return fmt.Errorf("unknown net %q", e.Net)
		}
		if p.Dir == netlist.DirOut && net.Driver != netlist.NoID && net.Driver != p.ID {
			return fmt.Errorf("net %q already driven", e.Net)
		}
		s.d.Connect(p, net)
		return nil

	case "disconnect":
		p, err := s.findPin(e)
		if err != nil {
			return err
		}
		s.d.Disconnect(p)
		return nil

	default:
		return fmt.Errorf("unknown op %q", e.Op)
	}
}

// applyMerge merges the named registers into one MBR, following the
// composition engine's conventions: scan-aware merge order, clock pins
// released to the domain root first, scan plan updated, and the new MBR
// legalized incrementally.
//
// Every fallible check runs before the first mutation, and the clock
// release is rolled back if the netlist merge is still rejected, so a
// failed merge edit is side-effect free. The journal-keeping caller
// (internal/serve) depends on that: a failed edit is not journaled, and
// any surviving mutation would make snapshot replay diverge from the live
// session.
func (s *Session) applyMerge(e Edit, res *ApplyResult) error {
	if len(e.Group) < 2 {
		return fmt.Errorf("merge needs >= 2 group members")
	}
	if e.Name == "" {
		return fmt.Errorf("merge needs a name for the MBR")
	}
	insts := make([]*netlist.Inst, len(e.Group))
	ids := make([]netlist.InstID, len(e.Group))
	members := make(map[netlist.InstID]bool, len(e.Group))
	totalBits := 0
	for i, name := range e.Group {
		in, err := s.liveInst(name)
		if err != nil {
			return err
		}
		if in.Kind != netlist.KindReg {
			return fmt.Errorf("group member %q is not a register", name)
		}
		if in.Fixed || in.SizeOnly {
			return fmt.Errorf("group member %q is fixed/size-only", name)
		}
		if members[in.ID] {
			return fmt.Errorf("group member %q listed twice", name)
		}
		members[in.ID] = true
		insts[i] = in
		ids[i] = in.ID
		totalBits += in.Bits()
	}
	// The MBR name must be free; a group member's own name is fine since
	// the member dies in the merge.
	if ex := s.d.InstByName(e.Name); ex != nil && !members[ex.ID] {
		return fmt.Errorf("instance %q already exists", e.Name)
	}

	// Cell: explicit, or the smallest fitting width of the first member's
	// class at its drive strength.
	cell := s.d.Lib.CellByName(e.Cell)
	if e.Cell != "" && cell == nil {
		return fmt.Errorf("unknown cell %q", e.Cell)
	}
	if cell == nil {
		class := insts[0].RegCell.Class
		width, ok := s.d.Lib.SmallestWidthAtLeast(class, totalBits)
		if !ok {
			return fmt.Errorf("no %s cell fits %d bits", class.Key(), totalBits)
		}
		cell = s.d.Lib.SelectCell(class, width, insts[0].RegCell.DriveRes)
		if cell == nil {
			return fmt.Errorf("no %d-bit cell for class %s", width, class.Key())
		}
	}
	if totalBits > cell.Bits {
		return fmt.Errorf("%d bits exceed %d-bit cell %q", totalBits, cell.Bits, cell.Name)
	}

	// Shared control nets must agree. The clock is exempt here: members on
	// different tree leaf nets are released to their common domain root
	// below, which is exactly what makes their clock nets agree.
	for _, kind := range []netlist.PinKind{netlist.PinReset, netlist.PinEnable, netlist.PinScanEnable} {
		ref := s.d.ControlNet(insts[0], kind)
		for _, in := range insts[1:] {
			if s.d.ControlNet(in, kind) != ref {
				return fmt.Errorf("group member %q disagrees on %v net", in.Name, kind)
			}
		}
	}

	// Position: explicit (both coordinates — zero is a real position), or
	// the group centroid snapped to the site grid.
	var pos geom.Point
	switch {
	case e.X != nil && e.Y != nil:
		pos = geom.Point{X: *e.X, Y: *e.Y}
	case e.X != nil || e.Y != nil:
		return fmt.Errorf("merge position needs both x and y")
	default:
		var sx, sy int64
		for _, in := range insts {
			sx += in.Pos.X
			sy += in.Pos.Y
		}
		pos = geomSnap(s.d, sx/int64(len(insts)), sy/int64(len(insts)))
	}

	// Merge order: scan order when scanned (MergeRegisters packs bits in
	// group order, and scan stitching follows that order). MergeOrder and
	// GroupCompatible are read-only; checking compatibility on the exact
	// ordered IDs handed to plan.ApplyMerge later makes its internal
	// re-check infallible.
	ordered := insts
	if s.plan != nil {
		mo := s.plan.MergeOrder(ids)
		ordered = make([]*netlist.Inst, len(mo))
		for i, id := range mo {
			ordered[i] = s.d.Inst(id)
		}
	}
	memberIDs := make([]netlist.InstID, len(ordered))
	for i, in := range ordered {
		memberIDs[i] = in.ID
	}
	if s.plan != nil && !s.plan.GroupCompatible(memberIDs) {
		return fmt.Errorf("group is not scan-compatible")
	}

	// Commit. MergeRegisters validates before it tears anything down, so
	// its only remaining failure mode after the checks above is a clock
	// (or other control) net disagreement that the release did not unify —
	// members from different clock domains. On that rejection the released
	// clock pins are re-parented onto their original nets so the failed
	// edit leaves no trace.
	prevClk := make([]netlist.NetID, len(ordered))
	for i, in := range ordered {
		prevClk[i] = s.d.ClockNet(in)
	}
	s.engs.cts.ReleaseClocks(ordered)
	mr, err := s.d.MergeRegisters(ordered, cell, e.Name, pos)
	if err != nil {
		s.d.WithEditClass(netlist.EditClassCTS, func() {
			for i, in := range ordered {
				cp := s.d.ClockPin(in)
				if cp == nil || prevClk[i] == netlist.NoID || cp.Net == prevClk[i] {
					continue
				}
				s.d.Connect(cp, s.d.Net(prevClk[i]))
			}
		})
		return err
	}
	if s.plan != nil {
		// Pre-validated above on the same memberIDs; nothing in between
		// touches the plan, so this cannot fail.
		if err := s.plan.ApplyMerge(memberIDs, mr.MBR.ID); err != nil {
			return err
		}
	}
	place.LegalizeIncremental(s.d, []*netlist.Inst{mr.MBR})
	res.Merged = append(res.Merged, mr.MBR.Name)
	return nil
}

func (s *Session) liveInst(name string) (*netlist.Inst, error) {
	if name == "" {
		return nil, fmt.Errorf("missing instance name")
	}
	in := s.d.InstByName(name)
	if in == nil {
		return nil, fmt.Errorf("unknown instance %q", name)
	}
	return in, nil
}

func (s *Session) findPin(e Edit) (*netlist.Pin, error) {
	in, err := s.liveInst(e.Inst)
	if err != nil {
		return nil, err
	}
	kind, ok := pinKinds[e.Pin]
	if !ok {
		return nil, fmt.Errorf("unknown pin kind %q", e.Pin)
	}
	p := s.d.FindPin(in, kind, e.Bit)
	if p == nil {
		return nil, fmt.Errorf("no %s[%d] pin on %q", e.Pin, e.Bit, e.Inst)
	}
	return p, nil
}
