// Streamed edit application: the Session's write API. Edits arrive as
// small JSON-serializable records (the wire format of cmd/mbrserved's edit
// batches) and are applied through the netlist's tracked mutation methods,
// so every retained engine picks the change up on its delta path. Edits
// reference instances, nets and cells by name — names are stable across
// serialize/reload round trips, instance IDs are not.
//
// Wire format v2: an Edit is an envelope holding exactly one tagged
// per-op payload ({"move": {...}}, {"split": {...}}, ...), each with its
// own Validate. The v1 flat form ({"op": "move", "inst": ..., ...}) is
// still decoded — existing serve journals and snapshots restore
// bit-identically — but encoding always emits v2.
package flow

import (
	"encoding/json"
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
)

// MoveEdit repositions an instance. X and Y are pointers so absent and
// zero are distinct on the wire; both are required (see Validate).
type MoveEdit struct {
	Inst string `json:"inst"`
	X    *int64 `json:"x"`
	Y    *int64 `json:"y"`
}

// Validate checks the payload's wire-level shape.
func (e *MoveEdit) Validate() error {
	if e.Inst == "" {
		return fmt.Errorf("move needs an instance name")
	}
	if e.X == nil || e.Y == nil {
		return fmt.Errorf("move needs both x and y")
	}
	return nil
}

// ResizeEdit swaps a register's cell for a same-class same-width
// alternate.
type ResizeEdit struct {
	Inst string `json:"inst"`
	Cell string `json:"cell"`
}

// Validate checks the payload's wire-level shape.
func (e *ResizeEdit) Validate() error {
	if e.Inst == "" {
		return fmt.Errorf("resize needs an instance name")
	}
	if e.Cell == "" {
		return fmt.Errorf("resize needs a cell name")
	}
	return nil
}

// SkewEdit assigns useful clock skew to a register.
type SkewEdit struct {
	Inst   string  `json:"inst"`
	SkewPS float64 `json:"skewPS"`
}

// Validate checks the payload's wire-level shape.
func (e *SkewEdit) Validate() error {
	if e.Inst == "" {
		return fmt.Errorf("skew needs an instance name")
	}
	return nil
}

// MergeEdit merges the named registers into one MBR. Cell is optional
// (the smallest fitting width of the first member's class); X/Y are
// optional together (default: group centroid snapped to the site grid).
type MergeEdit struct {
	Group []string `json:"group"`
	Name  string   `json:"name"`
	Cell  string   `json:"cell,omitempty"`
	X     *int64   `json:"x,omitempty"`
	Y     *int64   `json:"y,omitempty"`
}

// Validate checks the payload's wire-level shape.
func (e *MergeEdit) Validate() error {
	if len(e.Group) < 2 {
		return fmt.Errorf("merge needs >= 2 group members")
	}
	if e.Name == "" {
		return fmt.Errorf("merge needs a name for the MBR")
	}
	if (e.X == nil) != (e.Y == nil) {
		return fmt.Errorf("merge position needs both x and y")
	}
	return nil
}

// SplitEdit decomposes a multi-bit register into per-bit instances named
// <inst>_b<bit> (the exact inverse of a merge). Cell is optional: the
// 1-bit cell of the register's class at its drive strength.
type SplitEdit struct {
	Inst string `json:"inst"`
	Cell string `json:"cell,omitempty"`
}

// Validate checks the payload's wire-level shape.
func (e *SplitEdit) Validate() error {
	if e.Inst == "" {
		return fmt.Errorf("split needs an instance name")
	}
	return nil
}

// ConnectEdit attaches a pin to a net.
type ConnectEdit struct {
	Inst string `json:"inst"`
	Pin  string `json:"pin"`
	Bit  int    `json:"bit,omitempty"`
	Net  string `json:"net"`
}

// Validate checks the payload's wire-level shape.
func (e *ConnectEdit) Validate() error {
	if e.Inst == "" {
		return fmt.Errorf("connect needs an instance name")
	}
	if e.Pin == "" {
		return fmt.Errorf("connect needs a pin kind")
	}
	if e.Bit < 0 {
		return fmt.Errorf("connect bit must be >= 0")
	}
	if e.Net == "" {
		return fmt.Errorf("connect needs a net name")
	}
	return nil
}

// DisconnectEdit detaches a pin from its net.
type DisconnectEdit struct {
	Inst string `json:"inst"`
	Pin  string `json:"pin"`
	Bit  int    `json:"bit,omitempty"`
}

// Validate checks the payload's wire-level shape.
func (e *DisconnectEdit) Validate() error {
	if e.Inst == "" {
		return fmt.Errorf("disconnect needs an instance name")
	}
	if e.Pin == "" {
		return fmt.Errorf("disconnect needs a pin kind")
	}
	if e.Bit < 0 {
		return fmt.Errorf("disconnect bit must be >= 0")
	}
	return nil
}

// Edit is one streamed design edit: an envelope with exactly one op
// payload set. Construct with the helpers (MoveTo, Resize, ...) or by
// setting one field; Validate rejects empty and ambiguous envelopes.
type Edit struct {
	Move       *MoveEdit       `json:"move,omitempty"`
	Resize     *ResizeEdit     `json:"resize,omitempty"`
	Skew       *SkewEdit       `json:"skew,omitempty"`
	Merge      *MergeEdit      `json:"merge,omitempty"`
	Split      *SplitEdit      `json:"split,omitempty"`
	Connect    *ConnectEdit    `json:"connect,omitempty"`
	Disconnect *DisconnectEdit `json:"disconnect,omitempty"`
}

// MoveTo builds a move edit.
func MoveTo(inst string, x, y int64) Edit {
	return Edit{Move: &MoveEdit{Inst: inst, X: &x, Y: &y}}
}

// Resize builds a resize edit.
func Resize(inst, cell string) Edit {
	return Edit{Resize: &ResizeEdit{Inst: inst, Cell: cell}}
}

// Skew builds a skew edit.
func Skew(inst string, ps float64) Edit {
	return Edit{Skew: &SkewEdit{Inst: inst, SkewPS: ps}}
}

// MergeGroup builds a merge edit with defaulted cell and position.
func MergeGroup(name string, group ...string) Edit {
	return Edit{Merge: &MergeEdit{Name: name, Group: group}}
}

// SplitInst builds a split edit with the defaulted 1-bit cell.
func SplitInst(inst string) Edit {
	return Edit{Split: &SplitEdit{Inst: inst}}
}

// Coord wraps a coordinate value for the optional X/Y pointer fields.
func Coord(v int64) *int64 { return &v }

// Op returns the envelope's operation tag ("move", "split", ...), or ""
// when no payload is set. Ambiguous envelopes report the first set tag;
// Validate rejects them.
func (e Edit) Op() string {
	switch {
	case e.Move != nil:
		return "move"
	case e.Resize != nil:
		return "resize"
	case e.Skew != nil:
		return "skew"
	case e.Merge != nil:
		return "merge"
	case e.Split != nil:
		return "split"
	case e.Connect != nil:
		return "connect"
	case e.Disconnect != nil:
		return "disconnect"
	}
	return ""
}

// Validate checks the envelope holds exactly one payload and that the
// payload's wire-level shape is complete. Semantic checks (the instance
// exists, the cell fits, the group is scan-compatible) happen at apply
// time against the design.
func (e Edit) Validate() error {
	n := 0
	var err error
	for _, p := range []struct {
		set bool
		v   interface{ Validate() error }
	}{
		{e.Move != nil, e.Move},
		{e.Resize != nil, e.Resize},
		{e.Skew != nil, e.Skew},
		{e.Merge != nil, e.Merge},
		{e.Split != nil, e.Split},
		{e.Connect != nil, e.Connect},
		{e.Disconnect != nil, e.Disconnect},
	} {
		if p.set {
			n++
			err = p.v.Validate()
		}
	}
	switch {
	case n == 0:
		return fmt.Errorf("edit has no operation (unknown op?)")
	case n > 1:
		return fmt.Errorf("edit sets %d operations, want exactly 1", n)
	}
	return err
}

// Clone deep-copies the edit (the payloads are pointers; journals must
// not alias caller-owned memory).
func (e Edit) Clone() Edit {
	var out Edit
	if e.Move != nil {
		m := *e.Move
		m.X, m.Y = cloneCoord(m.X), cloneCoord(m.Y)
		out.Move = &m
	}
	if e.Resize != nil {
		r := *e.Resize
		out.Resize = &r
	}
	if e.Skew != nil {
		s := *e.Skew
		out.Skew = &s
	}
	if e.Merge != nil {
		m := *e.Merge
		m.Group = append([]string(nil), m.Group...)
		m.X, m.Y = cloneCoord(m.X), cloneCoord(m.Y)
		out.Merge = &m
	}
	if e.Split != nil {
		s := *e.Split
		out.Split = &s
	}
	if e.Connect != nil {
		c := *e.Connect
		out.Connect = &c
	}
	if e.Disconnect != nil {
		d := *e.Disconnect
		out.Disconnect = &d
	}
	return out
}

func cloneCoord(p *int64) *int64 {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

// editV1 is the retired flat wire form: Op selected the operation, the
// remaining fields were operands. Decoded for journal/snapshot
// compatibility; never emitted.
type editV1 struct {
	Op     string   `json:"op"`
	Inst   string   `json:"inst,omitempty"`
	X      *int64   `json:"x,omitempty"`
	Y      *int64   `json:"y,omitempty"`
	Cell   string   `json:"cell,omitempty"`
	SkewPS float64  `json:"skewPS,omitempty"`
	Group  []string `json:"group,omitempty"`
	Name   string   `json:"name,omitempty"`
	Net    string   `json:"net,omitempty"`
	Pin    string   `json:"pin,omitempty"`
	Bit    int      `json:"bit,omitempty"`
}

// editV2 mirrors Edit without methods, so the custom decoder below can use
// the stock struct decoding for the tagged form.
type editV2 struct {
	Move       *MoveEdit       `json:"move,omitempty"`
	Resize     *ResizeEdit     `json:"resize,omitempty"`
	Skew       *SkewEdit       `json:"skew,omitempty"`
	Merge      *MergeEdit      `json:"merge,omitempty"`
	Split      *SplitEdit      `json:"split,omitempty"`
	Connect    *ConnectEdit    `json:"connect,omitempty"`
	Disconnect *DisconnectEdit `json:"disconnect,omitempty"`
}

// UnmarshalJSON decodes the v2 tagged form, falling back to the v1 flat
// form when an "op" key is present — v1 serve journals and snapshots
// restore bit-identically. A v1 record with an unknown op is rejected at
// decode time (it could never have been journaled).
func (e *Edit) UnmarshalJSON(data []byte) error {
	var probe struct {
		Op *string `json:"op"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return err
	}
	if probe.Op != nil {
		var v1 editV1
		if err := json.Unmarshal(data, &v1); err != nil {
			return err
		}
		dec, err := v1.upgrade()
		if err != nil {
			return err
		}
		*e = dec
		return nil
	}
	var v2 editV2
	if err := json.Unmarshal(data, &v2); err != nil {
		return err
	}
	*e = Edit(v2)
	return nil
}

// upgrade maps a v1 flat record onto the v2 envelope.
func (v editV1) upgrade() (Edit, error) {
	switch v.Op {
	case "move":
		return Edit{Move: &MoveEdit{Inst: v.Inst, X: v.X, Y: v.Y}}, nil
	case "resize":
		return Edit{Resize: &ResizeEdit{Inst: v.Inst, Cell: v.Cell}}, nil
	case "skew":
		return Edit{Skew: &SkewEdit{Inst: v.Inst, SkewPS: v.SkewPS}}, nil
	case "merge":
		return Edit{Merge: &MergeEdit{Group: v.Group, Name: v.Name, Cell: v.Cell, X: v.X, Y: v.Y}}, nil
	case "split":
		return Edit{Split: &SplitEdit{Inst: v.Inst, Cell: v.Cell}}, nil
	case "connect":
		return Edit{Connect: &ConnectEdit{Inst: v.Inst, Pin: v.Pin, Bit: v.Bit, Net: v.Net}}, nil
	case "disconnect":
		return Edit{Disconnect: &DisconnectEdit{Inst: v.Inst, Pin: v.Pin, Bit: v.Bit}}, nil
	}
	return Edit{}, fmt.Errorf("flow: unknown op %q in v1 edit record", v.Op)
}

// ApplyResult reports what an edit batch did.
type ApplyResult struct {
	// Applied counts the edits applied, which on error is the index of the
	// edit that failed: everything before it took effect (batches are not
	// transactional), everything from it on did not.
	Applied int `json:"applied"`
	// Merged names the MBR instances merge edits created, in batch order.
	Merged []string `json:"merged,omitempty"`
	// Split names the registers split edits decomposed, in batch order.
	Split []string `json:"split,omitempty"`
	// Epoch is the design's edit epoch after the batch.
	Epoch uint64 `json:"epoch"`
}

// pinKinds maps the wire names of pin kinds (the PinKind String forms) to
// their values.
var pinKinds = map[string]netlist.PinKind{
	"D": netlist.PinData, "Q": netlist.PinOut, "CK": netlist.PinClock,
	"RST": netlist.PinReset, "EN": netlist.PinEnable,
	"SI": netlist.PinScanIn, "SO": netlist.PinScanOut, "SE": netlist.PinScanEnable,
}

// Apply applies an edit batch in order through the netlist's tracked
// mutation methods. On the first failing edit it stops and returns the
// error with the already-applied prefix recorded in the result; the
// journal-keeping caller (internal/serve) persists exactly that prefix so
// a replay reproduces the design state bit-for-bit.
func (s *Session) Apply(edits []Edit) (*ApplyResult, error) {
	res := &ApplyResult{}
	if s.closed {
		return res, fmt.Errorf("flow: session closed")
	}
	for i, e := range edits {
		if err := s.applyEdit(e, res); err != nil {
			res.Applied = i
			res.Epoch = s.d.Epoch()
			op := e.Op()
			if op == "" {
				op = "none"
			}
			return res, fmt.Errorf("flow: edit %d (%s): %w", i, op, err)
		}
	}
	res.Applied = len(edits)
	res.Epoch = s.d.Epoch()
	return res, nil
}

func (s *Session) applyEdit(e Edit, res *ApplyResult) error {
	// Wire-level shape first: exactly one op, payload complete. Everything
	// after this dispatches on the one set payload.
	if err := e.Validate(); err != nil {
		return err
	}
	switch {
	case e.Move != nil:
		in, err := s.liveInst(e.Move.Inst)
		if err != nil {
			return err
		}
		if in.Fixed {
			return fmt.Errorf("instance %q is fixed", e.Move.Inst)
		}
		s.d.MoveInst(in, geom.Point{X: *e.Move.X, Y: *e.Move.Y})
		return nil

	case e.Resize != nil:
		in, err := s.liveInst(e.Resize.Inst)
		if err != nil {
			return err
		}
		cell := s.d.Lib.CellByName(e.Resize.Cell)
		if cell == nil {
			return fmt.Errorf("unknown cell %q", e.Resize.Cell)
		}
		return s.d.ResizeRegister(in, cell)

	case e.Skew != nil:
		in, err := s.liveInst(e.Skew.Inst)
		if err != nil {
			return err
		}
		if in.Kind != netlist.KindReg {
			return fmt.Errorf("instance %q is not a register", e.Skew.Inst)
		}
		// Skew feeds the retained timing engine directly, not the netlist;
		// the engine's incremental run diffs per-register skews itself, so
		// no touched-ring entry is needed.
		s.engs.sta.SetSkew(in.ID, e.Skew.SkewPS)
		return nil

	case e.Merge != nil:
		return s.applyMerge(e.Merge, res)

	case e.Split != nil:
		return s.applySplit(e.Split, res)

	case e.Connect != nil:
		p, err := s.findPin(e.Connect.Inst, e.Connect.Pin, e.Connect.Bit)
		if err != nil {
			return err
		}
		var net *netlist.Net
		s.d.Nets(func(n *netlist.Net) {
			if n.Name == e.Connect.Net {
				net = n
			}
		})
		if net == nil {
			return fmt.Errorf("unknown net %q", e.Connect.Net)
		}
		if p.Dir == netlist.DirOut && net.Driver != netlist.NoID && net.Driver != p.ID {
			return fmt.Errorf("net %q already driven", e.Connect.Net)
		}
		s.d.Connect(p, net)
		return nil

	case e.Disconnect != nil:
		p, err := s.findPin(e.Disconnect.Inst, e.Disconnect.Pin, e.Disconnect.Bit)
		if err != nil {
			return err
		}
		s.d.Disconnect(p)
		return nil
	}
	return fmt.Errorf("edit has no operation")
}

// applyMerge merges the named registers into one MBR, following the
// composition engine's conventions: scan-aware merge order, clock pins
// released to the domain root first, scan plan updated, and the new MBR
// legalized incrementally.
//
// Every fallible check runs before the first mutation, and the clock
// release is rolled back if the netlist merge is still rejected, so a
// failed merge edit is side-effect free. The journal-keeping caller
// (internal/serve) depends on that: a failed edit is not journaled, and
// any surviving mutation would make snapshot replay diverge from the live
// session.
func (s *Session) applyMerge(e *MergeEdit, res *ApplyResult) error {
	insts := make([]*netlist.Inst, len(e.Group))
	ids := make([]netlist.InstID, len(e.Group))
	members := make(map[netlist.InstID]bool, len(e.Group))
	totalBits := 0
	for i, name := range e.Group {
		in, err := s.liveInst(name)
		if err != nil {
			return err
		}
		if in.Kind != netlist.KindReg {
			return fmt.Errorf("group member %q is not a register", name)
		}
		if in.Fixed || in.SizeOnly {
			return fmt.Errorf("group member %q is fixed/size-only", name)
		}
		if members[in.ID] {
			return fmt.Errorf("group member %q listed twice", name)
		}
		members[in.ID] = true
		insts[i] = in
		ids[i] = in.ID
		totalBits += in.Bits()
	}
	// The MBR name must be free; a group member's own name is fine since
	// the member dies in the merge.
	if ex := s.d.InstByName(e.Name); ex != nil && !members[ex.ID] {
		return fmt.Errorf("instance %q already exists", e.Name)
	}

	// Cell: explicit, or the smallest fitting width of the first member's
	// class at its drive strength.
	cell := s.d.Lib.CellByName(e.Cell)
	if e.Cell != "" && cell == nil {
		return fmt.Errorf("unknown cell %q", e.Cell)
	}
	if cell == nil {
		class := insts[0].RegCell.Class
		width, ok := s.d.Lib.SmallestWidthAtLeast(class, totalBits)
		if !ok {
			return fmt.Errorf("no %s cell fits %d bits", class.Key(), totalBits)
		}
		cell = s.d.Lib.SelectCell(class, width, insts[0].RegCell.DriveRes)
		if cell == nil {
			return fmt.Errorf("no %d-bit cell for class %s", width, class.Key())
		}
	}
	if totalBits > cell.Bits {
		return fmt.Errorf("%d bits exceed %d-bit cell %q", totalBits, cell.Bits, cell.Name)
	}

	// Shared control nets must agree. The clock is exempt here: members on
	// different tree leaf nets are released to their common domain root
	// below, which is exactly what makes their clock nets agree.
	for _, kind := range []netlist.PinKind{netlist.PinReset, netlist.PinEnable, netlist.PinScanEnable} {
		ref := s.d.ControlNet(insts[0], kind)
		for _, in := range insts[1:] {
			if s.d.ControlNet(in, kind) != ref {
				return fmt.Errorf("group member %q disagrees on %v net", in.Name, kind)
			}
		}
	}

	// Position: explicit (both coordinates — zero is a real position), or
	// the group centroid snapped to the site grid.
	var pos geom.Point
	if e.X != nil && e.Y != nil {
		pos = geom.Point{X: *e.X, Y: *e.Y}
	} else {
		var sx, sy int64
		for _, in := range insts {
			sx += in.Pos.X
			sy += in.Pos.Y
		}
		pos = geomSnap(s.d, sx/int64(len(insts)), sy/int64(len(insts)))
	}

	// Merge order: scan order when scanned (MergeRegisters packs bits in
	// group order, and scan stitching follows that order). MergeOrder and
	// GroupCompatible are read-only; checking compatibility on the exact
	// ordered IDs handed to plan.ApplyMerge later makes its internal
	// re-check infallible.
	ordered := insts
	if s.plan != nil {
		mo := s.plan.MergeOrder(ids)
		ordered = make([]*netlist.Inst, len(mo))
		for i, id := range mo {
			ordered[i] = s.d.Inst(id)
		}
	}
	memberIDs := make([]netlist.InstID, len(ordered))
	for i, in := range ordered {
		memberIDs[i] = in.ID
	}
	if s.plan != nil && !s.plan.GroupCompatible(memberIDs) {
		return fmt.Errorf("group is not scan-compatible")
	}

	// Commit. MergeRegisters validates before it tears anything down, so
	// its only remaining failure mode after the checks above is a clock
	// (or other control) net disagreement that the release did not unify —
	// members from different clock domains. On that rejection the released
	// clock pins are re-parented onto their original nets so the failed
	// edit leaves no trace.
	prevClk := make([]netlist.NetID, len(ordered))
	for i, in := range ordered {
		prevClk[i] = s.d.ClockNet(in)
	}
	s.engs.cts.ReleaseClocks(ordered)
	mr, err := s.d.MergeRegisters(ordered, cell, e.Name, pos)
	if err != nil {
		s.d.WithEditClass(netlist.EditClassCTS, func() {
			for i, in := range ordered {
				cp := s.d.ClockPin(in)
				if cp == nil || prevClk[i] == netlist.NoID || cp.Net == prevClk[i] {
					continue
				}
				s.d.Connect(cp, s.d.Net(prevClk[i]))
			}
		})
		return err
	}
	if s.plan != nil {
		// Pre-validated above on the same memberIDs; nothing in between
		// touches the plan, so this cannot fail.
		if err := s.plan.ApplyMerge(memberIDs, mr.MBR.ID); err != nil {
			return err
		}
	}
	place.LegalizeIncremental(s.d, []*netlist.Inst{mr.MBR})
	res.Merged = append(res.Merged, mr.MBR.Name)
	return nil
}

// applySplit decomposes the named register into per-bit instances — the
// exact inverse of a merge edit. SplitRegister carries the same
// validate-then-commit contract as MergeRegisters, so with the cell
// resolved up front a failed split edit is side-effect free. The new bits
// inherit the original's clock-tree leaf net, which the retained tree
// engine adopts on its delta path (no clock release needed), and are
// legalized incrementally like a merge's MBR.
func (s *Session) applySplit(e *SplitEdit, res *ApplyResult) error {
	in, err := s.liveInst(e.Inst)
	if err != nil {
		return err
	}
	if in.Kind != netlist.KindReg || in.RegCell == nil {
		return fmt.Errorf("instance %q is not a register", e.Inst)
	}
	if in.Bits() < 2 {
		return fmt.Errorf("register %q is already single-bit", e.Inst)
	}
	// Cell: explicit, or the 1-bit cell of the register's class at its
	// drive strength.
	cell := s.d.Lib.CellByName(e.Cell)
	if e.Cell != "" && cell == nil {
		return fmt.Errorf("unknown cell %q", e.Cell)
	}
	if cell == nil {
		cell = s.d.Lib.SelectCell(in.RegCell.Class, 1, in.RegCell.DriveRes)
		if cell == nil {
			return fmt.Errorf("no 1-bit cell for class %s", in.RegCell.Class.Key())
		}
	}
	origID, origName := in.ID, in.Name
	parts, err := s.d.SplitRegister(in, cell)
	if err != nil {
		return err
	}
	ids := make([]netlist.InstID, len(parts))
	for i, p := range parts {
		ids[i] = p.ID
	}
	if s.plan != nil {
		// The parts are brand-new instances, never on a chain, so the only
		// ApplySplit failure mode (a part already chained) cannot occur.
		if err := s.plan.ApplySplit(origID, ids); err != nil {
			return err
		}
	}
	place.LegalizeIncremental(s.d, parts)
	res.Split = append(res.Split, origName)
	return nil
}

func (s *Session) liveInst(name string) (*netlist.Inst, error) {
	if name == "" {
		return nil, fmt.Errorf("missing instance name")
	}
	in := s.d.InstByName(name)
	if in == nil {
		return nil, fmt.Errorf("unknown instance %q", name)
	}
	return in, nil
}

func (s *Session) findPin(inst, pin string, bit int) (*netlist.Pin, error) {
	in, err := s.liveInst(inst)
	if err != nil {
		return nil, err
	}
	kind, ok := pinKinds[pin]
	if !ok {
		return nil, fmt.Errorf("unknown pin kind %q", pin)
	}
	p := s.d.FindPin(in, kind, bit)
	if p == nil {
		return nil, fmt.Errorf("no %s[%d] pin on %q", pin, bit, inst)
	}
	return p, nil
}
