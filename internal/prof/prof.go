// Package prof is the CLIs' shared pprof plumbing: one call wires the
// -cpuprofile/-memprofile flags every scale-run tool offers, so bottlenecks
// at paper scale are attributable with `go tool pprof` instead of code
// edits. Empty paths disable the respective profile.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends it and writes an allocs-included heap profile to
// memPath (when non-empty). Call stop exactly once, after the measured work;
// deferring it from main is the intended shape.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: write heap profile:", err)
			}
		}
	}, nil
}
