package core

import (
	"encoding/binary"
	"math"
	"sort"
	"time"

	"repro/internal/compat"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/scan"
)

// Engine is the retained compose engine: across repeated composition passes
// over an evolving design it memoizes per-subgraph solve results keyed by a
// full signature of everything solveSubgraph reads, so a pass re-solves
// only the subgraphs something actually changed under. The memo follows the
// partition.Cache discipline — exact encoding, not a hash, with entries not
// touched in a round evicted — and dirty subgraphs warm-start their branch
// & bound from the previous selection of the same member set
// (ilp.CoverInstance.Warm), whose contract keeps every solve bit-identical
// to a cold one.
//
// The signature covers, per subgraph: the member list in order (instance
// ID, cell name — which pins bits, dimensions, drive and class — position,
// timing-feasible region, and scan chain/partition/order/position under the
// graph's plan), the subgraph-local adjacency, and the blocker environment
// (every register center inside the bounding box of all member footprint
// corners; any candidate's blocker polygon is contained in that box).
// Solve-relevant Options and the plan's AllowCrossChain flag are encoded
// once per round; a change drops the whole memo. The cell library is
// treated as immutable, like every other retained engine treats it.
//
// Because signatures re-encode current state every round, stale entries can
// never replay: correctness needs no invalidation feed. Clean-subgraph
// hints (from the compat engine's partition cache and dirty-node deltas)
// are consumed for accounting only — a hinted-clean subgraph whose
// signature missed is counted as a hint miss, not trusted.
//
// Engine.Compose is bit-identical to the memo-free ComposeWith at any
// worker count: replays restore the stored selection, objective and counts
// verbatim; fresh solves run the identical pipeline; and the ordered reduce
// and commit are shared code. The only field that may legitimately diverge
// is Result.ILPNodes on warm-started solves, where the probe/retry
// accounting differs from a cold search while the chosen columns do not.
// A round with the memo disabled or more subgraphs than MemoLimit falls
// back to the memo-free path wholesale and drops the retained state.
type Engine struct {
	d       *netlist.Design
	memo    map[string]*memoEntry
	lineage map[string][][]netlist.InstID
	optsSig string
	workers int
	stats   EngineStats
	sum     engine.Summary
	// ri is the blocker-environment index, retained across rounds and
	// rebuilt only when the design's edit epoch moved — a settled round
	// (multi-pass tail) pays no O(registers) re-index.
	ri      *regIndex
	riEpoch uint64
}

// memoPick is one selected multi-member candidate in index-independent
// form: member ordinals within the subgraph's node list plus the scored
// fields commitSelected and the Result accounting read.
type memoPick struct {
	ords      []int
	totalBits int
	width     int
	weight    float64
	blockers  int
}

// memoEntry is a replayable subgraph solve: everything the ordered reduce
// consumes, so a hit contributes to the Result exactly like the solve that
// produced it did.
type memoEntry struct {
	picks      []memoPick
	objective  float64
	ilpNodes   int
	candidates int
	truncated  bool
}

// EngineStats are the retained compose engine's cumulative counters.
type EngineStats struct {
	// Rounds counts Compose calls served.
	Rounds int
	// SubgraphsSeen / SubgraphsReused / SubgraphsSolved count subgraphs
	// presented, replayed from the memo, and solved fresh.
	SubgraphsSeen   int
	SubgraphsReused int
	SubgraphsSolved int
	// ILPNodesSaved sums the stored branch & bound node counts of replayed
	// subgraphs — the search work the memo avoided re-spending.
	ILPNodesSaved int
	// WarmSeeded / WarmAccepted / WarmRetried count dirty-subgraph solves
	// whose branch & bound was seeded from the previous selection, solves
	// where that selection proved still optimal, and probes that had to
	// re-run with the canonical greedy seed.
	WarmSeeded   int
	WarmAccepted int
	WarmRetried  int
	// TightenPruned sums columns removed by reduced-cost root tightening
	// across fresh solves.
	TightenPruned int
	// HintedClean / HintMisses count subgraphs the caller hinted clean,
	// and those hints contradicted by a signature miss.
	HintedClean int
	HintMisses  int
	// Fallbacks counts rounds served by the memo-free path (memo disabled
	// or subgraph count over MemoLimit).
	Fallbacks int
	// SchedShards / SchedSteals accumulate the work-stealing scheduler's
	// counters across rounds: shards scheduled on the parallel path, and
	// shards a worker claimed from another worker's queue. SchedSteals is
	// schedule-dependent diagnostics, not part of any identity oracle.
	SchedShards int
	SchedSteals int
	// Invalidations counts retained-state drops (Invalidate calls and
	// solve-relevant option changes).
	Invalidations int
	// MemoEntries is the live entry count after the last round.
	MemoEntries int
}

// NewEngine returns a retained compose engine bound to the design.
func NewEngine(d *netlist.Design) *Engine {
	return &Engine{d: d}
}

// Invalidate drops the memo and warm-start lineage; the next Compose
// re-solves everything (engine.Retained contract).
func (e *Engine) Invalidate() {
	e.memo = nil
	e.lineage = nil
	e.optsSig = ""
	e.ri = nil
	e.stats.Invalidations++
	e.stats.MemoEntries = 0
}

// regIndex returns the retained blocker index, rebuilding it only when the
// design changed since it was built. Every register add/remove/move goes
// through Design methods that bump the edit epoch, so an equal epoch proves
// the index content-fresh.
func (e *Engine) regIndex() *regIndex {
	if e.ri == nil || e.riEpoch != e.d.Epoch() {
		e.ri = newRegIndex(e.d)
		e.riEpoch = e.d.Epoch()
	}
	return e.ri
}

// SetWorkers bounds the engine's parallelism; rounds whose Options leave
// Workers at 0 inherit it. Results are identical for any value.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// Summary reports the uniform update counters (engine.Retained contract).
func (e *Engine) Summary() engine.Summary { return e.sum }

// Stats reports the engine's cumulative counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Compose runs one composition pass through the retained memo. The
// arguments mirror ComposeWith; clean, when non-nil, carries per-subgraph
// clean hints aligned with subgraphs (see compatgraph.Engine.SubgraphHints)
// and is used for accounting only.
func (e *Engine) Compose(g *compat.Graph, plan *scan.Plan, subgraphs [][]int, clean []bool, opts Options) (*Result, error) {
	start := time.Now()
	opts = normalizeOptions(opts)
	if opts.Workers == 0 {
		opts.Workers = e.workers
	}
	res := &Result{
		RegsBefore:     len(e.d.Registers()),
		ComposableRegs: len(g.Regs),
	}
	if subgraphs == nil {
		subgraphs = partition.Decompose(len(g.Regs), g.Adj,
			func(n int) geom.Point { return g.Regs[n].ClockPos }, opts.MaxSubgraphNodes)
	}
	res.Subgraphs = len(subgraphs)
	res.Workers = resolveWorkers(opts.Workers)
	e.sum.Updates++
	e.stats.Rounds++
	e.stats.SubgraphsSeen += len(subgraphs)

	if os := encodeOptsSig(opts, g.Plan); os != e.optsSig {
		if e.optsSig != "" {
			e.stats.Invalidations++
		}
		e.memo = nil
		e.lineage = nil
		e.optsSig = os
	}

	limit := opts.MemoLimit
	if limit <= 0 {
		limit = 65536
	}
	if opts.DisableSolveMemo || len(subgraphs) > limit {
		// Memo-free fallback: the exact pipeline ComposeWith runs. The
		// retained state is dropped — bounded memory beats stale warmth.
		kind := "memo-off"
		if !opts.DisableSolveMemo {
			kind = "overflow"
		}
		e.memo = nil
		e.lineage = nil
		e.stats.Fallbacks++
		e.stats.SubgraphsSolved += len(subgraphs)
		e.stats.MemoEntries = 0
		e.sum.Rebuilds++
		e.sum.LastKind = kind
		ri := e.regIndex()
		subResults, st, err := solveSubgraphs(e.d, g, ri, subgraphs, opts)
		if err != nil {
			return nil, err
		}
		res.SchedShards = st.shards
		res.SchedSteals = st.steals
		e.stats.SchedShards += st.shards
		e.stats.SchedSteals += st.steals
		selected := reduceResults(subResults, res)
		if err := commitSelected(e.d, g, plan, selected, opts, res); err != nil {
			return nil, err
		}
		res.Runtime = time.Since(start)
		return res, nil
	}

	ri := e.regIndex()
	type slot struct {
		sr     subgraphResult
		sig    string
		ent    *memoEntry
		reused bool
		err    error
	}
	slots := make([]slot, len(subgraphs))
	process := func(i int) {
		nodes := subgraphs[i]
		sig := subgraphSig(g, ri, nodes)
		slots[i].sig = sig
		if ent, ok := e.memo[sig]; ok {
			slots[i].ent = ent
			slots[i].sr = ent.replay(nodes)
			slots[i].reused = true
			return
		}
		var warm [][]int
		if !opts.DisableWarmStart && opts.Method == MethodILP {
			if prev, ok := e.lineage[memberKey(g, nodes)]; ok {
				warm = mapIDsToOrds(g, nodes, prev)
			}
		}
		sr, err := solveSubgraph(e.d, g, ri, nodes, opts, warm)
		if err != nil {
			slots[i].err = err
			return
		}
		slots[i].sr = sr
		slots[i].ent = entryOf(sr, nodes)
	}

	// Shard the round across the pool with the work-stealing scheduler
	// (scheduler.go). Memo hits make the cost model an overestimate for
	// replayed shards, but stealing absorbs the imbalance; the clamp runs
	// against schedulable units so large subgraphs' intra-clique branches
	// can still use idle CPUs.
	workers := resolveWorkers(opts.Workers)
	if u := schedulableUnits(subgraphs, opts.ParallelCliqueThreshold); workers > u {
		workers = u
	}
	if workers <= 1 {
		for i := range subgraphs {
			process(i)
		}
	} else {
		st := runSharded(estimateShardCosts(g, subgraphs), workers, process)
		res.SchedShards = st.shards
		res.SchedSteals = st.steals
		e.stats.SchedShards += st.shards
		e.stats.SchedSteals += st.steals
	}

	// Sequential merge in subgraph index order: surface the lowest-index
	// error (what the sequential loop would have hit first), rotate the
	// memo partition.Cache-style (untouched entries are stale — their
	// subgraph changed or vanished — and are dropped), and refresh the
	// member-set lineage that seeds the next round's warm starts.
	nextMemo := make(map[string]*memoEntry, len(subgraphs))
	nextLineage := make(map[string][][]netlist.InstID, len(subgraphs))
	subResults := make([]subgraphResult, len(subgraphs))
	reusedCount := 0
	for i := range slots {
		if slots[i].err != nil {
			e.memo = nil
			e.lineage = nil
			return nil, slots[i].err
		}
		sr := slots[i].sr
		subResults[i] = sr
		hinted := clean != nil && i < len(clean) && clean[i]
		if hinted {
			e.stats.HintedClean++
		}
		if slots[i].reused {
			reusedCount++
			e.stats.SubgraphsReused++
			e.stats.ILPNodesSaved += sr.ilpNodes
		} else {
			e.stats.SubgraphsSolved++
			if hinted {
				e.stats.HintMisses++
			}
			if sr.warmSeeded {
				e.stats.WarmSeeded++
			}
			if sr.warmAccepted {
				e.stats.WarmAccepted++
			}
			if sr.warmRetried {
				e.stats.WarmRetried++
			}
			e.stats.TightenPruned += sr.tightenPruned
		}
		nextMemo[slots[i].sig] = slots[i].ent
		nextLineage[memberKey(g, subgraphs[i])] = pickIDs(g, subgraphs[i], slots[i].ent)
	}
	e.memo = nextMemo
	e.lineage = nextLineage
	e.stats.MemoEntries = len(nextMemo)
	switch {
	case e.sum.Updates == 1:
		e.sum.Rebuilds++
		e.sum.LastKind = "initial"
	case reusedCount > 0 || len(subgraphs) == 0:
		e.sum.Deltas++
		e.sum.LastKind = "memo-delta"
	default:
		e.sum.Rebuilds++
		e.sum.LastKind = "all-fresh"
	}

	selected := reduceResults(subResults, res)
	if err := commitSelected(e.d, g, plan, selected, opts, res); err != nil {
		return nil, err
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// replay reconstructs the subgraph's solve outcome over the current node
// list. Valid only on an exact signature hit, which pins the node list
// (members and order) the ordinals refer to.
func (ent *memoEntry) replay(nodes []int) subgraphResult {
	sr := subgraphResult{
		objective:  ent.objective,
		ilpNodes:   ent.ilpNodes,
		candidates: ent.candidates,
		truncated:  ent.truncated,
	}
	for _, p := range ent.picks {
		c := candidate{
			nodes:     make([]int, len(p.ords)),
			totalBits: p.totalBits,
			width:     p.width,
			weight:    p.weight,
			blockers:  p.blockers,
		}
		for j, o := range p.ords {
			c.nodes[j] = nodes[o]
		}
		sr.picked = append(sr.picked, c)
	}
	return sr
}

// entryOf converts a fresh solve into the index-independent memo form.
func entryOf(sr subgraphResult, nodes []int) *memoEntry {
	ord := make(map[int]int, len(nodes))
	for i, n := range nodes {
		ord[n] = i
	}
	ent := &memoEntry{
		objective:  sr.objective,
		ilpNodes:   sr.ilpNodes,
		candidates: sr.candidates,
		truncated:  sr.truncated,
	}
	for _, c := range sr.picked {
		p := memoPick{
			ords:      make([]int, len(c.nodes)),
			totalBits: c.totalBits,
			width:     c.width,
			weight:    c.weight,
			blockers:  c.blockers,
		}
		for j, n := range c.nodes {
			p.ords[j] = ord[n]
		}
		ent.picks = append(ent.picks, p)
	}
	return ent
}

// pickIDs rewrites an entry's picks as member instance-ID sets — the
// node-index-independent form the warm-start lineage stores.
func pickIDs(g *compat.Graph, nodes []int, ent *memoEntry) [][]netlist.InstID {
	out := make([][]netlist.InstID, 0, len(ent.picks))
	for _, p := range ent.picks {
		ids := make([]netlist.InstID, len(p.ords))
		for j, o := range p.ords {
			ids[j] = regOf(g, nodes[o]).ID
		}
		out = append(out, ids)
	}
	return out
}

// mapIDsToOrds maps a previous selection (instance-ID sets) onto the
// current subgraph's member ordinals, sorted per set. Picks naming an
// instance outside the subgraph are dropped — the remaining picks plus
// singleton fill still form a feasible warm cover.
func mapIDsToOrds(g *compat.Graph, nodes []int, picks [][]netlist.InstID) [][]int {
	ord := make(map[netlist.InstID]int, len(nodes))
	for i, n := range nodes {
		ord[regOf(g, n).ID] = i
	}
	out := make([][]int, 0, len(picks))
	for _, ids := range picks {
		os := make([]int, 0, len(ids))
		ok := true
		for _, id := range ids {
			o, found := ord[id]
			if !found {
				ok = false
				break
			}
			os = append(os, o)
		}
		if !ok {
			continue
		}
		sort.Ints(os)
		out = append(out, os)
	}
	return out
}

// memberKey encodes a subgraph's member set (sorted instance IDs) — the
// lineage key that pairs a dirty subgraph with its previous selection.
func memberKey(g *compat.Graph, nodes []int) string {
	ids := make([]int64, len(nodes))
	for i, n := range nodes {
		ids[i] = int64(regOf(g, n).ID)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	buf := make([]byte, 0, 8*len(ids))
	var w [8]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint64(w[:], uint64(id))
		buf = append(buf, w[:]...)
	}
	return string(buf)
}

// encodeOptsSig captures the solve-relevant Options plus the plan's global
// cross-chain flag — everything a subgraph solve reads that the
// per-subgraph signature does not carry. Commit-only fields (NamePrefix,
// ReleaseClocks) and result-neutral knobs (Workers, the memo and
// warm-start toggles) stay out: changing them must not drop the memo.
func encodeOptsSig(opts Options, plan *scan.Plan) string {
	buf := make([]byte, 0, 64)
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	putBool := func(b bool) {
		if b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	put(uint64(opts.Method))
	putBool(opts.AllowIncomplete)
	put(math.Float64bits(opts.IncompleteAreaOverhead))
	putBool(opts.PerBitAreaRule)
	putBool(opts.UseWeights)
	put(uint64(int64(opts.MaxCandidatesPerSubgraph)))
	put(uint64(int64(opts.ILPNodeLimit)))
	putBool(plan != nil)
	if plan != nil {
		putBool(plan.AllowCrossChain)
	}
	return string(buf)
}

// subgraphSig is the exact encoding of everything solveSubgraph reads for
// this subgraph, beyond what encodeOptsSig carries globally. Equal
// signatures imply equal solve inputs, so a memo hit replays a result the
// pipeline would reproduce verbatim.
func subgraphSig(g *compat.Graph, ri *regIndex, nodes []int) string {
	buf := make([]byte, 0, 64+96*len(nodes))
	var w [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		buf = append(buf, w[:]...)
	}
	putStr := func(s string) {
		put(int64(len(s)))
		buf = append(buf, s...)
	}

	put(int64(len(nodes)))
	local := make(map[int]int, len(nodes))
	var bb geom.Rect
	for i, n := range nodes {
		local[n] = i
		info := g.Regs[n]
		in := info.Inst
		put(int64(in.ID))
		putStr(in.RegCell.Name)
		put(in.Pos.X)
		put(in.Pos.Y)
		put(info.Region.Lo.X)
		put(info.Region.Lo.Y)
		put(info.Region.Hi.X)
		put(info.Region.Hi.Y)
		if g.Plan != nil {
			if c, pos, ok := g.Plan.ChainOf(in.ID); ok {
				buf = append(buf, 1)
				put(int64(c.ID))
				put(int64(c.Partition))
				if c.Ordered {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
				put(int64(pos))
			} else {
				buf = append(buf, 0)
			}
		}
		b := in.Bounds()
		if i == 0 {
			bb = b
		} else {
			if b.Lo.X < bb.Lo.X {
				bb.Lo.X = b.Lo.X
			}
			if b.Lo.Y < bb.Lo.Y {
				bb.Lo.Y = b.Lo.Y
			}
			if b.Hi.X > bb.Hi.X {
				bb.Hi.X = b.Hi.X
			}
			if b.Hi.Y > bb.Hi.Y {
				bb.Hi.Y = b.Hi.Y
			}
		}
	}

	// Subgraph-local adjacency, as ordinal pairs in adjacency-list order.
	for _, n := range nodes {
		marker := len(buf)
		buf = append(buf, w[:]...) // count placeholder
		cnt := int64(0)
		for _, m := range g.Adj[n] {
			if j, ok := local[m]; ok {
				put(int64(j))
				cnt++
			}
		}
		binary.LittleEndian.PutUint64(buf[marker:marker+8], uint64(cnt))
	}

	// Blocker environment: every register center inside the bounding box of
	// all member footprint corners. Any candidate's blocker query scans the
	// bounding box of a convex hull of a subset of those corners, which this
	// box contains — so registers outside it can never affect a weight.
	// Encoded in inBox iteration order, which the regIndex's (X, instance
	// ID) sort makes a pure function of the indexed content — no re-sort
	// needed, and unchanged content can never read as a change.
	marker := len(buf)
	buf = append(buf, w[:]...) // count placeholder
	cnt := int64(0)
	if len(nodes) > 0 {
		var ee [24]byte
		ri.inBox(bb, func(id netlist.InstID, p geom.Point) {
			binary.LittleEndian.PutUint64(ee[0:8], uint64(id))
			binary.LittleEndian.PutUint64(ee[8:16], uint64(p.X))
			binary.LittleEndian.PutUint64(ee[16:24], uint64(p.Y))
			buf = append(buf, ee[:]...)
			cnt++
		})
	}
	binary.LittleEndian.PutUint64(buf[marker:marker+8], uint64(cnt))
	return string(buf)
}
