package core

import (
	"runtime"

	"repro/internal/compat"
	"repro/internal/ilp"
	"repro/internal/netlist"
)

// The per-partition stages of composition — Bron–Kerbosch sub-clique
// enumeration, candidate scoring and the per-subgraph set-partitioning ILP —
// are independent by construction: partitioning (§3) decomposes the
// compatibility graph into disjoint node sets, and every input the stages
// read (the design database, the library, the compatibility graph, the scan
// plan, the register index) is immutable while they run. Only the commit
// phase mutates the design, and it stays sequential.
//
// solveSubgraphs exploits that: subgraphs are sharded across a bounded
// worker pool by the work-stealing scheduler (scheduler.go), and the
// results are merged by an ordered reduce — every
// accumulation (candidate counts, branch & bound nodes, the floating-point
// objective sum, the selected candidate list) happens in subgraph index
// order, exactly as the sequential loop would have done it. Together with
// the deterministic commit order this makes the composition result
// byte-identical for any worker count and any goroutine schedule.

// subgraphResult is the outcome of the per-partition pipeline on one
// subgraph, before the ordered reduce.
type subgraphResult struct {
	// picked are the selected multi-member candidates (singleton "keep"
	// decisions are dropped here, as the sequential path does).
	picked []candidate
	// objective is the subgraph's selection objective (ILP or greedy).
	objective float64
	// ilpNodes is the branch & bound node count (0 for greedy).
	ilpNodes int
	// candidates is the enumerated candidate count, singletons included.
	candidates int
	// truncated reports that candidate enumeration hit its cap.
	truncated bool
	// warmSeeded/warmAccepted/warmRetried and tightenPruned carry the
	// solver's warm-start and root-tightening accounting up to the retained
	// engine's stats; they do not participate in the ordered reduce.
	warmSeeded    bool
	warmAccepted  bool
	warmRetried   bool
	tightenPruned int
}

// resolveWorkers maps the Options.Workers convention to a concrete worker
// count: 0 (or negative) means one worker per available CPU, 1 is the
// sequential legacy path, anything else is taken literally.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// solveSubgraph runs the full per-partition pipeline on one subgraph:
// enumeration, scoring, selection. It only reads shared state and is safe to
// call concurrently for disjoint subgraphs. warm, when non-nil, is the
// previous pass's selection for this subgraph (sorted member-ordinal sets)
// and seeds the ILP's branch & bound; the solver contract keeps the outcome
// bit-identical to a cold solve.
func solveSubgraph(
	d *netlist.Design,
	g *compat.Graph,
	ri *regIndex,
	nodes []int,
	opts Options,
	warm [][]int,
) (subgraphResult, error) {
	var sr subgraphResult
	cands, truncated, err := enumerateCandidates(d, g, ri, nodes, opts)
	if err != nil {
		return sr, err
	}
	sr.truncated = truncated
	sr.candidates = len(cands)

	var picked []candidate
	switch opts.Method {
	case MethodGreedy:
		picked, sr.objective = selectGreedy(d, g, nodes, cands)
	default:
		var cr *ilp.CoverResult
		picked, cr, err = selectILP(nodes, cands, opts, warm)
		if err != nil {
			return sr, err
		}
		sr.objective = cr.Objective
		sr.ilpNodes = cr.Nodes
		sr.warmSeeded = cr.WarmSeeded
		sr.warmAccepted = cr.WarmAccepted
		sr.warmRetried = cr.WarmRetried
		sr.tightenPruned = cr.TightenPruned
	}
	for _, c := range picked {
		if len(c.nodes) > 1 {
			sr.picked = append(sr.picked, c)
		}
	}
	return sr, nil
}

// solveSubgraphs runs solveSubgraph over every subgraph and returns the
// results indexed like the input. With workers == 1 it runs the legacy
// sequential loop; otherwise the subgraphs are sharded across the pool by
// the work-stealing scheduler (see scheduler.go) so a skewed cost
// distribution no longer serializes the tail. The pool is clamped against
// schedulableUnits rather than len(subgraphs): with a few huge subgraphs,
// the extra workers pick up the intra-subgraph clique branches instead of
// idling. Each shard writes only its own result slot, so no locking is
// needed beyond the completion barrier. Errors are reported by the
// lowest-index failing subgraph, matching what the sequential loop would
// have surfaced first.
func solveSubgraphs(
	d *netlist.Design,
	g *compat.Graph,
	ri *regIndex,
	subgraphs [][]int,
	opts Options,
) ([]subgraphResult, schedStats, error) {
	results := make([]subgraphResult, len(subgraphs))
	workers := resolveWorkers(opts.Workers)
	if u := schedulableUnits(subgraphs, opts.ParallelCliqueThreshold); workers > u {
		workers = u
	}
	if workers <= 1 {
		for i, nodes := range subgraphs {
			sr, err := solveSubgraph(d, g, ri, nodes, opts, nil)
			if err != nil {
				return nil, schedStats{}, err
			}
			results[i] = sr
		}
		return results, schedStats{}, nil
	}

	errs := make([]error, len(subgraphs))
	st := runSharded(estimateShardCosts(g, subgraphs), workers, func(idx int) {
		results[idx], errs[idx] = solveSubgraph(d, g, ri, subgraphs[idx], opts, nil)
	})
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	return results, st, nil
}
