package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/partition"
)

// Streamed subgraph pipeline. The batch entry points used to materialize
// the whole decomposition (partition.Decompose) and a result slot per
// subgraph before anything was solved — O(all shards) resident state that
// at paper scale dwarfs the per-shard working set. solveStreamed instead
// drives partition.Stream through bounded channels: shards are decomposed,
// solved (enumeration → weighting → ILP) and reduced one at a time, and a
// token window caps how far production may run ahead of the ordered reduce,
// so peak memory is O(live shards) — queued + solving + awaiting reduce —
// regardless of design size.
//
// Determinism: partition.Stream yields shards in exactly Decompose order,
// every result carries its shard index, and the reducer consumes results
// strictly in index order through a reorder buffer — the same ordered
// reduce the materialized path runs, so the composition result is
// byte-identical to it at any worker count. Errors surface as the
// lowest-index failing shard, like the sequential loop.

// streamWindow bounds produced-but-not-reduced shards for a worker count.
func streamWindow(workers int) int {
	w := 4 * workers
	if w < 16 {
		w = 16
	}
	return w
}

// raiseMax lifts *peak to at least v.
func raiseMax(peak *int64, v int64) {
	for {
		cur := atomic.LoadInt64(peak)
		if v <= cur || atomic.CompareAndSwapInt64(peak, cur, v) {
			return
		}
	}
}

// solveStreamed decomposes g and solves every shard through the streaming
// pipeline, folding outcomes into res in shard index order and returning
// the selected candidates — the streamed equivalent of Decompose +
// solveSubgraphs + reduceResults.
func solveStreamed(
	d *netlist.Design,
	g *compat.Graph,
	ri *regIndex,
	opts Options,
	res *Result,
) ([]candidate, error) {
	pos := func(n int) geom.Point { return g.Regs[n].ClockPos }
	var selected []candidate
	reduceOne := func(sr subgraphResult) {
		if sr.truncated {
			res.TruncatedSubgraphs++
		}
		res.Candidates += sr.candidates
		res.ILPNodes += sr.ilpNodes
		res.ObjectiveSum += sr.objective
		selected = append(selected, sr.picked...)
		res.Subgraphs++
		res.StreamedShards++
	}

	workers := resolveWorkers(opts.Workers)
	if workers <= 1 {
		// Sequential streaming: one live shard, decompose-solve-reduce in
		// lockstep. Still O(1 shard) peak instead of the materialized list.
		var firstErr error
		partition.Stream(len(g.Regs), g.Adj, pos, opts.MaxSubgraphNodes, func(idx int, nodes []int) bool {
			sr, err := solveSubgraph(d, g, ri, nodes, opts, nil)
			if err != nil {
				firstErr = err
				return false
			}
			if sr.candidates > res.PeakLiveCands {
				res.PeakLiveCands = sr.candidates
			}
			reduceOne(sr)
			return true
		})
		if firstErr != nil {
			return nil, firstErr
		}
		if res.StreamedShards > 0 {
			res.PeakLiveShards = 1
		}
		return selected, nil
	}

	type streamJob struct {
		idx   int
		nodes []int
	}
	type streamDone struct {
		idx int
		sr  subgraphResult
		err error
	}
	window := streamWindow(workers)
	jobs := make(chan streamJob, workers)
	done := make(chan streamDone, window)
	tokens := make(chan struct{}, window)
	stop := make(chan struct{})
	var liveShards, peakShards, liveCands, peakCands int64

	go func() {
		defer close(jobs)
		partition.Stream(len(g.Regs), g.Adj, pos, opts.MaxSubgraphNodes, func(idx int, nodes []int) bool {
			// The token window is the memory bound: production blocks until
			// the reduce frees a slot.
			select {
			case tokens <- struct{}{}:
			case <-stop:
				return false
			}
			raiseMax(&peakShards, atomic.AddInt64(&liveShards, 1))
			select {
			case jobs <- streamJob{idx: idx, nodes: nodes}:
				return true
			case <-stop:
				return false
			}
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				select {
				case <-stop:
					// An earlier shard failed; drain without solving.
					done <- streamDone{idx: j.idx}
					continue
				default:
				}
				sr, err := solveSubgraph(d, g, ri, j.nodes, opts, nil)
				if err == nil {
					raiseMax(&peakCands, atomic.AddInt64(&liveCands, int64(sr.candidates)))
				}
				done <- streamDone{idx: j.idx, sr: sr, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Ordered reduce with a reorder buffer: results are consumed strictly in
	// shard index order, whatever order the workers finish in.
	pending := make(map[int]streamDone)
	next := 0
	var firstErr error
	for dn := range done {
		if firstErr != nil {
			continue // draining after failure
		}
		pending[dn.idx] = dn
		for {
			p, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if p.err != nil {
				firstErr = p.err
				close(stop)
				break
			}
			atomic.AddInt64(&liveCands, -int64(p.sr.candidates))
			atomic.AddInt64(&liveShards, -1)
			reduceOne(p.sr)
			<-tokens
			next++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res.PeakLiveShards = int(peakShards)
	res.PeakLiveCands = int(peakCands)
	return selected, nil
}
