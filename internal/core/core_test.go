package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/scan"
)

func TestWeightOf(t *testing.T) {
	cases := []struct {
		bits, blockers int
		singleton      bool
		want           float64
		keep           bool
	}{
		{1, 0, true, 1, true},
		{4, 0, true, 1, true}, // originals always cost 1
		{8, 0, false, 0.125, true},
		{4, 0, false, 0.25, true},
		{3, 1, false, 6, true},
		{8, 1, false, 16, true},
		{4, 3, false, 32, true},
		{4, 4, false, 0, false}, // n ≥ b → ∞ → dropped
		{2, 5, false, 0, false},
	}
	for i, c := range cases {
		got, keep := weightOf(c.bits, c.blockers, c.singleton)
		if keep != c.keep || (keep && math.Abs(got-c.want) > 1e-12) {
			t.Errorf("case %d: weightOf(%d,%d,%v) = (%g,%v) want (%g,%v)",
				i, c.bits, c.blockers, c.singleton, got, keep, c.want, c.keep)
		}
	}
}

func TestWeightPrefersCleanLargeOverSplit(t *testing.T) {
	// §3.2's worked comparison: a clean 8-bit (1/8) beats two clean 4-bit
	// (1/4 + 1/4); an 8-bit with one blocker (16) loses to a clean 4-bit +
	// a blocked 4-bit (1/4 + 8 = 8.25).
	w8clean, _ := weightOf(8, 0, false)
	w4clean, _ := weightOf(4, 0, false)
	if !(w8clean < 2*w4clean) {
		t.Fatal("clean 8-bit must beat two clean 4-bit")
	}
	w8blocked, _ := weightOf(8, 1, false)
	w4blocked, _ := weightOf(4, 1, false)
	if !(w4clean+w4blocked < w8blocked) {
		t.Fatalf("split (%g) must beat blocked 8-bit (%g)", w4clean+w4blocked, w8blocked)
	}
}

func TestWidthFor(t *testing.T) {
	widths := []int{1, 2, 4, 8}
	cases := []struct {
		total, want int
		ok          bool
	}{{1, 1, true}, {2, 2, true}, {3, 4, true}, {5, 8, true}, {8, 8, true}, {9, 0, false}}
	for _, c := range cases {
		got, ok := widthFor(widths, c.total)
		if got != c.want || ok != c.ok {
			t.Errorf("widthFor(%d) = %d,%v want %d,%v", c.total, got, ok, c.want, c.ok)
		}
	}
}

func TestBlockerCount(t *testing.T) {
	d, regs := exampleDesign(t, false)
	g := exampleGraph(d, regs)
	ri := newRegIndex(d)
	idx := map[string]int{"A": 0, "B": 1, "C": 2, "D": 3, "E": 4, "F": 5}
	if n := blockerCount(g, ri, []int{idx["B"], idx["C"]}); n != 1 {
		t.Fatalf("BC blockers = %d want 1 (D)", n)
	}
	if n := blockerCount(g, ri, []int{idx["A"], idx["B"], idx["C"], idx["D"]}); n != 0 {
		t.Fatalf("ABCD blockers = %d want 0", n)
	}
	if n := blockerCount(g, ri, []int{idx["A"], idx["E"]}); n != 0 {
		t.Fatalf("AE blockers = %d want 0", n)
	}
}

// randomFixture builds a design with n registers of one class in a rough
// grid, all mutually compatible (shared clock, generous regions), plus a
// manual complete compatibility graph.
func randomFixture(t testing.TB, n int, seed int64) (*netlist.Design, *compat.Graph) {
	t.Helper()
	l := lib.MustGenerateDefault()
	d := netlist.NewDesign("rand", geom.RectWH(0, 0, 400000, 400000), l)
	d.SiteW = 100
	d.RowH = 1200
	d.Timing.ClockPeriod = 2000
	clk := d.AddNet("clk", true)
	class := lib.FuncClass{Kind: lib.FlipFlop}
	rng := rand.New(rand.NewSource(seed))
	g := &compat.Graph{Excluded: map[netlist.InstID]compat.NotComposableReason{}}
	for i := 0; i < n; i++ {
		bits := []int{1, 1, 1, 2, 4}[rng.Intn(5)]
		cell := l.CellsOfWidth(class, bits)[0]
		r, err := d.AddRegister(fmt.Sprintf("r%d", i), cell,
			geom.Point{X: int64(rng.Intn(300)) * 1200, Y: int64(rng.Intn(300)) * 1200})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.ClockPin(r), clk)
		g.Regs = append(g.Regs, &compat.RegInfo{Inst: r, Region: d.Core, ClockPos: r.Center()})
	}
	g.Adj = make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Compatible when close (mimics placement compatibility).
			if g.Regs[i].Inst.Center().ManhattanDist(g.Regs[j].Inst.Center()) < 80000 {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], i)
			}
		}
	}
	return d, g
}

func TestComposeReducesRegistersAndStaysValid(t *testing.T) {
	d, g := randomFixture(t, 60, 42)
	place.Legalize(d)
	// Rebuild regions/centers after legalization.
	for _, ri := range g.Regs {
		ri.ClockPos = ri.Inst.Center()
	}
	opts := DefaultOptions()
	res, err := Compose(d, g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RegsAfter >= res.RegsBefore {
		t.Fatalf("no reduction: %d → %d", res.RegsBefore, res.RegsAfter)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.LegalizationFailed != 0 {
		t.Fatalf("%d MBRs failed legalization", res.LegalizationFailed)
	}
	if v := place.CheckLegal(d); len(v) != 0 {
		t.Fatalf("placement violations after composition: %v", v[0])
	}
	// Bookkeeping consistency.
	merged := 0
	for _, m := range res.MBRs {
		merged += len(m.Members)
	}
	if res.RegsBefore-res.RegsAfter != merged-len(res.MBRs) {
		t.Fatalf("count bookkeeping: before=%d after=%d merged=%d mbrs=%d",
			res.RegsBefore, res.RegsAfter, merged, len(res.MBRs))
	}
}

// With unit weights the ILP minimizes the register count exactly, so the
// greedy heuristic can never beat it — per subgraph and hence in total.
func TestComposeGreedyNeverBeatsILP(t *testing.T) {
	f := func(seed int64) bool {
		run := func(m Method) (int, bool) {
			d, g := randomFixture(t, 24, seed)
			opts := DefaultOptions()
			opts.Method = m
			opts.UseWeights = false
			res, err := Compose(d, g, nil, opts)
			if err != nil {
				return 0, false
			}
			return res.RegsAfter, true
		}
		ilpAfter, ok1 := run(MethodILP)
		greedyAfter, ok2 := run(MethodGreedy)
		return ok1 && ok2 && ilpAfter <= greedyAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestComposeWithScanPlan(t *testing.T) {
	l := lib.MustGenerateDefault()
	d := netlist.NewDesign("scan", geom.RectWH(0, 0, 400000, 400000), l)
	d.SiteW = 100
	d.RowH = 1200
	d.Timing.ClockPeriod = 2000
	clk := d.AddNet("clk", true)
	class := lib.FuncClass{Kind: lib.FlipFlop, Scan: lib.InternalScan}
	cell := l.CellsOfWidth(class, 1)[0]
	g := &compat.Graph{Excluded: map[netlist.InstID]compat.NotComposableReason{}}
	plan := scan.NewPlan()
	var ids []netlist.InstID
	for i := 0; i < 8; i++ {
		r, err := d.AddRegister(fmt.Sprintf("s%d", i), cell,
			geom.Point{X: int64(i) * 2400, Y: 1200})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.ClockPin(r), clk)
		g.Regs = append(g.Regs, &compat.RegInfo{Inst: r, Region: d.Core, ClockPos: r.Center()})
		ids = append(ids, r.ID)
	}
	// One ordered chain: only contiguous runs may merge.
	if _, err := plan.AddChain(0, true, ids); err != nil {
		t.Fatal(err)
	}
	g.Plan = plan
	g.Adj = make([][]int, len(g.Regs))
	for i := range g.Regs {
		for j := i + 1; j < len(g.Regs); j++ {
			if plan.PairCompatible(ids[i], ids[j]) {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], i)
			}
		}
	}
	res, err := Compose(d, g, plan, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.RegsAfter >= res.RegsBefore {
		t.Fatal("expected composition on the ordered chain")
	}
	if err := plan.Validate(d); err != nil {
		t.Fatal(err)
	}
	// The chain must still cover all bits in order and reference only live
	// instances; stitching must succeed.
	if err := plan.Stitch(d, "ts"); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComposeUnweightedUsesUnitCosts(t *testing.T) {
	d, regs := exampleDesign(t, false)
	g := exampleGraph(d, regs)
	opts := DefaultOptions()
	opts.UseWeights = false
	opts.AllowIncomplete = false
	res, err := Compose(d, g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Unit costs: minimize the number of chosen candidates = number of
	// final registers: 3 (e.g. ABCD + E + F).
	if math.Abs(res.ObjectiveSum-3) > 1e-9 {
		t.Fatalf("objective = %g want 3", res.ObjectiveSum)
	}
	if res.RegsAfter != 3 {
		t.Fatalf("regs after = %d want 3", res.RegsAfter)
	}
}

func TestBitWidthHistogram(t *testing.T) {
	d, _ := exampleDesign(t, false)
	h := BitWidthHistogram(d)
	if h[1] != 4 || h[2] != 1 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestComposeEmptyGraph(t *testing.T) {
	l := lib.MustGenerateDefault()
	d := netlist.NewDesign("empty", geom.RectWH(0, 0, 10000, 10000), l)
	g := &compat.Graph{Excluded: map[netlist.InstID]compat.NotComposableReason{}}
	res, err := Compose(d, g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MBRs) != 0 || res.RegsAfter != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSubgraphBoundRespected(t *testing.T) {
	d, g := randomFixture(t, 50, 7)
	opts := DefaultOptions()
	opts.MaxSubgraphNodes = 10
	res, err := Compose(d, g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	// With 50 nodes and bound 10 there must be ≥ 5 subgraphs.
	if res.Subgraphs < 5 {
		t.Fatalf("subgraphs = %d want ≥ 5", res.Subgraphs)
	}
}

func TestMappingUsesMinDriveResistance(t *testing.T) {
	// Two registers, one strong (X4) and one weak (X1): the MBR must be at
	// least as strong as the X4.
	l := lib.MustGenerateDefault()
	d := netlist.NewDesign("map", geom.RectWH(0, 0, 100000, 100000), l)
	d.SiteW = 100
	d.RowH = 1200
	clk := d.AddNet("clk", true)
	class := lib.FuncClass{Kind: lib.FlipFlop}
	ones := l.CellsOfWidth(class, 1)
	weak, strong := ones[0], ones[len(ones)-1]
	r1, _ := d.AddRegister("w", weak, geom.Point{X: 1200, Y: 1200})
	r2, _ := d.AddRegister("s", strong, geom.Point{X: 3600, Y: 1200})
	d.Connect(d.ClockPin(r1), clk)
	d.Connect(d.ClockPin(r2), clk)
	g := &compat.Graph{
		Regs: []*compat.RegInfo{
			{Inst: r1, Region: d.Core, ClockPos: r1.Center()},
			{Inst: r2, Region: d.Core, ClockPos: r2.Center()},
		},
		Adj:      [][]int{{1}, {0}},
		Excluded: map[netlist.InstID]compat.NotComposableReason{},
	}
	res, err := Compose(d, g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MBRs) != 1 {
		t.Fatalf("MBRs = %d want 1", len(res.MBRs))
	}
	got := res.MBRs[0].Cell
	if got.DriveRes > strong.DriveRes+1e-12 {
		t.Fatalf("mapped cell drive res %g weaker than strongest member %g",
			got.DriveRes, strong.DriveRes)
	}
}

func TestInspectCandidates(t *testing.T) {
	d, regs := exampleDesign(t, false)
	g := exampleGraph(d, regs)
	opts := DefaultOptions()
	opts.AllowIncomplete = false
	infos, err := InspectCandidates(d, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 6 singletons + 14 multi candidates (see TestFig3WeightsComplete).
	if len(infos) != 20 {
		t.Fatalf("candidates = %d want 20", len(infos))
	}
	singles, multis := 0, 0
	for _, ci := range infos {
		if len(ci.Members) == 1 {
			singles++
			if ci.Weight != 1 {
				t.Fatalf("singleton weight %g", ci.Weight)
			}
		} else {
			multis++
		}
		if ci.Incomplete {
			t.Fatal("no incomplete candidates expected")
		}
	}
	if singles != 6 || multis != 14 {
		t.Fatalf("singles=%d multis=%d", singles, multis)
	}
	// The design must be untouched.
	if len(d.Registers()) != 6 {
		t.Fatal("InspectCandidates must not modify the design")
	}
}

func TestComposeDeterministic(t *testing.T) {
	run := func() []string {
		d, g := randomFixture(t, 40, 77)
		res, err := Compose(d, g, nil, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, m := range res.MBRs {
			out = append(out, fmt.Sprintf("%s:%d@%v", m.Cell.Name, m.Bits, m.Inst.Pos))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic MBR count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic MBR %d: %s vs %s", i, a[i], b[i])
		}
	}
}
