package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/clique"
	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

// regIndex answers "which register centers lie inside this rectangle",
// backed by a center list sorted by (X, instance ID). The ID tie-break
// makes the iteration order of inBox a pure function of the indexed
// content, which lets consumers (the compose engine's subgraph signatures)
// encode query results in iteration order without re-sorting. It indexes
// every live register of the design — blocking registers (§3.2) are any
// registers, composable or not.
type regIndex struct {
	xs  []int64
	pts []geom.Point
	ids []netlist.InstID
}

func newRegIndex(d *netlist.Design) *regIndex {
	type entry struct {
		p  geom.Point
		id netlist.InstID
	}
	var es []entry
	for _, r := range d.Registers() {
		es = append(es, entry{r.Center(), r.ID})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].p.X != es[j].p.X {
			return es[i].p.X < es[j].p.X
		}
		return es[i].id < es[j].id
	})
	idx := &regIndex{}
	for _, e := range es {
		idx.xs = append(idx.xs, e.p.X)
		idx.pts = append(idx.pts, e.p)
		idx.ids = append(idx.ids, e.id)
	}
	return idx
}

// inBox calls f for every register center inside bb.
func (ri *regIndex) inBox(bb geom.Rect, f func(id netlist.InstID, p geom.Point)) {
	lo := sort.Search(len(ri.xs), func(i int) bool { return ri.xs[i] >= bb.Lo.X })
	for i := lo; i < len(ri.xs) && ri.xs[i] <= bb.Hi.X; i++ {
		if p := ri.pts[i]; p.Y >= bb.Lo.Y && p.Y <= bb.Hi.Y {
			f(ri.ids[i], p)
		}
	}
}

// blockerCount computes n_i for a candidate: registers (by center) inside
// the convex hull of the members' footprint corners, excluding the members
// themselves.
func blockerCount(g *compat.Graph, ri *regIndex, nodes []int) int {
	var corners []geom.Point
	member := map[netlist.InstID]bool{}
	for _, n := range nodes {
		in := regOf(g, n)
		member[in.ID] = true
		c := in.Bounds().Corners()
		corners = append(corners, c[:]...)
	}
	hull := geom.ConvexHull(corners)
	bb := geom.BoundingBox(hull)
	count := 0
	ri.inBox(bb, func(id netlist.InstID, p geom.Point) {
		if member[id] {
			return
		}
		if geom.PolygonContains(hull, p) {
			count++
		}
	})
	return count
}

// weightOf implements the §3.2 weight:
//
//	w = 1/b        when no register blocks the test polygon,
//	w = b·2ⁿ       when 0 < n < b,
//	(dropped)      when n ≥ b (the paper's w = ∞).
//
// Keep-as-is singletons cost exactly 1 (the "Original" rows of Fig. 3),
// so the objective approximates the final register count while still
// rewarding larger clean merges.
func weightOf(bits, blockers int, singleton bool) (float64, bool) {
	if singleton {
		return 1.0, true
	}
	if blockers == 0 {
		return 1.0 / float64(bits), true
	}
	if blockers >= bits {
		return 0, false
	}
	return float64(bits) * math.Pow(2, float64(blockers)), true
}

// enumerateCandidates produces the valid candidate set of one subgraph.
// Subgraphs are class-pure (compatibility edges never cross functional
// classes), so one library width set applies.
func enumerateCandidates(
	d *netlist.Design,
	g *compat.Graph,
	ri *regIndex,
	nodes []int,
	opts Options,
) (cands []candidate, truncated bool, err error) {
	if len(nodes) == 0 {
		return nil, false, nil
	}
	class := regOf(g, nodes[0]).RegCell.Class
	widths := d.Lib.Widths(class)
	if len(widths) == 0 {
		return nil, false, fmt.Errorf("core: no library widths for class %s", class.Key())
	}

	// Subgraph-local clique graph.
	cg := clique.NewGraph(len(nodes))
	local := map[int]int{}
	for i, n := range nodes {
		local[n] = i
	}
	for i, n := range nodes {
		for _, m := range g.Adj[n] {
			if j, ok := local[m]; ok && j > i {
				cg.AddEdge(i, j)
			}
		}
	}
	bits := make([]int, len(nodes))
	for i, n := range nodes {
		bits[i] = regOf(g, n).Bits()
	}
	maxCands := opts.MaxCandidatesPerSubgraph
	if maxCands <= 0 {
		maxCands = 6000
	}
	spec := clique.SubCliqueSpec{
		Bits:            bits,
		Widths:          widths,
		AllowIncomplete: opts.AllowIncomplete,
		MaxCandidates:   maxCands,
	}
	// Large subgraphs split their top-level Bron–Kerbosch branches across
	// the worker pool — byte-identical output by the clique package's
	// contract — so the single biggest component stops being the critical
	// path. Small subgraphs stay sequential; the goroutine machinery would
	// cost more than the enumeration.
	var res *clique.SubCliqueResult
	if thr := opts.ParallelCliqueThreshold; thr > 0 && len(nodes) >= thr {
		if w := resolveWorkers(opts.Workers); w > 1 {
			res, err = clique.EnumerateSubCliquesParallel(cg, spec, w)
		}
	}
	if res == nil && err == nil {
		res, err = clique.EnumerateSubCliques(cg, spec)
	}
	if err != nil {
		return nil, false, err
	}

	// Singletons first, outside the (possibly truncated) enumeration: every
	// register must always have its keep-as-is candidate (cost 1, its own
	// cell) or the set-partitioning ILP becomes infeasible.
	for _, n := range nodes {
		b := regOf(g, n).Bits()
		cands = append(cands, candidate{
			nodes: []int{n}, totalBits: b, width: b, weight: 1,
		})
	}

	// Multi-member groups are processed in two phases: a cheap sequential
	// generation pass lists the groups in the exact order the historical
	// single-pass loop appended them (clique enumeration order, then
	// truncation windows, with the same mask dedup), and an expensive
	// evaluation pass — scan/region/area filters, blocker counting,
	// weighting — runs over that list, possibly fanned out across workers
	// (evalSpecs). Survivors are appended in list order, so the candidate
	// slice is byte-identical for any worker count.
	var specs []candSpec
	seen := map[uint64]bool{}
	for ci, mask := range res.Cliques {
		members := clique.Members(mask)
		if len(members) == 1 {
			continue // singletons already added above
		}
		seen[mask] = true
		specs = append(specs, candSpec{members: members, total: res.TotalBits[ci]})
	}

	// Contiguous-window candidates: when the layered enumeration was
	// truncated before reaching large member counts (dense subgraphs of
	// single-bit registers), the large groups the weights actually favor —
	// geometrically contiguous runs, whose polygons are clean — are added
	// directly. Nodes are scanned in placement order (row, then x); each
	// window must still be a clique.
	if res.Truncated {
		order := make([]int, len(nodes))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			pa := regOf(g, nodes[order[a]]).Pos
			pb := regOf(g, nodes[order[b]]).Pos
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
		maxW := widths[len(widths)-1]
		for start := 0; start < len(order); start++ {
			var mask uint64
			var members []int
			total := 0
			for k := start; k < len(order); k++ {
				li := order[k]
				// Window must stay a clique.
				if mask&^cg.Neighbors(li) != 0 {
					break
				}
				total += bits[li]
				if total > maxW {
					break
				}
				mask |= 1 << uint(li)
				members = append(members, li)
				if len(members) >= 2 && !seen[mask] {
					seen[mask] = true
					specs = append(specs, candSpec{
						members: append([]int(nil), members...), total: total,
					})
				}
			}
		}
	}
	cands = append(cands, evalSpecs(d, g, ri, nodes, widths, class, opts, specs)...)
	return cands, res.Truncated, nil
}

// candSpec is one multi-member candidate group awaiting evaluation, in the
// order the sequential enumeration generated it.
type candSpec struct {
	// members are subgraph-local node indices.
	members []int
	total   int
}

// evalMulti validates one multi-member group against the §2/§3 filters —
// library width, scan contiguity, non-empty common feasible region,
// incomplete-MBR area rule — then counts blockers and weights it. It only
// reads shared state and is safe to call concurrently.
func evalMulti(
	d *netlist.Design,
	g *compat.Graph,
	ri *regIndex,
	nodes []int,
	widths []int,
	class lib.FuncClass,
	opts Options,
	spec candSpec,
) (candidate, bool) {
	global := make([]int, len(spec.members))
	for i, m := range spec.members {
		global[i] = nodes[m]
	}
	total := spec.total
	width, ok := widthFor(widths, total)
	if !ok {
		return candidate{}, false
	}
	incomplete := width != total
	if incomplete && !opts.AllowIncomplete {
		return candidate{}, false
	}
	if !g.GroupScanCompatible(global) {
		return candidate{}, false
	}
	if _, ok := g.GroupRegion(global); !ok {
		return candidate{}, false
	}
	if incomplete && !incompleteAreaOK(d, g, global, class, width, total, opts) {
		return candidate{}, false
	}
	blockers := blockerCount(g, ri, global)
	w := 1.0
	if opts.UseWeights {
		var keep bool
		w, keep = weightOf(total, blockers, false)
		if !keep {
			return candidate{}, false
		}
	}
	return candidate{
		nodes:     global,
		totalBits: total,
		width:     width,
		weight:    w,
		blockers:  blockers,
	}, true
}

// evalSpecs evaluates the generated groups, fanning the per-group work out
// across Options.Workers when there is enough of it, and returns the
// survivors in generation order — the order the historical sequential loop
// appended them, whatever the worker count or goroutine schedule. Each
// evaluation lands in its index-addressed slot; the ordered compaction at
// the end is the only cross-slot step.
func evalSpecs(
	d *netlist.Design,
	g *compat.Graph,
	ri *regIndex,
	nodes []int,
	widths []int,
	class lib.FuncClass,
	opts Options,
	specs []candSpec,
) []candidate {
	if len(specs) == 0 {
		return nil
	}
	out := make([]candidate, len(specs))
	keep := make([]bool, len(specs))
	// Fanning out pays only when the per-spec filter work dominates the
	// goroutine machinery; tiny spec lists stay on the caller's goroutine.
	const minParallelSpecs = 32
	if workers := resolveWorkers(opts.Workers); workers > 1 && len(specs) >= minParallelSpecs {
		var wg sync.WaitGroup
		next := make(chan int, len(specs))
		for i := range specs {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i], keep[i] = evalMulti(d, g, ri, nodes, widths, class, opts, specs[i])
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range specs {
			out[i], keep[i] = evalMulti(d, g, ri, nodes, widths, class, opts, specs[i])
		}
	}
	kept := out[:0]
	for i := range out {
		if keep[i] {
			kept = append(kept, out[i])
		}
	}
	return kept
}

// widthFor returns the smallest library width ≥ total.
func widthFor(widths []int, total int) (int, bool) {
	for _, w := range widths {
		if w >= total {
			return w, true
		}
	}
	return 0, false
}

// incompleteAreaOK applies the incomplete-MBR admission rule. The paper
// states it twice, inconsistently: §3 uses a per-bit rule (area per
// connected bit below the average area per bit of the replaced registers),
// §5's experiments use a total-overhead cap ("not more than 5% area
// overhead relative to the area of the registers it replaced"). The §5 cap
// governs by default — the per-bit rule rejects nearly every useful
// incomplete MBR built from pre-existing multi-bit registers, whose per-bit
// area is already amortized; enable Options.PerBitAreaRule for the stricter
// §3 semantics.
func incompleteAreaOK(
	d *netlist.Design,
	g *compat.Graph,
	nodes []int,
	class lib.FuncClass,
	width, total int,
	opts Options,
) bool {
	minRes := math.Inf(1)
	var memberArea int64
	memberBits := 0
	for _, n := range nodes {
		in := regOf(g, n)
		memberArea += in.Area()
		memberBits += in.Bits()
		if r := in.RegCell.DriveRes; r < minRes {
			minRes = r
		}
	}
	cell := d.Lib.SelectCell(class, width, minRes)
	if cell == nil {
		return false
	}
	if opts.PerBitAreaRule {
		perBitNew := float64(cell.Area) / float64(total)
		perBitOld := float64(memberArea) / float64(memberBits)
		if perBitNew >= perBitOld {
			return false
		}
	}
	over := opts.IncompleteAreaOverhead
	if over <= 0 {
		over = 0.05
	}
	return float64(cell.Area) <= (1+over)*float64(memberArea)
}
