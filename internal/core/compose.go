package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/ilp"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/scan"
)

// Compose runs MBR composition on the design. g must be a freshly built
// compatibility graph for the design's current state (compat.Build); plan
// may be nil for unscanned designs. The design, and the plan when present,
// are modified in place.
func Compose(d *netlist.Design, g *compat.Graph, plan *scan.Plan, opts Options) (*Result, error) {
	return ComposeWith(d, g, plan, nil, opts)
}

// normalizeOptions applies the defaulting every composition entry point
// shares; the retained engine folds the normalized options into its
// signature, so both paths must see identical values.
func normalizeOptions(opts Options) Options {
	if opts.MaxSubgraphNodes <= 0 {
		opts.MaxSubgraphNodes = 30
	}
	if opts.NamePrefix == "" {
		opts.NamePrefix = "mbrc"
	}
	// Without the §3.2 weights nothing prunes the candidate columns, and a
	// unit-cost set partitioning is maximally degenerate for branch &
	// bound; keep the unweighted ablation tractable with a tighter
	// enumeration cap.
	if !opts.UseWeights && (opts.MaxCandidatesPerSubgraph == 0 || opts.MaxCandidatesPerSubgraph > 1500) {
		opts.MaxCandidatesPerSubgraph = 1500
	}
	if opts.ParallelCliqueThreshold == 0 {
		opts.ParallelCliqueThreshold = 24
	}
	return opts
}

// ComposeWith is Compose with an optional precomputed decomposition of g
// into subgraphs (node-id lists), as maintained by the incremental
// compatibility engine's partition cache; nil means decompose here. The
// subgraphs must equal what partition.Decompose(g, opts.MaxSubgraphNodes)
// returns — the caches guarantee that — so results are identical either way.
func ComposeWith(d *netlist.Design, g *compat.Graph, plan *scan.Plan, subgraphs [][]int, opts Options) (*Result, error) {
	start := time.Now()
	opts = normalizeOptions(opts)
	res := &Result{
		RegsBefore:     len(d.Registers()),
		ComposableRegs: len(g.Regs),
	}

	ri := newRegIndex(d)
	var selected []candidate
	if subgraphs == nil && !opts.DisableStreaming {
		// Streamed pipeline: decompose, solve and reduce shard by shard
		// through bounded channels — the decomposition is never materialized
		// and peak memory tracks live shards. See stream.go.
		var err error
		selected, err = solveStreamed(d, g, ri, opts, res)
		if err != nil {
			return nil, err
		}
		res.Workers = resolveWorkers(opts.Workers)
	} else {
		if subgraphs == nil {
			subgraphs = partition.Decompose(len(g.Regs), g.Adj,
				func(n int) geom.Point { return g.Regs[n].ClockPos }, opts.MaxSubgraphNodes)
		}
		res.Subgraphs = len(subgraphs)
		res.Workers = resolveWorkers(opts.Workers)

		// Per-partition pipeline (enumeration → scoring → selection), sharded
		// across the worker pool; see parallel.go for the determinism argument.
		subResults, st, err := solveSubgraphs(d, g, ri, subgraphs, opts)
		if err != nil {
			return nil, err
		}
		res.SchedShards = st.shards
		res.SchedSteals = st.steals

		// Ordered reduce: accumulate in subgraph index order — the same order
		// the sequential loop used — so counts, the floating-point objective sum
		// and the selected list are identical for any worker count.
		selected = reduceResults(subResults, res)
	}

	if err := commitSelected(d, g, plan, selected, opts, res); err != nil {
		return nil, err
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// reduceResults folds per-subgraph outcomes into res in subgraph index
// order and returns the concatenated selections — the ordered reduce that
// keeps counts, the floating-point objective sum and the selected list
// identical for any worker count. Shared by the memo-free path and the
// retained engine (which feeds it a mix of fresh solves and replays).
func reduceResults(subResults []subgraphResult, res *Result) []candidate {
	var selected []candidate
	for _, sr := range subResults {
		if sr.truncated {
			res.TruncatedSubgraphs++
		}
		res.Candidates += sr.candidates
		res.ILPNodes += sr.ilpNodes
		res.ObjectiveSum += sr.objective
		selected = append(selected, sr.picked...)
	}
	return selected
}

// commitSelected is the sequential mutation phase: it orders the selected
// candidates deterministically (by first member's instance ID), commits
// each merge, and legalizes the new MBRs incrementally. Everything before
// this point only reads the design.
func commitSelected(
	d *netlist.Design,
	g *compat.Graph,
	plan *scan.Plan,
	selected []candidate,
	opts Options,
	res *Result,
) error {
	sort.Slice(selected, func(i, j int) bool {
		return regOf(g, selected[i].nodes[0]).ID < regOf(g, selected[j].nodes[0]).ID
	})

	var newInsts []*netlist.Inst
	for idx, c := range selected {
		m, err := commit(d, g, plan, c, fmt.Sprintf("%s_%d", opts.NamePrefix, idx), opts.ReleaseClocks)
		if err != nil {
			return err
		}
		res.MBRs = append(res.MBRs, *m)
		if m.Incomplete {
			res.IncompleteMBRs++
		}
		newInsts = append(newInsts, m.Inst)
	}

	lr := place.LegalizeIncremental(d, newInsts)
	res.LegalizationMoved = lr.Moved
	res.LegalizationFailed = len(lr.Failed)
	res.RegsAfter = len(d.Registers())
	return nil
}

// weightPruneTol is the shared tolerance for the "costlier than keeping the
// members separate" candidate cut. Both selection paths must price the
// boundary identically — the ILP path historically dropped at
// weight ≥ members − 1e-12 while the greedy path dropped at
// weight ≥ members, so a candidate sitting within the tolerance of the
// boundary was kept by one and cut by the other.
const weightPruneTol = 1e-12

// overWeighted reports that a multi-member candidate prices at (within
// tolerance) or above the cost of keeping its members as singletons, so it
// can never be in an optimal cover: every register has its keep-as-is
// singleton at cost 1, making the all-singleton replacement always feasible
// and at least as cheap.
func overWeighted(weight float64, members int) bool {
	return weight >= float64(members)-weightPruneTol
}

// selectILP solves the subgraph's weighted set-partitioning ILP (§3.1) and
// returns the chosen candidates.
//
// Column pruning: a candidate whose weight is at least its member count can
// never be in an optimal cover (see overWeighted). With the §3.2 weights
// this removes every blocked candidate (b·2ⁿ ≥ 2b ≥ 2·members), typically
// shrinking the LP by an order of magnitude without changing the optimum.
//
// warm, when non-nil, is the previous pass's selection for this subgraph as
// sorted member-ordinal sets; it is mapped onto the kept columns and handed
// to the solver as CoverInstance.Warm, whose contract guarantees the result
// still matches a cold solve column-for-column. An unmappable warm set
// (candidate churn) is silently dropped.
func selectILP(nodes []int, cands []candidate, opts Options, warm [][]int) ([]candidate, *ilp.CoverResult, error) {
	local := map[int]int{}
	for i, n := range nodes {
		local[n] = i
	}
	inst := ilp.CoverInstance{NumElems: len(nodes), NodeLimit: opts.ILPNodeLimit}
	var kept []int
	for ci, c := range cands {
		if len(c.nodes) > 1 && overWeighted(c.weight, len(c.nodes)) {
			continue
		}
		ms := make([]int, len(c.nodes))
		for i, n := range c.nodes {
			ms[i] = local[n]
		}
		inst.Sets = append(inst.Sets, ilp.CoverSet{Members: ms, Weight: c.weight})
		kept = append(kept, ci)
	}
	if len(warm) > 0 {
		inst.Warm = mapWarmColumns(len(nodes), inst.Sets, warm)
	}
	cr, err := ilp.SolveCover(inst)
	if err != nil {
		return nil, nil, fmt.Errorf("core: subgraph ILP: %w", err)
	}
	out := make([]candidate, 0, len(cr.Chosen))
	for _, ci := range cr.Chosen {
		out = append(out, cands[kept[ci]])
	}
	return out, cr, nil
}

// mapWarmColumns maps a previous selection — sorted member-ordinal sets for
// the multi-member picks — onto column indices of the current instance,
// completing the partition with the singleton columns of uncovered
// ordinals. Returns nil when any pick no longer has a matching column.
func mapWarmColumns(numElems int, sets []ilp.CoverSet, warm [][]int) []int {
	singleton := make([]int, numElems)
	for i := range singleton {
		singleton[i] = -1
	}
	multi := make(map[string]int)
	for si, s := range sets {
		if len(s.Members) == 1 {
			if singleton[s.Members[0]] < 0 {
				singleton[s.Members[0]] = si
			}
			continue
		}
		multi[ordKey(s.Members)] = si
	}
	covered := make([]bool, numElems)
	cols := make([]int, 0, len(warm))
	for _, ords := range warm {
		si, ok := multi[ordKey(ords)]
		if !ok {
			return nil
		}
		cols = append(cols, si)
		for _, o := range ords {
			if o < 0 || o >= numElems || covered[o] {
				return nil
			}
			covered[o] = true
		}
	}
	for o := 0; o < numElems; o++ {
		if covered[o] {
			continue
		}
		if singleton[o] < 0 {
			return nil
		}
		cols = append(cols, singleton[o])
	}
	return cols
}

// ordKey is an order-insensitive key for a member-ordinal set.
func ordKey(ords []int) string {
	ms := append([]int(nil), ords...)
	sort.Ints(ms)
	buf := make([]byte, 0, len(ms)*4)
	for _, m := range ms {
		buf = append(buf, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(buf)
}

// selectGreedy is the Fig. 6 baseline: the same methodology with the ILP
// selection replaced by a greedy mapping heuristic, in the spirit of Wang
// et al. [8] and Lin et al. [12]. It works over the same physically valid
// candidate set the ILP sees, but filters out the candidates the weights
// price above keeping the registers separate (a heuristic flow would not
// commit merges that its own cost model rejects), then repeatedly maps the
// largest remaining candidate whose members are all still free.
//
// Largest-first commitment is path-dependent: one misaligned grab strands
// its neighbours into odd-sized remainders that no library width covers —
// the fragmentation the exact cover avoids, and the source of the ~12%
// register-count gap of Fig. 6.
func selectGreedy(d *netlist.Design, g *compat.Graph, nodes []int, cands []candidate) ([]candidate, float64) {
	order := make([]int, 0, len(cands))
	for i, c := range cands {
		if len(c.nodes) < 2 {
			continue
		}
		if overWeighted(c.weight, len(c.nodes)) {
			continue // costlier than keeping the members separate
		}
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		if ca.totalBits != cb.totalBits {
			return ca.totalBits > cb.totalBits
		}
		if len(ca.nodes) != len(cb.nodes) {
			return len(ca.nodes) > len(cb.nodes)
		}
		return lessNodes(ca.nodes, cb.nodes)
	})

	assigned := map[int]bool{}
	var out []candidate
	var obj float64
	for _, oi := range order {
		c := cands[oi]
		free := true
		for _, n := range c.nodes {
			if assigned[n] {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		for _, n := range c.nodes {
			assigned[n] = true
		}
		out = append(out, c)
		obj += c.weight
	}
	for _, n := range nodes {
		if !assigned[n] {
			out = append(out, candidate{
				nodes: []int{n}, totalBits: regOf(g, n).Bits(),
				width: regOf(g, n).Bits(), weight: 1,
			})
			obj++
		}
	}
	_ = d
	return out, obj
}

func lessNodes(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// commit maps, places and merges one selected candidate.
func commit(
	d *netlist.Design,
	g *compat.Graph,
	plan *scan.Plan,
	c candidate,
	name string,
	release func([]*netlist.Inst),
) (*ComposedMBR, error) {
	insts := make([]*netlist.Inst, len(c.nodes))
	minRes := math.Inf(1)
	for i, n := range c.nodes {
		insts[i] = regOf(g, n)
		if r := insts[i].RegCell.DriveRes; r < minRes {
			minRes = r
		}
	}
	class := insts[0].RegCell.Class
	cell := d.Lib.SelectCell(class, c.width, minRes)
	if cell == nil {
		return nil, fmt.Errorf("core: no %d-bit cell for class %s", c.width, class.Key())
	}

	// Merge order: scan order when scanned, geometric order otherwise.
	ordered := insts
	if plan != nil {
		ids := make([]netlist.InstID, len(insts))
		for i, in := range insts {
			ids[i] = in.ID
		}
		mo := plan.MergeOrder(ids)
		ordered = make([]*netlist.Inst, len(mo))
		for i, id := range mo {
			ordered[i] = d.Inst(id)
		}
	} else {
		ordered = append([]*netlist.Inst(nil), insts...)
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].Pos.Y != ordered[j].Pos.Y {
				return ordered[i].Pos.Y < ordered[j].Pos.Y
			}
			return ordered[i].Pos.X < ordered[j].Pos.X
		})
	}

	pos, err := placeMBR(d, g, c.nodes, ordered, cell)
	if err != nil {
		return nil, err
	}

	memberIDs := make([]netlist.InstID, len(ordered))
	for i, in := range ordered {
		memberIDs[i] = in.ID
	}
	if release != nil {
		release(ordered)
	}
	mr, err := d.MergeRegisters(ordered, cell, name, pos)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		if err := plan.ApplyMerge(memberIDs, mr.MBR.ID); err != nil {
			return nil, err
		}
	}
	return &ComposedMBR{
		Inst:       mr.MBR,
		Members:    memberIDs,
		Cell:       cell,
		Bits:       c.totalBits,
		Incomplete: mr.UnusedBits > 0,
		Pos:        pos,
		Weight:     c.weight,
	}, nil
}
