package core

import (
	"math"

	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/lp"
	"repro/internal/netlist"
)

// placeMBR solves the §4.2 linear program: find the MBR corner position
// (x, y) inside the group's common timing-feasible region that minimizes
// the total half-perimeter wirelength of the nets on the MBR's D and Q
// pins. Pin coordinates are expressed as corner + per-bit offset of the
// chosen cell; the max/min terms of the HPWL are linearized with helper
// variables.
//
// ordered lists the member instances in merge order (which fixes the bit
// assignment); it must be called before the merge, while the old registers
// are still connected.
func placeMBR(
	d *netlist.Design,
	g *compat.Graph,
	nodes []int,
	ordered []*netlist.Inst,
	cell *lib.Cell,
) (geom.Point, error) {
	region, ok := g.GroupRegion(nodes)
	if !ok {
		// Should not happen for enumerated candidates; fall back to the
		// first member's position.
		region = geom.Rect{Lo: ordered[0].Pos, Hi: ordered[0].Pos}
	}
	// Keep the cell inside the core even if the slack region pokes out.
	coreFit := geom.Rect{
		Lo: d.Core.Lo,
		Hi: geom.Point{X: d.Core.Hi.X - cell.Width, Y: d.Core.Hi.Y - cell.Height},
	}
	if r, ok := region.Intersect(coreFit); ok {
		region = r
	}

	type pinJob struct {
		off lib.PinOffset
		box geom.Rect // bbox of the net's other pins
	}
	var jobs []pinJob
	k := 0
	for _, in := range ordered {
		for b := 0; b < in.Bits(); b++ {
			if dp := d.DPin(in, b); dp != nil && dp.Net != netlist.NoID {
				if box, ok := othersBox(d, d.Net(dp.Net), dp); ok {
					jobs = append(jobs, pinJob{off: cell.DPins[k], box: box})
				}
			}
			if qp := d.QPin(in, b); qp != nil && qp.Net != netlist.NoID {
				if box, ok := othersBox(d, d.Net(qp.Net), qp); ok {
					jobs = append(jobs, pinJob{off: cell.QPins[k], box: box})
				}
			}
			k++
		}
	}
	if len(jobs) == 0 {
		// No connected pins: centroid of the members, clamped.
		var sx, sy int64
		for _, in := range ordered {
			c := in.Center()
			sx += c.X
			sy += c.Y
		}
		n := int64(len(ordered))
		return snapToGrid(d, region.ClampPoint(geom.Point{X: sx / n, Y: sy / n}), region), nil
	}

	prob := lp.New(lp.Minimize)
	x := prob.AddVar(float64(region.Lo.X), float64(region.Hi.X), 0, "x")
	y := prob.AddVar(float64(region.Lo.Y), float64(region.Hi.Y), 0, "y")
	negInf, posInf := math.Inf(-1), math.Inf(1)
	for _, j := range jobs {
		hx := prob.AddVar(negInf, posInf, 1, "hx")
		lx := prob.AddVar(negInf, posInf, -1, "lx")
		hy := prob.AddVar(negInf, posInf, 1, "hy")
		ly := prob.AddVar(negInf, posInf, -1, "ly")
		// hx ≥ box.Hi.X ; hx ≥ x + dx  (so hx = max at optimum)
		prob.AddConstraint([]lp.Term{{Var: hx, Coef: 1}}, lp.GE, float64(j.box.Hi.X))
		prob.AddConstraint([]lp.Term{{Var: hx, Coef: 1}, {Var: x, Coef: -1}}, lp.GE, float64(j.off.DX))
		// lx ≤ box.Lo.X ; lx ≤ x + dx
		prob.AddConstraint([]lp.Term{{Var: lx, Coef: 1}}, lp.LE, float64(j.box.Lo.X))
		prob.AddConstraint([]lp.Term{{Var: lx, Coef: 1}, {Var: x, Coef: -1}}, lp.LE, float64(j.off.DX))
		prob.AddConstraint([]lp.Term{{Var: hy, Coef: 1}}, lp.GE, float64(j.box.Hi.Y))
		prob.AddConstraint([]lp.Term{{Var: hy, Coef: 1}, {Var: y, Coef: -1}}, lp.GE, float64(j.off.DY))
		prob.AddConstraint([]lp.Term{{Var: ly, Coef: 1}}, lp.LE, float64(j.box.Lo.Y))
		prob.AddConstraint([]lp.Term{{Var: ly, Coef: 1}, {Var: y, Coef: -1}}, lp.LE, float64(j.off.DY))
	}
	sol, err := prob.Solve()
	if err != nil {
		return geom.Point{}, err
	}
	if sol.Status != lp.Optimal {
		// Degenerate region (single point) can surface as numerically odd;
		// fall back to the region corner.
		return snapToGrid(d, region.Lo, region), nil
	}
	p := geom.Point{X: int64(math.Round(sol.X[x])), Y: int64(math.Round(sol.X[y]))}
	return snapToGrid(d, region.ClampPoint(p), region), nil
}

// othersBox returns the bounding box of the net's pins excluding excl.
func othersBox(d *netlist.Design, n *netlist.Net, excl *netlist.Pin) (geom.Rect, bool) {
	var pts []geom.Point
	if n.Driver != netlist.NoID && n.Driver != excl.ID {
		pts = append(pts, d.PinPos(d.Pin(n.Driver)))
	}
	for _, s := range n.Sinks {
		if s != excl.ID {
			pts = append(pts, d.PinPos(d.Pin(s)))
		}
	}
	if len(pts) == 0 {
		return geom.Rect{}, false
	}
	return geom.BoundingBox(pts), true
}

// snapToGrid rounds the point down to the design's site/row grid while
// staying inside the region when possible.
func snapToGrid(d *netlist.Design, p geom.Point, region geom.Rect) geom.Point {
	sx := d.Core.Lo.X + ((p.X-d.Core.Lo.X)/d.SiteW)*d.SiteW
	sy := d.Core.Lo.Y + ((p.Y-d.Core.Lo.Y)/d.RowH)*d.RowH
	if sx < region.Lo.X && sx+d.SiteW <= region.Hi.X {
		sx += d.SiteW
	}
	if sy < region.Lo.Y && sy+d.RowH <= region.Hi.Y {
		sy += d.RowH
	}
	return geom.Point{X: sx, Y: sy}
}
