package core

// This file reproduces the paper's running example (Fig. 1 compatibility
// graph, Fig. 2 placement, Fig. 3 candidate weights and ILP selections):
//
//   - six registers A..D (1-bit), E (4-bit), F (2-bit);
//   - library widths {1, 2, 3, 4, 8};
//   - without incomplete MBRs the ILP reaches cost 11/6 and three final
//     registers (e.g. {A,C,D} + {B,F} + E);
//   - with incomplete MBRs admitted (and an 8-bit cell cheap enough to pass
//     the area rule) the ILP reaches cost 1.2, still three registers, using
//     a 5-bit group mapped to an incomplete 8-bit MBR;
//   - with the default (realistically large) 8-bit cell, the area rule
//     rejects the incomplete candidates — the paper's closing remark on AE.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

// exampleLib builds the {1,2,3,4,8}-bit library of the example. When
// small8 is true the 8-bit cell is made small enough for incomplete MBRs
// to pass the §3 area-per-bit rule.
func exampleLib(small8 bool) *lib.Library {
	class := lib.FuncClass{Kind: lib.FlipFlop}
	l := lib.NewLibrary("paper-example")
	for _, bits := range []int{1, 2, 3, 4, 8} {
		w := int64(bits) * 1000
		if small8 && bits == 8 {
			w = 4500
		}
		dp := make([]lib.PinOffset, bits)
		qp := make([]lib.PinOffset, bits)
		for b := 0; b < bits; b++ {
			x := w * int64(2*b+1) / int64(2*bits)
			dp[b] = lib.PinOffset{DX: x, DY: 250}
			qp[b] = lib.PinOffset{DX: x, DY: 750}
		}
		l.MustAdd(&lib.Cell{
			Name:  fmt.Sprintf("R%d", bits),
			Class: class, Bits: bits, Drive: 1,
			Area: w * 1000, Width: w, Height: 1000,
			ClkCap: 1, DPinCap: 0.5, DriveRes: 6, Intrinsic: 50, Setup: 30,
			DPins: dp, QPins: qp, ClkPin: lib.PinOffset{DX: w / 2, DY: 500},
		})
	}
	return l
}

// exampleDesign places A..F per Fig. 2 (coordinates chosen so that exactly
// the blockage relations of Fig. 3 hold: D blocks BC, ABC and BCF; all
// other candidate polygons are clean).
func exampleDesign(t testing.TB, small8 bool) (*netlist.Design, map[string]*netlist.Inst) {
	t.Helper()
	l := exampleLib(small8)
	d := netlist.NewDesign("paper", geom.RectWH(0, 0, 40000, 20000), l)
	d.SiteW = 100
	d.RowH = 1000
	d.Timing.ClockPeriod = 1000
	clk := d.AddNet("clk", true)
	class := lib.FuncClass{Kind: lib.FlipFlop}
	cellOf := func(bits int) *lib.Cell { return l.CellsOfWidth(class, bits)[0] }
	regs := map[string]*netlist.Inst{}
	add := func(name string, bits int, x, y int64) {
		r, err := d.AddRegister(name, cellOf(bits), geom.Point{X: x, Y: y})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.ClockPin(r), clk)
		regs[name] = r
	}
	add("A", 1, 10000, 3000)
	add("B", 1, 13000, 3000)
	add("C", 1, 13000, 0)
	add("D", 1, 13200, 1500)
	add("E", 4, 5000, 1000)
	add("F", 2, 15000, 2000)
	return d, regs
}

// exampleGraph wires the Fig. 1 compatibility graph by hand (the regions
// are set to the whole core: the example exercises weighting and selection,
// not region derivation).
func exampleGraph(d *netlist.Design, regs map[string]*netlist.Inst) *compat.Graph {
	names := []string{"A", "B", "C", "D", "E", "F"}
	g := &compat.Graph{Excluded: map[netlist.InstID]compat.NotComposableReason{}}
	idx := map[string]int{}
	for i, n := range names {
		in := regs[n]
		g.Regs = append(g.Regs, &compat.RegInfo{
			Inst:     in,
			Region:   d.Core,
			ClockPos: in.Center(),
		})
		idx[n] = i
	}
	g.Adj = make([][]int, len(names))
	edges := [][2]string{
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"A", "E"},
		{"B", "C"}, {"B", "D"}, {"B", "F"},
		{"C", "D"}, {"C", "E"}, {"C", "F"},
	}
	for _, e := range edges {
		u, v := idx[e[0]], idx[e[1]]
		g.Adj[u] = append(g.Adj[u], v)
		g.Adj[v] = append(g.Adj[v], u)
	}
	return g
}

// nameOfCand renders a candidate as a sorted member-name string ("ABD").
func nameOfCand(g *compat.Graph, c candidate) string {
	var ns []string
	for _, n := range c.nodes {
		ns = append(ns, g.Regs[n].Inst.Name)
	}
	sort.Strings(ns)
	return strings.Join(ns, "")
}

func enumerateExample(t testing.TB, allowIncomplete, small8 bool) (*netlist.Design, *compat.Graph, map[string]candidate) {
	t.Helper()
	d, regs := exampleDesign(t, small8)
	g := exampleGraph(d, regs)
	opts := DefaultOptions()
	opts.AllowIncomplete = allowIncomplete
	ri := newRegIndex(d)
	cands, truncated, err := enumerateCandidates(d, g, ri, []int{0, 1, 2, 3, 4, 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("example enumeration must not truncate")
	}
	m := map[string]candidate{}
	for _, c := range cands {
		m[nameOfCand(g, c)] = c
	}
	return d, g, m
}

func TestFig3WeightsComplete(t *testing.T) {
	_, _, cands := enumerateExample(t, false, false)
	want := map[string]float64{
		// Originals (keep-as-is) all cost 1.
		"A": 1, "B": 1, "C": 1, "D": 1, "E": 1, "F": 1,
		// 2-bit candidates.
		"AB": 0.5, "AC": 0.5, "AD": 0.5, "BD": 0.5, "CD": 0.5,
		"BC": 4.0, // D's center blocks the B–C polygon
		// 3-bit candidates. Note: Fig. 3 prints BF and CF as 0.50, which
		// contradicts the paper's own formula (§3.2 defines bᵢ as the BIT
		// count, and the figure's AE = 0.20 = 1/5 and BCF = 8 = 4·2¹ only
		// work with bits). We follow the formula: BF = CF = 1/3.
		"BF": 1.0 / 3, "CF": 1.0 / 3,
		"ABD": 1.0 / 3, "BCD": 1.0 / 3, "ACD": 1.0 / 3,
		"ABC": 6.0, // blocked by D: 3·2¹
		// 4-bit candidates.
		"ABCD": 0.25,
		"BCF":  8.0, // 4 bits (B1+C1+F2), blocked by D: 4·2¹
	}
	if len(cands) != len(want) {
		var names []string
		for n := range cands {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Fatalf("candidate count %d want %d: %v", len(cands), len(want), names)
	}
	for name, w := range want {
		c, ok := cands[name]
		if !ok {
			t.Errorf("candidate %s missing", name)
			continue
		}
		if math.Abs(c.weight-w) > 1e-9 {
			t.Errorf("weight(%s) = %g want %g (blockers=%d bits=%d)",
				name, c.weight, w, c.blockers, c.totalBits)
		}
	}
	// 5- and 6-bit groups need an incomplete 8-bit MBR, so they are absent.
	for _, name := range []string{"AE", "CE", "ACE"} {
		if _, ok := cands[name]; ok {
			t.Errorf("%s must be absent without incomplete MBRs", name)
		}
	}
}

func TestFig3WeightsIncomplete(t *testing.T) {
	_, _, cands := enumerateExample(t, true, true)
	want := map[string]float64{
		"AE": 0.2, "CE": 0.2, "ACE": 1.0 / 6,
	}
	for name, w := range want {
		c, ok := cands[name]
		if !ok {
			t.Errorf("incomplete candidate %s missing", name)
			continue
		}
		if math.Abs(c.weight-w) > 1e-9 {
			t.Errorf("weight(%s) = %g want %g", name, c.weight, w)
		}
		if c.width != 8 {
			t.Errorf("%s must map to the 8-bit cell, got %d", name, c.width)
		}
	}
}

func TestIncompleteAreaRuleRejectsAE(t *testing.T) {
	// With the realistic (full-size) 8-bit cell, the incomplete candidates
	// fail the area-per-bit rule — the paper's closing remark about AE.
	_, _, cands := enumerateExample(t, true, false)
	for _, name := range []string{"AE", "CE", "ACE"} {
		if _, ok := cands[name]; ok {
			t.Errorf("%s must be rejected by the area rule", name)
		}
	}
}

func TestILPSelectionComplete(t *testing.T) {
	d, regs := exampleDesign(t, false)
	g := exampleGraph(d, regs)
	opts := DefaultOptions()
	opts.AllowIncomplete = false
	res, err := Compose(d, g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RegsBefore != 6 || res.RegsAfter != 3 {
		t.Fatalf("registers %d → %d, want 6 → 3", res.RegsBefore, res.RegsAfter)
	}
	// The paper's stated selection ({A,C,D} + {B,F} + E) costs
	// 1/3 + 1/3 + 1 = 5/3 under the §3.2 formula.
	if math.Abs(res.ObjectiveSum-5.0/3) > 1e-9 {
		t.Fatalf("objective = %g want 5/3", res.ObjectiveSum)
	}
	if len(res.MBRs) != 2 {
		t.Fatalf("composed MBRs = %d want 2", len(res.MBRs))
	}
	if res.IncompleteMBRs != 0 {
		t.Fatal("no incomplete MBRs expected")
	}
	// E stays: a 4-bit register must still exist.
	hist := BitWidthHistogram(d)
	if hist[4] != 1 {
		t.Fatalf("histogram = %v, want one remaining 4-bit register (E)", hist)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestILPSelectionIncomplete(t *testing.T) {
	d, regs := exampleDesign(t, true)
	g := exampleGraph(d, regs)
	opts := DefaultOptions()
	res, err := Compose(d, g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RegsAfter != 3 {
		t.Fatalf("registers after = %d want 3", res.RegsAfter)
	}
	// Best cover with incomplete MBRs: a 5-bit pair (0.2) + a 2-bit pair
	// (0.5) + a 3-bit pair (1/3) = 31/30 ≈ 1.0333.
	if math.Abs(res.ObjectiveSum-31.0/30) > 1e-9 {
		t.Fatalf("objective = %g want 31/30", res.ObjectiveSum)
	}
	if res.IncompleteMBRs != 1 {
		t.Fatalf("incomplete MBRs = %d want 1", res.IncompleteMBRs)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyWorseOrEqualOnExample(t *testing.T) {
	run := func(m Method) int {
		d, regs := exampleDesign(t, false)
		g := exampleGraph(d, regs)
		opts := DefaultOptions()
		opts.AllowIncomplete = false
		opts.Method = m
		res, err := Compose(d, g, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.RegsAfter
	}
	ilpCount := run(MethodILP)
	greedyCount := run(MethodGreedy)
	if ilpCount > greedyCount {
		t.Fatalf("ILP (%d regs) must not lose to greedy (%d regs)", ilpCount, greedyCount)
	}
	// On this tiny example the agglomerative heuristic happens to also end
	// at three registers (BD → BCD → ABCD), but through the blocked ABCD
	// polygon the ILP's weights deliberately avoid — same count, worse
	// placement quality. The count gap of Fig. 6 appears on the full
	// benchmarks (see bench_test.go / EXPERIMENTS.md).
	if ilpCount != 3 || greedyCount != 3 {
		t.Fatalf("ILP=%d greedy=%d want 3/3", ilpCount, greedyCount)
	}
}
