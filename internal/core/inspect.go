package core

import (
	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/partition"
)

// CandidateInfo is the public view of one enumerated MBR candidate, for
// reporting and debugging tools.
type CandidateInfo struct {
	// Members are the constituent register instance IDs.
	Members []netlist.InstID
	// Bits is the connected bit total; Width the library width it maps to.
	Bits, Width int
	// Blockers is n_i of §3.2.
	Blockers int
	// Weight is w_i of §3.2 (1 for keep-as-is singletons).
	Weight float64
	// Incomplete marks candidates with Width > Bits.
	Incomplete bool
}

// InspectCandidates enumerates the valid candidates of the whole
// compatibility graph (partitioned exactly as Compose would) and returns
// them with their weights. It does not modify the design.
func InspectCandidates(d *netlist.Design, g *compat.Graph, opts Options) ([]CandidateInfo, error) {
	if opts.MaxSubgraphNodes <= 0 {
		opts.MaxSubgraphNodes = 30
	}
	ri := newRegIndex(d)
	subgraphs := partition.Decompose(len(g.Regs), g.Adj,
		func(n int) geom.Point { return g.Regs[n].ClockPos }, opts.MaxSubgraphNodes)
	var out []CandidateInfo
	for _, nodes := range subgraphs {
		cands, _, err := enumerateCandidates(d, g, ri, nodes, opts)
		if err != nil {
			return nil, err
		}
		for _, c := range cands {
			ci := CandidateInfo{
				Bits: c.totalBits, Width: c.width,
				Blockers: c.blockers, Weight: c.weight,
				Incomplete: c.width > c.totalBits,
			}
			for _, n := range c.nodes {
				ci.Members = append(ci.Members, regOf(g, n).ID)
			}
			out = append(out, ci)
		}
	}
	return out, nil
}
