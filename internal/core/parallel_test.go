package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sta"
)

// randomSpec derives a randomized small benchmark spec from a seed, so the
// property tests sweep design shapes (size, width mix, scan structure,
// gating) instead of one hand-picked instance.
func randomSpec(seed int64) bench.Spec {
	rng := rand.New(rand.NewSource(seed))
	mixes := []map[int]float64{
		{1: 0.6, 2: 0.2, 4: 0.15, 8: 0.05},
		{1: 0.3, 2: 0.3, 4: 0.25, 8: 0.15},
		{1: 0.15, 2: 0.15, 4: 0.25, 8: 0.45},
	}
	return bench.Spec{
		Name:              fmt.Sprintf("rand%d", seed),
		Seed:              seed,
		NumRegs:           120 + rng.Intn(130),
		CombPerReg:        3 + rng.Float64()*2,
		WidthMix:          mixes[rng.Intn(len(mixes))],
		NonComposableFrac: 0.2 + rng.Float64()*0.3,
		ClusterSize:       6 + rng.Intn(8),
		GateGroups:        rng.Intn(5),
		ScanChains:        1 + rng.Intn(5),
		OrderedChainFrac:  rng.Float64() * 0.5,
		TargetUtil:        0.45 + rng.Float64()*0.2,
		ClockPeriodPS:     1200 + rng.Float64()*500,
	}
}

// genComposeInput generates the design and a fresh compatibility graph.
func genComposeInput(t testing.TB, spec bench.Spec) (*netlist.Design, *compat.Graph, *scan.Plan) {
	t.Helper()
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng := sta.New(b.Design)
	eng.SetIdealClocks(true)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := compat.Build(b.Design, res, b.Plan, compat.DefaultOptions())
	return b.Design, g, b.Plan
}

// composeSummary renders everything observable about a composition run and
// the resulting design state, excluding wall-clock time and worker count.
func composeSummary(res *Result, d *netlist.Design) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "regs %d->%d composable %d subgraphs %d cands %d trunc %d nodes %d obj %.12g incomplete %d moved %d failed %d\n",
		res.RegsBefore, res.RegsAfter, res.ComposableRegs, res.Subgraphs,
		res.Candidates, res.TruncatedSubgraphs, res.ILPNodes, res.ObjectiveSum,
		res.IncompleteMBRs, res.LegalizationMoved, res.LegalizationFailed)
	for _, m := range res.MBRs {
		fmt.Fprintf(&sb, "mbr %s cell %s bits %d members %v pos %v w %.12g\n",
			m.Inst.Name, m.Cell.Name, m.Bits, m.Members, m.Pos, m.Weight)
	}
	var regs []string
	for _, r := range d.Registers() {
		regs = append(regs, fmt.Sprintf("%s %s %d,%d", r.Name, r.RegCell.Name, r.Pos.X, r.Pos.Y))
	}
	sort.Strings(regs)
	sb.WriteString(strings.Join(regs, "\n"))
	return sb.String()
}

// connectedDPins counts connected D pins across all live registers — the
// quantity a correct composition conserves exactly (members' bits map one
// to one onto the MBR's connected bits; incomplete MBRs leave the extra
// D/Q pairs unconnected).
func connectedDPins(d *netlist.Design) int {
	n := 0
	for _, r := range d.Registers() {
		for b := 0; b < r.Bits(); b++ {
			if p := d.DPin(r, b); p != nil && p.Net != netlist.NoID {
				n++
			}
		}
	}
	return n
}

// TestParallelComposeMatchesSequential is the core determinism property:
// for randomized designs, Compose with a worker pool produces exactly the
// same result and design state as the sequential legacy path.
func TestParallelComposeMatchesSequential(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := randomSpec(seed)
			run := func(workers int) (string, *sta.Results) {
				d, g, plan := genComposeInput(t, spec)
				opts := DefaultOptions()
				opts.Workers = workers
				res, err := Compose(d, g, plan, opts)
				if err != nil {
					t.Fatal(err)
				}
				eng := sta.New(d)
				eng.SetIdealClocks(true)
				tres, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return composeSummary(res, d), tres
			}
			seqSum, seqTiming := run(1)
			for _, workers := range []int{2, 8} {
				parSum, parTiming := run(workers)
				if parSum != seqSum {
					t.Fatalf("workers=%d diverged from sequential:\nseq:\n%s\npar:\n%s",
						workers, seqSum, parSum)
				}
				// No negative-slack regression vs the sequential path: the
				// design states are identical, so timing must be too.
				if parTiming.TNS != seqTiming.TNS || parTiming.WNS != seqTiming.WNS {
					t.Fatalf("workers=%d timing diverged: TNS %v vs %v, WNS %v vs %v",
						workers, parTiming.TNS, seqTiming.TNS, parTiming.WNS, seqTiming.WNS)
				}
			}
		})
	}
}

// TestComposeConservesRegisters checks the structural safety properties on
// randomized designs composed with the parallel pipeline: no register is
// lost or duplicated, connected bits are conserved, every MBR member
// existed before and is consumed exactly once, and the scan plan stays
// valid with ordered-section order preserved.
func TestComposeConservesRegisters(t *testing.T) {
	seeds := []int64{11, 12, 13, 14}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := randomSpec(seed)
			d, g, plan := genComposeInput(t, spec)

			before := map[netlist.InstID]string{}
			for _, r := range d.Registers() {
				before[r.ID] = r.Name
			}
			bitsBefore := connectedDPins(d)
			var orderedBefore [][]netlist.InstID
			for _, c := range plan.Chains() {
				if c.Ordered {
					orderedBefore = append(orderedBefore, append([]netlist.InstID(nil), c.Regs...))
				}
			}

			opts := DefaultOptions()
			opts.Workers = 8
			res, err := Compose(d, g, plan, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Register accounting.
			consumed := map[netlist.InstID]bool{}
			merged := 0
			for _, m := range res.MBRs {
				for _, id := range m.Members {
					if _, existed := before[id]; !existed {
						t.Fatalf("MBR %s consumed unknown register %d", m.Inst.Name, id)
					}
					if consumed[id] {
						t.Fatalf("register %d consumed by two MBRs", id)
					}
					consumed[id] = true
					if d.Inst(id) != nil {
						t.Fatalf("merged register %d still live", id)
					}
				}
				merged += len(m.Members)
			}
			wantAfter := len(before) - merged + len(res.MBRs)
			if got := len(d.Registers()); got != wantAfter || got != res.RegsAfter {
				t.Fatalf("register count: live %d, RegsAfter %d, want %d", got, res.RegsAfter, wantAfter)
			}
			seen := map[string]bool{}
			for _, r := range d.Registers() {
				if seen[r.Name] {
					t.Fatalf("duplicate register name %q", r.Name)
				}
				seen[r.Name] = true
				if name, ok := before[r.ID]; !consumed[r.ID] && ok && name != r.Name {
					t.Fatalf("surviving register %d renamed %q -> %q", r.ID, name, r.Name)
				}
			}
			if bitsAfter := connectedDPins(d); bitsAfter != bitsBefore {
				t.Fatalf("connected D pins not conserved: %d -> %d", bitsBefore, bitsAfter)
			}

			// Design and scan plan integrity.
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := plan.Validate(d); err != nil {
				t.Fatal(err)
			}
			// Ordered sections: surviving original registers must keep their
			// relative order.
			oi := 0
			for _, c := range plan.Chains() {
				if !c.Ordered {
					continue
				}
				orig := orderedBefore[oi]
				oi++
				var beforeSurvivors, afterSurvivors []netlist.InstID
				for _, id := range orig {
					if !consumed[id] {
						beforeSurvivors = append(beforeSurvivors, id)
					}
				}
				for _, id := range c.Regs {
					if _, ok := before[id]; ok {
						afterSurvivors = append(afterSurvivors, id)
					}
				}
				if len(beforeSurvivors) != len(afterSurvivors) {
					t.Fatalf("ordered chain %d survivor count changed: %d -> %d",
						c.ID, len(beforeSurvivors), len(afterSurvivors))
				}
				for i := range beforeSurvivors {
					if beforeSurvivors[i] != afterSurvivors[i] {
						t.Fatalf("ordered chain %d scan order broken at %d: %v vs %v",
							c.ID, i, beforeSurvivors, afterSurvivors)
					}
				}
			}
		})
	}
}

// TestComposeGreedyParallelDeterminism covers the greedy baseline selector
// under the worker pool too (the Fig. 6 comparison must stay reproducible).
func TestComposeGreedyParallelDeterminism(t *testing.T) {
	spec := randomSpec(21)
	run := func(workers int) string {
		d, g, plan := genComposeInput(t, spec)
		opts := DefaultOptions()
		opts.Method = MethodGreedy
		opts.Workers = workers
		res, err := Compose(d, g, plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		return composeSummary(res, d)
	}
	seq := run(1)
	if par := run(8); par != seq {
		t.Fatalf("greedy parallel run diverged:\nseq:\n%s\npar:\n%s", seq, par)
	}
}
