package core

import (
	"fmt"
	"runtime"
	"testing"
)

// TestStreamedComposeMatchesMaterialized pins the streaming pipeline's
// contract: Compose with the streamed batch path (the default) produces
// exactly the result and design state of the materialized path, at any
// worker count, with the parallel clique split forced onto every
// multi-node subgraph. The materialized sequential run is the legacy
// oracle everything else must match byte for byte.
func TestStreamedComposeMatchesMaterialized(t *testing.T) {
	seeds := []int64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := randomSpec(seed)
			run := func(workers int, disableStreaming bool) string {
				d, g, plan := genComposeInput(t, spec)
				opts := DefaultOptions()
				opts.Workers = workers
				opts.DisableStreaming = disableStreaming
				opts.ParallelCliqueThreshold = 2
				res, err := Compose(d, g, plan, opts)
				if err != nil {
					t.Fatal(err)
				}
				if disableStreaming && res.StreamedShards != 0 {
					t.Fatalf("materialized path reported %d streamed shards", res.StreamedShards)
				}
				if !disableStreaming && res.StreamedShards != res.Subgraphs {
					t.Fatalf("streamed %d of %d subgraphs", res.StreamedShards, res.Subgraphs)
				}
				return composeSummary(res, d)
			}
			want := run(1, true)
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				for _, disable := range []bool{false, true} {
					if got := run(workers, disable); got != want {
						t.Fatalf("workers=%d streaming=%v diverged from sequential materialized:\nwant:\n%s\ngot:\n%s",
							workers, !disable, want, got)
					}
				}
			}
		})
	}
}

// TestStreamedComposeBoundsLiveSet asserts the memory-bound evidence the
// counters exist for: the streamed path's peak live shard count stays within
// the token window, and the peak live candidate count stays below the total
// the run enumerated (i.e. candidates were never all resident at once) on a
// design with enough subgraphs for the distinction to mean something.
func TestStreamedComposeBoundsLiveSet(t *testing.T) {
	spec := randomSpec(21)
	spec.NumRegs = 400 // enough components to dwarf the streaming window
	d, g, plan := genComposeInput(t, spec)
	opts := DefaultOptions()
	opts.Workers = 4
	res, err := Compose(d, g, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraphs < 20 {
		t.Skipf("only %d subgraphs; spec too small to exercise the window", res.Subgraphs)
	}
	if res.PeakLiveShards <= 0 || res.PeakLiveShards > streamWindow(4) {
		t.Fatalf("PeakLiveShards = %d, want in (0,%d]", res.PeakLiveShards, streamWindow(4))
	}
	if res.Candidates > 0 && res.PeakLiveCands >= res.Candidates {
		t.Fatalf("PeakLiveCands = %d >= total candidates %d: live set not bounded",
			res.PeakLiveCands, res.Candidates)
	}
}
