// Package core implements the paper's contribution: timing-driven
// incremental multi-bit register composition using a placement-aware ILP.
//
// The pipeline (§3–§4):
//
//  1. the compatibility graph (package compat) is decomposed into connected
//     components and clock-position-driven subgraphs of bounded size
//     (package partition);
//  2. per subgraph, every valid sub-clique is enumerated against the MBR
//     library widths, optionally admitting incomplete MBRs under an area
//     rule (package clique);
//  3. each candidate gets the placement-aware weight of §3.2 from the
//     convex hull of its members' corners and the registers blocking it;
//  4. a weighted set-partitioning ILP (package ilp) picks the candidate set
//     covering every register exactly once at minimum total weight;
//  5. each selected MBR is mapped to a library cell by drive resistance and
//     clock-pin capacitance (§4.1), placed by a wirelength-minimizing LP
//     inside the group's common timing-feasible region (§4.2), committed to
//     the netlist, and legalized incrementally.
//
// Steps 2–4 are independent per subgraph and run concurrently on a bounded
// worker pool (Options.Workers); results are merged by a deterministic
// ordered reduce, so the outcome is byte-identical for any worker count.
// See parallel.go.
//
// A greedy maximal-clique heuristic (in the spirit of the comparison in
// Fig. 6) is provided as the baseline composer.
package core

import (
	"time"

	"repro/internal/compat"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

// Method selects the candidate-selection algorithm.
type Method int

// Composition methods.
const (
	// MethodILP is the paper's placement-aware weighted ILP.
	MethodILP Method = iota
	// MethodGreedy is the maximal-clique + mapping heuristic baseline of
	// Fig. 6 (in the spirit of Wang et al. [8] and Lin et al. [12]).
	MethodGreedy
)

func (m Method) String() string {
	if m == MethodGreedy {
		return "greedy"
	}
	return "ilp"
}

// Options configures composition.
type Options struct {
	// Method selects ILP or the greedy baseline.
	Method Method
	// MaxSubgraphNodes bounds each partitioned subgraph (§3; the paper uses
	// 30: smaller loses QoR, larger wastes runtime).
	MaxSubgraphNodes int
	// AllowIncomplete admits MBRs with unconnected D/Q pairs (§3).
	AllowIncomplete bool
	// IncompleteAreaOverhead is the flow-level cap on the extra area an
	// incomplete MBR may cost relative to the registers it replaces (§5
	// uses 5% → 0.05).
	IncompleteAreaOverhead float64
	// PerBitAreaRule additionally enforces §3's stricter admission rule for
	// incomplete MBRs: area per connected bit below the average per-bit
	// area of the replaced registers. See incompleteAreaOK for why the §5
	// overhead cap is the default.
	PerBitAreaRule bool
	// UseWeights enables the placement-aware weights of §3.2. When false
	// every candidate costs 1 (pure register-count minimization) — the
	// ablation showing why the weights matter for congestion/wirelength.
	UseWeights bool
	// MaxCandidatesPerSubgraph caps enumeration per subgraph (0 = default).
	MaxCandidatesPerSubgraph int
	// ILPNodeLimit caps branch & bound nodes per subgraph (0 = default).
	ILPNodeLimit int
	// NamePrefix names the created MBR instances (default "mbrc").
	NamePrefix string
	// Workers bounds the worker pool that the per-partition stages (clique
	// enumeration, candidate scoring, subgraph ILP solves) fan out across:
	// 0 = one worker per available CPU (runtime.GOMAXPROCS), 1 = the legacy
	// sequential path. The result is byte-identical for any value — see
	// parallel.go.
	Workers int
	// ReleaseClocks, when set, is called with each group's member registers
	// immediately before they are merged. The retained clock-tree engine
	// hooks in here to move member clock pins from their current tree leaf
	// nets back to the domain root, so the merge's control-net agreement
	// check sees one common clock net and the MBR lands on the root (the
	// next tree update re-parents it under a leaf).
	ReleaseClocks func(regs []*netlist.Inst)

	// DisableSolveMemo turns off the retained compose engine's
	// signature-keyed per-subgraph solve memo; every pass then runs the
	// memo-free pipeline. The zero value (memo on) is the recommended
	// default. Ignored by the plain Compose/ComposeWith entry points,
	// which are always memo-free.
	DisableSolveMemo bool
	// DisableWarmStart turns off seeding dirty subgraphs' branch & bound
	// with the previous pass's selection. The zero value (warm starts on)
	// is the recommended default; either setting yields bit-identical
	// selections (see ilp.CoverInstance.Warm).
	DisableWarmStart bool
	// MemoLimit bounds the engine's memo to this many subgraph entries
	// (0 = default 65536). A round presenting more subgraphs than the
	// limit falls back to the memo-free path for that round.
	MemoLimit int

	// ParallelCliqueThreshold is the subgraph node count at or above which
	// sub-clique enumeration splits its top-level Bron–Kerbosch branches
	// across the worker pool (clique.EnumerateSubCliquesParallel); smaller
	// subgraphs enumerate sequentially, where goroutine overhead would
	// dominate. 0 = default 24; negative disables intra-subgraph clique
	// parallelism. Result-neutral: the parallel enumeration is
	// byte-identical to the sequential one at any worker count.
	ParallelCliqueThreshold int
	// DisableStreaming makes the batch entry points (Compose/ComposeWith
	// with subgraphs == nil) materialize the whole decomposition up front,
	// the pre-streaming behavior. The zero value (streaming on) decomposes,
	// solves and reduces shard by shard through bounded channels, keeping
	// peak memory proportional to live shards instead of the whole
	// decomposition. Result-neutral: both paths are byte-identical.
	// Ignored when subgraphs are supplied (the retained engines' path).
	DisableStreaming bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Method:                   MethodILP,
		MaxSubgraphNodes:         30,
		AllowIncomplete:          true,
		IncompleteAreaOverhead:   0.05,
		UseWeights:               true,
		MaxCandidatesPerSubgraph: 6000,
		NamePrefix:               "mbrc",
	}
}

// ComposedMBR describes one committed merge.
type ComposedMBR struct {
	// Inst is the new MBR instance.
	Inst *netlist.Inst
	// Members are the replaced register instance IDs.
	Members []netlist.InstID
	// Cell is the mapped library cell.
	Cell *lib.Cell
	// Bits is the number of connected D/Q pairs.
	Bits int
	// Incomplete reports unconnected D/Q pairs.
	Incomplete bool
	// Pos is the LP-chosen position (before legalization).
	Pos geom.Point
	// Weight is the candidate's ILP weight.
	Weight float64
}

// Result summarizes a composition run.
type Result struct {
	// MBRs are the committed multi-register merges (singleton "keep"
	// decisions are not listed).
	MBRs []ComposedMBR
	// RegsBefore / RegsAfter are design register counts (each MBR counts
	// as one register, as in Table 1).
	RegsBefore, RegsAfter int
	// ComposableRegs is the node count of the compatibility graph.
	ComposableRegs int
	// Subgraphs is the number of ILP subproblems solved.
	Subgraphs int
	// Workers is the resolved worker-pool size the per-partition stages ran
	// with (1 = sequential).
	Workers int
	// Candidates is the total number of enumerated valid candidates.
	Candidates int
	// TruncatedSubgraphs counts subgraphs whose enumeration hit the cap.
	TruncatedSubgraphs int
	// ILPNodes is the total branch & bound node count.
	ILPNodes int
	// ObjectiveSum is the summed ILP objective over subgraphs.
	ObjectiveSum float64
	// IncompleteMBRs counts committed MBRs with tied-off bits.
	IncompleteMBRs int
	// Runtime is the wall-clock composition time.
	Runtime time.Duration
	// LegalizationMoved / LegalizationFailed report the incremental
	// legalization outcome for the new MBRs.
	LegalizationMoved  int
	LegalizationFailed int

	// SchedShards / SchedSteals report the work-stealing shard scheduler:
	// shards scheduled this run (0 when the sequential or streaming path
	// ran) and shards a worker claimed from another worker's queue.
	// SchedSteals depends on the goroutine schedule and is excluded from
	// byte-identity oracles.
	SchedShards int
	SchedSteals int
	// StreamedShards counts subgraphs that flowed through the streaming
	// pipeline (0 when a materialized decomposition was solved).
	StreamedShards int
	// PeakLiveShards / PeakLiveCands are streaming high-water marks: the
	// most shards simultaneously in the pipeline (queued, solving, or
	// awaiting the ordered reduce) and the largest concurrent sum of their
	// candidate counts — the evidence that peak memory tracks live shards,
	// not the whole decomposition. Both depend on the goroutine schedule
	// and are excluded from byte-identity oracles.
	PeakLiveShards int
	PeakLiveCands  int
}

// BitWidthHistogram returns register-instance counts keyed by bit width —
// the Fig. 5 breakdown.
func BitWidthHistogram(d *netlist.Design) map[int]int {
	h := map[int]int{}
	for _, r := range d.Registers() {
		h[r.Bits()]++
	}
	return h
}

// candidate is one enumerated MBR candidate within a subgraph.
type candidate struct {
	// nodes are compatibility-graph node ids (not subgraph-local).
	nodes []int
	// totalBits is the connected bit count.
	totalBits int
	// width is the library width it maps to (≥ totalBits when incomplete).
	width int
	// weight is the §3.2 weight.
	weight float64
	// blockers is n_i, recorded for diagnostics.
	blockers int
}

// regOf is a convenience accessor.
func regOf(g *compat.Graph, node int) *netlist.Inst { return g.Regs[node].Inst }
