package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// fingerprint captures the state an incremental consumer caches for one
// instance: position, flags, groups, cell identity, pin connectivity.
func fingerprint(d *netlist.Design, in *netlist.Inst) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v %v %v %d %d %p %p|", in.Pos, in.Fixed, in.SizeOnly,
		in.GateGroup, in.ScanPartition, in.RegCell, in.Comb)
	for _, pid := range in.Pins {
		p := d.Pin(pid)
		fmt.Fprintf(&b, "%d/%d:%d ", p.Kind, p.Bit, p.Net)
	}
	return b.String()
}

func designSnapshot(d *netlist.Design) map[netlist.InstID]string {
	out := map[netlist.InstID]string{}
	d.Insts(func(in *netlist.Inst) { out[in.ID] = fingerprint(d, in) })
	return out
}

// TestComposeTouchedLogConsistency runs a real composition pass — merges,
// scan-plan rewrites, incremental legalization moves — and asserts the
// touched log accounts for every instance whose state actually changed
// (the satellite guarantee: a flow pass never leaves the log inconsistent
// with the mutations it performed).
func TestComposeTouchedLogConsistency(t *testing.T) {
	b, err := bench.Generate(bench.D1(bench.ProfileOpts{Scale: 300}))
	if err != nil {
		t.Fatal(err)
	}
	d := b.Design
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := compat.Build(d, res, b.Plan, compat.DefaultOptions())

	cursor := d.Epoch()
	before := designSnapshot(d)
	cres, err := Compose(d, g, b.Plan, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.MBRs) == 0 {
		t.Fatal("composition merged nothing; the test needs real mutations")
	}
	after := designSnapshot(d)

	changed := map[netlist.InstID]bool{}
	for id, s := range before {
		if s2, ok := after[id]; !ok || s2 != s {
			changed[id] = true
		}
	}
	for id := range after {
		if _, ok := before[id]; !ok {
			changed[id] = true
		}
	}

	touched, complete := d.TouchedSince(cursor)
	if !complete {
		t.Skipf("touched log overflowed (%d changes); nothing to verify", len(changed))
	}
	logged := map[netlist.InstID]bool{}
	for _, id := range touched {
		logged[id] = true
	}
	for id := range changed {
		if !logged[id] {
			t.Errorf("compose changed instance %d but the touched log missed it", id)
		}
	}
}
