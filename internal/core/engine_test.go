package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/netlist"
	"repro/internal/paperex"
	"repro/internal/scan"
	"repro/internal/sta"
)

// rebuildGraph runs fresh ideal-clock timing on the design's current state
// and builds the compatibility graph from it — what the flow does between
// composition passes.
func rebuildGraph(t testing.TB, d *netlist.Design, plan *scan.Plan) *compat.Graph {
	t.Helper()
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return compat.Build(d, res, plan, compat.DefaultOptions())
}

// summaryNoNodes is composeSummary with ILPNodes masked out — the one field
// the retained engine may legitimately report differently when warm starts
// are enabled (probe/retry node accounting), while the selection and the
// design state stay bit-identical.
func summaryNoNodes(res *Result, d *netlist.Design) string {
	c := *res
	c.ILPNodes = 0
	return composeSummary(&c, d)
}

// engineOracleRounds drives twin designs through `rounds` composition
// passes with identical ≤1% register wiggles in between: one twin through
// the retained engine, the other through the memo-free ComposeWith. Every
// round, the results and final design states must match. invalidateAt, when
// ≥ 0, forces a full retained-state drop before that round.
func engineOracleRounds(t *testing.T, spec bench.Spec, workers, rounds int, disableWarm bool, invalidateAt int) *Engine {
	t.Helper()
	genE, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	genF, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dE, dF := genE.Design, genF.Design
	eng := NewEngine(dE)
	eng.SetWorkers(workers)
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < rounds; round++ {
		if round > 0 {
			regsE, regsF := dE.Registers(), dF.Registers()
			if len(regsE) != len(regsF) {
				t.Fatalf("twin designs diverged before round %d: %d vs %d regs",
					round, len(regsE), len(regsF))
			}
			n := len(regsE)/100 + 1
			for k := 0; k < n; k++ {
				j := rng.Intn(len(regsE))
				if regsE[j].Fixed {
					continue
				}
				p := regsE[j].Pos
				p.X += int64(rng.Intn(4001)) - 2000
				p.Y += int64(rng.Intn(4001)) - 2000
				dE.MoveInst(regsE[j], p)
				dF.MoveInst(regsF[j], p)
			}
		}
		if round == invalidateAt {
			eng.Invalidate()
		}
		opts := DefaultOptions()
		opts.Workers = workers
		opts.DisableWarmStart = disableWarm
		// Per-round MBR name prefix, as the flow does between passes. The
		// prefix is commit-only and must not perturb the memo.
		opts.NamePrefix = fmt.Sprintf("p%d", round)
		gE := rebuildGraph(t, dE, genE.Plan)
		gF := rebuildGraph(t, dF, genF.Plan)
		resE, err := eng.Compose(gE, genE.Plan, nil, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		resF, err := ComposeWith(dF, gF, genF.Plan, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		var sumE, sumF string
		if disableWarm {
			sumE, sumF = composeSummary(resE, dE), composeSummary(resF, dF)
		} else {
			sumE, sumF = summaryNoNodes(resE, dE), summaryNoNodes(resF, dF)
		}
		if sumE != sumF {
			t.Fatalf("round %d: engine diverged from memo-free compose:\nengine:\n%s\nfresh:\n%s",
				round, sumE, sumF)
		}
	}
	return eng
}

// TestEngineMatchesComposeWithProfiles is the oracle: on all five design
// profiles and multiple worker counts, multi-round retained composition is
// bit-identical (selections, counts, objective, final design state) to
// rebuilding from scratch every round.
func TestEngineMatchesComposeWithProfiles(t *testing.T) {
	o := bench.ProfileOpts{Scale: 150}
	profiles := []struct {
		name string
		spec bench.Spec
	}{
		{"D1", bench.D1(o)},
		{"D2", bench.D2(o)},
		{"D3", bench.D3(o)},
		{"D4", bench.D4(o)},
		{"D5", bench.D5(o)},
	}
	workerCounts := []int{1, 4}
	if testing.Short() {
		profiles = profiles[:2]
		workerCounts = []int{4}
	}
	for _, p := range profiles {
		for _, w := range workerCounts {
			p, w := p, w
			t.Run(fmt.Sprintf("%s/workers=%d", p.name, w), func(t *testing.T) {
				eng := engineOracleRounds(t, p.spec, w, 3, false, -1)
				st := eng.Stats()
				if st.Rounds != 3 {
					t.Fatalf("engine served %d rounds, want 3: %+v", st.Rounds, st)
				}
				if st.SubgraphsSeen != st.SubgraphsReused+st.SubgraphsSolved {
					t.Fatalf("subgraph accounting inconsistent: %+v", st)
				}
			})
		}
	}
}

// TestEngineNoWarmFullyIdentical disables warm starts, where even the
// branch & bound node counts must match the memo-free path exactly.
func TestEngineNoWarmFullyIdentical(t *testing.T) {
	o := bench.ProfileOpts{Scale: 150}
	for _, p := range []struct {
		name string
		spec bench.Spec
	}{
		{"D1", bench.D1(o)},
		{"D3", bench.D3(o)},
	} {
		p := p
		t.Run(p.name, func(t *testing.T) {
			engineOracleRounds(t, p.spec, 4, 3, true, -1)
		})
	}
}

// TestEngineInvalidateMidSequence forces a retained-state drop before the
// last round: the next Compose must re-solve everything and still match.
func TestEngineInvalidateMidSequence(t *testing.T) {
	eng := engineOracleRounds(t, bench.D2(bench.ProfileOpts{Scale: 150}), 4, 3, false, 2)
	st := eng.Stats()
	if st.Invalidations == 0 {
		t.Fatalf("Invalidate not recorded: %+v", st)
	}
}

// TestEngineMemoFullReuseOnIdenticalRound runs composition passes to
// convergence (a pass that forms no MBRs leaves the design untouched), then
// one more: that round must replay every subgraph from the memo with zero
// fresh solves — the "no unchanged subgraph is ever re-solved" guarantee.
func TestEngineMemoFullReuseOnIdenticalRound(t *testing.T) {
	gen, err := bench.Generate(bench.D2(bench.ProfileOpts{Scale: 150}))
	if err != nil {
		t.Fatal(err)
	}
	d := gen.Design
	eng := NewEngine(d)
	eng.SetWorkers(4)
	opts := DefaultOptions()
	opts.Workers = 4
	converged := false
	for i := 0; i < 10; i++ {
		opts.NamePrefix = fmt.Sprintf("p%d", i)
		g := rebuildGraph(t, d, gen.Plan)
		res, err := eng.Compose(g, gen.Plan, nil, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.MBRs) == 0 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("composition did not converge in 10 passes")
	}

	before := eng.Stats()
	g := rebuildGraph(t, d, gen.Plan)
	res, err := eng.Compose(g, gen.Plan, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SubgraphsSolved != before.SubgraphsSolved {
		t.Fatalf("identical round re-solved %d subgraphs",
			st.SubgraphsSolved-before.SubgraphsSolved)
	}
	if got := st.SubgraphsReused - before.SubgraphsReused; got != res.Subgraphs {
		t.Fatalf("reused %d of %d subgraphs", got, res.Subgraphs)
	}
	// Converged subgraphs solve entirely in presolve (every multi-member
	// candidate is over-weighted, so the singleton columns are all forced):
	// their stored node counts are zero, and replaying them saves
	// enumeration and presolve work but no branch & bound nodes.
	if st.ILPNodesSaved != before.ILPNodesSaved {
		t.Fatalf("converged replays reported saved nodes: %+v", st)
	}
	if kind := eng.Summary().LastKind; kind != "memo-delta" {
		t.Fatalf("LastKind = %q, want memo-delta", kind)
	}
	if st.MemoEntries != res.Subgraphs {
		t.Fatalf("memo holds %d entries for %d subgraphs", st.MemoEntries, res.Subgraphs)
	}
}

// TestEngineFallbackPaths covers the memo-free fallbacks: a subgraph count
// over MemoLimit and an explicit DisableSolveMemo must both serve the round
// through the plain pipeline, drop the retained state, and still produce
// the memo-free result.
func TestEngineFallbackPaths(t *testing.T) {
	spec := bench.D1(bench.ProfileOpts{Scale: 150})
	genE, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	genF, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dE, dF := genE.Design, genF.Design
	eng := NewEngine(dE)
	eng.SetWorkers(4)

	fallbackRound := 0
	check := func(opts Options, wantKind string) {
		t.Helper()
		opts.Workers = 4
		opts.NamePrefix = fmt.Sprintf("p%d", fallbackRound)
		fallbackRound++
		gE := rebuildGraph(t, dE, genE.Plan)
		gF := rebuildGraph(t, dF, genF.Plan)
		resE, err := eng.Compose(gE, genE.Plan, nil, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		resF, err := ComposeWith(dF, gF, genF.Plan, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if sumE, sumF := composeSummary(resE, dE), composeSummary(resF, dF); sumE != sumF {
			t.Fatalf("fallback %q diverged:\nengine:\n%s\nfresh:\n%s", wantKind, sumE, sumF)
		}
		if kind := eng.Summary().LastKind; kind != wantKind {
			t.Fatalf("LastKind = %q, want %q", kind, wantKind)
		}
		if st := eng.Stats(); st.MemoEntries != 0 {
			t.Fatalf("fallback %q retained %d memo entries", wantKind, st.MemoEntries)
		}
	}

	over := DefaultOptions()
	over.MemoLimit = 1 // any real decomposition exceeds this
	check(over, "overflow")

	off := DefaultOptions()
	off.DisableSolveMemo = true
	check(off, "memo-off")

	if st := eng.Stats(); st.Fallbacks != 2 {
		t.Fatalf("expected 2 fallbacks, got %+v", st)
	}
}

// TestEngineOptionChangeDropsMemo pins the options-signature gate: changing
// a solve-relevant option between rounds must invalidate the memo (nothing
// can be replayed under different solve semantics).
func TestEngineOptionChangeDropsMemo(t *testing.T) {
	gen, err := bench.Generate(bench.D1(bench.ProfileOpts{Scale: 150}))
	if err != nil {
		t.Fatal(err)
	}
	d := gen.Design
	eng := NewEngine(d)
	opts := DefaultOptions()
	g := rebuildGraph(t, d, gen.Plan)
	if _, err := eng.Compose(g, gen.Plan, nil, nil, opts); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	opts.NamePrefix = "p1"
	opts.UseWeights = false // solve-relevant: different weights, different optimum
	g = rebuildGraph(t, d, gen.Plan)
	if _, err := eng.Compose(g, gen.Plan, nil, nil, opts); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Invalidations != before.Invalidations+1 {
		t.Fatalf("option change did not invalidate: %+v", st)
	}
	if st.SubgraphsReused != before.SubgraphsReused {
		t.Fatalf("replayed %d subgraphs across an option change",
			st.SubgraphsReused-before.SubgraphsReused)
	}
}

// TestEngineGreedyMethod runs the retained engine under the greedy selector
// (no ILP, no warm starts): memoization must still be exact.
func TestEngineGreedyMethod(t *testing.T) {
	spec := bench.D2(bench.ProfileOpts{Scale: 200})
	genE, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	genF, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dE, dF := genE.Design, genF.Design
	eng := NewEngine(dE)
	opts := DefaultOptions()
	opts.Method = MethodGreedy
	for round := 0; round < 2; round++ {
		opts.NamePrefix = fmt.Sprintf("p%d", round)
		gE := rebuildGraph(t, dE, genE.Plan)
		gF := rebuildGraph(t, dF, genF.Plan)
		resE, err := eng.Compose(gE, genE.Plan, nil, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		resF, err := ComposeWith(dF, gF, genF.Plan, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if sumE, sumF := composeSummary(resE, dE), composeSummary(resF, dF); sumE != sumF {
			t.Fatalf("greedy round %d diverged:\nengine:\n%s\nfresh:\n%s", round, sumE, sumF)
		}
	}
}

// TestWeightPruneBoundaryConsistent is the epsilon-unification regression
// test: a multi-member candidate priced within weightPruneTol of its member
// count must be cut by BOTH selection paths, and one priced clearly below
// must be kept by both. Before the shared overWeighted predicate the ILP
// path cut at members−1e-12 while the greedy path cut at members exactly,
// so a boundary candidate composed under one method but not the other.
func TestWeightPruneBoundaryConsistent(t *testing.T) {
	d, regs, err := paperex.Design(false)
	if err != nil {
		t.Fatal(err)
	}
	g := paperex.Graph(d, regs)
	nodes := []int{0, 1} // registers A and B of the worked example

	run := func(pairWeight float64) (ilpPicked, greedyPicked bool) {
		t.Helper()
		cands := []candidate{
			{nodes: []int{0}, totalBits: 1, width: 1, weight: 1},
			{nodes: []int{1}, totalBits: 1, width: 1, weight: 1},
			{nodes: []int{0, 1}, totalBits: 2, width: 2, weight: pairWeight},
		}
		picked, _, err := selectILP(nodes, cands, normalizeOptions(DefaultOptions()), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range picked {
			if len(c.nodes) > 1 {
				ilpPicked = true
			}
		}
		gPicked, _ := selectGreedy(d, g, nodes, cands)
		for _, c := range gPicked {
			if len(c.nodes) > 1 {
				greedyPicked = true
			}
		}
		return ilpPicked, greedyPicked
	}

	// Within tolerance of the boundary (2 − tol/2): over-weighted for both.
	if ilpP, grP := run(2 - weightPruneTol/2); ilpP || grP {
		t.Fatalf("boundary candidate survived pruning: ilp=%v greedy=%v", ilpP, grP)
	}
	// Exactly at the member count: over-weighted for both.
	if ilpP, grP := run(2); ilpP || grP {
		t.Fatalf("at-cost candidate survived pruning: ilp=%v greedy=%v", ilpP, grP)
	}
	// Clearly below: kept and selected by both.
	if ilpP, grP := run(2 - 1e-6); !ilpP || !grP {
		t.Fatalf("beneficial candidate not selected: ilp=%v greedy=%v", ilpP, grP)
	}
}

// TestMemoEntryReplayRoundtrip is the white-box accounting check: a fresh
// solve converted to a memo entry and replayed over a shifted node list
// must reproduce the result exactly, with the member ordinals remapped and
// the stored branch & bound node count intact (what ILPNodesSaved sums).
func TestMemoEntryReplayRoundtrip(t *testing.T) {
	sr := subgraphResult{
		picked: []candidate{
			{nodes: []int{10, 30}, totalBits: 2, width: 2, weight: 1.25, blockers: 1},
			{nodes: []int{20, 40, 50}, totalBits: 3, width: 4, weight: 2.5, blockers: 0},
		},
		objective:  4.75,
		ilpNodes:   7,
		candidates: 9,
		truncated:  true,
	}
	nodes := []int{10, 20, 30, 40, 50}
	ent := entryOf(sr, nodes)

	// Same members at different graph indexes (node ids shift as the
	// evolving graph is rebuilt, the signature pins only the content).
	shifted := []int{3, 8, 1, 4, 9}
	got := ent.replay(shifted)
	if got.objective != sr.objective || got.ilpNodes != 7 ||
		got.candidates != 9 || !got.truncated {
		t.Fatalf("replay mangled scalars: %+v", got)
	}
	want := [][]int{{3, 1}, {8, 4, 9}}
	if len(got.picked) != len(want) {
		t.Fatalf("replay returned %d picks, want %d", len(got.picked), len(want))
	}
	for i, c := range got.picked {
		if fmt.Sprint(c.nodes) != fmt.Sprint(want[i]) {
			t.Fatalf("pick %d nodes = %v, want %v", i, c.nodes, want[i])
		}
		orig := sr.picked[i]
		if c.totalBits != orig.totalBits || c.width != orig.width ||
			c.weight != orig.weight || c.blockers != orig.blockers {
			t.Fatalf("pick %d fields diverged: %+v vs %+v", i, c, orig)
		}
	}
}
