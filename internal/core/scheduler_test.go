package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestRunShardedClaimsEachShardOnce is the scheduler's safety property:
// every shard is processed exactly once, for any shard count, cost skew and
// worker count, steals included.
func TestRunShardedClaimsEachShardOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		workers := 1 + rng.Intn(8)
		costs := make([]int64, n)
		for i := range costs {
			// Heavy-tailed costs: most shards cheap, a few huge — the skew
			// the scheduler exists for.
			costs[i] = int64(1 + rng.Intn(10))
			if rng.Intn(10) == 0 {
				costs[i] *= 1000
			}
		}
		counts := make([]int64, n)
		st := runSharded(costs, workers, func(i int) {
			atomic.AddInt64(&counts[i], 1)
		})
		if st.shards != n {
			t.Fatalf("trial %d: shards = %d want %d", trial, st.shards, n)
		}
		if st.steals < 0 || st.steals > n {
			t.Fatalf("trial %d: steals = %d out of [0,%d]", trial, st.steals, n)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("trial %d (n=%d workers=%d): shard %d processed %d times",
					trial, n, workers, i, c)
			}
		}
	}
}

// TestRunShardedStealsOnImbalance forces a steal: the first shard claimed is
// held hostage until every other shard completes, so the other worker must
// drain the hostage-holder's queue through the steal path. With 20
// equal-cost shards dealt 10/10 across 2 workers, at least 9 of the
// hostage-holder's shards are claimed by the other worker.
func TestRunShardedStealsOnImbalance(t *testing.T) {
	const n = 20
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = 1
	}
	var first int64 = -1
	var processed int64
	release := make(chan struct{})
	st := runSharded(costs, 2, func(i int) {
		if atomic.CompareAndSwapInt64(&first, -1, int64(i)) {
			<-release
			return
		}
		if atomic.AddInt64(&processed, 1) == n-1 {
			close(release)
		}
	})
	if st.steals < 9 {
		t.Fatalf("steals = %d, want >= 9 (one worker blocked, the other must steal its queue)", st.steals)
	}
	if st.shards != n {
		t.Fatalf("shards = %d want %d", st.shards, n)
	}
}

// TestRunShardedMoreWorkersThanShards checks the clamp-fix regime: a pool
// larger than the shard count must still process everything exactly once
// and terminate (the surplus workers find empty queues and exit through the
// steal scan).
func TestRunShardedMoreWorkersThanShards(t *testing.T) {
	costs := []int64{7, 3, 11}
	counts := make([]int64, len(costs))
	st := runSharded(costs, 16, func(i int) {
		atomic.AddInt64(&counts[i], 1)
	})
	if st.shards != len(costs) {
		t.Fatalf("shards = %d want %d", st.shards, len(costs))
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("shard %d processed %d times", i, c)
		}
	}
}

// TestSchedulableUnits pins the clamp model: plain subgraphs count one unit,
// subgraphs at or above the parallel-clique threshold count one per node.
func TestSchedulableUnits(t *testing.T) {
	sg := func(n int) []int { return make([]int, n) }
	cases := []struct {
		subgraphs [][]int
		threshold int
		want      int
	}{
		{nil, 24, 1},
		{[][]int{sg(3), sg(5)}, 24, 2},
		{[][]int{sg(3), sg(24)}, 24, 25},
		{[][]int{sg(30), sg(30)}, 24, 60},
		{[][]int{sg(30), sg(30)}, -1, 2}, // disabled threshold: subgraph count
		{[][]int{sg(30)}, 31, 1},
	}
	for i, c := range cases {
		if got := schedulableUnits(c.subgraphs, c.threshold); got != c.want {
			t.Fatalf("case %d: units = %d want %d", i, got, c.want)
		}
	}
}

// TestEstimateShardCost pins the cost model's shape: cost grows with node
// count and with local edge density, and ignores edges leaving the shard.
func TestEstimateShardCost(t *testing.T) {
	d, g, _ := genComposeInput(t, randomSpec(9))
	_ = d
	// A subgraph of disconnected nodes costs exactly n.
	single := estimateShardCost(g, []int{0})
	if single != 1 {
		t.Fatalf("singleton cost = %d want 1", single)
	}
	// Adding a node never lowers the cost.
	var grow []int
	prev := int64(0)
	for n := 0; n < len(g.Regs) && n < 8; n++ {
		grow = append(grow, n)
		c := estimateShardCost(g, grow)
		if c < prev {
			t.Fatalf("cost shrank from %d to %d when adding node %d", prev, c, n)
		}
		prev = c
	}
}
