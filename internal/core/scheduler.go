package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/compat"
)

// Work-stealing shard scheduler. The static fan-out this replaces handed
// subgraphs to a pool through one shared channel in index order, which at
// paper scale leaves the tail serialized: component sizes are heavily
// skewed, and whichever worker draws a giant dense component near the end
// runs alone while the rest idle. The scheduler instead ranks shards by
// estimated cost, pre-assigns them to per-worker queues longest-processing-
// time-first (so the expensive shards start first, on separate workers), and
// lets workers that drain their own queue claim the remainder of other
// queues through atomic cursors. Stealing fixes whatever the cost estimate
// got wrong.
//
// Scheduling only decides *when* a shard runs and on which goroutine; every
// shard still writes its own index-addressed result slot and the ordered
// reduce consumes slots in subgraph index order, so the composition result
// is byte-identical for any worker count and any steal pattern. The steal
// counter is schedule-dependent diagnostics and is excluded from every
// byte-identity oracle.

// schedStats reports one scheduler run.
type schedStats struct {
	// shards is the number of work items scheduled.
	shards int
	// steals counts items a worker claimed from another worker's queue.
	steals int
}

// estimateShardCost is the scheduler's cost model for one subgraph:
// n·(1+edges), a proxy for component size × candidate count. Candidate
// counts are not known before enumeration, but sub-clique enumeration and
// candidate weighting both grow with local edge density, and the per-node
// factor keeps edgeless shards from all costing the same.
func estimateShardCost(g *compat.Graph, nodes []int) int64 {
	local := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		local[n] = true
	}
	edges := 0
	for _, n := range nodes {
		for _, m := range g.Adj[n] {
			if local[m] {
				edges++
			}
		}
	}
	return int64(len(nodes)) * int64(1+edges/2)
}

// estimateShardCosts evaluates the cost model over a decomposition.
func estimateShardCosts(g *compat.Graph, subgraphs [][]int) []int64 {
	costs := make([]int64, len(subgraphs))
	for i, sg := range subgraphs {
		costs[i] = estimateShardCost(g, sg)
	}
	return costs
}

// schedulableUnits counts the independently schedulable work units in a
// decomposition: one per subgraph, plus one per node for subgraphs at or
// above the parallel-clique threshold, whose top-level Bron–Kerbosch
// branches fan out on their own (clique.EnumerateSubCliquesParallel). The
// worker pool is clamped against this instead of len(subgraphs), so a
// decomposition of a few huge subgraphs no longer idles CPUs the
// intra-subgraph stages could use.
func schedulableUnits(subgraphs [][]int, threshold int) int {
	units := 0
	for _, sg := range subgraphs {
		if threshold > 0 && len(sg) >= threshold {
			units += len(sg)
		} else {
			units++
		}
	}
	if units < 1 {
		units = 1
	}
	return units
}

// runSharded executes process(i) exactly once for every i in [0,len(costs))
// across `workers` goroutines. Shards are ranked by cost (descending, index
// ascending on ties) and dealt to per-worker queues greedily onto the least
// loaded queue — the classic LPT makespan heuristic — then each worker
// drains its own queue through an atomic cursor and, when empty, steals the
// unclaimed remainder of other queues the same way. Workers beyond the shard
// count park on stealing immediately, which is how idle CPUs pick up work
// that per-shard clique parallelism spawns elsewhere.
func runSharded(costs []int64, workers int, process func(int)) schedStats {
	st := schedStats{shards: len(costs)}
	if len(costs) == 0 || workers < 1 {
		return st
	}
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if costs[order[a]] != costs[order[b]] {
			return costs[order[a]] > costs[order[b]]
		}
		return order[a] < order[b]
	})
	queues := make([][]int, workers)
	loads := make([]int64, workers)
	for _, idx := range order {
		w := 0
		for q := 1; q < workers; q++ {
			if loads[q] < loads[w] {
				w = q
			}
		}
		queues[w] = append(queues[w], idx)
		loads[w] += costs[idx]
	}

	cursors := make([]int64, workers)
	var steals int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&cursors[self], 1) - 1
				if int(i) >= len(queues[self]) {
					break
				}
				process(queues[self][i])
			}
			for off := 1; off < workers; off++ {
				victim := (self + off) % workers
				for {
					i := atomic.AddInt64(&cursors[victim], 1) - 1
					if int(i) >= len(queues[victim]) {
						break
					}
					atomic.AddInt64(&steals, 1)
					process(queues[victim][i])
				}
			}
		}(w)
	}
	wg.Wait()
	st.steals = int(steals)
	return st
}
