// Package report renders the paper's tables and figures as text: Table 1
// rows (Base / Ours / Save%), the Fig. 5 bit-width histograms and the
// Fig. 6 normalized-register comparison.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/flow"
)

// Table1Header writes the column header of the Table 1 reproduction.
func Table1Header(w io.Writer) {
	fmt.Fprintf(w, "%-6s %-5s %10s %8s %8s %8s %7s %9s %9s %9s %7s %9s %9s %8s\n",
		"Design", "Row", "Area(um2)", "Cells", "TotRegs", "CompRegs",
		"ClkBufs", "ClkCap(pF)", "TNS(ns)", "FailEP", "Ovfl", "WLclk(mm)", "WLsig(mm)", "Exec")
	fmt.Fprintln(w, strings.Repeat("-", 132))
}

// Table1Rows writes the Base / Ours / Save rows for one design report.
func Table1Rows(w io.Writer, rep *flow.Report) {
	row := func(label string, m flow.Metrics, exec string) {
		fmt.Fprintf(w, "%-6s %-5s %10.0f %8d %8d %8d %7d %9.1f %9.2f %9d %7d %9.2f %9.2f %8s\n",
			rep.Design, label, m.AreaUM2, m.Cells, m.TotalRegs, m.CompRegs,
			m.ClkBufs, m.ClkCapPF, m.TNSNS, m.FailingEndpoints, m.OverflowEdges,
			m.WLClkMM, m.WLSigMM, exec)
	}
	row("Base", rep.Base, "")
	row("Ours", rep.Ours, rep.ComposeTime.Round(1e6).String())
	b, o := rep.Base, rep.Ours
	fmt.Fprintf(w, "%-6s %-5s %9.1f%% %7.1f%% %7.1f%% %7.1f%% %6.1f%% %8.1f%% %8.1f%% %8.1f%% %6.1f%% %8.1f%% %8.1f%%\n",
		rep.Design, "Save",
		pct(b.AreaUM2, o.AreaUM2), pctI(b.Cells, o.Cells),
		pctI(b.TotalRegs, o.TotalRegs), pctI(b.CompRegs, o.CompRegs),
		pctI(b.ClkBufs, o.ClkBufs), pct(b.ClkCapPF, o.ClkCapPF),
		pct(b.TNSNS, o.TNSNS), pctI(b.FailingEndpoints, o.FailingEndpoints),
		pctI(b.OverflowEdges, o.OverflowEdges),
		pct(b.WLClkMM, o.WLClkMM), pct(b.WLSigMM, o.WLSigMM))
}

func pct(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - ours) / base
}

func pctI(base, ours int) float64 { return pct(float64(base), float64(ours)) }

// Histogram writes a Fig. 5-style bit-width breakdown.
func Histogram(w io.Writer, title string, hist map[int]int) {
	fmt.Fprintf(w, "%s\n", title)
	var widths []int
	total := 0
	for bits, n := range hist {
		widths = append(widths, bits)
		total += n
	}
	sort.Ints(widths)
	for _, bits := range widths {
		n := hist[bits]
		bar := strings.Repeat("#", scaleBar(n, total, 50))
		fmt.Fprintf(w, "  %d-bit %6d (%5.1f%%) %s\n", bits, n, 100*float64(n)/float64(total), bar)
	}
}

func scaleBar(n, total, width int) int {
	if total == 0 {
		return 0
	}
	v := n * width / total
	if v == 0 && n > 0 {
		v = 1
	}
	return v
}

// Fig6Row is one design's ILP-vs-heuristic comparison.
type Fig6Row struct {
	Design string
	Base   int
	ILP    int
	Greedy int
}

// Fig6 writes the normalized-register comparison of Fig. 6.
func Fig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintf(w, "%-6s %8s %8s %8s %12s %12s %10s\n",
		"Design", "Base", "ILP", "Greedy", "ILP(norm)", "Greedy(norm)", "ILP gain")
	fmt.Fprintln(w, strings.Repeat("-", 70))
	var gainSum float64
	for _, r := range rows {
		ni := float64(r.ILP) / float64(r.Base)
		ng := float64(r.Greedy) / float64(r.Base)
		gain := 100 * (float64(r.Greedy) - float64(r.ILP)) / float64(r.Greedy)
		gainSum += gain
		fmt.Fprintf(w, "%-6s %8d %8d %8d %12.3f %12.3f %9.1f%%\n",
			r.Design, r.Base, r.ILP, r.Greedy, ni, ng, gain)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "average ILP gain over heuristic: %.1f%%\n", gainSum/float64(len(rows)))
	}
}
