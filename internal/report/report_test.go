package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/flow"
)

func sampleReport() *flow.Report {
	return &flow.Report{
		Design: "D9",
		Base: flow.Metrics{
			AreaUM2: 1000, Cells: 5000, TotalRegs: 800, CompRegs: 500,
			ClkBufs: 50, ClkCapPF: 3.0, TNSNS: 10, FailingEndpoints: 100,
			OverflowEdges: 40, WLClkMM: 5, WLSigMM: 100,
		},
		Ours: flow.Metrics{
			AreaUM2: 980, Cells: 4900, TotalRegs: 600, CompRegs: 250,
			ClkBufs: 45, ClkCapPF: 2.7, TNSNS: 9, FailingEndpoints: 90,
			OverflowEdges: 41, WLClkMM: 4, WLSigMM: 98,
		},
	}
}

func TestTable1Rows(t *testing.T) {
	var buf bytes.Buffer
	Table1Header(&buf)
	Table1Rows(&buf, sampleReport())
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header, rule, base, ours, save
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "D9") || !strings.Contains(out, "Base") || !strings.Contains(out, "Ours") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// 800 → 600 = 25% saving must appear on the Save row.
	if !strings.Contains(lines[4], "25.0%") {
		t.Fatalf("save row: %s", lines[4])
	}
	// Negative saving (overflow grew 40→41) renders with a minus.
	if !strings.Contains(lines[4], "-2.5%") {
		t.Fatalf("negative save missing: %s", lines[4])
	}
}

func TestPct(t *testing.T) {
	if got := pct(100, 75); got != 25 {
		t.Fatalf("pct = %g", got)
	}
	if got := pct(0, 10); got != 0 {
		t.Fatalf("pct(0,·) = %g", got)
	}
	if got := pctI(200, 220); got != -10 {
		t.Fatalf("pctI = %g", got)
	}
}

func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, "mix:", map[int]int{1: 50, 2: 25, 8: 25})
	out := buf.String()
	if !strings.Contains(out, "1-bit") || !strings.Contains(out, "50.0%") {
		t.Fatalf("histogram:\n%s", out)
	}
	// Bars scale with share; the 1-bit bar must be the longest.
	var oneBar, eightBar int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "#")
		if strings.Contains(line, "1-bit") {
			oneBar = n
		}
		if strings.Contains(line, "8-bit") {
			eightBar = n
		}
	}
	if oneBar <= eightBar {
		t.Fatalf("bar lengths: 1-bit %d vs 8-bit %d", oneBar, eightBar)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, "empty:", map[int]int{})
	if !strings.Contains(buf.String(), "empty:") {
		t.Fatal("title missing")
	}
}

func TestFig6(t *testing.T) {
	var buf bytes.Buffer
	Fig6(&buf, []Fig6Row{
		{Design: "D1", Base: 1000, ILP: 700, Greedy: 800},
		{Design: "D2", Base: 1000, ILP: 600, Greedy: 600},
	})
	out := buf.String()
	if !strings.Contains(out, "0.700") || !strings.Contains(out, "0.800") {
		t.Fatalf("normalized values missing:\n%s", out)
	}
	// Gains: 12.5% and 0% → average 6.2%.
	if !strings.Contains(out, "12.5%") || !strings.Contains(out, "average ILP gain over heuristic: 6.2%") {
		t.Fatalf("gain rows wrong:\n%s", out)
	}
}

func TestScaleBar(t *testing.T) {
	if scaleBar(0, 100, 50) != 0 {
		t.Fatal("zero stays zero")
	}
	if scaleBar(1, 1000, 50) != 1 {
		t.Fatal("nonzero rounds up to one")
	}
	if scaleBar(100, 100, 50) != 50 {
		t.Fatal("full share fills the bar")
	}
	if scaleBar(5, 0, 50) != 0 {
		t.Fatal("empty total yields zero")
	}
}
