// Package bench generates synthetic placed designs standing in for the
// paper's five 28nm industrial benchmarks (Table 1, rows "Base"). The
// generator is seeded and deterministic; each design profile (D1–D5) is
// calibrated to the corresponding Base row's *shape*: register count
// relative to cell count, composable fraction, pre-existing MBR bit-width
// mix (Fig. 5 "before"), clock gating, scan organization and placement
// clustering. Counts are scaled down (configurable) so the full flow runs
// in seconds rather than the hour-per-design of the paper's testbed.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/scan"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name string
	Seed int64
	// NumRegs is the number of register instances to create.
	NumRegs int
	// CombPerReg is the ratio of combinational cells to register instances
	// (industrial designs run ~25-65 cells per register; we keep the
	// composition-relevant density and scale the sea of gates down).
	CombPerReg float64
	// WidthMix gives the fraction of register instances per bit width
	// (Fig. 5 "before"); fractions are normalized internally.
	WidthMix map[int]float64
	// NonComposableFrac is the fraction of registers marked fixed/size-only
	// or mapped to classes without larger library MBRs (Table 1's gap
	// between Total-Regs and Comp-Regs).
	NonComposableFrac float64
	// ClusterSize controls placement clustering of compatible registers
	// (registers are generated in same-class clusters of roughly this many
	// instances placed near one another).
	ClusterSize int
	// GateGroups is the number of clock-gating domains (0 = ungated).
	GateGroups int
	// ScanChains is the number of scan chains (0 = no scan).
	ScanChains int
	// OrderedChainFrac is the fraction of chains that are ordered sections.
	OrderedChainFrac float64
	// TargetUtil is the placement utilization the core is sized for.
	TargetUtil float64
	// ClockPeriodPS is the timing constraint.
	ClockPeriodPS float64
	// SlackGradientDBU stretches each bank's cone wiring by this much per
	// bit index, giving the bank a systematic slack gradient (as real
	// datapaths have: bit 0 of a bus rarely times like bit 31). A gradient
	// turns each bank's compatibility structure from a complete clique
	// into overlapping windows — the structure that separates exact-cover
	// selection from greedy heuristics.
	SlackGradientDBU int64
}

// Result carries the generated design and its scan plan.
type Result struct {
	Design *netlist.Design
	Plan   *scan.Plan
}

// combLib is the small combinational cell set used for the logic fabric.
var combLib = []*netlist.CombSpec{
	{Name: "INV_X1", NumInputs: 1, DriveRes: 5, Intrinsic: 12, InCap: 0.5, Width: 400, Height: 1200},
	{Name: "NAND2_X1", NumInputs: 2, DriveRes: 5.5, Intrinsic: 16, InCap: 0.6, Width: 600, Height: 1200},
	{Name: "NOR2_X1", NumInputs: 2, DriveRes: 6.0, Intrinsic: 18, InCap: 0.6, Width: 600, Height: 1200},
	{Name: "AOI22_X1", NumInputs: 4, DriveRes: 6.5, Intrinsic: 24, InCap: 0.7, Width: 900, Height: 1200},
	{Name: "BUF_X2", NumInputs: 1, DriveRes: 3, Intrinsic: 20, InCap: 0.8, Width: 600, Height: 1200},
}

var gateSpec = &netlist.CombSpec{
	Name: "ICG_X4", NumInputs: 2, DriveRes: 2, Intrinsic: 25, InCap: 1.8,
	Width: 1000, Height: 1200,
}

// Generate builds the design described by the spec: clustered registers of
// mixed widths, a random combinational fabric connecting them, clock
// distribution with optional gating, scan chains, and a legalized
// placement.
func Generate(spec Spec) (*Result, error) {
	if spec.NumRegs <= 0 {
		return nil, fmt.Errorf("bench: NumRegs must be positive")
	}
	if spec.TargetUtil <= 0 || spec.TargetUtil >= 1 {
		spec.TargetUtil = 0.55
	}
	if spec.ClusterSize <= 0 {
		spec.ClusterSize = 12
	}
	if spec.ClockPeriodPS == 0 {
		spec.ClockPeriodPS = 1400
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	l := lib.MustGenerateDefault()

	// Estimate area to size the core.
	nComb := int(float64(spec.NumRegs) * spec.CombPerReg)
	regArea := estimateRegArea(l, spec)
	var combArea int64
	for i := 0; i < nComb; i++ {
		cs := combLib[i%len(combLib)]
		combArea += cs.Area()
	}
	totalArea := float64(regArea + combArea)
	coreSide := int64(math.Sqrt(totalArea/spec.TargetUtil)) + 1
	rowH := int64(1200)
	coreSide = (coreSide/rowH + 2) * rowH
	core := geom.RectWH(0, 0, coreSide, coreSide)

	d := netlist.NewDesign(spec.Name, core, l)
	d.SiteW = 100
	d.RowH = rowH
	d.Timing = netlist.TimingSpec{
		ClockPeriod:     spec.ClockPeriodPS,
		WireCapPerDBU:   0.0002,
		WireDelayPerDBU: 0.004,
		InputDelay:      spec.ClockPeriodPS * 0.1,
		OutputDelay:     spec.ClockPeriodPS * 0.1,
	}

	// Clock source and gating domains.
	clkPort, err := d.AddPort("clk", true, geom.Point{X: core.Lo.X, Y: core.Center().Y})
	if err != nil {
		return nil, err
	}
	rootClk := d.AddNet("clk", true)
	d.Connect(d.OutPin(clkPort), rootClk)
	clockNets := []*netlist.Net{rootClk}
	for gi := 0; gi < spec.GateGroups; gi++ {
		gate, err := d.AddClockGate(fmt.Sprintf("icg_%d", gi), gateSpec, randPoint(rng, core))
		if err != nil {
			return nil, err
		}
		d.Connect(d.Pin(gate.Pins[0]), rootClk) // clock input
		gated := d.AddNet(fmt.Sprintf("clk_g%d", gi), true)
		d.Connect(d.OutPin(gate), gated)
		clockNets = append(clockNets, gated)
	}

	banks, err := generateRegisters(d, l, spec, rng, clockNets)
	if err != nil {
		return nil, err
	}
	var regs []*netlist.Inst
	for _, b := range banks {
		regs = append(regs, b...)
	}
	if err := generateFabric(d, spec, rng, banks, nComb); err != nil {
		return nil, err
	}
	plan, err := generateScan(d, spec, rng, regs)
	if err != nil {
		return nil, err
	}

	lr := place.Legalize(d)
	if len(lr.Failed) > 0 {
		return nil, fmt.Errorf("bench: %d cells did not fit the core", len(lr.Failed))
	}
	// Mark the non-composable registers only after legalization, so fixed
	// cells hold legal positions (as designer-fixed cells would). The
	// marking is bank-granular: in practice whole modules are dont-touch,
	// or a whole register file's class has no larger MBR — isolated fixed
	// bits interleaved into otherwise-composable banks are rare.
	for _, bank := range banks {
		if rng.Float64() >= spec.NonComposableFrac {
			continue
		}
		sizeOnly := rng.Intn(2) == 0
		for _, r := range bank {
			if sizeOnly {
				d.SetSizeOnly(r, true)
			} else {
				d.SetFixed(r, true)
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bench: generated design invalid: %w", err)
	}
	return &Result{Design: d, Plan: plan}, nil
}

func estimateRegArea(l *lib.Library, spec Spec) int64 {
	class := lib.FuncClass{Kind: lib.FlipFlop, Reset: lib.AsyncReset, Scan: lib.InternalScan}
	var area int64
	for _, w := range widthSchedule(spec, rand.New(rand.NewSource(spec.Seed)))[:spec.NumRegs] {
		area += l.CellsOfWidth(class, w)[0].Area
	}
	return area
}

// widthSchedule expands the width mix into a deterministic per-register
// width assignment of length NumRegs (shuffled).
func widthSchedule(spec Spec, rng *rand.Rand) []int {
	mix := spec.WidthMix
	if len(mix) == 0 {
		mix = map[int]float64{1: 0.6, 2: 0.2, 4: 0.15, 8: 0.05}
	}
	var widths []int
	for w := range mix {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	var total float64
	for _, w := range widths {
		total += mix[w]
	}
	out := make([]int, 0, spec.NumRegs)
	for _, w := range widths {
		n := int(math.Round(mix[w] / total * float64(spec.NumRegs)))
		for i := 0; i < n && len(out) < spec.NumRegs; i++ {
			out = append(out, w)
		}
	}
	for len(out) < spec.NumRegs {
		out = append(out, widths[0])
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// regClasses are the functional classes registers are drawn from; variety
// here creates the class-pure components the real flow sees.
func regClasses() []lib.FuncClass {
	return []lib.FuncClass{
		{Kind: lib.FlipFlop, Reset: lib.AsyncReset, Scan: lib.InternalScan},
		{Kind: lib.FlipFlop, Reset: lib.AsyncReset, Scan: lib.InternalScan, HasEnable: true},
		{Kind: lib.FlipFlop, Reset: lib.NoReset, Scan: lib.InternalScan},
		{Kind: lib.FlipFlop, Reset: lib.AsyncReset, Scan: lib.NoScan},
	}
}

func randPoint(rng *rand.Rand, core geom.Rect) geom.Point {
	return geom.Point{
		X: core.Lo.X + int64(rng.Int63n(core.W())),
		Y: core.Lo.Y + int64(rng.Int63n(core.H())),
	}
}

// generateRegisters creates clustered registers, returned as banks. Each
// bank shares a functional class, clock net (gating domain) and control
// nets, and sits in a compact placement block — the situation MBR
// composition exploits.
func generateRegisters(
	d *netlist.Design,
	l *lib.Library,
	spec Spec,
	rng *rand.Rand,
	clockNets []*netlist.Net,
) ([][]*netlist.Inst, error) {
	widths := widthSchedule(spec, rng)
	classes := regClasses()
	core := d.Core

	// Shared control nets per (class, gate) combination.
	rstNets := map[int]*netlist.Net{}
	enNets := map[int]*netlist.Net{}
	seNet := d.AddNet("scan_en", false)
	sePort, err := d.AddPort("scan_en_port", true, geom.Point{X: core.Lo.X, Y: core.Lo.Y})
	if err != nil {
		return nil, err
	}
	d.Connect(d.OutPin(sePort), seNet)

	// Banks are laid out along a sweeping cursor: single-row strips with
	// random gaps, never overlapping one another. This is how placed
	// register banks actually look, and it matters: the §3.2 weights can
	// only tile banks whose test polygons are clean, and a legalizer
	// shuffling piled-up banks would interleave them.
	var banks [][]*netlist.Inst
	idx := 0
	cursorX := core.Lo.X + 2000
	cursorY := core.Lo.Y + d.RowH
	for idx < spec.NumRegs {
		var bank []*netlist.Inst
		k := spec.ClusterSize/2 + rng.Intn(spec.ClusterSize)
		if idx+k > spec.NumRegs {
			k = spec.NumRegs - idx
		}
		class := classes[rng.Intn(len(classes))]
		gate := rng.Intn(len(clockNets))
		// Estimated strip width for wrap decisions (8-bit cells dominate).
		maxCellW := l.CellsOfWidth(class, 8)[len(l.CellsOfWidth(class, 8))-1].Width
		if cursorX+int64(k)*maxCellW > core.Hi.X-2000 {
			cursorX = core.Lo.X + 2000 + int64(rng.Intn(4000))
			cursorY += d.RowH * int64(2+rng.Intn(2))
			if cursorY >= core.Hi.Y-d.RowH {
				cursorY = core.Lo.Y + d.RowH + int64(rng.Intn(3))*d.RowH
			}
		}
		cx := cursorX
		for i := 0; i < k; i++ {
			w := widths[idx]
			cells := l.CellsOfWidth(class, w)
			cell := cells[rng.Intn(len(cells))]
			pos := geom.Point{
				X: clampI(cx, core.Lo.X, core.Hi.X-cell.Width),
				Y: clampI(cursorY, core.Lo.Y, core.Hi.Y-cell.Height),
			}
			cx += cell.Width + 200
			r, err := d.AddRegister(fmt.Sprintf("reg_%d", idx), cell, pos)
			if err != nil {
				return nil, err
			}
			d.SetGateGroup(r, gate-1) // -1 for the ungated root domain
			d.Connect(d.ClockPin(r), clockNets[gate])
			if class.Reset != lib.NoReset {
				rn, ok := rstNets[gate]
				if !ok {
					rn = d.AddNet(fmt.Sprintf("rst_%d", gate), false)
					p, err := d.AddPort(fmt.Sprintf("rst_port_%d", gate), true,
						geom.Point{X: core.Lo.X, Y: core.Lo.Y + int64(gate)*d.RowH})
					if err != nil {
						return nil, err
					}
					d.Connect(d.OutPin(p), rn)
					rstNets[gate] = rn
				}
				d.Connect(d.FindPin(r, netlist.PinReset, 0), rn)
			}
			if class.HasEnable {
				en, ok := enNets[gate]
				if !ok {
					en = d.AddNet(fmt.Sprintf("en_%d", gate), false)
					p, err := d.AddPort(fmt.Sprintf("en_port_%d", gate), true,
						geom.Point{X: core.Hi.X, Y: core.Lo.Y + int64(gate)*d.RowH})
					if err != nil {
						return nil, err
					}
					d.Connect(d.OutPin(p), en)
					enNets[gate] = en
				}
				d.Connect(d.FindPin(r, netlist.PinEnable, 0), en)
			}
			if class.Scan != lib.NoScan {
				d.Connect(d.FindPin(r, netlist.PinScanEnable, 0), seNet)
			}
			bank = append(bank, r)
			idx++
		}
		cursorX = cx + int64(2000+rng.Intn(12000))
		banks = append(banks, bank)
	}
	return banks, nil
}

func clampI(v, lo, hi int64) int64 {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// generateFabric builds the combinational fabric as bank-to-bank
// datapaths: every register bank receives its D cones from one source bank
// (bits assigned round-robin), through a gate placed between the banks.
// Bits of the same bank therefore see correlated path delays — the same
// structure real datapath registers have, and the reason whole banks are
// timing compatible (§2). Leftover comb budget becomes extra fanout loads.
func generateFabric(
	d *netlist.Design,
	spec Spec,
	rng *rand.Rand,
	banks [][]*netlist.Inst,
	nComb int,
) error {
	core := d.Core
	// Pre-create Q nets for all registers.
	type bitRef struct {
		q   *netlist.Pin
		pos geom.Point
	}
	bankBits := make([][]bitRef, len(banks))
	var allBits []bitRef
	for bi, bank := range banks {
		for _, r := range bank {
			for b := 0; b < r.Bits(); b++ {
				q := d.QPin(r, b)
				qn := d.AddNet(fmt.Sprintf("q_%s_%d", r.Name, b), false)
				d.Connect(q, qn)
				ref := bitRef{q, d.PinPos(q)}
				bankBits[bi] = append(bankBits[bi], ref)
				allBits = append(allBits, ref)
			}
		}
	}
	// Input ports feed the first banks.
	nPorts := len(banks)/8 + 4
	var inPorts []*netlist.Pin
	for i := 0; i < nPorts; i++ {
		p, err := d.AddPort(fmt.Sprintf("in_%d", i), true,
			geom.Point{X: core.Lo.X, Y: core.Lo.Y + core.H()*int64(i)/int64(nPorts)})
		if err != nil {
			return err
		}
		pn := d.AddNet(fmt.Sprintf("inet_%d", i), false)
		d.Connect(d.OutPin(p), pn)
		inPorts = append(inPorts, d.OutPin(p))
	}

	combBudget := nComb
	ci := 0
	newComb := func(pos geom.Point) (*netlist.Inst, error) {
		spec := combLib[rng.Intn(len(combLib))]
		in, err := d.AddComb(fmt.Sprintf("u%d", ci), spec, pos)
		ci++
		combBudget--
		return in, err
	}

	bankCenter := func(bi int) geom.Point {
		var sx, sy int64
		for _, r := range banks[bi] {
			c := r.Center()
			sx += c.X
			sy += c.Y
		}
		n := int64(len(banks[bi]))
		return geom.Point{X: sx / n, Y: sy / n}
	}

	// Pick a source bank per destination bank: geometrically near, earlier
	// banks may also read from ports.
	for bi, bank := range banks {
		var srcBits []bitRef
		if bi == 0 || rng.Intn(10) == 0 {
			for _, p := range inPorts {
				srcBits = append(srcBits, bitRef{p, d.PinPos(p)})
			}
		} else {
			// Nearest of a few random earlier banks.
			c := bankCenter(bi)
			best := -1
			var bestDist int64
			for t := 0; t < 6; t++ {
				cand := rng.Intn(bi)
				dist := bankCenter(cand).ManhattanDist(c)
				if best == -1 || dist < bestDist {
					best, bestDist = cand, dist
				}
			}
			srcBits = bankBits[best]
			if len(srcBits) == 0 {
				for _, p := range inPorts {
					srcBits = append(srcBits, bitRef{p, d.PinPos(p)})
				}
			}
		}
		destBits := 0
		for _, r := range bank {
			destBits += r.Bits()
		}
		k := 0
		for _, r := range bank {
			for b := 0; b < r.Bits(); b++ {
				dp := d.DPin(r, b)
				// Order-aligned bit mapping: both strips run left to right,
				// so bit k reads from the proportionally matching source
				// bit. This keeps the per-bit wire lengths of a bank within
				// a few k-DBU of each other — the slack correlation that
				// makes real datapath banks timing compatible (§2). A
				// modulo mapping instead would wrap across the source
				// strip and spread bank slacks by the strip's full width.
				src := srcBits[k*len(srcBits)/destBits]
				mid := geom.Point{
					X: (d.PinPos(dp).X+src.pos.X)/2 + int64(k)*spec.SlackGradientDBU,
					Y: (d.PinPos(dp).Y + src.pos.Y) / 2,
				}
				k++
				g1, err := newComb(jitter(rng, mid, 2000, core))
				if err != nil {
					return err
				}
				dn := d.AddNet(fmt.Sprintf("d_%s_%d", r.Name, b), false)
				d.Connect(d.OutPin(g1), dn)
				d.Connect(dp, dn)
				for _, pid := range g1.Pins {
					p := d.Pin(pid)
					if p.Dir == netlist.DirIn {
						d.Connect(p, d.Net(src.q.Net))
					}
				}
			}
		}
	}
	// First give every sink-less Q bit a real load (otherwise its Q slack
	// is unconstrained, making the whole register timing-incompatible with
	// its constrained bank mates), then spend the remaining comb budget as
	// extra fanout loads, one whole bank at a time so bank symmetry holds.
	loadBit := func(s bitRef) error {
		g, err := newComb(jitter(rng, s.pos, 5000, core))
		if err != nil {
			return err
		}
		for _, pid := range g.Pins {
			p := d.Pin(pid)
			if p.Dir == netlist.DirIn {
				d.Connect(p, d.Net(s.q.Net))
			}
		}
		on := d.AddNet(fmt.Sprintf("o_%d", ci), false)
		d.Connect(d.OutPin(g), on)
		return nil
	}
	for _, s := range allBits {
		if len(d.Net(s.q.Net).Sinks) == 0 {
			if err := loadBit(s); err != nil {
				return err
			}
		}
	}
	for bi := 0; combBudget > 0 && len(allBits) > 0; bi++ {
		for _, s := range bankBits[bi%len(banks)] {
			if combBudget <= 0 {
				break
			}
			if err := loadBit(s); err != nil {
				return err
			}
		}
	}
	// Terminate floating comb outputs at output ports so endpoint counts
	// are realistic and the load gates constrain their Q sources.
	oi := 0
	maxPorts := len(allBits)/2 + 100
	d.Nets(func(n *netlist.Net) {
		if n.IsClock || n.Driver == netlist.NoID || len(n.Sinks) > 0 {
			return
		}
		if oi >= maxPorts {
			return
		}
		// Pad on the near edge, at the driver's y, so the pad wire adds a
		// uniform delay instead of a per-bit lottery.
		y := core.Center().Y
		if n.Driver != netlist.NoID {
			y = d.PinPos(d.Pin(n.Driver)).Y
		}
		p, err := d.AddPort(fmt.Sprintf("out_%d", oi), false,
			geom.Point{X: core.Hi.X, Y: y})
		if err != nil {
			return
		}
		d.Connect(d.FindPin(p, netlist.PinData, 0), n)
		oi++
	})
	return nil
}

func jitter(rng *rand.Rand, p geom.Point, r int64, core geom.Rect) geom.Point {
	return geom.Point{
		X: clampI(p.X+int64(rng.Int63n(2*r))-r, core.Lo.X, core.Hi.X-1000),
		Y: clampI(p.Y+int64(rng.Int63n(2*r))-r, core.Lo.Y, core.Hi.Y-1200),
	}
}

// generateScan builds chains over the scannable registers, grouped
// geographically (as production DFT insertion does), with a fraction of
// ordered sections.
func generateScan(
	d *netlist.Design,
	spec Spec,
	rng *rand.Rand,
	regs []*netlist.Inst,
) (*scan.Plan, error) {
	plan := scan.NewPlan()
	if spec.ScanChains <= 0 {
		return plan, nil
	}
	var scannable []*netlist.Inst
	for _, r := range regs {
		if r.RegCell.Class.Scan != lib.NoScan {
			scannable = append(scannable, r)
		}
	}
	if len(scannable) == 0 {
		return plan, nil
	}
	// regs arrives in bank order; keeping that order makes chains follow
	// banks (as DFT insertion on a placed hierarchical design does), so a
	// bank rarely straddles a chain/partition boundary.
	per := (len(scannable) + spec.ScanChains - 1) / spec.ScanChains
	for c := 0; c < spec.ScanChains; c++ {
		lo := c * per
		if lo >= len(scannable) {
			break
		}
		hi := lo + per
		if hi > len(scannable) {
			hi = len(scannable)
		}
		ids := make([]netlist.InstID, 0, hi-lo)
		for _, r := range scannable[lo:hi] {
			ids = append(ids, r.ID)
			d.SetScanPartition(r, c)
		}
		ordered := rng.Float64() < spec.OrderedChainFrac
		if _, err := plan.AddChain(c, ordered, ids); err != nil {
			return nil, err
		}
	}
	return plan, nil
}
