package bench

import (
	"testing"

	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/place"
)

func smallSpec() Spec {
	return Spec{
		Name: "T", Seed: 1,
		NumRegs:           200,
		CombPerReg:        4,
		WidthMix:          map[int]float64{1: 0.5, 2: 0.25, 4: 0.15, 8: 0.1},
		NonComposableFrac: 0.3,
		ClusterSize:       10,
		GateGroups:        3,
		ScanChains:        4,
		OrderedChainFrac:  0.25,
		TargetUtil:        0.5,
		ClockPeriodPS:     1400,
	}
}

func TestGenerateBasics(t *testing.T) {
	res, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Design
	regs := d.Registers()
	if len(regs) != 200 {
		t.Fatalf("registers = %d want 200", len(regs))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := place.CheckLegal(d); len(v) != 0 {
		t.Fatalf("placement violations: %d (first: %v)", len(v), v[0])
	}
	if err := res.Plan.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Design.NumInsts() != b.Design.NumInsts() || a.Design.NumNets() != b.Design.NumNets() {
		t.Fatal("generation must be deterministic")
	}
	ra, rb := a.Design.Registers(), b.Design.Registers()
	for i := range ra {
		if ra[i].Name != rb[i].Name || ra[i].Pos != rb[i].Pos || ra[i].RegCell.Name != rb[i].RegCell.Name {
			t.Fatalf("register %d differs between runs", i)
		}
	}
}

func TestWidthMixRealized(t *testing.T) {
	res, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	hist := map[int]int{}
	for _, r := range res.Design.Registers() {
		hist[r.Bits()]++
	}
	if hist[1] < 80 || hist[1] > 120 {
		t.Fatalf("1-bit count %d far from 100", hist[1])
	}
	if hist[8] < 10 || hist[8] > 30 {
		t.Fatalf("8-bit count %d far from 20", hist[8])
	}
}

func TestNonComposableFraction(t *testing.T) {
	res, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	fixed := 0
	for _, r := range res.Design.Registers() {
		if r.Fixed || r.SizeOnly {
			fixed++
		}
	}
	// 30% requested at bank granularity (~20 banks of ~10): wide binomial
	// noise allowed.
	if fixed < 10 || fixed > 120 {
		t.Fatalf("fixed/size-only = %d want ≈ 60", fixed)
	}
}

func TestEveryRegisterClockedAndDriven(t *testing.T) {
	res, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Design
	for _, r := range d.Registers() {
		cp := d.ClockPin(r)
		if cp == nil || cp.Net == netlist.NoID {
			t.Fatalf("register %s unclocked", r.Name)
		}
		for b := 0; b < r.Bits(); b++ {
			dp := d.DPin(r, b)
			if dp.Net == netlist.NoID {
				t.Fatalf("register %s bit %d undriven", r.Name, b)
			}
			n := d.Net(dp.Net)
			if n.Driver == netlist.NoID {
				t.Fatalf("register %s bit %d net driverless", r.Name, b)
			}
		}
	}
}

func TestScanChainsCoverScannable(t *testing.T) {
	res, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	onChain := map[netlist.InstID]bool{}
	for _, c := range res.Plan.Chains() {
		for _, id := range c.Regs {
			onChain[id] = true
		}
	}
	for _, r := range res.Design.Registers() {
		isScan := r.RegCell.Class.Scan != lib.NoScan
		if isScan && !onChain[r.ID] {
			t.Fatalf("scannable register %s not on a chain", r.Name)
		}
		if !isScan && onChain[r.ID] {
			t.Fatalf("non-scan register %s on a chain", r.Name)
		}
	}
	if len(res.Plan.Chains()) == 0 {
		t.Fatal("expected scan chains")
	}
}

func TestGateGroupsAssigned(t *testing.T) {
	res, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int]int{}
	for _, r := range res.Design.Registers() {
		groups[r.GateGroup]++
	}
	if len(groups) < 2 {
		t.Fatalf("expected multiple gating groups, got %v", groups)
	}
}

func TestProfilesGenerate(t *testing.T) {
	// Heavier: generate every profile at high scale-down.
	for _, spec := range All(ProfileOpts{Scale: 100}) {
		res, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := res.Design.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		regs := res.Design.Registers()
		if len(regs) == 0 {
			t.Fatalf("%s: no registers", spec.Name)
		}
	}
}

func TestD4IsMBRRich(t *testing.T) {
	o := ProfileOpts{Scale: 50}
	gen := func(s Spec) float64 {
		res, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		hist := map[int]int{}
		total := 0
		for _, r := range res.Design.Registers() {
			hist[r.Bits()]++
			total++
		}
		return float64(hist[8]) / float64(total)
	}
	if f4, f1 := gen(D4(o)), gen(D1(o)); f4 <= f1 {
		t.Fatalf("D4 8-bit fraction (%.2f) must exceed D1's (%.2f)", f4, f1)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Fatal("zero NumRegs must fail")
	}
}
