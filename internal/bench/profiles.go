package bench

// Design profiles calibrated to Table 1's "Base" rows. The paper's absolute
// counts (0.87M–3.3M cells, 29k–50k registers) are divided by Scale so the
// full flow runs in seconds on a laptop; all the ratios that drive the
// optimization landscape are preserved:
//
//	design  regs/cells  comp/total  width mix character
//	D1      29416/870k   62%        mixed, mid MBR richness
//	D2      37401/1.23M  75%        most composable, many 1-2 bit
//	D3      34519/1.47M  63%        mixed
//	D4      50392/3.28M  44%        already rich in 8-bit MBRs (Fig. 5),
//	                                improves least (§5)
//	D5      34519/1.47M  63%        like D3 with more gating
//
// The paper's CombPerReg is ~30-65; we cap it at 6 — beyond the composition
// region the sea of gates only adds constant background to area/wirelength,
// and the scaled designs stay representative of the register landscape.

// DefaultScale divides the paper's register counts for the default
// profiles.
const DefaultScale = 20

// ProfileOpts adjusts profile generation.
type ProfileOpts struct {
	// Scale divides the paper's register counts (min 1).
	Scale int
}

func scaled(n, scale int) int {
	if scale < 1 {
		scale = 1
	}
	v := n / scale
	if v < 50 {
		v = 50
	}
	return v
}

// D1 returns the D1-like profile.
func D1(o ProfileOpts) Spec {
	return Spec{
		Name: "D1", Seed: 101,
		NumRegs:           scaled(29416, o.Scale),
		CombPerReg:        5,
		WidthMix:          map[int]float64{1: 0.45, 2: 0.25, 4: 0.20, 8: 0.10},
		NonComposableFrac: 0.38, // CompRegs 18332/29416
		ClusterSize:       12,
		GateGroups:        6,
		ScanChains:        8,
		OrderedChainFrac:  0.25,
		TargetUtil:        0.55,
		ClockPeriodPS:     1400,
		SlackGradientDBU:  0,
	}
}

// D2 returns the D2-like profile (most composable registers).
func D2(o ProfileOpts) Spec {
	return Spec{
		Name: "D2", Seed: 202,
		NumRegs:           scaled(37401, o.Scale),
		CombPerReg:        5.5,
		WidthMix:          map[int]float64{1: 0.55, 2: 0.25, 4: 0.15, 8: 0.05},
		NonComposableFrac: 0.25, // CompRegs 27992/37401
		ClusterSize:       14,
		GateGroups:        8,
		ScanChains:        10,
		OrderedChainFrac:  0.2,
		TargetUtil:        0.55,
		ClockPeriodPS:     1500,
		SlackGradientDBU:  0,
	}
}

// D3 returns the D3-like profile.
func D3(o ProfileOpts) Spec {
	return Spec{
		Name: "D3", Seed: 303,
		NumRegs:           scaled(34519, o.Scale),
		CombPerReg:        6,
		WidthMix:          map[int]float64{1: 0.40, 2: 0.30, 4: 0.20, 8: 0.10},
		NonComposableFrac: 0.37, // CompRegs 21880/34519
		ClusterSize:       10,
		GateGroups:        5,
		ScanChains:        8,
		OrderedChainFrac:  0.3,
		TargetUtil:        0.6,
		ClockPeriodPS:     1300,
		SlackGradientDBU:  0,
	}
}

// D4 returns the D4-like profile: already rich in 8-bit MBRs, so
// composition has the least headroom (§5's observation).
func D4(o ProfileOpts) Spec {
	return Spec{
		Name: "D4", Seed: 404,
		NumRegs:           scaled(50392, o.Scale),
		CombPerReg:        6,
		WidthMix:          map[int]float64{1: 0.15, 2: 0.15, 4: 0.25, 8: 0.45},
		NonComposableFrac: 0.56, // CompRegs 22017/50392
		ClusterSize:       10,
		GateGroups:        10,
		ScanChains:        12,
		OrderedChainFrac:  0.3,
		TargetUtil:        0.6,
		ClockPeriodPS:     1200,
		SlackGradientDBU:  0,
	}
}

// D5 returns the D5-like profile.
func D5(o ProfileOpts) Spec {
	return Spec{
		Name: "D5", Seed: 505,
		NumRegs:           scaled(34519, o.Scale),
		CombPerReg:        6,
		WidthMix:          map[int]float64{1: 0.42, 2: 0.28, 4: 0.20, 8: 0.10},
		NonComposableFrac: 0.37, // CompRegs 21879/34519
		ClusterSize:       11,
		GateGroups:        12,
		ScanChains:        6,
		OrderedChainFrac:  0.4,
		TargetUtil:        0.58,
		ClockPeriodPS:     1350,
		SlackGradientDBU:  0,
	}
}

// ProfileByName resolves a built-in profile name ("D1".."D5") to its spec.
func ProfileByName(name string, o ProfileOpts) (Spec, bool) {
	switch name {
	case "D1":
		return D1(o), true
	case "D2":
		return D2(o), true
	case "D3":
		return D3(o), true
	case "D4":
		return D4(o), true
	case "D5":
		return D5(o), true
	}
	return Spec{}, false
}

// All returns the five profiles in order.
func All(o ProfileOpts) []Spec {
	return []Spec{D1(o), D2(o), D3(o), D4(o), D5(o)}
}
