// Package metrics maintains the flow's design-level report aggregates —
// live cell and register counts, total placed area, and total signal-net
// wirelength — incrementally across netlist edits, so a measurement point
// costs O(touched) instead of the O(design) walks of the batch oracles
// (netlist.NumInsts, Registers, TotalArea, Wirelength).
//
// The Tracker consumes the netlist's per-edit-class touched rings. Every
// mutation notes the instance it touched, so the set of instances edited
// since the last sync is exactly what the rings report; from each touched
// instance the Tracker derives the signal nets whose geometry may have
// moved (the nets the instance was on at the last sync plus the nets it is
// on now) and re-measures only those, against a per-net HPWL cache. All
// aggregates are integers, so incremental maintenance is exact — there is
// no float accumulation order to preserve — and the batch oracles remain
// the equality reference the tracker is tested against.
//
// Fallbacks mirror the other retained engines: an overflowed flow ring
// forces a full rebuild; an overflowed CTS ring only forces an
// instance-side recount, because CTS-class edits (buffer add/move/remove,
// clock-net rewires — see place.LegalizeIncremental: legalization moves
// only the instances it is given) never change a signal net's pin set or
// member positions, so the per-net caches stay valid.
package metrics

import (
	"repro/internal/engine"
	"repro/internal/netlist"
)

// Aggregates is the tracked slice of the design state.
type Aggregates struct {
	// Cells is the number of live instances (netlist.NumInsts).
	Cells int
	// Regs is the number of live registers (len(netlist.Registers())).
	Regs int
	// AreaDBU2 is the total footprint area of live instances
	// (netlist.TotalArea).
	AreaDBU2 int64
	// SignalWLDBU is the total HPWL over live signal (non-clock) nets —
	// the signal component of netlist.Wirelength.
	SignalWLDBU int64
}

// Stats reports how syncs were satisfied.
type Stats struct {
	// Syncs counts Sync calls that found the design edited; Cleans counts
	// calls with nothing to do.
	Syncs  int
	Cleans int
	// Deltas counts syncs served from the touched rings alone.
	Deltas int
	// InstRecounts counts syncs that re-walked the instances (CTS ring
	// overflow) but kept the signal-net caches.
	InstRecounts int
	// FullRebuilds counts from-scratch rebuilds (first sync, flow ring
	// overflow, Invalidate).
	FullRebuilds int
	// InstsSynced and NetsSynced count the delta paths' actual work.
	InstsSynced int
	NetsSynced  int
	// LastKind names the most recent sync's outcome: "clean", "delta",
	// "inst-recount" or "rebuild".
	LastKind string
}

// instSnap is one instance's contribution at the last sync.
type instSnap struct {
	live  bool
	isReg bool
	area  int64
	// nets are the signal nets the instance's pins were connected to,
	// deduplicated. They bound which per-net cache entries an edit to this
	// instance can invalidate.
	nets []netlist.NetID
}

// Tracker incrementally maintains Aggregates for one design.
type Tracker struct {
	d      *netlist.Design
	cursor uint64
	valid  bool

	agg   Aggregates
	snaps map[netlist.InstID]*instSnap
	// netWL caches each live signal net's HPWL; zero-HPWL nets are elided
	// (a missing entry reads as 0, which is also every dead net's value).
	netWL map[netlist.NetID]int64

	stats Stats
}

// New returns a tracker for the design. The first Sync (or Aggregates
// call) performs the full baseline walk.
func New(d *netlist.Design) *Tracker {
	return &Tracker{d: d}
}

// Aggregates syncs the tracker and returns the current aggregates.
func (t *Tracker) Aggregates() Aggregates {
	t.Sync()
	return t.agg
}

// Stats returns the sync counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Invalidate drops the retained state; the next sync rebuilds from
// scratch. Required after edits that bypassed the netlist API.
func (t *Tracker) Invalidate() { t.valid = false }

// SetWorkers is part of the retained-engine contract; the tracker's syncs
// are cheap enough to stay sequential, so it is a no-op.
func (t *Tracker) SetWorkers(int) {}

// Summary reports the uniform engine.Retained counters. Instance recounts
// are neither deltas nor rebuilds; they show up in Updates only (and in
// Stats.InstRecounts).
func (t *Tracker) Summary() engine.Summary {
	return engine.Summary{
		Updates:  t.stats.Syncs,
		Deltas:   t.stats.Deltas,
		Rebuilds: t.stats.FullRebuilds,
		LastKind: t.stats.LastKind,
	}
}

// Sync brings the aggregates up to date with the design.
func (t *Tracker) Sync() {
	if t.valid && t.d.Epoch() == t.cursor {
		t.stats.Cleans++
		t.stats.LastKind = "clean"
		return
	}
	t.stats.Syncs++
	if !t.valid {
		t.rebuild()
		return
	}
	flow, flowOK := t.d.TouchedSinceClass(t.cursor, netlist.EditClassFlow)
	ctsT, ctsOK := t.d.TouchedSinceClass(t.cursor, netlist.EditClassCTS)
	if !flowOK {
		t.rebuild()
		return
	}
	// Collect the dirty signal nets before snapshots move: each touched
	// instance invalidates the nets it was on at the last sync plus the
	// nets it is on now.
	dirty := map[netlist.NetID]bool{}
	touched := flow
	if ctsOK {
		touched = append(touched, ctsT...)
	}
	for _, id := range touched {
		if s := t.snaps[id]; s != nil {
			for _, nid := range s.nets {
				dirty[nid] = true
			}
		}
		for _, nid := range t.signalNets(id, nil) {
			dirty[nid] = true
		}
	}
	if !ctsOK {
		// The CTS ring overflowed: its edits touch only clock buffers and
		// clock nets, so the signal-net caches (and the flow-derived dirty
		// set above) stay exact; only the instance-side aggregates must be
		// recounted.
		t.recountInsts()
		t.stats.InstRecounts++
		t.stats.LastKind = "inst-recount"
	} else {
		for _, id := range touched {
			t.syncInst(id)
		}
		t.stats.Deltas++
		t.stats.LastKind = "delta"
	}
	for nid := range dirty {
		t.syncNet(nid)
	}
	t.cursor = t.d.Epoch()
}

// signalNets returns the deduplicated live signal nets of the instance's
// pins, appended to buf. A nil or dead instance has none.
func (t *Tracker) signalNets(id netlist.InstID, buf []netlist.NetID) []netlist.NetID {
	return t.d.InstNets(id, true, buf)
}

// syncInst replaces one instance's snapshot, folding the contribution
// delta into the aggregates. Idempotent: a second call with an unchanged
// instance is a no-op.
func (t *Tracker) syncInst(id netlist.InstID) {
	t.stats.InstsSynced++
	old := t.snaps[id]
	if old != nil {
		if old.live {
			t.agg.Cells--
			t.agg.AreaDBU2 -= old.area
			if old.isReg {
				t.agg.Regs--
			}
		}
	} else {
		old = &instSnap{}
		t.snaps[id] = old
	}
	in := t.d.Inst(id)
	if in == nil {
		old.live, old.isReg, old.area, old.nets = false, false, 0, old.nets[:0]
		return
	}
	old.live = true
	old.isReg = in.Kind == netlist.KindReg
	old.area = in.Area()
	old.nets = t.signalNets(id, old.nets[:0])
	t.agg.Cells++
	t.agg.AreaDBU2 += old.area
	if old.isReg {
		t.agg.Regs++
	}
}

// syncNet re-measures one signal net against its cache entry.
func (t *Tracker) syncNet(id netlist.NetID) {
	t.stats.NetsSynced++
	var cur int64
	if n := t.d.Net(id); n != nil && !n.IsClock {
		cur = t.d.NetHPWL(n)
	}
	t.agg.SignalWLDBU += cur - t.netWL[id]
	if cur == 0 {
		delete(t.netWL, id)
	} else {
		t.netWL[id] = cur
	}
}

// recountInsts rebuilds the instance-side state (snapshots and counts)
// with one O(insts) walk, leaving the signal-net caches untouched.
func (t *Tracker) recountInsts() {
	t.agg.Cells, t.agg.Regs, t.agg.AreaDBU2 = 0, 0, 0
	t.snaps = map[netlist.InstID]*instSnap{}
	t.d.Insts(func(in *netlist.Inst) {
		s := &instSnap{
			live:  true,
			isReg: in.Kind == netlist.KindReg,
			area:  in.Area(),
		}
		s.nets = t.signalNets(in.ID, nil)
		t.snaps[in.ID] = s
		t.agg.Cells++
		t.agg.AreaDBU2 += s.area
		if s.isReg {
			t.agg.Regs++
		}
	})
}

// rebuild re-derives everything from the design.
func (t *Tracker) rebuild() {
	t.recountInsts()
	t.agg.SignalWLDBU = 0
	t.netWL = map[netlist.NetID]int64{}
	t.d.Nets(func(n *netlist.Net) {
		if n.IsClock {
			return
		}
		if wl := t.d.NetHPWL(n); wl != 0 {
			t.netWL[n.ID] = wl
			t.agg.SignalWLDBU += wl
		}
	})
	t.cursor = t.d.Epoch()
	t.valid = true
	t.stats.FullRebuilds++
	t.stats.LastKind = "rebuild"
}
