package metrics_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/cts"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/netlist"
)

var _ engine.Retained = (*metrics.Tracker)(nil)

const oracleScale = 300

func genProfile(t testing.TB, name string) *bench.Result {
	t.Helper()
	o := bench.ProfileOpts{Scale: oracleScale}
	var spec bench.Spec
	switch name {
	case "D1":
		spec = bench.D1(o)
	case "D2":
		spec = bench.D2(o)
	case "D3":
		spec = bench.D3(o)
	case "D4":
		spec = bench.D4(o)
	case "D5":
		spec = bench.D5(o)
	default:
		t.Fatalf("unknown profile %s", name)
	}
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return b
}

// requireEqualsOracles compares the tracked aggregates against the batch
// walks they replace. Everything is integral, so equality is exact.
func requireEqualsOracles(t *testing.T, ctx string, tr *metrics.Tracker, d *netlist.Design) {
	t.Helper()
	got := tr.Aggregates()
	_, sig := d.Wirelength()
	want := metrics.Aggregates{
		Cells:       d.NumInsts(),
		Regs:        len(d.Registers()),
		AreaDBU2:    d.TotalArea(),
		SignalWLDBU: sig,
	}
	if got != want {
		t.Fatalf("%s: tracker %+v != oracle %+v (stats %+v)", ctx, got, want, tr.Stats())
	}
}

// mutate applies one random round of flow-class edits: register moves,
// resizes, removals, and signal-pin disconnect/reconnect toggles.
func mutate(t *testing.T, d *netlist.Design, rng *rand.Rand, parked map[netlist.PinID]netlist.NetID) {
	t.Helper()
	regs := d.Registers()
	if len(regs) == 0 {
		return
	}
	for k := 0; k < 2+rng.Intn(6); k++ {
		in := regs[rng.Intn(len(regs))]
		if in.Fixed {
			continue
		}
		dx := int64(rng.Intn(40001)) - 20000
		dy := int64(rng.Intn(40001)) - 20000
		d.MoveInst(in, geom.Point{X: in.Pos.X + dx, Y: in.Pos.Y + dy})
	}
	for k := 0; k < rng.Intn(3); k++ {
		in := regs[rng.Intn(len(regs))]
		if in.Fixed || in.SizeOnly {
			continue
		}
		cands := d.Lib.CellsOfWidth(in.RegCell.Class, in.RegCell.Bits)
		if len(cands) < 2 {
			continue
		}
		if err := d.ResizeRegister(in, cands[rng.Intn(len(cands))]); err != nil {
			t.Fatalf("resize: %v", err)
		}
	}
	// Toggle a data pin off and back onto its net, exercising structural
	// edits (net membership and HPWL both change).
	for k := 0; k < 1+rng.Intn(3); k++ {
		in := regs[rng.Intn(len(regs))]
		p := d.FindPin(in, netlist.PinData, 0)
		if p == nil {
			continue
		}
		if p.Net != netlist.NoID {
			parked[p.ID] = p.Net
			d.Disconnect(p)
		} else if nid, ok := parked[p.ID]; ok {
			d.Connect(p, d.Net(nid))
			delete(parked, p.ID)
		}
	}
	if rng.Intn(3) == 0 && len(regs) > 20 {
		d.RemoveInst(regs[rng.Intn(len(regs))])
	}
}

// TestTrackerEqualsOracles runs randomized edit rounds on all five bench
// profiles and requires the tracked aggregates to match the batch oracles
// exactly after every round, with the delta path actually taken.
func TestTrackerEqualsOracles(t *testing.T) {
	for _, profile := range []string{"D1", "D2", "D3", "D4", "D5"} {
		t.Run(profile, func(t *testing.T) {
			d := genProfile(t, profile).Design
			tr := metrics.New(d)
			requireEqualsOracles(t, "baseline", tr, d)
			rng := rand.New(rand.NewSource(int64(len(profile) * 31)))
			parked := map[netlist.PinID]netlist.NetID{}
			for round := 0; round < 12; round++ {
				mutate(t, d, rng, parked)
				requireEqualsOracles(t, fmt.Sprintf("round %d", round), tr, d)
			}
			st := tr.Stats()
			if st.Deltas == 0 {
				t.Fatalf("no sync took the delta path: %+v", st)
			}
			if st.FullRebuilds != 1 {
				t.Fatalf("expected exactly the baseline rebuild, got %+v", st)
			}
		})
	}
}

// TestTrackerCTSRingOverflowRecounts shrinks the touched rings so the CTS
// engine's per-update churn overflows its ring while the handful of flow
// edits stays tracked: the tracker must fall back to the instance-side
// recount (keeping its net caches) and still match the oracles.
func TestTrackerCTSRingOverflowRecounts(t *testing.T) {
	d := genProfile(t, "D2").Design
	d.SetTouchedLogCap(64)
	defer d.SetTouchedLogCap(0)
	eng := cts.NewEngine(d, cts.DefaultOptions())
	if err := eng.Attach(); err != nil {
		t.Fatalf("attach: %v", err)
	}
	tr := metrics.New(d)
	requireEqualsOracles(t, "baseline", tr, d)
	rng := rand.New(rand.NewSource(7))
	parked := map[netlist.PinID]netlist.NetID{}
	for round := 0; round < 6; round++ {
		mutate(t, d, rng, parked)
		if err := eng.Update(); err != nil {
			t.Fatalf("cts update: %v", err)
		}
		requireEqualsOracles(t, fmt.Sprintf("round %d", round), tr, d)
	}
	st := tr.Stats()
	if st.InstRecounts == 0 {
		t.Fatalf("CTS churn never forced an instance recount: %+v", st)
	}
	if st.FullRebuilds != 1 {
		t.Fatalf("CTS-ring overflow escalated to a full rebuild: %+v", st)
	}
}

// TestTrackerFlowRingOverflowRebuilds floods the flow ring in one round
// and checks the tracker downgrades to a full rebuild — and is still
// exact.
func TestTrackerFlowRingOverflowRebuilds(t *testing.T) {
	d := genProfile(t, "D1").Design
	d.SetTouchedLogCap(32)
	defer d.SetTouchedLogCap(0)
	tr := metrics.New(d)
	requireEqualsOracles(t, "baseline", tr, d)
	for _, in := range d.Registers() {
		if !in.Fixed {
			d.MoveInst(in, geom.Point{X: in.Pos.X + 100, Y: in.Pos.Y})
		}
	}
	requireEqualsOracles(t, "post-flood", tr, d)
	if st := tr.Stats(); st.FullRebuilds != 2 {
		t.Fatalf("flow-ring overflow did not rebuild: %+v", st)
	}
}

// TestTrackerInvalidate drops the cache and checks the next sync rebuilds.
func TestTrackerInvalidate(t *testing.T) {
	d := genProfile(t, "D3").Design
	tr := metrics.New(d)
	requireEqualsOracles(t, "baseline", tr, d)
	tr.Invalidate()
	requireEqualsOracles(t, "post-invalidate", tr, d)
	if st := tr.Stats(); st.FullRebuilds != 2 {
		t.Fatalf("Invalidate did not force a rebuild: %+v", st)
	}
}
