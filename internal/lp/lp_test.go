package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  → x=2, y=6, obj=36.
	p := New(Maximize)
	x := p.AddVar(0, Inf, 3, "x")
	y := p.AddVar(0, Inf, 5, "y")
	p.AddConstraint([]Term{{x, 1}}, LE, 4)
	p.AddConstraint([]Term{{y, 2}}, LE, 12)
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18)
	s := solveOK(t, p)
	if !approx(s.Objective, 36) || !approx(s.X[x], 2) || !approx(s.X[y], 6) {
		t.Fatalf("got obj=%g x=%g y=%g", s.Objective, s.X[x], s.X[y])
	}
}

func TestSimpleMinWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3 → x=7, y=3, obj=23.
	p := New(Minimize)
	x := p.AddVar(2, Inf, 2, "x")
	y := p.AddVar(3, Inf, 3, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10)
	s := solveOK(t, p)
	if !approx(s.Objective, 23) || !approx(s.X[x], 7) || !approx(s.X[y], 3) {
		t.Fatalf("got obj=%g x=%g y=%g", s.Objective, s.X[x], s.X[y])
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 5, x ≤ 3 → x=3, y=2, obj=7.
	p := New(Minimize)
	x := p.AddVar(0, 3, 1, "x")
	y := p.AddVar(0, Inf, 2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5)
	s := solveOK(t, p)
	if !approx(s.Objective, 7) || !approx(s.X[x], 3) || !approx(s.X[y], 2) {
		t.Fatalf("got obj=%g x=%g y=%g", s.Objective, s.X[x], s.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar(0, 1, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, 5)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleConflictingRows(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar(0, Inf, 0, "x")
	y := p.AddVar(0, Inf, 0, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 3)
	s, _ := p.Solve()
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar(0, Inf, 1, "x")
	y := p.AddVar(0, Inf, 0, "y")
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 1)
	s, _ := p.Solve()
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min |style| problem: min z s.t. z ≥ x-3, z ≥ 3-x, x free with x = -5
	// fixed by constraint → z = 8.
	p := New(Minimize)
	x := p.AddVar(math.Inf(-1), Inf, 0, "x")
	z := p.AddVar(math.Inf(-1), Inf, 1, "z")
	p.AddConstraint([]Term{{x, 1}}, EQ, -5)
	p.AddConstraint([]Term{{z, 1}, {x, -1}}, GE, -3) // z ≥ x - 3
	p.AddConstraint([]Term{{z, 1}, {x, 1}}, GE, 3)   // z ≥ 3 - x
	s := solveOK(t, p)
	if !approx(s.X[x], -5) || !approx(s.Objective, 8) {
		t.Fatalf("got x=%g obj=%g", s.X[x], s.Objective)
	}
}

func TestUpperBoundedOnlyVariable(t *testing.T) {
	// max x with x ≤ 7, no lower bound, plus x ≥ -100 via row.
	p := New(Maximize)
	x := p.AddVar(math.Inf(-1), 7, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, -100)
	s := solveOK(t, p)
	if !approx(s.X[x], 7) {
		t.Fatalf("x = %g want 7", s.X[x])
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x ≤ -4 (i.e. x ≥ 4) → x = 4.
	p := New(Minimize)
	x := p.AddVar(0, Inf, 1, "x")
	p.AddConstraint([]Term{{x, -1}}, LE, -4)
	s := solveOK(t, p)
	if !approx(s.X[x], 4) {
		t.Fatalf("x = %g want 4", s.X[x])
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	// min x s.t. 0.5x + 0.5x ≥ 6 → x = 6.
	p := New(Minimize)
	x := p.AddVar(0, Inf, 1, "x")
	p.AddConstraint([]Term{{x, 0.5}, {x, 0.5}}, GE, 6)
	s := solveOK(t, p)
	if !approx(s.X[x], 6) {
		t.Fatalf("x = %g want 6", s.X[x])
	}
}

func TestDegenerateCyclingGuard(t *testing.T) {
	// Classic Beale cycling example; Bland fallback must terminate.
	p := New(Minimize)
	x1 := p.AddVar(0, Inf, -0.75, "x1")
	x2 := p.AddVar(0, Inf, 150, "x2")
	x3 := p.AddVar(0, Inf, -0.02, "x3")
	x4 := p.AddVar(0, Inf, 6, "x4")
	p.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint([]Term{{x3, 1}}, LE, 1)
	s := solveOK(t, p)
	if !approx(s.Objective, -0.05) {
		t.Fatalf("objective = %g, want -0.05", s.Objective)
	}
}

func TestSetBoundsResolve(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar(0, 10, 1, "x")
	y := p.AddVar(0, 10, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 12)
	s := solveOK(t, p)
	if !approx(s.Objective, 12) {
		t.Fatalf("obj = %g want 12", s.Objective)
	}
	// Branch: fix x = 0.
	p.SetBounds(x, 0, 0)
	s = solveOK(t, p)
	if !approx(s.Objective, 10) || !approx(s.X[x], 0) {
		t.Fatalf("after branch obj=%g x=%g", s.Objective, s.X[x])
	}
	// Un-branch.
	p.SetBounds(x, 0, 10)
	s = solveOK(t, p)
	if !approx(s.Objective, 12) {
		t.Fatalf("after unbranch obj = %g want 12", s.Objective)
	}
}

func TestSetPartitioningRelaxation(t *testing.T) {
	// LP relaxation of a tiny exact cover: registers {1,2,3}, candidates
	// {1}, {2}, {3}, {1,2}, {2,3}, {1,2,3} with weights 1,1,1,0.5,0.5,1/3.
	// Optimum of the relaxation (and the IP) picks {1,2,3} with cost 1/3.
	p := New(Minimize)
	w := []float64{1, 1, 1, 0.5, 0.5, 1.0 / 3}
	members := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}}
	vars := make([]int, len(w))
	for i := range w {
		vars[i] = p.AddVar(0, 1, w[i], "")
	}
	for reg := 0; reg < 3; reg++ {
		var terms []Term
		for i, ms := range members {
			for _, m := range ms {
				if m == reg {
					terms = append(terms, Term{vars[i], 1})
				}
			}
		}
		p.AddConstraint(terms, EQ, 1)
	}
	s := solveOK(t, p)
	if !approx(s.Objective, 1.0/3) {
		t.Fatalf("obj = %g want 1/3", s.Objective)
	}
	if !approx(s.X[vars[5]], 1) {
		t.Fatalf("x[{1,2,3}] = %g want 1", s.X[vars[5]])
	}
}

// Property test: for random feasible bounded problems, the simplex solution
// satisfies every constraint and stays within variable bounds.
func TestRandomProblemsSolutionFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(6)
		nc := 1 + rng.Intn(6)
		p := New(Minimize)
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = p.AddVar(0, float64(1+rng.Intn(20)), rng.Float64()*10-5, "")
		}
		// Feasible by construction: x = 0 satisfies A x ≤ b with b ≥ 0.
		type row struct {
			terms []Term
			rhs   float64
		}
		rows := make([]row, nc)
		for i := range rows {
			var terms []Term
			for _, v := range vars {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{v, rng.Float64() * 4})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{vars[0], 1})
			}
			rhs := rng.Float64() * 30
			rows[i] = row{terms, rhs}
			p.AddConstraint(terms, LE, rhs)
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		for i, v := range vars {
			lo, hi := p.Bounds(v)
			if s.X[i] < lo-1e-6 || s.X[i] > hi+1e-6 {
				return false
			}
		}
		for _, r := range rows {
			lhs := 0.0
			for _, term := range r.terms {
				lhs += term.Coef * s.X[term.Var]
			}
			if lhs > r.rhs+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property test: minimization objective is never above the value at any
// random feasible point we can construct (x = 0 here, since all rows are
// A x ≤ b with b ≥ 0 and costs apply at zero).
func TestRandomProblemsOptimalityVsOrigin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(5)
		p := New(Minimize)
		for i := 0; i < nv; i++ {
			p.AddVar(0, 10, rng.Float64()*8-4, "")
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			var terms []Term
			for v := 0; v < nv; v++ {
				terms = append(terms, Term{v, rng.Float64() * 3})
			}
			p.AddConstraint(terms, LE, 5+rng.Float64()*20)
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		return s.Objective <= 1e-6 // origin has objective 0 and is feasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNoVariables(t *testing.T) {
	p := New(Minimize)
	if _, err := p.Solve(); err != ErrNoProblem {
		t.Fatalf("err = %v want ErrNoProblem", err)
	}
}

func TestFixedVariableViaBounds(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar(5, 5, 1, "x")
	y := p.AddVar(0, Inf, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 8)
	s := solveOK(t, p)
	if !approx(s.X[x], 5) || !approx(s.X[y], 3) {
		t.Fatalf("x=%g y=%g", s.X[x], s.X[y])
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Two identical equality rows must not break phase-1 artificial removal.
	p := New(Minimize)
	x := p.AddVar(0, Inf, 1, "x")
	y := p.AddVar(0, Inf, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	s := solveOK(t, p)
	if !approx(s.Objective, 4) {
		t.Fatalf("obj = %g want 4", s.Objective)
	}
}

func TestMaximizeWithEquality(t *testing.T) {
	// max 2x + y s.t. x + y = 10, x ≤ 6 → x=6, y=4, obj=16.
	p := New(Maximize)
	x := p.AddVar(0, 6, 2, "x")
	y := p.AddVar(0, Inf, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	s := solveOK(t, p)
	if !approx(s.Objective, 16) {
		t.Fatalf("obj = %g want 16", s.Objective)
	}
}
