package lp

import (
	"math/rand"
	"testing"
)

// BenchmarkSimplexSetPartitioning measures the LP relaxation of a
// composition-sized set-partitioning instance: 30 rows (registers),
// 2000 columns (candidates).
func BenchmarkSimplexSetPartitioning(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const rows, cols = 30, 2000
	type col struct {
		members []int
		w       float64
	}
	columns := make([]col, cols)
	for c := range columns {
		k := 1 + rng.Intn(4)
		seen := map[int]bool{}
		var ms []int
		for len(ms) < k {
			m := rng.Intn(rows)
			if !seen[m] {
				seen[m] = true
				ms = append(ms, m)
			}
		}
		columns[c] = col{ms, 0.1 + rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(Minimize)
		for _, c := range columns {
			p.AddVar(0, 1, c.w, "")
		}
		for r := 0; r < rows; r++ {
			var terms []Term
			for ci, c := range columns {
				for _, m := range c.members {
					if m == r {
						terms = append(terms, Term{Var: ci, Coef: 1})
					}
				}
			}
			p.AddConstraint(terms, EQ, 1)
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}

// BenchmarkSimplexDense measures a dense medium LP.
func BenchmarkSimplexDense(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const nv, nc = 60, 40
	cost := make([]float64, nv)
	for i := range cost {
		cost[i] = rng.Float64()*4 - 2
	}
	rowsCoef := make([][]float64, nc)
	rhs := make([]float64, nc)
	for r := range rowsCoef {
		rowsCoef[r] = make([]float64, nv)
		for j := range rowsCoef[r] {
			rowsCoef[r][j] = rng.Float64() * 3
		}
		rhs[r] = 10 + rng.Float64()*40
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(Minimize)
		for _, c := range cost {
			p.AddVar(0, 20, c, "")
		}
		for r := 0; r < nc; r++ {
			terms := make([]Term, nv)
			for j := 0; j < nv; j++ {
				terms[j] = Term{Var: j, Coef: rowsCoef[r][j]}
			}
			p.AddConstraint(terms, LE, rhs[r])
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}
