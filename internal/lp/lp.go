// Package lp implements a small, dependency-free linear programming solver:
// a dense-tableau, two-phase primal simplex with a Dantzig pivot rule that
// falls back to Bland's rule to guarantee termination on degenerate bases.
//
// The solver supports minimization and maximization, ≤ / = / ≥ row types and
// per-variable bounds (including free and semi-bounded variables, which are
// handled by shifting and variable splitting). It is sized for the problems
// that appear in MBR composition: set-partitioning LP relaxations with tens
// of rows and up to a few thousand columns, and tiny wirelength-minimization
// placement LPs.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects the optimization direction of a Problem.
type Sense int

// Optimization directions.
const (
	Minimize Sense = iota
	Maximize
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Term is one entry of a sparse constraint row: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Inf is the bound value representing "unbounded" in AddVar.
var Inf = math.Inf(1)

// Problem is a linear program under construction. The zero value is not
// usable; call New.
type Problem struct {
	sense Sense
	cost  []float64
	lo    []float64
	hi    []float64
	names []string
	rows  []constraint
}

// New returns an empty problem with the given optimization sense.
func New(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar adds a variable with bounds [lo, hi] and objective coefficient
// cost, returning its index. Use -Inf / Inf for unbounded sides. The name is
// only used in error messages and may be empty.
func (p *Problem) AddVar(lo, hi, cost float64, name string) int {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %g > hi %g", name, lo, hi))
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.names = append(p.names, name)
	return len(p.cost) - 1
}

// SetBounds tightens or replaces the bounds of variable v. It is the
// branching primitive used by the ILP solver.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: SetBounds(%d) lo %g > hi %g", v, lo, hi))
	}
	p.lo[v], p.hi[v] = lo, hi
}

// Bounds returns the current bounds of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lo[v], p.hi[v] }

// AddConstraint adds the row Σ terms (op) rhs. Terms referencing the same
// variable more than once are summed. Variable indices must already exist.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) {
	merged := make(map[int]float64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.cost) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
		merged[t.Var] += t.Coef
	}
	row := constraint{op: op, rhs: rhs}
	for v, c := range merged {
		if c != 0 {
			row.terms = append(row.terms, Term{v, c})
		}
	}
	p.rows = append(p.rows, row)
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	// X holds a value for every variable of the problem (in AddVar order).
	// Only meaningful when Status == Optimal.
	X []float64
}

const (
	eps      = 1e-9
	degenTol = 1e-10
)

// ErrNoProblem is returned when Solve is called on a problem with no
// variables.
var ErrNoProblem = errors.New("lp: problem has no variables")

// Solve optimizes the problem and returns the solution. The problem itself
// is not modified and may be re-solved after bound changes.
func (p *Problem) Solve() (*Solution, error) {
	if len(p.cost) == 0 {
		return nil, ErrNoProblem
	}
	t, err := p.build()
	if err != nil {
		return &Solution{Status: Infeasible}, nil
	}
	status := t.phase1()
	if status != Optimal {
		return &Solution{Status: status}, nil
	}
	status = t.phase2()
	if status == Unbounded || status == IterLimit {
		return &Solution{Status: status}, nil
	}
	x := t.extract(p)
	obj := 0.0
	for i, c := range p.cost {
		obj += c * x[i]
	}
	return &Solution{Status: Optimal, Objective: obj, X: x}, nil
}

// internalVar maps a user variable to its standard-form representation:
// x = shift + plus - minus, where plus/minus are column indices (minus < 0
// when not split).
type internalVar struct {
	plus  int
	minus int // -1 if unused
	shift float64
}

// tableau is the standard-form simplex tableau:
//
//	minimize  c·y   s.t.  A y = b,  y ≥ 0
//
// with b ≥ 0 after row normalization. Artificial columns occupy indices
// [nStruct+nSlack, nCols).
type tableau struct {
	m, n     int // rows, total columns (incl. slack + artificial)
	nReal    int // structural + slack columns (excludes artificials)
	a        [][]float64
	b        []float64
	c        []float64 // phase-2 objective over all columns
	basis    []int     // basis[i] = column basic in row i
	vars     []internalVar
	maxIters int
}

// build converts the problem into standard form.
//
// Bounds are handled as follows: a variable with finite lo is shifted so the
// internal variable is ≥ 0; a finite hi becomes an extra ≤ row; a variable
// free on both sides is split into the difference of two non-negative
// columns.
func (p *Problem) build() (*tableau, error) {
	nv := len(p.cost)
	vars := make([]internalVar, nv)
	ncols := 0
	type upRow struct {
		col int
		rhs float64
	}
	var upper []upRow
	for i := 0; i < nv; i++ {
		lo, hi := p.lo[i], p.hi[i]
		switch {
		case !math.IsInf(lo, -1):
			vars[i] = internalVar{plus: ncols, minus: -1, shift: lo}
			ncols++
			if !math.IsInf(hi, 1) {
				if hi-lo < -eps {
					return nil, errors.New("lp: empty variable domain")
				}
				upper = append(upper, upRow{vars[i].plus, hi - lo})
			}
		case !math.IsInf(hi, 1):
			// x ≤ hi, unbounded below: substitute x = hi - x', x' ≥ 0.
			// Represent as shift=hi with a negated column via minus-only
			// split: x = hi + 0 - x'.
			vars[i] = internalVar{plus: -1, minus: ncols, shift: hi}
			ncols++
		default:
			vars[i] = internalVar{plus: ncols, minus: ncols + 1, shift: 0}
			ncols += 2
		}
	}

	// Count slacks.
	nslack := 0
	for _, r := range p.rows {
		if r.op != EQ {
			nslack++
		}
	}
	nslack += len(upper)

	m := len(p.rows) + len(upper)
	nReal := ncols + nslack
	t := &tableau{
		m:        m,
		nReal:    nReal,
		vars:     vars,
		maxIters: 50000 + 200*(m+nReal),
	}
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, nReal) // artificials appended later
	}
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	for i := range t.basis {
		t.basis[i] = -1
	}

	// Structural objective.
	t.c = make([]float64, nReal)
	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}
	for i := 0; i < nv; i++ {
		c := sign * p.cost[i]
		if vars[i].plus >= 0 {
			t.c[vars[i].plus] += c
		}
		if vars[i].minus >= 0 {
			t.c[vars[i].minus] -= c
		}
	}

	slack := ncols
	// User constraint rows.
	for ri, r := range p.rows {
		rhs := r.rhs
		for _, term := range r.terms {
			v := vars[term.Var]
			rhs -= term.Coef * v.shift
			if v.plus >= 0 {
				t.a[ri][v.plus] += term.Coef
			}
			if v.minus >= 0 {
				t.a[ri][v.minus] -= term.Coef
			}
		}
		op := r.op
		// Normalize to rhs ≥ 0.
		if rhs < 0 {
			for j := range t.a[ri][:nReal] {
				t.a[ri][j] = -t.a[ri][j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		t.b[ri] = rhs
		switch op {
		case LE:
			t.a[ri][slack] = 1
			t.basis[ri] = slack
			slack++
		case GE:
			t.a[ri][slack] = -1
			slack++
		case EQ:
			// artificial added in phase1
		}
	}
	// Upper-bound rows: x_col ≤ rhs (rhs ≥ 0 by construction).
	for k, u := range upper {
		ri := len(p.rows) + k
		t.a[ri][u.col] = 1
		t.b[ri] = u.rhs
		t.a[ri][slack] = 1
		t.basis[ri] = slack
		slack++
	}
	return t, nil
}

// phase1 installs artificial variables in rows without a basic column and
// minimizes their sum. Returns Optimal when a feasible basis was found.
func (t *tableau) phase1() Status {
	needArt := 0
	for i := 0; i < t.m; i++ {
		if t.basis[i] == -1 {
			needArt++
		}
	}
	if needArt == 0 {
		return Optimal
	}
	t.n = t.nReal + needArt
	art := t.nReal
	artObj := make([]float64, t.n)
	for i := 0; i < t.m; i++ {
		row := make([]float64, t.n)
		copy(row, t.a[i])
		t.a[i] = row
		if t.basis[i] == -1 {
			t.a[i][art] = 1
			t.basis[i] = art
			artObj[art] = 1
			art++
		}
	}
	// Extend phase-2 cost vector with zeros for artificials.
	c2 := make([]float64, t.n)
	copy(c2, t.c)
	t.c = c2

	status, obj := t.simplex(artObj)
	if status != Optimal {
		return status
	}
	if obj > 1e-7 {
		return Infeasible
	}
	// Drive remaining artificials out of the basis where possible.
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.nReal {
			pivoted := false
			for j := 0; j < t.nReal; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: the artificial stays basic at value ~0;
				// zero out the row so it cannot affect phase 2.
				for j := 0; j < t.n; j++ {
					if j != t.basis[i] {
						t.a[i][j] = 0
					}
				}
				t.b[i] = 0
			}
		}
	}
	// Forbid artificials from re-entering.
	t.blockArtificials()
	return Optimal
}

// blockArtificials zeroes artificial columns in non-basic rows so the
// phase-2 pricing never selects them.
func (t *tableau) blockArtificials() {
	for j := t.nReal; j < t.n; j++ {
		basicRow := -1
		for i := 0; i < t.m; i++ {
			if t.basis[i] == j {
				basicRow = i
				break
			}
		}
		if basicRow == -1 {
			for i := 0; i < t.m; i++ {
				t.a[i][j] = 0
			}
		}
	}
}

func (t *tableau) phase2() Status {
	if t.n == 0 { // no artificials were needed
		t.n = t.nReal
	}
	status, _ := t.simplex(t.c)
	return status
}

// simplex runs the primal simplex on the current basis with objective obj
// (length t.n). Returns the status and the achieved objective value.
//
// Reduced costs are kept as an explicit row, updated in O(n) per pivot and
// recomputed from the basis every refreshEvery iterations to bound
// numerical drift. This matters: candidate-rich MBR subproblems produce
// LPs with a few dozen rows but thousands of columns, where per-iteration
// O(m·n) pricing dominated the whole composition runtime.
func (t *tableau) simplex(obj []float64) (Status, float64) {
	m, n := t.m, t.n
	const refreshEvery = 256
	cb := make([]float64, m)
	rc := make([]float64, n)
	refresh := func() {
		for i := 0; i < m; i++ {
			cb[i] = obj[t.basis[i]]
		}
		for j := 0; j < n; j++ {
			zj := 0.0
			for i := 0; i < m; i++ {
				if cb[i] != 0 {
					zj += cb[i] * t.a[i][j]
				}
			}
			rc[j] = obj[j] - zj
		}
	}
	refresh()
	blandFrom := t.maxIters / 2
	for iter := 0; iter < t.maxIters; iter++ {
		if iter > 0 && iter%refreshEvery == 0 {
			refresh()
		}
		// Pricing.
		enter := -1
		best := -eps
		for j := 0; j < n; j++ {
			if iter >= blandFrom {
				// Bland: first improving column.
				if rc[j] < -eps {
					enter = j
					break
				}
			} else if rc[j] < best {
				best = rc[j]
				enter = j
			}
		}
		if enter == -1 {
			val := 0.0
			for i := 0; i < m; i++ {
				val += obj[t.basis[i]] * t.b[i]
			}
			return Optimal, val
		}
		// Ratio test.
		leave := -1
		minRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				r := t.b[i] / aij
				if r < minRatio-degenTol ||
					(r < minRatio+degenTol && (leave == -1 || t.basis[i] < t.basis[leave])) {
					minRatio = r
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded, 0
		}
		t.pivot(leave, enter)
		// Reduced-cost update: after the pivot, row `leave` holds the
		// entering column's updated coefficients; rcⱼ ← rcⱼ − rc_enter·āₗⱼ.
		f := rc[enter]
		if f != 0 {
			rowL := t.a[leave]
			for j := 0; j < n; j++ {
				rc[j] -= f * rowL[j]
			}
			rc[enter] = 0 // exact
		}
	}
	return IterLimit, 0
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1.0 / piv
	row := t.a[leave]
	for j := 0; j < t.n; j++ {
		row[j] *= inv
	}
	t.b[leave] *= inv
	row[enter] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.n; j++ {
			ai[j] -= f * row[j]
		}
		ai[enter] = 0 // exact
		t.b[i] -= f * t.b[leave]
	}
	t.basis[leave] = enter
}

// extract recovers user-variable values from the final basis.
func (t *tableau) extract(p *Problem) []float64 {
	colVal := make([]float64, t.n)
	for i := 0; i < t.m; i++ {
		colVal[t.basis[i]] = t.b[i]
	}
	x := make([]float64, len(p.cost))
	for i, v := range t.vars {
		val := v.shift
		if v.plus >= 0 {
			val += colVal[v.plus]
		}
		if v.minus >= 0 {
			val -= colVal[v.minus]
		}
		x[i] = val
	}
	return x
}
