package sta

import (
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// FeasibleRegion computes the timing-feasible placement region of a
// register (§2, placement compatibility): the set of lower-left corner
// positions the cell can take without creating a timing violation.
//
// For every connected D and Q pin:
//
//   - positive slack is converted to an equivalent Manhattan move distance
//     through the marginal delay per DBU of the relevant driver (the net's
//     driver for D pins; the register itself for Q pins), producing a box
//     around the pin's current position;
//
//   - negative (or zero) slack pins contribute the bounding box of the
//     *other* pins of their net: moving the pin within that box cannot
//     increase the net's half-perimeter, so the violating path is not made
//     worse.
//
// The per-pin boxes, translated from pin coordinates to cell-corner
// coordinates, are intersected. When the intersection is empty the cell's
// current corner position is returned as a degenerate region — per the
// paper, an unmovable cell still defines a region matching its footprint
// where other registers can move to.
func FeasibleRegion(d *netlist.Design, res *Results, in *netlist.Inst) geom.Rect {
	var boxes []geom.Rect
	corner := in.Pos

	addPinBox := func(p *netlist.Pin, driverRes float64) {
		if p == nil || p.Net == netlist.NoID {
			return
		}
		pos := d.PinPos(p)
		slack := res.PinSlack(p.ID)
		var box geom.Rect
		if math.IsInf(slack, 1) {
			return // unconstrained pin: no restriction
		}
		if slack > 0 {
			kappa := d.Timing.MarginalDelayPerDBU(driverRes)
			if kappa <= 0 {
				return
			}
			dist := int64(slack / kappa)
			box = geom.Rect{
				Lo: geom.Point{X: pos.X - dist, Y: pos.Y - dist},
				Hi: geom.Point{X: pos.X + dist, Y: pos.Y + dist},
			}
		} else {
			box = netBoxExcluding(d, d.Net(p.Net), p)
		}
		// Translate from pin space to cell-corner space.
		off := geom.Point{X: p.Offset.DX, Y: p.Offset.DY}
		boxes = append(boxes, geom.Rect{Lo: box.Lo.Sub(off), Hi: box.Hi.Sub(off)})
	}

	for b := 0; b < in.Bits(); b++ {
		dp := d.DPin(in, b)
		if dp != nil && dp.Net != netlist.NoID {
			addPinBox(dp, netDriverRes(d, d.Net(dp.Net)))
		}
		qp := d.QPin(in, b)
		if qp != nil && qp.Net != netlist.NoID {
			addPinBox(qp, in.RegCell.DriveRes)
		}
	}

	if len(boxes) == 0 {
		// Fully unconstrained register: it may go anywhere in the core.
		return d.Core
	}
	region, ok := geom.IntersectAll(boxes)
	if !ok {
		return geom.Rect{Lo: corner, Hi: corner}
	}
	// Clamp to the core area.
	clamped, ok := region.Intersect(coreCornerSpace(d, in))
	if !ok {
		return geom.Rect{Lo: corner, Hi: corner}
	}
	return clamped
}

// coreCornerSpace is the legal range of the cell's lower-left corner inside
// the core.
func coreCornerSpace(d *netlist.Design, in *netlist.Inst) geom.Rect {
	return geom.Rect{
		Lo: d.Core.Lo,
		Hi: geom.Point{X: d.Core.Hi.X - in.Width(), Y: d.Core.Hi.Y - in.Height()},
	}
}

// netDriverRes returns the drive resistance of the net's driver (a large
// default when undriven).
func netDriverRes(d *netlist.Design, n *netlist.Net) float64 {
	if n.Driver == netlist.NoID {
		return 10.0
	}
	in := d.Inst(d.Pin(n.Driver).Inst)
	if in == nil {
		return 10.0
	}
	switch {
	case in.RegCell != nil:
		return in.RegCell.DriveRes
	case in.Comb != nil:
		return in.Comb.DriveRes
	}
	return 10.0 // port
}

// netBoxExcluding returns the bounding box of the net's pins other than
// excl; when the net has no other pins the box degenerates to excl's
// current position.
func netBoxExcluding(d *netlist.Design, n *netlist.Net, excl *netlist.Pin) geom.Rect {
	var pts []geom.Point
	if n.Driver != netlist.NoID && n.Driver != excl.ID {
		pts = append(pts, d.PinPos(d.Pin(n.Driver)))
	}
	for _, s := range n.Sinks {
		if s != excl.ID {
			pts = append(pts, d.PinPos(d.Pin(s)))
		}
	}
	if len(pts) == 0 {
		p := d.PinPos(excl)
		return geom.Rect{Lo: p, Hi: p}
	}
	return geom.BoundingBox(pts)
}
