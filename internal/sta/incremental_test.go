package sta

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// sameResults reports whether two snapshots are bit-identical (exact float
// equality — the incremental path promises byte-identity, not tolerance).
func sameResults(t *testing.T, got, want *Results) {
	t.Helper()
	if len(got.Arrival) != len(want.Arrival) {
		t.Fatalf("pin space differs: %d vs %d", len(got.Arrival), len(want.Arrival))
	}
	for i := range got.Arrival {
		if got.Arrival[i] != want.Arrival[i] {
			t.Fatalf("arrival[%d] = %v want %v", i, got.Arrival[i], want.Arrival[i])
		}
		if got.Required[i] != want.Required[i] {
			t.Fatalf("required[%d] = %v want %v", i, got.Required[i], want.Required[i])
		}
		if got.Slack[i] != want.Slack[i] {
			t.Fatalf("slack[%d] = %v want %v", i, got.Slack[i], want.Slack[i])
		}
	}
	if got.WNS != want.WNS || got.TNS != want.TNS ||
		got.FailingEndpoints != want.FailingEndpoints ||
		got.TotalEndpoints != want.TotalEndpoints {
		t.Fatalf("summary differs: got WNS=%v TNS=%v fail=%d total=%d, want WNS=%v TNS=%v fail=%d total=%d",
			got.WNS, got.TNS, got.FailingEndpoints, got.TotalEndpoints,
			want.WNS, want.TNS, want.FailingEndpoints, want.TotalEndpoints)
	}
	if len(got.ClockArrival) != len(want.ClockArrival) {
		t.Fatalf("clock arrival count differs: %d vs %d", len(got.ClockArrival), len(want.ClockArrival))
	}
	for id, v := range want.ClockArrival {
		if got.ClockArrival[id] != v {
			t.Fatalf("clock arrival[%d] = %v want %v", id, got.ClockArrival[id], v)
		}
	}
}

func TestIncrementalMatchesFullAfterParametricEdits(t *testing.T) {
	d, r1, r2 := pipeline(t)
	// Pad the design so the touched set stays under the engine's
	// "quarter of the instances → just rebuild" heuristic.
	for i := 0; i < 16; i++ {
		r, err := d.AddRegister(fmt.Sprintf("pad_%d", i), regCell(t, 1),
			geom.Point{X: int64(60000 + 1000*i), Y: 30000})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.ClockPin(r), d.Net(d.ClockNet(r1)))
	}
	e := New(d)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.FullBuilds != 1 || s.IncrementalRuns != 0 {
		t.Fatalf("first run stats = %+v", s)
	}

	buf := d.InstByName("u_buf")
	d.MoveInst(buf, geom.Point{X: 30000, Y: 14000})
	d.MoveInst(r2, geom.Point{X: 45000, Y: 11000})
	if cs := testLib.CellsOfWidth(ffClass(), 1); len(cs) > 1 {
		if err := d.ResizeRegister(r1, cs[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.SetSkew(r1.ID, 30)

	got, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.IncrementalRuns != 1 {
		t.Fatalf("edit run did not take the incremental path: %+v", s)
	}
	if s := e.Stats(); s.LastConePins == 0 {
		t.Fatalf("incremental run re-evaluated no pins: %+v", s)
	}

	oracle := New(d)
	oracle.SetSkew(r1.ID, 30)
	want, err := oracle.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
}

func TestIncrementalNoEditsIsStable(t *testing.T) {
	d, _, _ := pipeline(t)
	e := New(d)
	first, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, second, first)
	if s := e.Stats(); s.FullBuilds != 1 || s.IncrementalRuns != 1 {
		t.Fatalf("stats = %+v, want one full and one incremental run", s)
	}
}

func TestStructuralEditForcesRebuild(t *testing.T) {
	d, _, r2 := pipeline(t)
	e := New(d)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Re-route r2.Q → out through a reconnect: structural.
	qp := d.QPin(r2, 0)
	n := d.Net(qp.Net)
	d.Disconnect(qp)
	d.Connect(qp, n)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.FullBuilds != 2 || s.IncrementalRuns != 0 {
		t.Fatalf("stats = %+v, want the structural edit to force a rebuild", s)
	}
}

func TestTimingSpecChangeForcesRebuild(t *testing.T) {
	d, _, _ := pipeline(t)
	e := New(d)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	d.Timing.ClockPeriod = 800 // direct field write: no epoch, caught by the spec snapshot
	got, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.FullBuilds != 2 {
		t.Fatalf("stats = %+v, want Timing change to force a rebuild", s)
	}
	want, err := New(d).Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
}

func TestClockGateChainArrivals(t *testing.T) {
	d, r1, r2 := pipeline(t)
	// clkport → cb → (mid net) → gate → clk: a two-stage clock chain.
	clkNet := d.Net(d.ClockNet(r1))
	root := d.AddNet("clkroot", true)
	mid := d.AddNet("clkmid", true)
	cp, _ := d.AddPort("clkport", true, geom.Point{X: 0, Y: 0})
	d.Connect(d.OutPin(cp), root)
	cb, _ := d.AddClockBuf("cb0", bufSpec, geom.Point{X: 5000, Y: 5000})
	d.Connect(d.FindPin(cb, netlist.PinData, 0), root)
	d.Connect(d.OutPin(cb), mid)
	cg, _ := d.AddClockGate("cg0", bufSpec, geom.Point{X: 8000, Y: 8000})
	d.Connect(d.FindPin(cg, netlist.PinData, 0), mid)
	d.Connect(d.OutPin(cg), clkNet)

	res, err := New(d).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Two stages of intrinsic delay is a hard floor for both registers.
	floor := 2 * bufSpec.Intrinsic
	for _, r := range []*netlist.Inst{r1, r2} {
		if a := res.ClockArrival[r.ID]; a <= floor {
			t.Fatalf("clock arrival at %s = %g, want > %g (two chained stages)", r.Name, a, floor)
		}
	}

	// Ideal mode ignores the whole chain.
	e := New(d)
	e.SetIdealClocks(true)
	ideal, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ideal.ClockArrival[r1.ID] != 0 || ideal.ClockArrival[r2.ID] != 0 {
		t.Fatalf("ideal-clock arrivals = %g, %g; want 0",
			ideal.ClockArrival[r1.ID], ideal.ClockArrival[r2.ID])
	}
}

func TestClockNetworkLoopDetected(t *testing.T) {
	d, r1, _ := pipeline(t)
	// Two clock buffers driving each other; the registers' clock net hangs
	// off the cycle.
	clkNet := d.Net(d.ClockNet(r1))
	na := d.AddNet("loop_a", true)
	cb1, _ := d.AddClockBuf("cb1", bufSpec, geom.Point{X: 5000, Y: 5000})
	cb2, _ := d.AddClockBuf("cb2", bufSpec, geom.Point{X: 6000, Y: 6000})
	d.Connect(d.OutPin(cb1), na)
	d.Connect(d.FindPin(cb2, netlist.PinData, 0), na)
	d.Connect(d.OutPin(cb2), clkNet)
	d.Connect(d.FindPin(cb1, netlist.PinData, 0), clkNet)

	_, err := New(d).Run()
	if err == nil || !strings.Contains(err.Error(), "clock network loop") {
		t.Fatalf("err = %v, want clock network loop", err)
	}

	// Ideal mode never walks the clock network, so the same design analyzes.
	e := New(d)
	e.SetIdealClocks(true)
	if _, err := e.Run(); err != nil {
		t.Fatalf("ideal-clock run failed on looped clock network: %v", err)
	}
}

func TestIdealEqualsPropagatedOnUndrivenClock(t *testing.T) {
	// The pipeline fixture's clk net has no driver: propagated analysis
	// treats it as an ideal root, so both modes must agree exactly.
	d, _, _ := pipeline(t)
	prop, err := New(d).Run()
	if err != nil {
		t.Fatal(err)
	}
	e := New(d)
	e.SetIdealClocks(true)
	ideal, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, ideal, prop)
}

func TestCombinationalSelfLoopDetected(t *testing.T) {
	d := netlist.NewDesign("self", geom.RectWH(0, 0, 10000, 10000), testLib)
	d.Timing.ClockPeriod = 1000
	a, _ := d.AddComb("a", bufSpec, geom.Point{X: 0, Y: 0})
	n := d.AddNet("n", false)
	d.Connect(d.OutPin(a), n)
	d.Connect(d.FindPin(a, netlist.PinData, 0), n)
	_, err := New(d).Run()
	if err == nil || !strings.Contains(err.Error(), "combinational cycle") {
		t.Fatalf("err = %v, want combinational cycle", err)
	}
}

func TestNetSinkPosOnInstMissingSink(t *testing.T) {
	d, r1, r2 := pipeline(t)
	clkNet := d.Net(d.ClockNet(r1))
	buf := d.InstByName("u_buf")
	// The buffer has no pin on the clock net: the lookup must say so
	// instead of inventing a position.
	if _, ok := netSinkPosOnInst(d, clkNet, buf); ok {
		t.Fatal("netSinkPosOnInst found a sink that does not exist")
	}
	if pos, ok := netSinkPosOnInst(d, clkNet, r2); !ok || pos != d.PinPos(d.ClockPin(r2)) {
		t.Fatalf("netSinkPosOnInst(r2) = %v, %v; want clock pin position", pos, ok)
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	d, r1, _ := pipeline(t)
	seq := New(d)
	seq.SetWorkers(1)
	want, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 7} {
		e := New(d)
		e.SetWorkers(w)
		got, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, want)
	}
	_ = r1
}
