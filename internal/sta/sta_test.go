package sta

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

var testLib = lib.MustGenerateDefault()

func ffClass() lib.FuncClass {
	return lib.FuncClass{Kind: lib.FlipFlop, Edge: lib.RisingEdge, Reset: lib.NoReset, Scan: lib.NoScan}
}

func regCell(t testing.TB, bits int) *lib.Cell {
	t.Helper()
	cs := testLib.CellsOfWidth(ffClass(), bits)
	if len(cs) == 0 {
		t.Fatalf("no %d-bit cell", bits)
	}
	return cs[0]
}

var bufSpec = &netlist.CombSpec{
	Name: "BUF_X2", NumInputs: 1, DriveRes: 3, Intrinsic: 20, InCap: 0.8,
	Width: 600, Height: 1200,
}

// pipeline builds: in → r1.D ; r1.Q → buf → r2.D ; r2.Q → out.
// Returns design and the two registers.
func pipeline(t testing.TB) (*netlist.Design, *netlist.Inst, *netlist.Inst) {
	t.Helper()
	d := netlist.NewDesign("pipe", geom.RectWH(0, 0, 200000, 200000), testLib)
	d.Timing = netlist.TimingSpec{
		ClockPeriod:     1000,
		WireCapPerDBU:   0.0002,
		WireDelayPerDBU: 0.004,
		InputDelay:      50,
		OutputDelay:     50,
	}
	clk := d.AddNet("clk", true)

	r1, err := d.AddRegister("r1", regCell(t, 1), geom.Point{X: 10000, Y: 12000})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.AddRegister("r2", regCell(t, 1), geom.Point{X: 40000, Y: 12000})
	if err != nil {
		t.Fatal(err)
	}
	d.Connect(d.ClockPin(r1), clk)
	d.Connect(d.ClockPin(r2), clk)

	in, _ := d.AddPort("in", true, geom.Point{X: 0, Y: 12000})
	out, _ := d.AddPort("out", false, geom.Point{X: 80000, Y: 12000})
	buf, _ := d.AddComb("u_buf", bufSpec, geom.Point{X: 25000, Y: 12000})

	n1 := d.AddNet("n_in", false)
	d.Connect(d.OutPin(in), n1)
	d.Connect(d.DPin(r1, 0), n1)

	n2 := d.AddNet("n_q1", false)
	d.Connect(d.QPin(r1, 0), n2)
	d.Connect(d.FindPin(buf, netlist.PinData, 0), n2)

	n3 := d.AddNet("n_b", false)
	d.Connect(d.OutPin(buf), n3)
	d.Connect(d.DPin(r2, 0), n3)

	n4 := d.AddNet("n_q2", false)
	d.Connect(d.QPin(r2, 0), n4)
	d.Connect(d.FindPin(out, netlist.PinData, 0), n4)

	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d, r1, r2
}

func TestPipelineArrivalsAndSlacks(t *testing.T) {
	d, r1, r2 := pipeline(t)
	e := New(d)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Manual computation of arrival at r2.D:
	// launch at r1 clock (ideal, 0) + clk2q(r1) with load of n_q1
	cell := r1.RegCell
	nq1 := d.Net(d.QPin(r1, 0).Net)
	aQ1 := cell.Intrinsic + cell.DriveRes*d.NetLoadCap(nq1)
	if got := res.Arrival[d.QPin(r1, 0).ID]; math.Abs(got-aQ1) > 1e-9 {
		t.Fatalf("arrival(r1.Q) = %g want %g", got, aQ1)
	}
	// wire to buffer input
	wire1 := d.Timing.WireDelayPerDBU *
		float64(d.PinPos(d.QPin(r1, 0)).ManhattanDist(d.PinPos(d.FindPin(d.InstByName("u_buf"), netlist.PinData, 0))))
	// buffer delay
	buf := d.InstByName("u_buf")
	nb := d.Net(d.OutPin(buf).Net)
	bufDelay := buf.Comb.Intrinsic + buf.Comb.DriveRes*d.NetLoadCap(nb)
	// wire to r2.D
	wire2 := d.Timing.WireDelayPerDBU *
		float64(d.PinPos(d.OutPin(buf)).ManhattanDist(d.PinPos(d.DPin(r2, 0))))
	wantArr := aQ1 + wire1 + bufDelay + wire2
	if got := res.Arrival[d.DPin(r2, 0).ID]; math.Abs(got-wantArr) > 1e-9 {
		t.Fatalf("arrival(r2.D) = %g want %g", got, wantArr)
	}
	wantSlack := (d.Timing.ClockPeriod - r2.RegCell.Setup) - wantArr
	if got := res.Slack[d.DPin(r2, 0).ID]; math.Abs(got-wantSlack) > 1e-9 {
		t.Fatalf("slack(r2.D) = %g want %g", got, wantSlack)
	}
	if res.FailingEndpoints != 0 {
		t.Fatalf("unexpected failing endpoints: %d", res.FailingEndpoints)
	}
	if res.TotalEndpoints != 3 { // r1.D, r2.D, out
		t.Fatalf("TotalEndpoints = %d want 3", res.TotalEndpoints)
	}
	if res.TNS != 0 {
		t.Fatalf("TNS = %g want 0", res.TNS)
	}
}

func TestFailingPathDetection(t *testing.T) {
	d, _, _ := pipeline(t)
	d.Timing.ClockPeriod = 100 // impossible period
	e := New(d)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FailingEndpoints == 0 || res.TNS >= 0 || res.WNS >= 0 {
		t.Fatalf("expected violations: failing=%d TNS=%g WNS=%g",
			res.FailingEndpoints, res.TNS, res.WNS)
	}
}

func TestQSlackEqualsDownstreamDSlack(t *testing.T) {
	d, r1, r2 := pipeline(t)
	e := New(d)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The r1.Q → r2.D path is the only fanout of r1.Q, so the back-propagated
	// required time gives slack(r1.Q) == slack(r2.D).
	s1 := RegQSlack(d, res, r1)
	s2 := res.Slack[d.DPin(r2, 0).ID]
	if math.Abs(s1-s2) > 1e-9 {
		t.Fatalf("QSlack(r1)=%g want %g", s1, s2)
	}
}

func TestUsefulSkewImprovesWorstSlack(t *testing.T) {
	d, r1, _ := pipeline(t)
	// Tighten the period so the r1→r2 path fails while r1's input path has
	// plenty of slack: r1 then has positive D slack and negative Q slack,
	// the classic candidate for a negative (earlier-clock) useful skew.
	d.Timing.ClockPeriod = 250
	d.Timing.OutputDelay = 0
	e := New(d)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	dBefore := RegDSlack(d, res, r1)
	qBefore := RegQSlack(d, res, r1)
	if qBefore >= 0 {
		t.Fatalf("test setup: expected failing Q side at r1, slack=%g", qBefore)
	}
	if dBefore <= qBefore {
		t.Fatalf("test setup: need D slack better than Q slack (%g vs %g)", dBefore, qBefore)
	}
	n := e.AssignUsefulSkew([]*netlist.Inst{r1}, res, 1000)
	if n != 1 {
		t.Fatalf("improved = %d want 1", n)
	}
	if e.Skew(r1.ID) >= 0 {
		t.Fatalf("expected negative skew (earlier clock), got %g", e.Skew(r1.ID))
	}
	res2, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	worstBefore := math.Min(dBefore, qBefore)
	worstAfter := math.Min(RegDSlack(d, res2, r1), RegQSlack(d, res2, r1))
	if worstAfter <= worstBefore {
		t.Fatalf("useful skew did not help: %g → %g", worstBefore, worstAfter)
	}
}

func TestSkewClamping(t *testing.T) {
	d, r1, _ := pipeline(t)
	d.Timing.ClockPeriod = 250
	d.Timing.OutputDelay = 0
	e := New(d)
	res, _ := e.Run()
	e.AssignUsefulSkew([]*netlist.Inst{r1}, res, 5) // tiny window
	if s := e.Skew(r1.ID); math.Abs(s) > 5+1e-12 {
		t.Fatalf("skew %g exceeds window", s)
	}
}

func TestClockTreePropagation(t *testing.T) {
	d, r1, r2 := pipeline(t)
	// Insert a clock buffer: clkroot (port) → buf → clk net.
	clkNet := d.Net(d.ClockNet(r1))
	clkNet2 := d.AddNet("clkroot", true)
	cp, _ := d.AddPort("clkport", true, geom.Point{X: 0, Y: 0})
	d.Connect(d.OutPin(cp), clkNet2)
	cb, _ := d.AddClockBuf("cb0", bufSpec, geom.Point{X: 5000, Y: 5000})
	d.Connect(d.FindPin(cb, netlist.PinData, 0), clkNet2)
	d.Connect(d.OutPin(cb), clkNet)

	e := New(d)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	a1 := res.ClockArrival[r1.ID]
	a2 := res.ClockArrival[r2.ID]
	if a1 <= 0 || a2 <= 0 {
		t.Fatalf("clock arrivals must be positive after buffering: %g %g", a1, a2)
	}
	// r2 is farther from the buffer → later arrival.
	if a2 <= a1 {
		t.Fatalf("expected a2 > a1, got %g vs %g", a2, a1)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	d := netlist.NewDesign("cyc", geom.RectWH(0, 0, 10000, 10000), testLib)
	d.Timing.ClockPeriod = 1000
	a, _ := d.AddComb("a", bufSpec, geom.Point{X: 0, Y: 0})
	b, _ := d.AddComb("b", bufSpec, geom.Point{X: 2000, Y: 0})
	n1 := d.AddNet("n1", false)
	n2 := d.AddNet("n2", false)
	d.Connect(d.OutPin(a), n1)
	d.Connect(d.FindPin(b, netlist.PinData, 0), n1)
	d.Connect(d.OutPin(b), n2)
	d.Connect(d.FindPin(a, netlist.PinData, 0), n2)
	if _, err := New(d).Run(); err == nil {
		t.Fatal("expected combinational cycle error")
	}
}

func TestFeasibleRegionPositiveSlack(t *testing.T) {
	d, r1, _ := pipeline(t)
	e := New(d)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	reg := FeasibleRegion(d, res, r1)
	if !reg.Valid() {
		t.Fatal("region must be valid")
	}
	// The register's current corner must always be inside its own region.
	if !reg.Contains(r1.Pos) {
		t.Fatalf("region %v does not contain corner %v", reg, r1.Pos)
	}
	// With generous slack the region must have real extent.
	if reg.W() == 0 && reg.H() == 0 {
		t.Fatal("positive-slack register should be movable")
	}
}

func TestFeasibleRegionShrinksWithTighterClock(t *testing.T) {
	d, r1, _ := pipeline(t)
	e := New(d)
	res, _ := e.Run()
	loose := FeasibleRegion(d, res, r1)

	d.Timing.ClockPeriod = 500
	res2, _ := e.Run()
	tight := FeasibleRegion(d, res2, r1)
	if tight.W() > loose.W() || tight.H() > loose.H() {
		t.Fatalf("tighter clock must shrink region: %v vs %v", tight, loose)
	}
}

func TestFeasibleRegionNegativeSlackUsesNetBox(t *testing.T) {
	d, r1, _ := pipeline(t)
	d.Timing.ClockPeriod = 100 // everything fails
	e := New(d)
	res, _ := e.Run()
	reg := FeasibleRegion(d, res, r1)
	// Region must still be valid and include (or be) the current position.
	if !reg.Valid() {
		t.Fatal("region must remain valid under violations")
	}
	if !reg.Contains(r1.Pos) {
		// The paper allows a degenerate region matching the footprint.
		if reg.Lo != r1.Pos {
			t.Fatalf("violating register region %v should pin to %v", reg, r1.Pos)
		}
	}
}

func TestRunAfterMergeStillWorks(t *testing.T) {
	d, r1, r2 := pipeline(t)
	// r1, r2 share clock but have different control nets? They share clock
	// only; merge is structurally fine.
	cells := testLib.CellsOfWidth(ffClass(), 2)
	res0, err := New(d).Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = res0
	mr, err := d.MergeRegisters([]*netlist.Inst{r1, r2}, cells[0], "m", geom.Point{X: 20000, Y: 12000})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := New(d).Run()
	if err != nil {
		t.Fatal(err)
	}
	// The merged register now launches and captures through the buffer
	// path; both D endpoints must be constrained.
	for b := 0; b < 2; b++ {
		p := d.DPin(mr.MBR, b)
		if p.Net == netlist.NoID {
			continue
		}
		if math.IsInf(res.PinSlack(p.ID), 1) {
			t.Fatalf("bit %d endpoint unconstrained after merge", b)
		}
	}
}

func TestSetSkewZeroClears(t *testing.T) {
	d, r1, _ := pipeline(t)
	e := New(d)
	e.SetSkew(r1.ID, 25)
	if e.Skew(r1.ID) != 25 {
		t.Fatal("skew not set")
	}
	e.SetSkew(r1.ID, 0)
	if e.Skew(r1.ID) != 0 {
		t.Fatal("zero skew must clear")
	}
	e.SetSkew(r1.ID, 10)
	e.ClearSkews()
	if e.Skew(r1.ID) != 0 {
		t.Fatal("ClearSkews must clear")
	}
}
