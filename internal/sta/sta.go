// Package sta is a graph-based static timing analyzer over the netlist
// database. It uses the linear delay abstraction the paper's mapping step
// reasons with (§4.1): cell delay = intrinsic + driveResistance × load, and
// wire delay proportional to Manhattan pin distance. It produces per-pin
// arrival/required/slack, WNS/TNS, failing endpoint counts, propagated
// clock arrivals, per-register useful-skew assignment, and the
// timing-feasible move regions that placement compatibility (§2) is built
// from.
//
// Only setup (max-delay) analysis is modeled; the paper does not involve
// hold fixing.
//
// Concurrency: an Engine mutates only itself during Run, and a Results
// snapshot is immutable once returned — no lazy caches, no package-level
// state. Concurrent readers of one Results (slacks, regions) need no
// locking; the parallel composition pipeline shares a single snapshot
// across all workers. Engines on the same Design must not run while the
// Design is being edited.
package sta

import (
	"fmt"
	"math"

	"repro/internal/netlist"
)

// Results carries one timing analysis snapshot. Pin-indexed slices are
// addressed by netlist.PinID.
type Results struct {
	Arrival  []float64
	Required []float64
	Slack    []float64

	// WNS is the worst endpoint slack (0 when nothing fails and min slack
	// is positive — we report the true minimum, which may be positive).
	WNS float64
	// TNS is the sum of negative endpoint slacks (a non-positive number).
	TNS float64
	// FailingEndpoints counts endpoints with negative slack.
	FailingEndpoints int
	// TotalEndpoints counts all checked endpoints.
	TotalEndpoints int

	// ClockArrival is the propagated clock arrival (including useful skew)
	// at each register, keyed by instance ID.
	ClockArrival map[netlist.InstID]float64
}

// PinSlack returns the slack at a pin (+Inf for unconstrained pins).
func (r *Results) PinSlack(id netlist.PinID) float64 {
	if int(id) >= len(r.Slack) {
		return math.Inf(1)
	}
	return r.Slack[id]
}

// Engine runs timing analysis on a design. The engine may be re-run after
// netlist edits; per-register useful skews persist across runs and survive
// register merges only if re-applied by the caller.
type Engine struct {
	d     *netlist.Design
	skew  map[netlist.InstID]float64
	ideal bool
}

// New returns an analyzer for the design.
func New(d *netlist.Design) *Engine {
	return &Engine{d: d, skew: map[netlist.InstID]float64{}}
}

// SetIdealClocks selects ideal-clock mode: every register's clock arrives
// at time zero (plus its useful skew), regardless of the clock network.
// This is how pre-CTS timing is analyzed in practice — before buffering,
// the raw clock nets are giant stars whose RC delay is meaningless.
// Propagated clocks (the default) follow buffers and gates.
func (e *Engine) SetIdealClocks(on bool) { e.ideal = on }

// SetSkew assigns a useful clock skew (ps, positive = later clock) to a
// register instance.
func (e *Engine) SetSkew(id netlist.InstID, ps float64) {
	if ps == 0 {
		delete(e.skew, id)
		return
	}
	e.skew[id] = ps
}

// Skew returns the useful skew currently assigned to a register.
func (e *Engine) Skew(id netlist.InstID) float64 { return e.skew[id] }

// ClearSkews removes all useful-skew assignments.
func (e *Engine) ClearSkews() { e.skew = map[netlist.InstID]float64{} }

const negInf = math.MaxFloat64 * -1

// Run performs a full timing analysis.
func (e *Engine) Run() (*Results, error) {
	d := e.d
	nPins := e.pinSpace()
	res := &Results{
		Arrival:      make([]float64, nPins),
		Required:     make([]float64, nPins),
		Slack:        make([]float64, nPins),
		ClockArrival: map[netlist.InstID]float64{},
		WNS:          math.Inf(1),
	}
	for i := range res.Arrival {
		res.Arrival[i] = negInf       // unreached
		res.Required[i] = math.Inf(1) // unconstrained
		res.Slack[i] = math.Inf(1)
	}

	arcs, rev, err := e.buildGraph()
	if err != nil {
		return nil, err
	}

	clkArr, err := e.clockArrivals()
	if err != nil {
		return nil, err
	}
	period := d.Timing.ClockPeriod

	// Seed arrivals: input ports and register Q pins.
	type seed struct {
		pin netlist.PinID
		at  float64
	}
	var seeds []seed
	d.Insts(func(in *netlist.Inst) {
		switch in.Kind {
		case netlist.KindPort:
			p := d.OutPin(in)
			if p != nil && p.Net != netlist.NoID && !d.Net(p.Net).IsClock {
				seeds = append(seeds, seed{p.ID, d.Timing.InputDelay})
			}
		case netlist.KindReg:
			arr := clkArr[in.ID] + e.skew[in.ID]
			res.ClockArrival[in.ID] = arr
			cell := in.RegCell
			for b := 0; b < cell.Bits; b++ {
				q := d.QPin(in, b)
				if q == nil || q.Net == netlist.NoID {
					continue
				}
				load := d.NetLoadCap(d.Net(q.Net))
				seeds = append(seeds, seed{q.ID, arr + cell.Intrinsic + cell.DriveRes*load})
			}
		}
	})

	// Forward propagation in topological order (Kahn over the arc graph).
	order, err := toposort(nPins, arcs, rev)
	if err != nil {
		return nil, err
	}
	for _, s := range seeds {
		if s.at > res.Arrival[s.pin] {
			res.Arrival[s.pin] = s.at
		}
	}
	for _, u := range order {
		au := res.Arrival[u]
		if au == negInf {
			continue
		}
		for _, a := range arcs[u] {
			if v := au + a.delay; v > res.Arrival[a.to] {
				res.Arrival[a.to] = v
			}
		}
	}

	// Endpoint required times.
	setReq := func(pin netlist.PinID, req float64) {
		if req < res.Required[pin] {
			res.Required[pin] = req
		}
	}
	d.Insts(func(in *netlist.Inst) {
		switch in.Kind {
		case netlist.KindReg:
			arr := clkArr[in.ID] + e.skew[in.ID]
			for b := 0; b < in.Bits(); b++ {
				dp := d.DPin(in, b)
				if dp == nil || dp.Net == netlist.NoID {
					continue
				}
				setReq(dp.ID, arr+period-in.RegCell.Setup)
			}
		case netlist.KindPort:
			p := d.FindPin(in, netlist.PinData, 0)
			if p != nil && p.Dir == netlist.DirIn && p.Net != netlist.NoID {
				setReq(p.ID, period-d.Timing.OutputDelay)
			}
		}
	})

	// Backward propagation of required times.
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, a := range arcs[u] {
			if res.Required[a.to] < math.Inf(1) {
				if r := res.Required[a.to] - a.delay; r < res.Required[u] {
					res.Required[u] = r
				}
			}
		}
	}

	// Slacks and endpoint statistics.
	for pid := 0; pid < nPins; pid++ {
		arr, req := res.Arrival[pid], res.Required[pid]
		if arr == negInf || req == math.Inf(1) {
			continue
		}
		res.Slack[pid] = req - arr
	}
	d.Insts(func(in *netlist.Inst) {
		check := func(p *netlist.Pin) {
			if p == nil || p.Net == netlist.NoID {
				return
			}
			if res.Arrival[p.ID] == negInf {
				return // unreached endpoint: unconstrained path
			}
			s := res.Slack[p.ID]
			if math.IsInf(s, 1) {
				return
			}
			res.TotalEndpoints++
			if s < res.WNS {
				res.WNS = s
			}
			if s < 0 {
				res.TNS += s
				res.FailingEndpoints++
			}
		}
		switch in.Kind {
		case netlist.KindReg:
			for b := 0; b < in.Bits(); b++ {
				check(d.DPin(in, b))
			}
		case netlist.KindPort:
			p := d.FindPin(in, netlist.PinData, 0)
			if p != nil && p.Dir == netlist.DirIn {
				check(p)
			}
		}
	})
	if res.TotalEndpoints == 0 {
		res.WNS = 0
	}
	return res, nil
}

type arc struct {
	to    netlist.PinID
	delay float64
}

// pinSpace returns an upper bound on pin IDs.
func (e *Engine) pinSpace() int {
	n := 0
	e.d.Insts(func(in *netlist.Inst) {
		for _, pid := range in.Pins {
			if int(pid) >= n {
				n = int(pid) + 1
			}
		}
	})
	return n
}

// buildGraph creates the data-path timing arcs: net arcs (driver→sink, wire
// delay) and combinational cell arcs (input→output). Register and clock
// pins do not get data arcs; registers are handled as launch/capture
// boundaries, and the clock network is analyzed separately.
func (e *Engine) buildGraph() (map[netlist.PinID][]arc, map[netlist.PinID]int, error) {
	d := e.d
	arcs := map[netlist.PinID][]arc{}
	indeg := map[netlist.PinID]int{}

	// Net arcs.
	d.Nets(func(n *netlist.Net) {
		if n.IsClock || n.Driver == netlist.NoID {
			return
		}
		dp := d.Pin(n.Driver)
		dpos := d.PinPos(dp)
		for _, s := range n.Sinks {
			sp := d.Pin(s)
			delay := d.Timing.WireDelayPerDBU * float64(dpos.ManhattanDist(d.PinPos(sp)))
			arcs[dp.ID] = append(arcs[dp.ID], arc{sp.ID, delay})
			indeg[sp.ID]++
		}
	})
	// Cell arcs for combinational instances.
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindComb {
			return
		}
		out := d.OutPin(in)
		if out == nil || out.Net == netlist.NoID {
			return
		}
		load := d.NetLoadCap(d.Net(out.Net))
		delay := in.Comb.Intrinsic + in.Comb.DriveRes*load
		for _, pid := range in.Pins {
			p := d.Pin(pid)
			if p.Dir != netlist.DirIn || p.Net == netlist.NoID {
				continue
			}
			arcs[p.ID] = append(arcs[p.ID], arc{out.ID, delay})
			indeg[out.ID]++
		}
	})
	return arcs, indeg, nil
}

// toposort returns a topological order of all pins that participate in
// arcs. A combinational cycle is an error.
func toposort(nPins int, arcs map[netlist.PinID][]arc, indeg map[netlist.PinID]int) ([]netlist.PinID, error) {
	inDegree := make([]int, nPins)
	involved := make([]bool, nPins)
	for u, as := range arcs {
		involved[u] = true
		for _, a := range as {
			involved[a.to] = true
		}
	}
	total := 0
	for pid, deg := range indeg {
		inDegree[pid] = deg
	}
	var queue []netlist.PinID
	for pid := 0; pid < nPins; pid++ {
		if involved[pid] && inDegree[pid] == 0 {
			queue = append(queue, netlist.PinID(pid))
		}
		if involved[pid] {
			total++
		}
	}
	order := make([]netlist.PinID, 0, total)
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, u)
		for _, a := range arcs[u] {
			inDegree[a.to]--
			if inDegree[a.to] == 0 {
				queue = append(queue, a.to)
			}
		}
	}
	if len(order) != total {
		return nil, fmt.Errorf("sta: combinational cycle detected (%d of %d pins ordered)", len(order), total)
	}
	return order, nil
}

// clockArrivals propagates clock delay from clock sources (ports or
// undriven clock nets, which are treated as ideal) through clock buffers
// and gates to every register's clock pin.
func (e *Engine) clockArrivals() (map[netlist.InstID]float64, error) {
	d := e.d
	arr := map[netlist.InstID]float64{}
	if e.ideal {
		d.Insts(func(in *netlist.Inst) {
			if in.Kind == netlist.KindReg {
				arr[in.ID] = 0
			}
		})
		return arr, nil
	}

	// netArrival computes arrival at a clock net's driver output,
	// memoized; ideal (0) at roots.
	memo := map[netlist.NetID]float64{}
	var netArrival func(id netlist.NetID, depth int) (float64, error)
	netArrival = func(id netlist.NetID, depth int) (float64, error) {
		if v, ok := memo[id]; ok {
			return v, nil
		}
		if depth > 10000 {
			return 0, fmt.Errorf("sta: clock network loop on net %d", id)
		}
		n := d.Net(id)
		if n == nil || n.Driver == netlist.NoID {
			memo[id] = 0 // ideal clock root
			return 0, nil
		}
		drv := d.Pin(n.Driver)
		in := d.Inst(drv.Inst)
		if in == nil {
			memo[id] = 0
			return 0, nil
		}
		switch in.Kind {
		case netlist.KindPort:
			memo[id] = 0
			return 0, nil
		case netlist.KindClockBuf, netlist.KindClockGate:
			// Arrival at the buffer input net + buffer delay.
			var inNet netlist.NetID = netlist.NoID
			for _, pid := range in.Pins {
				p := d.Pin(pid)
				if p.Dir == netlist.DirIn && p.Net != netlist.NoID {
					pn := d.Net(p.Net)
					if pn.IsClock || p.Kind == netlist.PinData {
						inNet = p.Net
						break
					}
				}
			}
			base := 0.0
			if inNet != netlist.NoID {
				b, err := netArrival(inNet, depth+1)
				if err != nil {
					return 0, err
				}
				// Wire delay from upstream driver to this buffer's input.
				up := d.Net(inNet)
				if up.Driver != netlist.NoID {
					b += d.Timing.WireDelayPerDBU *
						float64(d.PinPos(d.Pin(up.Driver)).ManhattanDist(d.PinPos(pinOfNetSinkOnInst(d, up, in))))
				}
				base = b
			}
			load := d.NetLoadCap(n)
			v := base + in.Comb.Intrinsic + in.Comb.DriveRes*load
			memo[id] = v
			return v, nil
		default:
			memo[id] = 0
			return 0, nil
		}
	}

	var firstErr error
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindReg || firstErr != nil {
			return
		}
		cp := d.ClockPin(in)
		if cp == nil || cp.Net == netlist.NoID {
			arr[in.ID] = 0
			return
		}
		base, err := netArrival(cp.Net, 0)
		if err != nil {
			firstErr = err
			return
		}
		n := d.Net(cp.Net)
		wire := 0.0
		if n.Driver != netlist.NoID {
			wire = d.Timing.WireDelayPerDBU *
				float64(d.PinPos(d.Pin(n.Driver)).ManhattanDist(d.PinPos(cp)))
		}
		arr[in.ID] = base + wire
	})
	return arr, firstErr
}

func pinOfNetSinkOnInst(d *netlist.Design, n *netlist.Net, in *netlist.Inst) *netlist.Pin {
	for _, s := range n.Sinks {
		p := d.Pin(s)
		if p.Inst == in.ID {
			return p
		}
	}
	// Fall back to the instance origin.
	return &netlist.Pin{Inst: in.ID}
}

// RegDSlack returns the worst slack across the register's connected D pins
// (+Inf when none are constrained).
func RegDSlack(d *netlist.Design, r *Results, in *netlist.Inst) float64 {
	worst := math.Inf(1)
	for b := 0; b < in.Bits(); b++ {
		p := d.DPin(in, b)
		if p == nil || p.Net == netlist.NoID {
			continue
		}
		if s := r.PinSlack(p.ID); s < worst {
			worst = s
		}
	}
	return worst
}

// RegQSlack returns the worst slack across the register's connected Q pins
// (+Inf when none are constrained).
func RegQSlack(d *netlist.Design, r *Results, in *netlist.Inst) float64 {
	worst := math.Inf(1)
	for b := 0; b < in.Bits(); b++ {
		p := d.QPin(in, b)
		if p == nil || p.Net == netlist.NoID {
			continue
		}
		if s := r.PinSlack(p.ID); s < worst {
			worst = s
		}
	}
	return worst
}

// AssignUsefulSkew computes and applies the local useful-skew move for the
// given registers: the skew that balances each register's D-side and Q-side
// slacks, clamped to ±maxSkew. It returns the number of registers whose
// worst slack improved. The paper applies this to newly composed MBRs
// (Fig. 4) — their constituents were timing compatible, so one shared skew
// helps all bits.
func (e *Engine) AssignUsefulSkew(regs []*netlist.Inst, res *Results, maxSkew float64) int {
	improved := 0
	for _, in := range regs {
		ds := RegDSlack(e.d, res, in)
		qs := RegQSlack(e.d, res, in)
		if math.IsInf(ds, 1) || math.IsInf(qs, 1) {
			continue
		}
		// min(ds+s, qs-s) is maximized at s = (qs-ds)/2.
		s := (qs - ds) / 2
		if s > maxSkew {
			s = maxSkew
		}
		if s < -maxSkew {
			s = -maxSkew
		}
		before := math.Min(ds, qs)
		after := math.Min(ds+s, qs-s)
		if after > before+1e-12 {
			e.SetSkew(in.ID, e.skew[in.ID]+s)
			improved++
		}
	}
	return improved
}
