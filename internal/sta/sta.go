// Package sta is a graph-based static timing analyzer over the netlist
// database. It uses the linear delay abstraction the paper's mapping step
// reasons with (§4.1): cell delay = intrinsic + driveResistance × load, and
// wire delay proportional to Manhattan pin distance. It produces per-pin
// arrival/required/slack, WNS/TNS, failing endpoint counts, propagated
// clock arrivals, per-register useful-skew assignment, and the
// timing-feasible move regions that placement compatibility (§2) is built
// from.
//
// The analyzer is built for repeated analysis inside an optimization loop:
// an Engine retains a CSR-backed timing graph with a cached levelized
// topological order across runs, and consults the netlist's edit epoch
// (netlist.Design.Epoch) to decide how much work a Run actually needs.
// Structural edits (data-net connectivity) trigger a full rebuild;
// parametric edits (moves, resizes, skews, clock-network changes) re-seed
// and re-propagate only the fanin/fanout cone of the touched pins. The
// forward-arrival and backward-required sweeps are levelized and fan out
// across a worker pool (SetWorkers). Because every propagation step is a
// pure max/min reduction, results are bit-identical for any worker count
// and for incremental versus full runs; the full rebuild remains both the
// fallback and the testing oracle.
//
// Only setup (max-delay) analysis is modeled; the paper does not involve
// hold fixing.
//
// Concurrency: an Engine mutates only itself during Run (worker goroutines
// write disjoint slice elements, joined before Run returns), and a Results
// snapshot is immutable once returned — no lazy caches, no package-level
// state. Concurrent readers of one Results (slacks, regions) need no
// locking; the parallel composition pipeline shares a single snapshot
// across all workers. Engines on the same Design must not run while the
// Design is being edited, and an Engine itself is not safe for concurrent
// use.
package sta

import (
	"math"

	"repro/internal/engine"
	"repro/internal/netlist"
)

// Results carries one timing analysis snapshot. Pin-indexed slices are
// addressed by netlist.PinID.
type Results struct {
	Arrival  []float64
	Required []float64
	Slack    []float64

	// WNS is the worst endpoint slack (0 when nothing fails and min slack
	// is positive — we report the true minimum, which may be positive).
	WNS float64
	// TNS is the sum of negative endpoint slacks (a non-positive number).
	TNS float64
	// FailingEndpoints counts endpoints with negative slack.
	FailingEndpoints int
	// TotalEndpoints counts all checked endpoints.
	TotalEndpoints int

	// ClockArrival is the propagated clock arrival (including useful skew)
	// at each register, keyed by instance ID.
	ClockArrival map[netlist.InstID]float64
}

// PinSlack returns the slack at a pin (+Inf for unconstrained pins).
func (r *Results) PinSlack(id netlist.PinID) float64 {
	if int(id) >= len(r.Slack) {
		return math.Inf(1)
	}
	return r.Slack[id]
}

// RunStats counts how the engine satisfied its Run calls; used by tests
// and benchmarks to assert the incremental path actually engaged.
type RunStats struct {
	// FullBuilds counts runs that rebuilt the timing graph from scratch.
	FullBuilds int
	// IncrementalRuns counts runs served by cone re-propagation over the
	// retained graph.
	IncrementalRuns int
	// LastConePins is the number of pins re-evaluated by the most recent
	// incremental run (0 after a full build).
	LastConePins int
	// LastKind is "full" or "incremental" for the most recent run.
	LastKind string
}

// Engine runs timing analysis on a design. The engine may be re-run after
// netlist edits — it watches the design's edit epoch and reuses its cached
// timing graph whenever the edits since the previous run were
// non-structural. Per-register useful skews persist across runs and
// survive register merges only if re-applied by the caller.
type Engine struct {
	d       *netlist.Design
	skew    map[netlist.InstID]float64
	ideal   bool
	workers int

	// Cached analysis state, valid while `valid` is true.
	g          *timingGraph
	cursor     uint64 // design epoch the cache reflects
	timingSnap netlist.TimingSpec
	idealSnap  bool
	valid      bool

	arr, req, slack []float64
	seedArr         []float64 // launch seed per pin (negInf when unseeded)
	endReq          []float64 // endpoint required per pin (+Inf when none)
	effClk          map[netlist.InstID]float64
	endpoints       []int32 // endpoint pins in deterministic check order

	// Scratch for incremental runs (generation-stamped marks).
	gen                    uint32
	pinMark, slackMark     []uint32
	fwdQueued, bwdQueued   []uint32
	fwdBuckets, bwdBuckets [][]int32
	slackDirty             []int32
	stats                  RunStats

	// Changed-slack register feed (see slacklog.go). prevSlack ping-pongs
	// with slack across full runs so the old values survive the rebuild
	// long enough to diff.
	slog      slackLog
	prevSlack []float64
}

// New returns an analyzer for the design.
func New(d *netlist.Design) *Engine {
	return &Engine{d: d, skew: map[netlist.InstID]float64{}}
}

// SetIdealClocks selects ideal-clock mode: every register's clock arrives
// at time zero (plus its useful skew), regardless of the clock network.
// This is how pre-CTS timing is analyzed in practice — before buffering,
// the raw clock nets are giant stars whose RC delay is meaningless.
// Propagated clocks (the default) follow buffers and gates.
func (e *Engine) SetIdealClocks(on bool) { e.ideal = on }

// SetWorkers bounds the worker pool the levelized arrival/required sweeps
// fan out across, following the composition pipeline's convention: 0 (the
// default) means one worker per available CPU, 1 the sequential path.
// Results are bit-identical for any setting.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// SetSkew assigns a useful clock skew (ps, positive = later clock) to a
// register instance. The next Run picks the change up incrementally.
func (e *Engine) SetSkew(id netlist.InstID, ps float64) {
	if ps == 0 {
		delete(e.skew, id)
		return
	}
	e.skew[id] = ps
}

// Skew returns the useful skew currently assigned to a register.
func (e *Engine) Skew(id netlist.InstID) float64 { return e.skew[id] }

// ClearSkews removes all useful-skew assignments.
func (e *Engine) ClearSkews() { e.skew = map[netlist.InstID]float64{} }

// Invalidate drops the cached timing graph, forcing the next Run to
// rebuild from scratch. Needed only when the design was edited behind the
// netlist API's back (or for benchmarking the full path).
func (e *Engine) Invalidate() { e.valid = false }

// Stats reports how past Run calls were satisfied.
func (e *Engine) Stats() RunStats { return e.stats }

// Summary reports the unified retained-engine counters (engine.Retained):
// incremental runs are deltas, full graph builds are rebuilds.
func (e *Engine) Summary() engine.Summary {
	return engine.Summary{
		Updates:  e.stats.FullBuilds + e.stats.IncrementalRuns,
		Deltas:   e.stats.IncrementalRuns,
		Rebuilds: e.stats.FullBuilds,
		LastKind: e.stats.LastKind,
	}
}

var _ engine.Retained = (*Engine)(nil)

const negInf = math.MaxFloat64 * -1

// Run performs a timing analysis of the design's current state. The first
// run (and any run after a structural or untracked edit) builds the full
// graph; runs after parametric edits re-propagate only the affected cone.
// Either way the returned snapshot is bit-identical to a from-scratch
// analysis.
func (e *Engine) Run() (*Results, error) {
	d := e.d
	structural := !e.valid ||
		d.StructuralEpoch() > e.cursor ||
		d.PinSpace() != e.g.nPins ||
		d.Timing != e.timingSnap
	var touched []netlist.InstID
	if !structural {
		var complete bool
		touched, complete = d.TouchedSince(e.cursor)
		if !complete {
			structural = true
		} else if len(touched)*4 > d.NumInsts() {
			// A huge touched set re-propagates most of the graph anyway;
			// the plain full sweep is cheaper than worklist bookkeeping.
			structural = true
		}
	}

	runSeq := e.slog.seq + 1
	var err error
	if structural {
		err = e.runFull(runSeq)
	} else {
		err = e.runIncremental(touched, runSeq)
	}
	if err != nil {
		e.valid = false
		return nil, err
	}
	e.slog.seq = runSeq
	e.cursor = d.Epoch()
	e.timingSnap = d.Timing
	e.idealSnap = e.ideal
	e.valid = true
	return e.snapshot(), nil
}

// runFull rebuilds the graph, seeds and endpoint constraints, then runs
// the two levelized sweeps over everything.
func (e *Engine) runFull(seq uint64) error {
	d := e.d
	g, err := buildGraph(d)
	if err != nil {
		return err
	}
	e.g = g
	n := g.nPins
	// Keep the previous run's slacks alive for the changed-slack diff; the
	// buffers ping-pong so resizeFloats below can't clobber the old values.
	canDiff := e.valid
	if canDiff {
		e.prevSlack, e.slack = e.slack, e.prevSlack
	}
	e.arr = resizeFloats(e.arr, n)
	e.req = resizeFloats(e.req, n)
	e.slack = resizeFloats(e.slack, n)
	e.seedArr = resizeFloats(e.seedArr, n)
	e.endReq = resizeFloats(e.endReq, n)
	for i := 0; i < n; i++ {
		e.seedArr[i] = negInf
		e.endReq[i] = math.Inf(1)
	}

	clk, err := e.clockArrivals()
	if err != nil {
		return err
	}
	e.effClk = make(map[netlist.InstID]float64, len(clk))
	e.endpoints = e.endpoints[:0]
	period := d.Timing.ClockPeriod

	d.Insts(func(in *netlist.Inst) {
		switch in.Kind {
		case netlist.KindPort:
			if p := d.OutPin(in); p != nil && p.Net != netlist.NoID && !d.Net(p.Net).IsClock {
				e.seedArr[p.ID] = d.Timing.InputDelay
			}
			if p := d.FindPin(in, netlist.PinData, 0); p != nil && p.Dir == netlist.DirIn && p.Net != netlist.NoID {
				e.endReq[p.ID] = period - d.Timing.OutputDelay
				e.endpoints = append(e.endpoints, int32(p.ID))
			}
		case netlist.KindReg:
			eff := clk[in.ID] + e.skew[in.ID]
			e.effClk[in.ID] = eff
			e.seedRegister(in, eff, nil)
			for b := 0; b < in.Bits(); b++ {
				dp := d.DPin(in, b)
				if dp == nil || dp.Net == netlist.NoID {
					continue
				}
				e.endReq[dp.ID] = eff + period - in.RegCell.Setup
				e.endpoints = append(e.endpoints, int32(dp.ID))
			}
		}
	})

	workers := e.workers
	copy(e.arr, e.seedArr)
	g.forward(e.arr, e.seedArr, workers)
	copy(e.req, e.endReq)
	g.backward(e.req, e.endReq, workers)
	parallelChunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.slack[i] = slackOf(e.arr[i], e.req[i])
		}
	})
	if canDiff {
		e.diffSlackRegs(e.prevSlack, seq)
	} else {
		e.slog.reset(seq)
	}
	e.stats.FullBuilds++
	e.stats.LastConePins = 0
	e.stats.LastKind = "full"
	return nil
}

// seedRegister writes the launch seeds (clk→Q arrival) for every connected
// Q pin of the register. When fwd is non-nil (incremental runs), pins
// whose seed changed are pushed onto the forward worklist.
func (e *Engine) seedRegister(in *netlist.Inst, eff float64, fwd *worklist) {
	d := e.d
	cell := in.RegCell
	for b := 0; b < cell.Bits; b++ {
		q := d.QPin(in, b)
		if q == nil || q.Net == netlist.NoID {
			continue
		}
		load := d.NetLoadCap(d.Net(q.Net))
		seed := eff + cell.Intrinsic + cell.DriveRes*load
		if e.seedArr[q.ID] != seed {
			e.seedArr[q.ID] = seed
			if fwd != nil {
				fwd.push(int32(q.ID))
			}
		}
	}
}

func slackOf(arr, req float64) float64 {
	if arr == negInf || math.IsInf(req, 1) {
		return math.Inf(1)
	}
	return req - arr
}

// snapshot assembles an immutable Results from the engine's working state,
// recomputing the endpoint statistics in the deterministic endpoint order
// (the sum in TNS makes the order observable in the last bits).
func (e *Engine) snapshot() *Results {
	res := &Results{
		Arrival:      append([]float64(nil), e.arr...),
		Required:     append([]float64(nil), e.req...),
		Slack:        append([]float64(nil), e.slack...),
		ClockArrival: make(map[netlist.InstID]float64, len(e.effClk)),
		WNS:          math.Inf(1),
	}
	for id, v := range e.effClk {
		res.ClockArrival[id] = v
	}
	for _, pin := range e.endpoints {
		if e.arr[pin] == negInf {
			continue // unreached endpoint: unconstrained path
		}
		s := e.slack[pin]
		if math.IsInf(s, 1) {
			continue
		}
		res.TotalEndpoints++
		if s < res.WNS {
			res.WNS = s
		}
		if s < 0 {
			res.TNS += s
			res.FailingEndpoints++
		}
	}
	if res.TotalEndpoints == 0 {
		res.WNS = 0
	}
	return res
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// RegDSlack returns the worst slack across the register's connected D pins
// (+Inf when none are constrained).
func RegDSlack(d *netlist.Design, r *Results, in *netlist.Inst) float64 {
	worst := math.Inf(1)
	for b := 0; b < in.Bits(); b++ {
		p := d.DPin(in, b)
		if p == nil || p.Net == netlist.NoID {
			continue
		}
		if s := r.PinSlack(p.ID); s < worst {
			worst = s
		}
	}
	return worst
}

// RegQSlack returns the worst slack across the register's connected Q pins
// (+Inf when none are constrained).
func RegQSlack(d *netlist.Design, r *Results, in *netlist.Inst) float64 {
	worst := math.Inf(1)
	for b := 0; b < in.Bits(); b++ {
		p := d.QPin(in, b)
		if p == nil || p.Net == netlist.NoID {
			continue
		}
		if s := r.PinSlack(p.ID); s < worst {
			worst = s
		}
	}
	return worst
}

// AssignUsefulSkew computes and applies the local useful-skew move for the
// given registers: the skew that balances each register's D-side and Q-side
// slacks, clamped to ±maxSkew. It returns the number of registers whose
// worst slack improved. The paper applies this to newly composed MBRs
// (Fig. 4) — their constituents were timing compatible, so one shared skew
// helps all bits.
func (e *Engine) AssignUsefulSkew(regs []*netlist.Inst, res *Results, maxSkew float64) int {
	improved := 0
	for _, in := range regs {
		ds := RegDSlack(e.d, res, in)
		qs := RegQSlack(e.d, res, in)
		if math.IsInf(ds, 1) || math.IsInf(qs, 1) {
			continue
		}
		// min(ds+s, qs-s) is maximized at s = (qs-ds)/2.
		s := (qs - ds) / 2
		if s > maxSkew {
			s = maxSkew
		}
		if s < -maxSkew {
			s = -maxSkew
		}
		before := math.Min(ds, qs)
		after := math.Min(ds+s, qs-s)
		if after > before+1e-12 {
			e.SetSkew(in.ID, e.skew[in.ID]+s)
			improved++
		}
	}
	return improved
}
