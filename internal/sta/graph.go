package sta

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/netlist"
)

// timingGraph is the cached, slice-backed data-path timing graph: a
// compressed-sparse-row (CSR) arc array in both directions plus a
// levelized topological order. It is built once per structural netlist
// change and retained on the Engine across runs; parametric edits only
// rewrite arcDelay entries in place.
//
// Arcs are the same set the map-based builder used to produce: net arcs
// (driver→sink, wire delay ∝ Manhattan pin distance) and combinational
// cell arcs (input→output, intrinsic + driveRes × load). Register and
// clock pins carry no data arcs.
type timingGraph struct {
	nPins int

	// Forward CSR: out-arcs of pin u are indices arcOff[u]..arcOff[u+1]
	// into arcFrom/arcTo/arcDelay.
	arcOff   []int32
	arcFrom  []int32
	arcTo    []int32
	arcDelay []float64

	// Reverse CSR: revArc[revOff[v]..revOff[v+1]] are forward-arc indices
	// of the in-arcs of pin v, sorted by forward-arc index (hence by
	// source pin) for deterministic iteration.
	revOff []int32
	revArc []int32

	// Levelization of the involved pins (those touching any arc):
	// level[v] == -1 for uninvolved pins, otherwise the longest-path depth
	// from any zero-indegree involved pin. Every arc goes from a strictly
	// lower to a strictly higher level, which is what makes the per-level
	// sweeps safely parallel.
	level     []int32
	levelOff  []int32 // len numLevels+1; offsets into levelPins
	levelPins []int32 // involved pins grouped by level, ascending pin ID
	numLevels int
}

// buildGraph constructs the CSR graph and its levelization for the current
// netlist state. A combinational cycle is an error.
func buildGraph(d *netlist.Design) (*timingGraph, error) {
	n := d.PinSpace()
	g := &timingGraph{nPins: n}

	// Pass 1: out-degree per pin.
	outdeg := make([]int32, n)
	d.Nets(func(nt *netlist.Net) {
		if nt.IsClock || nt.Driver == netlist.NoID {
			return
		}
		outdeg[nt.Driver] += int32(len(nt.Sinks))
	})
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindComb {
			return
		}
		out := d.OutPin(in)
		if out == nil || out.Net == netlist.NoID {
			return
		}
		for _, pid := range in.Pins {
			p := d.Pin(pid)
			if p.Dir == netlist.DirIn && p.Net != netlist.NoID {
				outdeg[pid]++
			}
		}
	})

	g.arcOff = make([]int32, n+1)
	var m int32
	for i := 0; i < n; i++ {
		g.arcOff[i] = m
		m += outdeg[i]
	}
	g.arcOff[n] = m
	g.arcFrom = make([]int32, m)
	g.arcTo = make([]int32, m)
	g.arcDelay = make([]float64, m)

	// Pass 2: fill arcs with their delays. The delay expressions are
	// shared with the incremental recompute path (wireArcDelay,
	// cellArcDelay) so full and incremental runs produce bit-identical
	// floats.
	cursor := make([]int32, n)
	copy(cursor, g.arcOff[:n])
	addArc := func(from, to netlist.PinID, delay float64) {
		k := cursor[from]
		cursor[from]++
		g.arcFrom[k] = int32(from)
		g.arcTo[k] = int32(to)
		g.arcDelay[k] = delay
	}
	d.Nets(func(nt *netlist.Net) {
		if nt.IsClock || nt.Driver == netlist.NoID {
			return
		}
		dp := d.Pin(nt.Driver)
		for _, s := range nt.Sinks {
			addArc(dp.ID, s, wireArcDelay(d, dp, d.Pin(s)))
		}
	})
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindComb {
			return
		}
		out := d.OutPin(in)
		if out == nil || out.Net == netlist.NoID {
			return
		}
		delay := cellArcDelay(d, in, out)
		for _, pid := range in.Pins {
			p := d.Pin(pid)
			if p.Dir == netlist.DirIn && p.Net != netlist.NoID {
				addArc(pid, out.ID, delay)
			}
		}
	})

	// Reverse CSR.
	indeg := make([]int32, n)
	for k := int32(0); k < m; k++ {
		indeg[g.arcTo[k]]++
	}
	g.revOff = make([]int32, n+1)
	var r int32
	for i := 0; i < n; i++ {
		g.revOff[i] = r
		r += indeg[i]
	}
	g.revOff[n] = r
	g.revArc = make([]int32, m)
	rcur := make([]int32, n)
	copy(rcur, g.revOff[:n])
	for k := int32(0); k < m; k++ {
		v := g.arcTo[k]
		g.revArc[rcur[v]] = k
		rcur[v]++
	}

	// Levelize (Kahn over in-degrees, recording longest-path depth).
	g.level = make([]int32, n)
	involved := 0
	for v := 0; v < n; v++ {
		if outdeg[v] > 0 || indeg[v] > 0 {
			g.level[v] = 0
			involved++
		} else {
			g.level[v] = -1
		}
	}
	remaining := make([]int32, n)
	copy(remaining, indeg)
	queue := make([]int32, 0, involved)
	for v := 0; v < n; v++ {
		if g.level[v] == 0 && remaining[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	ordered := 0
	maxLevel := int32(0)
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ordered++
		lvl := g.level[u] + 1
		for k := g.arcOff[u]; k < g.arcOff[u+1]; k++ {
			v := g.arcTo[k]
			if lvl > g.level[v] {
				g.level[v] = lvl
				if lvl > maxLevel {
					maxLevel = lvl
				}
			}
			remaining[v]--
			if remaining[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if ordered != involved {
		return nil, fmt.Errorf("sta: combinational cycle detected (%d of %d pins ordered)", ordered, involved)
	}
	g.numLevels = int(maxLevel) + 1
	if involved == 0 {
		g.numLevels = 0
	}

	// Bucket the involved pins by level, ascending pin ID within a level
	// (counting sort keyed on level preserves pin order).
	counts := make([]int32, g.numLevels+1)
	for v := 0; v < n; v++ {
		if g.level[v] >= 0 {
			counts[g.level[v]]++
		}
	}
	g.levelOff = make([]int32, g.numLevels+1)
	var off int32
	for l := 0; l < g.numLevels; l++ {
		g.levelOff[l] = off
		off += counts[l]
	}
	g.levelOff[g.numLevels] = off
	g.levelPins = make([]int32, involved)
	lcur := make([]int32, g.numLevels)
	copy(lcur, g.levelOff[:g.numLevels])
	for v := 0; v < n; v++ {
		if l := g.level[v]; l >= 0 {
			g.levelPins[lcur[l]] = int32(v)
			lcur[l]++
		}
	}
	return g, nil
}

// wireArcDelay is the net-arc (driver→sink) propagation delay.
func wireArcDelay(d *netlist.Design, from, to *netlist.Pin) float64 {
	return d.Timing.WireDelayPerDBU * float64(d.PinPos(from).ManhattanDist(d.PinPos(to)))
}

// cellArcDelay is the combinational cell-arc (any input→output) delay for
// the instance's current output load.
func cellArcDelay(d *netlist.Design, in *netlist.Inst, out *netlist.Pin) float64 {
	return in.Comb.Intrinsic + in.Comb.DriveRes*d.NetLoadCap(d.Net(out.Net))
}

// pullArrival recomputes the arrival at pin v from its seed and its
// in-arcs. Max is order-independent over floats, so the result does not
// depend on iteration order or on which worker computes it.
func (g *timingGraph) pullArrival(v int32, arr, seed []float64) float64 {
	best := seed[v]
	for k := g.revOff[v]; k < g.revOff[v+1]; k++ {
		a := g.revArc[k]
		if au := arr[g.arcFrom[a]]; au != negInf {
			if c := au + g.arcDelay[a]; c > best {
				best = c
			}
		}
	}
	return best
}

// pullRequired recomputes the required time at pin u from its endpoint
// constraint and its out-arcs.
func (g *timingGraph) pullRequired(u int32, req, endReq []float64) float64 {
	best := endReq[u]
	for k := g.arcOff[u]; k < g.arcOff[u+1]; k++ {
		if rv := req[g.arcTo[k]]; !isPosInf(rv) {
			if c := rv - g.arcDelay[k]; c < best {
				best = c
			}
		}
	}
	return best
}

// forward runs the full arrival sweep: arr must be pre-initialized to the
// seed values; levels are processed in ascending order, pins within a
// level in parallel. Every arc goes level→strictly-higher-level, so within
// one level no pin reads another's fresh value — the sweep is race-free
// and its result independent of the worker count.
func (g *timingGraph) forward(arr, seed []float64, workers int) {
	for l := 1; l < g.numLevels; l++ {
		pins := g.levelPins[g.levelOff[l]:g.levelOff[l+1]]
		parallelChunks(len(pins), workers, func(lo, hi int) {
			for _, v := range pins[lo:hi] {
				arr[v] = g.pullArrival(v, arr, seed)
			}
		})
	}
}

// backward runs the full required sweep: req must be pre-initialized to
// the endpoint required times; levels are processed in descending order.
func (g *timingGraph) backward(req, endReq []float64, workers int) {
	for l := g.numLevels - 2; l >= 0; l-- {
		pins := g.levelPins[g.levelOff[l]:g.levelOff[l+1]]
		parallelChunks(len(pins), workers, func(lo, hi int) {
			for _, u := range pins[lo:hi] {
				req[u] = g.pullRequired(u, req, endReq)
			}
		})
	}
}

const (
	// parallelLevelThreshold is the minimum level population worth fanning
	// out; below it the goroutine overhead dominates.
	parallelLevelThreshold = 512
	// minParallelChunk bounds how finely a level is split.
	minParallelChunk = 256
)

// parallelChunks splits [0,n) into contiguous chunks across the worker
// pool, following the Workers convention of the composition pipeline
// (internal/core): <=0 means one worker per available CPU, 1 the
// sequential path.
func parallelChunks(n, workers int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < parallelLevelThreshold {
		f(0, n)
		return
	}
	if maxChunks := n / minParallelChunk; workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	size := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func isPosInf(v float64) bool { return math.IsInf(v, 1) }
