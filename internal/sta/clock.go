package sta

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// clockArrivals propagates clock delay from clock sources (ports or
// undriven clock nets, which are treated as ideal) through clock buffers
// and gates — chains of gates compose — to every register's clock pin. It
// is recomputed from the live netlist on every Run: its cost is linear in
// the clock network (memoized per net), which keeps incremental runs
// correct under any clock-side edit (CTS teardown, buffer moves, mode
// switches) without per-edit invalidation bookkeeping.
func (e *Engine) clockArrivals() (map[netlist.InstID]float64, error) {
	d := e.d
	arr := map[netlist.InstID]float64{}
	if e.ideal {
		d.Insts(func(in *netlist.Inst) {
			if in.Kind == netlist.KindReg {
				arr[in.ID] = 0
			}
		})
		return arr, nil
	}

	// netArrival computes arrival at a clock net's driver output,
	// memoized; ideal (0) at roots.
	memo := map[netlist.NetID]float64{}
	var netArrival func(id netlist.NetID, depth int) (float64, error)
	netArrival = func(id netlist.NetID, depth int) (float64, error) {
		if v, ok := memo[id]; ok {
			return v, nil
		}
		if depth > 10000 {
			return 0, fmt.Errorf("sta: clock network loop on net %d", id)
		}
		n := d.Net(id)
		if n == nil || n.Driver == netlist.NoID {
			memo[id] = 0 // ideal clock root
			return 0, nil
		}
		drv := d.Pin(n.Driver)
		in := d.Inst(drv.Inst)
		if in == nil {
			memo[id] = 0
			return 0, nil
		}
		switch in.Kind {
		case netlist.KindPort:
			memo[id] = 0
			return 0, nil
		case netlist.KindClockBuf, netlist.KindClockGate:
			// Arrival at the buffer input net + buffer delay.
			var inNet netlist.NetID = netlist.NoID
			for _, pid := range in.Pins {
				p := d.Pin(pid)
				if p.Dir == netlist.DirIn && p.Net != netlist.NoID {
					pn := d.Net(p.Net)
					if pn.IsClock || p.Kind == netlist.PinData {
						inNet = p.Net
						break
					}
				}
			}
			base := 0.0
			if inNet != netlist.NoID {
				b, err := netArrival(inNet, depth+1)
				if err != nil {
					return 0, err
				}
				// Wire delay from upstream driver to this buffer's input
				// pin. When the netlist is inconsistent and the buffer has
				// no sink pin on its own input net, the distance is
				// explicitly zero rather than measured to a made-up pin.
				up := d.Net(inNet)
				if up.Driver != netlist.NoID {
					if spos, ok := netSinkPosOnInst(d, up, in); ok {
						b += d.Timing.WireDelayPerDBU *
							float64(d.PinPos(d.Pin(up.Driver)).ManhattanDist(spos))
					}
				}
				base = b
			}
			load := d.NetLoadCap(n)
			v := base + in.Comb.Intrinsic + in.Comb.DriveRes*load
			memo[id] = v
			return v, nil
		default:
			memo[id] = 0
			return 0, nil
		}
	}

	var firstErr error
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindReg || firstErr != nil {
			return
		}
		cp := d.ClockPin(in)
		if cp == nil || cp.Net == netlist.NoID {
			arr[in.ID] = 0
			return
		}
		base, err := netArrival(cp.Net, 0)
		if err != nil {
			firstErr = err
			return
		}
		n := d.Net(cp.Net)
		wire := 0.0
		if n.Driver != netlist.NoID {
			wire = d.Timing.WireDelayPerDBU *
				float64(d.PinPos(d.Pin(n.Driver)).ManhattanDist(d.PinPos(cp)))
		}
		arr[in.ID] = base + wire
	})
	return arr, firstErr
}

// netSinkPosOnInst returns the position of the net's sink pin on the given
// instance. ok is false when the net has no sink there — a broken
// cross-reference; callers must treat the associated wire distance as zero
// instead of inventing a pin position (the old fallback fabricated a
// zero-offset pin at the instance origin, silently measuring a wrong wire
// delay).
func netSinkPosOnInst(d *netlist.Design, n *netlist.Net, in *netlist.Inst) (geom.Point, bool) {
	for _, s := range n.Sinks {
		p := d.Pin(s)
		if p.Inst == in.ID {
			return d.PinPos(p), true
		}
	}
	return geom.Point{}, false
}
