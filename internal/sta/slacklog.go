package sta

import (
	"repro/internal/netlist"
)

// The slack log is the engine's outward-facing dirty-node feed: a bounded
// ring of register instances whose D/Q pin slacks changed, stamped with the
// run that changed them. Consumers that cache per-register timing data
// (the compatibility-graph node phase) read the ring with a cursor instead
// of re-deriving every register's slacks after each run, mirroring the
// netlist's touched-instance log. Incremental runs derive the entries from
// the re-propagated cone (the slack-dirty worklist); full runs diff the new
// slack array against the previous run's. Either way an entry is recorded
// only when a pin's slack *value* changed, so the feed is exact, not
// conservative. When the ring overflows — or after the first run, when
// there is no previous state to diff against — the log resets and reports
// itself incomplete, and consumers fall back to their own full recompute.

// defaultSlackLogCap bounds the slack log ring. Matches the netlist
// touched-log default: far above any ≤1%-edit cone, far below design size.
const defaultSlackLogCap = 4096

type slackEntry struct {
	seq uint64
	id  netlist.InstID
}

type slackLog struct {
	seq   uint64 // sequence number of the most recent completed run
	base  uint64 // ring holds the complete history for cursors >= base
	ring  []slackEntry
	cap   int
	noted map[netlist.InstID]uint64 // per-run dedup: last seq an inst was noted
}

func (l *slackLog) capacity() int {
	if l.cap > 0 {
		return l.cap
	}
	return defaultSlackLogCap
}

// note records a register whose slack changed during run seq.
func (l *slackLog) note(id netlist.InstID, seq uint64) {
	if l.noted == nil {
		l.noted = map[netlist.InstID]uint64{}
	}
	if l.noted[id] == seq {
		return
	}
	l.noted[id] = seq
	if len(l.ring) >= l.capacity() {
		l.reset(seq)
		return
	}
	l.ring = append(l.ring, slackEntry{seq: seq, id: id})
}

// reset drops the ring; history is complete only from seq onward.
func (l *slackLog) reset(seq uint64) {
	l.ring = l.ring[:0]
	l.base = seq
}

// SlackSeq returns the monotonic count of completed Run calls; pass it to
// RegsWithChangedSlack as the cursor for a later read.
func (e *Engine) SlackSeq() uint64 { return e.slog.seq }

// SetSlackLogCap bounds the changed-slack ring (0 restores the default).
// Shrinking an over-full ring drops it, so the next read is incomplete.
func (e *Engine) SetSlackLogCap(n int) {
	e.slog.cap = n
	if n > 0 && len(e.slog.ring) > n {
		e.slog.reset(e.slog.seq)
	}
}

// RegsWithChangedSlack returns the registers whose D/Q pin slacks changed
// in any run after the cursor (a past SlackSeq value). The second result
// reports whether the log covers the whole interval; when false (first
// run, engine invalidation, or ring overflow) the caller must fall back to
// recomputing its per-register state from scratch. Entries may repeat
// across runs; callers dedup. The returned slice aliases the engine's ring
// — read it before the next Run.
func (e *Engine) RegsWithChangedSlack(cursor uint64) ([]netlist.InstID, bool) {
	l := &e.slog
	if cursor < l.base {
		return nil, false
	}
	if cursor >= l.seq {
		return nil, true
	}
	// Entries are appended in run order; find the first past the cursor.
	lo, hi := 0, len(l.ring)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.ring[mid].seq <= cursor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	out := make([]netlist.InstID, 0, len(l.ring)-lo)
	for _, en := range l.ring[lo:] {
		out = append(out, en.id)
	}
	return out, true
}

// noteSlackPin records the pin's owning instance in the slack log when it
// is a register (only registers carry retained per-node timing data).
func (e *Engine) noteSlackPin(v int32, seq uint64) {
	p := e.d.Pin(netlist.PinID(v))
	if p == nil {
		return
	}
	if in := e.d.Inst(p.Inst); in != nil && in.Kind == netlist.KindReg {
		e.slog.note(in.ID, seq)
	}
}

// diffSlackRegs compares the freshly computed slack array against the
// previous run's, logging every register with a changed pin slack. Used on
// full runs, where no worklist tells us what moved; the pass is O(pins),
// which the full path already is.
func (e *Engine) diffSlackRegs(prev []float64, seq uint64) {
	n := len(e.slack)
	for i := 0; i < n; i++ {
		if i >= len(prev) || e.slack[i] != prev[i] {
			e.noteSlackPin(int32(i), seq)
		}
	}
}
