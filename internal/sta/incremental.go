package sta

import (
	"repro/internal/netlist"
)

// Incremental re-analysis: after parametric edits (moves, resizes, skew
// and clock changes) the cached graph topology is still valid — only arc
// delays, launch seeds and endpoint constraints in the neighbourhood of
// the touched instances may differ. runIncremental
//
//  1. recomputes clock arrivals (cheap, always) and diffs them against the
//     cached per-register effective arrivals, catching skew edits, mode
//     switches and any clock-network change without fine-grained tracking;
//  2. expands the touched instances to the pin set whose in-arc delays or
//     seeds can have changed: their own pins plus every pin of the
//     adjacent data nets (wire arcs see the moved pin; cell arcs and
//     launch seeds see the changed net load);
//  3. rewrites the changed arc delays in place, seeding a forward and a
//     backward worklist;
//  4. re-propagates level by level — ascending for arrivals, descending
//     for required times — pushing successors/predecessors only when a
//     value actually changed, so the work is proportional to the true
//     fanout cone of the edit.
//
// Each pin's value is recomputed by the same pull reduction the full sweep
// uses, so the arrays stay bit-identical to a from-scratch run.

// worklist is a level-bucketed pin queue with generation-stamped dedup.
type worklist struct {
	g       *timingGraph
	buckets [][]int32
	queued  []uint32
	gen     uint32
	pushes  int
}

func (w *worklist) push(v int32) {
	if w.queued[v] == w.gen {
		return
	}
	w.queued[v] = w.gen
	l := w.g.level[v]
	if l < 0 {
		l = 0 // seeded pins outside the arc graph still get re-evaluated
	}
	w.buckets[l] = append(w.buckets[l], v)
	w.pushes++
}

// prepare readies the engine's incremental scratch for a new run.
func (e *Engine) prepare() (fwd, bwd *worklist) {
	n := e.g.nPins
	e.gen++
	if len(e.pinMark) < n {
		e.pinMark = make([]uint32, n)
		e.slackMark = make([]uint32, n)
		e.fwdQueued = make([]uint32, n)
		e.bwdQueued = make([]uint32, n)
	}
	nb := e.g.numLevels
	if nb == 0 {
		nb = 1
	}
	if len(e.fwdBuckets) < nb {
		e.fwdBuckets = make([][]int32, nb)
		e.bwdBuckets = make([][]int32, nb)
	}
	for l := range e.fwdBuckets {
		e.fwdBuckets[l] = e.fwdBuckets[l][:0]
		e.bwdBuckets[l] = e.bwdBuckets[l][:0]
	}
	e.slackDirty = e.slackDirty[:0]
	fwd = &worklist{g: e.g, buckets: e.fwdBuckets, queued: e.fwdQueued, gen: e.gen}
	bwd = &worklist{g: e.g, buckets: e.bwdBuckets, queued: e.bwdQueued, gen: e.gen}
	return fwd, bwd
}

func (e *Engine) markSlackDirty(v int32) {
	if e.slackMark[v] != e.gen {
		e.slackMark[v] = e.gen
		e.slackDirty = append(e.slackDirty, v)
	}
}

// runIncremental re-analyzes after the given touched instances' parametric
// edits, reusing the cached graph.
func (e *Engine) runIncremental(touched []netlist.InstID, seq uint64) error {
	d, g := e.d, e.g
	fwd, bwd := e.prepare()

	// 1. Clock arrival + skew diff → registers needing re-seed.
	clk, err := e.clockArrivals()
	if err != nil {
		return err
	}
	dirtyRegs := map[netlist.InstID]bool{}
	newEff := make(map[netlist.InstID]float64, len(clk))
	for id, v := range clk {
		eff := v + e.skew[id]
		newEff[id] = eff
		if old, ok := e.effClk[id]; !ok || old != eff {
			dirtyRegs[id] = true
		}
	}
	e.effClk = newEff

	// 2. Touched instances → pins whose in-arc delays may have changed.
	var marked []int32
	mark := func(pid netlist.PinID) {
		if e.pinMark[pid] != e.gen {
			e.pinMark[pid] = e.gen
			marked = append(marked, int32(pid))
		}
	}
	for _, id := range touched {
		in := d.Inst(id)
		if in == nil {
			continue // removed without ever being connected
		}
		if in.Kind == netlist.KindReg {
			dirtyRegs[id] = true
		}
		for _, pid := range in.Pins {
			mark(pid)
			p := d.Pin(pid)
			if p.Net == netlist.NoID {
				continue
			}
			nt := d.Net(p.Net)
			if nt == nil || nt.IsClock {
				continue // clock nets carry no data arcs; handled by the diff above
			}
			if nt.Driver != netlist.NoID {
				mark(nt.Driver)
			}
			for _, s := range nt.Sinks {
				mark(s)
			}
		}
	}

	// 3. Rewrite changed arc delays; queue affected endpoints of each arc.
	for _, v := range marked {
		p := d.Pin(netlist.PinID(v))
		if in := d.Inst(p.Inst); in != nil && in.Kind == netlist.KindReg && p.Kind == netlist.PinOut {
			// A register launch pin whose net geometry/caps changed: the
			// seed's load term moved even though the register itself may
			// be untouched.
			dirtyRegs[p.Inst] = true
		}
		e.recomputeInArcDelays(v, fwd, bwd)
	}
	period := d.Timing.ClockPeriod
	for id := range dirtyRegs {
		in := d.Inst(id)
		if in == nil {
			continue
		}
		eff := e.effClk[id]
		e.seedRegister(in, eff, fwd)
		for b := 0; b < in.Bits(); b++ {
			dp := d.DPin(in, b)
			if dp == nil || dp.Net == netlist.NoID {
				continue
			}
			req := eff + period - in.RegCell.Setup
			if e.endReq[dp.ID] != req {
				e.endReq[dp.ID] = req
				bwd.push(int32(dp.ID))
			}
		}
	}

	// 4. Cone sweeps. Forward ascends levels; pushes always target
	// strictly higher levels, so each bucket is complete when reached.
	for l := 0; l < len(fwd.buckets); l++ {
		for _, v := range fwd.buckets[l] {
			nv := g.pullArrival(v, e.arr, e.seedArr)
			if nv == e.arr[v] {
				continue
			}
			e.arr[v] = nv
			e.markSlackDirty(v)
			for k := g.arcOff[v]; k < g.arcOff[v+1]; k++ {
				fwd.push(g.arcTo[k])
			}
		}
	}
	for l := len(bwd.buckets) - 1; l >= 0; l-- {
		for _, u := range bwd.buckets[l] {
			nv := g.pullRequired(u, e.req, e.endReq)
			if nv == e.req[u] {
				continue
			}
			e.req[u] = nv
			e.markSlackDirty(u)
			for k := g.revOff[u]; k < g.revOff[u+1]; k++ {
				bwd.push(g.arcFrom[g.revArc[k]])
			}
		}
	}
	for _, v := range e.slackDirty {
		nv := slackOf(e.arr[v], e.req[v])
		if nv != e.slack[v] {
			e.slack[v] = nv
			e.noteSlackPin(v, seq)
		}
	}

	e.stats.IncrementalRuns++
	e.stats.LastConePins = fwd.pushes + bwd.pushes
	e.stats.LastKind = "incremental"
	return nil
}

// recomputeInArcDelays refreshes the delays of every arc ending at pin v,
// queueing the arc's head (forward) and tail (backward) when a delay
// actually moved. The two delay kinds are distinguished by the head pin: a
// combinational output pin receives cell arcs (one shared delay from the
// instance's output load); every other pin receives wire arcs.
func (e *Engine) recomputeInArcDelays(v int32, fwd, bwd *worklist) {
	g, d := e.g, e.d
	lo, hi := g.revOff[v], g.revOff[v+1]
	if lo == hi {
		return
	}
	p := d.Pin(netlist.PinID(v))
	if in := d.Inst(p.Inst); in != nil && in.Kind == netlist.KindComb && p.Dir == netlist.DirOut {
		if p.Net == netlist.NoID {
			return // disconnection would have been structural; defensive
		}
		delay := cellArcDelay(d, in, p)
		for k := lo; k < hi; k++ {
			a := g.revArc[k]
			if g.arcDelay[a] != delay {
				g.arcDelay[a] = delay
				fwd.push(v)
				bwd.push(g.arcFrom[a])
			}
		}
		return
	}
	for k := lo; k < hi; k++ {
		a := g.revArc[k]
		delay := wireArcDelay(d, d.Pin(netlist.PinID(g.arcFrom[a])), p)
		if g.arcDelay[a] != delay {
			g.arcDelay[a] = delay
			fwd.push(v)
			bwd.push(g.arcFrom[a])
		}
	}
}
