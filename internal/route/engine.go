package route

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Stats reports how the engine's updates were satisfied and what they cost.
type Stats struct {
	// Updates counts Update calls that found the design edited; Cleans
	// counts calls with nothing to do.
	Updates int
	Cleans  int
	// Deltas counts updates served from the touched rings alone; Rebuilds
	// counts from-scratch re-estimates (first update, ring overflow,
	// Invalidate).
	Deltas   int
	Rebuilds int
	// NetsDelta and TilesTouched count the delta paths' actual work:
	// re-contributed nets and finalized grid edges. Last* are the most
	// recent delta's share.
	NetsDelta        int
	TilesTouched     int
	LastNetsDelta    int
	LastTilesTouched int
	// DeltaNS and RebuildNS accumulate wall time per phase; Last* are the
	// most recent update's share.
	DeltaNS       int64
	RebuildNS     int64
	LastDeltaNS   int64
	LastRebuildNS int64
	// LastKind names the most recent update's outcome: "clean", "delta" or
	// "rebuild". LastFallback names what forced the most recent rebuild
	// ("attach", "invalidate", "flow-ring-overflow", "cts-ring-overflow",
	// "core-changed").
	LastKind     string
	LastFallback string
}

// Engine is the retained incremental congestion engine: it keeps the
// G-cell demand map alive across design edits and serves per-tile demand
// deltas for the nets of touched instances — subtract the net's old bbox
// contribution, add the new one — instead of re-walking every net the way
// the batch Estimate does.
//
// It consumes the netlist's per-edit-class touched rings exactly like the
// other retained engines: flow-class edits (moves, resizes, merges) always
// matter; CTS-class edits (clock-buffer churn, leaf-net rewires) only
// matter when Options.IncludeClock is set, because CTS edits never change
// a signal net's pin set or member positions. An overflowed ring whose
// edits matter downgrades the update to a full rebuild — correctness never
// depends on a ring.
//
// Because demand is held in fixed-point (see demandUnit), delta retraction
// is exact and the engine's map is bit-identical to Estimate's at every
// sync point, which the oracle suite asserts across edit storms.
type Engine struct {
	d       *netlist.Design
	opts    Options
	workers int

	valid  bool
	cursor uint64
	core   geom.Rect
	g      grid

	hDem, vDem     []int64   // fixed-point demand per edge
	hFloat, vFloat []float64 // materialized tracks, mirrors hDem/vDem
	overflow       int       // maintained OverflowEdges count

	// snaps records, per instance, the nets its pins were on at the last
	// sync; nets records each contributing net's applied contribution so it
	// can be retracted exactly.
	snaps map[netlist.InstID][]netlist.NetID
	nets  map[netlist.NetID]contrib

	// gen/stamp arrays dedupe dirty edges within one update without
	// clearing O(grid) state: an edge is dirty iff its stamp equals gen.
	gen            uint32
	hStamp, vStamp []uint32
	hDirty, vDirty []int

	stats Stats
}

var _ engine.Retained = (*Engine)(nil)

// NewEngine returns a retained congestion engine for the design. The first
// Update (or OverflowEdges/Map call) performs the full baseline estimate.
func NewEngine(d *netlist.Design, opts Options) *Engine {
	if opts.GCell <= 0 {
		opts = DefaultOptions()
	}
	return &Engine{d: d, opts: opts}
}

// Options returns the engine's (normalized) options.
func (e *Engine) Options() Options { return e.opts }

// Stats returns the update counters.
func (e *Engine) Stats() Stats { return e.stats }

// Invalidate drops the retained state; the next update rebuilds from
// scratch. Required after edits that bypassed the netlist API.
func (e *Engine) Invalidate() { e.valid = false }

// SetWorkers bounds the rebuild's net-walk fan-out (deltas are cheap and
// stay sequential). Results are identical for any value; n <= 0 selects
// one worker per available CPU.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// Summary reports the uniform engine.Retained counters.
func (e *Engine) Summary() engine.Summary {
	return engine.Summary{
		Updates:  e.stats.Updates,
		Deltas:   e.stats.Deltas,
		Rebuilds: e.stats.Rebuilds,
		LastKind: e.stats.LastKind,
	}
}

// OverflowEdges syncs the engine and returns the maintained overflow-edge
// count in O(touched).
func (e *Engine) OverflowEdges() int {
	e.Update()
	return e.overflow
}

// Map syncs the engine and returns the congestion map. The returned Map is
// a live view of the engine's retained state: it stays valid (and bit-
// identical to Estimate) until the next design edit is folded in by a
// subsequent sync.
func (e *Engine) Map() *Map {
	e.Update()
	return &Map{
		NX: e.g.nx, NY: e.g.ny,
		HDemand: e.hFloat, VDemand: e.vFloat,
		HCap: e.opts.HCap, VCap: e.opts.VCap,
	}
}

// Update brings the retained map up to date with the design.
func (e *Engine) Update() {
	if e.valid && e.d.Epoch() == e.cursor {
		e.stats.Cleans++
		e.stats.LastKind = "clean"
		return
	}
	e.stats.Updates++
	if !e.valid {
		reason := "invalidate"
		if e.snaps == nil {
			reason = "attach"
		}
		e.rebuild(reason)
		return
	}
	if e.core != e.d.Core {
		e.rebuild("core-changed")
		return
	}
	flow, flowOK := e.d.TouchedSinceClass(e.cursor, netlist.EditClassFlow)
	if !flowOK {
		e.rebuild("flow-ring-overflow")
		return
	}
	touched := flow
	if e.opts.IncludeClock {
		ctsT, ctsOK := e.d.TouchedSinceClass(e.cursor, netlist.EditClassCTS)
		if !ctsOK {
			e.rebuild("cts-ring-overflow")
			return
		}
		touched = append(touched, ctsT...)
	}
	// When clock nets are excluded, CTS-class edits cannot change the map:
	// clock-buffer churn and leaf rewires touch clock nets only (see
	// metrics.Tracker for the same argument), so that ring is ignored.
	t0 := time.Now()
	e.delta(touched)
	e.stats.LastDeltaNS = time.Since(t0).Nanoseconds()
	e.stats.DeltaNS += e.stats.LastDeltaNS
	e.stats.Deltas++
	e.stats.LastKind = "delta"
	e.cursor = e.d.Epoch()
}

// delta re-contributes exactly the nets whose geometry a touched instance
// can have changed: the nets the instance was on at the last sync plus the
// nets it is on now.
func (e *Engine) delta(touched []netlist.InstID) {
	var dirty []netlist.NetID
	seen := map[netlist.NetID]bool{}
	var buf []netlist.NetID
	for _, id := range touched {
		for _, nid := range e.snaps[id] {
			if !seen[nid] {
				seen[nid] = true
				dirty = append(dirty, nid)
			}
		}
		buf = e.d.InstNets(id, false, buf[:0])
		for _, nid := range buf {
			if !seen[nid] {
				seen[nid] = true
				dirty = append(dirty, nid)
			}
		}
		e.snapInst(id)
	}
	e.gen++
	e.hDirty = e.hDirty[:0]
	e.vDirty = e.vDirty[:0]
	for _, nid := range dirty {
		if old, ok := e.nets[nid]; ok {
			old.addTo(e.hDem, e.vDem, e.g.nx, -1)
			e.markDirty(old)
		}
		var cur contrib
		var ok bool
		if n := e.d.Net(nid); n != nil {
			cur, ok = netContribution(e.d, n, e.opts, e.g)
		}
		if ok {
			cur.addTo(e.hDem, e.vDem, e.g.nx, 1)
			e.markDirty(cur)
			e.nets[nid] = cur
		} else {
			delete(e.nets, nid)
		}
	}
	// Finalize the dirty edges: refresh the float mirror and fold overflow
	// transitions into the maintained count.
	for _, idx := range e.hDirty {
		oldF, newF := e.hFloat[idx], toTracks(e.hDem[idx])
		if (oldF > e.opts.HCap) != (newF > e.opts.HCap) {
			if newF > e.opts.HCap {
				e.overflow++
			} else {
				e.overflow--
			}
		}
		e.hFloat[idx] = newF
	}
	for _, idx := range e.vDirty {
		oldF, newF := e.vFloat[idx], toTracks(e.vDem[idx])
		if (oldF > e.opts.VCap) != (newF > e.opts.VCap) {
			if newF > e.opts.VCap {
				e.overflow++
			} else {
				e.overflow--
			}
		}
		e.vFloat[idx] = newF
	}
	e.stats.LastNetsDelta = len(dirty)
	e.stats.NetsDelta += len(dirty)
	e.stats.LastTilesTouched = len(e.hDirty) + len(e.vDirty)
	e.stats.TilesTouched += e.stats.LastTilesTouched
}

// markDirty stamps the edges a contribution spans into the dirty lists.
func (e *Engine) markDirty(c contrib) {
	nx := e.g.nx
	if c.wh != 0 {
		for y := c.y0; y <= c.y1; y++ {
			for x := c.x0; x < c.x1; x++ {
				idx := y*(nx-1) + x
				if e.hStamp[idx] != e.gen {
					e.hStamp[idx] = e.gen
					e.hDirty = append(e.hDirty, idx)
				}
			}
		}
	}
	if c.wv != 0 {
		for x := c.x0; x <= c.x1; x++ {
			for y := c.y0; y < c.y1; y++ {
				idx := y*nx + x
				if e.vStamp[idx] != e.gen {
					e.vStamp[idx] = e.gen
					e.vDirty = append(e.vDirty, idx)
				}
			}
		}
	}
}

// snapInst replaces one instance's net snapshot. Dead instances keep an
// empty snapshot (their entry is dropped).
func (e *Engine) snapInst(id netlist.InstID) {
	nets := e.d.InstNets(id, false, nil)
	if len(nets) == 0 {
		delete(e.snaps, id)
		return
	}
	e.snaps[id] = nets
}

// rebuild re-derives everything from the design with one parallel walk
// over the live nets. Per-worker fixed-point partial sums are merged by
// addition, so the result is bit-identical for any worker count.
func (e *Engine) rebuild(reason string) {
	t0 := time.Now()
	e.core = e.d.Core
	e.g = gridFor(e.core, e.opts)
	nh, nv := e.g.hEdges(), e.g.vEdges()

	var live []*netlist.Net
	e.d.Nets(func(n *netlist.Net) { live = append(live, n) })

	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(live) {
		workers = len(live)
	}
	type netEntry struct {
		id netlist.NetID
		c  contrib
	}
	if workers > 1 {
		hParts := make([][]int64, workers)
		vParts := make([][]int64, workers)
		entries := make([][]netEntry, workers)
		var wg sync.WaitGroup
		chunk := (len(live) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(live) {
				hi = len(live)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				hD := make([]int64, nh)
				vD := make([]int64, nv)
				var ents []netEntry
				for _, n := range live[lo:hi] {
					if c, ok := netContribution(e.d, n, e.opts, e.g); ok {
						c.addTo(hD, vD, e.g.nx, 1)
						ents = append(ents, netEntry{n.ID, c})
					}
				}
				hParts[w], vParts[w], entries[w] = hD, vD, ents
			}(w, lo, hi)
		}
		wg.Wait()
		e.hDem = make([]int64, nh)
		e.vDem = make([]int64, nv)
		e.nets = map[netlist.NetID]contrib{}
		for w := 0; w < workers; w++ {
			for i, v := range hParts[w] {
				e.hDem[i] += v
			}
			for i, v := range vParts[w] {
				e.vDem[i] += v
			}
			for _, ent := range entries[w] {
				e.nets[ent.id] = ent.c
			}
		}
	} else {
		e.hDem = make([]int64, nh)
		e.vDem = make([]int64, nv)
		e.nets = map[netlist.NetID]contrib{}
		for _, n := range live {
			if c, ok := netContribution(e.d, n, e.opts, e.g); ok {
				c.addTo(e.hDem, e.vDem, e.g.nx, 1)
				e.nets[n.ID] = c
			}
		}
	}

	e.hFloat = make([]float64, nh)
	e.vFloat = make([]float64, nv)
	e.overflow = 0
	for i, v := range e.hDem {
		f := toTracks(v)
		e.hFloat[i] = f
		if f > e.opts.HCap {
			e.overflow++
		}
	}
	for i, v := range e.vDem {
		f := toTracks(v)
		e.vFloat[i] = f
		if f > e.opts.VCap {
			e.overflow++
		}
	}

	e.snaps = map[netlist.InstID][]netlist.NetID{}
	e.d.Insts(func(in *netlist.Inst) { e.snapInst(in.ID) })

	e.gen = 0
	e.hStamp = make([]uint32, nh)
	e.vStamp = make([]uint32, nv)
	e.hDirty, e.vDirty = nil, nil

	e.cursor = e.d.Epoch()
	e.valid = true
	e.stats.Rebuilds++
	e.stats.LastKind = "rebuild"
	e.stats.LastFallback = reason
	e.stats.LastRebuildNS = time.Since(t0).Nanoseconds()
	e.stats.RebuildNS += e.stats.LastRebuildNS
}
