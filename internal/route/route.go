// Package route estimates routing congestion with a probabilistic global
// routing model over a G-cell grid, in the spirit of the estimators in
// Sapatnekar/Saxena/Shelar ("Routing Congestion in VLSI Circuits"), which
// the paper uses for its overflow-edge metric ([15], Table 1 "Ovfl Edges").
//
// Each net contributes expected horizontal and vertical track demand spread
// uniformly over its bounding box; an edge whose demand exceeds its
// capacity is an overflow edge.
package route

import (
	"math"

	"repro/internal/netlist"
)

// Options configures the congestion map.
type Options struct {
	// GCell is the G-cell pitch in DBU.
	GCell int64
	// HCap and VCap are per-edge track capacities.
	HCap, VCap float64
	// IncludeClock selects whether clock nets contribute demand.
	IncludeClock bool
}

// DefaultOptions returns the capacities used by the benchmark designs.
func DefaultOptions() Options {
	return Options{GCell: 4800, HCap: 12, VCap: 10, IncludeClock: true}
}

// Map is a computed congestion map. Horizontal edges connect (x,y)→(x+1,y)
// and are indexed [y*(nx-1)+x]; vertical edges connect (x,y)→(x,y+1) and
// are indexed [y*nx+x] with y < ny-1.
type Map struct {
	NX, NY  int
	HDemand []float64
	VDemand []float64
	HCap    float64
	VCap    float64
}

// Estimate computes the congestion map of the design's current placement.
func Estimate(d *netlist.Design, opts Options) *Map {
	if opts.GCell <= 0 {
		opts = DefaultOptions()
	}
	nx := int(d.Core.W()/opts.GCell) + 1
	ny := int(d.Core.H()/opts.GCell) + 1
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	m := &Map{
		NX: nx, NY: ny,
		HDemand: make([]float64, (nx-1)*ny),
		VDemand: make([]float64, nx*(ny-1)),
		HCap:    opts.HCap, VCap: opts.VCap,
	}
	gx := func(x int64) int {
		g := int((x - d.Core.Lo.X) / opts.GCell)
		if g < 0 {
			g = 0
		}
		if g >= nx {
			g = nx - 1
		}
		return g
	}
	gy := func(y int64) int {
		g := int((y - d.Core.Lo.Y) / opts.GCell)
		if g < 0 {
			g = 0
		}
		if g >= ny {
			g = ny - 1
		}
		return g
	}

	d.Nets(func(n *netlist.Net) {
		if n.IsClock && !opts.IncludeClock {
			return
		}
		bb, ok := d.NetBBox(n)
		if !ok {
			return
		}
		npins := len(n.Sinks)
		if n.Driver != netlist.NoID {
			npins++
		}
		if npins < 2 {
			return
		}
		x0, x1 := gx(bb.Lo.X), gx(bb.Hi.X)
		y0, y1 := gy(bb.Lo.Y), gy(bb.Hi.Y)
		// Expected wire usage for a multi-pin net scales with pin count:
		// the RSMT-over-HPWL correction factor (Chu's HPWL scaling).
		q := hpwlScale(npins)
		// Horizontal demand: q track-crossings per column of the bbox,
		// spread uniformly over the rows it spans.
		if x1 > x0 {
			rows := float64(y1 - y0 + 1)
			for y := y0; y <= y1; y++ {
				for x := x0; x < x1; x++ {
					m.HDemand[y*(nx-1)+x] += q / rows
				}
			}
		}
		if y1 > y0 {
			cols := float64(x1 - x0 + 1)
			for x := x0; x <= x1; x++ {
				for y := y0; y < y1; y++ {
					m.VDemand[y*nx+x] += q / cols
				}
			}
		}
	})
	return m
}

// hpwlScale is the expected ratio of rectilinear Steiner tree length to
// half-perimeter wirelength as a function of pin count (Chu, FLUTE paper,
// approximated).
func hpwlScale(pins int) float64 {
	switch {
	case pins <= 3:
		return 1.0
	case pins <= 5:
		return 1.1
	case pins <= 10:
		return 1.3
	default:
		return 1.3 + 0.05*float64(pins-10)
	}
}

// OverflowEdges counts edges whose demand exceeds capacity.
func (m *Map) OverflowEdges() int {
	n := 0
	for _, dem := range m.HDemand {
		if dem > m.HCap {
			n++
		}
	}
	for _, dem := range m.VDemand {
		if dem > m.VCap {
			n++
		}
	}
	return n
}

// TotalOverflow sums demand in excess of capacity over all edges.
func (m *Map) TotalOverflow() float64 {
	t := 0.0
	for _, dem := range m.HDemand {
		if dem > m.HCap {
			t += dem - m.HCap
		}
	}
	for _, dem := range m.VDemand {
		if dem > m.VCap {
			t += dem - m.VCap
		}
	}
	return t
}

// MaxUtilization returns the maximum demand/capacity ratio over all edges.
func (m *Map) MaxUtilization() float64 {
	u := 0.0
	for _, dem := range m.HDemand {
		u = math.Max(u, dem/m.HCap)
	}
	for _, dem := range m.VDemand {
		u = math.Max(u, dem/m.VCap)
	}
	return u
}

// AvgUtilization returns the mean demand/capacity ratio.
func (m *Map) AvgUtilization() float64 {
	if len(m.HDemand)+len(m.VDemand) == 0 {
		return 0
	}
	t := 0.0
	for _, dem := range m.HDemand {
		t += dem / m.HCap
	}
	for _, dem := range m.VDemand {
		t += dem / m.VCap
	}
	return t / float64(len(m.HDemand)+len(m.VDemand))
}
