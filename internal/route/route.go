// Package route estimates routing congestion with a probabilistic global
// routing model over a G-cell grid, in the spirit of the estimators in
// Sapatnekar/Saxena/Shelar ("Routing Congestion in VLSI Circuits"), which
// the paper uses for its overflow-edge metric ([15], Table 1 "Ovfl Edges").
//
// Each net contributes expected horizontal and vertical track demand spread
// uniformly over its bounding box; an edge whose demand exceeds its
// capacity is an overflow edge.
//
// Demand is accumulated in fixed-point (scaled int64, demandUnit units per
// track) and materialized to float64 only at the edges of the package. That
// makes per-net contributions exactly invertible — integer adds commute and
// subtract cleanly — which is what lets the retained Engine maintain the
// map by per-net deltas, and a parallel rebuild merge per-worker partial
// sums, while staying bit-identical to the sequential batch Estimate.
package route

import (
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Options configures the congestion map.
type Options struct {
	// GCell is the G-cell pitch in DBU.
	GCell int64
	// HCap and VCap are per-edge track capacities.
	HCap, VCap float64
	// IncludeClock selects whether clock nets contribute demand.
	IncludeClock bool
}

// DefaultOptions returns the capacities used by the benchmark designs.
func DefaultOptions() Options {
	return Options{GCell: 4800, HCap: 12, VCap: 10, IncludeClock: true}
}

// demandUnit is the fixed-point scale: one routing track of demand is
// demandUnit integer units. 2^20 keeps quantization error per net below
// 1e-6 tracks while leaving 2^43 tracks of headroom before int64 overflow.
const demandUnit = 1 << 20

// Map is a computed congestion map. Horizontal edges connect (x,y)→(x+1,y)
// and are indexed [y*(nx-1)+x]; vertical edges connect (x,y)→(x,y+1) and
// are indexed [y*nx+x] with y < ny-1.
type Map struct {
	NX, NY  int
	HDemand []float64
	VDemand []float64
	HCap    float64
	VCap    float64
}

// grid is the G-cell discretization of a core area.
type grid struct {
	nx, ny int
	lo     geom.Point
	gcell  int64
}

// gridFor builds the grid covering core at the options' G-cell pitch.
// Degenerate cores still get at least a 2×2 grid so every map has at least
// one H and one V edge per row/column.
func gridFor(core geom.Rect, opts Options) grid {
	nx := int(core.W()/opts.GCell) + 1
	ny := int(core.H()/opts.GCell) + 1
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	return grid{nx: nx, ny: ny, lo: core.Lo, gcell: opts.GCell}
}

// gx maps an x coordinate to its G-cell column, clamped to [0, nx-1] for
// points on or outside the core boundary.
func (g grid) gx(x int64) int {
	c := int((x - g.lo.X) / g.gcell)
	if c < 0 {
		c = 0
	}
	if c >= g.nx {
		c = g.nx - 1
	}
	return c
}

// gy maps a y coordinate to its G-cell row, clamped to [0, ny-1].
func (g grid) gy(y int64) int {
	r := int((y - g.lo.Y) / g.gcell)
	if r < 0 {
		r = 0
	}
	if r >= g.ny {
		r = g.ny - 1
	}
	return r
}

// hEdges and vEdges are the edge-array lengths for the grid.
func (g grid) hEdges() int { return (g.nx - 1) * g.ny }
func (g grid) vEdges() int { return g.nx * (g.ny - 1) }

// contrib is one net's demand contribution: wh fixed-point units on every
// H edge of rows y0..y1, columns x0..x1-1, and wv units on every V edge of
// columns x0..x1, rows y0..y1-1. A zero contrib (wh == wv == 0) is inert.
type contrib struct {
	x0, x1, y0, y1 int
	wh, wv         int64
}

// netContribution computes the net's contribution on grid g. ok is false
// for nets that contribute nothing: clock nets when excluded, nets with
// fewer than two pins, and nets with no connected pins.
func netContribution(d *netlist.Design, n *netlist.Net, opts Options, g grid) (contrib, bool) {
	if n.IsClock && !opts.IncludeClock {
		return contrib{}, false
	}
	bb, ok := d.NetBBox(n)
	if !ok {
		return contrib{}, false
	}
	npins := len(n.Sinks)
	if n.Driver != netlist.NoID {
		npins++
	}
	if npins < 2 {
		return contrib{}, false
	}
	c := contrib{
		x0: g.gx(bb.Lo.X), x1: g.gx(bb.Hi.X),
		y0: g.gy(bb.Lo.Y), y1: g.gy(bb.Hi.Y),
	}
	// Expected wire usage for a multi-pin net scales with pin count:
	// the RSMT-over-HPWL correction factor (Chu's HPWL scaling).
	q := hpwlScale(npins)
	// Horizontal demand: q track-crossings per column of the bbox, spread
	// uniformly over the rows it spans (and symmetrically for vertical).
	if c.x1 > c.x0 {
		c.wh = int64(math.Round(q / float64(c.y1-c.y0+1) * demandUnit))
	}
	if c.y1 > c.y0 {
		c.wv = int64(math.Round(q / float64(c.x1-c.x0+1) * demandUnit))
	}
	return c, true
}

// addTo folds the contribution into scaled demand arrays with the given
// sign (+1 to apply, -1 to retract).
func (c contrib) addTo(hDem, vDem []int64, nx int, sign int64) {
	if c.wh != 0 {
		w := sign * c.wh
		for y := c.y0; y <= c.y1; y++ {
			row := hDem[y*(nx-1)+c.x0 : y*(nx-1)+c.x1]
			for i := range row {
				row[i] += w
			}
		}
	}
	if c.wv != 0 {
		w := sign * c.wv
		for x := c.x0; x <= c.x1; x++ {
			for y := c.y0; y < c.y1; y++ {
				vDem[y*nx+x] += w
			}
		}
	}
}

// estimateScaled computes the fixed-point demand arrays with one walk over
// the design's live nets.
func estimateScaled(d *netlist.Design, opts Options, g grid) (hDem, vDem []int64) {
	hDem = make([]int64, g.hEdges())
	vDem = make([]int64, g.vEdges())
	d.Nets(func(n *netlist.Net) {
		if c, ok := netContribution(d, n, opts, g); ok {
			c.addTo(hDem, vDem, g.nx, 1)
		}
	})
	return hDem, vDem
}

// toTracks materializes a fixed-point demand value as float64 tracks. Exact
// for any realistic map (sums below 2^53 units).
func toTracks(v int64) float64 { return float64(v) / demandUnit }

// materialize converts scaled demand arrays into a Map.
func materialize(g grid, hDem, vDem []int64, opts Options) *Map {
	m := &Map{
		NX: g.nx, NY: g.ny,
		HDemand: make([]float64, len(hDem)),
		VDemand: make([]float64, len(vDem)),
		HCap:    opts.HCap, VCap: opts.VCap,
	}
	for i, v := range hDem {
		m.HDemand[i] = toTracks(v)
	}
	for i, v := range vDem {
		m.VDemand[i] = toTracks(v)
	}
	return m
}

// Estimate computes the congestion map of the design's current placement
// with one full walk over the nets. It is the batch oracle the retained
// Engine falls back to and is tested against.
func Estimate(d *netlist.Design, opts Options) *Map {
	if opts.GCell <= 0 {
		opts = DefaultOptions()
	}
	g := gridFor(d.Core, opts)
	hDem, vDem := estimateScaled(d, opts, g)
	return materialize(g, hDem, vDem, opts)
}

// hpwlScale is the expected ratio of rectilinear Steiner tree length to
// half-perimeter wirelength as a function of pin count (Chu, FLUTE paper,
// approximated).
func hpwlScale(pins int) float64 {
	switch {
	case pins <= 3:
		return 1.0
	case pins <= 5:
		return 1.1
	case pins <= 10:
		return 1.3
	default:
		return 1.3 + 0.05*float64(pins-10)
	}
}

// OverflowEdges counts edges whose demand exceeds capacity.
func (m *Map) OverflowEdges() int {
	n := 0
	for _, dem := range m.HDemand {
		if dem > m.HCap {
			n++
		}
	}
	for _, dem := range m.VDemand {
		if dem > m.VCap {
			n++
		}
	}
	return n
}

// TotalOverflow sums demand in excess of capacity over all edges.
func (m *Map) TotalOverflow() float64 {
	t := 0.0
	for _, dem := range m.HDemand {
		if dem > m.HCap {
			t += dem - m.HCap
		}
	}
	for _, dem := range m.VDemand {
		if dem > m.VCap {
			t += dem - m.VCap
		}
	}
	return t
}

// MaxUtilization returns the maximum demand/capacity ratio over all edges.
func (m *Map) MaxUtilization() float64 {
	u := 0.0
	for _, dem := range m.HDemand {
		u = math.Max(u, dem/m.HCap)
	}
	for _, dem := range m.VDemand {
		u = math.Max(u, dem/m.VCap)
	}
	return u
}

// AvgUtilization returns the mean demand/capacity ratio.
func (m *Map) AvgUtilization() float64 {
	if len(m.HDemand)+len(m.VDemand) == 0 {
		return 0
	}
	t := 0.0
	for _, dem := range m.HDemand {
		t += dem / m.HCap
	}
	for _, dem := range m.VDemand {
		t += dem / m.VCap
	}
	return t / float64(len(m.HDemand)+len(m.VDemand))
}
