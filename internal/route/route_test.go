package route

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

var testLib = lib.MustGenerateDefault()

func newDesign() *netlist.Design {
	return netlist.NewDesign("r", geom.RectWH(0, 0, 96000, 96000), testLib)
}

// wireUp adds a 2-pin net between two new 1-bit registers at the given
// points.
func wireUp(t testing.TB, d *netlist.Design, i int, a, b geom.Point) {
	t.Helper()
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	r1, err := d.AddRegister(fmt.Sprintf("a%d", i), cell, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.AddRegister(fmt.Sprintf("b%d", i), cell, b)
	if err != nil {
		t.Fatal(err)
	}
	n := d.AddNet(fmt.Sprintf("n%d", i), false)
	d.Connect(d.QPin(r1, 0), n)
	d.Connect(d.DPin(r2, 0), n)
}

func TestEstimateEmptyDesign(t *testing.T) {
	d := newDesign()
	m := Estimate(d, DefaultOptions())
	if m.OverflowEdges() != 0 || m.TotalOverflow() != 0 {
		t.Fatal("empty design must have zero overflow")
	}
	if m.MaxUtilization() != 0 || m.AvgUtilization() != 0 {
		t.Fatal("empty design must have zero utilization")
	}
}

func TestDemandFollowsNetBBox(t *testing.T) {
	d := newDesign()
	// One horizontal net crossing several gcells.
	wireUp(t, d, 0, geom.Point{X: 0, Y: 48000}, geom.Point{X: 90000, Y: 48000})
	m := Estimate(d, DefaultOptions())
	var total float64
	for _, v := range m.HDemand {
		total += v
	}
	if total <= 0 {
		t.Fatal("horizontal net must create horizontal demand")
	}
	// A purely horizontal net creates no vertical demand (same g-row).
	var vtotal float64
	for _, v := range m.VDemand {
		vtotal += v
	}
	if vtotal != 0 {
		t.Fatalf("unexpected vertical demand %g", vtotal)
	}
}

func TestOverflowWhenConcentrated(t *testing.T) {
	d := newDesign()
	// Many long parallel nets through the same gcell row → overflow.
	for i := 0; i < 40; i++ {
		wireUp(t, d, i, geom.Point{X: 0, Y: 48000}, geom.Point{X: 90000, Y: 48000})
	}
	opts := DefaultOptions()
	opts.HCap = 8
	m := Estimate(d, opts)
	if m.OverflowEdges() == 0 {
		t.Fatal("expected overflow edges")
	}
	if m.MaxUtilization() <= 1 {
		t.Fatalf("max utilization %g should exceed 1", m.MaxUtilization())
	}
	if m.TotalOverflow() <= 0 {
		t.Fatal("expected positive total overflow")
	}
}

func TestSpreadingReducesOverflow(t *testing.T) {
	build := func(spread bool) int {
		d := newDesign()
		for i := 0; i < 40; i++ {
			y := int64(48000)
			if spread {
				y = int64(i * 2400)
			}
			wireUp(t, d, i, geom.Point{X: 0, Y: y}, geom.Point{X: 90000, Y: y})
		}
		opts := DefaultOptions()
		opts.HCap = 8
		return Estimate(d, opts).OverflowEdges()
	}
	packed := build(false)
	spread := build(true)
	if spread >= packed {
		t.Fatalf("spreading must reduce overflow: packed=%d spread=%d", packed, spread)
	}
}

func TestClockNetInclusion(t *testing.T) {
	d := newDesign()
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	clk := d.AddNet("clk", true)
	for i := 0; i < 10; i++ {
		r, err := d.AddRegister(fmt.Sprintf("r%d", i), cell, geom.Point{X: int64(i) * 9000, Y: 0})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.ClockPin(r), clk)
	}
	with := Estimate(d, Options{GCell: 4800, HCap: 12, VCap: 10, IncludeClock: true})
	without := Estimate(d, Options{GCell: 4800, HCap: 12, VCap: 10, IncludeClock: false})
	var sumWith, sumWithout float64
	for _, v := range with.HDemand {
		sumWith += v
	}
	for _, v := range without.HDemand {
		sumWithout += v
	}
	if sumWith <= sumWithout {
		t.Fatal("clock demand must appear when included")
	}
	if sumWithout != 0 {
		t.Fatal("clock-only design must have zero signal demand")
	}
}

func TestSinglePinNetIgnored(t *testing.T) {
	d := newDesign()
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	r, _ := d.AddRegister("r", cell, geom.Point{X: 0, Y: 0})
	n := d.AddNet("dangling", false)
	d.Connect(d.QPin(r, 0), n)
	m := Estimate(d, DefaultOptions())
	var sum float64
	for _, v := range m.HDemand {
		sum += v
	}
	for _, v := range m.VDemand {
		sum += v
	}
	if sum != 0 {
		t.Fatal("single-pin nets must not create demand")
	}
}

func TestHpwlScaleMonotone(t *testing.T) {
	prev := 0.0
	for pins := 2; pins <= 30; pins++ {
		s := hpwlScale(pins)
		if s < prev {
			t.Fatalf("hpwlScale must be non-decreasing, %d pins: %g < %g", pins, s, prev)
		}
		prev = s
	}
}
