package route

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

var testLib = lib.MustGenerateDefault()

func newDesign() *netlist.Design {
	return netlist.NewDesign("r", geom.RectWH(0, 0, 96000, 96000), testLib)
}

// wireUp adds a 2-pin net between two new 1-bit registers at the given
// points.
func wireUp(t testing.TB, d *netlist.Design, i int, a, b geom.Point) {
	t.Helper()
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	r1, err := d.AddRegister(fmt.Sprintf("a%d", i), cell, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.AddRegister(fmt.Sprintf("b%d", i), cell, b)
	if err != nil {
		t.Fatal(err)
	}
	n := d.AddNet(fmt.Sprintf("n%d", i), false)
	d.Connect(d.QPin(r1, 0), n)
	d.Connect(d.DPin(r2, 0), n)
}

func TestEstimateEmptyDesign(t *testing.T) {
	d := newDesign()
	m := Estimate(d, DefaultOptions())
	if m.OverflowEdges() != 0 || m.TotalOverflow() != 0 {
		t.Fatal("empty design must have zero overflow")
	}
	if m.MaxUtilization() != 0 || m.AvgUtilization() != 0 {
		t.Fatal("empty design must have zero utilization")
	}
}

func TestDemandFollowsNetBBox(t *testing.T) {
	d := newDesign()
	// One horizontal net crossing several gcells.
	wireUp(t, d, 0, geom.Point{X: 0, Y: 48000}, geom.Point{X: 90000, Y: 48000})
	m := Estimate(d, DefaultOptions())
	var total float64
	for _, v := range m.HDemand {
		total += v
	}
	if total <= 0 {
		t.Fatal("horizontal net must create horizontal demand")
	}
	// A purely horizontal net creates no vertical demand (same g-row).
	var vtotal float64
	for _, v := range m.VDemand {
		vtotal += v
	}
	if vtotal != 0 {
		t.Fatalf("unexpected vertical demand %g", vtotal)
	}
}

func TestOverflowWhenConcentrated(t *testing.T) {
	d := newDesign()
	// Many long parallel nets through the same gcell row → overflow.
	for i := 0; i < 40; i++ {
		wireUp(t, d, i, geom.Point{X: 0, Y: 48000}, geom.Point{X: 90000, Y: 48000})
	}
	opts := DefaultOptions()
	opts.HCap = 8
	m := Estimate(d, opts)
	if m.OverflowEdges() == 0 {
		t.Fatal("expected overflow edges")
	}
	if m.MaxUtilization() <= 1 {
		t.Fatalf("max utilization %g should exceed 1", m.MaxUtilization())
	}
	if m.TotalOverflow() <= 0 {
		t.Fatal("expected positive total overflow")
	}
}

func TestSpreadingReducesOverflow(t *testing.T) {
	build := func(spread bool) int {
		d := newDesign()
		for i := 0; i < 40; i++ {
			y := int64(48000)
			if spread {
				y = int64(i * 2400)
			}
			wireUp(t, d, i, geom.Point{X: 0, Y: y}, geom.Point{X: 90000, Y: y})
		}
		opts := DefaultOptions()
		opts.HCap = 8
		return Estimate(d, opts).OverflowEdges()
	}
	packed := build(false)
	spread := build(true)
	if spread >= packed {
		t.Fatalf("spreading must reduce overflow: packed=%d spread=%d", packed, spread)
	}
}

func TestClockNetInclusion(t *testing.T) {
	d := newDesign()
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	clk := d.AddNet("clk", true)
	for i := 0; i < 10; i++ {
		r, err := d.AddRegister(fmt.Sprintf("r%d", i), cell, geom.Point{X: int64(i) * 9000, Y: 0})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.ClockPin(r), clk)
	}
	with := Estimate(d, Options{GCell: 4800, HCap: 12, VCap: 10, IncludeClock: true})
	without := Estimate(d, Options{GCell: 4800, HCap: 12, VCap: 10, IncludeClock: false})
	var sumWith, sumWithout float64
	for _, v := range with.HDemand {
		sumWith += v
	}
	for _, v := range without.HDemand {
		sumWithout += v
	}
	if sumWith <= sumWithout {
		t.Fatal("clock demand must appear when included")
	}
	if sumWithout != 0 {
		t.Fatal("clock-only design must have zero signal demand")
	}
}

func TestSinglePinNetIgnored(t *testing.T) {
	d := newDesign()
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	r, _ := d.AddRegister("r", cell, geom.Point{X: 0, Y: 0})
	n := d.AddNet("dangling", false)
	d.Connect(d.QPin(r, 0), n)
	m := Estimate(d, DefaultOptions())
	var sum float64
	for _, v := range m.HDemand {
		sum += v
	}
	for _, v := range m.VDemand {
		sum += v
	}
	if sum != 0 {
		t.Fatal("single-pin nets must not create demand")
	}
}

func TestHpwlScaleMonotone(t *testing.T) {
	prev := 0.0
	for pins := 2; pins <= 30; pins++ {
		s := hpwlScale(pins)
		if s < prev {
			t.Fatalf("hpwlScale must be non-decreasing, %d pins: %g < %g", pins, s, prev)
		}
		prev = s
	}
}

// TestGridClampingAtBoundary pins gx/gy clamping: pins on the core
// boundary and arbitrarily far outside it must land inside [0, nx-1] /
// [0, ny-1] — Estimate must never index out of range from a stray pin.
func TestGridClampingAtBoundary(t *testing.T) {
	core := geom.RectWH(1000, 2000, 96000, 48000)
	g := gridFor(core, DefaultOptions())
	cases := []struct {
		x, y int64
	}{
		{core.Lo.X, core.Lo.Y},                 // lower-left corner
		{core.Hi.X, core.Hi.Y},                 // upper-right corner
		{core.Lo.X - 1, core.Lo.Y - 1},         // just outside
		{core.Hi.X + 1, core.Hi.Y + 1},         // just outside
		{core.Lo.X - 1<<40, core.Lo.Y - 1<<40}, // far outside
		{core.Hi.X + 1<<40, core.Hi.Y + 1<<40}, // far outside
	}
	for _, c := range cases {
		if got := g.gx(c.x); got < 0 || got >= g.nx {
			t.Fatalf("gx(%d) = %d out of [0,%d)", c.x, got, g.nx)
		}
		if got := g.gy(c.y); got < 0 || got >= g.ny {
			t.Fatalf("gy(%d) = %d out of [0,%d)", c.y, got, g.ny)
		}
	}
	if g.gx(core.Lo.X) != 0 || g.gy(core.Lo.Y) != 0 {
		t.Fatal("core origin must map to cell 0")
	}
	if g.gx(core.Hi.X+1<<40) != g.nx-1 || g.gy(core.Hi.Y+1<<40) != g.ny-1 {
		t.Fatal("far-outside points must clamp to the last cell")
	}
}

// TestDegenerateGridIsAtLeast2x2 checks the nx=2/ny=2 floor: a core
// smaller than one G-cell still yields one H and one V edge per row/column
// and correct edge indexing.
func TestDegenerateGridIsAtLeast2x2(t *testing.T) {
	opts := DefaultOptions()
	g := gridFor(geom.RectWH(0, 0, 10, 10), opts)
	if g.nx != 2 || g.ny != 2 {
		t.Fatalf("degenerate core must grid to 2x2, got %dx%d", g.nx, g.ny)
	}
	if g.hEdges() != 2 || g.vEdges() != 2 {
		t.Fatalf("2x2 grid must have 2 H and 2 V edges, got %d/%d", g.hEdges(), g.vEdges())
	}
	// A diagonal net across the tiny core spans both cells in each
	// dimension: every edge of the 2x2 grid carries demand, none panics.
	d := netlist.NewDesign("tiny", geom.RectWH(0, 0, 10, 10), testLib)
	wireUp(t, d, 0, geom.Point{X: 0, Y: 0}, geom.Point{X: 96000, Y: 96000})
	m := Estimate(d, opts)
	if m.NX != 2 || m.NY != 2 {
		t.Fatalf("map dims %dx%d", m.NX, m.NY)
	}
	for i, v := range m.HDemand {
		if v <= 0 {
			t.Fatalf("H edge %d of degenerate grid carries no demand", i)
		}
	}
	for i, v := range m.VDemand {
		if v <= 0 {
			t.Fatalf("V edge %d of degenerate grid carries no demand", i)
		}
	}
}

// TestEdgeIndexLayout pins the documented edge indexing (H: [y*(nx-1)+x],
// V: [y*nx+x]) by placing one net in a known G-cell row/column and checking
// exactly which indices receive demand.
func TestEdgeIndexLayout(t *testing.T) {
	d := newDesign() // 96000x96000 at GCell 4800 → 21x21 grid
	opts := DefaultOptions()
	g := gridFor(d.Core, opts)
	// Horizontal net in g-row 3 spanning columns 2..5.
	y := int64(3 * 4800)
	wireUp(t, d, 0, geom.Point{X: 2 * 4800, Y: y}, geom.Point{X: 5 * 4800, Y: y})
	m := Estimate(d, opts)
	row := g.gy(y)
	for i, v := range m.HDemand {
		yIdx, xIdx := i/(g.nx-1), i%(g.nx-1)
		want := yIdx == row && xIdx >= 2 && xIdx < 5
		if (v > 0) != want {
			t.Fatalf("HDemand[%d] (x=%d,y=%d) = %g, want demand=%v", i, xIdx, yIdx, v, want)
		}
	}
	for i, v := range m.VDemand {
		if v != 0 {
			t.Fatalf("VDemand[%d] = %g for a purely horizontal net", i, v)
		}
	}
}

// TestHpwlScaleMonotoneInPinCount is the satellite property test: demand
// weight never decreases as pins are added to a net with a fixed bbox.
func TestHpwlScaleMonotoneInPinCount(t *testing.T) {
	d := newDesign()
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	drv, err := d.AddRegister("drv", cell, geom.Point{X: 0, Y: 48000})
	if err != nil {
		t.Fatal(err)
	}
	n := d.AddNet("fan", false)
	d.Connect(d.QPin(drv, 0), n)
	prev := -1.0
	for i := 0; i < 20; i++ {
		// Sinks inside the fixed bbox: pin count grows, bbox does not.
		r, err := d.AddRegister(fmt.Sprintf("s%d", i), cell, geom.Point{X: 45000, Y: 48000})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.DPin(r, 0), n)
		// Far sink fixes the bbox on the first iteration.
		if i == 0 {
			far, err := d.AddRegister("far", cell, geom.Point{X: 90000, Y: 48000})
			if err != nil {
				t.Fatal(err)
			}
			d.Connect(d.DPin(far, 0), n)
		}
		m := Estimate(d, DefaultOptions())
		var total float64
		for _, v := range m.HDemand {
			total += v
		}
		if total < prev {
			t.Fatalf("demand decreased when adding pin %d: %g < %g", i, total, prev)
		}
		prev = total
	}
}

// FuzzEstimateDeltaEquivalence fuzzes the batch estimator and the retained
// engine together: arbitrary pin coordinates (on, off and far outside the
// core), G-cell pitches and a post-baseline move must never panic, never
// produce negative demand, and the engine's delta-maintained map must stay
// bit-identical to a fresh Estimate.
func FuzzEstimateDeltaEquivalence(f *testing.F) {
	f.Add(int64(0), int64(0), int64(96000), int64(96000), int64(4800), int64(500), int64(500))
	f.Add(int64(-5000), int64(99999), int64(96001), int64(-1), int64(1200), int64(0), int64(0))
	f.Add(int64(10), int64(10), int64(20), int64(20), int64(1<<40), int64(-96000), int64(96000))
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, gcell, dx, dy int64) {
		const bound = int64(1) << 32 // keep coordinate arithmetic overflow-free
		clampC := func(v int64) int64 {
			if v > bound {
				return bound
			}
			if v < -bound {
				return -bound
			}
			return v
		}
		ax, ay, bx, by = clampC(ax), clampC(ay), clampC(bx), clampC(by)
		dx, dy = clampC(dx)%100000, clampC(dy)%100000
		if gcell < 0 {
			gcell = -gcell
		}
		// Keep the pitch ≥ core/80 so fuzzed grids stay small enough to
		// allocate; clamping behaviour is covered by the coordinate ranges.
		gcell = gcell%200000 + 1200
		opts := Options{GCell: gcell, HCap: 2, VCap: 2, IncludeClock: true}

		d := newDesign()
		wireUp(t, d, 0, geom.Point{X: ax, Y: ay}, geom.Point{X: bx, Y: by})
		wireUp(t, d, 1, geom.Point{X: bx, Y: ay}, geom.Point{X: ax, Y: by})
		rt := NewEngine(d, opts)
		rt.Update()

		in := d.InstByName("a0")
		d.MoveInst(in, geom.Point{X: in.Pos.X + dx, Y: in.Pos.Y + dy})

		want := Estimate(d, opts)
		got := rt.Map()
		if got.NX != want.NX || got.NY != want.NY {
			t.Fatalf("grid %dx%d != oracle %dx%d", got.NX, got.NY, want.NX, want.NY)
		}
		for i := range want.HDemand {
			if want.HDemand[i] < 0 {
				t.Fatalf("negative HDemand[%d] = %g", i, want.HDemand[i])
			}
			if got.HDemand[i] != want.HDemand[i] {
				t.Fatalf("HDemand[%d]: engine %v != oracle %v", i, got.HDemand[i], want.HDemand[i])
			}
		}
		for i := range want.VDemand {
			if want.VDemand[i] < 0 {
				t.Fatalf("negative VDemand[%d] = %g", i, want.VDemand[i])
			}
			if got.VDemand[i] != want.VDemand[i] {
				t.Fatalf("VDemand[%d]: engine %v != oracle %v", i, got.VDemand[i], want.VDemand[i])
			}
		}
		if rt.OverflowEdges() != want.OverflowEdges() {
			t.Fatalf("OverflowEdges: engine %d != oracle %d", rt.OverflowEdges(), want.OverflowEdges())
		}
	})
}
