package route_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/cts"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/sta"
)

// oracleScale keeps the five profiles small enough for many edit rounds.
const oracleScale = 300

func genProfile(t testing.TB, name string) *bench.Result {
	t.Helper()
	o := bench.ProfileOpts{Scale: oracleScale}
	var spec bench.Spec
	switch name {
	case "D1":
		spec = bench.D1(o)
	case "D2":
		spec = bench.D2(o)
	case "D3":
		spec = bench.D3(o)
	case "D4":
		spec = bench.D4(o)
	case "D5":
		spec = bench.D5(o)
	default:
		t.Fatalf("unknown profile %s", name)
	}
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return b
}

// requireMapsEqual asserts exact equality with the route.Estimate oracle:
// grid shape, bit-identical demand arrays, and every derived metric —
// including the engine's incrementally maintained overflow count.
func requireMapsEqual(t *testing.T, ctx string, eng *route.Engine, d *netlist.Design, opts route.Options) {
	t.Helper()
	got := eng.Map()
	want := route.Estimate(d, opts)
	if got.NX != want.NX || got.NY != want.NY {
		t.Fatalf("%s: grid %dx%d != oracle %dx%d", ctx, got.NX, got.NY, want.NX, want.NY)
	}
	for i := range want.HDemand {
		if got.HDemand[i] != want.HDemand[i] {
			t.Fatalf("%s: HDemand[%d] = %v, oracle %v", ctx, i, got.HDemand[i], want.HDemand[i])
		}
	}
	for i := range want.VDemand {
		if got.VDemand[i] != want.VDemand[i] {
			t.Fatalf("%s: VDemand[%d] = %v, oracle %v", ctx, i, got.VDemand[i], want.VDemand[i])
		}
	}
	if g, w := eng.OverflowEdges(), want.OverflowEdges(); g != w {
		t.Fatalf("%s: maintained OverflowEdges %d != oracle %d", ctx, g, w)
	}
	if g, w := got.OverflowEdges(), want.OverflowEdges(); g != w {
		t.Fatalf("%s: map OverflowEdges %d != oracle %d", ctx, g, w)
	}
	if g, w := got.TotalOverflow(), want.TotalOverflow(); g != w {
		t.Fatalf("%s: TotalOverflow %v != oracle %v", ctx, g, w)
	}
	if g, w := got.MaxUtilization(), want.MaxUtilization(); g != w {
		t.Fatalf("%s: MaxUtilization %v != oracle %v", ctx, g, w)
	}
}

// mutate applies one randomized edit round: moves, resizes, and every third
// round a composition pass (merges remove registers, create an MBR, and
// rewire its nets). release is the clock-release hook merges need when
// retained clock trees are attached (nil otherwise).
func mutate(t *testing.T, b *bench.Result, eng *sta.Engine, rng *rand.Rand, round int, release func([]*netlist.Inst)) {
	t.Helper()
	d := b.Design
	regs := d.Registers()
	if len(regs) == 0 {
		return
	}
	for k := 0; k < 1+rng.Intn(5); k++ {
		r := regs[rng.Intn(len(regs))]
		if r.Fixed {
			continue
		}
		d.MoveInst(r, geom.Point{
			X: r.Pos.X + int64(rng.Intn(4001)) - 2000,
			Y: r.Pos.Y + int64(rng.Intn(4001)) - 2000,
		})
	}
	for k := 0; k < rng.Intn(3); k++ {
		r := regs[rng.Intn(len(regs))]
		if r.Fixed || r.SizeOnly {
			continue
		}
		cands := d.Lib.CellsOfWidth(r.RegCell.Class, r.RegCell.Bits)
		if len(cands) > 1 {
			if err := d.ResizeRegister(r, cands[rng.Intn(len(cands))]); err != nil {
				t.Fatalf("resize: %v", err)
			}
		}
	}
	if round%3 == 2 {
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("sta for compose: %v", err)
		}
		g := compat.Build(d, res, b.Plan, compat.DefaultOptions())
		opts := core.DefaultOptions()
		opts.NamePrefix = fmt.Sprintf("orc%d", round)
		opts.ReleaseClocks = release
		if _, err := core.Compose(d, g, b.Plan, opts); err != nil {
			t.Fatalf("compose: %v", err)
		}
	}
}

// TestDeltaEqualsEstimateOracle is the equivalence oracle of the ISSUE:
// after randomized rounds of move/resize/merge edit storms on all five
// profiles, the delta-maintained congestion map must equal a fresh
// route.Estimate bit-for-bit, at several worker counts.
func TestDeltaEqualsEstimateOracle(t *testing.T) {
	for _, profile := range []string{"D1", "D2", "D3", "D4", "D5"} {
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			t.Run(fmt.Sprintf("%s/w%d", profile, workers), func(t *testing.T) {
				b := genProfile(t, profile)
				d := b.Design
				eng := sta.New(d)
				eng.SetIdealClocks(true)
				opts := route.DefaultOptions()
				rt := route.NewEngine(d, opts)
				rt.SetWorkers(workers)
				rng := rand.New(rand.NewSource(int64(len(profile)*1000 + workers)))

				for round := 0; round < 8; round++ {
					rt.Update()
					ctx := fmt.Sprintf("%s w%d round %d (%s)",
						profile, workers, round, rt.Stats().LastKind)
					requireMapsEqual(t, ctx, rt, d, opts)
					mutate(t, b, eng, rng, round, nil)
				}
				st := rt.Stats()
				if st.Deltas == 0 {
					t.Fatalf("no update took the delta path: %+v", st)
				}
			})
		}
	}
}

// TestOracleWithRetainedCTS drives the edit storm with a retained clock
// tree attached, so updates see real CTS-class churn (buffer moves, leaf
// rewires). With IncludeClock the engine must fold that churn in; without
// it the CTS ring must be ignorable — either way the map equals the oracle.
func TestOracleWithRetainedCTS(t *testing.T) {
	for _, includeClock := range []bool{true, false} {
		t.Run(fmt.Sprintf("includeClock=%v", includeClock), func(t *testing.T) {
			b := genProfile(t, "D2")
			d := b.Design
			eng := sta.New(d)
			eng.SetIdealClocks(true)
			ct := cts.NewEngine(d, cts.DefaultOptions())
			if err := ct.Attach(); err != nil {
				t.Fatalf("attach: %v", err)
			}
			opts := route.DefaultOptions()
			opts.IncludeClock = includeClock
			rt := route.NewEngine(d, opts)
			rng := rand.New(rand.NewSource(7))

			for round := 0; round < 8; round++ {
				rt.Update()
				ctx := fmt.Sprintf("cts round %d (%s)", round, rt.Stats().LastKind)
				requireMapsEqual(t, ctx, rt, d, opts)
				mutate(t, b, eng, rng, round, ct.ReleaseClocks)
				if err := ct.Update(); err != nil {
					t.Fatalf("cts update: %v", err)
				}
			}
			if st := rt.Stats(); st.Deltas == 0 {
				t.Fatalf("no update took the delta path: %+v", st)
			}
		})
	}
}

// TestDeltaTouchesOnlyAffectedNets pins the O(touched) claim: one moved
// register must be served by a delta that re-contributes only the mover's
// neighbourhood, far below the design's net count.
func TestDeltaTouchesOnlyAffectedNets(t *testing.T) {
	b := genProfile(t, "D2")
	d := b.Design
	opts := route.DefaultOptions()
	rt := route.NewEngine(d, opts)
	rt.Update()

	var r *netlist.Inst
	for _, c := range d.Registers() {
		if !c.Fixed {
			r = c
			break
		}
	}
	if r == nil {
		t.Skip("no movable register")
	}
	d.MoveInst(r, geom.Point{X: r.Pos.X + 500, Y: r.Pos.Y + 500})
	rt.Update()
	st := rt.Stats()
	if st.LastKind != "delta" {
		t.Fatalf("expected delta, got %q (fallback %q)", st.LastKind, st.LastFallback)
	}
	if st.LastNetsDelta == 0 {
		t.Fatal("delta re-contributed no nets for a moved register")
	}
	if st.LastNetsDelta >= d.NumNets()/2 {
		t.Fatalf("delta re-contributed %d of %d nets — not O(touched)",
			st.LastNetsDelta, d.NumNets())
	}
	requireMapsEqual(t, "single-move delta", rt, d, opts)
}

// TestOverflowFallsBackToRebuild floods the touched ring and checks the
// engine takes the rebuild path and still matches the oracle.
func TestOverflowFallsBackToRebuild(t *testing.T) {
	b := genProfile(t, "D1")
	d := b.Design
	opts := route.DefaultOptions()
	rt := route.NewEngine(d, opts)
	rt.Update()

	rng := rand.New(rand.NewSource(1))
	regs := d.Registers()
	for moved := 0; moved < d.TouchedLogCap()+100; {
		r := regs[rng.Intn(len(regs))]
		if r.Fixed {
			continue
		}
		d.MoveInst(r, geom.Point{X: r.Pos.X + 1, Y: r.Pos.Y})
		moved++
	}
	rt.Update()
	st := rt.Stats()
	if st.LastKind != "rebuild" || st.LastFallback != "flow-ring-overflow" {
		t.Fatalf("expected flow-ring-overflow rebuild, got %q/%q", st.LastKind, st.LastFallback)
	}
	requireMapsEqual(t, "overflow", rt, d, opts)
}

// TestInvalidateForcesRebuild checks the engine.Retained contract: after
// Invalidate the next sync rebuilds from scratch and matches the oracle.
func TestInvalidateForcesRebuild(t *testing.T) {
	b := genProfile(t, "D1")
	d := b.Design
	opts := route.DefaultOptions()
	rt := route.NewEngine(d, opts)
	rt.Update()
	rt.Invalidate()
	rt.Update()
	st := rt.Stats()
	if st.LastKind != "rebuild" || st.LastFallback != "invalidate" {
		t.Fatalf("expected invalidate rebuild, got %q/%q", st.LastKind, st.LastFallback)
	}
	sum := rt.Summary()
	if sum.Rebuilds != 2 || sum.LastKind != "rebuild" {
		t.Fatalf("summary disagrees with stats: %+v", sum)
	}
	requireMapsEqual(t, "post-invalidate", rt, d, opts)
}
