package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binary → b=1,c=1 obj 20.
	p := New(lp.Maximize)
	a := p.AddBinary(10, "a")
	b := p.AddBinary(13, "b")
	c := p.AddBinary(7, "c")
	p.AddConstraint([]lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}}, lp.LE, 6)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 20) {
		t.Fatalf("status=%v obj=%g want optimal/20", s.Status, s.Objective)
	}
	if s.X[a] != 0 || s.X[b] != 1 || s.X[c] != 1 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestIntegerVsLPRelaxationGap(t *testing.T) {
	// max x + y s.t. 2x + 2y ≤ 3, binary. LP gives 1.5; IP must give 1.
	p := New(lp.Maximize)
	x := p.AddBinary(1, "x")
	y := p.AddBinary(1, "y")
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 2}}, lp.LE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 1) {
		t.Fatalf("obj = %g want 1", s.Objective)
	}
}

func TestGeneralInteger(t *testing.T) {
	// max 3x + 4y, x,y ∈ Z, 0 ≤ x,y ≤ 10, x + 2y ≤ 9, 3x - y ≤ 12
	// Optimum: x=4(?), search: try x=4,y=2: 3*4+4*2=20, feasible (4+4=8≤9, 12-2=10≤12).
	// x=5 infeasible (3*5-y≤12 → y≥3, x+2y=11>9). x=3,y=3: 21, feasible (9≤9, 6≤12).
	p := New(lp.Maximize)
	x := p.AddVar(0, 10, 3, true, "x")
	y := p.AddVar(0, 10, 4, true, "y")
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.LE, 9)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: -1}}, lp.LE, 12)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 21) || !approx(s.X[x], 3) || !approx(s.X[y], 3) {
		t.Fatalf("obj=%g x=%v", s.Objective, s.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 2i + c s.t. i + c ≥ 3.5, i integer ≥ 0, 0 ≤ c ≤ 1.
	// c=1 forced to its max, i ≥ 2.5 → i=3? i+c≥3.5 with c=1 → i≥2.5 → i=3, obj 7.
	// But i=3,c=0.5 → obj 6.5. Better: i=3, c=0.5 obj 6.5; i=4,c=0: 8. i=3 best with c=0.5.
	p := New(lp.Minimize)
	i := p.AddVar(0, 100, 2, true, "i")
	c := p.AddVar(0, 1, 1, false, "c")
	p.AddConstraint([]lp.Term{{Var: i, Coef: 1}, {Var: c, Coef: 1}}, lp.GE, 3.5)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 6.5) || !approx(s.X[i], 3) || !approx(s.X[c], 0.5) {
		t.Fatalf("obj=%g x=%v", s.Objective, s.X)
	}
}

func TestInfeasibleIP(t *testing.T) {
	// x binary, 2x = 1 → infeasible in integers (LP feasible at 0.5).
	p := New(lp.Minimize)
	x := p.AddBinary(1, "x")
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.EQ, 1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v want infeasible", s.Status)
	}
}

func TestSetPartitioningIP(t *testing.T) {
	// Paper-style weighted exact cover through the raw ILP interface.
	// Elements {0,1,2}; candidates and weights as in lp tests.
	p := New(lp.Minimize)
	w := []float64{1, 1, 1, 0.5, 0.5, 1.0 / 3}
	members := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}}
	vars := make([]int, len(w))
	for i := range w {
		vars[i] = p.AddBinary(w[i], "")
	}
	for e := 0; e < 3; e++ {
		var terms []lp.Term
		for i, ms := range members {
			for _, m := range ms {
				if m == e {
					terms = append(terms, lp.Term{Var: vars[i], Coef: 1})
				}
			}
		}
		p.AddConstraint(terms, lp.EQ, 1)
	}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 1.0/3) || s.X[vars[5]] != 1 {
		t.Fatalf("obj=%g x=%v", s.Objective, s.X)
	}
}

func TestSolveCoverBasic(t *testing.T) {
	inst := CoverInstance{
		NumElems: 3,
		Sets: []CoverSet{
			{Members: []int{0}, Weight: 1},
			{Members: []int{1}, Weight: 1},
			{Members: []int{2}, Weight: 1},
			{Members: []int{0, 1}, Weight: 0.5},
			{Members: []int{1, 2}, Weight: 0.5},
			{Members: []int{0, 1, 2}, Weight: 1.0 / 3},
		},
	}
	res, err := SolveCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 1.0/3) || len(res.Chosen) != 1 || res.Chosen[0] != 5 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSolveCoverForcedColumn(t *testing.T) {
	// Element 2 only coverable by set {1,2}; forcing it eliminates {0,1},
	// leaving {0} for element 0.
	inst := CoverInstance{
		NumElems: 3,
		Sets: []CoverSet{
			{Members: []int{0}, Weight: 5},
			{Members: []int{0, 1}, Weight: 1},
			{Members: []int{1, 2}, Weight: 2},
		},
	}
	res, err := SolveCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 7) {
		t.Fatalf("obj = %g want 7", res.Objective)
	}
	want := map[int]bool{0: true, 2: true}
	for _, c := range res.Chosen {
		if !want[c] {
			t.Fatalf("chosen = %v", res.Chosen)
		}
	}
}

func TestSolveCoverDominance(t *testing.T) {
	// Duplicate member sets: only the cheaper may be chosen.
	inst := CoverInstance{
		NumElems: 2,
		Sets: []CoverSet{
			{Members: []int{0, 1}, Weight: 3},
			{Members: []int{0, 1}, Weight: 1},
		},
	}
	res, err := SolveCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 1) || len(res.Chosen) != 1 || res.Chosen[0] != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Reduced == 0 {
		t.Fatal("expected dominance reduction")
	}
}

func TestSolveCoverInfeasible(t *testing.T) {
	inst := CoverInstance{
		NumElems: 2,
		Sets:     []CoverSet{{Members: []int{0}, Weight: 1}},
	}
	if _, err := SolveCover(inst); err != ErrCoverInfeasible {
		t.Fatalf("err = %v want ErrCoverInfeasible", err)
	}
}

func TestSolveCoverOverlapForcesInfeasible(t *testing.T) {
	// Element 0 in two sets, but both clash with forced coverage of 1 and 2.
	inst := CoverInstance{
		NumElems: 3,
		Sets: []CoverSet{
			{Members: []int{0, 1}, Weight: 1},
			{Members: []int{0, 2}, Weight: 1},
			{Members: []int{1, 2}, Weight: 1},
		},
	}
	// Any two sets double-cover one element: infeasible.
	if _, err := SolveCover(inst); err != ErrCoverInfeasible {
		t.Fatalf("err = %v want ErrCoverInfeasible", err)
	}
}

func TestSolveCoverValidation(t *testing.T) {
	cases := []CoverInstance{
		{NumElems: 1, Sets: []CoverSet{{Members: nil, Weight: 1}}},
		{NumElems: 1, Sets: []CoverSet{{Members: []int{1}, Weight: 1}}},
		{NumElems: 1, Sets: []CoverSet{{Members: []int{0, 0}, Weight: 1}}},
		{NumElems: 1, Sets: []CoverSet{{Members: []int{0}, Weight: math.Inf(1)}}},
		{NumElems: 1, Sets: []CoverSet{{Members: []int{0}, Weight: -1}}},
	}
	for i, inst := range cases {
		if _, err := SolveCover(inst); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSolveCoverEmpty(t *testing.T) {
	res, err := SolveCover(CoverInstance{})
	if err != nil || len(res.Chosen) != 0 || res.Objective != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// coverBrute solves a small instance by exhaustive enumeration.
func coverBrute(inst CoverInstance) (float64, bool) {
	n := len(inst.Sets)
	best := math.Inf(1)
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		cnt := make([]int, inst.NumElems)
		w := 0.0
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			w += inst.Sets[i].Weight
			for _, m := range inst.Sets[i].Members {
				cnt[m]++
				if cnt[m] > 1 {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		for _, c := range cnt {
			if c != 1 {
				ok = false
				break
			}
		}
		if ok {
			found = true
			if w < best {
				best = w
			}
		}
	}
	return best, found
}

// Property: SolveCover matches brute force on random small instances, and
// the chosen sets always form an exact cover.
func TestSolveCoverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ne := 1 + rng.Intn(6)
		ns := 1 + rng.Intn(10)
		inst := CoverInstance{NumElems: ne}
		for i := 0; i < ns; i++ {
			var ms []int
			for e := 0; e < ne; e++ {
				if rng.Intn(3) == 0 {
					ms = append(ms, e)
				}
			}
			if len(ms) == 0 {
				ms = []int{rng.Intn(ne)}
			}
			inst.Sets = append(inst.Sets, CoverSet{Members: ms, Weight: 0.1 + rng.Float64()*5})
		}
		wantObj, feasible := coverBrute(inst)
		res, err := SolveCover(inst)
		if !feasible {
			return err == ErrCoverInfeasible
		}
		if err != nil {
			return false
		}
		// Verify exact cover property.
		cnt := make([]int, ne)
		for _, ci := range res.Chosen {
			for _, m := range inst.Sets[ci].Members {
				cnt[m]++
			}
		}
		for _, c := range cnt {
			if c != 1 {
				return false
			}
		}
		return math.Abs(res.Objective-wantObj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: branch & bound matches brute force on random binary knapsacks.
func TestBinaryKnapsackMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		vals := make([]float64, n)
		wts := make([]float64, n)
		for i := range vals {
			vals[i] = 1 + rng.Float64()*9
			wts[i] = 1 + rng.Float64()*9
		}
		capacity := rng.Float64() * 25

		p := New(lp.Maximize)
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			v := p.AddBinary(vals[i], "")
			terms[i] = lp.Term{Var: v, Coef: wts[i]}
		}
		p.AddConstraint(terms, lp.LE, capacity)
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += wts[i]
					v += vals[i]
				}
			}
			if w <= capacity+1e-9 && v > best {
				best = v
			}
		}
		return math.Abs(s.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeLimit(t *testing.T) {
	p := New(lp.Maximize)
	// A knapsack big enough to need >1 node.
	var terms []lp.Term
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 14; i++ {
		v := p.AddBinary(1+rng.Float64()*9, "")
		terms = append(terms, lp.Term{Var: v, Coef: 1 + rng.Float64()*9})
	}
	p.AddConstraint(terms, lp.LE, 30)
	p.SetNodeLimit(1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != NodeLimit && s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
}

func TestSetIncumbentPrunes(t *testing.T) {
	// Seeding the optimum as incumbent must keep the result optimal.
	p := New(lp.Maximize)
	a := p.AddBinary(10, "a")
	b := p.AddBinary(13, "b")
	c := p.AddBinary(7, "c")
	p.AddConstraint([]lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}}, lp.LE, 6)
	p.SetIncumbent([]float64{0, 1, 1}, 20)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 20) {
		t.Fatalf("obj = %g want 20", s.Objective)
	}
}

func TestIncumbentSurvivesNodeLimit(t *testing.T) {
	p := New(lp.Minimize)
	var terms []lp.Term
	for i := 0; i < 12; i++ {
		v := p.AddBinary(1, "")
		terms = append(terms, lp.Term{Var: v, Coef: 1})
	}
	p.AddConstraint(terms, lp.GE, 7.5) // needs 8 ones
	feas := make([]float64, 12)
	for i := 0; i < 9; i++ {
		feas[i] = 1 // suboptimal but feasible (9 ones)
	}
	p.SetIncumbent(feas, 9)
	p.SetNodeLimit(1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.X == nil {
		t.Fatal("incumbent must survive the node limit")
	}
	if s.Objective > 9+1e-9 {
		t.Fatalf("objective %g worse than incumbent", s.Objective)
	}
}

func TestIntegralBoundTightening(t *testing.T) {
	// Unit-cost partitioning with a fractional LP optimum: the integral
	// bound must still prove the true optimum.
	// Elements 0,1,2 covered by the three pairs {0,1},{1,2},{0,2}: LP says
	// 1.5 sets; IP needs... every pair double-covers on any 2-subset, so
	// only singletons+pair combos work: {0,1}+{2} = 2 sets.
	inst := CoverInstance{
		NumElems: 3,
		Sets: []CoverSet{
			{Members: []int{0}, Weight: 1},
			{Members: []int{1}, Weight: 1},
			{Members: []int{2}, Weight: 1},
			{Members: []int{0, 1}, Weight: 1},
			{Members: []int{1, 2}, Weight: 1},
			{Members: []int{0, 2}, Weight: 1},
		},
	}
	res, err := SolveCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 2) {
		t.Fatalf("objective = %g want 2", res.Objective)
	}
	if !res.Exact {
		t.Fatal("small instance must be solved exactly")
	}
}

func TestGreedyCoverStrategies(t *testing.T) {
	// An instance where cheapest-per-member greedy is led astray but
	// largest-first lands the optimum: the warm start must be feasible
	// regardless.
	inst := CoverInstance{
		NumElems: 4,
		Sets: []CoverSet{
			{Members: []int{0}, Weight: 1},
			{Members: []int{1}, Weight: 1},
			{Members: []int{2}, Weight: 1},
			{Members: []int{3}, Weight: 1},
			{Members: []int{0, 1}, Weight: 0.1}, // juicy ratio, splits the quad
			{Members: []int{0, 1, 2, 3}, Weight: 0.5},
		},
	}
	res, err := SolveCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 0.5) {
		t.Fatalf("objective = %g want 0.5", res.Objective)
	}
}
