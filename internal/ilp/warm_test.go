package ilp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randomCover builds a random feasible-or-not cover instance. Singleton
// columns for every element are optionally guaranteed (the shape the
// composition ILP always has).
func randomCover(rng *rand.Rand, withSingletons bool) CoverInstance {
	ne := 1 + rng.Intn(8)
	inst := CoverInstance{NumElems: ne}
	if withSingletons {
		for e := 0; e < ne; e++ {
			inst.Sets = append(inst.Sets, CoverSet{Members: []int{e}, Weight: 0.5 + rng.Float64()*2})
		}
	}
	ns := rng.Intn(12)
	for i := 0; i < ns; i++ {
		var ms []int
		for e := 0; e < ne; e++ {
			if rng.Intn(3) == 0 {
				ms = append(ms, e)
			}
		}
		if len(ms) == 0 {
			ms = []int{rng.Intn(ne)}
		}
		inst.Sets = append(inst.Sets, CoverSet{Members: ms, Weight: 0.1 + rng.Float64()*5})
	}
	return inst
}

// sameChosen compares selections as sorted column-index sets.
func sameChosen(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// checkWarmMatchesCold solves inst cold, then re-solves seeded with the cold
// selection (the strongest warm start: the proven optimum) and with a
// deliberately garbage warm, asserting the documented contract: the result
// matches the cold solve column-for-column in every case.
func checkWarmMatchesCold(t *testing.T, inst CoverInstance) {
	t.Helper()
	cold, err := SolveCover(inst)
	if err == ErrCoverInfeasible {
		// Warm on an infeasible instance must stay infeasible.
		inst.Warm = []int{0}
		if _, err := SolveCover(inst); err != ErrCoverInfeasible {
			t.Fatalf("warm start changed infeasibility verdict: %v", err)
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}

	warms := [][]int{
		cold.Chosen,          // the previous optimum — the common case
		{0},                  // likely not a cover: must be ignored
		{len(inst.Sets) - 1}, // ditto
		nil,                  // explicit no-op
	}
	for _, w := range warms {
		wi := inst
		wi.Warm = append([]int(nil), w...)
		warm, err := SolveCover(wi)
		if err != nil {
			t.Fatalf("warm=%v: %v", w, err)
		}
		if !sameChosen(warm.Chosen, cold.Chosen) {
			t.Fatalf("warm=%v selection diverged: %v vs cold %v", w, warm.Chosen, cold.Chosen)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
			t.Fatalf("warm=%v objective %g vs cold %g", w, warm.Objective, cold.Objective)
		}
		if warm.Exact != cold.Exact {
			t.Fatalf("warm=%v exactness %v vs cold %v", w, warm.Exact, cold.Exact)
		}
	}
}

// TestSolveCoverWarmMatchesCold sweeps random instances through
// checkWarmMatchesCold — the deterministic version of the fuzz target.
func TestSolveCoverWarmMatchesCold(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		checkWarmMatchesCold(t, randomCover(rng, seed%2 == 0))
	}
}

// greedyTrapSets is a base instance whose greedy cover is poor under every
// ordering greedyCover tries: the {1,2,3,4} column is simultaneously the
// largest, the cheapest, and the best weight-per-member, so every ordering
// grabs it first — stranding elements 0 and 5 into unit singletons for a
// greedy total of 2.2.
func greedyTrapSets() []CoverSet {
	sets := make([]CoverSet, 0, 9)
	for e := 0; e < 6; e++ {
		sets = append(sets, CoverSet{Members: []int{e}, Weight: 1})
	}
	return append(sets,
		CoverSet{Members: []int{1, 2, 3, 4}, Weight: 0.2}, // col 6: the trap
		CoverSet{Members: []int{0, 1, 2}, Weight: 0.6},    // col 7
		CoverSet{Members: []int{3, 4, 5}, Weight: 0.6},    // col 8
	)
}

// TestSolveCoverWarmSeededAndRetried pins the canonical retained scenario:
// re-solving an instance warm-started from its own optimum. The warm cover
// strictly beats every greedy ordering, so it seeds the search; the probe
// cannot improve on it, so the solve re-runs with the canonical greedy seed
// (WarmRetried) and reports the previous selection still optimal.
func TestSolveCoverWarmSeededAndRetried(t *testing.T) {
	inst := CoverInstance{
		NumElems: 6,
		Sets:     greedyTrapSets(),
		Warm:     []int{7, 8}, // the optimum: 1.2 vs greedy's 2.2
	}
	res, err := SolveCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmFeasible || !res.WarmSeeded {
		t.Fatalf("optimal warm cover must seed below greedy: %+v", res)
	}
	if !res.WarmRetried {
		t.Fatalf("unimproved warm probe must trigger the canonical retry: %+v", res)
	}
	if !res.WarmAccepted {
		t.Fatalf("unimproved optimal warm must be accepted: %+v", res)
	}
	if !sameChosen(res.Chosen, []int{7, 8}) || !approx(res.Objective, 1.2) {
		t.Fatalf("selection %v obj %g, want [7 8] 1.2", res.Chosen, res.Objective)
	}
}

// TestSolveCoverWarmSeededImproved adds a partition cheaper than the warm
// cover: the seeded search must abandon the previous selection for the new
// optimum without a retry (strict improvement needs no canonicalization).
func TestSolveCoverWarmSeededImproved(t *testing.T) {
	inst := CoverInstance{
		NumElems: 6,
		Sets: append(greedyTrapSets(),
			CoverSet{Members: []int{0, 1}, Weight: 0.35}, // col 9
			CoverSet{Members: []int{2, 3}, Weight: 0.35}, // col 10
			CoverSet{Members: []int{4, 5}, Weight: 0.35}, // col 11
		),
		Warm: []int{7, 8}, // previous optimum 1.2; the pairs now price 1.05
	}
	res, err := SolveCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmFeasible || !res.WarmSeeded {
		t.Fatalf("warm cover below greedy must seed: %+v", res)
	}
	if res.WarmRetried {
		t.Fatalf("improved solve must not retry: %+v", res)
	}
	if res.WarmAccepted {
		t.Fatalf("improved solve must not report the warm as optimal: %+v", res)
	}
	if !sameChosen(res.Chosen, []int{9, 10, 11}) || !approx(res.Objective, 1.05) {
		t.Fatalf("selection %v obj %g, want [9 10 11] 1.05", res.Chosen, res.Objective)
	}
}

// TestSolveCoverWarmStaleIgnored pins that a warm cover that no longer
// covers (overlap or gap) is ignored without error.
func TestSolveCoverWarmStaleIgnored(t *testing.T) {
	inst := CoverInstance{
		NumElems: 2,
		Sets: []CoverSet{
			{Members: []int{0}, Weight: 1},
			{Members: []int{1}, Weight: 1},
			{Members: []int{0, 1}, Weight: 0.5},
		},
	}
	for _, warm := range [][]int{
		{0},       // gap: element 1 uncovered
		{0, 2},    // overlap on element 0
		{0, 0, 1}, // duplicate column
		{99},      // out of range
		{-1},      // out of range
	} {
		wi := inst
		wi.Warm = warm
		res, err := SolveCover(wi)
		if err != nil {
			t.Fatalf("warm=%v: %v", warm, err)
		}
		if res.WarmFeasible || res.WarmSeeded {
			t.Fatalf("stale warm=%v treated as feasible: %+v", warm, res)
		}
		if !sameChosen(res.Chosen, []int{2}) {
			t.Fatalf("warm=%v changed the selection: %v", warm, res.Chosen)
		}
	}
}

// TestSolveCoverWarmNotSeededWhenGreedyTies pins the selection-neutrality
// guard: a feasible warm cover that does not strictly beat the greedy cover
// must not seed (a tie seeded warm could steer tie-breaking away from the
// canonical cold search).
func TestSolveCoverWarmNotSeededWhenGreedyTies(t *testing.T) {
	inst := CoverInstance{
		NumElems: 2,
		Sets: []CoverSet{
			{Members: []int{0}, Weight: 1},
			{Members: []int{1}, Weight: 1},
			{Members: []int{0, 1}, Weight: 0.5},
		},
		// Greedy finds {0,1} at 0.5 on its own; the identical warm cover
		// must be recognized but not seeded.
		Warm: []int{2},
	}
	res, err := SolveCover(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmFeasible {
		t.Fatalf("feasible warm not recognized: %+v", res)
	}
	if res.WarmSeeded {
		t.Fatalf("warm tied with greedy must not seed: %+v", res)
	}
	if !res.WarmAccepted {
		t.Fatalf("matching objective must report WarmAccepted: %+v", res)
	}
}

// FuzzSolveCoverWarmStart fuzzes the warm-start contract: for a random
// instance, a cold solve and a solve warm-started from the cold optimum
// (and from garbage) must agree on the selection and objective exactly.
func FuzzSolveCoverWarmStart(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		checkWarmMatchesCold(t, randomCover(rng, rng.Intn(2) == 0))
	})
}
