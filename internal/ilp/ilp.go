// Package ilp implements a 0/1 and general-integer linear programming
// solver by best-first branch & bound over the LP relaxation provided by
// package lp.
//
// It also provides a weighted exact-cover (set-partitioning) front end with
// problem-specific reductions — unit propagation, column dominance and a
// greedy warm start — because that is exactly the ILP the paper's MBR
// composition step solves (§3.1: minimize Σ wᵢxᵢ subject to each register
// being covered by exactly one selected candidate).
//
// Concurrency: the package holds no package-level mutable state. Every
// solve allocates its own tableau and branch-and-bound heap, and inputs
// (objective, columns) are copied, not retained. Distinct solves may run
// concurrently from multiple goroutines — the per-partition composition
// pipeline in internal/core relies on this. A single Problem or solve is
// not itself safe for concurrent mutation.
package ilp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
)

// Status is the outcome of an ILP solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	NodeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node-limit"
	}
	return "unknown"
}

// Solution is the result of an ILP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch & bound nodes explored.
	Nodes int
}

// Problem is an integer linear program under construction.
type Problem struct {
	sense    lp.Sense
	rel      *lp.Problem
	integer  []bool
	costs    []float64
	origLo   []float64
	origHi   []float64
	maxNodes int

	incumbentX   []float64
	incumbentObj float64
	hasIncumbent bool
}

// SetIncumbent seeds branch & bound with a known feasible solution and its
// objective. The search starts with this bound (tightening pruning) and
// falls back to it if the node limit is reached before anything better is
// found. The caller is responsible for feasibility.
func (p *Problem) SetIncumbent(x []float64, obj float64) {
	p.incumbentX = append([]float64(nil), x...)
	p.incumbentObj = obj
	p.hasIncumbent = true
}

// New returns an empty problem with the given optimization sense.
func New(sense lp.Sense) *Problem {
	return &Problem{sense: sense, rel: lp.New(sense), maxNodes: 2_000_000}
}

// SetNodeLimit bounds the number of branch & bound nodes. Zero or negative
// restores the default.
func (p *Problem) SetNodeLimit(n int) {
	if n <= 0 {
		n = 2_000_000
	}
	p.maxNodes = n
}

// AddVar adds a variable; integer selects integrality. Returns its index.
func (p *Problem) AddVar(lo, hi, cost float64, integer bool, name string) int {
	v := p.rel.AddVar(lo, hi, cost, name)
	p.integer = append(p.integer, integer)
	p.costs = append(p.costs, cost)
	p.origLo = append(p.origLo, lo)
	p.origHi = append(p.origHi, hi)
	return v
}

// AddBinary adds a {0,1} variable with the given cost.
func (p *Problem) AddBinary(cost float64, name string) int {
	return p.AddVar(0, 1, cost, true, name)
}

// AddConstraint adds the row Σ terms (op) rhs.
func (p *Problem) AddConstraint(terms []lp.Term, op lp.Op, rhs float64) {
	p.rel.AddConstraint(terms, op, rhs)
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.integer) }

const intTol = 1e-6

// node is one branch & bound subproblem: a set of tightened variable bounds
// layered over the original relaxation, ordered by its LP bound.
type node struct {
	bound  float64 // LP relaxation objective (in minimize orientation)
	seq    int     // creation order, the bound tie-break
	lo, hi []float64
	depth  int
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }

// Less orders by (bound, creation seq). The seq tie-break makes the pop
// order a total order over nodes, so the explored sequence — and therefore
// the returned solution among equal-objective optima — does not depend on
// heap-internal array layout. That is what lets an incumbent cutoff prune
// the high-bound tail of the search without perturbing the canonical
// low-bound prefix (see SolveCover's warm-start contract).
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs best-first branch & bound and returns the best integer
// solution found.
func (p *Problem) Solve() (*Solution, error) {
	if p.NumVars() == 0 {
		return nil, errors.New("ilp: problem has no variables")
	}
	// minimize orientation: flip sign of objective for maximization when
	// comparing bounds.
	dir := 1.0
	if p.sense == lp.Maximize {
		dir = -1.0
	}

	applyBounds := func(lo, hi []float64) {
		for v := range lo {
			p.rel.SetBounds(v, lo[v], hi[v])
		}
	}
	restore := func() { applyBounds(p.origLo, p.origHi) }
	defer restore()

	// With an all-integral objective over all-integer variables, every
	// feasible objective is integral, so a fractional LP bound can be
	// rounded up before pruning — on degenerate instances (e.g. unit-cost
	// set partitioning) this collapses the search as soon as the incumbent
	// matches the rounded root bound.
	integralObj := true
	for v, c := range p.costs {
		if !p.integer[v] && c != 0 {
			integralObj = false
			break
		}
		if c != math.Trunc(c) {
			integralObj = false
			break
		}
	}
	tightenBound := func(b float64) float64 {
		if integralObj {
			return math.Ceil(b - 1e-6)
		}
		return b
	}

	root := &node{
		lo: append([]float64(nil), p.origLo...),
		hi: append([]float64(nil), p.origHi...),
	}
	applyBounds(root.lo, root.hi)
	rootSol, err := p.rel.Solve()
	if err != nil {
		return nil, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return &Solution{Status: Infeasible, Nodes: 1}, nil
	case lp.Unbounded:
		return &Solution{Status: Unbounded, Nodes: 1}, nil
	case lp.IterLimit:
		return nil, errors.New("ilp: LP iteration limit at root")
	}
	root.bound = tightenBound(dir * rootSol.Objective)

	var (
		bestX   []float64
		bestObj = math.Inf(1) // minimize orientation
		nodes   = 0
	)
	if p.hasIncumbent {
		bestX = append([]float64(nil), p.incumbentX...)
		bestObj = dir * p.incumbentObj
	}
	consider := func(x []float64, obj float64) {
		if obj < bestObj-1e-9 {
			bestObj = obj
			bestX = append([]float64(nil), x...)
		}
	}
	if v, ok := p.integral(rootSol.X); ok {
		consider(v, dir*rootSol.Objective)
	}

	h := &nodeHeap{root}
	heap.Init(h)
	seq := 0
	for h.Len() > 0 {
		if nodes >= p.maxNodes {
			if bestX == nil {
				return &Solution{Status: NodeLimit, Nodes: nodes}, nil
			}
			return p.finish(bestX, bestObj, dir, NodeLimit, nodes), nil
		}
		nd := heap.Pop(h).(*node)
		if nd.bound >= bestObj-1e-9 {
			continue // pruned by bound
		}
		nodes++
		applyBounds(nd.lo, nd.hi)
		sol, err := p.rel.Solve()
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			continue
		}
		bound := tightenBound(dir * sol.Objective)
		if bound >= bestObj-1e-9 {
			continue
		}
		if x, ok := p.integral(sol.X); ok {
			consider(x, bound)
			continue
		}
		// Branch on the most fractional integer variable.
		bv, frac := -1, 0.0
		for v, isInt := range p.integer {
			if !isInt {
				continue
			}
			f := sol.X[v] - math.Floor(sol.X[v])
			d := math.Min(f, 1-f)
			if d > intTol && d > frac {
				frac = d
				bv = v
			}
		}
		if bv == -1 {
			// Numerically integral after rounding.
			if x, ok := p.integral(sol.X); ok {
				consider(x, bound)
			}
			continue
		}
		floorV := math.Floor(sol.X[bv])
		// Down child: x ≤ floor.
		seq++
		down := &node{bound: bound, seq: seq, depth: nd.depth + 1,
			lo: append([]float64(nil), nd.lo...),
			hi: append([]float64(nil), nd.hi...)}
		down.hi[bv] = floorV
		if down.lo[bv] <= down.hi[bv] {
			heap.Push(h, down)
		}
		// Up child: x ≥ floor+1.
		seq++
		up := &node{bound: bound, seq: seq, depth: nd.depth + 1,
			lo: append([]float64(nil), nd.lo...),
			hi: append([]float64(nil), nd.hi...)}
		up.lo[bv] = floorV + 1
		if up.lo[bv] <= up.hi[bv] {
			heap.Push(h, up)
		}
	}
	if bestX == nil {
		return &Solution{Status: Infeasible, Nodes: nodes}, nil
	}
	return p.finish(bestX, bestObj, dir, Optimal, nodes), nil
}

func (p *Problem) finish(x []float64, obj, dir float64, st Status, nodes int) *Solution {
	return &Solution{Status: st, Objective: dir * obj, X: x, Nodes: nodes}
}

// integral rounds near-integer values and reports whether every integer
// variable is integral within tolerance.
func (p *Problem) integral(x []float64) ([]float64, bool) {
	out := append([]float64(nil), x...)
	for v, isInt := range p.integer {
		if !isInt {
			continue
		}
		r := math.Round(out[v])
		if math.Abs(out[v]-r) > intTol {
			return nil, false
		}
		out[v] = r
	}
	return out, true
}

// ---------------------------------------------------------------------------
// Weighted exact cover (set partitioning)
// ---------------------------------------------------------------------------

// CoverSet is one column of a set-partitioning instance.
type CoverSet struct {
	// Members are element indices in [0, NumElems).
	Members []int
	// Weight is the column's cost; must be finite and non-negative.
	// Columns the model wants to forbid (the paper's wᵢ = ∞) should simply
	// not be added.
	Weight float64
}

// CoverInstance is a weighted exact-cover problem: choose a subset of Sets
// with minimum total weight such that every element in [0, NumElems) is in
// exactly one chosen set.
type CoverInstance struct {
	NumElems int
	Sets     []CoverSet
	// NodeLimit caps the branch & bound nodes (0 = default). When the
	// limit stops the search, the best cover found so far is returned with
	// Exact=false in the result; highly degenerate instances (many equal
	// weights) would otherwise branch combinatorially for no QoR gain.
	NodeLimit int
	// Warm optionally names a known feasible exact cover — indices into
	// Sets — typically the previous pass's selection for this subproblem.
	// When it prices strictly below the greedy cover it seeds branch &
	// bound as the incumbent, so the search only has to *improve on* the
	// old selection rather than rediscover it. The result is guaranteed to
	// match a cold solve of the same instance column-for-column: if the
	// warm incumbent would be returned unimproved, SolveCover reruns the
	// search with the canonical greedy seed (the probe has already paid for
	// itself by proving no strict improvement exists). A stale or
	// infeasible Warm is silently ignored.
	Warm []int
}

// CoverResult reports the chosen columns of a cover solve.
type CoverResult struct {
	// Chosen holds indices into CoverInstance.Sets.
	Chosen    []int
	Objective float64
	Nodes     int
	// Reduced counts columns removed by preprocessing.
	Reduced int
	// TightenPruned counts columns removed at the root by reduced-cost
	// fixing: against surrogate duals y_e = min_{S∋e} w_S/|S| (dual
	// feasible for the covering relaxation) a column whose reduced cost
	// exceeds the greedy-UB optimality gap appears in no optimal cover.
	TightenPruned int
	// Exact is false when the node limit stopped the search and Chosen is
	// the best incumbent rather than a proven optimum.
	Exact bool
	// WarmFeasible reports that CoverInstance.Warm mapped onto a feasible
	// cover of the presolved instance.
	WarmFeasible bool
	// WarmSeeded reports that the warm cover priced strictly below the
	// greedy cover and therefore seeded branch & bound as the incumbent.
	WarmSeeded bool
	// WarmAccepted reports that the final objective matches the warm
	// cover's objective — the previous selection is still optimal.
	WarmAccepted bool
	// WarmRetried reports that the warm incumbent survived the probe
	// search unimproved, forcing a canonical re-solve with the greedy seed
	// (Nodes then includes both searches).
	WarmRetried bool
}

// ErrCoverInfeasible is returned when no exact cover exists.
var ErrCoverInfeasible = errors.New("ilp: exact cover infeasible")

// SolveCover solves the weighted exact-cover instance to optimality.
//
// Preprocessing before branch & bound:
//   - validation (member indices in range, weights finite and ≥ 0);
//   - forced columns: an element covered by exactly one column forces that
//     column, which in turn deletes every column clashing with it;
//   - dominance: among columns with an identical member set only the
//     cheapest is kept.
func SolveCover(inst CoverInstance) (*CoverResult, error) {
	if inst.NumElems < 0 {
		return nil, errors.New("ilp: negative NumElems")
	}
	for si, s := range inst.Sets {
		if len(s.Members) == 0 {
			return nil, fmt.Errorf("ilp: cover set %d is empty", si)
		}
		if math.IsInf(s.Weight, 0) || math.IsNaN(s.Weight) || s.Weight < 0 {
			return nil, fmt.Errorf("ilp: cover set %d has invalid weight %v", si, s.Weight)
		}
		seen := map[int]bool{}
		for _, m := range s.Members {
			if m < 0 || m >= inst.NumElems {
				return nil, fmt.Errorf("ilp: cover set %d member %d out of range", si, m)
			}
			if seen[m] {
				return nil, fmt.Errorf("ilp: cover set %d repeats member %d", si, m)
			}
			seen[m] = true
		}
	}
	if inst.NumElems == 0 {
		return &CoverResult{}, nil
	}

	alive := make([]bool, len(inst.Sets))
	for i := range alive {
		alive[i] = true
	}
	reduced := 0

	// Dominance: identical member sets keep only the cheapest column.
	bySig := map[string]int{}
	for i, s := range inst.Sets {
		sig := memberSig(s.Members)
		if j, ok := bySig[sig]; ok {
			if s.Weight < inst.Sets[j].Weight {
				alive[j] = false
				bySig[sig] = i
			} else {
				alive[i] = false
			}
			reduced++
		} else {
			bySig[sig] = i
		}
	}

	covered := make([]bool, inst.NumElems)
	var forced []int
	// Iterate forcing to a fixed point.
	for {
		coverers := make([][]int, inst.NumElems)
		for i, s := range inst.Sets {
			if !alive[i] {
				continue
			}
			for _, m := range s.Members {
				if !covered[m] {
					coverers[m] = append(coverers[m], i)
				}
			}
		}
		progressed := false
		for e := 0; e < inst.NumElems; e++ {
			if covered[e] {
				continue
			}
			switch len(coverers[e]) {
			case 0:
				return nil, ErrCoverInfeasible
			case 1:
				ci := coverers[e][0]
				forced = append(forced, ci)
				for _, m := range inst.Sets[ci].Members {
					if covered[m] {
						return nil, ErrCoverInfeasible
					}
					covered[m] = true
				}
				alive[ci] = false
				// Delete clashing columns.
				for i, s := range inst.Sets {
					if !alive[i] {
						continue
					}
					for _, m := range s.Members {
						if covered[m] {
							alive[i] = false
							reduced++
							break
						}
					}
				}
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}

	// Remaining elements and columns go to the ILP.
	var remElems []int
	elemIdx := make([]int, inst.NumElems)
	for e := 0; e < inst.NumElems; e++ {
		elemIdx[e] = -1
		if !covered[e] {
			elemIdx[e] = len(remElems)
			remElems = append(remElems, e)
		}
	}
	objForced := 0.0
	for _, ci := range forced {
		objForced += inst.Sets[ci].Weight
	}
	if len(remElems) == 0 {
		sort.Ints(forced)
		return &CoverResult{Chosen: forced, Objective: objForced, Reduced: reduced, Exact: true}, nil
	}

	var cols []int // column index in inst.Sets per ILP var
	for i := range inst.Sets {
		if alive[i] {
			cols = append(cols, i)
		}
	}

	// Greedy incumbent (most cost-effective set first): guarantees a
	// returnable solution even if the node limit stops the search early,
	// its bound prunes from node one, and it is the upper bound for the
	// reduced-cost root tightening below.
	greedyX, greedyObj, hasGreedy := greedyCover(inst, cols, covered)

	// Root bound tightening: y_e = min_{S∋e} w_S/|S| is dual feasible for
	// the covering relaxation (every column prices out non-negatively), so
	// L = Σ y_e lower-bounds any exact cover and a column with reduced cost
	// rc_j = w_j − Σ_{e∈j} y_e has obj ≥ L + rc_j in every cover using it.
	// With the greedy UB, rc_j > UB − L (+tol) proves j is in no optimal
	// cover — not even a tied one — so dropping it cannot change the
	// canonical selection. Greedy columns never satisfy the cut (their
	// complement prices ≥ the leftover duals), so the incumbent survives;
	// singletons are kept regardless as the feasibility backstop.
	tightPruned := 0
	if hasGreedy {
		y := make([]float64, len(remElems))
		for k := range y {
			y[k] = math.Inf(1)
		}
		for _, ci := range cols {
			s := inst.Sets[ci]
			rate := s.Weight / float64(len(s.Members))
			for _, m := range s.Members {
				if k := elemIdx[m]; rate < y[k] {
					y[k] = rate
				}
			}
		}
		lower := 0.0
		for _, v := range y {
			lower += v
		}
		slack := greedyObj - lower
		keptCols := cols[:0]
		keptX := greedyX[:0]
		for vi, ci := range cols {
			s := inst.Sets[ci]
			if len(s.Members) > 1 && greedyX[vi] != 1 {
				rc := s.Weight
				for _, m := range s.Members {
					rc -= y[elemIdx[m]]
				}
				if rc > slack+1e-9 {
					tightPruned++
					continue
				}
			}
			keptCols = append(keptCols, ci)
			keptX = append(keptX, greedyX[vi])
		}
		cols = keptCols
		greedyX = keptX
	}

	buildAndSolve := func(seedX []float64, seedObj float64, seed bool) (*Solution, error) {
		prob := New(lp.Minimize)
		if inst.NodeLimit > 0 {
			prob.SetNodeLimit(inst.NodeLimit)
		} else {
			// Default budget scales inversely with LP size, so a node costs
			// roughly constant total work regardless of column count.
			lim := 300_000 / (len(inst.Sets) + 1)
			if lim < 100 {
				lim = 100
			}
			if lim > 50_000 {
				lim = 50_000
			}
			prob.SetNodeLimit(lim)
		}
		for _, ci := range cols {
			prob.AddBinary(inst.Sets[ci].Weight, "")
		}
		for _, e := range remElems {
			var terms []lp.Term
			for vi, ci := range cols {
				for _, m := range inst.Sets[ci].Members {
					if m == e {
						terms = append(terms, lp.Term{Var: vi, Coef: 1})
					}
				}
			}
			prob.AddConstraint(terms, lp.EQ, 1)
		}
		if seed {
			prob.SetIncumbent(seedX, seedObj)
		}
		return prob.Solve()
	}

	res := &CoverResult{Reduced: reduced, TightenPruned: tightPruned}

	// Warm start from the caller's previous selection. Only a cover that
	// prices strictly below the greedy seed is worth seeding; on a tie the
	// greedy seed already prunes just as hard and keeps the solve
	// bit-identical to a cold run for free.
	warmX, warmObj, warmOK := mapWarmCover(inst, cols, forced, covered)
	res.WarmFeasible = warmOK
	seedX, seedObj, hasSeed := greedyX, greedyObj, hasGreedy
	warmSeeded := warmOK && (!hasGreedy || warmObj < greedyObj-1e-9)
	if warmSeeded {
		seedX, seedObj, hasSeed = warmX, warmObj, true
		res.WarmSeeded = true
	}

	sol, err := buildAndSolve(seedX, seedObj, hasSeed)
	if err != nil {
		return nil, err
	}
	if warmSeeded && sol.X != nil && sol.Objective >= warmObj-1e-9 {
		// The warm incumbent survived unimproved. Returning it would leak
		// the previous pass's tie-break into this solve (a cold run returns
		// its own first-found optimum among ties), so re-run with the
		// canonical greedy seed. The probe was not wasted: it proved no
		// strict improvement exists, and its cutoff pruned the whole search
		// plateau, so the retry dominates total cost only when the warm
		// start had nothing to offer anyway.
		res.WarmRetried = true
		probeNodes := sol.Nodes
		sol, err = buildAndSolve(greedyX, greedyObj, hasGreedy)
		if err != nil {
			return nil, err
		}
		sol.Nodes += probeNodes
	}
	if sol.Status == Infeasible {
		return nil, ErrCoverInfeasible
	}
	switch sol.Status {
	case Optimal:
	case NodeLimit:
		if sol.X == nil {
			return nil, fmt.Errorf("ilp: cover node limit reached with no incumbent")
		}
	default:
		return nil, fmt.Errorf("ilp: cover solve ended with status %v", sol.Status)
	}
	if warmOK && math.Abs(sol.Objective-warmObj) <= 1e-9 {
		res.WarmAccepted = true
	}
	chosen := append([]int(nil), forced...)
	for vi, ci := range cols {
		if sol.X[vi] > 0.5 {
			chosen = append(chosen, ci)
		}
	}
	sort.Ints(chosen)
	res.Chosen = chosen
	res.Objective = objForced + sol.Objective
	res.Nodes = sol.Nodes
	res.Exact = sol.Status == Optimal
	return res, nil
}

// mapWarmCover projects CoverInstance.Warm onto the presolved instance: the
// ILP variable assignment over cols plus its objective. ok=false when Warm
// is absent, references deleted columns, clashes with presolve forcing, or
// fails to partition the remaining elements — any staleness just disables
// the warm start, it is never an error.
func mapWarmCover(inst CoverInstance, cols []int, forced []int, covered []bool) ([]float64, float64, bool) {
	if len(inst.Warm) == 0 {
		return nil, 0, false
	}
	forcedSet := make(map[int]bool, len(forced))
	for _, ci := range forced {
		forcedSet[ci] = true
	}
	varOf := make(map[int]int, len(cols))
	for vi, ci := range cols {
		varOf[ci] = vi
	}
	x := make([]float64, len(cols))
	obj := 0.0
	seen := append([]bool(nil), covered...)
	remaining := 0
	for _, c := range seen {
		if !c {
			remaining++
		}
	}
	for _, wi := range inst.Warm {
		if wi < 0 || wi >= len(inst.Sets) {
			return nil, 0, false
		}
		if forcedSet[wi] {
			continue // already applied outside the ILP
		}
		vi, ok := varOf[wi]
		if !ok || x[vi] == 1 {
			return nil, 0, false
		}
		for _, m := range inst.Sets[wi].Members {
			if seen[m] {
				return nil, 0, false
			}
			seen[m] = true
		}
		remaining -= len(inst.Sets[wi].Members)
		x[vi] = 1
		obj += inst.Sets[wi].Weight
	}
	if remaining != 0 {
		return nil, 0, false
	}
	return x, obj, true
}

// greedyCover builds a feasible exact cover over the reduced instance
// (columns `cols`, elements not yet covered), trying several orderings
// (cheapest weight-per-member, largest-first, cheapest-first) and keeping
// the best. Returns the solution as an ILP variable assignment plus its
// objective; ok=false when every ordering gets stuck (possible without
// singleton sets).
func greedyCover(inst CoverInstance, cols []int, already []bool) ([]float64, float64, bool) {
	run := func(less func(a, b int) bool) ([]float64, float64, bool) {
		order := make([]int, len(cols))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if less(order[a], order[b]) {
				return true
			}
			if less(order[b], order[a]) {
				return false
			}
			return order[a] < order[b]
		})
		covered := append([]bool(nil), already...)
		x := make([]float64, len(cols))
		obj := 0.0
		remaining := 0
		for _, c := range covered {
			if !c {
				remaining++
			}
		}
		for _, vi := range order {
			if remaining == 0 {
				break
			}
			s := inst.Sets[cols[vi]]
			ok := true
			for _, m := range s.Members {
				if covered[m] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, m := range s.Members {
				covered[m] = true
			}
			remaining -= len(s.Members)
			x[vi] = 1
			obj += s.Weight
		}
		return x, obj, remaining == 0
	}
	set := func(vi int) CoverSet { return inst.Sets[cols[vi]] }
	strategies := []func(a, b int) bool{
		func(a, b int) bool { // cheapest per member
			return set(a).Weight/float64(len(set(a).Members)) < set(b).Weight/float64(len(set(b).Members))
		},
		func(a, b int) bool { // largest first
			return len(set(a).Members) > len(set(b).Members)
		},
		func(a, b int) bool { // cheapest first
			return set(a).Weight < set(b).Weight
		},
	}
	var bestX []float64
	bestObj := math.Inf(1)
	for _, less := range strategies {
		if x, obj, ok := run(less); ok && obj < bestObj {
			bestX, bestObj = x, obj
		}
	}
	return bestX, bestObj, bestX != nil
}

func memberSig(members []int) string {
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	buf := make([]byte, 0, len(ms)*4)
	for _, m := range ms {
		buf = append(buf, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(buf)
}
