package ilp

import (
	"math/rand"
	"testing"
)

// composition-shaped cover instance: elems registers, cols candidates with
// 1-4 members, paper-style weights (1 for singletons, 1/bits for merges).
func coverInstance(elems, cols int, seed int64) CoverInstance {
	rng := rand.New(rand.NewSource(seed))
	inst := CoverInstance{NumElems: elems}
	for e := 0; e < elems; e++ {
		inst.Sets = append(inst.Sets, CoverSet{Members: []int{e}, Weight: 1})
	}
	for c := 0; c < cols; c++ {
		k := 2 + rng.Intn(3)
		start := rng.Intn(elems)
		var ms []int
		for i := 0; i < k && start+i < elems; i++ {
			ms = append(ms, start+i)
		}
		if len(ms) < 2 {
			continue
		}
		inst.Sets = append(inst.Sets, CoverSet{Members: ms, Weight: 1 / float64(len(ms))})
	}
	return inst
}

// BenchmarkSolveCover30x500 is one §3.1 subgraph ILP at the paper's bound.
func BenchmarkSolveCover30x500(b *testing.B) {
	inst := coverInstance(30, 500, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveCover(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCover30x3000 is a candidate-rich subgraph.
func BenchmarkSolveCover30x3000(b *testing.B) {
	inst := coverInstance(30, 3000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveCover(inst); err != nil {
			b.Fatal(err)
		}
	}
}
