package scan

import (
	"fmt"

	"repro/internal/netlist"
)

// ApplySplit updates the plan after a register was decomposed into parts
// (netlist.SplitRegister): the original chain entry is replaced by the
// parts in order, preserving the chain's scan sequence. Unscanned originals
// are a no-op.
func (p *Plan) ApplySplit(orig netlist.InstID, parts []netlist.InstID) error {
	c, pos, ok := p.ChainOf(orig)
	if !ok {
		return nil
	}
	if len(parts) == 0 {
		return fmt.Errorf("scan: ApplySplit(%d): no parts", orig)
	}
	for _, id := range parts {
		if _, dup := p.ref[id]; dup {
			return fmt.Errorf("scan: ApplySplit: part %d already on a chain", id)
		}
	}
	repl := make([]netlist.InstID, 0, len(c.Regs)+len(parts)-1)
	repl = append(repl, c.Regs[:pos]...)
	repl = append(repl, parts...)
	repl = append(repl, c.Regs[pos+1:]...)
	c.Regs = repl
	p.reindex()
	return nil
}
