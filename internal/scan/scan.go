// Package scan models scan-chain organization and the scan-compatibility
// rules of §2: scan partitions, chains, ordered scan sections, the pairwise
// and group-level compatibility predicates used when building the
// compatibility graph, chain bookkeeping across register merges, and
// physical stitching of the chains into the netlist.
package scan

import (
	"fmt"
	"sort"

	"repro/internal/lib"
	"repro/internal/netlist"
)

// Chain is one scan chain: an ordered list of register instances.
type Chain struct {
	ID        int
	Partition int
	// Ordered marks an ordered scan section: composition must preserve the
	// relative scan order, so only contiguous runs may merge, into an MBR
	// whose internal chain keeps that order.
	Ordered bool
	Regs    []netlist.InstID
}

// Ref locates a register inside a plan.
type Ref struct {
	Chain int // index into Plan.chains
	Pos   int // position within the chain
}

// Plan is the design's scan organization.
type Plan struct {
	// AllowCrossChain permits moving registers between chains of the same
	// partition during composition (the paper's default assumption for
	// unordered chains).
	AllowCrossChain bool

	chains []*Chain
	ref    map[netlist.InstID]Ref
}

// NewPlan returns an empty plan with cross-chain movement allowed.
func NewPlan() *Plan {
	return &Plan{AllowCrossChain: true, ref: map[netlist.InstID]Ref{}}
}

// AddChain appends a chain. Registers must not already be on a chain.
func (p *Plan) AddChain(partition int, ordered bool, regs []netlist.InstID) (*Chain, error) {
	for _, r := range regs {
		if _, dup := p.ref[r]; dup {
			return nil, fmt.Errorf("scan: register %d already on a chain", r)
		}
	}
	c := &Chain{ID: len(p.chains), Partition: partition, Ordered: ordered,
		Regs: append([]netlist.InstID(nil), regs...)}
	p.chains = append(p.chains, c)
	for i, r := range c.Regs {
		p.ref[r] = Ref{Chain: c.ID, Pos: i}
	}
	return c, nil
}

// Chains returns all chains.
func (p *Plan) Chains() []*Chain { return p.chains }

// ChainOf returns the chain and position of a register, or ok=false for
// unscanned registers.
func (p *Plan) ChainOf(id netlist.InstID) (*Chain, int, bool) {
	r, ok := p.ref[id]
	if !ok {
		return nil, 0, false
	}
	return p.chains[r.Chain], r.Pos, true
}

// PairCompatible implements the pairwise scan rule of §2: both registers
// unscanned, or both scanned in the same partition — additionally on the
// same chain when either sits in an ordered section or cross-chain movement
// is disallowed.
func (p *Plan) PairCompatible(a, b netlist.InstID) bool {
	ca, pa, oka := p.ChainOf(a)
	cb, pb, okb := p.ChainOf(b)
	_ = pa
	_ = pb
	if oka != okb {
		return false
	}
	if !oka {
		return true // both unscanned
	}
	if ca.Partition != cb.Partition {
		return false
	}
	if ca.Ordered || cb.Ordered || !p.AllowCrossChain {
		return ca.ID == cb.ID
	}
	return true
}

// GroupCompatible implements the group-level rule: every pair must be
// PairCompatible, and a group inside an ordered section must form a
// contiguous run of the chain (so the MBR's internal chain can preserve the
// scan order).
func (p *Plan) GroupCompatible(ids []netlist.InstID) bool {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if !p.PairCompatible(ids[i], ids[j]) {
				return false
			}
		}
	}
	if len(ids) == 0 {
		return false
	}
	c, _, ok := p.ChainOf(ids[0])
	if !ok || !c.Ordered {
		return true
	}
	// Contiguity in the ordered chain.
	pos := make([]int, 0, len(ids))
	for _, id := range ids {
		_, pp, _ := p.ChainOf(id)
		pos = append(pos, pp)
	}
	sort.Ints(pos)
	for i := 1; i < len(pos); i++ {
		if pos[i] != pos[i-1]+1 {
			return false
		}
	}
	return true
}

// MergeOrder returns the order in which the group's registers must be
// packed into the MBR so an internal scan chain preserves scan order:
// chain position order for scanned groups, the given order otherwise.
func (p *Plan) MergeOrder(ids []netlist.InstID) []netlist.InstID {
	out := append([]netlist.InstID(nil), ids...)
	if _, _, ok := p.ChainOf(out[0]); !ok {
		return out
	}
	sort.Slice(out, func(i, j int) bool {
		ci, pi, _ := p.ChainOf(out[i])
		cj, pj, _ := p.ChainOf(out[j])
		if ci.ID != cj.ID {
			return ci.ID < cj.ID
		}
		return pi < pj
	})
	return out
}

// ApplyMerge updates the plan after the registers in group were merged into
// mbr: the group members are removed from their chains and the MBR takes
// the position of the earliest member (of the first chain touched). The
// group must be GroupCompatible.
func (p *Plan) ApplyMerge(group []netlist.InstID, mbr netlist.InstID) error {
	if len(group) == 0 {
		return fmt.Errorf("scan: empty merge group")
	}
	if !p.GroupCompatible(group) {
		return fmt.Errorf("scan: merge group is not scan compatible")
	}
	if _, _, scanned := p.ChainOf(group[0]); !scanned {
		return nil // unscanned group: nothing to track
	}
	// Find the anchor: lowest (chain, pos) among members.
	anchor := Ref{Chain: 1 << 30, Pos: 1 << 30}
	inGroup := map[netlist.InstID]bool{}
	for _, id := range group {
		inGroup[id] = true
		r := p.ref[id]
		if r.Chain < anchor.Chain || (r.Chain == anchor.Chain && r.Pos < anchor.Pos) {
			anchor = r
		}
	}
	for ci, c := range p.chains {
		var kept []netlist.InstID
		for pos, id := range c.Regs {
			if ci == anchor.Chain && pos == anchor.Pos {
				kept = append(kept, mbr)
			}
			if !inGroup[id] {
				kept = append(kept, id)
			}
		}
		c.Regs = kept
	}
	p.reindex()
	return nil
}

func (p *Plan) reindex() {
	p.ref = map[netlist.InstID]Ref{}
	for ci, c := range p.chains {
		for pos, id := range c.Regs {
			p.ref[id] = Ref{Chain: ci, Pos: pos}
		}
	}
}

// Stitch wires every chain into the design: scan-in port/net → first
// register SI → ... → last register SO → scan-out. Existing scan-net
// connections on the chain registers are replaced. Registers with internal
// scan use their single SI/SO pins; external-scan MBRs are traversed
// bit by bit. Registers whose cells have no scan circuitry are an error.
//
// The created nets are named <prefix>_c<chain>_<k>.
func (p *Plan) Stitch(d *netlist.Design, prefix string) error {
	for _, c := range p.chains {
		var hops []*netlist.Pin // alternating SO/SI boundary pins in order
		for _, id := range c.Regs {
			in := d.Inst(id)
			if in == nil {
				return fmt.Errorf("scan: chain %d references missing instance %d", c.ID, id)
			}
			if in.RegCell == nil {
				return fmt.Errorf("scan: chain %d instance %q is not a register", c.ID, in.Name)
			}
			switch in.RegCell.Class.Scan {
			case lib.InternalScan:
				hops = append(hops, d.FindPin(in, netlist.PinScanIn, 0))
				so := findScanOut(d, in)
				hops = append(hops, so)
			case lib.ExternalScan:
				for b := 0; b < in.Bits(); b++ {
					hops = append(hops, d.FindPin(in, netlist.PinScanIn, b))
					hops = append(hops, d.FindPin(in, netlist.PinScanOut, b))
				}
			default:
				return fmt.Errorf("scan: register %q has no scan pins", in.Name)
			}
		}
		// Connect SO(k) → SI(k+1).
		for k := 1; k+1 < len(hops); k += 2 {
			so, si := hops[k], hops[k+1]
			if so == nil || si == nil {
				return fmt.Errorf("scan: chain %d missing scan pin", c.ID)
			}
			net := d.AddNet(fmt.Sprintf("%s_c%d_%d", prefix, c.ID, k/2), false)
			d.Connect(so, net)
			d.Connect(si, net)
		}
	}
	return nil
}

func findScanOut(d *netlist.Design, in *netlist.Inst) *netlist.Pin {
	for _, pid := range in.Pins {
		p := d.Pin(pid)
		if p.Kind == netlist.PinScanOut {
			return p
		}
	}
	return nil
}

// Validate checks internal consistency: no register on two chains, every
// reference resolvable in the design (when d is non-nil).
func (p *Plan) Validate(d *netlist.Design) error {
	seen := map[netlist.InstID]int{}
	for ci, c := range p.chains {
		for _, id := range c.Regs {
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("scan: register %d on chains %d and %d", id, prev, ci)
			}
			seen[id] = ci
			if d != nil && d.Inst(id) == nil {
				return fmt.Errorf("scan: chain %d references dead instance %d", ci, id)
			}
		}
	}
	for id, r := range p.ref {
		if r.Chain >= len(p.chains) || r.Pos >= len(p.chains[r.Chain].Regs) ||
			p.chains[r.Chain].Regs[r.Pos] != id {
			return fmt.Errorf("scan: stale ref for register %d", id)
		}
	}
	return nil
}
