package scan

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

var testLib = lib.MustGenerateDefault()

func iscanClass() lib.FuncClass {
	return lib.FuncClass{Kind: lib.FlipFlop, Scan: lib.InternalScan}
}

func scanDesign(t testing.TB, n int) (*netlist.Design, []*netlist.Inst) {
	t.Helper()
	d := netlist.NewDesign("s", geom.RectWH(0, 0, 500000, 500000), testLib)
	cell := testLib.CellsOfWidth(iscanClass(), 1)[0]
	var regs []*netlist.Inst
	for i := 0; i < n; i++ {
		r, err := d.AddRegister(fmt.Sprintf("r%d", i), cell,
			geom.Point{X: int64(i) * 2000, Y: 0})
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, r)
	}
	return d, regs
}

func ids(regs []*netlist.Inst) []netlist.InstID {
	out := make([]netlist.InstID, len(regs))
	for i, r := range regs {
		out[i] = r.ID
	}
	return out
}

func TestPairCompatibleUnscanned(t *testing.T) {
	_, regs := scanDesign(t, 3)
	p := NewPlan()
	if !p.PairCompatible(regs[0].ID, regs[1].ID) {
		t.Fatal("two unscanned registers must be compatible")
	}
	if _, err := p.AddChain(0, false, []netlist.InstID{regs[0].ID}); err != nil {
		t.Fatal(err)
	}
	if p.PairCompatible(regs[0].ID, regs[1].ID) {
		t.Fatal("scanned and unscanned registers must be incompatible")
	}
}

func TestPairCompatiblePartitions(t *testing.T) {
	_, regs := scanDesign(t, 4)
	p := NewPlan()
	p.AddChain(0, false, []netlist.InstID{regs[0].ID, regs[1].ID})
	p.AddChain(1, false, []netlist.InstID{regs[2].ID})
	p.AddChain(0, false, []netlist.InstID{regs[3].ID})
	if !p.PairCompatible(regs[0].ID, regs[1].ID) {
		t.Fatal("same chain same partition must be compatible")
	}
	if p.PairCompatible(regs[0].ID, regs[2].ID) {
		t.Fatal("different partitions must be incompatible")
	}
	if !p.PairCompatible(regs[0].ID, regs[3].ID) {
		t.Fatal("cross-chain same partition must be compatible when allowed")
	}
	p.AllowCrossChain = false
	if p.PairCompatible(regs[0].ID, regs[3].ID) {
		t.Fatal("cross-chain must be incompatible when disallowed")
	}
}

func TestOrderedSectionRules(t *testing.T) {
	_, regs := scanDesign(t, 6)
	p := NewPlan()
	p.AddChain(0, true, ids(regs[:4]))
	p.AddChain(0, true, ids(regs[4:]))
	// Same ordered chain: pairwise OK.
	if !p.PairCompatible(regs[0].ID, regs[2].ID) {
		t.Fatal("same ordered chain must be pairwise compatible")
	}
	// Different chains, even same partition: not OK when ordered.
	if p.PairCompatible(regs[0].ID, regs[4].ID) {
		t.Fatal("ordered sections must not mix across chains")
	}
	// Contiguous run OK.
	if !p.GroupCompatible(ids(regs[1:4])) {
		t.Fatal("contiguous run must be group compatible")
	}
	// Non-contiguous subset not OK.
	if p.GroupCompatible([]netlist.InstID{regs[0].ID, regs[2].ID}) {
		t.Fatal("gap in ordered run must be rejected")
	}
}

func TestMergeOrderFollowsChain(t *testing.T) {
	_, regs := scanDesign(t, 4)
	p := NewPlan()
	p.AddChain(0, true, ids(regs))
	got := p.MergeOrder([]netlist.InstID{regs[2].ID, regs[0].ID, regs[1].ID})
	want := []netlist.InstID{regs[0].ID, regs[1].ID, regs[2].ID}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeOrder = %v want %v", got, want)
		}
	}
}

func TestApplyMergeOrdered(t *testing.T) {
	d, regs := scanDesign(t, 5)
	p := NewPlan()
	p.AddChain(0, true, ids(regs))
	// Merge regs[1..3] into an MBR (4-bit cell, one bit unused).
	cell := testLib.CellsOfWidth(iscanClass(), 4)[0]
	group := []*netlist.Inst{regs[1], regs[2], regs[3]}
	mr, err := d.MergeRegisters(group, cell, "mbr", geom.Point{X: 4000, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyMerge(ids(group), mr.MBR.ID); err != nil {
		t.Fatal(err)
	}
	c := p.Chains()[0]
	want := []netlist.InstID{regs[0].ID, mr.MBR.ID, regs[4].ID}
	if len(c.Regs) != 3 {
		t.Fatalf("chain = %v want %v", c.Regs, want)
	}
	for i := range want {
		if c.Regs[i] != want[i] {
			t.Fatalf("chain = %v want %v", c.Regs, want)
		}
	}
	if err := p.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestApplyMergeRejectsNonContiguous(t *testing.T) {
	_, regs := scanDesign(t, 5)
	p := NewPlan()
	p.AddChain(0, true, ids(regs))
	err := p.ApplyMerge([]netlist.InstID{regs[0].ID, regs[2].ID}, 99)
	if err == nil {
		t.Fatal("non-contiguous ordered merge must fail")
	}
}

func TestApplyMergeCrossChain(t *testing.T) {
	d, regs := scanDesign(t, 4)
	p := NewPlan()
	p.AddChain(0, false, ids(regs[:2]))
	p.AddChain(0, false, ids(regs[2:]))
	cell := testLib.CellsOfWidth(iscanClass(), 2)[0]
	group := []*netlist.Inst{regs[1], regs[2]} // one from each chain
	mr, err := d.MergeRegisters(group, cell, "mbr", geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyMerge(ids(group), mr.MBR.ID); err != nil {
		t.Fatal(err)
	}
	// MBR lands on chain 0 (anchor = regs[1] at chain0 pos1).
	c0, c1 := p.Chains()[0], p.Chains()[1]
	if len(c0.Regs) != 2 || c0.Regs[1] != mr.MBR.ID {
		t.Fatalf("chain0 = %v", c0.Regs)
	}
	if len(c1.Regs) != 1 || c1.Regs[0] != regs[3].ID {
		t.Fatalf("chain1 = %v", c1.Regs)
	}
	if err := p.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestStitchInternalScan(t *testing.T) {
	d, regs := scanDesign(t, 4)
	p := NewPlan()
	p.AddChain(0, false, ids(regs))
	if err := p.Stitch(d, "scan"); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each adjacent pair shares a net: r[i].SO → r[i+1].SI.
	for i := 0; i+1 < len(regs); i++ {
		so := findScanOut(d, regs[i])
		si := d.FindPin(regs[i+1], netlist.PinScanIn, 0)
		if so.Net == netlist.NoID || so.Net != si.Net {
			t.Fatalf("hop %d not stitched", i)
		}
	}
}

func TestStitchExternalScanTraversesBits(t *testing.T) {
	d := netlist.NewDesign("es", geom.RectWH(0, 0, 100000, 100000), testLib)
	eclass := lib.FuncClass{Kind: lib.FlipFlop, Scan: lib.ExternalScan}
	cell2 := testLib.CellsOfWidth(eclass, 2)[0]
	a, _ := d.AddRegister("a", cell2, geom.Point{})
	b, _ := d.AddRegister("b", cell2, geom.Point{X: 5000})
	p := NewPlan()
	p.AddChain(0, false, []netlist.InstID{a.ID, b.ID})
	if err := p.Stitch(d, "scan"); err != nil {
		t.Fatal(err)
	}
	// a.SO0→a.SI1, a.SO1→b.SI0, b.SO0→b.SI1: 3 hops.
	hops := 0
	d.Nets(func(n *netlist.Net) {
		if n.Driver != netlist.NoID && len(n.Sinks) == 1 {
			dp := d.Pin(n.Driver)
			sp := d.Pin(n.Sinks[0])
			if dp.Kind == netlist.PinScanOut && sp.Kind == netlist.PinScanIn {
				hops++
			}
		}
	})
	if hops != 3 {
		t.Fatalf("hops = %d want 3", hops)
	}
}

func TestStitchRejectsNoScanCell(t *testing.T) {
	d := netlist.NewDesign("ns", geom.RectWH(0, 0, 100000, 100000), testLib)
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	r, _ := d.AddRegister("r", cell, geom.Point{})
	p := NewPlan()
	p.AddChain(0, false, []netlist.InstID{r.ID})
	if err := p.Stitch(d, "scan"); err == nil {
		t.Fatal("stitching a scanless register must fail")
	}
}

func TestAddChainRejectsDuplicates(t *testing.T) {
	_, regs := scanDesign(t, 2)
	p := NewPlan()
	if _, err := p.AddChain(0, false, ids(regs)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddChain(1, false, []netlist.InstID{regs[0].ID}); err == nil {
		t.Fatal("duplicate chain membership must fail")
	}
}

func TestValidateDetectsDeadInstance(t *testing.T) {
	d, regs := scanDesign(t, 2)
	p := NewPlan()
	p.AddChain(0, false, ids(regs))
	d.RemoveInst(regs[0])
	if err := p.Validate(d); err == nil {
		t.Fatal("dead instance on chain must be detected")
	}
}
