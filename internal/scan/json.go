package scan

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/netlist"
)

type jsonChain struct {
	Partition int      `json:"partition"`
	Ordered   bool     `json:"ordered,omitempty"`
	Regs      []string `json:"regs"`
}

type jsonPlan struct {
	AllowCrossChain bool        `json:"allowCrossChain"`
	Chains          []jsonChain `json:"chains"`
}

// WriteJSON serializes the plan, referencing registers by instance name.
func (p *Plan) WriteJSON(w io.Writer, d *netlist.Design) error {
	jp := jsonPlan{AllowCrossChain: p.AllowCrossChain}
	for _, c := range p.chains {
		jc := jsonChain{Partition: c.Partition, Ordered: c.Ordered}
		for _, id := range c.Regs {
			in := d.Inst(id)
			if in == nil {
				return fmt.Errorf("scan: chain %d references dead instance %d", c.ID, id)
			}
			jc.Regs = append(jc.Regs, in.Name)
		}
		jp.Chains = append(jp.Chains, jc)
	}
	return json.NewEncoder(w).Encode(jp)
}

// ReadJSON reconstructs a plan against the given design.
func ReadJSON(r io.Reader, d *netlist.Design) (*Plan, error) {
	var jp jsonPlan
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("scan: decode: %w", err)
	}
	p := NewPlan()
	p.AllowCrossChain = jp.AllowCrossChain
	for ci, jc := range jp.Chains {
		ids := make([]netlist.InstID, 0, len(jc.Regs))
		for _, name := range jc.Regs {
			in := d.InstByName(name)
			if in == nil {
				return nil, fmt.Errorf("scan: chain %d references unknown instance %q", ci, name)
			}
			ids = append(ids, in.ID)
		}
		if _, err := p.AddChain(jc.Partition, jc.Ordered, ids); err != nil {
			return nil, err
		}
	}
	return p, nil
}
