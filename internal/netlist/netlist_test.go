package netlist

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/lib"
)

var testLib = lib.MustGenerateDefault()

func testClass() lib.FuncClass {
	return lib.FuncClass{Kind: lib.FlipFlop, Edge: lib.RisingEdge, Reset: lib.AsyncReset, Scan: lib.NoScan}
}

func cellOf(t testing.TB, bits int) *lib.Cell {
	t.Helper()
	cells := testLib.CellsOfWidth(testClass(), bits)
	if len(cells) == 0 {
		t.Fatalf("no %d-bit cell", bits)
	}
	return cells[0]
}

func newTestDesign() *Design {
	return NewDesign("t", geom.RectWH(0, 0, 100000, 100000), testLib)
}

// buildPair returns a design with two 1-bit registers sharing clock and
// reset, each fed by an input port and feeding an output port.
func buildPair(t testing.TB) (*Design, *Inst, *Inst) {
	t.Helper()
	d := newTestDesign()
	clk := d.AddNet("clk", true)
	rst := d.AddNet("rst", false)

	r1, err := d.AddRegister("r1", cellOf(t, 1), geom.Point{X: 1000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.AddRegister("r2", cellOf(t, 1), geom.Point{X: 3000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	d.Connect(d.ClockPin(r1), clk)
	d.Connect(d.ClockPin(r2), clk)
	d.Connect(d.FindPin(r1, PinReset, 0), rst)
	d.Connect(d.FindPin(r2, PinReset, 0), rst)

	for i, r := range []*Inst{r1, r2} {
		name := []string{"a", "b"}[i]
		ip, _ := d.AddPort("in_"+name, true, geom.Point{X: 0, Y: int64(i) * 5000})
		op, _ := d.AddPort("out_"+name, false, geom.Point{X: 90000, Y: int64(i) * 5000})
		dn := d.AddNet("d_"+name, false)
		qn := d.AddNet("q_"+name, false)
		d.Connect(d.OutPin(ip), dn)
		d.Connect(d.DPin(r, 0), dn)
		d.Connect(d.QPin(r, 0), qn)
		d.Connect(d.FindPin(op, PinData, 0), qn)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d, r1, r2
}

func TestAddRegisterPins(t *testing.T) {
	d := newTestDesign()
	cell := cellOf(t, 4)
	r, err := d.AddRegister("r", cell, geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits() != 4 {
		t.Fatalf("Bits = %d", r.Bits())
	}
	for b := 0; b < 4; b++ {
		if d.DPin(r, b) == nil || d.QPin(r, b) == nil {
			t.Fatalf("missing D/Q pin for bit %d", b)
		}
	}
	if d.ClockPin(r) == nil {
		t.Fatal("missing clock pin")
	}
	if d.FindPin(r, PinReset, 0) == nil {
		t.Fatal("missing reset pin (class has async reset)")
	}
	if d.FindPin(r, PinScanIn, 0) != nil {
		t.Fatal("no-scan class must not have SI pin")
	}
}

func TestScanPinCreation(t *testing.T) {
	d := newTestDesign()
	iclass := lib.FuncClass{Kind: lib.FlipFlop, Scan: lib.InternalScan}
	icell := testLib.CellsOfWidth(iclass, 4)[0]
	r, err := d.AddRegister("ri", icell, geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	nSI, nSO := 0, 0
	for _, pid := range r.Pins {
		switch d.Pin(pid).Kind {
		case PinScanIn:
			nSI++
		case PinScanOut:
			nSO++
		}
	}
	if nSI != 1 || nSO != 1 {
		t.Fatalf("internal scan: SI=%d SO=%d want 1/1", nSI, nSO)
	}

	eclass := lib.FuncClass{Kind: lib.FlipFlop, Scan: lib.ExternalScan}
	ecell := testLib.CellsOfWidth(eclass, 4)[0]
	r2, err := d.AddRegister("re", ecell, geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	nSI, nSO = 0, 0
	for _, pid := range r2.Pins {
		switch d.Pin(pid).Kind {
		case PinScanIn:
			nSI++
		case PinScanOut:
			nSO++
		}
	}
	if nSI != 4 || nSO != 4 {
		t.Fatalf("external scan: SI=%d SO=%d want 4/4", nSI, nSO)
	}
}

func TestDuplicateInstanceName(t *testing.T) {
	d := newTestDesign()
	if _, err := d.AddRegister("r", cellOf(t, 1), geom.Point{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddRegister("r", cellOf(t, 1), geom.Point{}); err == nil {
		t.Fatal("duplicate name must fail")
	}
}

func TestConnectDisconnect(t *testing.T) {
	d := newTestDesign()
	r, _ := d.AddRegister("r", cellOf(t, 1), geom.Point{})
	n1 := d.AddNet("n1", false)
	n2 := d.AddNet("n2", false)
	p := d.DPin(r, 0)
	d.Connect(p, n1)
	if p.Net != n1.ID || len(n1.Sinks) != 1 {
		t.Fatal("connect failed")
	}
	// Reconnecting moves the pin.
	d.Connect(p, n2)
	if p.Net != n2.ID || len(n1.Sinks) != 0 || len(n2.Sinks) != 1 {
		t.Fatal("reconnect failed")
	}
	q := d.QPin(r, 0)
	d.Connect(q, n1)
	if n1.Driver != q.ID {
		t.Fatal("driver connect failed")
	}
	d.Disconnect(q)
	if n1.Driver != NoID {
		t.Fatal("driver disconnect failed")
	}
}

func TestDoubleDriverPanics(t *testing.T) {
	d := newTestDesign()
	r1, _ := d.AddRegister("r1", cellOf(t, 1), geom.Point{})
	r2, _ := d.AddRegister("r2", cellOf(t, 1), geom.Point{})
	n := d.AddNet("n", false)
	d.Connect(d.QPin(r1, 0), n)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double driver")
		}
	}()
	d.Connect(d.QPin(r2, 0), n)
}

func TestHPWLAndPinPos(t *testing.T) {
	d, r1, _ := buildPair(t)
	qnet := d.Net(d.QPin(r1, 0).Net)
	hp := d.NetHPWL(qnet)
	// Net spans register Q pin to port at (90000, 0).
	qpos := d.PinPos(d.QPin(r1, 0))
	want := (90000 - qpos.X) + qpos.Y // port pin at (90000,0)
	if hp != want {
		t.Fatalf("HPWL = %d want %d", hp, want)
	}
	clkWL, sigWL := d.Wirelength()
	if clkWL <= 0 || sigWL <= 0 {
		t.Fatalf("wirelength split: clk=%d sig=%d", clkWL, sigWL)
	}
}

func TestNetLoadCap(t *testing.T) {
	d, r1, _ := buildPair(t)
	d.Timing.WireCapPerDBU = 0.0002
	dnet := d.Net(d.DPin(r1, 0).Net)
	load := d.NetLoadCap(dnet)
	wirePart := d.Timing.WireCapPerDBU * float64(d.NetHPWL(dnet))
	if load <= wirePart {
		t.Fatal("load must include sink pin caps")
	}
}

func TestMergeRegistersComplete(t *testing.T) {
	d, r1, r2 := buildPair(t)
	d1, q1 := d.DPin(r1, 0).Net, d.QPin(r1, 0).Net
	d2, q2 := d.DPin(r2, 0).Net, d.QPin(r2, 0).Net
	clk := d.ClockNet(r1)

	cell2 := cellOf(t, 2)
	res, err := d.MergeRegisters([]*Inst{r1, r2}, cell2, "mbr0", geom.Point{X: 2000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnusedBits != 0 || len(res.Assignment) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after merge: %v", err)
	}
	m := res.MBR
	if d.DPin(m, 0).Net != d1 || d.QPin(m, 0).Net != q1 {
		t.Fatal("bit 0 rewire wrong")
	}
	if d.DPin(m, 1).Net != d2 || d.QPin(m, 1).Net != q2 {
		t.Fatal("bit 1 rewire wrong")
	}
	if d.ClockNet(m) != clk {
		t.Fatal("clock rewire wrong")
	}
	if d.Inst(r1.ID) != nil || d.InstByName("r1") != nil {
		t.Fatal("old registers must be removed")
	}
	if got := len(d.Registers()); got != 1 {
		t.Fatalf("register count = %d want 1", got)
	}
}

func TestMergeRegistersIncomplete(t *testing.T) {
	d, r1, r2 := buildPair(t)
	cell4 := cellOf(t, 4)
	res, err := d.MergeRegisters([]*Inst{r1, r2}, cell4, "mbr0", geom.Point{X: 2000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnusedBits != 2 {
		t.Fatalf("UnusedBits = %d want 2", res.UnusedBits)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bits 2 and 3 D/Q stay unconnected.
	for b := 2; b < 4; b++ {
		if d.DPin(res.MBR, b).Net != NoID || d.QPin(res.MBR, b).Net != NoID {
			t.Fatalf("incomplete bit %d must stay unconnected", b)
		}
	}
}

func TestMergeRejectsControlMismatch(t *testing.T) {
	d, r1, r2 := buildPair(t)
	// Move r2's reset onto a different net.
	rst2 := d.AddNet("rst2", false)
	d.Connect(d.FindPin(r2, PinReset, 0), rst2)
	_, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 2), "m", geom.Point{})
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("err = %v, want control mismatch", err)
	}
}

// TestMergeRejectsBeforeTeardown pins the validate-then-commit contract: a
// rejected merge must leave the group untouched. A name collision with a
// live non-member instance (or a doubled group member) is detected before
// any RemoveInst, so the registers survive the failed call.
func TestMergeRejectsBeforeTeardown(t *testing.T) {
	d, r1, r2 := buildPair(t)
	if _, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 2), "in_a", geom.Point{}); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("err = %v, want name collision", err)
	}
	if _, err := d.MergeRegisters([]*Inst{r1, r2, r1}, cellOf(t, 4), "m", geom.Point{}); err == nil ||
		!strings.Contains(err.Error(), "listed twice") {
		t.Fatalf("err = %v, want duplicate member", err)
	}
	for _, r := range []*Inst{r1, r2} {
		if d.Inst(r.ID) == nil || d.InstByName(r.Name) == nil {
			t.Fatalf("rejected merge destroyed %q", r.Name)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design damaged by rejected merge: %v", err)
	}

	// Reusing a group member's own name is legal: the member is dead by
	// the time the MBR is created.
	res, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 2), "r1", geom.Point{X: 2000, Y: 1200})
	if err != nil {
		t.Fatalf("merge reusing member name: %v", err)
	}
	if got := d.InstByName("r1"); got != res.MBR {
		t.Fatal("MBR should own the reused name")
	}
}

func TestMergeRejectsOverflowAndFixed(t *testing.T) {
	d, r1, r2 := buildPair(t)
	if _, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 1), "m", geom.Point{}); err == nil {
		t.Fatal("2 bits into 1-bit cell must fail")
	}
	r1.Fixed = true
	if _, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 2), "m", geom.Point{}); err == nil {
		t.Fatal("fixed register must not merge")
	}
}

func TestRemoveInstCleansNets(t *testing.T) {
	d, r1, _ := buildPair(t)
	dnet := d.Net(d.DPin(r1, 0).Net)
	d.RemoveInst(r1)
	if d.Inst(r1.ID) != nil {
		t.Fatal("instance should be dead")
	}
	for _, s := range dnet.Sinks {
		if d.Pin(s).Inst == r1.ID {
			t.Fatal("dead pin still on net")
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNet(t *testing.T) {
	d := newTestDesign()
	n := d.AddNet("n", false)
	if err := d.RemoveNet(n); err != nil {
		t.Fatal(err)
	}
	if d.Net(n.ID) != nil {
		t.Fatal("net should be dead")
	}
	r, _ := d.AddRegister("r", cellOf(t, 1), geom.Point{})
	n2 := d.AddNet("n2", false)
	d.Connect(d.DPin(r, 0), n2)
	if err := d.RemoveNet(n2); err == nil {
		t.Fatal("connected net must not be removable")
	}
}

func TestResizeRegister(t *testing.T) {
	d, r1, _ := buildPair(t)
	cells := testLib.CellsOfWidth(testClass(), 1)
	x4 := cells[len(cells)-1]
	if x4 == r1.RegCell {
		t.Fatal("test needs a different drive")
	}
	oldNet := d.DPin(r1, 0).Net
	if err := d.ResizeRegister(r1, x4); err != nil {
		t.Fatal(err)
	}
	if r1.RegCell != x4 {
		t.Fatal("cell not swapped")
	}
	if d.DPin(r1, 0).Net != oldNet {
		t.Fatal("connectivity must be preserved")
	}
	if d.ClockPin(r1).Cap != x4.ClkCap {
		t.Fatal("clock pin cap must update")
	}
	// Wrong width rejected.
	if err := d.ResizeRegister(r1, cellOf(t, 2)); err == nil {
		t.Fatal("resize across widths must fail")
	}
}

func TestMergePreservesTotalConnectivity(t *testing.T) {
	d, r1, r2 := buildPair(t)
	netsBefore := d.NumNets()
	res, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 2), "m", geom.Point{X: 2000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNets() != netsBefore {
		t.Fatalf("net count changed: %d → %d", netsBefore, d.NumNets())
	}
	// Every data net still has exactly one driver and one sink.
	d.Nets(func(n *Net) {
		if n.IsClock {
			return
		}
		if strings.HasPrefix(n.Name, "d_") || strings.HasPrefix(n.Name, "q_") {
			if n.Driver == NoID || len(n.Sinks) != 1 {
				t.Errorf("net %q: driver=%v sinks=%d", n.Name, n.Driver, len(n.Sinks))
			}
		}
	})
	_ = res
}

func TestValidateCatchesCorruption(t *testing.T) {
	d, r1, _ := buildPair(t)
	// Corrupt: point a net's driver at a dead pin's instance.
	q := d.QPin(r1, 0)
	net := d.Net(q.Net)
	d.RemoveInst(r1)
	net.Driver = q.ID // reattach dangling driver
	q.Net = net.ID
	if err := d.Validate(); err == nil {
		t.Fatal("Validate must catch driver on dead instance")
	}
}

func TestTotalAreaAndCounts(t *testing.T) {
	d, r1, r2 := buildPair(t)
	area := d.TotalArea()
	if area <= 0 {
		t.Fatal("area must be positive")
	}
	wantDrop := r1.Area() + r2.Area()
	res, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 2), "m", geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	got := d.TotalArea()
	if got != area-wantDrop+res.MBR.Area() {
		t.Fatalf("area bookkeeping: %d want %d", got, area-wantDrop+res.MBR.Area())
	}
	if d.NumInsts() != 5 { // 4 ports + 1 MBR
		t.Fatalf("NumInsts = %d want 5", d.NumInsts())
	}
}

func TestMarginalDelayPerDBU(t *testing.T) {
	ts := TimingSpec{WireCapPerDBU: 0.0002, WireDelayPerDBU: 0.01}
	got := ts.MarginalDelayPerDBU(6.0)
	want := 0.01 + 0.0002*6.0
	if got != want {
		t.Fatalf("MarginalDelayPerDBU = %g want %g", got, want)
	}
}
