package netlist

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/lib"
)

// The JSON design format captures everything bench.Generate produces:
// geometry, timing environment, combinational cell models, instances and
// connectivity. Register cells are referenced by library cell name, so the
// reader needs the same library the writer used.

type jsonPinRef struct {
	Inst string `json:"inst"`
	Kind int    `json:"kind"`
	Bit  int    `json:"bit"`
}

type jsonNet struct {
	Name    string       `json:"name"`
	IsClock bool         `json:"clock,omitempty"`
	Driver  *jsonPinRef  `json:"driver,omitempty"`
	Sinks   []jsonPinRef `json:"sinks,omitempty"`
}

type jsonInst struct {
	Name     string `json:"name"`
	Kind     int    `json:"kind"`
	Cell     string `json:"cell,omitempty"` // register cell name
	Comb     string `json:"comb,omitempty"` // comb spec name
	X        int64  `json:"x"`
	Y        int64  `json:"y"`
	Fixed    bool   `json:"fixed,omitempty"`
	SizeOnly bool   `json:"sizeOnly,omitempty"`
	Gate     int    `json:"gate,omitempty"`
	ScanPart int    `json:"scanPart,omitempty"`
	// IsInput records port direction for KindPort.
	IsInput bool `json:"isInput,omitempty"`
}

type jsonDesign struct {
	Name   string      `json:"name"`
	Core   [4]int64    `json:"core"`
	SiteW  int64       `json:"siteW"`
	RowH   int64       `json:"rowH"`
	Timing TimingSpec  `json:"timing"`
	Combs  []*CombSpec `json:"combs"`
	Insts  []jsonInst  `json:"insts"`
	Nets   []jsonNet   `json:"nets"`
}

// WriteJSON serializes the design.
func (d *Design) WriteJSON(w io.Writer) error {
	jd := jsonDesign{
		Name:   d.Name,
		Core:   [4]int64{d.Core.Lo.X, d.Core.Lo.Y, d.Core.Hi.X, d.Core.Hi.Y},
		SiteW:  d.SiteW,
		RowH:   d.RowH,
		Timing: d.Timing,
	}
	combSeen := map[string]bool{}
	d.Insts(func(in *Inst) {
		ji := jsonInst{
			Name: in.Name, Kind: int(in.Kind), X: in.Pos.X, Y: in.Pos.Y,
			Fixed: in.Fixed, SizeOnly: in.SizeOnly,
			Gate: in.GateGroup, ScanPart: in.ScanPartition,
		}
		switch {
		case in.RegCell != nil:
			ji.Cell = in.RegCell.Name
		case in.Comb != nil:
			ji.Comb = in.Comb.Name
			if !combSeen[in.Comb.Name] {
				combSeen[in.Comb.Name] = true
				jd.Combs = append(jd.Combs, in.Comb)
			}
		case in.Kind == KindPort:
			if p := d.OutPin(in); p != nil {
				ji.IsInput = true
			}
		}
		jd.Insts = append(jd.Insts, ji)
	})
	d.Nets(func(n *Net) {
		jn := jsonNet{Name: n.Name, IsClock: n.IsClock}
		if n.Driver != NoID {
			jn.Driver = d.pinRef(n.Driver)
		}
		for _, s := range n.Sinks {
			jn.Sinks = append(jn.Sinks, *d.pinRef(s))
		}
		jd.Nets = append(jd.Nets, jn)
	})
	enc := json.NewEncoder(w)
	return enc.Encode(jd)
}

func (d *Design) pinRef(id PinID) *jsonPinRef {
	p := d.Pin(id)
	in := d.insts[p.Inst]
	return &jsonPinRef{Inst: in.Name, Kind: int(p.Kind), Bit: p.Bit}
}

// ReadJSON reconstructs a design. The library must contain every register
// cell the design references.
func ReadJSON(r io.Reader, library *lib.Library) (*Design, error) {
	var jd jsonDesign
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, fmt.Errorf("netlist: decode: %w", err)
	}
	core := geom.Rect{
		Lo: geom.Point{X: jd.Core[0], Y: jd.Core[1]},
		Hi: geom.Point{X: jd.Core[2], Y: jd.Core[3]},
	}
	d := NewDesign(jd.Name, core, library)
	d.SiteW = jd.SiteW
	d.RowH = jd.RowH
	d.Timing = jd.Timing

	combByName := map[string]*CombSpec{}
	for _, c := range jd.Combs {
		combByName[c.Name] = c
	}
	for _, ji := range jd.Insts {
		pos := geom.Point{X: ji.X, Y: ji.Y}
		var in *Inst
		var err error
		switch InstKind(ji.Kind) {
		case KindReg:
			cell := d.Lib.CellByName(ji.Cell)
			if cell == nil {
				return nil, fmt.Errorf("netlist: unknown register cell %q", ji.Cell)
			}
			in, err = d.AddRegister(ji.Name, cell, pos)
		case KindComb:
			spec := combByName[ji.Comb]
			if spec == nil {
				return nil, fmt.Errorf("netlist: unknown comb spec %q", ji.Comb)
			}
			in, err = d.AddComb(ji.Name, spec, pos)
		case KindClockBuf:
			spec := combByName[ji.Comb]
			if spec == nil {
				return nil, fmt.Errorf("netlist: unknown comb spec %q", ji.Comb)
			}
			in, err = d.AddClockBuf(ji.Name, spec, pos)
		case KindClockGate:
			spec := combByName[ji.Comb]
			if spec == nil {
				return nil, fmt.Errorf("netlist: unknown comb spec %q", ji.Comb)
			}
			in, err = d.AddClockGate(ji.Name, spec, pos)
		case KindPort:
			in, err = d.AddPort(ji.Name, ji.IsInput, pos)
		default:
			return nil, fmt.Errorf("netlist: unknown instance kind %d", ji.Kind)
		}
		if err != nil {
			return nil, err
		}
		in.Fixed = ji.Fixed
		in.SizeOnly = ji.SizeOnly
		in.GateGroup = ji.Gate
		in.ScanPartition = ji.ScanPart
	}
	for _, jn := range jd.Nets {
		n := d.AddNet(jn.Name, jn.IsClock)
		connect := func(ref jsonPinRef) error {
			in := d.InstByName(ref.Inst)
			if in == nil {
				return fmt.Errorf("netlist: net %q references unknown instance %q", jn.Name, ref.Inst)
			}
			p := d.FindPin(in, PinKind(ref.Kind), ref.Bit)
			if p == nil {
				return fmt.Errorf("netlist: net %q: no pin %d/%d on %q", jn.Name, ref.Kind, ref.Bit, ref.Inst)
			}
			d.Connect(p, n)
			return nil
		}
		if jn.Driver != nil {
			if err := connect(*jn.Driver); err != nil {
				return nil, err
			}
		}
		for _, s := range jn.Sinks {
			if err := connect(s); err != nil {
				return nil, err
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: loaded design invalid: %w", err)
	}
	return d, nil
}
