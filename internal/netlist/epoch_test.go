package netlist

import (
	"testing"

	"repro/internal/geom"
)

func TestEpochBumpsPerEditClass(t *testing.T) {
	d, r1, _ := buildPair(t)

	base := d.Epoch()
	baseStruct := d.StructuralEpoch()
	baseClock := d.ClockEpoch()

	// Parametric: bumps the epoch only.
	d.MoveInst(r1, geom.Point{X: 2000, Y: 1200})
	if d.Epoch() <= base {
		t.Fatalf("MoveInst did not bump epoch: %d -> %d", base, d.Epoch())
	}
	if d.StructuralEpoch() != baseStruct || d.ClockEpoch() != baseClock {
		t.Fatalf("MoveInst changed structural/clock epochs")
	}

	cur := d.Epoch()
	if err := d.ResizeRegister(r1, cellOf(t, 1)); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() <= cur {
		t.Fatalf("ResizeRegister did not bump epoch")
	}
	if d.StructuralEpoch() != baseStruct {
		t.Fatalf("ResizeRegister changed structural epoch")
	}

	// Structural: data-net connectivity.
	cur = d.Epoch()
	dn := d.Net(d.DPin(r1, 0).Net)
	d.Disconnect(d.DPin(r1, 0))
	if d.StructuralEpoch() <= baseStruct {
		t.Fatalf("data-net Disconnect did not bump structural epoch")
	}
	if d.ClockEpoch() != baseClock {
		t.Fatalf("data-net Disconnect bumped clock epoch")
	}
	d.Connect(d.DPin(r1, 0), dn)
	if d.StructuralEpoch() != d.Epoch() {
		t.Fatalf("data-net Connect: structural epoch %d != epoch %d",
			d.StructuralEpoch(), d.Epoch())
	}

	// Clock: clock-net connectivity.
	baseStruct = d.StructuralEpoch()
	cn := d.Net(d.ClockPin(r1).Net)
	d.Disconnect(d.ClockPin(r1))
	if d.ClockEpoch() <= baseClock {
		t.Fatalf("clock-net Disconnect did not bump clock epoch")
	}
	if d.StructuralEpoch() != baseStruct {
		t.Fatalf("clock-net Disconnect bumped structural epoch")
	}
	d.Connect(d.ClockPin(r1), cn)
	if d.ClockEpoch() != d.Epoch() {
		t.Fatalf("clock-net Connect: clock epoch %d != epoch %d",
			d.ClockEpoch(), d.Epoch())
	}
}

func TestTouchedSinceDedupAndOrder(t *testing.T) {
	d, r1, r2 := buildPair(t)

	cursor := d.Epoch()
	d.MoveInst(r1, geom.Point{X: 2000, Y: 1200})
	d.MoveInst(r2, geom.Point{X: 4000, Y: 1200})
	d.MoveInst(r1, geom.Point{X: 2500, Y: 1200})

	touched, complete := d.TouchedSince(cursor)
	if !complete {
		t.Fatalf("record unexpectedly incomplete")
	}
	if len(touched) != 2 {
		t.Fatalf("touched = %v, want 2 deduplicated instances", touched)
	}
	// Most recent first: r1 was edited last.
	if touched[0] != r1.ID || touched[1] != r2.ID {
		t.Fatalf("touched = %v, want [%d %d]", touched, r1.ID, r2.ID)
	}

	// A cursor at the current epoch sees nothing.
	if got, ok := d.TouchedSince(d.Epoch()); !ok || len(got) != 0 {
		t.Fatalf("TouchedSince(now) = %v, %v; want empty, complete", got, ok)
	}

	// A mid-sequence cursor sees only the later edits.
	mid := d.Epoch()
	d.MoveInst(r2, geom.Point{X: 4500, Y: 1200})
	got, ok := d.TouchedSince(mid)
	if !ok || len(got) != 1 || got[0] != r2.ID {
		t.Fatalf("TouchedSince(mid) = %v, %v; want [%d], complete", got, ok, r2.ID)
	}
}

func TestTouchedSinceRemovedInst(t *testing.T) {
	d, r1, _ := buildPair(t)
	cursor := d.Epoch()
	id := r1.ID
	d.RemoveInst(r1)
	touched, complete := d.TouchedSince(cursor)
	if !complete {
		t.Fatalf("record unexpectedly incomplete")
	}
	found := false
	for _, t := range touched {
		if t == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("RemoveInst not recorded in touched set %v", touched)
	}
}

func TestTouchedSinceRingOverflow(t *testing.T) {
	d, r1, _ := buildPair(t)
	cursor := d.Epoch()
	for i := 0; i < defaultTouchedRingCap+5; i++ {
		d.MoveInst(r1, geom.Point{X: int64(1000 + i), Y: 1200})
	}
	if _, complete := d.TouchedSince(cursor); complete {
		t.Fatalf("record complete across ring overflow")
	}
	// A cursor taken after the overflow is tracked again.
	cursor = d.Epoch()
	d.MoveInst(r1, geom.Point{X: 9000, Y: 1200})
	touched, complete := d.TouchedSince(cursor)
	if !complete || len(touched) != 1 || touched[0] != r1.ID {
		t.Fatalf("post-overflow TouchedSince = %v, %v; want [%d], complete",
			touched, complete, r1.ID)
	}
}

func TestEditClassScoping(t *testing.T) {
	d, r1, r2 := buildPair(t)
	if d.EditClass() != EditClassFlow {
		t.Fatalf("default edit class = %v, want flow", d.EditClass())
	}

	cursor := d.Epoch()
	d.WithEditClass(EditClassCTS, func() {
		if d.EditClass() != EditClassCTS {
			t.Fatalf("WithEditClass did not switch the class")
		}
		d.MoveInst(r1, geom.Point{X: 2000, Y: 1200})
	})
	if d.EditClass() != EditClassFlow {
		t.Fatalf("WithEditClass did not restore the class")
	}
	if d.Epoch() <= cursor {
		t.Fatalf("CTS-class edit did not bump the shared epoch")
	}

	// The CTS edit is invisible to the flow record but on the CTS record.
	flow, ok := d.TouchedSince(cursor)
	if !ok || len(flow) != 0 {
		t.Fatalf("flow record sees CTS-class edit: %v, %v", flow, ok)
	}
	ctsT, ok := d.TouchedSinceClass(cursor, EditClassCTS)
	if !ok || len(ctsT) != 1 || ctsT[0] != r1.ID {
		t.Fatalf("CTS record = %v, %v; want [%d], complete", ctsT, ok, r1.ID)
	}

	// And vice versa: a flow edit stays off the CTS record.
	cursor = d.Epoch()
	d.MoveInst(r2, geom.Point{X: 4000, Y: 1200})
	if got, ok := d.TouchedSinceClass(cursor, EditClassCTS); !ok || len(got) != 0 {
		t.Fatalf("CTS record sees flow-class edit: %v, %v", got, ok)
	}
	if got, ok := d.TouchedSince(cursor); !ok || len(got) != 1 || got[0] != r2.ID {
		t.Fatalf("flow record = %v, %v; want [%d], complete", got, ok, r2.ID)
	}

	// Nested overrides restore the outer class, even on panic-free return.
	d.WithEditClass(EditClassCTS, func() {
		d.WithEditClass(EditClassFlow, func() {
			if d.EditClass() != EditClassFlow {
				t.Fatalf("nested WithEditClass did not switch")
			}
		})
		if d.EditClass() != EditClassCTS {
			t.Fatalf("nested WithEditClass did not restore outer class")
		}
	})
}

func TestEditClassOverflowIsolation(t *testing.T) {
	d, r1, r2 := buildPair(t)
	cursor := d.Epoch()
	// Overflow the CTS ring only.
	d.WithEditClass(EditClassCTS, func() {
		for i := 0; i < defaultTouchedRingCap+5; i++ {
			d.MoveInst(r1, geom.Point{X: int64(1000 + i), Y: 1200})
		}
	})
	d.MoveInst(r2, geom.Point{X: 4000, Y: 1200})
	if _, ok := d.TouchedSinceClass(cursor, EditClassCTS); ok {
		t.Fatalf("CTS record survived its own overflow")
	}
	got, ok := d.TouchedSince(cursor)
	if !ok || len(got) != 1 || got[0] != r2.ID {
		t.Fatalf("flow record degraded by CTS overflow: %v, %v", got, ok)
	}
}

func TestSetTouchedLogCap(t *testing.T) {
	d, r1, _ := buildPair(t)
	if d.TouchedLogCap() != defaultTouchedRingCap {
		t.Fatalf("default cap = %d, want %d", d.TouchedLogCap(), defaultTouchedRingCap)
	}

	d.SetTouchedLogCap(8)
	if d.TouchedLogCap() != 8 {
		t.Fatalf("cap = %d after SetTouchedLogCap(8)", d.TouchedLogCap())
	}
	cursor := d.Epoch()
	for i := 0; i < 6; i++ {
		d.MoveInst(r1, geom.Point{X: int64(1000 + i), Y: 1200})
	}
	if _, ok := d.TouchedSince(cursor); !ok {
		t.Fatalf("record incomplete below the configured cap")
	}
	for i := 0; i < 8; i++ {
		d.MoveInst(r1, geom.Point{X: int64(3000 + i), Y: 1200})
	}
	if _, ok := d.TouchedSince(cursor); ok {
		t.Fatalf("record complete across a 14-edit burst at cap 8")
	}

	// Growing the cap keeps the (complete) suffix tracked; a fresh cursor
	// is tracked again.
	cursor = d.Epoch()
	d.SetTouchedLogCap(0)
	if d.TouchedLogCap() != defaultTouchedRingCap {
		t.Fatalf("SetTouchedLogCap(0) did not restore the default")
	}
	d.MoveInst(r1, geom.Point{X: 9000, Y: 1200})
	if got, ok := d.TouchedSince(cursor); !ok || len(got) != 1 {
		t.Fatalf("post-resize record = %v, %v; want 1 entry, complete", got, ok)
	}

	// Shrinking below the ring's current length drops it wholesale: one
	// degradation, then tracking resumes.
	d.SetTouchedLogCap(2)
	if _, ok := d.TouchedSince(cursor); ok {
		t.Fatalf("record survived a shrink below its length")
	}
	cursor = d.Epoch()
	d.MoveInst(r1, geom.Point{X: 9500, Y: 1200})
	if got, ok := d.TouchedSince(cursor); !ok || len(got) != 1 {
		t.Fatalf("record did not resume after shrink: %v, %v", got, ok)
	}
}

func TestPinSpaceCoversRemovedInsts(t *testing.T) {
	d, r1, _ := buildPair(t)
	before := d.PinSpace()
	if before <= 0 {
		t.Fatalf("PinSpace = %d", before)
	}
	d.RemoveInst(r1)
	if d.PinSpace() != before {
		t.Fatalf("PinSpace shrank on RemoveInst: %d -> %d", before, d.PinSpace())
	}
	if _, err := d.AddRegister("extra", cellOf(t, 1), geom.Point{X: 7000, Y: 1200}); err != nil {
		t.Fatal(err)
	}
	if d.PinSpace() <= before {
		t.Fatalf("PinSpace did not grow with a new instance: %d -> %d", before, d.PinSpace())
	}
}
