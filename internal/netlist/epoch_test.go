package netlist

import (
	"testing"

	"repro/internal/geom"
)

func TestEpochBumpsPerEditClass(t *testing.T) {
	d, r1, _ := buildPair(t)

	base := d.Epoch()
	baseStruct := d.StructuralEpoch()
	baseClock := d.ClockEpoch()

	// Parametric: bumps the epoch only.
	d.MoveInst(r1, geom.Point{X: 2000, Y: 1200})
	if d.Epoch() <= base {
		t.Fatalf("MoveInst did not bump epoch: %d -> %d", base, d.Epoch())
	}
	if d.StructuralEpoch() != baseStruct || d.ClockEpoch() != baseClock {
		t.Fatalf("MoveInst changed structural/clock epochs")
	}

	cur := d.Epoch()
	if err := d.ResizeRegister(r1, cellOf(t, 1)); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() <= cur {
		t.Fatalf("ResizeRegister did not bump epoch")
	}
	if d.StructuralEpoch() != baseStruct {
		t.Fatalf("ResizeRegister changed structural epoch")
	}

	// Structural: data-net connectivity.
	cur = d.Epoch()
	dn := d.Net(d.DPin(r1, 0).Net)
	d.Disconnect(d.DPin(r1, 0))
	if d.StructuralEpoch() <= baseStruct {
		t.Fatalf("data-net Disconnect did not bump structural epoch")
	}
	if d.ClockEpoch() != baseClock {
		t.Fatalf("data-net Disconnect bumped clock epoch")
	}
	d.Connect(d.DPin(r1, 0), dn)
	if d.StructuralEpoch() != d.Epoch() {
		t.Fatalf("data-net Connect: structural epoch %d != epoch %d",
			d.StructuralEpoch(), d.Epoch())
	}

	// Clock: clock-net connectivity.
	baseStruct = d.StructuralEpoch()
	cn := d.Net(d.ClockPin(r1).Net)
	d.Disconnect(d.ClockPin(r1))
	if d.ClockEpoch() <= baseClock {
		t.Fatalf("clock-net Disconnect did not bump clock epoch")
	}
	if d.StructuralEpoch() != baseStruct {
		t.Fatalf("clock-net Disconnect bumped structural epoch")
	}
	d.Connect(d.ClockPin(r1), cn)
	if d.ClockEpoch() != d.Epoch() {
		t.Fatalf("clock-net Connect: clock epoch %d != epoch %d",
			d.ClockEpoch(), d.Epoch())
	}
}

func TestTouchedSinceDedupAndOrder(t *testing.T) {
	d, r1, r2 := buildPair(t)

	cursor := d.Epoch()
	d.MoveInst(r1, geom.Point{X: 2000, Y: 1200})
	d.MoveInst(r2, geom.Point{X: 4000, Y: 1200})
	d.MoveInst(r1, geom.Point{X: 2500, Y: 1200})

	touched, complete := d.TouchedSince(cursor)
	if !complete {
		t.Fatalf("record unexpectedly incomplete")
	}
	if len(touched) != 2 {
		t.Fatalf("touched = %v, want 2 deduplicated instances", touched)
	}
	// Most recent first: r1 was edited last.
	if touched[0] != r1.ID || touched[1] != r2.ID {
		t.Fatalf("touched = %v, want [%d %d]", touched, r1.ID, r2.ID)
	}

	// A cursor at the current epoch sees nothing.
	if got, ok := d.TouchedSince(d.Epoch()); !ok || len(got) != 0 {
		t.Fatalf("TouchedSince(now) = %v, %v; want empty, complete", got, ok)
	}

	// A mid-sequence cursor sees only the later edits.
	mid := d.Epoch()
	d.MoveInst(r2, geom.Point{X: 4500, Y: 1200})
	got, ok := d.TouchedSince(mid)
	if !ok || len(got) != 1 || got[0] != r2.ID {
		t.Fatalf("TouchedSince(mid) = %v, %v; want [%d], complete", got, ok, r2.ID)
	}
}

func TestTouchedSinceRemovedInst(t *testing.T) {
	d, r1, _ := buildPair(t)
	cursor := d.Epoch()
	id := r1.ID
	d.RemoveInst(r1)
	touched, complete := d.TouchedSince(cursor)
	if !complete {
		t.Fatalf("record unexpectedly incomplete")
	}
	found := false
	for _, t := range touched {
		if t == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("RemoveInst not recorded in touched set %v", touched)
	}
}

func TestTouchedSinceRingOverflow(t *testing.T) {
	d, r1, _ := buildPair(t)
	cursor := d.Epoch()
	for i := 0; i < touchedRingCap+5; i++ {
		d.MoveInst(r1, geom.Point{X: int64(1000 + i), Y: 1200})
	}
	if _, complete := d.TouchedSince(cursor); complete {
		t.Fatalf("record complete across ring overflow")
	}
	// A cursor taken after the overflow is tracked again.
	cursor = d.Epoch()
	d.MoveInst(r1, geom.Point{X: 9000, Y: 1200})
	touched, complete := d.TouchedSince(cursor)
	if !complete || len(touched) != 1 || touched[0] != r1.ID {
		t.Fatalf("post-overflow TouchedSince = %v, %v; want [%d], complete",
			touched, complete, r1.ID)
	}
}

func TestPinSpaceCoversRemovedInsts(t *testing.T) {
	d, r1, _ := buildPair(t)
	before := d.PinSpace()
	if before <= 0 {
		t.Fatalf("PinSpace = %d", before)
	}
	d.RemoveInst(r1)
	if d.PinSpace() != before {
		t.Fatalf("PinSpace shrank on RemoveInst: %d -> %d", before, d.PinSpace())
	}
	if _, err := d.AddRegister("extra", cellOf(t, 1), geom.Point{X: 7000, Y: 1200}); err != nil {
		t.Fatal(err)
	}
	if d.PinSpace() <= before {
		t.Fatalf("PinSpace did not grow with a new instance: %d -> %d", before, d.PinSpace())
	}
}
