// Package netlist is the design database the composition flow operates on:
// instances (registers, combinational cells, clock buffers, ports), pins,
// nets, placement coordinates, clock domains and gating groups, plus the
// editing operations MBR composition needs (merging registers into a
// multi-bit register instance and rewiring its nets).
//
// Electrical units follow the library: picoseconds, femtofarads, kilo-ohms
// (conveniently, kΩ × fF = ps) and integer database units (DBU) for
// geometry.
package netlist

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/lib"
)

// InstID identifies an instance within a Design. IDs are stable for the
// lifetime of the design; deleted instances leave holes.
type InstID int

// NetID identifies a net within a Design.
type NetID int

// PinID identifies a pin within a Design.
type PinID int

// NoID marks an absent instance/net/pin reference.
const NoID = -1

// InstKind classifies instances.
type InstKind int

// Instance kinds.
const (
	KindComb InstKind = iota
	KindReg
	KindPort
	KindClockBuf
	KindClockGate
)

func (k InstKind) String() string {
	switch k {
	case KindComb:
		return "comb"
	case KindReg:
		return "reg"
	case KindPort:
		return "port"
	case KindClockBuf:
		return "clkbuf"
	case KindClockGate:
		return "clkgate"
	}
	return "?"
}

// PinDir is the signal direction of a pin.
type PinDir int

// Pin directions.
const (
	DirIn PinDir = iota
	DirOut
)

// PinKind classifies pins for timing and compatibility analysis.
type PinKind int

// Pin kinds.
const (
	PinData PinKind = iota // comb input, or register D
	PinOut                 // comb output, or register Q
	PinClock
	PinReset
	PinEnable
	PinScanIn
	PinScanOut
	PinScanEnable
)

func (k PinKind) String() string {
	switch k {
	case PinData:
		return "D"
	case PinOut:
		return "Q"
	case PinClock:
		return "CK"
	case PinReset:
		return "RST"
	case PinEnable:
		return "EN"
	case PinScanIn:
		return "SI"
	case PinScanOut:
		return "SO"
	case PinScanEnable:
		return "SE"
	}
	return "?"
}

// CombSpec is the electrical/physical model of a combinational cell type
// (or clock buffer). Delay from any input to the output is
// Intrinsic + DriveRes × load.
type CombSpec struct {
	Name      string
	NumInputs int
	DriveRes  float64 // kΩ
	Intrinsic float64 // ps
	InCap     float64 // fF per input pin
	Width     int64
	Height    int64
}

// Area returns the footprint area of the spec.
func (c *CombSpec) Area() int64 { return c.Width * c.Height }

// Pin is one connection point of an instance.
type Pin struct {
	ID     PinID
	Inst   InstID
	Net    NetID // NoID when unconnected
	Dir    PinDir
	Kind   PinKind
	Offset lib.PinOffset
	// Bit is the D/Q pair index for register data pins, else 0.
	Bit int
	// Cap is the input capacitance contributed to the net (0 for outputs).
	Cap float64
}

// Inst is a placed instance.
type Inst struct {
	ID   InstID
	Name string
	Kind InstKind
	// RegCell is the library register cell; non-nil iff Kind == KindReg.
	RegCell *lib.Cell
	// Comb is the combinational/buffer model; non-nil for KindComb,
	// KindClockBuf and KindClockGate.
	Comb *CombSpec
	// Pos is the lower-left corner of the footprint.
	Pos geom.Point
	// Fixed instances may not be moved or modified (designer constraint).
	Fixed bool
	// SizeOnly instances may be resized but not merged or moved.
	SizeOnly bool
	// Pins of the instance, in creation order.
	Pins []PinID

	// Register-only attributes:

	// GateGroup identifies the clock-gating enable condition this register
	// is behind; two registers are functionally compatible only when their
	// GateGroup matches. -1 means ungated.
	GateGroup int
	// ScanPartition is the scan chain partition; -1 means unscanned.
	ScanPartition int

	dead bool
}

// Width returns the instance footprint width.
func (i *Inst) Width() int64 {
	switch {
	case i.RegCell != nil:
		return i.RegCell.Width
	case i.Comb != nil:
		return i.Comb.Width
	}
	return 0
}

// Height returns the instance footprint height.
func (i *Inst) Height() int64 {
	switch {
	case i.RegCell != nil:
		return i.RegCell.Height
	case i.Comb != nil:
		return i.Comb.Height
	}
	return 0
}

// Area returns the instance footprint area.
func (i *Inst) Area() int64 { return i.Width() * i.Height() }

// Bounds returns the placed footprint rectangle.
func (i *Inst) Bounds() geom.Rect {
	return geom.RectWH(i.Pos.X, i.Pos.Y, i.Width(), i.Height())
}

// Center returns the footprint center.
func (i *Inst) Center() geom.Point { return i.Bounds().Center() }

// Bits returns the number of register bits (0 for non-registers).
func (i *Inst) Bits() int {
	if i.RegCell == nil {
		return 0
	}
	return i.RegCell.Bits
}

// Net is a signal net.
type Net struct {
	ID     NetID
	Name   string
	Driver PinID // NoID for undriven (e.g. constant/floating) nets
	Sinks  []PinID
	// IsClock marks clock-distribution nets.
	IsClock bool
	dead    bool
}

// TimingSpec carries the design-level timing environment.
type TimingSpec struct {
	// ClockPeriod in picoseconds.
	ClockPeriod float64
	// WireCapPerDBU is routing capacitance per database unit (fF/DBU).
	WireCapPerDBU float64
	// WireDelayPerDBU is the propagation delay per database unit (ps/DBU);
	// the linearized wire-delay abstraction that makes "slack as distance"
	// (§2, placement compatibility) well defined.
	WireDelayPerDBU float64
	// InputDelay / OutputDelay model the external timing at ports (ps).
	InputDelay, OutputDelay float64
}

// MarginalDelayPerDBU is the worst-case extra path delay caused by moving a
// pin one DBU away from its net: the wire propagation component plus the
// capacitance seen by a typical driver.
func (t TimingSpec) MarginalDelayPerDBU(driverRes float64) float64 {
	return t.WireDelayPerDBU + t.WireCapPerDBU*driverRes
}

// Design is a complete placed design.
type Design struct {
	Name string
	// Core is the placeable area.
	Core geom.Rect
	// SiteW and RowH are the legalization grid pitch.
	SiteW, RowH int64
	// Lib is the register library the design is mapped to.
	Lib *lib.Library
	// Timing is the timing environment.
	Timing TimingSpec

	insts []*Inst
	nets  []*Net
	pins  []*Pin

	nameToInst map[string]InstID

	edits editLog
}

// NewDesign returns an empty design.
func NewDesign(name string, core geom.Rect, library *lib.Library) *Design {
	return &Design{
		Name:       name,
		Core:       core,
		SiteW:      100,
		RowH:       1200,
		Lib:        library,
		nameToInst: map[string]InstID{},
	}
}

// NumInsts returns the number of live instances.
func (d *Design) NumInsts() int {
	n := 0
	for _, in := range d.insts {
		if !in.dead {
			n++
		}
	}
	return n
}

// NumNets returns the number of live nets.
func (d *Design) NumNets() int {
	n := 0
	for _, nt := range d.nets {
		if !nt.dead {
			n++
		}
	}
	return n
}

// Inst returns the instance with the given ID, or nil when it was removed
// or never existed.
func (d *Design) Inst(id InstID) *Inst {
	if id < 0 || int(id) >= len(d.insts) || d.insts[id].dead {
		return nil
	}
	return d.insts[id]
}

// InstByName returns the live instance with the given name, or nil.
func (d *Design) InstByName(name string) *Inst {
	if id, ok := d.nameToInst[name]; ok {
		return d.Inst(id)
	}
	return nil
}

// Net returns the net with the given ID, or nil.
func (d *Design) Net(id NetID) *Net {
	if id < 0 || int(id) >= len(d.nets) || d.nets[id].dead {
		return nil
	}
	return d.nets[id]
}

// Pin returns the pin with the given ID, or nil. Pins of removed instances
// remain addressable but have Inst set to a dead instance; callers
// iterating live structure should go through Insts/Nets.
func (d *Design) Pin(id PinID) *Pin {
	if id < 0 || int(id) >= len(d.pins) {
		return nil
	}
	return d.pins[id]
}

// Insts calls f for every live instance.
func (d *Design) Insts(f func(*Inst)) {
	for _, in := range d.insts {
		if !in.dead {
			f(in)
		}
	}
}

// Nets calls f for every live net.
func (d *Design) Nets(f func(*Net)) {
	for _, n := range d.nets {
		if !n.dead {
			f(n)
		}
	}
}

// Registers returns the live register instances.
func (d *Design) Registers() []*Inst {
	var out []*Inst
	for _, in := range d.insts {
		if !in.dead && in.Kind == KindReg {
			out = append(out, in)
		}
	}
	return out
}

// AddNet creates a net.
func (d *Design) AddNet(name string, isClock bool) *Net {
	n := &Net{ID: NetID(len(d.nets)), Name: name, Driver: NoID, IsClock: isClock}
	d.nets = append(d.nets, n)
	return n
}

// addPin creates a pin on an instance.
func (d *Design) addPin(in *Inst, dir PinDir, kind PinKind, off lib.PinOffset, bit int, cap float64) *Pin {
	p := &Pin{
		ID: PinID(len(d.pins)), Inst: in.ID, Net: NoID,
		Dir: dir, Kind: kind, Offset: off, Bit: bit, Cap: cap,
	}
	d.pins = append(d.pins, p)
	in.Pins = append(in.Pins, p.ID)
	return p
}

// Connect attaches pin p to net n, detaching it from any previous net.
func (d *Design) Connect(p *Pin, n *Net) {
	if p.Net != NoID {
		d.Disconnect(p)
	}
	p.Net = n.ID
	if p.Dir == DirOut {
		if n.Driver != NoID {
			panic(fmt.Sprintf("netlist: net %q already driven", n.Name))
		}
		n.Driver = p.ID
	} else {
		n.Sinks = append(n.Sinks, p.ID)
	}
	if n.IsClock {
		d.noteClock(p.Inst)
	} else {
		d.noteStructural(p.Inst)
		d.noteNetMembers(n, p.ID)
	}
}

// Disconnect removes pin p from its net, if any.
func (d *Design) Disconnect(p *Pin) {
	if p.Net == NoID {
		return
	}
	n := d.nets[p.Net]
	if n.Driver == p.ID {
		n.Driver = NoID
	} else {
		for i, s := range n.Sinks {
			if s == p.ID {
				n.Sinks = append(n.Sinks[:i], n.Sinks[i+1:]...)
				break
			}
		}
	}
	p.Net = NoID
	if n.IsClock {
		d.noteClock(p.Inst)
	} else {
		d.noteStructural(p.Inst)
		d.noteNetMembers(n, p.ID)
	}
}

// noteNetMembers records the registers whose D or Q pins sit on the net
// (other than the pin driving the edit) as touched. Data-net membership is
// itself an input to derived per-register state — a register's feasible
// region can be bounded by the positions of the *other* pins of its D/Q
// nets — so a pin joining or leaving a net dirties those registers. The
// record must be made here rather than reconstructed by consumers: the
// editing instance is often removed right after disconnecting, at which
// point its former neighbors are unreachable from the edit log alone.
// Only register data pins are noted: nothing position-derived is cached
// for other members, and high-fanout control stars (reset, enable,
// scan-enable) would flood the ring. Clock nets are exempt for the same
// reason (clock-arrival effects are tracked by the clock epoch).
func (d *Design) noteNetMembers(n *Net, excl PinID) {
	note := func(pid PinID) {
		if pid == excl {
			return
		}
		p := d.pins[pid]
		if p.Kind != PinData && p.Kind != PinOut {
			return
		}
		if in := d.insts[p.Inst]; in != nil && in.Kind == KindReg {
			d.noteTouch(p.Inst)
		}
	}
	if n.Driver != NoID {
		note(n.Driver)
	}
	for _, s := range n.Sinks {
		note(s)
	}
}

// InstNets returns the deduplicated live nets the instance's pins are
// connected to, appended to buf; signalOnly skips clock nets. A nil or
// removed instance has none. Incremental consumers (metrics.Tracker,
// route.Engine) snapshot this per instance so an edit can be mapped to
// exactly the nets whose geometry it may have changed — the nets the
// instance was on at the last sync plus the nets it is on now.
func (d *Design) InstNets(id InstID, signalOnly bool, buf []NetID) []NetID {
	in := d.Inst(id)
	if in == nil {
		return buf
	}
	for _, pid := range in.Pins {
		p := d.pins[pid]
		if p.Net == NoID {
			continue
		}
		n := d.nets[p.Net]
		if n.dead || (signalOnly && n.IsClock) {
			continue
		}
		dup := false
		for _, have := range buf {
			if have == n.ID {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, n.ID)
		}
	}
	return buf
}

// PinPos returns the absolute position of a pin.
func (d *Design) PinPos(p *Pin) geom.Point {
	in := d.insts[p.Inst]
	return geom.Point{X: in.Pos.X + p.Offset.DX, Y: in.Pos.Y + p.Offset.DY}
}

// NetBBox returns the bounding box over all connected pins of n; ok is
// false for nets with no connected pins.
func (d *Design) NetBBox(n *Net) (geom.Rect, bool) {
	var pts []geom.Point
	if n.Driver != NoID {
		pts = append(pts, d.PinPos(d.pins[n.Driver]))
	}
	for _, s := range n.Sinks {
		pts = append(pts, d.PinPos(d.pins[s]))
	}
	if len(pts) == 0 {
		return geom.Rect{}, false
	}
	return geom.BoundingBox(pts), true
}

// NetHPWL returns the half-perimeter wirelength of n in DBU.
func (d *Design) NetHPWL(n *Net) int64 {
	bb, ok := d.NetBBox(n)
	if !ok {
		return 0
	}
	return bb.HalfPerimeter()
}

// Wirelength sums HPWL over live nets, split into clock and signal
// components.
func (d *Design) Wirelength() (clock, signal int64) {
	for _, n := range d.nets {
		if n.dead {
			continue
		}
		wl := d.NetHPWL(n)
		if n.IsClock {
			clock += wl
		} else {
			signal += wl
		}
	}
	return clock, signal
}

// NetContrib returns one net's contribution to the design-level metrics:
// its load capacitance (connected sink pin caps plus routing capacitance
// estimated from HPWL) and its HPWL, computing the bounding box once. It is
// the single per-net helper both the batch measurers (cts.Measure,
// Wirelength) and the retained metric caches (cts.Engine, metrics.Tracker)
// share, so cached and recomputed values agree bit-for-bit by construction.
func (d *Design) NetContrib(n *Net) (capFF float64, hpwl int64) {
	for _, s := range n.Sinks {
		capFF += d.pins[s].Cap
	}
	hpwl = d.NetHPWL(n)
	return capFF + d.Timing.WireCapPerDBU*float64(hpwl), hpwl
}

// NetLoadCap returns the total capacitance the net's driver sees: connected
// sink pin caps plus routing capacitance estimated from HPWL.
func (d *Design) NetLoadCap(n *Net) float64 {
	c, _ := d.NetContrib(n)
	return c
}

// TotalArea sums footprint area over live instances.
func (d *Design) TotalArea() int64 {
	var a int64
	for _, in := range d.insts {
		if !in.dead {
			a += in.Area()
		}
	}
	return a
}

// Validate checks structural invariants: pin/net cross references, driver
// uniqueness, live instances inside the core, register pin counts matching
// their library cell. It returns the first problem found.
func (d *Design) Validate() error {
	for _, n := range d.nets {
		if n.dead {
			continue
		}
		if n.Driver != NoID {
			p := d.Pin(n.Driver)
			if p == nil || p.Net != n.ID || p.Dir != DirOut {
				return fmt.Errorf("net %q: bad driver pin", n.Name)
			}
			if d.insts[p.Inst].dead {
				return fmt.Errorf("net %q: driver on dead instance", n.Name)
			}
		}
		for _, s := range n.Sinks {
			p := d.Pin(s)
			if p == nil || p.Net != n.ID || p.Dir != DirIn {
				return fmt.Errorf("net %q: bad sink pin %d", n.Name, s)
			}
			if d.insts[p.Inst].dead {
				return fmt.Errorf("net %q: sink on dead instance", n.Name)
			}
		}
	}
	for _, in := range d.insts {
		if in.dead {
			continue
		}
		if in.Kind == KindReg {
			if in.RegCell == nil {
				return fmt.Errorf("inst %q: register without cell", in.Name)
			}
			nd, nq := 0, 0
			for _, pid := range in.Pins {
				switch d.pins[pid].Kind {
				case PinData:
					nd++
				case PinOut:
					nq++
				}
			}
			if nd != in.RegCell.Bits || nq != in.RegCell.Bits {
				return fmt.Errorf("inst %q: %d D / %d Q pins for %d-bit cell",
					in.Name, nd, nq, in.RegCell.Bits)
			}
		}
		for _, pid := range in.Pins {
			if d.pins[pid].Inst != in.ID {
				return fmt.Errorf("inst %q: pin %d back-reference broken", in.Name, pid)
			}
		}
	}
	return nil
}
