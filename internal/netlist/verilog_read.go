package netlist

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/scanner"

	"repro/internal/geom"
	"repro/internal/lib"
)

// ReadVerilog parses the structural subset WriteVerilog emits: one module,
// input/output/wire declarations, attributed cell instances with named
// port connections. Register cells are resolved against the library,
// combinational cells against combs (keyed by sanitized cell name).
//
// The core rectangle and timing environment are not part of Verilog; pass
// the intended core (the mbrc_x/mbrc_y attributes position instances
// within it) and set Design.Timing afterwards.
func ReadVerilog(r io.Reader, library *lib.Library, combs map[string]*CombSpec, core geom.Rect) (*Design, error) {
	p := &vparser{combs: combs}
	p.s.Init(r)
	p.s.Mode = scanner.ScanIdents | scanner.ScanInts | scanner.ScanStrings | scanner.SkipComments | scanner.ScanComments
	p.s.Error = func(_ *scanner.Scanner, msg string) { p.fail(msg) }
	d := NewDesign("verilog", core, library)
	if err := p.parse(d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: parsed design invalid: %w", err)
	}
	return d, nil
}

type vparser struct {
	s     scanner.Scanner
	combs map[string]*CombSpec
	err   error

	tok  rune
	text string
}

func (p *vparser) fail(msg string) {
	if p.err == nil {
		p.err = fmt.Errorf("netlist: verilog line %d: %s", p.s.Pos().Line, msg)
	}
}

func (p *vparser) next() {
	p.tok = p.s.Scan()
	p.text = p.s.TokenText()
	if p.tok == scanner.Comment {
		p.next()
	}
}

func (p *vparser) expect(lit string) {
	if p.err != nil {
		return
	}
	if p.text != lit {
		p.fail(fmt.Sprintf("expected %q, got %q", lit, p.text))
		return
	}
	p.next()
}

func (p *vparser) ident() string {
	if p.err != nil {
		return ""
	}
	if p.tok != scanner.Ident {
		p.fail(fmt.Sprintf("expected identifier, got %q", p.text))
		return ""
	}
	id := p.text
	p.next()
	return id
}

func (p *vparser) parse(d *Design) error {
	p.next()
	p.expect("module")
	d.Name = p.ident()
	p.expect("(")
	portOrder := []string{}
	for p.err == nil && p.text != ")" {
		portOrder = append(portOrder, p.ident())
		if p.text == "," {
			p.next()
		}
	}
	p.expect(")")
	p.expect(";")

	portDir := map[string]bool{} // name → isInput
	nets := map[string]*Net{}
	getNetC := func(name string, clock bool) *Net {
		if n, ok := nets[name]; ok {
			return n
		}
		n := d.AddNet(name, clock)
		nets[name] = n
		return n
	}
	// Nets referenced without a declared wire (port nets) fall back to a
	// name heuristic for clock-ness; declared wires carry an explicit
	// (* mbrc_clock *) attribute.
	getNet := func(name string) *Net {
		return getNetC(name, strings.Contains(strings.ToLower(name), "clk"))
	}

	var pendingAttrs map[string]string
	for p.err == nil && p.text != "endmodule" {
		switch p.text {
		case "input", "output":
			isInput := p.text == "input"
			p.next()
			for p.err == nil {
				name := p.ident()
				portDir[name] = isInput
				if p.text != "," {
					break
				}
				p.next()
			}
			p.expect(";")
		case "wire":
			clock := pendingAttrs["mbrc_clock"] == "1"
			pendingAttrs = nil
			p.next()
			for p.err == nil {
				getNetC(p.ident(), clock)
				if p.text != "," {
					break
				}
				p.next()
			}
			p.expect(";")
		case "(":
			// (* attr = v, ... *)
			pendingAttrs = p.parseAttrs()
		default:
			if p.tok != scanner.Ident {
				p.fail(fmt.Sprintf("unexpected token %q", p.text))
				break
			}
			if err := p.parseInstance(d, getNet, pendingAttrs); err != nil {
				return err
			}
			pendingAttrs = nil
		}
	}
	if p.err != nil {
		return p.err
	}

	// Create ports (after nets exist) and connect them.
	for _, name := range portOrder {
		isInput, ok := portDir[name]
		if !ok {
			return fmt.Errorf("netlist: verilog: port %q has no direction", name)
		}
		in, err := d.AddPort(name, isInput, geom.Point{X: d.Core.Lo.X, Y: d.Core.Lo.Y})
		if err != nil {
			return err
		}
		if n, ok := nets[name]; ok {
			d.Connect(d.Pin(in.Pins[0]), n)
		} else {
			// The port's net is referenced by instance connections under
			// the port name; create it now.
			d.Connect(d.Pin(in.Pins[0]), getNet(name))
		}
	}
	return nil
}

// parseAttrs parses (* k = v, k2 = "v2" *).
func (p *vparser) parseAttrs() map[string]string {
	out := map[string]string{}
	p.expect("(")
	p.expect("*")
	for p.err == nil && p.text != "*" {
		key := p.ident()
		val := "1"
		if p.text == "=" {
			p.next()
			val = strings.Trim(p.text, "\"")
			p.next()
		}
		out[key] = val
		if p.text == "," {
			p.next()
		}
	}
	p.expect("*")
	p.expect(")")
	return out
}

func (p *vparser) parseInstance(d *Design, getNet func(string) *Net, attrs map[string]string) error {
	cellName := p.ident()
	instName := p.ident()
	p.expect("(")
	type conn struct{ pin, net string }
	var conns []conn
	for p.err == nil && p.text != ")" {
		p.expect(".")
		pin := p.ident()
		p.expect("(")
		net := p.ident()
		p.expect(")")
		conns = append(conns, conn{pin, net})
		if p.text == "," {
			p.next()
		}
	}
	p.expect(")")
	p.expect(";")
	if p.err != nil {
		return p.err
	}

	kind := attrs["mbrc_kind"]
	pos := geom.Point{
		X: atoiDefault(attrs["mbrc_x"], d.Core.Lo.X),
		Y: atoiDefault(attrs["mbrc_y"], d.Core.Lo.Y),
	}
	var in *Inst
	var err error
	if cell := d.Lib.CellByName(cellName); cell != nil {
		in, err = d.AddRegister(instName, cell, pos)
	} else if spec, ok := p.combs[cellName]; ok {
		switch kind {
		case "clkbuf":
			in, err = d.AddClockBuf(instName, spec, pos)
		case "clkgate":
			in, err = d.AddClockGate(instName, spec, pos)
		default:
			in, err = d.AddComb(instName, spec, pos)
		}
	} else {
		return fmt.Errorf("netlist: verilog: unknown cell %q", cellName)
	}
	if err != nil {
		return err
	}
	in.Fixed = attrs["mbrc_fixed"] == "1"
	in.SizeOnly = attrs["mbrc_size_only"] == "1"
	in.GateGroup = int(atoiDefault(attrs["mbrc_gate"], -1))
	in.ScanPartition = int(atoiDefault(attrs["mbrc_scan_part"], -1))

	for _, c := range conns {
		pin := findVerilogPin(d, in, c.pin)
		if pin == nil {
			return fmt.Errorf("netlist: verilog: instance %q has no pin %q", instName, c.pin)
		}
		d.Connect(pin, getNet(c.net))
	}
	return nil
}

func atoiDefault(s string, def int64) int64 {
	if s == "" {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return def
	}
	return v
}

// findVerilogPin reverses verilogPinName.
func findVerilogPin(d *Design, in *Inst, name string) *Pin {
	kind, bit := PinData, 0
	switch {
	case name == "CK":
		kind = PinClock
	case name == "RST":
		kind = PinReset
	case name == "EN":
		kind = PinEnable
	case name == "SE":
		kind = PinScanEnable
	case name == "Y":
		kind = PinOut
	case strings.HasPrefix(name, "SI"):
		kind = PinScanIn
		bit = atoiSuffix(name[2:])
	case strings.HasPrefix(name, "SO"):
		kind = PinScanOut
		bit = atoiSuffix(name[2:])
	case strings.HasPrefix(name, "D"):
		kind = PinData
		bit = atoiSuffix(name[1:])
	case strings.HasPrefix(name, "Q"):
		kind = PinOut
		bit = atoiSuffix(name[1:])
	case strings.HasPrefix(name, "A"):
		kind = PinData
		bit = atoiSuffix(name[1:])
	default:
		return nil
	}
	return d.FindPin(in, kind, bit)
}

func atoiSuffix(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return v
}
