package netlist

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/geom"
)

// instSnap fingerprints every per-instance quantity an incremental engine
// may cache: position, flags, groups, the cell, and pin connectivity.
type instSnap string

func snapInst(d *Design, in *Inst) instSnap {
	var b strings.Builder
	fmt.Fprintf(&b, "%v %v %v %d %d %p %p|", in.Pos, in.Fixed, in.SizeOnly,
		in.GateGroup, in.ScanPartition, in.RegCell, in.Comb)
	for _, pid := range in.Pins {
		p := d.Pin(pid)
		fmt.Fprintf(&b, "%d/%d:%d ", p.Kind, p.Bit, p.Net)
	}
	return instSnap(b.String())
}

func snapshot(d *Design) map[InstID]instSnap {
	out := map[InstID]instSnap{}
	d.Insts(func(in *Inst) { out[in.ID] = snapInst(d, in) })
	return out
}

// TestTouchedLogCoversEdits is the satellite audit test: after a battery of
// edits through the Design API, every instance whose observable state
// changed — including created and removed ones — must appear in
// TouchedSince, and the log must report itself complete.
func TestTouchedLogCoversEdits(t *testing.T) {
	d, r1, r2 := buildPair(t)
	cursor := d.Epoch()
	before := snapshot(d)

	// Parametric edits.
	d.MoveInst(r1, geom.Point{X: 2200, Y: 1200})
	d.SetFixed(r2, true)
	d.SetFixed(r2, false) // net no-op state-wise, still fine to report
	d.SetGateGroup(r2, 3)
	cells := testLib.CellsOfWidth(testClass(), 1)
	if len(cells) > 1 {
		if err := d.ResizeRegister(r1, cells[len(cells)-1]); err != nil {
			t.Fatal(err)
		}
	}

	// Creation: a register added and deliberately never connected.
	orphan, err := d.AddRegister("orphan", cellOf(t, 1), geom.Point{X: 500, Y: 500})
	if err != nil {
		t.Fatal(err)
	}
	_ = orphan

	// Structural edits: merge the pair into a 2-bit MBR, then split it.
	mr, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 2), "m0", geom.Point{X: 2000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.SplitRegister(mr.MBR, cellOf(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Removal.
	d.RemoveInst(parts[0])

	after := snapshot(d)
	changed := map[InstID]bool{}
	for id, s := range before {
		if s2, ok := after[id]; !ok || s2 != s {
			changed[id] = true // mutated or removed
		}
	}
	for id := range after {
		if _, ok := before[id]; !ok {
			changed[id] = true // created
		}
	}

	touched, complete := d.TouchedSince(cursor)
	if !complete {
		t.Fatalf("touched log overflowed on %d edits", len(touched))
	}
	logged := map[InstID]bool{}
	for _, id := range touched {
		logged[id] = true
	}
	for id := range changed {
		if !logged[id] {
			t.Errorf("instance %d changed state but is missing from the touched log", id)
		}
	}
}

// TestCreationIsLogged pins the bugfix: instance creation alone (no
// Connect) must reach the touched log.
func TestCreationIsLogged(t *testing.T) {
	d := newTestDesign()
	cursor := d.Epoch()
	r, err := d.AddRegister("lonely", cellOf(t, 1), geom.Point{X: 100, Y: 100})
	if err != nil {
		t.Fatal(err)
	}
	touched, complete := d.TouchedSince(cursor)
	if !complete {
		t.Fatal("log overflowed")
	}
	for _, id := range touched {
		if id == r.ID {
			return
		}
	}
	t.Fatalf("created instance %d not in touched log %v", r.ID, touched)
}
