package netlist

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/lib"
)

// SplitRegister replaces a multi-bit register with per-bit instances of
// cell (which must be a 1-bit cell of the same functional class). It is the
// inverse of MergeRegisters and enables the paper's future-work idea:
// decomposing the 8-bit MBRs that composition would otherwise skip, so
// recomposition can regroup their bits with neighbours.
//
// The new registers take the original's control connections, gating group
// and scan partition, and are placed side by side on the original footprint
// (legalization may spread them). Unconnected bits of an incomplete MBR
// produce no instance. Names are <orig>_b<bit>.
func (d *Design) SplitRegister(in *Inst, cell *lib.Cell) ([]*Inst, error) {
	if in == nil || in.dead {
		return nil, fmt.Errorf("netlist: SplitRegister: dead instance")
	}
	if in.Kind != KindReg || in.RegCell == nil {
		return nil, fmt.Errorf("netlist: SplitRegister(%q): not a register", in.Name)
	}
	if in.Fixed || in.SizeOnly {
		return nil, fmt.Errorf("netlist: SplitRegister(%q): fixed/size-only", in.Name)
	}
	if in.Bits() < 2 {
		return nil, fmt.Errorf("netlist: SplitRegister(%q): already single-bit", in.Name)
	}
	if cell.Bits != 1 {
		return nil, fmt.Errorf("netlist: SplitRegister(%q): target cell %q is not 1-bit", in.Name, cell.Name)
	}
	if cell.Class != in.RegCell.Class {
		return nil, fmt.Errorf("netlist: SplitRegister(%q): class mismatch with %q", in.Name, cell.Name)
	}

	type bitConn struct {
		bit  int
		dNet NetID
		qNet NetID
	}
	var conns []bitConn
	for b := 0; b < in.Bits(); b++ {
		dn, qn := pinNet(d.DPin(in, b)), pinNet(d.QPin(in, b))
		if dn == NoID && qn == NoID {
			continue // tied-off bit of an incomplete MBR
		}
		conns = append(conns, bitConn{b, dn, qn})
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("netlist: SplitRegister(%q): no connected bits", in.Name)
	}
	// Every part name must be free before anything is torn down. AddRegister's
	// only failure mode below is a name collision, so checking here makes the
	// commit phase infallible: a rejected split leaves the design untouched
	// (MergeRegisters gives the same validate-then-commit guarantee, and the
	// serve journal depends on it — failed edits are not journaled, so a
	// surviving mutation would break snapshot replay).
	for _, bc := range conns {
		if ex := d.InstByName(fmt.Sprintf("%s_b%d", in.Name, bc.bit)); ex != nil {
			return nil, fmt.Errorf("netlist: SplitRegister(%q): instance %q already exists", in.Name, ex.Name)
		}
	}
	clockNet := d.ControlNet(in, PinClock)
	resetNet := d.ControlNet(in, PinReset)
	enableNet := d.ControlNet(in, PinEnable)
	seNet := d.ControlNet(in, PinScanEnable)
	gate, scanPart := in.GateGroup, in.ScanPartition
	origName, origPos := in.Name, in.Pos

	d.RemoveInst(in)

	var out []*Inst
	for i, bc := range conns {
		pos := geom.Point{X: origPos.X + int64(i)*cell.Width, Y: origPos.Y}
		if pos.X+cell.Width > d.Core.Hi.X {
			pos.X = d.Core.Hi.X - cell.Width
		}
		nr, err := d.AddRegister(fmt.Sprintf("%s_b%d", origName, bc.bit), cell, pos)
		if err != nil {
			return nil, err
		}
		nr.GateGroup = gate
		nr.ScanPartition = scanPart
		if bc.dNet != NoID {
			d.Connect(d.DPin(nr, 0), d.nets[bc.dNet])
		}
		if bc.qNet != NoID {
			d.Connect(d.QPin(nr, 0), d.nets[bc.qNet])
		}
		connectIf := func(kind PinKind, net NetID) {
			if net == NoID {
				return
			}
			if p := d.FindPin(nr, kind, 0); p != nil {
				d.Connect(p, d.nets[net])
			}
		}
		connectIf(PinClock, clockNet)
		connectIf(PinReset, resetNet)
		connectIf(PinEnable, enableNet)
		connectIf(PinScanEnable, seNet)
		out = append(out, nr)
	}
	return out, nil
}
