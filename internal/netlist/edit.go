package netlist

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/lib"
)

// RemoveInst disconnects every pin of the instance and deletes it from the
// design. Its nets survive (possibly driverless or sinkless).
func (d *Design) RemoveInst(in *Inst) {
	if in.dead {
		return
	}
	for _, pid := range in.Pins {
		d.Disconnect(d.pins[pid])
	}
	in.dead = true
	delete(d.nameToInst, in.Name)
	d.noteTouch(in.ID)
}

// RemoveNet deletes a net; it must have no connected pins.
func (d *Design) RemoveNet(n *Net) error {
	if n.Driver != NoID || len(n.Sinks) > 0 {
		return fmt.Errorf("netlist: RemoveNet(%q): net still connected", n.Name)
	}
	n.dead = true
	return nil
}

// MoveInst repositions an instance. All position edits must go through
// this method (never assign Inst.Pos directly): it records the move in the
// edit log so incremental timing can invalidate the instance's
// neighbourhood.
func (d *Design) MoveInst(in *Inst, pos geom.Point) {
	if in.Pos == pos {
		// A no-op move changes nothing an engine could observe; noting it
		// would still consume touched-ring capacity (the legalizer calls
		// MoveInst for every settled instance, displaced or not), and ring
		// drops are what force retained readers off their delta paths.
		return
	}
	in.Pos = pos
	d.noteTouch(in.ID)
}

// SetFixed sets the placement-fixed flag through the edit log: the flag
// feeds composability analysis, so flipping it must dirty the instance.
func (d *Design) SetFixed(in *Inst, v bool) {
	if in.Fixed != v {
		in.Fixed = v
		d.noteTouch(in.ID)
	}
}

// SetSizeOnly sets the size-only optimization restriction; epoch-logged
// like SetFixed.
func (d *Design) SetSizeOnly(in *Inst, v bool) {
	if in.SizeOnly != v {
		in.SizeOnly = v
		d.noteTouch(in.ID)
	}
}

// SetGateGroup assigns the clock-gating group; epoch-logged (the group is
// part of functional compatibility).
func (d *Design) SetGateGroup(in *Inst, g int) {
	if in.GateGroup != g {
		in.GateGroup = g
		d.noteTouch(in.ID)
	}
}

// SetScanPartition assigns the scan partition; epoch-logged.
func (d *Design) SetScanPartition(in *Inst, p int) {
	if in.ScanPartition != p {
		in.ScanPartition = p
		d.noteTouch(in.ID)
	}
}

// BitAssignment records where one original register bit landed in a merged
// MBR.
type BitAssignment struct {
	// Src is the original register instance (dead after the merge).
	Src InstID
	// SrcBit is the bit index within the original register.
	SrcBit int
	// DstBit is the bit index within the new MBR.
	DstBit int
}

// MergeResult describes a completed register merge.
type MergeResult struct {
	MBR *Inst
	// Assignment maps every original bit to its slot in the MBR, in
	// ascending DstBit order.
	Assignment []BitAssignment
	// UnusedBits counts tied-off D/Q pairs (incomplete MBR slots).
	UnusedBits int
}

// MergeRegisters replaces the register instances in group with one new
// instance of cell placed at pos. The group's bits are packed into the
// MBR's low bits in group order; remaining bits (for incomplete MBRs) stay
// unconnected.
//
// Structural requirements checked here (semantic compatibility — timing,
// placement, scan ordering — is the caller's concern, see internal/compat):
// every group member is a live non-fixed register, total bits fit the cell,
// and all members agree on clock, reset, enable and scan-enable nets so the
// shared control pins of the MBR can be legally connected.
func (d *Design) MergeRegisters(group []*Inst, cell *lib.Cell, name string, pos geom.Point) (*MergeResult, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("netlist: MergeRegisters with empty group")
	}
	totalBits := 0
	members := make(map[InstID]bool, len(group))
	for _, in := range group {
		if in == nil || in.dead {
			return nil, fmt.Errorf("netlist: MergeRegisters: dead instance in group")
		}
		if in.Kind != KindReg {
			return nil, fmt.Errorf("netlist: MergeRegisters: %q is not a register", in.Name)
		}
		if in.Fixed || in.SizeOnly {
			return nil, fmt.Errorf("netlist: MergeRegisters: %q is fixed/size-only", in.Name)
		}
		if members[in.ID] {
			return nil, fmt.Errorf("netlist: MergeRegisters: %q listed twice", in.Name)
		}
		members[in.ID] = true
		totalBits += in.Bits()
	}
	// The MBR name must be free — reusing a group member's own name is
	// fine, since the member is dead by the time the MBR is created.
	// Checked here so that every fallible check runs before the RemoveInst
	// teardown below: a rejected merge must never have destroyed the group.
	if ex := d.InstByName(name); ex != nil && !members[ex.ID] {
		return nil, fmt.Errorf("netlist: MergeRegisters: instance %q already exists", name)
	}
	if totalBits > cell.Bits {
		return nil, fmt.Errorf("netlist: MergeRegisters: %d bits exceed %d-bit cell", totalBits, cell.Bits)
	}
	// Shared control nets must agree.
	for _, kind := range []PinKind{PinClock, PinReset, PinEnable, PinScanEnable} {
		ref := d.ControlNet(group[0], kind)
		for _, in := range group[1:] {
			if d.ControlNet(in, kind) != ref {
				return nil, fmt.Errorf("netlist: MergeRegisters: %q disagrees on %v net", in.Name, kind)
			}
		}
	}

	// Record original connectivity before tearing anything down.
	type bitConn struct {
		src    InstID
		srcBit int
		dNet   NetID
		qNet   NetID
	}
	var conns []bitConn
	for _, in := range group {
		for b := 0; b < in.Bits(); b++ {
			conns = append(conns, bitConn{
				src: in.ID, srcBit: b,
				dNet: pinNet(d.DPin(in, b)), qNet: pinNet(d.QPin(in, b)),
			})
		}
	}
	clockNet := d.ControlNet(group[0], PinClock)
	resetNet := d.ControlNet(group[0], PinReset)
	enableNet := d.ControlNet(group[0], PinEnable)
	seNet := d.ControlNet(group[0], PinScanEnable)
	gateGroup := group[0].GateGroup
	scanPart := group[0].ScanPartition

	for _, in := range group {
		d.RemoveInst(in)
	}

	mbr, err := d.AddRegister(name, cell, pos)
	if err != nil {
		return nil, err
	}
	mbr.GateGroup = gateGroup
	mbr.ScanPartition = scanPart

	res := &MergeResult{MBR: mbr, UnusedBits: cell.Bits - totalBits}
	for k, bc := range conns {
		if bc.dNet != NoID {
			d.Connect(d.DPin(mbr, k), d.nets[bc.dNet])
		}
		if bc.qNet != NoID {
			d.Connect(d.QPin(mbr, k), d.nets[bc.qNet])
		}
		res.Assignment = append(res.Assignment, BitAssignment{Src: bc.src, SrcBit: bc.srcBit, DstBit: k})
	}
	connectIf := func(kind PinKind, net NetID) {
		if net == NoID {
			return
		}
		if p := d.FindPin(mbr, kind, 0); p != nil {
			d.Connect(p, d.nets[net])
		}
	}
	connectIf(PinClock, clockNet)
	connectIf(PinReset, resetNet)
	connectIf(PinEnable, enableNet)
	connectIf(PinScanEnable, seNet)
	return res, nil
}

func pinNet(p *Pin) NetID {
	if p == nil {
		return NoID
	}
	return p.Net
}

// ResizeRegister swaps a register's library cell for another of the same
// functional class and bit width (MBR sizing, Fig. 4 "MBR optimization").
// Pin offsets and capacitances are updated in place; connectivity is
// preserved.
func (d *Design) ResizeRegister(in *Inst, cell *lib.Cell) error {
	if in.Kind != KindReg || in.RegCell == nil {
		return fmt.Errorf("netlist: ResizeRegister(%q): not a register", in.Name)
	}
	if in.Fixed {
		return fmt.Errorf("netlist: ResizeRegister(%q): instance fixed", in.Name)
	}
	if cell.Class != in.RegCell.Class || cell.Bits != in.RegCell.Bits {
		return fmt.Errorf("netlist: ResizeRegister(%q): %s incompatible with %s",
			in.Name, cell.Name, in.RegCell.Name)
	}
	in.RegCell = cell
	for _, pid := range in.Pins {
		p := d.pins[pid]
		switch p.Kind {
		case PinData:
			p.Offset = cell.DPins[p.Bit]
			p.Cap = cell.DPinCap
		case PinOut:
			p.Offset = cell.QPins[p.Bit]
		case PinClock:
			p.Offset = cell.ClkPin
			p.Cap = cell.ClkCap
		}
	}
	d.noteTouch(in.ID)
	return nil
}
