package netlist

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/lib"
)

func (d *Design) newInst(name string, kind InstKind, pos geom.Point) (*Inst, error) {
	if _, dup := d.nameToInst[name]; dup {
		if old := d.InstByName(name); old != nil {
			return nil, fmt.Errorf("netlist: duplicate instance name %q", name)
		}
	}
	in := &Inst{
		ID: InstID(len(d.insts)), Name: name, Kind: kind, Pos: pos,
		GateGroup: -1, ScanPartition: -1,
	}
	d.insts = append(d.insts, in)
	d.nameToInst[name] = in.ID
	// Creation is an edit too: without this, an instance that is added but
	// never connected (or whose creation-time parameters matter, like the
	// position) would be invisible to TouchedSince consumers.
	d.noteTouch(in.ID)
	return in, nil
}

// AddComb adds a combinational instance of the given spec. Its input pins
// (kind PinData) and single output pin (PinOut) are created immediately and
// may be connected afterwards.
func (d *Design) AddComb(name string, spec *CombSpec, pos geom.Point) (*Inst, error) {
	in, err := d.newInst(name, KindComb, pos)
	if err != nil {
		return nil, err
	}
	in.Comb = spec
	d.addCombPins(in, spec)
	return in, nil
}

// AddClockBuf adds a clock buffer (1 input, 1 output) instance.
func (d *Design) AddClockBuf(name string, spec *CombSpec, pos geom.Point) (*Inst, error) {
	in, err := d.newInst(name, KindClockBuf, pos)
	if err != nil {
		return nil, err
	}
	in.Comb = spec
	d.addCombPins(in, spec)
	return in, nil
}

// AddClockGate adds an integrated clock gate (clock input, enable input,
// gated clock output).
func (d *Design) AddClockGate(name string, spec *CombSpec, pos geom.Point) (*Inst, error) {
	in, err := d.newInst(name, KindClockGate, pos)
	if err != nil {
		return nil, err
	}
	in.Comb = spec
	d.addCombPins(in, spec)
	return in, nil
}

func (d *Design) addCombPins(in *Inst, spec *CombSpec) {
	for i := 0; i < spec.NumInputs; i++ {
		off := lib.PinOffset{DX: spec.Width * int64(2*i+1) / int64(2*spec.NumInputs+2), DY: spec.Height / 4}
		d.addPin(in, DirIn, PinData, off, i, spec.InCap)
	}
	d.addPin(in, DirOut, PinOut, lib.PinOffset{DX: spec.Width, DY: spec.Height / 2}, 0, 0)
}

// AddPort adds a fixed I/O port instance with a single pin of the given
// direction ("in" port drives the net, so its pin direction is DirOut).
func (d *Design) AddPort(name string, isInput bool, pos geom.Point) (*Inst, error) {
	in, err := d.newInst(name, KindPort, pos)
	if err != nil {
		return nil, err
	}
	in.Fixed = true
	dir := DirIn
	if isInput {
		dir = DirOut
	}
	d.addPin(in, dir, PinData, lib.PinOffset{}, 0, 1.0)
	return in, nil
}

// AddRegister adds a register instance of the given library cell at pos.
// Pins are created according to the cell: one D and one Q per bit, a clock
// pin, plus reset/enable/scan pins as the functional class requires.
func (d *Design) AddRegister(name string, cell *lib.Cell, pos geom.Point) (*Inst, error) {
	if cell == nil {
		return nil, fmt.Errorf("netlist: AddRegister(%q) with nil cell", name)
	}
	in, err := d.newInst(name, KindReg, pos)
	if err != nil {
		return nil, err
	}
	in.RegCell = cell
	for b := 0; b < cell.Bits; b++ {
		d.addPin(in, DirIn, PinData, cell.DPins[b], b, cell.DPinCap)
	}
	for b := 0; b < cell.Bits; b++ {
		d.addPin(in, DirOut, PinOut, cell.QPins[b], b, 0)
	}
	d.addPin(in, DirIn, PinClock, cell.ClkPin, 0, cell.ClkCap)
	if cell.Class.Reset != lib.NoReset {
		d.addPin(in, DirIn, PinReset, lib.PinOffset{DX: 0, DY: cell.Height / 2}, 0, cell.DPinCap)
	}
	if cell.Class.HasEnable {
		d.addPin(in, DirIn, PinEnable, lib.PinOffset{DX: 0, DY: cell.Height / 3}, 0, cell.DPinCap)
	}
	switch cell.Class.Scan {
	case lib.InternalScan:
		d.addPin(in, DirIn, PinScanIn, cell.DPins[0], 0, cell.DPinCap)
		d.addPin(in, DirOut, PinScanOut, cell.QPins[cell.Bits-1], cell.Bits-1, 0)
		d.addPin(in, DirIn, PinScanEnable, lib.PinOffset{DX: 0, DY: cell.Height / 5}, 0, cell.DPinCap)
	case lib.ExternalScan:
		for b := 0; b < cell.Bits; b++ {
			d.addPin(in, DirIn, PinScanIn, cell.DPins[b], b, cell.DPinCap)
			d.addPin(in, DirOut, PinScanOut, cell.QPins[b], b, 0)
		}
		d.addPin(in, DirIn, PinScanEnable, lib.PinOffset{DX: 0, DY: cell.Height / 5}, 0, cell.DPinCap)
	}
	return in, nil
}

// FindPin returns the first pin of the instance with the given kind and
// bit, or nil.
func (d *Design) FindPin(in *Inst, kind PinKind, bit int) *Pin {
	for _, pid := range in.Pins {
		p := d.pins[pid]
		if p.Kind == kind && p.Bit == bit {
			return p
		}
	}
	return nil
}

// DPin returns the D pin for the given bit of a register.
func (d *Design) DPin(in *Inst, bit int) *Pin { return d.FindPin(in, PinData, bit) }

// QPin returns the Q pin for the given bit of a register.
func (d *Design) QPin(in *Inst, bit int) *Pin { return d.FindPin(in, PinOut, bit) }

// ClockPin returns the clock pin of a register/buffer, or nil.
func (d *Design) ClockPin(in *Inst) *Pin { return d.FindPin(in, PinClock, 0) }

// ControlNet returns the net driving the first pin of the given kind on the
// instance, or NoID. Used by functional-compatibility checks (same reset
// net, same enable net, ...).
func (d *Design) ControlNet(in *Inst, kind PinKind) NetID {
	if p := d.FindPin(in, kind, 0); p != nil {
		return p.Net
	}
	return NoID
}

// ClockNet returns the net on the register's clock pin, or NoID.
func (d *Design) ClockNet(in *Inst) NetID { return d.ControlNet(in, PinClock) }

// ClockRootNet resolves a clock net to its distribution root: it walks up
// through clock-buffer drivers (KindClockBuf) to the net the buffer chain
// is fed from, stopping at clock gates, ports or undriven nets. With no
// buffered tree present it is the identity, so consumers that key on the
// root (compatibility signatures) are invariant to whether a retained
// clock tree is currently attached and to which leaf a sink is parented.
func (d *Design) ClockRootNet(id NetID) NetID {
	for depth := 0; depth < 256; depth++ {
		n := d.Net(id)
		if n == nil || n.Driver == NoID {
			return id
		}
		drv := d.pins[n.Driver]
		in := d.Inst(drv.Inst)
		if in == nil || in.Kind != KindClockBuf {
			return id
		}
		up := NetID(NoID)
		for _, pid := range in.Pins {
			p := d.pins[pid]
			if p.Dir == DirIn && p.Net != NoID {
				up = p.Net
				break
			}
		}
		if up == NoID {
			return id
		}
		id = up
	}
	return id
}

// OutPin returns the output pin of a comb/buffer/port instance, or nil.
func (d *Design) OutPin(in *Inst) *Pin {
	for _, pid := range in.Pins {
		p := d.pins[pid]
		if p.Dir == DirOut {
			return p
		}
	}
	return nil
}
