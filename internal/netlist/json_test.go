package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	d, r1, _ := buildPair(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(&buf, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumInsts() != d.NumInsts() || d2.NumNets() != d.NumNets() {
		t.Fatalf("counts differ: insts %d/%d nets %d/%d",
			d.NumInsts(), d2.NumInsts(), d.NumNets(), d2.NumNets())
	}
	// Positions and cells survive.
	r1b := d2.InstByName(r1.Name)
	if r1b == nil || r1b.Pos != r1.Pos || r1b.RegCell.Name != r1.RegCell.Name {
		t.Fatal("register round trip failed")
	}
	// Connectivity: same HPWL per named net.
	d.Nets(func(n *Net) {
		n2 := findNet(d2, n.Name)
		if n2 == nil {
			t.Fatalf("net %q lost", n.Name)
			return
		}
		if d.NetHPWL(n) != d2.NetHPWL(n2) {
			t.Fatalf("net %q HPWL differs", n.Name)
		}
	})
	// Timing spec survives.
	if d2.Timing != d.Timing {
		t.Fatal("timing spec lost")
	}
}

func findNet(d *Design, name string) *Net {
	var out *Net
	d.Nets(func(n *Net) {
		if n.Name == name {
			out = n
		}
	})
	return out
}

func TestJSONAttributesSurvive(t *testing.T) {
	d, r1, r2 := buildPair(t)
	r1.Fixed = true
	r2.SizeOnly = true
	r2.GateGroup = 3
	r2.ScanPartition = 2
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(&buf, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.InstByName("r1").Fixed {
		t.Fatal("Fixed lost")
	}
	b := d2.InstByName("r2")
	if !b.SizeOnly || b.GateGroup != 3 || b.ScanPartition != 2 {
		t.Fatalf("attributes lost: %+v", b)
	}
}

func TestJSONUnknownCellRejected(t *testing.T) {
	d, _, _ := buildPair(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(buf.String(), d.Registers()[0].RegCell.Name, "NOPE_X9", 1)
	if _, err := ReadJSON(strings.NewReader(mangled), testLib); err == nil {
		t.Fatal("unknown cell must be rejected")
	}
}

func TestJSONGarbageRejected(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope"), testLib); err == nil {
		t.Fatal("garbage must be rejected")
	}
}
