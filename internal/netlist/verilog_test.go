package netlist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestVerilogWriteBasics(t *testing.T) {
	d, _, _ := buildPair(t)
	var buf bytes.Buffer
	if err := d.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module t (", "endmodule",
		"input in_a;", "output out_a;",
		".D0(", ".Q0(", ".CK(", ".RST(",
		"mbrc_kind = \"reg\"",
		"(* mbrc_clock = 1 *) wire",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in output:\n%s", want, v)
		}
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	d, r1, r2 := buildPair(t)
	r1.Fixed = true
	r2.GateGroup = 2
	var buf bytes.Buffer
	if err := d.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadVerilog(&buf, testLib, nil, d.Core)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumInsts() != d.NumInsts() || d2.NumNets() != d.NumNets() {
		t.Fatalf("counts: insts %d/%d nets %d/%d",
			d.NumInsts(), d2.NumInsts(), d.NumNets(), d2.NumNets())
	}
	r1b := d2.InstByName("r1")
	if r1b == nil || !r1b.Fixed || r1b.Pos != r1.Pos || r1b.RegCell.Name != r1.RegCell.Name {
		t.Fatalf("r1 round trip: %+v", r1b)
	}
	if d2.InstByName("r2").GateGroup != 2 {
		t.Fatal("gate group lost")
	}
	// Clock net stays a clock net.
	cn := d2.Net(d2.ClockNet(r1b))
	if cn == nil || !cn.IsClock {
		t.Fatal("clock net attribute lost")
	}
	// Connectivity: D pin of r1 still driven by in_a's net.
	dp := d2.DPin(r1b, 0)
	n := d2.Net(dp.Net)
	if n.Driver == NoID {
		t.Fatal("d net driverless after round trip")
	}
	drv := d2.Inst(d2.Pin(n.Driver).Inst)
	if drv.Kind != KindPort {
		t.Fatalf("driver kind = %v", drv.Kind)
	}
}

func TestVerilogRoundTripWithCombAndBuffers(t *testing.T) {
	d := newTestDesign()
	spec := &CombSpec{Name: "NAND2_X1", NumInputs: 2, DriveRes: 5, Intrinsic: 15, InCap: 0.6, Width: 600, Height: 1200}
	clkbufSpec := &CombSpec{Name: "CLKBUF_X4", NumInputs: 1, DriveRes: 2, Intrinsic: 18, InCap: 1.5, Width: 800, Height: 1200}
	g, err := d.AddComb("u1", spec, geom.Point{X: 5000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := d.AddClockBuf("cb1", clkbufSpec, geom.Point{X: 8000, Y: 2400})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.AddPort("a", true, geom.Point{})
	b, _ := d.AddPort("b", true, geom.Point{X: 0, Y: 100})
	y, _ := d.AddPort("y", false, geom.Point{X: 90000, Y: 0})
	na := d.AddNet("na", false)
	nb := d.AddNet("nb", false)
	ny := d.AddNet("ny", false)
	clkIn := d.AddNet("clk_in", true)
	clkOut := d.AddNet("clk_out", true)
	cp, _ := d.AddPort("clkp", true, geom.Point{X: 0, Y: 200})
	d.Connect(d.OutPin(cp), clkIn)
	d.Connect(d.FindPin(cb, PinData, 0), clkIn)
	d.Connect(d.OutPin(cb), clkOut)
	d.Connect(d.OutPin(a), na)
	d.Connect(d.OutPin(b), nb)
	d.Connect(d.FindPin(g, PinData, 0), na)
	d.Connect(d.FindPin(g, PinData, 1), nb)
	d.Connect(d.OutPin(g), ny)
	d.Connect(d.FindPin(y, PinData, 0), ny)

	var buf bytes.Buffer
	if err := d.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	combs := map[string]*CombSpec{"NAND2_X1": spec, "CLKBUF_X4": clkbufSpec}
	d2, err := ReadVerilog(&buf, testLib, combs, d.Core)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	u1 := d2.InstByName("u1")
	if u1 == nil || u1.Kind != KindComb || u1.Comb.Name != "NAND2_X1" {
		t.Fatalf("comb round trip: %+v", u1)
	}
	cb1 := d2.InstByName("cb1")
	if cb1 == nil || cb1.Kind != KindClockBuf {
		t.Fatalf("clkbuf kind lost: %+v", cb1)
	}
	if d2.NumNets() != d.NumNets() {
		t.Fatalf("nets %d want %d", d2.NumNets(), d.NumNets())
	}
}

func TestVerilogUnknownCell(t *testing.T) {
	src := `module m (a);
  input a;
  MYSTERY_X1 u1 (.A0(a));
endmodule
`
	if _, err := ReadVerilog(strings.NewReader(src), testLib, nil, geom.RectWH(0, 0, 1000, 1000)); err == nil {
		t.Fatal("unknown cell must be rejected")
	}
}

func TestVerilogSyntaxError(t *testing.T) {
	src := "module m a; endmodule"
	if _, err := ReadVerilog(strings.NewReader(src), testLib, nil, geom.RectWH(0, 0, 1000, 1000)); err == nil {
		t.Fatal("syntax error must be reported")
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"abc":    "abc",
		"a.b/c":  "a_b_c",
		"1abc":   "_abc",
		"":       "_",
		"d_$ok9": "d_$ok9",
		"q[3]":   "q_3_",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q want %q", in, got, want)
		}
	}
}

func TestVerilogRoundTripIncompleteMBR(t *testing.T) {
	d, r1, r2 := buildPair(t)
	mr, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 4), "m", geom.Point{X: 2000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadVerilog(&buf, testLib, nil, d.Core)
	if err != nil {
		t.Fatal(err)
	}
	m2 := d2.InstByName("m")
	if m2 == nil || m2.Bits() != 4 {
		t.Fatal("incomplete MBR lost")
	}
	// Tied-off bits stay unconnected.
	if d2.DPin(m2, 2).Net != NoID || d2.DPin(m2, 3).Net != NoID {
		t.Fatal("tied-off bits must stay unconnected")
	}
	_ = mr
}
