package netlist

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/lib"
)

// buildMBRWithIO creates a 4-bit register with D/Q connected per bit.
func buildMBRWithIO(t *testing.T) (*Design, *Inst) {
	t.Helper()
	d := newTestDesign()
	clk := d.AddNet("clk", true)
	rst := d.AddNet("rst", false)
	cell := cellOf(t, 4)
	r, err := d.AddRegister("mbr", cell, geom.Point{X: 10000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	d.Connect(d.ClockPin(r), clk)
	d.Connect(d.FindPin(r, PinReset, 0), rst)
	for b := 0; b < 4; b++ {
		ip, _ := d.AddPort(names("in", b), true, geom.Point{X: 0, Y: int64(b) * 100})
		op, _ := d.AddPort(names("out", b), false, geom.Point{X: 90000, Y: int64(b) * 100})
		dn := d.AddNet(names("d", b), false)
		qn := d.AddNet(names("q", b), false)
		d.Connect(d.OutPin(ip), dn)
		d.Connect(d.DPin(r, b), dn)
		d.Connect(d.QPin(r, b), qn)
		d.Connect(d.FindPin(op, PinData, 0), qn)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d, r
}

func names(p string, b int) string { return p + string(rune('0'+b)) }

func TestSplitRegister(t *testing.T) {
	d, r := buildMBRWithIO(t)
	clk := d.ClockNet(r)
	rst := d.ControlNet(r, PinReset)
	dNets := make([]NetID, 4)
	qNets := make([]NetID, 4)
	for b := 0; b < 4; b++ {
		dNets[b] = d.DPin(r, b).Net
		qNets[b] = d.QPin(r, b).Net
	}
	cell1 := cellOf(t, 1)
	parts, err := d.SplitRegister(r, cell1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("parts = %d want 4", len(parts))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for b, p := range parts {
		if d.DPin(p, 0).Net != dNets[b] || d.QPin(p, 0).Net != qNets[b] {
			t.Fatalf("bit %d rewire wrong", b)
		}
		if d.ClockNet(p) != clk || d.ControlNet(p, PinReset) != rst {
			t.Fatalf("bit %d control rewire wrong", b)
		}
	}
	if d.Inst(r.ID) != nil {
		t.Fatal("original must be removed")
	}
	if got := len(d.Registers()); got != 4 {
		t.Fatalf("register count = %d", got)
	}
}

func TestSplitThenMergeRoundTrip(t *testing.T) {
	d, r := buildMBRWithIO(t)
	cell4 := r.RegCell
	parts, err := d.SplitRegister(r, cellOf(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	mr, err := d.MergeRegisters(parts, cell4, "remerged", geom.Point{X: 10000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if mr.MBR.Bits() != 4 || mr.UnusedBits != 0 {
		t.Fatalf("round trip produced %d bits, %d unused", mr.MBR.Bits(), mr.UnusedBits)
	}
	if len(d.Registers()) != 1 {
		t.Fatal("round trip must end with one register")
	}
}

func TestSplitRegisterValidation(t *testing.T) {
	d, r := buildMBRWithIO(t)
	cell1 := cellOf(t, 1)
	// Wrong class.
	other := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	if other.Class == r.RegCell.Class {
		t.Fatal("test needs a different class")
	}
	if _, err := d.SplitRegister(r, other); err == nil {
		t.Fatal("class mismatch must fail")
	}
	// Multi-bit target.
	if _, err := d.SplitRegister(r, cellOf(t, 2)); err == nil {
		t.Fatal("multi-bit target must fail")
	}
	// Fixed register.
	r.Fixed = true
	if _, err := d.SplitRegister(r, cell1); err == nil {
		t.Fatal("fixed register must not split")
	}
	r.Fixed = false
	// Single-bit register.
	one, _ := d.AddRegister("one", cell1, geom.Point{})
	if _, err := d.SplitRegister(one, cell1); err == nil {
		t.Fatal("single-bit register must not split")
	}
}

// TestRejectedSplitIsSideEffectFree pins SplitRegister's validate-then-
// commit contract, mirroring MergeRegisters: a rejected split must leave
// the design untouched. The epoch is the strongest witness — it advances
// on every tracked mutation.
func TestRejectedSplitIsSideEffectFree(t *testing.T) {
	d, r := buildMBRWithIO(t)
	cell1 := cellOf(t, 1)
	// Occupy one of the part names the split would need.
	if _, err := d.AddRegister("mbr_b2", cell1, geom.Point{X: 400, Y: 0}); err != nil {
		t.Fatal(err)
	}
	epoch0 := d.Epoch()
	if _, err := d.SplitRegister(r, cell1); err == nil {
		t.Fatal("split into a taken name must fail")
	}
	if d.Epoch() != epoch0 {
		t.Fatalf("rejected split mutated the design: epoch %d -> %d", epoch0, d.Epoch())
	}
	if d.Inst(r.ID) == nil || d.InstByName("mbr") == nil {
		t.Fatal("rejected split destroyed the original register")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Class mismatch and fixed-instance rejections are side-effect free too.
	other := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	if _, err := d.SplitRegister(r, other); err == nil {
		t.Fatal("class mismatch must fail")
	}
	r.Fixed = true
	if _, err := d.SplitRegister(r, cell1); err == nil {
		t.Fatal("fixed register must not split")
	}
	r.Fixed = false
	if d.Epoch() != epoch0 {
		t.Fatal("rejected splits mutated the design")
	}
}

// TestSplitAdvancesEpoch pins the edit-tracking contract of a committed
// split: the epoch moves and the touched log records the change, so every
// retained engine sees the structural edit on its delta feed.
func TestSplitAdvancesEpoch(t *testing.T) {
	d, r := buildMBRWithIO(t)
	epoch0 := d.Epoch()
	if _, err := d.SplitRegister(r, cellOf(t, 1)); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() <= epoch0 {
		t.Fatalf("split did not advance the epoch: %d -> %d", epoch0, d.Epoch())
	}
	if d.StructuralEpoch() <= epoch0 {
		t.Fatalf("split must be a structural edit (structural epoch %d, before %d)",
			d.StructuralEpoch(), epoch0)
	}
}

func TestSplitIncompleteMBRSkipsTiedOffBits(t *testing.T) {
	d, r1, r2 := buildPair(t)
	// Merge 2 regs into a 4-bit (2 tied-off bits), then split: only 2 parts.
	mr, err := d.MergeRegisters([]*Inst{r1, r2}, cellOf(t, 4), "m", geom.Point{X: 2000, Y: 1200})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.SplitRegister(mr.MBR, cellOf(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d want 2 (tied-off bits skipped)", len(parts))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
