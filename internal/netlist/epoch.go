package netlist

// Edit tracking: every timing-relevant mutation of a Design bumps a
// monotonically increasing edit epoch and records which instance it
// touched, so an incremental consumer (the STA engine) can find out, at
// any later point, whether anything changed since its last look and — when
// the record is still complete — exactly which instances were involved.
//
// Three classes of edit are distinguished:
//
//   - structural: data-path connectivity changed (a pin attached to or
//     detached from a non-clock net). The timing-graph topology is stale
//     and consumers must rebuild.
//   - clock: connectivity of a clock net changed. Data arcs are unaffected
//     (clock nets never carry data arcs) but propagated clock arrivals
//     must be recomputed.
//   - parametric: geometry or electrical parameters changed (MoveInst,
//     ResizeRegister). The graph topology survives; only delays, loads and
//     seeds in the neighbourhood of the touched instances move.
//
// The touched record is a bounded ring. When it overflows it is dropped
// wholesale and TouchedSince reports incomplete, which simply downgrades
// consumers to a full rebuild — correctness never depends on the ring.
//
// All edits must go through the Design methods (Connect, Disconnect,
// MoveInst, ResizeRegister, ...); writing Inst.Pos or pin/net fields
// directly bypasses tracking and leaves incremental consumers stale.

// touchedRingCap bounds the touched-instance ring. 4096 entries cover the
// per-iteration edit volume of the composition flow's hot loop (skew +
// sizing touch at most a few hundred registers); bulk edits such as CTS
// teardown overflow it and correctly force a full rebuild.
const touchedRingCap = 4096

type touchedEntry struct {
	epoch uint64
	inst  InstID
}

// editLog is the per-Design edit tracker. The zero value is ready to use.
type editLog struct {
	epoch           uint64
	structuralEpoch uint64
	clockEpoch      uint64
	// trackedFrom is the cursor floor: TouchedSince(c) is complete iff
	// c >= trackedFrom.
	trackedFrom uint64
	ring        []touchedEntry
}

// Epoch returns the design's current edit epoch. It increases by at least
// one on every timing-relevant mutation.
func (d *Design) Epoch() uint64 { return d.edits.epoch }

// StructuralEpoch returns the epoch of the last data-path connectivity
// change. A consumer whose cache was built at cursor c must rebuild its
// graph topology when StructuralEpoch() > c.
func (d *Design) StructuralEpoch() uint64 { return d.edits.structuralEpoch }

// ClockEpoch returns the epoch of the last clock-network connectivity
// change.
func (d *Design) ClockEpoch() uint64 { return d.edits.clockEpoch }

// TouchedSince returns the IDs of instances touched by timing-relevant
// edits after the given epoch, most recent first and deduplicated, plus
// whether the record is complete. complete == false means the ring was
// overwritten past the cursor and the caller must assume anything changed.
// Returned IDs may refer to since-removed instances (Inst returns nil).
func (d *Design) TouchedSince(epoch uint64) (touched []InstID, complete bool) {
	e := &d.edits
	if epoch < e.trackedFrom {
		return nil, false
	}
	seen := map[InstID]bool{}
	for i := len(e.ring) - 1; i >= 0; i-- {
		ent := e.ring[i]
		if ent.epoch <= epoch {
			break
		}
		if !seen[ent.inst] {
			seen[ent.inst] = true
			touched = append(touched, ent.inst)
		}
	}
	return touched, true
}

// noteTouch records a parametric edit to the instance.
func (d *Design) noteTouch(inst InstID) {
	e := &d.edits
	e.epoch++
	if len(e.ring) == touchedRingCap {
		// Drop the record wholesale: only the new entry remains tracked.
		e.ring = e.ring[:0]
		e.trackedFrom = e.epoch - 1
	}
	e.ring = append(e.ring, touchedEntry{epoch: e.epoch, inst: inst})
}

// noteStructural records a data-path connectivity edit at the instance.
func (d *Design) noteStructural(inst InstID) {
	d.noteTouch(inst)
	d.edits.structuralEpoch = d.edits.epoch
}

// noteClock records a clock-network connectivity edit at the instance.
func (d *Design) noteClock(inst InstID) {
	d.noteTouch(inst)
	d.edits.clockEpoch = d.edits.epoch
}

// PinSpace returns an exclusive upper bound on every PinID ever issued by
// the design (including pins of removed instances). Pin-indexed slices
// sized to PinSpace can be addressed by any PinID without bounds checks.
func (d *Design) PinSpace() int { return len(d.pins) }
