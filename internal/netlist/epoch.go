package netlist

// Edit tracking: every timing-relevant mutation of a Design bumps a
// monotonically increasing edit epoch and records which instance it
// touched, so an incremental consumer (the STA engine) can find out, at
// any later point, whether anything changed since its last look and — when
// the record is still complete — exactly which instances were involved.
//
// Three classes of edit are distinguished:
//
//   - structural: data-path connectivity changed (a pin attached to or
//     detached from a non-clock net). The timing-graph topology is stale
//     and consumers must rebuild.
//   - clock: connectivity of a clock net changed. Data arcs are unaffected
//     (clock nets never carry data arcs) but propagated clock arrivals
//     must be recomputed.
//   - parametric: geometry or electrical parameters changed (MoveInst,
//     ResizeRegister). The graph topology survives; only delays, loads and
//     seeds in the neighbourhood of the touched instances move.
//
// Orthogonally to those semantic classes, every edit belongs to an *edit
// class* — a scope tag that routes the touched record into a per-class
// ring. EditClassFlow is the default: ordinary flow edits (moves, merges,
// resizes, skews) land there and are what TouchedSince reports. The
// retained clock-tree engine tags its internal buffer/net churn
// EditClassCTS, which keeps it out of the flow ring entirely: a CTS repair
// can touch thousands of instances without evicting the handful of flow
// edits the STA and compat-graph engines need to stay on their delta
// paths. Epochs are shared across classes (one monotonic counter), only
// the touched record is partitioned.
//
// Each touched record is a bounded circular ring (capacity
// SetTouchedLogCap, default defaultTouchedRingCap). A full ring evicts its
// oldest entry per append, so a reader is only incomplete when its cursor
// predates the oldest retained entry — readers that sync at least once per
// ring-capacity's worth of edits stay complete forever, however long the
// total edit stream runs. An incomplete read simply downgrades the
// consumer to a full rebuild — correctness never depends on a ring.
//
// All edits must go through the Design methods (Connect, Disconnect,
// MoveInst, ResizeRegister, ...); writing Inst.Pos or pin/net fields
// directly bypasses tracking and leaves incremental consumers stale.

// EditClass scopes an edit's touched record to one consumer group.
type EditClass uint8

const (
	// EditClassFlow is the default class: ordinary design edits, visible
	// to TouchedSince.
	EditClassFlow EditClass = iota
	// EditClassCTS tags the retained clock-tree engine's internal edits
	// (buffer adds/moves/removals, leaf-net rewires). They bump the shared
	// epochs but are recorded in a separate ring, invisible to
	// EditClassFlow consumers.
	EditClassCTS

	numEditClasses
)

// defaultTouchedRingCap bounds each touched-instance ring unless
// SetTouchedLogCap overrides it. 4096 entries cover the per-iteration edit
// volume of the composition flow's hot loop (skew + sizing touch at most a
// few hundred registers); bulk edits overflow it and correctly force a
// full rebuild.
const defaultTouchedRingCap = 4096

type touchedEntry struct {
	epoch uint64
	inst  InstID
}

// classRing is one edit class's bounded touched record: a circular buffer
// that evicts its oldest entry once full.
type classRing struct {
	// trackedFrom is the cursor floor: TouchedSince(c) is complete iff
	// c >= trackedFrom. It advances to each evicted entry's epoch.
	trackedFrom uint64
	buf         []touchedEntry // storage; grows to capacity, then wraps
	head        int            // index of the oldest retained entry
	n           int            // live entries
}

// clear drops the record; edits at or before the given epoch become
// untracked.
func (r *classRing) clear(epoch uint64) {
	r.buf = r.buf[:0]
	r.head = 0
	r.n = 0
	r.trackedFrom = epoch
}

// push appends an entry, evicting the oldest once the ring holds cap.
func (r *classRing) push(ent touchedEntry, cap int) {
	if len(r.buf) < cap {
		r.buf = append(r.buf, ent)
		r.n++
		return
	}
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = ent
		r.n++
		return
	}
	r.trackedFrom = r.buf[r.head].epoch
	r.buf[r.head] = ent
	r.head = (r.head + 1) % len(r.buf)
}

// at returns the i-th oldest retained entry, 0 <= i < n.
func (r *classRing) at(i int) touchedEntry {
	return r.buf[(r.head+i)%len(r.buf)]
}

// editLog is the per-Design edit tracker. The zero value is ready to use.
type editLog struct {
	epoch           uint64
	structuralEpoch uint64
	clockEpoch      uint64
	// class is the edit class subsequent edits are recorded under.
	class EditClass
	// cap is the per-class ring capacity (0 = defaultTouchedRingCap).
	cap   int
	rings [numEditClasses]classRing
}

func (e *editLog) ringCap() int {
	if e.cap > 0 {
		return e.cap
	}
	return defaultTouchedRingCap
}

// Epoch returns the design's current edit epoch. It increases by at least
// one on every timing-relevant mutation.
func (d *Design) Epoch() uint64 { return d.edits.epoch }

// StructuralEpoch returns the epoch of the last data-path connectivity
// change. A consumer whose cache was built at cursor c must rebuild its
// graph topology when StructuralEpoch() > c.
func (d *Design) StructuralEpoch() uint64 { return d.edits.structuralEpoch }

// ClockEpoch returns the epoch of the last clock-network connectivity
// change.
func (d *Design) ClockEpoch() uint64 { return d.edits.clockEpoch }

// EditClass returns the class new edits are currently recorded under.
func (d *Design) EditClass() EditClass { return d.edits.class }

// SetEditClass routes subsequent edits' touched records to the given
// class's ring and returns the previous class. Prefer WithEditClass for
// scoped use.
func (d *Design) SetEditClass(c EditClass) EditClass {
	prev := d.edits.class
	if c < numEditClasses {
		d.edits.class = c
	}
	return prev
}

// WithEditClass runs fn with the edit class temporarily switched, restoring
// the previous class afterwards (also on panic).
func (d *Design) WithEditClass(c EditClass, fn func()) {
	prev := d.SetEditClass(c)
	defer d.SetEditClass(prev)
	fn()
}

// TouchedLogCap returns the per-class touched-ring capacity.
func (d *Design) TouchedLogCap() int { return d.edits.ringCap() }

// SetTouchedLogCap sets the per-class touched-ring capacity (entries).
// n <= 0 restores the default. Non-empty rings are dropped wholesale on
// any capacity change (consumers degrade to a full rebuild once, exactly
// as on an overflowed cursor).
// ResetTouchedLog drops every class's touched ring, marking all past
// edits untracked (readers with older cursors see an incomplete record
// and degrade to their full paths, exactly as after an overflow). Callers
// that create their incremental consumers *after* a bulk construction
// phase — the flow does, its engines' first looks are full rebuilds by
// definition — use this to hand the rings' whole capacity to the edits
// that follow instead of the build churn that preceded them.
func (d *Design) ResetTouchedLog() {
	e := &d.edits
	for i := range e.rings {
		e.rings[i].clear(e.epoch)
	}
}

func (d *Design) SetTouchedLogCap(n int) {
	e := &d.edits
	if n <= 0 {
		n = 0
	}
	e.cap = n
	// Changing capacity re-shapes the circular storage; drop non-empty
	// rings wholesale rather than re-index them (consumers degrade to one
	// full rebuild, exactly as on an overflowed cursor).
	for i := range e.rings {
		if r := &e.rings[i]; r.n > 0 {
			r.clear(e.epoch)
		}
	}
}

// TouchedSince returns the IDs of instances touched by EditClassFlow edits
// after the given epoch, most recent first and deduplicated, plus whether
// the record is complete. complete == false means the ring was overwritten
// past the cursor and the caller must assume anything changed. Returned
// IDs may refer to since-removed instances (Inst returns nil).
func (d *Design) TouchedSince(epoch uint64) (touched []InstID, complete bool) {
	return d.TouchedSinceClass(epoch, EditClassFlow)
}

// TouchedSinceClass is TouchedSince restricted to one edit class's record.
func (d *Design) TouchedSinceClass(epoch uint64, class EditClass) (touched []InstID, complete bool) {
	if class >= numEditClasses {
		return nil, false
	}
	r := &d.edits.rings[class]
	if epoch < r.trackedFrom {
		return nil, false
	}
	seen := map[InstID]bool{}
	for i := r.n - 1; i >= 0; i-- {
		ent := r.at(i)
		if ent.epoch <= epoch {
			break
		}
		if !seen[ent.inst] {
			seen[ent.inst] = true
			touched = append(touched, ent.inst)
		}
	}
	return touched, true
}

// noteTouch records a parametric edit to the instance under the current
// edit class.
func (d *Design) noteTouch(inst InstID) {
	e := &d.edits
	e.epoch++
	e.rings[e.class].push(touchedEntry{epoch: e.epoch, inst: inst}, e.ringCap())
}

// noteStructural records a data-path connectivity edit at the instance.
func (d *Design) noteStructural(inst InstID) {
	d.noteTouch(inst)
	d.edits.structuralEpoch = d.edits.epoch
}

// noteClock records a clock-network connectivity edit at the instance.
func (d *Design) noteClock(inst InstID) {
	d.noteTouch(inst)
	d.edits.clockEpoch = d.edits.epoch
}

// PinSpace returns an exclusive upper bound on every PinID ever issued by
// the design (including pins of removed instances). Pin-indexed slices
// sized to PinSpace can be addressed by any PinID without bounds checks.
func (d *Design) PinSpace() int { return len(d.pins) }
