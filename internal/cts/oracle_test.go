package cts_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/cts"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
)

// oracleScale keeps the five profiles small enough for many edit rounds.
const oracleScale = 300

func genProfile(t testing.TB, name string) *bench.Result {
	t.Helper()
	o := bench.ProfileOpts{Scale: oracleScale}
	var spec bench.Spec
	switch name {
	case "D1":
		spec = bench.D1(o)
	case "D2":
		spec = bench.D2(o)
	case "D3":
		spec = bench.D3(o)
	case "D4":
		spec = bench.D4(o)
	case "D5":
		spec = bench.D5(o)
	default:
		t.Fatalf("unknown profile %s", name)
	}
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return b
}

// twin is a pair of identically generated designs receiving identical
// edits: A carries the retained engine, B is rebuilt fresh every round by
// the batch Build oracle. Because the edit script never creates new
// registers, register pin IDs stay identical across the pair, so both
// sides cluster the same canonical sink sequence.
type twin struct {
	a, b *bench.Result
	// spares are registers whose clock pins the script toggles on and off
	// the clock net, exercising sink insertion and removal.
	spares []int
	// clockOf remembers each register's generate-time clock net ID (equal
	// in both designs) so toggles know where to reconnect.
	clockOf map[int]netlist.NetID
}

func makeTwin(t *testing.T, profile string) *twin {
	tw := &twin{a: genProfile(t, profile), b: genProfile(t, profile), clockOf: map[int]netlist.NetID{}}
	ra, rb := tw.a.Design.Registers(), tw.b.Design.Registers()
	if len(ra) != len(rb) {
		t.Fatalf("twin generation diverged: %d vs %d registers", len(ra), len(rb))
	}
	for i := range ra {
		if cp := tw.a.Design.ClockPin(ra[i]); cp != nil && cp.Net != netlist.NoID {
			tw.clockOf[i] = cp.Net
		}
	}
	// Park every 10th clocked register off the clock net before the engine
	// attaches, so the script can plug sinks in later.
	for i := range ra {
		if _, ok := tw.clockOf[i]; ok && i%10 == 3 {
			tw.spares = append(tw.spares, i)
			tw.a.Design.Disconnect(tw.a.Design.ClockPin(ra[i]))
			tw.b.Design.Disconnect(tw.b.Design.ClockPin(rb[i]))
		}
	}
	return tw
}

// regs returns the index-aligned live register lists of both designs.
func (tw *twin) regs(t *testing.T) ([]*netlist.Inst, []*netlist.Inst) {
	ra, rb := tw.a.Design.Registers(), tw.b.Design.Registers()
	if len(ra) != len(rb) {
		t.Fatalf("twin register lists diverged: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatalf("twin register %d diverged: inst %d vs %d", i, ra[i].ID, rb[i].ID)
		}
	}
	return ra, rb
}

// mutate applies one identical randomized edit round to both designs:
// register moves, resizes (clock pin cap changes), removals, and spare
// clock-pin toggles (sink set growth and shrinkage).
func (tw *twin) mutate(t *testing.T, rng *rand.Rand) {
	t.Helper()
	ra, rb := tw.regs(t)
	for k := 0; k < 2+rng.Intn(6); k++ {
		i := rng.Intn(len(ra))
		if ra[i].Fixed {
			continue
		}
		dx := int64(rng.Intn(40001)) - 20000
		dy := int64(rng.Intn(40001)) - 20000
		tw.a.Design.MoveInst(ra[i], geom.Point{X: ra[i].Pos.X + dx, Y: ra[i].Pos.Y + dy})
		tw.b.Design.MoveInst(rb[i], geom.Point{X: rb[i].Pos.X + dx, Y: rb[i].Pos.Y + dy})
	}
	for k := 0; k < rng.Intn(3); k++ {
		i := rng.Intn(len(ra))
		if ra[i].Fixed || ra[i].SizeOnly {
			continue
		}
		cands := tw.a.Design.Lib.CellsOfWidth(ra[i].RegCell.Class, ra[i].RegCell.Bits)
		if len(cands) < 2 {
			continue
		}
		c := rng.Intn(len(cands))
		if err := tw.a.Design.ResizeRegister(ra[i], cands[c]); err != nil {
			t.Fatalf("resize A: %v", err)
		}
		if err := tw.b.Design.ResizeRegister(rb[i], cands[c]); err != nil {
			t.Fatalf("resize B: %v", err)
		}
	}
	// Toggle a few spares: connected -> parked, parked -> connected.
	for k := 0; k < 1+rng.Intn(3) && len(tw.spares) > 0; k++ {
		si := tw.spares[rng.Intn(len(tw.spares))]
		if si >= len(ra) {
			continue
		}
		cpa, cpb := tw.a.Design.ClockPin(ra[si]), tw.b.Design.ClockPin(rb[si])
		if cpa.Net != netlist.NoID {
			tw.a.Design.Disconnect(cpa)
			tw.b.Design.Disconnect(cpb)
		} else {
			na := tw.a.Design.Net(tw.clockOf[si])
			nb := tw.b.Design.Net(tw.clockOf[si])
			tw.a.Design.Connect(cpa, na)
			tw.b.Design.Connect(cpb, nb)
		}
	}
	// Occasionally delete a register outright (a merged-away member, as
	// far as the clock tree is concerned).
	if rng.Intn(3) == 0 && len(ra) > 20 {
		i := rng.Intn(len(ra))
		tw.a.Design.RemoveInst(ra[i])
		tw.b.Design.RemoveInst(rb[i])
	}
}

// buildOracle mirrors the batch flow on design B: a fresh Build per clock
// root in net-ID order plus one global legalization pass. It returns the
// trees (callers must Remove them before the next round) and the buffers
// in creation order.
func buildOracle(t *testing.T, d *netlist.Design) ([]*cts.Tree, []*netlist.Inst) {
	t.Helper()
	var roots []*netlist.Net
	d.Nets(func(n *netlist.Net) {
		if n.IsClock && len(n.Sinks) > 0 {
			roots = append(roots, n)
		}
	})
	var trees []*cts.Tree
	var bufs []*netlist.Inst
	for _, root := range roots {
		tr, err := cts.Build(d, root, cts.DefaultOptions())
		if err != nil {
			t.Fatalf("oracle build: %v", err)
		}
		trees = append(trees, tr)
		bufs = append(bufs, tr.Buffers...)
	}
	if len(bufs) > 0 {
		place.LegalizeIncremental(d, bufs)
	}
	return trees, bufs
}

// requireTreesEqual asserts the engine-maintained trees on A equal the
// fresh oracle trees on B: buffer count, positions, per-net member lists
// (register pins by ID, buffer pins by buffer index), and clock metrics.
func requireTreesEqual(t *testing.T, ctx string, eng *cts.Engine, a, b *netlist.Design, oracleBufs []*netlist.Inst) {
	t.Helper()
	got := eng.Buffers()
	if len(got) != len(oracleBufs) {
		t.Fatalf("%s: %d buffers != oracle %d", ctx, len(got), len(oracleBufs))
	}
	// Index both buffer sets so cross-references compare positionally.
	idxA := map[netlist.InstID]int{}
	idxB := map[netlist.InstID]int{}
	for i := range got {
		idxA[got[i].ID] = i
		idxB[oracleBufs[i].ID] = i
	}
	for i := range got {
		ga, gb := got[i], oracleBufs[i]
		if ga.Pos != gb.Pos {
			t.Fatalf("%s: buffer %d at %v, oracle at %v", ctx, i, ga.Pos, gb.Pos)
		}
		na := a.Net(a.OutPin(ga).Net)
		nb := b.Net(b.OutPin(gb).Net)
		if len(na.Sinks) != len(nb.Sinks) {
			t.Fatalf("%s: buffer %d drives %d sinks, oracle %d",
				ctx, i, len(na.Sinks), len(nb.Sinks))
		}
		for j := range na.Sinks {
			pa, pb := a.Pin(na.Sinks[j]), b.Pin(nb.Sinks[j])
			ia, ib := a.Inst(pa.Inst), b.Inst(pb.Inst)
			if (ia.Kind == netlist.KindClockBuf) != (ib.Kind == netlist.KindClockBuf) {
				t.Fatalf("%s: buffer %d sink %d kind mismatch", ctx, i, j)
			}
			if ia.Kind == netlist.KindClockBuf {
				if idxA[ia.ID] != idxB[ib.ID] {
					t.Fatalf("%s: buffer %d sink %d is buffer #%d, oracle #%d",
						ctx, i, j, idxA[ia.ID], idxB[ib.ID])
				}
			} else if pa.ID != pb.ID {
				t.Fatalf("%s: buffer %d sink %d pin %d != oracle %d",
					ctx, i, j, pa.ID, pb.ID)
			}
		}
	}
	ma, mb := cts.Measure(a), cts.Measure(b)
	if ma.Buffers != mb.Buffers || ma.Sinks != mb.Sinks || ma.WirelengthDBU != mb.WirelengthDBU {
		t.Fatalf("%s: metrics diverged:\n engine %+v\n oracle %+v", ctx, ma, mb)
	}
	// TotalCapFF is summed over nets in net-ID order, which differs between
	// the twins (retained vs per-round nets), so allow float ulp noise.
	if diff := math.Abs(ma.TotalCapFF - mb.TotalCapFF); diff > 1e-6*(1+math.Abs(mb.TotalCapFF)) {
		t.Fatalf("%s: TotalCapFF %v != oracle %v", ctx, ma.TotalCapFF, mb.TotalCapFF)
	}
}

// TestDeltaEqualsBuildOracle is the equivalence oracle of the ISSUE: after
// randomized rounds of move/resize/remove/sink-toggle edits on all five
// profiles, the delta-maintained trees must equal a fresh batch Build at
// several worker counts.
func TestDeltaEqualsBuildOracle(t *testing.T) {
	for _, profile := range []string{"D1", "D2", "D3", "D4", "D5"} {
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			t.Run(fmt.Sprintf("%s/w%d", profile, workers), func(t *testing.T) {
				tw := makeTwin(t, profile)
				eng := cts.NewEngine(tw.a.Design, cts.DefaultOptions())
				eng.SetWorkers(workers)
				if err := eng.Attach(); err != nil {
					t.Fatalf("attach: %v", err)
				}
				rng := rand.New(rand.NewSource(int64(len(profile)*1000 + workers)))
				for round := 0; round < 8; round++ {
					trees, bufs := buildOracle(t, tw.b.Design)
					ctx := fmt.Sprintf("%s w%d round %d (%s)",
						profile, workers, round, eng.Stats().LastKind)
					requireTreesEqual(t, ctx, eng, tw.a.Design, tw.b.Design, bufs)
					for _, tr := range trees {
						tr.Remove()
					}
					tw.mutate(t, rng)
					if err := eng.Update(); err != nil {
						t.Fatalf("round %d: update: %v", round, err)
					}
				}
				st := eng.Stats()
				if st.Deltas == 0 {
					t.Fatalf("no update took the delta path: %+v", st)
				}
				if st.ReclusteredLeaves == 0 {
					t.Fatalf("edits never re-clustered a leaf: %+v", st)
				}
			})
		}
	}
}

// TestEngineDeterministicAcrossWorkers replays the same edit sequence at
// several worker counts and requires identical trees and decision stats.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	type snap struct {
		bufs []geom.Point
		st   cts.Stats
	}
	run := func(workers int) []snap {
		tw := makeTwin(t, "D2")
		eng := cts.NewEngine(tw.a.Design, cts.DefaultOptions())
		eng.SetWorkers(workers)
		if err := eng.Attach(); err != nil {
			t.Fatalf("attach: %v", err)
		}
		rng := rand.New(rand.NewSource(99))
		var out []snap
		for round := 0; round < 6; round++ {
			var pts []geom.Point
			for _, b := range eng.Buffers() {
				pts = append(pts, b.Pos)
			}
			st := eng.Stats()
			// Wall-time counters are not deterministic; only decisions are.
			st.PlanNS, st.RepairNS, st.LegalizeNS = 0, 0, 0
			st.LastPlanNS, st.LastRepairNS, st.LastLegalizeNS = 0, 0, 0
			out = append(out, snap{pts, st})
			tw.mutate(t, rng)
			if err := eng.Update(); err != nil {
				t.Fatalf("update: %v", err)
			}
		}
		return out
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		other := run(w)
		for i := range base {
			if len(base[i].bufs) != len(other[i].bufs) {
				t.Fatalf("w%d round %d: buffer count %d != %d",
					w, i, len(other[i].bufs), len(base[i].bufs))
			}
			for k := range base[i].bufs {
				if base[i].bufs[k] != other[i].bufs[k] {
					t.Fatalf("w%d round %d: buffer %d at %v, base at %v",
						w, i, k, other[i].bufs[k], base[i].bufs[k])
				}
			}
			if base[i].st != other[i].st {
				t.Fatalf("w%d round %d stats diverged:\n base %+v\nother %+v",
					w, i, base[i].st, other[i].st)
			}
		}
	}
}

// TestNewDomainFallsBackToRebuild gives a clock net sinks the engine has
// never seen and checks the delta path yields to a rebuild with the
// documented reason — and that the rebuilt trees still match the oracle.
func TestNewDomainFallsBackToRebuild(t *testing.T) {
	tw := makeTwin(t, "D1")
	eng := cts.NewEngine(tw.a.Design, cts.DefaultOptions())
	if err := eng.Attach(); err != nil {
		t.Fatalf("attach: %v", err)
	}
	ra, rb := tw.regs(t)
	na := tw.a.Design.AddNet("late_clk", true)
	nb := tw.b.Design.AddNet("late_clk", true)
	moved := 0
	for i := range ra {
		if moved >= 8 {
			break
		}
		cpa, cpb := tw.a.Design.ClockPin(ra[i]), tw.b.Design.ClockPin(rb[i])
		if cpa == nil || cpa.Net == netlist.NoID {
			continue
		}
		tw.a.Design.Connect(cpa, na)
		tw.b.Design.Connect(cpb, nb)
		moved++
	}
	if err := eng.Update(); err != nil {
		t.Fatalf("update: %v", err)
	}
	st := eng.Stats()
	if st.LastKind != cts.UpdateRebuild {
		t.Fatalf("expected rebuild fallback, got %q", st.LastKind)
	}
	if st.LastFallbackReason != "clock-roots-changed" {
		t.Fatalf("fallback reason = %q", st.LastFallbackReason)
	}
	trees, bufs := buildOracle(t, tw.b.Design)
	requireTreesEqual(t, "post-rebuild", eng, tw.a.Design, tw.b.Design, bufs)
	for _, tr := range trees {
		tr.Remove()
	}
}

// TestCachedMetricsEqualsMeasure is the retained-metrics oracle: after every
// engine update the cached Metrics must equal the batch Measure of the same
// design bit-for-bit (same per-net helper, same ascending-net-ID fold), and a
// design edited since the last update must be answered by the batch fallback,
// again exactly.
func TestCachedMetricsEqualsMeasure(t *testing.T) {
	for _, profile := range []string{"D1", "D2", "D3", "D4", "D5"} {
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			t.Run(fmt.Sprintf("%s/w%d", profile, workers), func(t *testing.T) {
				tw := makeTwin(t, profile)
				eng := cts.NewEngine(tw.a.Design, cts.DefaultOptions())
				eng.SetWorkers(workers)
				if err := eng.Attach(); err != nil {
					t.Fatalf("attach: %v", err)
				}
				rng := rand.New(rand.NewSource(int64(len(profile)*77 + workers)))
				for round := 0; round < 8; round++ {
					before := eng.Stats().MetricsFallbacks
					got := eng.Metrics()
					want := cts.Measure(tw.a.Design)
					if got != want {
						t.Fatalf("round %d: cached metrics %+v != Measure %+v",
							round, got, want)
					}
					if eng.Stats().MetricsFallbacks != before {
						t.Fatalf("round %d: in-sync Metrics took the fallback", round)
					}
					tw.mutate(t, rng)
					// Edited since the last update: the cache may not be
					// trusted, so Metrics must detect it and fall back — and
					// still agree with the oracle.
					got = eng.Metrics()
					want = cts.Measure(tw.a.Design)
					if got != want {
						t.Fatalf("round %d: fallback metrics %+v != Measure %+v",
							round, got, want)
					}
					if eng.Stats().MetricsFallbacks != before+1 {
						t.Fatalf("round %d: stale Metrics did not fall back", round)
					}
					if err := eng.Update(); err != nil {
						t.Fatalf("round %d: update: %v", round, err)
					}
				}
				st := eng.Stats()
				if st.MetricsDomainsRecomputed == 0 {
					t.Fatalf("cached path never refreshed a domain: %+v", st)
				}
			})
		}
	}
}

// TestInvalidateRestoresAndReattaches checks Invalidate returns the design
// to a tree-less state (every sink back on its root) and that the next
// Update attaches from scratch.
func TestInvalidateRestoresAndReattaches(t *testing.T) {
	tw := makeTwin(t, "D3")
	eng := cts.NewEngine(tw.a.Design, cts.DefaultOptions())
	if err := eng.Attach(); err != nil {
		t.Fatalf("attach: %v", err)
	}
	eng.Invalidate()
	if eng.Attached() {
		t.Fatal("engine still attached after Invalidate")
	}
	ma, mb := cts.Measure(tw.a.Design), cts.Measure(tw.b.Design)
	if ma.Buffers != 0 {
		t.Fatalf("%d clock buffers survive Invalidate", ma.Buffers)
	}
	if ma.Sinks != mb.Sinks {
		t.Fatalf("sinks %d != pristine twin %d after Invalidate", ma.Sinks, mb.Sinks)
	}
	if err := eng.Update(); err != nil {
		t.Fatalf("re-update: %v", err)
	}
	if eng.Stats().LastKind != cts.UpdateAttach {
		t.Fatalf("post-Invalidate update kind = %q", eng.Stats().LastKind)
	}
	trees, bufs := buildOracle(t, tw.b.Design)
	requireTreesEqual(t, "post-invalidate", eng, tw.a.Design, tw.b.Design, bufs)
	for _, tr := range trees {
		tr.Remove()
	}
}

// TestPerDomainMetricInvalidation pins the per-domain keying of the
// metrics cache: an edit that touches sinks of one clock domain must not
// cost the other domains their cached values — only the touched domain
// (plus any domain whose buffers the shared legalization pass displaced)
// may be recomputed on the next Metrics call, and the cached result must
// still equal the batch Measure bit-for-bit.
func TestPerDomainMetricInvalidation(t *testing.T) {
	b := genProfile(t, "D1")
	d := b.Design
	eng := cts.NewEngine(d, cts.DefaultOptions())
	if err := eng.Attach(); err != nil {
		t.Fatalf("attach: %v", err)
	}
	// The first Metrics refreshes every domain once: its recompute count is
	// the domain total.
	if got, want := eng.Metrics(), cts.Measure(d); got != want {
		t.Fatalf("baseline metrics %+v != Measure %+v", got, want)
	}
	domains := eng.Stats().MetricsDomainsRecomputed
	if domains < 3 {
		t.Fatalf("profile too small for the per-domain claim: %d domains", domains)
	}

	// A clean update must not invalidate anything.
	if err := eng.Update(); err != nil {
		t.Fatalf("clean update: %v", err)
	}
	if got, want := eng.Metrics(), cts.Measure(d); got != want {
		t.Fatalf("post-clean metrics %+v != Measure %+v", got, want)
	}
	if n := eng.Stats().MetricsDomainsRecomputed; n != domains {
		t.Fatalf("clean update recomputed %d domains", n-domains)
	}

	// Move one clocked register: only its domain (and at most a legalizer
	// neighbour) may be recomputed; the untouched domains must keep their
	// cached values — which the bit-exact equality with Measure proves are
	// still right.
	for round := 0; round < 3; round++ {
		var r *netlist.Inst
		for _, c := range d.Registers() {
			if !c.Fixed && d.ClockPin(c) != nil && d.ClockPin(c).Net != netlist.NoID {
				r = c
				break
			}
		}
		if r == nil {
			t.Fatal("no movable clocked register")
		}
		before := eng.Stats().MetricsDomainsRecomputed
		d.MoveInst(r, geom.Point{X: r.Pos.X + 700, Y: r.Pos.Y + 700})
		if err := eng.Update(); err != nil {
			t.Fatalf("round %d: update: %v", round, err)
		}
		if got, want := eng.Metrics(), cts.Measure(d); got != want {
			t.Fatalf("round %d: metrics %+v != Measure %+v", round, got, want)
		}
		recomputed := eng.Stats().MetricsDomainsRecomputed - before
		if recomputed == 0 {
			t.Fatalf("round %d: touched domain kept a stale cache", round)
		}
		if recomputed >= domains {
			t.Fatalf("round %d: single-domain edit recomputed %d of %d domains — invalidation is not per-domain",
				round, recomputed, domains)
		}
	}
}
