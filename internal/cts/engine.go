package cts

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/place"
)

// UpdateKind labels what an Engine.Update call did.
type UpdateKind string

const (
	// UpdateAttach: trees were built from scratch (first Attach, or the
	// re-attach inside a rebuild fallback).
	UpdateAttach UpdateKind = "attach"
	// UpdateClean: nothing changed since the last update; no work done.
	UpdateClean UpdateKind = "clean"
	// UpdateDelta: the retained trees were repaired in place.
	UpdateDelta UpdateKind = "delta"
	// UpdateRebuild: the delta path was abandoned and the trees were torn
	// down and rebuilt (see Stats.LastFallbackReason).
	UpdateRebuild UpdateKind = "rebuild"
)

// Stats counts Engine activity. Last* fields describe the most recent
// Update; the rest accumulate over the Engine's lifetime.
type Stats struct {
	// Attaches counts from-scratch tree constructions (initial Attach and
	// every rebuild fallback).
	Attaches int
	// Updates counts Update calls.
	Updates int
	// Cleans, Deltas, Rebuilds partition Updates by outcome.
	Cleans   int
	Deltas   int
	Rebuilds int
	// LastKind is the outcome of the most recent Attach/Update.
	LastKind UpdateKind
	// LastFallbackReason says why the most recent Update abandoned the
	// delta path ("" when it did not).
	LastFallbackReason string

	// ReclusteredLeaves / RepairedAncestors count clusters whose membership
	// was rewired (level 0 / higher levels). ReusedClusters counts clusters
	// kept wholly intact. BuffersAdded/Removed count delta-path buffer
	// churn (attach-built buffers are not counted).
	// HeldCentroids counts clusters whose buffer was deliberately kept at
	// its previous position under Options.RecenterThresholdDBU hysteresis.
	ReclusteredLeaves int
	RepairedAncestors int
	ReusedClusters    int
	HeldCentroids     int
	BuffersAdded      int
	BuffersRemoved    int

	LastReclusteredLeaves int
	LastRepairedAncestors int
	LastReusedClusters    int
	LastHeldCentroids     int
	LastBuffersAdded      int
	LastBuffersRemoved    int

	// LegalizerRebuilds counts from-scratch occupancy builds of the
	// retained legalizer (first attach, plus every time the flow-class
	// touched record overflowed between updates); cheap Syncs cover the
	// rest.
	LegalizerRebuilds int

	// Per-phase wall time, cumulative and for the most recent
	// Attach/Update: clustering-plan computation, tree repair/realization
	// (rewiring, buffer churn, centroid moves), and buffer legalization.
	// Wall times are excluded from determinism comparisons.
	PlanNS, RepairNS, LegalizeNS             int64
	LastPlanNS, LastRepairNS, LastLegalizeNS int64

	// MetricsCalls counts Engine.Metrics calls; MetricsFallbacks counts the
	// ones that fell back to a batch Measure walk (engine detached, or
	// design edited since the last Update); MetricsDomainsRecomputed counts
	// per-tree cache refreshes.
	MetricsCalls             int
	MetricsFallbacks         int
	MetricsDomainsRecomputed int
}

// Engine is the retained clock-tree engine: Attach builds a tree per clock
// root exactly as Build would, Update repairs the live trees to match what
// a fresh Build of the current design would produce — byte-identical
// topology, member order and buffer positions — editing only the clusters
// whose membership changed.
//
// Every netlist edit the Engine makes is tagged netlist.EditClassCTS, so
// engine-internal buffer churn never evicts the flow-class touched record
// that the STA and compat-graph engines depend on.
//
// The equality contract with Build rests on three invariants shared with
// plan.go: sinks are clustered in canonical (pin-ID-sorted) order, each
// realized net's sink list is kept in exact plan member order (so per-net
// floating-point capacitance sums agree), and after every update all
// buffers are moved to their plan centroids and re-legalized in canonical
// order (domains by root net ID, levels bottom-up, clusters left to
// right) — the same order a fresh build legalizes in.
type Engine struct {
	d       *netlist.Design
	opts    Options
	workers int

	attached bool
	// serial numbers delta-created buffers/nets; never reused, so names
	// stay unique across the engine's lifetime.
	serial  int
	domains []*domain
	rootOf  map[netlist.NetID]*domain
	ownNet  map[netlist.NetID]*domain
	ownBuf  map[netlist.InstID]bool
	cursor  uint64
	// leg retains the data-cell occupancy the buffers are legalized
	// against; legCursor is the epoch of its last sync with the design's
	// flow-class edit record.
	leg       *place.Legalizer
	legCursor uint64
	// canonical reports that the realized buffers/nets still sit on the
	// freshly issued IDs an Attach gave them — no delta repair has reused
	// or churned them since. See Canonicalize.
	canonical bool
	// foreignBufs/foreignSinks snapshot, at Attach time, the clock
	// buffers and register clock sinks that live outside every retained
	// domain (pre-existing buffers, registers clocked off nets the engine
	// does not manage). They are constants of the attached period: the
	// engine never touches them, and any edit that could change them bumps
	// the epoch and sends Metrics to its batch fallback until the next
	// Update (which re-attaches when the root set changed).
	foreignBufs  int
	foreignSinks int
	stats        Stats
}

// domain is one clock root's retained tree. levels is nil while the root
// has no sinks.
type domain struct {
	root   *netlist.Net
	levels [][]*node
	// Cached per-tree metrics (metrics.go): the root's and tree nets'
	// contributions plus the domain's register-sink count. Invalidation is
	// keyed per domain: an update clears mValid only when the domain
	// contained a touched sink (dirtySinkDomains), when its repair actually
	// mutated the tree (membership rewires, buffer churn, centroid moves —
	// the safety net for removed sinks the rings can no longer resolve), or
	// when the shared legalization pass displaced one of its buffers.
	// Untouched domains keep their cached values across updates. mValid is
	// set again by the next Metrics refresh.
	mValid bool
	mNets  []netMetric
	mSinks int
}

// NewEngine creates a detached engine for the design. Call Attach (or the
// first Update) to build the trees.
func NewEngine(d *netlist.Design, opts Options) *Engine {
	return &Engine{
		d: d, opts: opts, workers: 1,
		rootOf: map[netlist.NetID]*domain{},
		ownNet: map[netlist.NetID]*domain{},
		ownBuf: map[netlist.InstID]bool{},
	}
}

// SetWorkers bounds the parallelism of the clustering plan. Results are
// identical for any worker count.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Attached reports whether the engine currently holds live trees.
func (e *Engine) Attached() bool { return e.attached }

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Summary reports the unified retained-engine counters (engine.Retained).
func (e *Engine) Summary() engine.Summary {
	return engine.Summary{
		Updates:  e.stats.Updates,
		Deltas:   e.stats.Deltas,
		Rebuilds: e.stats.Rebuilds,
		LastKind: string(e.stats.LastKind),
	}
}

var _ engine.Retained = (*Engine)(nil)

// Buffers returns all live tree buffers in canonical order.
func (e *Engine) Buffers() []*netlist.Inst {
	var bufs []*netlist.Inst
	for _, dom := range e.domains {
		for _, lvl := range dom.levels {
			for _, nd := range lvl {
				bufs = append(bufs, nd.buf)
			}
		}
	}
	return bufs
}

// Attach builds a tree for every clock net that currently has sinks,
// exactly as per-root Build calls plus one global legalization pass would.
// Attaching an already-attached engine is a no-op.
func (e *Engine) Attach() error {
	if e.attached {
		return nil
	}
	if e.opts.MaxFanout <= 1 || e.opts.Buffer == nil {
		return fmt.Errorf("cts: invalid options")
	}
	var roots []*netlist.Net
	e.d.Nets(func(n *netlist.Net) {
		if n.IsClock && len(n.Sinks) > 0 && e.ownNet[n.ID] == nil {
			roots = append(roots, n)
		}
	})
	var err error
	e.d.WithEditClass(netlist.EditClassCTS, func() {
		for _, root := range roots {
			var dom *domain
			if dom, err = e.attachDomain(root); err != nil {
				return
			}
			e.domains = append(e.domains, dom)
			e.rootOf[root.ID] = dom
		}
		e.relegalize()
	})
	if err != nil {
		e.teardown()
		return err
	}
	e.attached = true
	e.canonical = true
	e.snapshotForeign()
	e.cursor = e.d.Epoch()
	e.stats.Attaches++
	e.stats.LastKind = UpdateAttach
	return nil
}

// snapshotForeign counts the clock buffers and register clock sinks outside
// every retained domain. Runs once per Attach (which already walks the
// design); the cached Metrics path adds these constants to the per-domain
// sums.
func (e *Engine) snapshotForeign() {
	e.foreignBufs, e.foreignSinks = 0, 0
	e.d.Insts(func(in *netlist.Inst) {
		switch in.Kind {
		case netlist.KindClockBuf:
			if !e.ownBuf[in.ID] {
				e.foreignBufs++
			}
		case netlist.KindReg:
			cp := e.d.ClockPin(in)
			if cp == nil || cp.Net == netlist.NoID {
				return
			}
			if e.ownNet[cp.Net] == nil {
				if _, isRoot := e.rootOf[cp.Net]; !isRoot {
					e.foreignSinks++
				}
			}
		}
	})
}

func (e *Engine) attachDomain(root *netlist.Net) (*domain, error) {
	dom := &domain{root: root}
	sinks := collectSinks(e.d, root)
	if len(sinks) == 0 {
		return dom, nil
	}
	t0 := time.Now()
	p, err := planTree(sinks, e.opts, e.workers)
	e.notePlan(t0)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	defer e.noteRepair(t0)
	for _, s := range sinks {
		e.d.Disconnect(s.pin)
	}
	nodes, err := realizeFresh(e.d, root, p, e.opts, buildNamer(root))
	if err != nil {
		return nil, err
	}
	dom.levels = nodes
	for _, lvl := range nodes {
		for _, nd := range lvl {
			e.ownBuf[nd.buf.ID] = true
			e.ownNet[nd.net.ID] = dom
		}
	}
	top := nodes[len(nodes)-1][0]
	e.d.Connect(inPin(e.d, top.buf), root)
	return dom, nil
}

// Update brings the retained trees in sync with the design. It returns
// having left the design exactly as tearing every tree down and rebuilding
// it from scratch would have, but only touches what changed.
func (e *Engine) Update() error {
	if !e.attached {
		err := e.Attach()
		e.stats.Updates++
		return err
	}
	e.stats.Updates++
	if e.d.Epoch() == e.cursor {
		e.resetLast()
		e.stats.Cleans++
		e.stats.LastKind = UpdateClean
		return nil
	}
	e.resetLast()
	if e.rootSetChanged() {
		return e.rebuild("clock-roots-changed")
	}
	dirty, dirtyOK := e.dirtySinkDomains()
	var err error
	e.d.WithEditClass(netlist.EditClassCTS, func() {
		for _, dom := range e.domains {
			if err = e.updateDomain(dom, !dirtyOK || dirty[dom]); err != nil {
				return
			}
		}
		if err == nil {
			e.relegalize()
		}
	})
	if err != nil {
		return e.rebuild(fmt.Sprintf("update-error: %v", err))
	}
	e.cursor = e.d.Epoch()
	e.canonical = false
	e.stats.Deltas++
	e.stats.LastKind = UpdateDelta
	return nil
}

// Canonicalize brings the trees in sync like Update, but leaves the
// realized buffers and nets on freshly issued IDs in canonical creation
// order — the exact state a batch per-root Build of the current design
// would produce, IDs included. Delta repairs leave reused nets holding
// different clusters than their creation order suggests; consumers that
// fold floats over nets in ID order (clock capacitance totals, routing
// demand) would see a permuted — hence ulp-different — sum. Measurement
// points that must be byte-comparable against a batch build pay for a
// rebuild here; in-loop updates use the cheap Update.
//
// When the engine is freshly attached/rebuilt and nothing changed since,
// the state is already canonical and this is a no-op.
func (e *Engine) Canonicalize() error {
	if !e.attached {
		err := e.Attach()
		e.stats.Updates++
		return err
	}
	e.stats.Updates++
	e.resetLast()
	if e.canonical && e.d.Epoch() == e.cursor {
		e.stats.Cleans++
		e.stats.LastKind = UpdateClean
		return nil
	}
	return e.rebuild("canonicalize")
}

// resetLast clears the per-update counters before a new outcome is
// recorded.
func (e *Engine) resetLast() {
	e.stats.LastReclusteredLeaves = 0
	e.stats.LastRepairedAncestors = 0
	e.stats.LastReusedClusters = 0
	e.stats.LastHeldCentroids = 0
	e.stats.LastBuffersAdded = 0
	e.stats.LastBuffersRemoved = 0
	e.stats.LastFallbackReason = ""
	e.stats.LastPlanNS = 0
	e.stats.LastRepairNS = 0
	e.stats.LastLegalizeNS = 0
}

// notePlan/noteRepair/noteLegalize accumulate per-phase wall time into the
// last-update and lifetime counters.
func (e *Engine) notePlan(t0 time.Time) {
	ns := time.Since(t0).Nanoseconds()
	e.stats.LastPlanNS += ns
	e.stats.PlanNS += ns
}

func (e *Engine) noteRepair(t0 time.Time) {
	ns := time.Since(t0).Nanoseconds()
	e.stats.LastRepairNS += ns
	e.stats.RepairNS += ns
}

func (e *Engine) noteLegalize(t0 time.Time) {
	ns := time.Since(t0).Nanoseconds()
	e.stats.LastLegalizeNS += ns
	e.stats.LegalizeNS += ns
}

// Invalidate tears the trees down, reattaching every sink to its domain
// root (the pre-CTS state), and detaches the engine. The next Update
// rebuilds from scratch.
func (e *Engine) Invalidate() {
	if !e.attached {
		return
	}
	e.teardown()
	e.stats.LastFallbackReason = "invalidated"
}

// ReleaseClocks moves the clock pins of the given registers from their
// current tree leaf nets up to the domain root. Callers that require a set
// of registers to agree on their literal clock net (register merging
// checks control-net equality) call this first; the next Update re-parents
// the survivors under leaf buffers again.
func (e *Engine) ReleaseClocks(regs []*netlist.Inst) {
	if !e.attached {
		return
	}
	e.d.WithEditClass(netlist.EditClassCTS, func() {
		for _, in := range regs {
			cp := e.d.ClockPin(in)
			if cp == nil || cp.Net == netlist.NoID {
				continue
			}
			dom := e.ownNet[cp.Net]
			if dom == nil {
				continue
			}
			e.d.Connect(cp, dom.root)
		}
	})
}

// dirtySinkDomains maps the instances touched since the last sync to the
// retained domains whose cached metrics they can have dirtied: a touched
// live instance dirties every domain owning (or rooting) a net its pins
// sit on — a moved or resized register changes its leaf net's HPWL and cap
// without any tree mutation, so touched-sink detection cannot be replaced
// by mutation tracking. Removed instances are unresolvable here (their
// nets are gone from the edit record); they are covered by updateDomain's
// mutation tracking, because losing a sink always rewires its cluster.
// ok is false when a ring overflowed and every domain must be presumed
// dirty.
func (e *Engine) dirtySinkDomains() (dirty map[*domain]bool, ok bool) {
	flow, flowOK := e.d.TouchedSinceClass(e.cursor, netlist.EditClassFlow)
	ctsT, ctsOK := e.d.TouchedSinceClass(e.cursor, netlist.EditClassCTS)
	if !flowOK || !ctsOK {
		return nil, false
	}
	dirty = map[*domain]bool{}
	var buf []netlist.NetID
	mark := func(ids []netlist.InstID) {
		for _, id := range ids {
			if e.ownBuf[id] {
				continue // engine buffers are handled by mutation tracking
			}
			buf = e.d.InstNets(id, false, buf[:0])
			for _, nid := range buf {
				if dom := e.ownNet[nid]; dom != nil {
					dirty[dom] = true
				} else if dom := e.rootOf[nid]; dom != nil {
					dirty[dom] = true
				}
			}
		}
	}
	mark(flow)
	mark(ctsT)
	return dirty, true
}

// rootSetChanged reports whether a clock net outside the retained domains
// has acquired real sinks — a new domain the delta path cannot grow.
func (e *Engine) rootSetChanged() bool {
	changed := false
	e.d.Nets(func(n *netlist.Net) {
		if changed || !n.IsClock || e.ownNet[n.ID] != nil {
			return
		}
		if _, isRoot := e.rootOf[n.ID]; isRoot {
			return
		}
		for _, pid := range n.Sinks {
			if !e.ownBuf[e.d.Pin(pid).Inst] {
				changed = true
				return
			}
		}
	})
	return changed
}

func (e *Engine) rebuild(reason string) error {
	e.teardown()
	err := e.Attach()
	e.stats.Rebuilds++
	e.stats.LastKind = UpdateRebuild
	e.stats.LastFallbackReason = reason
	return err
}

// teardown dismantles every retained tree (restoring sinks to their domain
// roots) and resets the engine to the detached state.
func (e *Engine) teardown() {
	e.d.WithEditClass(netlist.EditClassCTS, func() {
		for _, dom := range e.domains {
			for _, lvl := range dom.levels {
				for _, nd := range lvl {
					sinks := append([]netlist.PinID(nil), nd.net.Sinks...)
					for _, pid := range sinks {
						if p := e.d.Pin(pid); !e.ownBuf[p.Inst] {
							e.d.Connect(p, dom.root)
						}
					}
				}
			}
			var nodes []*node
			for _, lvl := range dom.levels {
				nodes = append(nodes, lvl...)
			}
			e.removeNodes(nodes)
		}
	})
	e.domains = nil
	e.rootOf = map[netlist.NetID]*domain{}
	e.ownNet = map[netlist.NetID]*domain{}
	e.ownBuf = map[netlist.InstID]bool{}
	e.attached = false
}

// removeNodes deletes the nodes' buffers and nets. Any sinks still on the
// nets (in-pins of other removed buffers, an orphaned top in-pin) are
// disconnected first.
func (e *Engine) removeNodes(nodes []*node) {
	for _, nd := range nodes {
		e.d.RemoveInst(nd.buf)
		delete(e.ownBuf, nd.buf.ID)
	}
	for _, nd := range nodes {
		for len(nd.net.Sinks) > 0 {
			e.d.Disconnect(e.d.Pin(nd.net.Sinks[len(nd.net.Sinks)-1]))
		}
		if nd.net.Driver != netlist.NoID {
			e.d.Disconnect(e.d.Pin(nd.net.Driver))
		}
		if err := e.d.RemoveNet(nd.net); err != nil {
			panic(err) // internal invariant: net drained above
		}
		delete(e.ownNet, nd.net.ID)
	}
}

// relegalize re-runs the incremental legalizer over all tree buffers in
// canonical order — the same single global pass a fresh build performs —
// against a retained occupancy. The occupancy is kept in sync from the
// flow-class edit record (the engine's own CTS-class edits never touch
// it; buffers are not obstacles), so each pass costs the edits plus the
// buffer count rather than a scan of the whole design. When the record
// has overflowed since the last pass, the occupancy is rebuilt from
// scratch; either way the content — and hence every placement — is
// identical to what place.LegalizeIncremental computes fresh.
func (e *Engine) relegalize() {
	t0 := time.Now()
	defer e.noteLegalize(t0)
	bufs := e.Buffers()
	if len(bufs) == 0 {
		return
	}
	if e.leg == nil {
		e.leg = place.NewLegalizer(e.d)
		e.stats.LegalizerRebuilds++
	} else if touched, ok := e.d.TouchedSinceClass(e.legCursor, netlist.EditClassFlow); ok {
		e.leg.Sync(touched)
	} else {
		e.leg.Rebuild()
		e.stats.LegalizerRebuilds++
	}
	e.legCursor = e.d.Epoch()
	e.leg.Legalize(bufs)
	// Legalization is one shared pass over all domains' buffers competing
	// for the same sites: repairing one domain can displace another's
	// buffer. A node whose plan did not change went centroid→legalize back
	// to its previous site, so comparing against the last legalized
	// position invalidates exactly the domains whose buffers really moved.
	for _, dom := range e.domains {
		for _, lvl := range dom.levels {
			for _, nd := range lvl {
				if nd.buf.Pos != nd.legalPos {
					dom.mValid = false
					nd.legalPos = nd.buf.Pos
				}
			}
		}
	}
}

// sinksKey is a canonical (order-independent) fingerprint of a pin-ID set,
// used to match plan clusters against retained nodes. Empty sets get the
// empty key and are never matched.
func sinksKey(ids []netlist.PinID) string {
	if len(ids) == 0 {
		return ""
	}
	s := append([]netlist.PinID(nil), ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	b := make([]byte, 0, len(s)*6)
	for _, id := range s {
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, ',')
	}
	return string(b)
}

// updateDomain repairs one domain's tree to equal a fresh Build of its
// current sink set. sinkDirty reports that the edit record placed a
// touched instance on one of the domain's nets; together with the repair's
// own mutation tracking it decides whether the domain's metrics cache
// survives the update (legalization displacement is checked separately in
// relegalize).
func (e *Engine) updateDomain(dom *domain, sinkDirty bool) error {
	d := e.d
	mutated := false
	defer func() {
		if sinkDirty || mutated {
			dom.mValid = false
		}
	}()
	// 1. Collect the current real sinks: non-engine pins on the root or on
	// any tree net (new sinks land on the root via ReleaseClocks/merging,
	// or on a leaf net via register splitting), in canonical order.
	var ids []netlist.PinID
	collect := func(n *netlist.Net) {
		for _, pid := range n.Sinks {
			if !e.ownBuf[d.Pin(pid).Inst] {
				ids = append(ids, pid)
			}
		}
	}
	collect(dom.root)
	for _, lvl := range dom.levels {
		for _, nd := range lvl {
			collect(nd.net)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var retained []*node
	for _, lvl := range dom.levels {
		retained = append(retained, lvl...)
	}
	if len(ids) == 0 {
		// Domain went sink-less: a fresh build would build nothing.
		mutated = len(retained) > 0
		e.removeNodes(retained)
		e.stats.LastBuffersRemoved += len(retained)
		e.stats.BuffersRemoved += len(retained)
		dom.levels = nil
		return nil
	}
	sinks := make([]planSink, len(ids))
	for i, pid := range ids {
		p := d.Pin(pid)
		sinks[i] = planSink{pin: p, child: -1, pos: d.PinPos(p), cap: p.Cap, ord: int64(pid)}
	}
	t0 := time.Now()
	p, err := planTree(sinks, e.opts, e.workers)
	e.notePlan(t0)
	if err != nil {
		return err
	}
	t0 = time.Now()
	defer e.noteRepair(t0)

	// 2. Match plan clusters to retained nodes by current net membership.
	// Levels are processed bottom-up so an internal cluster's member pin
	// IDs (its children's in-pins) are concrete by the time it is keyed.
	byKey := map[string]*node{}
	for _, nd := range retained {
		if k := sinksKey(nd.net.Sinks); k != "" {
			byKey[k] = nd
		}
	}
	used := map[*node]bool{}
	poolIdx := 0
	assigned := make([][]*node, len(p.levels))
	desired := func(l, ci int) []netlist.PinID {
		cl := &p.levels[l][ci]
		out := make([]netlist.PinID, len(cl.members))
		for i, m := range cl.members {
			if m.pin != nil {
				out[i] = m.pin.ID
			} else {
				out[i] = inPin(d, assigned[l-1][m.child].buf).ID
			}
		}
		return out
	}
	for l := range p.levels {
		assigned[l] = make([]*node, len(p.levels[l]))
		for ci := range p.levels[l] {
			if nd := byKey[sinksKey(desired(l, ci))]; nd != nil && !used[nd] {
				assigned[l][ci] = nd
				used[nd] = true
			}
		}
		for ci := range p.levels[l] {
			if assigned[l][ci] != nil {
				continue
			}
			// Reuse the next unclaimed retained node, else create one.
			var nd *node
			for poolIdx < len(retained) {
				cand := retained[poolIdx]
				poolIdx++
				if !used[cand] {
					nd = cand
					break
				}
			}
			if nd == nil {
				name := fmt.Sprintf("%s_ctsbuf_r%d", dom.root.Name, e.serial)
				buf, err := d.AddClockBuf(name, e.opts.Buffer, p.levels[l][ci].centroid)
				if err != nil {
					return err
				}
				net := d.AddNet(fmt.Sprintf("%s_ctsnet_r%d", dom.root.Name, e.serial), true)
				e.serial++
				d.Connect(d.OutPin(buf), net)
				// Seed the retained centroid with the creation placement so
				// hysteresis measures drift from where the buffer actually
				// went down (behavior-neutral when hysteresis is off: the
				// rewire step below re-derives the same value).
				nd = &node{buf: buf, net: net, centroid: p.levels[l][ci].centroid}
				e.ownBuf[buf.ID] = true
				e.ownNet[net.ID] = dom
				e.stats.LastBuffersAdded++
				e.stats.BuffersAdded++
				mutated = true
			}
			assigned[l][ci] = nd
			used[nd] = true
		}
	}

	// 3. Rewire bottom-up: every buffer back to its plan centroid, every
	// net's sink list to exact plan member order. Clusters already in the
	// desired state are left untouched. Under RecenterThresholdDBU
	// hysteresis, a buffer whose fresh plan centroid has drifted no further
	// than the threshold from the centroid it was last planted at stays
	// put — even across a membership rewire, because moving the buffer
	// would change its parent net's geometry and ripple clock arrivals
	// through every sibling subtree. The retained centroid is kept while
	// holding, so drift accumulates across updates and a slow creep still
	// re-centers once the total crosses the threshold.
	for l := range p.levels {
		for ci := range p.levels[l] {
			cl := &p.levels[l][ci]
			nd := assigned[l][ci]
			want := desired(l, ci)
			same := pinIDsEqual(nd.net.Sinks, want)
			held := e.opts.RecenterThresholdDBU > 0 &&
				nd.centroid.ManhattanDist(cl.centroid) <= e.opts.RecenterThresholdDBU
			if !held {
				if nd.buf.Pos != cl.centroid {
					d.MoveInst(nd.buf, cl.centroid)
					// Moving back to an unchanged centroid is the normal
					// centroid→legalize round trip, not a mutation; relegalize
					// detects real displacement against legalPos.
					if nd.centroid != cl.centroid {
						mutated = true
					}
				}
				nd.centroid = cl.centroid
			}
			switch {
			case !same:
				mutated = true
				for len(nd.net.Sinks) > 0 {
					d.Disconnect(d.Pin(nd.net.Sinks[len(nd.net.Sinks)-1]))
				}
				for _, pid := range want {
					d.Connect(d.Pin(pid), nd.net)
				}
				if l == 0 {
					e.stats.LastReclusteredLeaves++
					e.stats.ReclusteredLeaves++
				} else {
					e.stats.LastRepairedAncestors++
					e.stats.RepairedAncestors++
				}
			case held:
				e.stats.LastHeldCentroids++
				e.stats.HeldCentroids++
			default:
				e.stats.LastReusedClusters++
				e.stats.ReusedClusters++
			}
			nd.memberPins = want
		}
	}

	// 4. Remove retained nodes the plan no longer needs. Their real sinks
	// were all claimed above; only in-pins of fellow doomed buffers (and
	// possibly the new top's in-pin) remain on their nets.
	var doomed []*node
	for _, nd := range retained {
		if !used[nd] {
			doomed = append(doomed, nd)
		}
	}
	if len(doomed) > 0 {
		e.removeNodes(doomed)
		e.stats.LastBuffersRemoved += len(doomed)
		e.stats.BuffersRemoved += len(doomed)
		mutated = true
	}

	// 5. The root net's only sink is the top buffer's input.
	top := assigned[len(assigned)-1][0]
	if tp := inPin(d, top.buf); tp.Net != dom.root.ID {
		d.Connect(tp, dom.root)
		mutated = true
	}
	dom.levels = assigned
	return nil
}

func pinIDsEqual(a, b []netlist.PinID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
