package cts

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// The clustering *plan* separates the pure geometry of tree construction
// from the netlist edits that realize it. planTree recomputes, in memory,
// exactly the levelized cluster structure Build's recursion produces for a
// sink set; Build realizes a plan with fresh buffers and nets, while the
// retained Engine diffs a plan against its live tree and only edits the
// clusters that changed. Both paths therefore agree by construction on
// topology, centroids, member order and — after the shared legalization
// pass — buffer positions.

// planSink is one load in clustering space: a real sink pin at level 0, or
// a lower-level cluster's buffer (child >= 0) above.
type planSink struct {
	pin   *netlist.Pin // real sink (nil for a buffer-level sink)
	child int          // index into the previous plan level, -1 for a real sink
	pos   geom.Point
	cap   float64
	// ord is the deterministic tie-break for exactly co-located sinks:
	// the pin ID for real sinks, the child index above. Both Build and the
	// Engine derive it the same way, so ties never depend on input order.
	ord int64
}

// planCluster is one buffer-to-be: its member loads in connect order and
// the centroid the buffer is dropped at before legalization.
type planCluster struct {
	members  []planSink
	centroid geom.Point
}

// treePlan is the levelized clustering: levels[0] drives real sinks, each
// higher level drives the previous level's buffers, and the last level has
// exactly one cluster — the root buffer.
type treePlan struct {
	levels [][]planCluster
}

// clusters returns the total cluster (= buffer) count.
func (p *treePlan) clusters() int {
	n := 0
	for _, lvl := range p.levels {
		n += len(lvl)
	}
	return n
}

// planTree levelizes the sinks bottom-up: cluster, then re-cluster the
// cluster centroids, until a single root cluster remains. workers bounds
// the parallel fan-out of the recursive bisection (1 = sequential; results
// are identical for any value).
func planTree(sinks []planSink, opts Options, workers int) (*treePlan, error) {
	p := &treePlan{}
	cur := sinks
	for level := 0; ; level++ {
		if level > 64 {
			return nil, fmt.Errorf("cts: runaway recursion")
		}
		cls := clusterSinks(cur, opts, parDepth(workers))
		row := make([]planCluster, len(cls))
		for ci, cl := range cls {
			row[ci] = planCluster{members: cl, centroid: centroidOf(cl)}
		}
		p.levels = append(p.levels, row)
		if len(row) == 1 {
			return p, nil
		}
		next := make([]planSink, len(row))
		for ci := range row {
			next[ci] = planSink{
				child: ci, pos: row[ci].centroid,
				cap: opts.Buffer.InCap, ord: int64(ci),
			}
		}
		cur = next
	}
}

// parDepth converts a worker count to a recursion depth at which the
// bisection may fork: 2^depth concurrent branches.
func parDepth(workers int) int {
	d := 0
	for w := 1; w < workers && d < 8; w *= 2 {
		d++
	}
	return d
}

// parallelClusterMin is the smallest slice worth forking a goroutine for.
const parallelClusterMin = 1024

// clusterSinks recursively bisects the sinks along the longer bounding-box
// axis until each cluster satisfies the fanout and capacitance limits.
// This is the geometry of Build's original clustering; par levels of the
// recursion may run both halves concurrently (the halves are disjoint
// slices of a private copy, and the result is assembled positionally, so
// the output is identical to the sequential run).
func clusterSinks(sinks []planSink, opts Options, par int) [][]planSink {
	totalCap := 0.0
	for _, s := range sinks {
		totalCap += s.cap
	}
	if len(sinks) <= opts.MaxFanout && totalCap <= opts.MaxCap {
		return [][]planSink{sinks}
	}
	pts := make([]geom.Point, len(sinks))
	for i, s := range sinks {
		pts[i] = s.pos
	}
	bb := geom.BoundingBox(pts)
	horizontal := bb.W() >= bb.H()
	sorted := append([]planSink(nil), sinks...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := &sorted[i], &sorted[j]
		if horizontal {
			if a.pos.X != b.pos.X {
				return a.pos.X < b.pos.X
			}
			if a.pos.Y != b.pos.Y {
				return a.pos.Y < b.pos.Y
			}
		} else {
			if a.pos.Y != b.pos.Y {
				return a.pos.Y < b.pos.Y
			}
			if a.pos.X != b.pos.X {
				return a.pos.X < b.pos.X
			}
		}
		return a.ord < b.ord
	})
	mid := len(sorted) / 2
	var left, right [][]planSink
	if par > 0 && len(sorted) >= parallelClusterMin {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			left = clusterSinks(sorted[:mid], opts, par-1)
		}()
		right = clusterSinks(sorted[mid:], opts, par-1)
		wg.Wait()
	} else {
		left = clusterSinks(sorted[:mid], opts, 0)
		right = clusterSinks(sorted[mid:], opts, 0)
	}
	return append(left, right...)
}

func centroidOf(cl []planSink) geom.Point {
	var sx, sy int64
	for _, s := range cl {
		sx += s.pos.X
		sy += s.pos.Y
	}
	n := int64(len(cl))
	return geom.Point{X: sx / n, Y: sy / n}
}
