// Package cts implements a simple clock-tree synthesizer: recursive
// geometric bisection clustering of clock sinks with fanout and capacitance
// limits, buffer insertion at cluster centroids, and clock-tree metrics
// (buffer count, total clock capacitance, clock wirelength).
//
// The paper evaluates its MBR composition by the clock-tree capacitance and
// buffer count after CTS (Table 1, columns "Clk Bufs" and "Clk Cap"); any
// capacity-limited clustering CTS translates sink-count/sink-cap reduction
// into those metrics the same way, which is all the reproduction needs.
package cts

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Options configures tree construction.
type Options struct {
	// MaxFanout is the maximum sinks a buffer may drive.
	MaxFanout int
	// MaxCap is the maximum load capacitance per buffer (fF), including
	// estimated wire capacitance.
	MaxCap float64
	// Buffer is the clock-buffer cell model.
	Buffer *netlist.CombSpec
}

// DefaultOptions returns typical leaf-level CTS limits.
func DefaultOptions() Options {
	return Options{
		MaxFanout: 24,
		MaxCap:    60,
		Buffer: &netlist.CombSpec{
			Name: "CLKBUF_X4", NumInputs: 1, DriveRes: 1.5, Intrinsic: 18,
			InCap: 1.6, Width: 800, Height: 1200,
		},
	}
}

// Tree is a built clock tree, remembering what it created so it can be
// removed before a rebuild.
type Tree struct {
	d *netlist.Design
	// Root is the top buffer of the tree (nil for a sink-less clock).
	Root *netlist.Inst
	// Buffers are all inserted buffer instances, root included.
	Buffers []*netlist.Inst
	// nets created by the build, excluding the original root net.
	nets []*netlist.Net
	// Levels is the depth of the tree.
	Levels int
	// sink pins that were moved off the root net, for Remove.
	movedSinks []*netlist.Pin
	rootNet    *netlist.Net
}

// sink is one clock load to be driven.
type sink struct {
	pin *netlist.Pin
	pos geom.Point
	cap float64
}

// Build constructs a buffered tree for the given root clock net: every
// current sink of the net (register clock pins, clock-gate inputs) is
// re-parented under inserted buffers; the root buffer becomes the only sink
// of the original net.
//
// Sinks that are themselves clock gates keep their subtree: only direct
// sinks of rootNet are clustered (per-gated-domain trees can be built by
// calling Build on the gated nets).
func Build(d *netlist.Design, rootNet *netlist.Net, opts Options) (*Tree, error) {
	if opts.MaxFanout <= 1 || opts.Buffer == nil {
		return nil, fmt.Errorf("cts: invalid options")
	}
	if !rootNet.IsClock {
		return nil, fmt.Errorf("cts: net %q is not a clock net", rootNet.Name)
	}
	var sinks []sink
	for _, pid := range append([]netlist.PinID(nil), rootNet.Sinks...) {
		p := d.Pin(pid)
		sinks = append(sinks, sink{pin: p, pos: d.PinPos(p), cap: p.Cap})
	}
	t := &Tree{d: d, rootNet: rootNet}
	if len(sinks) == 0 {
		return t, nil
	}
	for _, s := range sinks {
		d.Disconnect(s.pin)
		t.movedSinks = append(t.movedSinks, s.pin)
	}
	top, levels, err := t.buildLevel(sinks, opts, 0)
	if err != nil {
		return nil, err
	}
	t.Levels = levels
	t.Root = top
	// Connect the root buffer's input to the original clock net.
	d.Connect(inPin(d, top), rootNet)
	return t, nil
}

// buildLevel clusters sinks, inserts one buffer per cluster, and recurses
// on the buffer inputs until a single buffer remains. Returns the top
// buffer.
func (t *Tree) buildLevel(sinks []sink, opts Options, level int) (*netlist.Inst, int, error) {
	if level > 64 {
		return nil, 0, fmt.Errorf("cts: runaway recursion")
	}
	d := t.d
	clusters := cluster(sinks, opts)
	next := make([]sink, 0, len(clusters))
	for ci, cl := range clusters {
		centroid := centroidOf(cl)
		name := fmt.Sprintf("%s_ctsbuf_L%d_%d_%d", t.rootNet.Name, level, ci, len(t.Buffers))
		buf, err := d.AddClockBuf(name, opts.Buffer, centroid)
		if err != nil {
			return nil, 0, err
		}
		t.Buffers = append(t.Buffers, buf)
		net := d.AddNet(fmt.Sprintf("%s_cts_L%d_%d", t.rootNet.Name, level, ci), true)
		t.nets = append(t.nets, net)
		d.Connect(d.OutPin(buf), net)
		for _, s := range cl {
			d.Connect(s.pin, net)
		}
		next = append(next, sink{pin: inPin(d, buf), pos: centroid, cap: opts.Buffer.InCap})
	}
	if len(next) == 1 {
		return d.Inst(next[0].pin.Inst), level + 1, nil
	}
	return t.buildLevel(next, opts, level+1)
}

func inPin(d *netlist.Design, in *netlist.Inst) *netlist.Pin {
	return d.FindPin(in, netlist.PinData, 0)
}

func centroidOf(cl []sink) geom.Point {
	var sx, sy int64
	for _, s := range cl {
		sx += s.pos.X
		sy += s.pos.Y
	}
	n := int64(len(cl))
	return geom.Point{X: sx / n, Y: sy / n}
}

// cluster recursively bisects the sinks along the longer bounding-box axis
// until each cluster satisfies the fanout and capacitance limits.
func cluster(sinks []sink, opts Options) [][]sink {
	totalCap := 0.0
	for _, s := range sinks {
		totalCap += s.cap
	}
	if len(sinks) <= opts.MaxFanout && totalCap <= opts.MaxCap {
		return [][]sink{sinks}
	}
	pts := make([]geom.Point, len(sinks))
	for i, s := range sinks {
		pts[i] = s.pos
	}
	bb := geom.BoundingBox(pts)
	horizontal := bb.W() >= bb.H()
	sorted := append([]sink(nil), sinks...)
	sort.Slice(sorted, func(i, j int) bool {
		if horizontal {
			if sorted[i].pos.X != sorted[j].pos.X {
				return sorted[i].pos.X < sorted[j].pos.X
			}
			return sorted[i].pos.Y < sorted[j].pos.Y
		}
		if sorted[i].pos.Y != sorted[j].pos.Y {
			return sorted[i].pos.Y < sorted[j].pos.Y
		}
		return sorted[i].pos.X < sorted[j].pos.X
	})
	mid := len(sorted) / 2
	left := cluster(sorted[:mid], opts)
	right := cluster(sorted[mid:], opts)
	return append(left, right...)
}

// Remove deletes every buffer and net the build created and reattaches the
// original sinks to the root net, restoring the pre-CTS state.
func (t *Tree) Remove() {
	d := t.d
	for _, p := range t.movedSinks {
		d.Disconnect(p)
	}
	for _, b := range t.Buffers {
		d.RemoveInst(b)
	}
	for _, n := range t.nets {
		// All pins were on removed buffers or moved sinks; nets are empty.
		for len(n.Sinks) > 0 {
			d.Disconnect(d.Pin(n.Sinks[0]))
		}
		if n.Driver != netlist.NoID {
			d.Disconnect(d.Pin(n.Driver))
		}
		if err := d.RemoveNet(n); err != nil {
			panic(err) // internal invariant
		}
	}
	for _, p := range t.movedSinks {
		if d.Inst(p.Inst) != nil { // sink's instance may have been removed meanwhile
			d.Connect(p, t.rootNet)
		}
	}
	t.Buffers = nil
	t.nets = nil
	t.Root = nil
	t.movedSinks = nil
}

// Metrics summarizes the clock network of a design.
type Metrics struct {
	// Buffers is the number of clock buffers (KindClockBuf instances).
	Buffers int
	// Sinks is the number of register clock pins.
	Sinks int
	// TotalCapFF is the total capacitance on clock nets: sink pins, buffer
	// input pins and estimated wire capacitance (fF).
	TotalCapFF float64
	// WirelengthDBU is the total HPWL of clock nets.
	WirelengthDBU int64
}

// Measure computes clock-network metrics for the design's current state.
func Measure(d *netlist.Design) Metrics {
	var m Metrics
	d.Insts(func(in *netlist.Inst) {
		switch in.Kind {
		case netlist.KindClockBuf:
			m.Buffers++
		case netlist.KindReg:
			if cp := d.ClockPin(in); cp != nil && cp.Net != netlist.NoID {
				m.Sinks++
			}
		}
	})
	d.Nets(func(n *netlist.Net) {
		if !n.IsClock {
			return
		}
		m.TotalCapFF += d.NetLoadCap(n)
		m.WirelengthDBU += d.NetHPWL(n)
	})
	return m
}
