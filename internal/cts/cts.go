// Package cts implements a simple clock-tree synthesizer: recursive
// geometric bisection clustering of clock sinks with fanout and capacitance
// limits, buffer insertion at cluster centroids, and clock-tree metrics
// (buffer count, total clock capacitance, clock wirelength).
//
// The paper evaluates its MBR composition by the clock-tree capacitance and
// buffer count after CTS (Table 1, columns "Clk Bufs" and "Clk Cap"); any
// capacity-limited clustering CTS translates sink-count/sink-cap reduction
// into those metrics the same way, which is all the reproduction needs.
//
// Two construction APIs share one clustering plan (plan.go): the batch
// Build/Tree.Remove pair tears a tree down and rebuilds it from scratch,
// and the retained Engine (engine.go) keeps trees alive across design
// edits, repairing only the clusters whose membership changed. Build is
// the Engine's fallback and its equality oracle: for the same sink set
// both produce identical trees.
package cts

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Options configures tree construction.
type Options struct {
	// MaxFanout is the maximum sinks a buffer may drive.
	MaxFanout int
	// MaxCap is the maximum load capacitance per buffer (fF), including
	// estimated wire capacitance.
	MaxCap float64
	// Buffer is the clock-buffer cell model.
	Buffer *netlist.CombSpec
	// RecenterThresholdDBU enables re-center hysteresis on the retained
	// engine's delta path: a tree buffer keeps its current position until
	// the fresh plan centroid has drifted more than this Manhattan
	// distance from the centroid the buffer was last planted at. Holding
	// buffers put confines a sink edit's timing ripple to the clusters it
	// touched instead of re-centering — and hence re-loading — every
	// ancestor net in the domain. 0 (the default) re-centers on every
	// update, which keeps the engine's trees bit-identical to a fresh
	// Build; with a nonzero threshold tree geometry becomes edit-order
	// dependent, which sequence-replay consumers (the composition server's
	// journals) are built to accept.
	RecenterThresholdDBU int64
}

// DefaultOptions returns typical leaf-level CTS limits.
func DefaultOptions() Options {
	return Options{
		MaxFanout: 24,
		MaxCap:    60,
		Buffer: &netlist.CombSpec{
			Name: "CLKBUF_X4", NumInputs: 1, DriveRes: 1.5, Intrinsic: 18,
			InCap: 1.6, Width: 800, Height: 1200,
		},
	}
}

// Tree is a built clock tree, remembering what it created so it can be
// removed before a rebuild.
type Tree struct {
	d *netlist.Design
	// Root is the top buffer of the tree (nil for a sink-less clock).
	Root *netlist.Inst
	// Buffers are all inserted buffer instances, root included.
	Buffers []*netlist.Inst
	// nets created by the build, excluding the original root net.
	nets []*netlist.Net
	// Levels is the depth of the tree.
	Levels int
	// sink pins that were moved off the root net, for Remove.
	movedSinks []*netlist.Pin
	rootNet    *netlist.Net
}

// collectSinks snapshots the net's current sinks in canonical (ascending
// pin ID) order. Pin IDs are issued in creation order and the flow only
// ever appends new sinks, so for a flow-built design this equals the net's
// own sink order; sorting makes the tree — including the per-cluster
// floating-point capacitance sums — independent of connection history,
// which is what lets the retained Engine reproduce Build's result exactly.
func collectSinks(d *netlist.Design, rootNet *netlist.Net) []planSink {
	ids := append([]netlist.PinID(nil), rootNet.Sinks...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sinks := make([]planSink, len(ids))
	for i, pid := range ids {
		p := d.Pin(pid)
		sinks[i] = planSink{
			pin: p, child: -1, pos: d.PinPos(p), cap: p.Cap, ord: int64(pid),
		}
	}
	return sinks
}

// Build constructs a buffered tree for the given root clock net: every
// current sink of the net (register clock pins, clock-gate inputs) is
// re-parented under inserted buffers; the root buffer becomes the only sink
// of the original net.
//
// Sinks that are themselves clock gates keep their subtree: only direct
// sinks of rootNet are clustered (per-gated-domain trees can be built by
// calling Build on the gated nets).
func Build(d *netlist.Design, rootNet *netlist.Net, opts Options) (*Tree, error) {
	if opts.MaxFanout <= 1 || opts.Buffer == nil {
		return nil, fmt.Errorf("cts: invalid options")
	}
	if !rootNet.IsClock {
		return nil, fmt.Errorf("cts: net %q is not a clock net", rootNet.Name)
	}
	sinks := collectSinks(d, rootNet)
	t := &Tree{d: d, rootNet: rootNet}
	if len(sinks) == 0 {
		return t, nil
	}
	p, err := planTree(sinks, opts, 1)
	if err != nil {
		return nil, err
	}
	for _, s := range sinks {
		d.Disconnect(s.pin)
		t.movedSinks = append(t.movedSinks, s.pin)
	}
	nodes, err := realizeFresh(d, rootNet, p, opts, buildNamer(rootNet))
	if err != nil {
		return nil, err
	}
	for _, lvl := range nodes {
		for _, nd := range lvl {
			t.Buffers = append(t.Buffers, nd.buf)
			t.nets = append(t.nets, nd.net)
		}
	}
	t.Levels = len(nodes)
	t.Root = nodes[len(nodes)-1][0].buf
	// Connect the root buffer's input to the original clock net.
	d.Connect(inPin(d, t.Root), rootNet)
	return t, nil
}

// node is one realized cluster: a live buffer, the net it drives, and the
// net's member pins in canonical connect order.
type node struct {
	buf *netlist.Inst
	net *netlist.Net
	// memberPins is net's sink list in the order the plan connected it —
	// the invariant the Engine maintains so per-net capacitance sums are
	// bit-identical to a fresh Build.
	memberPins []netlist.PinID
	centroid   geom.Point
	// legalPos is where the last shared legalization pass left the buffer.
	// Every update moves buffers to their plan centroids and re-legalizes;
	// a node whose plan did not change lands back on the same site, so
	// comparing against legalPos (not the centroid) tells the metrics cache
	// whether the buffer really moved.
	legalPos geom.Point
}

// namer produces the buffer and net names for freshly realized clusters.
type namer func(level, ci, serial int) (bufName, netName string)

// buildNamer reproduces Build's historical naming scheme.
func buildNamer(rootNet *netlist.Net) namer {
	return func(level, ci, serial int) (string, string) {
		return fmt.Sprintf("%s_ctsbuf_L%d_%d_%d", rootNet.Name, level, ci, serial),
			fmt.Sprintf("%s_cts_L%d_%d", rootNet.Name, level, ci)
	}
}

// realizeFresh materializes a plan with all-new buffers and nets, level by
// level, in the exact order Build's original recursion created them.
// Member pins must already be detached from the root net.
func realizeFresh(d *netlist.Design, rootNet *netlist.Net, p *treePlan, opts Options, name namer) ([][]*node, error) {
	var nodes [][]*node
	serial := 0
	for l, level := range p.levels {
		row := make([]*node, len(level))
		for ci := range level {
			cl := &level[ci]
			bufName, netName := name(l, ci, serial)
			buf, err := d.AddClockBuf(bufName, opts.Buffer, cl.centroid)
			if err != nil {
				return nil, err
			}
			serial++
			net := d.AddNet(netName, true)
			d.Connect(d.OutPin(buf), net)
			nd := &node{buf: buf, net: net, centroid: cl.centroid}
			for _, m := range cl.members {
				pin := m.pin
				if pin == nil {
					pin = inPin(d, nodes[l-1][m.child].buf)
				}
				d.Connect(pin, net)
				nd.memberPins = append(nd.memberPins, pin.ID)
			}
			row[ci] = nd
		}
		nodes = append(nodes, row)
	}
	return nodes, nil
}

func inPin(d *netlist.Design, in *netlist.Inst) *netlist.Pin {
	return d.FindPin(in, netlist.PinData, 0)
}

// Remove deletes every buffer and net the build created and reattaches the
// original sinks to the root net, restoring the pre-CTS state.
func (t *Tree) Remove() {
	d := t.d
	for _, p := range t.movedSinks {
		d.Disconnect(p)
	}
	for _, b := range t.Buffers {
		d.RemoveInst(b)
	}
	for _, n := range t.nets {
		// All pins were on removed buffers or moved sinks; nets are empty.
		for len(n.Sinks) > 0 {
			d.Disconnect(d.Pin(n.Sinks[0]))
		}
		if n.Driver != netlist.NoID {
			d.Disconnect(d.Pin(n.Driver))
		}
		if err := d.RemoveNet(n); err != nil {
			panic(err) // internal invariant
		}
	}
	for _, p := range t.movedSinks {
		if d.Inst(p.Inst) != nil { // sink's instance may have been removed meanwhile
			d.Connect(p, t.rootNet)
		}
	}
	t.Buffers = nil
	t.nets = nil
	t.Root = nil
	t.movedSinks = nil
}

// Metrics summarizes the clock network of a design.
type Metrics struct {
	// Buffers is the number of clock buffers (KindClockBuf instances).
	Buffers int
	// Sinks is the number of register clock pins.
	Sinks int
	// TotalCapFF is the total capacitance on clock nets: sink pins, buffer
	// input pins and estimated wire capacitance (fF).
	TotalCapFF float64
	// WirelengthDBU is the total HPWL of clock nets.
	WirelengthDBU int64
}

// Measure computes clock-network metrics for the design's current state.
func Measure(d *netlist.Design) Metrics {
	var m Metrics
	d.Insts(func(in *netlist.Inst) {
		switch in.Kind {
		case netlist.KindClockBuf:
			m.Buffers++
		case netlist.KindReg:
			if cp := d.ClockPin(in); cp != nil && cp.Net != netlist.NoID {
				m.Sinks++
			}
		}
	})
	d.Nets(func(n *netlist.Net) {
		if !n.IsClock {
			return
		}
		// NetContrib is the shared per-net helper also behind the Engine's
		// cached metrics, so batch and cached totals agree bit-for-bit (and
		// each net's bounding box is computed once, not twice).
		capFF, hpwl := d.NetContrib(n)
		m.TotalCapFF += capFF
		m.WirelengthDBU += hpwl
	})
	return m
}
