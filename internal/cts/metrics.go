package cts

import (
	"sort"

	"repro/internal/netlist"
)

// Retained clock-network metrics: Measure walks every instance and every
// net of the design on every call, which made the flow's measurement points
// the last O(design) scans of the multi-pass loop. The Engine instead keeps
// a per-tree cache of each domain's metric contributions — the root net's
// and every tree net's (capFF, HPWL) pair via the shared
// netlist.Design.NetContrib helper, plus the domain's register-sink count —
// invalidated whenever the domain's update path runs and refreshed lazily
// by the next Metrics call. Assembly then costs O(clock nets): integer
// totals are order-free sums, and the one float total (TotalCapFF) is
// re-folded over the cached per-net values in ascending net-ID order —
// exactly Measure's fold order — so the cached result is bit-identical to
// the batch walk. (Clock nets outside every domain are sink-less while the
// cache is valid, and a sink-less net contributes exactly 0 to both totals,
// so skipping them does not perturb the fold: adding 0.0 is exact.)
//
// The cache is only trusted while the engine's trees are in sync with the
// design (attached, and no edit since the last Update/Canonicalize). Any
// other state falls back to the batch Measure — the oracle the cached path
// is tested against — and counts Stats.MetricsFallbacks.

// netMetric is one clock net's cached contribution to Metrics.
type netMetric struct {
	id    netlist.NetID
	capFF float64
	hpwl  int64
}

// Metrics returns the design's clock-network metrics, equal bit-for-bit to
// Measure(d), from the per-tree caches when the retained trees are in sync
// with the design and by a batch walk otherwise.
func (e *Engine) Metrics() Metrics {
	e.stats.MetricsCalls++
	if !e.attached || e.d.Epoch() != e.cursor {
		e.stats.MetricsFallbacks++
		return Measure(e.d)
	}
	var m Metrics
	m.Buffers = len(e.ownBuf) + e.foreignBufs
	m.Sinks = e.foreignSinks
	entries := make([]netMetric, 0, len(e.ownNet)+len(e.domains))
	for _, dom := range e.domains {
		if !dom.mValid {
			e.refreshDomainMetrics(dom)
			e.stats.MetricsDomainsRecomputed++
		}
		m.Sinks += dom.mSinks
		entries = append(entries, dom.mNets...)
	}
	// Fold the float total in ascending net-ID order — Measure's order.
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	for _, en := range entries {
		m.TotalCapFF += en.capFF
		m.WirelengthDBU += en.hpwl
	}
	return m
}

// refreshDomainMetrics recomputes one domain's cached contributions from
// its current nets, via the same per-net helper Measure uses.
func (e *Engine) refreshDomainMetrics(dom *domain) {
	d := e.d
	dom.mNets = dom.mNets[:0]
	dom.mSinks = 0
	add := func(n *netlist.Net) {
		capFF, hpwl := d.NetContrib(n)
		dom.mNets = append(dom.mNets, netMetric{id: n.ID, capFF: capFF, hpwl: hpwl})
		for _, pid := range n.Sinks {
			p := d.Pin(pid)
			if p.Kind != netlist.PinClock {
				continue
			}
			if in := d.Inst(p.Inst); in != nil && in.Kind == netlist.KindReg {
				dom.mSinks++
			}
		}
	}
	add(dom.root)
	for _, lvl := range dom.levels {
		for _, nd := range lvl {
			add(nd.net)
		}
	}
	dom.mValid = true
}
