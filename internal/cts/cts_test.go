package cts

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
)

var testLib = lib.MustGenerateDefault()

// sinkDesign builds a design with n 1-bit registers on one clock net.
func sinkDesign(t testing.TB, n int, seed int64) (*netlist.Design, *netlist.Net) {
	t.Helper()
	d := netlist.NewDesign("c", geom.RectWH(0, 0, 200000, 200000), testLib)
	d.Timing.WireCapPerDBU = 0.0002
	clk := d.AddNet("clk", true)
	cell := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 1)[0]
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		r, err := d.AddRegister(fmt.Sprintf("r%d", i), cell,
			geom.Point{X: int64(rng.Intn(190000)), Y: int64(rng.Intn(190000))})
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(d.ClockPin(r), clk)
	}
	return d, clk
}

func TestBuildSmallTree(t *testing.T) {
	d, clk := sinkDesign(t, 10, 1)
	tree, err := Build(d, clk, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root == nil || len(tree.Buffers) == 0 {
		t.Fatal("tree must have a root buffer")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Root net now drives exactly the root buffer.
	if len(clk.Sinks) != 1 {
		t.Fatalf("root net sinks = %d want 1", len(clk.Sinks))
	}
	// Every register clock pin is connected to some clock net.
	d.Insts(func(in *netlist.Inst) {
		if in.Kind == netlist.KindReg {
			cp := d.ClockPin(in)
			if cp.Net == netlist.NoID || !d.Net(cp.Net).IsClock {
				t.Errorf("register %s lost its clock", in.Name)
			}
		}
	})
}

func TestFanoutLimitRespected(t *testing.T) {
	d, clk := sinkDesign(t, 200, 2)
	opts := DefaultOptions()
	opts.MaxFanout = 8
	opts.MaxCap = 1e9 // disable cap limit
	tree, err := Build(d, clk, opts)
	if err != nil {
		t.Fatal(err)
	}
	d.Nets(func(n *netlist.Net) {
		if n.IsClock && len(n.Sinks) > opts.MaxFanout {
			t.Errorf("net %q fanout %d exceeds %d", n.Name, len(n.Sinks), opts.MaxFanout)
		}
	})
	if tree.Levels < 2 {
		t.Fatalf("200 sinks at fanout 8 need ≥2 levels, got %d", tree.Levels)
	}
}

func TestCapLimitRespected(t *testing.T) {
	d, clk := sinkDesign(t, 100, 3)
	opts := DefaultOptions()
	opts.MaxFanout = 1000
	opts.MaxCap = 10 // a handful of sinks per buffer
	_, err := Build(d, clk, opts)
	if err != nil {
		t.Fatal(err)
	}
	d.Nets(func(n *netlist.Net) {
		if !n.IsClock || len(n.Sinks) == 0 {
			return
		}
		var pinCap float64
		for _, s := range n.Sinks {
			pinCap += d.Pin(s).Cap
		}
		// The clustering limit applies to pin caps it saw at cluster time.
		if pinCap > opts.MaxCap+1e-9 {
			t.Errorf("net %q pin cap %g exceeds %g", n.Name, pinCap, opts.MaxCap)
		}
	})
}

func TestFewerSinksFewerBuffers(t *testing.T) {
	d1, clk1 := sinkDesign(t, 400, 4)
	tree1, err := Build(d1, clk1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d2, clk2 := sinkDesign(t, 100, 4)
	tree2, err := Build(d2, clk2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree2.Buffers) >= len(tree1.Buffers) {
		t.Fatalf("fewer sinks must need fewer buffers: %d vs %d",
			len(tree2.Buffers), len(tree1.Buffers))
	}
}

func TestMeasure(t *testing.T) {
	d, clk := sinkDesign(t, 50, 5)
	before := Measure(d)
	if before.Sinks != 50 || before.Buffers != 0 {
		t.Fatalf("before: %+v", before)
	}
	if before.TotalCapFF <= 0 || before.WirelengthDBU <= 0 {
		t.Fatalf("before metrics empty: %+v", before)
	}
	if _, err := Build(d, clk, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	after := Measure(d)
	if after.Buffers == 0 {
		t.Fatal("buffers not counted")
	}
	if after.Sinks != 50 {
		t.Fatalf("sinks must be unchanged, got %d", after.Sinks)
	}
	// The summed HPWL of the many small buffered nets is not comparable to
	// the single star net's HPWL (which underestimates a 50-sink route), so
	// only sanity-check the buffered wirelength.
	if after.WirelengthDBU <= 0 {
		t.Fatal("buffered clock wirelength must be positive")
	}
	maxNetSpan := int64(0)
	d.Nets(func(n *netlist.Net) {
		if n.IsClock {
			if wl := d.NetHPWL(n); wl > maxNetSpan {
				maxNetSpan = wl
			}
		}
	})
	if maxNetSpan >= before.WirelengthDBU {
		t.Fatalf("CTS should shorten the longest clock net: %d vs star %d",
			maxNetSpan, before.WirelengthDBU)
	}
}

func TestRemoveRestoresPreCTSState(t *testing.T) {
	d, clk := sinkDesign(t, 60, 6)
	instsBefore := d.NumInsts()
	netsBefore := d.NumNets()
	sinksBefore := len(clk.Sinks)

	tree, err := Build(d, clk, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tree.Remove()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumInsts() != instsBefore {
		t.Fatalf("instances: %d want %d", d.NumInsts(), instsBefore)
	}
	if d.NumNets() != netsBefore {
		t.Fatalf("nets: %d want %d", d.NumNets(), netsBefore)
	}
	if len(clk.Sinks) != sinksBefore {
		t.Fatalf("root sinks: %d want %d", len(clk.Sinks), sinksBefore)
	}
}

func TestRebuildAfterComposition(t *testing.T) {
	d, clk := sinkDesign(t, 64, 7)
	tree, err := Build(d, clk, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cap1 := Measure(d).TotalCapFF
	bufs1 := len(tree.Buffers)
	tree.Remove()

	// Merge pairs of registers into 2-bit MBRs (halves the sink count).
	regs := d.Registers()
	cell2 := testLib.CellsOfWidth(lib.FuncClass{Kind: lib.FlipFlop}, 2)[0]
	for i := 0; i+1 < len(regs); i += 2 {
		mid := geom.Point{
			X: (regs[i].Pos.X + regs[i+1].Pos.X) / 2,
			Y: (regs[i].Pos.Y + regs[i+1].Pos.Y) / 2,
		}
		if _, err := d.MergeRegisters([]*netlist.Inst{regs[i], regs[i+1]}, cell2,
			fmt.Sprintf("m%d", i), mid); err != nil {
			t.Fatal(err)
		}
	}
	tree2, err := Build(d, clk, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cap2 := Measure(d).TotalCapFF
	if cap2 >= cap1 {
		t.Fatalf("composition must cut clock capacitance: %.1f → %.1f", cap1, cap2)
	}
	if len(tree2.Buffers) > bufs1 {
		t.Fatalf("composition must not grow the tree: %d → %d", bufs1, len(tree2.Buffers))
	}
}

func TestBuildValidation(t *testing.T) {
	d, clk := sinkDesign(t, 5, 8)
	if _, err := Build(d, clk, Options{MaxFanout: 1}); err == nil {
		t.Fatal("fanout 1 must be rejected")
	}
	sig := d.AddNet("sig", false)
	if _, err := Build(d, sig, DefaultOptions()); err == nil {
		t.Fatal("non-clock net must be rejected")
	}
}

func TestEmptyClockNet(t *testing.T) {
	d := netlist.NewDesign("e", geom.RectWH(0, 0, 1000, 1000), testLib)
	clk := d.AddNet("clk", true)
	tree, err := Build(d, clk, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != nil || len(tree.Buffers) != 0 {
		t.Fatal("empty clock must produce empty tree")
	}
}

// TestTreeConnectivity: every register clock pin must be reachable from the
// root net through the buffer tree (no orphaned subtrees).
func TestTreeConnectivity(t *testing.T) {
	d, clk := sinkDesign(t, 150, 9)
	if _, err := Build(d, clk, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	reach := map[netlist.NetID]bool{clk.ID: true}
	queue := []*netlist.Net{clk}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, s := range n.Sinks {
			p := d.Pin(s)
			in := d.Inst(p.Inst)
			if in == nil || in.Kind != netlist.KindClockBuf {
				continue
			}
			out := d.OutPin(in)
			if out.Net == netlist.NoID || reach[out.Net] {
				continue
			}
			on := d.Net(out.Net)
			reach[on.ID] = true
			queue = append(queue, on)
		}
	}
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindReg {
			return
		}
		cp := d.ClockPin(in)
		if cp.Net == netlist.NoID || !reach[cp.Net] {
			t.Errorf("register %s unreachable from clock root", in.Name)
		}
	})
}

// TestDeterministicBuild: identical inputs give identical trees.
func TestDeterministicBuild(t *testing.T) {
	build := func() (int, int) {
		d, clk := sinkDesign(t, 120, 10)
		tr, err := Build(d, clk, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return len(tr.Buffers), tr.Levels
	}
	b1, l1 := build()
	b2, l2 := build()
	if b1 != b2 || l1 != l2 {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", b1, l1, b2, l2)
	}
}
