// Package engine defines the contract shared by the repo's retained
// incremental engines — timing (sta.Engine), register compatibility
// (compatgraph.Engine) and clock tree (cts.Engine).
//
// Each engine caches derived state across design edits and serves updates
// from a delta path when it can, falling back to a from-scratch rebuild
// when it cannot (structural changes, touched-record overflow, changed
// domain sets). The contract captures the operations the composition flow
// needs uniformly across all three: drop the cache, bound parallelism and
// report how updates were satisfied. Construction and the update calls
// themselves stay engine-specific — their signatures differ by necessity
// (an STA run returns timing results, a compat update needs those results
// as input, a CTS update edits the netlist).
package engine

// Summary is the uniform slice of an engine's counters: how many updates
// it served, how many stayed on the delta path, how many fell back to a
// full rebuild, and what the most recent one did.
type Summary struct {
	Updates  int
	Deltas   int
	Rebuilds int
	// LastKind names the most recent update's outcome in the engine's own
	// vocabulary (e.g. "delta", "incremental", "touched-overflow",
	// "attach").
	LastKind string
}

// Retained is the interface every retained engine satisfies.
type Retained interface {
	// Invalidate drops the retained state; the next update rebuilds from
	// scratch. Required after edits that bypassed the netlist API.
	Invalidate()
	// SetWorkers bounds the engine's parallelism. Results are identical
	// for any value; 1 forces the sequential path.
	SetWorkers(n int)
	// Summary reports the uniform update counters.
	Summary() Summary
}
