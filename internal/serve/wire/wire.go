// Package wire defines the JSON wire format shared by the composition
// server (cmd/mbrserved, internal/serve) and the stats tool's machine
// readable mode (cmd/mbrstats -json): retained-engine summaries, Table 1
// metric snapshots and per-pass engine statistics. Keeping the encodings
// in one package guarantees a report scraped from the CLI parses exactly
// like one served over HTTP.
package wire

import (
	"repro/internal/engine"
	"repro/internal/flow"
)

// EngineSummary is the uniform engine.Retained counter view on the wire.
type EngineSummary struct {
	Updates  int    `json:"updates"`
	Deltas   int    `json:"deltas"`
	Rebuilds int    `json:"rebuilds"`
	LastKind string `json:"lastKind"`
}

// EngineSummaries maps engine key ("sta", "compat", "cts", "metrics",
// "route", "compose") to its counter summary.
type EngineSummaries map[string]EngineSummary

// Engines converts the retained engines' summaries to wire form.
func Engines(m map[string]engine.Summary) EngineSummaries {
	out := make(EngineSummaries, len(m))
	for k, s := range m {
		out[k] = EngineSummary{
			Updates:  s.Updates,
			Deltas:   s.Deltas,
			Rebuilds: s.Rebuilds,
			LastKind: s.LastKind,
		}
	}
	return out
}

// Metrics is one Table 1 row on the wire.
type Metrics struct {
	AreaUM2          float64 `json:"areaUM2"`
	Cells            int     `json:"cells"`
	TotalRegs        int     `json:"totalRegs"`
	CompRegs         int     `json:"compRegs"`
	ClkBufs          int     `json:"clkBufs"`
	ClkCapPF         float64 `json:"clkCapPF"`
	TNSNS            float64 `json:"tnsNS"`
	WNSPS            float64 `json:"wnsPS"`
	FailingEndpoints int     `json:"failingEndpoints"`
	TotalEndpoints   int     `json:"totalEndpoints"`
	OverflowEdges    int     `json:"overflowEdges"`
	WLClkMM          float64 `json:"wlClkMM"`
	WLSigMM          float64 `json:"wlSigMM"`
}

// FromMetrics converts a flow metrics snapshot to wire form.
func FromMetrics(m flow.Metrics) Metrics {
	return Metrics{
		AreaUM2:          m.AreaUM2,
		Cells:            m.Cells,
		TotalRegs:        m.TotalRegs,
		CompRegs:         m.CompRegs,
		ClkBufs:          m.ClkBufs,
		ClkCapPF:         m.ClkCapPF,
		TNSNS:            m.TNSNS,
		WNSPS:            m.WNSPS,
		FailingEndpoints: m.FailingEndpoints,
		TotalEndpoints:   m.TotalEndpoints,
		OverflowEdges:    m.OverflowEdges,
		WLClkMM:          m.WLClkMM,
		WLSigMM:          m.WLSigMM,
	}
}

// PassStats is one composition pass's retained-engine accounting: what the
// compatibility-graph, compose, clock-tree and congestion engines did to
// serve the pass. cmd/mbrstats -passes emits one per pass; the server's
// compose endpoint emits the same shape per request.
type PassStats struct {
	Pass int `json:"pass"`

	// Compatibility-graph engine.
	Nodes         int    `json:"nodes"`
	Edges         int    `json:"edges"`
	Components    int    `json:"components"`
	UpdateKind    string `json:"updateKind"`
	NodesAdded    int    `json:"nodesAdded"`
	NodesRemoved  int    `json:"nodesRemoved"`
	NodesDirty    int    `json:"nodesDirty"`
	PairsTested   int    `json:"pairsTested"`
	EdgesRetested int    `json:"edgesRetested"`

	// Composition outcome and compose-engine memo accounting.
	MBRs               int    `json:"mbrs"`
	RegsBefore         int    `json:"regsBefore"`
	RegsAfter          int    `json:"regsAfter"`
	TruncatedSubgraphs int    `json:"truncatedSubgraphs"`
	ComposeKind        string `json:"composeKind"`
	SubgraphsReplayed  int    `json:"subgraphsReplayed"`
	SubgraphsSolved    int    `json:"subgraphsSolved"`
	ILPNodesSaved      int    `json:"ilpNodesSaved"`
	WarmSeeded         int    `json:"warmSeeded"`
	WarmAccepted       int    `json:"warmAccepted"`
	WarmRetried        int    `json:"warmRetried"`
	TightenPruned      int    `json:"tightenPruned"`
	// Work-stealing shard scheduler (0/0 when the pass ran sequentially).
	// SchedSteals varies with the goroutine schedule — diagnostics, not
	// part of any determinism oracle.
	SchedShards int `json:"schedShards"`
	SchedSteals int `json:"schedSteals"`

	// Clock-tree engine.
	CTSKind           string  `json:"ctsKind"`
	ReclusteredLeaves int     `json:"reclusteredLeaves"`
	RepairedAncestors int     `json:"repairedAncestors"`
	BuffersAdded      int     `json:"buffersAdded"`
	BuffersRemoved    int     `json:"buffersRemoved"`
	CTSFallback       string  `json:"ctsFallback,omitempty"`
	ClockBuffers      int     `json:"clockBuffers"`
	ClockCapPF        float64 `json:"clockCapPF"`
	ClockWLMM         float64 `json:"clockWLMM"`

	// Congestion engine.
	RouteKind     string `json:"routeKind"`
	OverflowEdges int    `json:"overflowEdges"`
	NetsDelta     int    `json:"netsDelta"`
	TilesTouched  int    `json:"tilesTouched"`
}
