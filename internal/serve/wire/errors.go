package wire

// Error is the composition server's structured error envelope: every
// non-2xx mbrserved response body is one of these. Code is a stable
// machine-readable discriminator (clients branch on it, never on the
// message text), Op names the server operation that failed, Message is
// the human-readable detail.
type Error struct {
	Code    string `json:"code"`
	Op      string `json:"op,omitempty"`
	Message string `json:"message"`
}

// Stable error codes. These are wire contract: tests and clients (the
// load harness included) assert on them, so a code change is a breaking
// API change.
const (
	// CodeNotFound: the named session does not exist.
	CodeNotFound = "not_found"
	// CodeEvicted: the session was LRU-evicted while the request raced it.
	CodeEvicted = "evicted"
	// CodeValidation: the request was understood but rejected — a bad
	// edit, an unknown profile, a config out of range, a digest mismatch.
	CodeValidation = "validation"
	// CodeBodyTooLarge: the request body exceeded the server's bound.
	CodeBodyTooLarge = "body_too_large"
)

// Error implements the error interface so an envelope decoded from a
// response body can flow through error-returning client code unchanged.
func (e *Error) Error() string {
	if e.Op != "" {
		return e.Op + ": " + e.Code + ": " + e.Message
	}
	return e.Code + ": " + e.Message
}
