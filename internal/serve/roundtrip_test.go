package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/flow"
	"repro/internal/netlist"
)

// TestMergeSplitMergeRoundTrip proves the split edit is the exact inverse
// of a merge on every benchmark profile at two worker counts: a session
// merges a scan-compatible pair, splits the MBR back into bits, re-merges
// those bits, and the design stays valid with the epoch advancing at each
// structural step. The session is then snapshotted and restored — the
// restore path replays the merge/split journal and re-verifies the state
// digest, so the whole round trip is byte-stable under replay.
func TestMergeSplitMergeRoundTrip(t *testing.T) {
	profiles := []Source{
		{Profile: "D1", Scale: 60},
		{Profile: "D2", Scale: 60},
		{Profile: "D3", Scale: 60},
		{Profile: "D4", Scale: 60},
		{Profile: "D5", Scale: 60},
	}
	for _, src := range profiles {
		for _, workers := range []int{1, 4} {
			src, workers := src, workers
			t.Run(fmt.Sprintf("%s/workers=%d", src.Profile, workers), func(t *testing.T) {
				t.Parallel()
				m := NewManager(Options{MaxSessions: 32})
				cfg := SessionConfig{
					Workers:              workers,
					RecenterThresholdDBU: 3000,
					CompatMaxDeltaFrac:   0.5,
				}
				live, err := m.Create("rt-"+src.Profile, src, cfg)
				if err != nil {
					t.Fatal(err)
				}
				d := live.fs.Design()

				// Probe for a mergeable single-bit pair through the edit API;
				// rejected merges are side-effect free and never journaled, so
				// probing leaves no trace in the replayed op sequence.
				var regs []*netlist.Inst
				d.Insts(func(in *netlist.Inst) {
					if in.Kind == netlist.KindReg && !in.Fixed && !in.SizeOnly &&
						in.Bits() == 1 && len(regs) < 60 {
						regs = append(regs, in)
					}
				})
				epoch0 := live.fs.Epoch()
				merged := false
			probe:
				for i := range regs {
					for j := i + 1; j < len(regs); j++ {
						if regs[i].RegCell.Class != regs[j].RegCell.Class {
							continue
						}
						e := flow.MergeGroup("rt_mbr", regs[i].Name, regs[j].Name)
						if _, _, err := live.Apply([]flow.Edit{e}); err == nil {
							merged = true
							break probe
						}
					}
				}
				if !merged {
					t.Fatalf("%s: no mergeable single-bit pair", src.Profile)
				}
				epoch1 := live.fs.Epoch()
				if epoch1 == epoch0 {
					t.Fatal("merge did not advance the epoch")
				}

				sres, _, err := live.Apply([]flow.Edit{flow.SplitInst("rt_mbr")})
				if err != nil {
					t.Fatalf("split: %v", err)
				}
				if len(sres.Split) != 1 || sres.Split[0] != "rt_mbr" {
					t.Fatalf("split result %+v", sres)
				}
				if live.fs.Epoch() == epoch1 {
					t.Fatal("split did not advance the epoch")
				}
				var parts []string
				for _, p := range []string{"rt_mbr_b0", "rt_mbr_b1"} {
					if d.InstByName(p) == nil {
						t.Fatalf("split part %s missing", p)
					}
					parts = append(parts, p)
				}
				if err := d.Validate(); err != nil {
					t.Fatalf("design invalid after split: %v", err)
				}

				// Exact inverse: the bits the split produced are still a
				// scan-compatible group, so re-merging them must succeed.
				if _, _, err := live.Apply([]flow.Edit{flow.MergeGroup("rt_mbr2", parts...)}); err != nil {
					t.Fatalf("re-merge after split: %v", err)
				}
				if err := d.Validate(); err != nil {
					t.Fatalf("design invalid after re-merge: %v", err)
				}
				if _, _, err := live.Measure(); err != nil {
					t.Fatal(err)
				}

				// Snapshot digest stability: the journaled merge→split→merge
				// sequence replays to the identical state bytes (Restore
				// re-verifies the SHA-256 digest itself).
				snap, err := live.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				enc, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var decoded Snapshot
				if err := json.Unmarshal(enc, &decoded); err != nil {
					t.Fatal(err)
				}
				decoded.Name = "rt2-" + src.Profile
				restored, err := m.Restore("", &decoded)
				if err != nil {
					t.Fatalf("restore with merge/split journal: %v", err)
				}
				liveState, err := live.DumpState()
				if err != nil {
					t.Fatal(err)
				}
				restState, err := restored.DumpState()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(liveState, restState) {
					t.Fatalf("restored state differs from live (%d vs %d bytes)",
						len(liveState), len(restState))
				}
			})
		}
	}
}
