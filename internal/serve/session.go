package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/flow"
)

// SessionConfig is the JSON-serializable subset of flow.Config a tenant
// may set. flow.Config itself carries function-valued hooks and engine
// sub-configs that never cross the wire; everything else takes the flow
// defaults.
type SessionConfig struct {
	// Workers bounds the engines' worker pools (0 = one per CPU,
	// 1 = sequential). Reports are byte-identical for any setting.
	Workers int `json:"workers,omitempty"`
	// TouchedLogCap overrides the netlist's per-edit-class touched-ring
	// capacity (0 = the design default). Larger rings keep longer edit
	// bursts on the engines' delta paths.
	TouchedLogCap int `json:"touchedLogCap,omitempty"`
	// RecenterThresholdDBU sets the clock-tree engine's re-center
	// hysteresis (see cts.Options): tree buffers hold their position until
	// the plan centroid drifts past this Manhattan distance, confining an
	// edit's timing ripple to the clusters it actually touched. 0 disables it (every update re-centers, matching
	// the batch flow exactly). Tree geometry becomes edit-order dependent
	// when set, which is fine here: session determinism is per op
	// sequence, and snapshots replay the full journal.
	RecenterThresholdDBU int64 `json:"recenterThresholdDBU,omitempty"`
	// CompatMaxDeltaFrac raises the compatibility-graph engine's delta
	// threshold (see flow.CompatConfig.MaxDeltaFrac): the changed-node
	// fraction an update may carry on the delta path before falling back
	// to a full edge re-test. 0 keeps the engine default (0.25).
	CompatMaxDeltaFrac float64 `json:"compatMaxDeltaFrac,omitempty"`
}

func (c SessionConfig) flowConfig() flow.Config {
	cfg := flow.DefaultConfig()
	cfg.Workers = c.Workers
	cfg.TouchedLogCap = c.TouchedLogCap
	cfg.CTS.Tree.RecenterThresholdDBU = c.RecenterThresholdDBU
	cfg.Compat.MaxDeltaFrac = c.CompatMaxDeltaFrac
	return cfg
}

// SessionInfo is one session's registry row.
type SessionInfo struct {
	Name       string    `json:"name"`
	Design     string    `json:"design"`
	Epoch      uint64    `json:"epoch"`
	Ops        int       `json:"ops"`
	Batches    int64     `json:"batches"`
	Edits      int64     `json:"edits"`
	Measures   int64     `json:"measures"`
	Composes   int64     `json:"composes"`
	Decomposes int64     `json:"decomposes"`
	Created    time.Time `json:"created"`
	LastOp     time.Time `json:"lastOp"`
	Evicted    bool      `json:"evicted,omitempty"`
}

// ComposeInfo is a compose request's outcome on the wire.
type ComposeInfo struct {
	MBRs               int      `json:"mbrs"`
	Merged             []string `json:"merged,omitempty"`
	RegsBefore         int      `json:"regsBefore"`
	RegsAfter          int      `json:"regsAfter"`
	Subgraphs          int      `json:"subgraphs"`
	Candidates         int      `json:"candidates"`
	TruncatedSubgraphs int      `json:"truncatedSubgraphs"`
	ILPNodes           int      `json:"ilpNodes"`
	ObjectiveSum       float64  `json:"objectiveSum"`
}

// Session is one tenant: a flow.Session behind a single-writer lock plus
// the op journal that makes it snapshotable. All exported methods are
// safe for concurrent use.
type Session struct {
	name string
	mgr  *Manager
	src  Source
	cfg  SessionConfig
	elem *list.Element // registry LRU slot, guarded by mgr.mu

	mu      sync.RWMutex
	fs      *flow.Session
	journal []Op
	evicted bool

	created time.Time
	lastOp  time.Time

	batches, edits, measures, composes, decomposes int64
}

// newSession loads the source, opens the flow session and, when restoring,
// replays the snapshot's op journal and verifies the state digest.
func newSession(m *Manager, name string, src Source, cfg SessionConfig, snap *Snapshot) (*Session, error) {
	d, plan, err := src.Load()
	if err != nil {
		return nil, err
	}
	fs, err := flow.NewSession(d, plan, cfg.flowConfig())
	if err != nil {
		return nil, err
	}
	s := &Session{
		name: name, mgr: m, src: src.clone(), cfg: cfg,
		fs: fs, created: now(), lastOp: now(),
	}
	if snap != nil {
		if err := s.replay(snap); err != nil {
			fs.Invalidate()
			fs.Close()
			return nil, err
		}
	}
	return s, nil
}

// Name returns the session's registry name.
func (s *Session) Name() string { return s.name }

// Apply applies an edit batch under the write lock and journals the
// applied prefix — on a mid-batch failure exactly the edits that took
// effect are recorded, so a snapshot taken after a failed batch still
// replays to the same state.
func (s *Session) Apply(edits []flow.Edit) (*flow.ApplyResult, map[string]engine.Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, nil, ErrEvicted
	}
	res, err := s.fs.Apply(edits)
	applied := edits
	if res.Applied < len(edits) {
		applied = edits[:res.Applied]
	}
	if len(applied) > 0 {
		s.journal = append(s.journal, Op{Kind: OpEdits, Edits: cloneEdits(applied)})
	}
	s.batches++
	s.edits += int64(len(applied))
	s.lastOp = now()
	s.mgr.batches.Add(1)
	s.mgr.edits.Add(int64(len(applied)))
	return res, s.fs.Engines(), err
}

// Measure snapshots the Table 1 metrics of the session's current state on
// the engines' delta paths. It holds the write lock: folding edits into
// the retained clock trees advances engine state, which is also why the
// measure itself is journaled — determinism is per op *sequence*.
func (s *Session) Measure() (flow.Metrics, map[string]engine.Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return flow.Metrics{}, nil, ErrEvicted
	}
	met, err := s.fs.Measure()
	if err != nil {
		return flow.Metrics{}, s.fs.Engines(), err
	}
	s.journal = append(s.journal, Op{Kind: OpMeasure})
	s.measures++
	s.lastOp = now()
	s.mgr.measures.Add(1)
	return met, s.fs.Engines(), nil
}

// Compose runs one incremental composition pass under the write lock.
func (s *Session) Compose() (*ComposeInfo, map[string]engine.Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, nil, ErrEvicted
	}
	cres, err := s.fs.ComposePass()
	if err != nil {
		return nil, s.fs.Engines(), err
	}
	s.journal = append(s.journal, Op{Kind: OpCompose})
	s.composes++
	s.lastOp = now()
	s.mgr.composes.Add(1)
	info := &ComposeInfo{
		MBRs:               len(cres.MBRs),
		RegsBefore:         cres.RegsBefore,
		RegsAfter:          cres.RegsAfter,
		Subgraphs:          cres.Subgraphs,
		Candidates:         cres.Candidates,
		TruncatedSubgraphs: cres.TruncatedSubgraphs,
		ILPNodes:           cres.ILPNodes,
		ObjectiveSum:       cres.ObjectiveSum,
	}
	for _, m := range cres.MBRs {
		info.Merged = append(info.Merged, m.Inst.Name)
	}
	return info, s.fs.Engines(), nil
}

// DecomposeInfo is a decompose request's outcome on the wire.
type DecomposeInfo struct {
	Victims       []string `json:"victims,omitempty"`
	Decomposed    int      `json:"decomposed"`
	Parts         int      `json:"parts"`
	RegsBefore    int      `json:"regsBefore"`
	RegsAfter     int      `json:"regsAfter"`
	FromSlackFeed bool     `json:"fromSlackFeed"`
}

// Decompose runs one slack-driven decomposition pass under the write
// lock. The exact config is journaled so snapshot replay selects the same
// victims.
func (s *Session) Decompose(dcfg flow.DecomposeConfig) (*DecomposeInfo, map[string]engine.Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, nil, ErrEvicted
	}
	dres, err := s.fs.DecomposePassWith(dcfg)
	if err != nil {
		return nil, s.fs.Engines(), err
	}
	cfgCopy := dcfg
	s.journal = append(s.journal, Op{Kind: OpDecompose, Decompose: &cfgCopy})
	s.decomposes++
	s.lastOp = now()
	s.mgr.decomposes.Add(1)
	return &DecomposeInfo{
		Victims:       dres.Victims,
		Decomposed:    len(dres.Victims),
		Parts:         dres.Parts,
		RegsBefore:    dres.RegsBefore,
		RegsAfter:     dres.RegsAfter,
		FromSlackFeed: dres.FromSlackFeed,
	}, s.fs.Engines(), nil
}

// RestoreInfo is a restore-pass request's outcome on the wire.
type RestoreInfo struct {
	Restored int `json:"restored"`
}

// Restore re-merges leftover split bits (flow.Session.RestorePass) under
// the write lock; journaled like every other state-advancing op.
func (s *Session) Restore() (*RestoreInfo, map[string]engine.Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, nil, ErrEvicted
	}
	n, err := s.fs.RestorePass()
	if err != nil {
		return nil, s.fs.Engines(), err
	}
	s.journal = append(s.journal, Op{Kind: OpRestore})
	s.lastOp = now()
	return &RestoreInfo{Restored: n}, s.fs.Engines(), nil
}

// Info returns the session's registry row.
func (s *Session) Info() SessionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return SessionInfo{
		Name:       s.name,
		Design:     s.fs.Design().Name,
		Epoch:      s.fs.Epoch(),
		Ops:        len(s.journal),
		Batches:    s.batches,
		Edits:      s.edits,
		Measures:   s.measures,
		Composes:   s.composes,
		Decomposes: s.decomposes,
		Created:    s.created,
		LastOp:     s.lastOp,
		Evicted:    s.evicted,
	}
}

// Engines returns the retained engines' counter summaries.
func (s *Session) Engines() map[string]engine.Summary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.evicted {
		return nil
	}
	return s.fs.Engines()
}

// Snapshot captures the session as source + op journal + a SHA-256 digest
// of the observable state bytes. Restore replays the journal against a
// fresh load and refuses to come up unless its state digest matches —
// the byte-identity proof runs on every restore, not just in tests.
func (s *Session) Snapshot() (*Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.evicted {
		return nil, ErrEvicted
	}
	digest, err := stateDigest(s.fs)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Version:  SnapshotVersion,
		Name:     s.name,
		Config:   s.cfg,
		Source:   s.src.clone(),
		Ops:      cloneOps(s.journal),
		StateSHA: digest,
	}
	s.mgr.snaps.Add(1)
	return snap, nil
}

// DumpState writes the session's observable state bytes (design, scan
// plan, skew assignments) under the read lock.
func (s *Session) DumpState() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.evicted {
		return nil, ErrEvicted
	}
	return dumpState(s.fs)
}

// invalidate tears down the session's retained engines after eviction.
func (s *Session) invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return
	}
	s.evicted = true
	s.fs.Invalidate()
	s.fs.Close()
}

func stateDigest(fs *flow.Session) (string, error) {
	h := sha256.New()
	if err := fs.DumpState(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func dumpState(fs *flow.Session) ([]byte, error) {
	var b stateBuf
	if err := fs.DumpState(&b); err != nil {
		return nil, err
	}
	return b.data, nil
}

type stateBuf struct{ data []byte }

func (b *stateBuf) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func cloneEdits(edits []flow.Edit) []flow.Edit {
	out := make([]flow.Edit, len(edits))
	for i, e := range edits {
		out[i] = e.Clone()
	}
	return out
}

func cloneOps(ops []Op) []Op {
	out := make([]Op, len(ops))
	for i, op := range ops {
		out[i] = Op{Kind: op.Kind, Edits: cloneEdits(op.Edits)}
		if op.Edits == nil {
			out[i].Edits = nil
		}
		if op.Decompose != nil {
			dc := *op.Decompose
			out[i].Decompose = &dc
		}
	}
	return out
}
