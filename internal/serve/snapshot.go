// Snapshot/restore is event-sourced: a snapshot is the session's source
// (how to load the initial design) plus the journal of every op applied
// since — edit batches, measures and composes. Measures and composes are
// journaled because they advance retained engine state (a measurement
// folds pending edits into the clock trees), so session state is a
// function of the op *sequence*, not of the edits alone. Restore replays
// the journal against a fresh load and verifies the SHA-256 of the
// observable state bytes against the digest recorded at snapshot time:
// every restore re-proves byte-identity with the captured session.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// SnapshotVersion is the wire version of the Snapshot encoding.
const SnapshotVersion = 1

// Source describes how to load a session's initial design: either a
// built-in benchmark profile at a scale, or raw design (and optionally
// scan plan) JSON.
type Source struct {
	Profile string `json:"profile,omitempty"`
	Scale   int    `json:"scale,omitempty"`

	Design json.RawMessage `json:"design,omitempty"`
	Scan   json.RawMessage `json:"scan,omitempty"`
}

// Load materializes the source's design and scan plan. Profile sources
// regenerate deterministically from the profile's fixed seed; raw sources
// decode against the default register library.
func (s Source) Load() (*netlist.Design, *scan.Plan, error) {
	switch {
	case s.Profile != "":
		scale := s.Scale
		if scale <= 0 {
			scale = bench.DefaultScale
		}
		spec, ok := bench.ProfileByName(s.Profile, bench.ProfileOpts{Scale: scale})
		if !ok {
			return nil, nil, fmt.Errorf("serve: unknown profile %q", s.Profile)
		}
		res, err := bench.Generate(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: generate %s: %w", s.Profile, err)
		}
		return res.Design, res.Plan, nil

	case len(s.Design) > 0:
		d, err := netlist.ReadJSON(bytes.NewReader(s.Design), lib.MustGenerateDefault())
		if err != nil {
			return nil, nil, fmt.Errorf("serve: decode design: %w", err)
		}
		var plan *scan.Plan
		if len(s.Scan) > 0 {
			plan, err = scan.ReadJSON(bytes.NewReader(s.Scan), d)
			if err != nil {
				return nil, nil, fmt.Errorf("serve: decode scan plan: %w", err)
			}
		}
		return d, plan, nil
	}
	return nil, nil, fmt.Errorf("serve: empty source: set profile or design")
}

func (s Source) clone() Source {
	out := s
	out.Design = append(json.RawMessage(nil), s.Design...)
	out.Scan = append(json.RawMessage(nil), s.Scan...)
	if s.Design == nil {
		out.Design = nil
	}
	if s.Scan == nil {
		out.Scan = nil
	}
	return out
}

// Op kinds. Every state-advancing session operation has one.
const (
	OpEdits     = "edits"
	OpMeasure   = "measure"
	OpCompose   = "compose"
	OpDecompose = "decompose"
	OpRestore   = "restore"
)

// Op is one journaled session operation. Decompose ops record the exact
// config the pass ran with, so replay selects the same victims.
type Op struct {
	Kind      string                `json:"kind"`
	Edits     []flow.Edit           `json:"edits,omitempty"`
	Decompose *flow.DecomposeConfig `json:"decompose,omitempty"`
}

// Snapshot is a session's portable, replayable capture.
type Snapshot struct {
	Version  int           `json:"version"`
	Name     string        `json:"name"`
	Config   SessionConfig `json:"config"`
	Source   Source        `json:"source"`
	Ops      []Op          `json:"ops"`
	StateSHA string        `json:"stateSHA"`
}

// replay re-applies a snapshot's journal to the freshly loaded session
// and verifies the state digest. Called with the session not yet
// published, so no locking.
func (s *Session) replay(snap *Snapshot) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("serve: snapshot version %d (want %d)", snap.Version, SnapshotVersion)
	}
	for i, op := range snap.Ops {
		var err error
		switch op.Kind {
		case OpEdits:
			_, err = s.fs.Apply(op.Edits)
		case OpMeasure:
			_, err = s.fs.Measure()
		case OpCompose:
			_, err = s.fs.ComposePass()
		case OpDecompose:
			if op.Decompose == nil {
				err = fmt.Errorf("decompose op without config")
			} else {
				_, err = s.fs.DecomposePassWith(*op.Decompose)
			}
		case OpRestore:
			_, err = s.fs.RestorePass()
		default:
			err = fmt.Errorf("unknown op kind %q", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("serve: replay op %d: %w", i, err)
		}
	}
	if snap.StateSHA != "" {
		digest, err := stateDigest(s.fs)
		if err != nil {
			return err
		}
		if digest != snap.StateSHA {
			return fmt.Errorf("serve: replay diverged: state digest %s, snapshot recorded %s",
				digest, snap.StateSHA)
		}
	}
	s.journal = cloneOps(snap.Ops)
	for _, op := range snap.Ops {
		switch op.Kind {
		case OpEdits:
			s.batches++
			s.edits += int64(len(op.Edits))
		case OpMeasure:
			s.measures++
		case OpCompose:
			s.composes++
		case OpDecompose:
			s.decomposes++
		}
	}
	return nil
}
