package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/flow"
)

// editToV1 renders an edit in the retired v1 flat wire form — the shape
// pre-v2 journals and snapshots carry on disk.
func editToV1(t *testing.T, e flow.Edit) map[string]any {
	t.Helper()
	switch {
	case e.Move != nil:
		return map[string]any{"op": "move", "inst": e.Move.Inst, "x": *e.Move.X, "y": *e.Move.Y}
	case e.Resize != nil:
		return map[string]any{"op": "resize", "inst": e.Resize.Inst, "cell": e.Resize.Cell}
	case e.Skew != nil:
		return map[string]any{"op": "skew", "inst": e.Skew.Inst, "skewPS": e.Skew.SkewPS}
	case e.Merge != nil:
		v1 := map[string]any{"op": "merge", "group": e.Merge.Group, "name": e.Merge.Name}
		if e.Merge.Cell != "" {
			v1["cell"] = e.Merge.Cell
		}
		if e.Merge.X != nil {
			v1["x"], v1["y"] = *e.Merge.X, *e.Merge.Y
		}
		return v1
	case e.Split != nil:
		v1 := map[string]any{"op": "split", "inst": e.Split.Inst}
		if e.Split.Cell != "" {
			v1["cell"] = e.Split.Cell
		}
		return v1
	}
	t.Fatalf("no v1 form for edit %+v", e)
	return nil
}

// TestV1JournalRestoresBitIdentically pins the compatibility satellite: a
// snapshot whose journal is written in the v1 flat edit form (as every
// pre-v2 snapshot on disk is) restores into a session byte-identical to
// the v2 original — same replay, same digest, same state bytes.
func TestV1JournalRestoresBitIdentically(t *testing.T) {
	m := NewManager(Options{MaxSessions: 8})
	src := testSource()
	live, err := m.Create("v1c", src, SessionConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, batch := range editScript(t, src) {
		if _, _, err := live.Apply(batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if _, _, err := live.Measure(); err != nil {
		t.Fatal(err)
	}
	snap, err := live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Re-render the snapshot with every journaled edit in v1 flat form.
	enc, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), `"op":`) {
		t.Fatal("v2 snapshot encoding leaked a v1 flat record")
	}
	var raw map[string]any
	if err := json.Unmarshal(enc, &raw); err != nil {
		t.Fatal(err)
	}
	ops := raw["ops"].([]any)
	for oi, op := range snap.Ops {
		if op.Kind != OpEdits {
			continue
		}
		v1edits := make([]any, len(op.Edits))
		for ei, e := range op.Edits {
			v1edits[ei] = editToV1(t, e)
		}
		ops[oi].(map[string]any)["edits"] = v1edits
	}
	v1enc, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(v1enc), `"op":"skew"`) {
		t.Fatal("v1 rewrite did not take")
	}

	var v1snap Snapshot
	if err := json.Unmarshal(v1enc, &v1snap); err != nil {
		t.Fatalf("decode v1 snapshot: %v", err)
	}
	v1snap.Name = "v1c-restored"
	restored, err := m.Restore("", &v1snap)
	if err != nil {
		t.Fatalf("restore from v1 journal: %v", err)
	}
	liveState, err := live.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	restState, err := restored.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveState, restState) {
		t.Fatalf("v1-journal restore diverged (%d vs %d bytes)", len(liveState), len(restState))
	}

	// A v1 record with an unknown op is rejected at decode time.
	badOps := `{"version":1,"name":"bad","source":{"profile":"D1","scale":200},` +
		`"config":{},"ops":[{"kind":"edits","edits":[{"op":"frobnicate","inst":"r"}]}],"stateSHA":""}`
	var bad Snapshot
	if err := json.Unmarshal([]byte(badOps), &bad); err == nil ||
		!strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown v1 op decode = %v, want rejection", err)
	}
}

// TestSnapshotDecomposeOpReplay pins the new journal op kinds: a session
// that ran decompose and restore passes snapshots them with their exact
// config, and the restore replay reproduces identical state bytes.
func TestSnapshotDecomposeOpReplay(t *testing.T) {
	m := NewManager(Options{MaxSessions: 8})
	src := testSource()
	live, err := m.Create("dj", src, SessionConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Bank a pair through the edit API so the decompose pass has an MBR.
	d := live.fs.Design()
	var names []string
	for _, in := range d.Registers() {
		if !in.Fixed && !in.SizeOnly && in.Bits() == 1 && len(names) < 60 {
			names = append(names, in.Name)
		}
	}
	merged := false
probe:
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if _, _, err := live.Apply([]flow.Edit{flow.MergeGroup("dj_mbr", names[i], names[j])}); err == nil {
				merged = true
				break probe
			}
		}
	}
	if !merged {
		t.Fatal("no mergeable pair")
	}
	if _, _, err := live.Measure(); err != nil {
		t.Fatal(err)
	}

	dcfg := flow.DecomposeConfig{Budget: 2, SlackThresholdPS: 1e9}
	dinfo, _, err := live.Decompose(dcfg)
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	if dinfo.Decomposed == 0 {
		t.Fatal("decompose found no victims despite a live MBR")
	}
	rinfo, _, err := live.Restore()
	if err != nil {
		t.Fatalf("restore pass: %v", err)
	}
	if rinfo.Restored == 0 {
		t.Fatal("restore pass re-merged nothing")
	}
	if _, _, err := live.Measure(); err != nil {
		t.Fatal(err)
	}
	info := live.Info()
	if info.Decomposes != 1 {
		t.Fatalf("info.Decomposes = %d, want 1", info.Decomposes)
	}

	snap, err := live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var sawDecompose, sawRestore bool
	for _, op := range snap.Ops {
		switch op.Kind {
		case OpDecompose:
			sawDecompose = true
			if op.Decompose == nil || *op.Decompose != dcfg {
				t.Fatalf("journaled decompose config %+v, want %+v", op.Decompose, dcfg)
			}
		case OpRestore:
			sawRestore = true
		}
	}
	if !sawDecompose || !sawRestore {
		t.Fatalf("journal misses decompose/restore ops: %+v", snap.Ops)
	}

	enc, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(enc, &decoded); err != nil {
		t.Fatal(err)
	}
	decoded.Name = "dj2"
	restored, err := m.Restore("", &decoded)
	if err != nil {
		t.Fatalf("restore with decompose journal: %v", err)
	}
	liveState, _ := live.DumpState()
	restState, _ := restored.DumpState()
	if !bytes.Equal(liveState, restState) {
		t.Fatalf("decompose-journal restore diverged (%d vs %d bytes)", len(liveState), len(restState))
	}

	// A decompose op without its config cannot replay.
	mangled := decoded
	mangled.Name = "dj3"
	mangled.Ops = cloneOps(decoded.Ops)
	for i := range mangled.Ops {
		if mangled.Ops[i].Kind == OpDecompose {
			mangled.Ops[i].Decompose = nil
		}
	}
	if _, err := m.Restore("", &mangled); err == nil ||
		!strings.Contains(err.Error(), "decompose op without config") {
		t.Fatalf("config-less decompose replay = %v, want rejection", err)
	}
}
